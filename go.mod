module dynsched

go 1.22
