package dynsched_test

import (
	"fmt"
	"log"

	"dynsched"
)

// Example reproduces the paper's headline result in miniature: under
// release consistency, a dynamically scheduled processor with a 64-entry
// window hides nearly all of LU's read-miss latency.
func Example() {
	run, err := dynsched.GenerateTrace("lu", dynsched.TraceOptions{Scale: dynsched.ScaleSmall})
	if err != nil {
		log.Fatal(err)
	}
	base := dynsched.RunProcessor(run.Trace, dynsched.ProcessorConfig{Arch: dynsched.ArchBase})
	ds, err := dynsched.Run(run.Trace, dynsched.ProcessorConfig{
		Arch: dynsched.ArchDS, Model: dynsched.RC, Window: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	hidden := 1 - float64(ds.Breakdown.Read)/float64(base.Breakdown.Read)
	fmt.Println("most read latency hidden:", hidden > 0.9)
	// Output: most read latency hidden: true
}

// ExampleRun_consistencyModels shows the Figure 1 hierarchy empirically:
// relaxing the consistency model never slows the same processor down.
func ExampleRun_consistencyModels() {
	run, err := dynsched.GenerateTrace("mp3d", dynsched.TraceOptions{Scale: dynsched.ScaleSmall})
	if err != nil {
		log.Fatal(err)
	}
	total := func(m dynsched.Model) uint64 {
		res, err := dynsched.Run(run.Trace, dynsched.ProcessorConfig{
			Arch: dynsched.ArchDS, Model: m, Window: 64,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res.Breakdown.Total()
	}
	sc, pc, rc := total(dynsched.SC), total(dynsched.PC), total(dynsched.RC)
	fmt.Println("SC >= PC:", sc >= pc)
	fmt.Println("PC >= RC:", pc >= rc)
	// Output:
	// SC >= PC: true
	// PC >= RC: true
}

// ExampleGenerateTrace_statistics prints the kind of rates Tables 1 and 2
// are built from.
func ExampleGenerateTrace_statistics() {
	run, err := dynsched.GenerateTrace("ocean", dynsched.TraceOptions{Scale: dynsched.ScaleSmall})
	if err != nil {
		log.Fatal(err)
	}
	d := run.Trace.Data()
	s := run.Trace.Sync()
	fmt.Println("has reads and writes:", d.Reads > 0 && d.Writes > 0)
	fmt.Println("communication misses observed:", d.ReadMisses > 0)
	fmt.Println("barrier-synchronized:", s.Barriers > 2)
	// Output:
	// has reads and writes: true
	// communication misses observed: true
	// barrier-synchronized: true
}
