// Package dynsched reproduces "Hiding Memory Latency using Dynamic
// Scheduling in Shared-Memory Multiprocessors" (Kourosh Gharachorloo, Anoop
// Gupta, and John Hennessy, ISCA 1992).
//
// The paper studies whether dynamically scheduled (out-of-order) processors
// can exploit the memory-access overlap permitted by relaxed consistency
// models — processor consistency, weak ordering, and release consistency —
// to hide the latency of reads in a shared-memory multiprocessor. This
// package is the stable entry point over the full simulation stack:
//
//   - a 16-processor execution-driven multiprocessor simulation (the
//     equivalent of the paper's Tango Lite environment) with coherent
//     64 KB caches and a fixed miss penalty, producing annotated
//     per-processor instruction traces;
//   - the paper's five benchmark applications (MP3D, LU, PTHOR, LOCUS,
//     OCEAN) written in a small virtual RISC ISA;
//   - four trace-driven processor timing models — BASE, SSBR, SS, and the
//     Johnson-style dynamically scheduled DS processor — evaluated under
//     the SC, PC, WO, and RC consistency models;
//   - the experiment harness regenerating every table and figure of the
//     paper's evaluation.
//
// # Quick start
//
//	run, err := dynsched.GenerateTrace("lu", dynsched.TraceOptions{})
//	if err != nil { ... }
//	base := dynsched.RunProcessor(run.Trace, dynsched.ProcessorConfig{Arch: dynsched.ArchBase})
//	ds, _ := dynsched.Run(run.Trace, dynsched.ProcessorConfig{
//		Arch: dynsched.ArchDS, Model: dynsched.RC, Window: 64,
//	})
//	fmt.Printf("read stall: BASE %d cycles, DS-64 %d cycles\n",
//		base.Breakdown.Read, ds.Breakdown.Read)
//
// Lower-level building blocks (the ISA, the assembler, the coherent cache
// model) live in internal packages; the examples directory shows how the
// public API composes them.
package dynsched

import (
	"context"
	"fmt"
	"io"
	"time"

	"dynsched/internal/apps"
	"dynsched/internal/bpred"
	"dynsched/internal/consistency"
	"dynsched/internal/cpu"
	"dynsched/internal/exp"
	"dynsched/internal/faultinject"
	"dynsched/internal/mem"
	"dynsched/internal/obs"
	"dynsched/internal/tango"
	"dynsched/internal/trace"
	"dynsched/internal/vm"
)

// Version identifies the dynsched build; the command-line tools report it
// via their -version flags.
const Version = "0.10.0"

// Consistency models (§2.1 of the paper).
const (
	SC = consistency.SC // sequential consistency
	PC = consistency.PC // processor consistency
	WO = consistency.WO // weak ordering
	RC = consistency.RC // release consistency
)

// Model is a memory consistency model.
type Model = consistency.Model

// Arch selects a processor timing model (§4.1).
type Arch string

// The four processor architectures of Figure 3.
const (
	ArchBase Arch = "BASE" // fully serial in-order execution
	ArchSSBR Arch = "SSBR" // static scheduling, blocking reads, write buffer
	ArchSS   Arch = "SS"   // static scheduling, non-blocking reads
	ArchDS   Arch = "DS"   // dynamically scheduled (reorder buffer, renaming, BTB)
)

// Breakdown is an execution-time decomposition in cycles (Figure 3's bar
// sections plus explicit branch/other buckets).
type Breakdown = cpu.Breakdown

// Result is the outcome of replaying a trace through a processor model.
type Result = cpu.Result

// Trace is an annotated dynamic instruction trace of one processor.
type Trace = trace.Trace

// Scales for the benchmark problem sizes.
const (
	ScaleSmall  = apps.ScaleSmall  // unit-test sized
	ScaleMedium = apps.ScaleMedium // default experiment size
	ScalePaper  = apps.ScalePaper  // the paper's problem sizes
)

// Scale selects benchmark problem sizes.
type Scale = apps.Scale

// Apps returns the five benchmark application names in the paper's order.
func Apps() []string { return apps.Names() }

// TraceOptions configures trace generation on the simulated multiprocessor.
// The zero value reproduces the paper's machine: 16 processors, 64 KB
// direct-mapped write-back caches with 16-byte lines, invalidation-based
// coherence, a 50-cycle miss penalty, and tracing of processor 1.
type TraceOptions struct {
	NumCPUs     int
	Scale       Scale
	MissPenalty uint32
	TraceCPU    int

	// Observe attaches optional instrumentation to the simulation.
	Observe Observe

	// Ctx cancels the simulation cooperatively; nil never cancels.
	Ctx context.Context
	// MaxCycles kills the simulation with a *MachineError once simulated
	// time passes this many cycles (0 = unbounded) — a livelock backstop
	// with a machine-state dump for diagnosis.
	MaxCycles uint64
}

// Metrics is a registry of named counters, gauges, and histograms that the
// simulators publish into when attached via Observe. It is safe for
// concurrent use and exports one JSON snapshot via WriteJSON.
type Metrics = obs.Registry

// MetricsSnapshot is a point-in-time copy of a Metrics registry.
type MetricsSnapshot = obs.Snapshot

// PipeTracer records per-instruction pipeline events (decode, issue,
// complete, retire cycles) into a bounded ring buffer, exportable as a
// Konata log (WriteKonata) or Chrome trace-event JSON (WriteChromeTrace).
type PipeTracer = obs.PipeTracer

// Progress is a background ticker printing instruction and simulated-cycle
// throughput while a simulation runs. Concurrent simulations each report
// through their own labelled lane (Progress.Lane), so interleaved runs get
// side-by-side rows instead of clobbering one shared counter.
type Progress = obs.Progress

// JobBoard is the live queued/running/done board of experiment-scheduler
// jobs, served as JSON by the live server's /jobs endpoint.
type JobBoard = obs.JobBoard

// ServerState bundles the instrumentation a live observability server
// exposes; Server is the server itself (see StartServer).
type (
	ServerState = obs.ServerState
	Server      = obs.Server
)

// NewJobBoard creates an empty job board.
func NewJobBoard() *JobBoard { return obs.NewJobBoard() }

// StartServer starts the live observability HTTP server on addr (":0"
// selects an ephemeral port; Server.Addr reports the bound address). It
// serves /metrics (Prometheus text), /metrics.json, /jobs, /progress,
// /healthz, and /debug/pprof/.
func StartServer(addr string, st ServerState) (*Server, error) {
	return obs.StartServer(addr, st)
}

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewPipeTracer creates a pipeline tracer keeping the last capacity
// instructions (0 = a 65536-entry default).
func NewPipeTracer(capacity int) *PipeTracer { return obs.NewPipeTracer(capacity) }

// NewProgress creates a progress ticker writing to w every interval
// (0 = every second). Call Start to launch it and Stop for a final summary.
func NewProgress(w io.Writer, interval time.Duration) *Progress {
	return obs.NewProgress(w, interval)
}

// Observe bundles the optional instrumentation sinks accepted by
// GenerateTrace and Run. The zero value disables all instrumentation; every
// field may be set independently.
type Observe struct {
	// Metrics receives the run's counters and histograms.
	Metrics *Metrics
	// MetricsPrefix namespaces this run's metric names (e.g. "cpu.lu.").
	MetricsPrefix string
	// Pipe records per-instruction pipeline events (processor replays only).
	Pipe *PipeTracer
	// Progress receives periodic instruction/cycle counts.
	Progress *Progress
}

// TraceRun couples a generated trace with multiprocessor-side statistics.
type TraceRun struct {
	Trace      *Trace
	CacheStats []mem.Stats
	CPUStats   []tango.CPUStats
}

// GenerateTrace builds the named application and runs it on the simulated
// multiprocessor, returning the traced processor's annotated instruction
// stream. The application's result check is executed before returning, so a
// returned trace always comes from a functionally correct run.
func GenerateTrace(app string, opts TraceOptions) (*TraceRun, error) {
	if opts.NumCPUs == 0 {
		opts.NumCPUs = 16
	}
	if opts.MissPenalty == 0 {
		opts.MissPenalty = 50
	}
	if opts.TraceCPU == 0 {
		opts.TraceCPU = 1 % opts.NumCPUs
	}
	a, err := apps.Build(app, opts.NumCPUs, opts.Scale)
	if err != nil {
		return nil, err
	}
	lane := opts.Observe.Progress.Lane(app)
	defer lane.Done()
	cfg := tango.Config{
		NumCPUs: opts.NumCPUs, TraceCPU: opts.TraceCPU, Mem: mem.DefaultConfig(),
		Metrics: opts.Observe.Metrics, MetricsPrefix: opts.Observe.MetricsPrefix,
		Progress: lane, Ctx: opts.Ctx, MaxCycles: opts.MaxCycles,
	}
	cfg.Mem.MissPenalty = opts.MissPenalty
	var m *vm.PagedMem
	res, err := tango.Run(a.Progs, func(pm *vm.PagedMem) {
		m = pm
		a.Init(pm)
	}, cfg)
	if err != nil {
		return nil, err
	}
	if a.Check != nil {
		if err := a.Check(m); err != nil {
			return nil, fmt.Errorf("dynsched: %s result check failed: %w", app, err)
		}
	}
	if err := res.Trace.Validate(); err != nil {
		return nil, err
	}
	return &TraceRun{Trace: res.Trace, CacheStats: res.CacheStats, CPUStats: res.CPUStats}, nil
}

// ProcessorConfig selects a processor architecture and its parameters.
type ProcessorConfig struct {
	Arch  Arch
	Model Model

	// Window is the DS lookahead window size (default 64).
	Window int
	// IssueWidth is the decode/issue rate per cycle (default 1; §4.2 uses 4).
	IssueWidth int
	// PerfectBranches uses the oracle predictor of Figure 4.
	PerfectBranches bool
	// IgnoreDataDeps removes register dependences (Figure 4, right half).
	IgnoreDataDeps bool
	// StoreBufDepth, WriteBufDepth, ReadBufDepth, and MSHRs override the
	// default buffer sizes (16, 16, 16, unlimited).
	StoreBufDepth, WriteBufDepth, ReadBufDepth, MSHRs int

	// Observe attaches optional instrumentation to the replay.
	Observe Observe

	// Ctx cancels the replay cooperatively; nil never cancels.
	Ctx context.Context
	// WatchdogBudget overrides the no-forward-progress cycle budget after
	// which a stalled replay is killed with a *WatchdogError (0 = the
	// generous cpu.DefaultWatchdogBudget).
	WatchdogBudget uint64
	// NoTimeSkip forces pure cycle-by-cycle stepping, disabling the
	// event-driven time-skip optimization. The replay is slower but
	// produces byte-identical results; see cpu.Config.NoTimeSkip.
	NoTimeSkip bool
}

// Run replays tr through the configured processor model.
func Run(tr *Trace, pc ProcessorConfig) (Result, error) {
	arch := pc.Arch
	if arch == "" {
		arch = ArchBase
	}
	lane := pc.Observe.Progress.Lane(string(arch))
	defer lane.Done()
	cfg := cpu.Config{
		Model:          pc.Model,
		Window:         pc.Window,
		IssueWidth:     pc.IssueWidth,
		IgnoreDataDeps: pc.IgnoreDataDeps,
		StoreBufDepth:  pc.StoreBufDepth,
		WriteBufDepth:  pc.WriteBufDepth,
		ReadBufDepth:   pc.ReadBufDepth,
		MSHRs:          pc.MSHRs,
		Metrics:        pc.Observe.Metrics,
		MetricsPrefix:  pc.Observe.MetricsPrefix,
		Pipe:           pc.Observe.Pipe,
		Progress:       lane,
		Ctx:            pc.Ctx,
		WatchdogBudget: pc.WatchdogBudget,
		NoTimeSkip:     pc.NoTimeSkip,
	}
	if pc.PerfectBranches {
		cfg.Predictor = bpred.Perfect{}
	}
	switch arch {
	case ArchBase:
		res := cpu.RunBase(tr)
		cpu.PublishResult(pc.Observe.Metrics, pc.Observe.MetricsPrefix, res)
		return res, nil
	case ArchSSBR:
		return cpu.RunSSBR(tr, cfg)
	case ArchSS:
		return cpu.RunSS(tr, cfg)
	case ArchDS:
		return cpu.RunDS(tr, cfg)
	}
	return Result{}, fmt.Errorf("dynsched: unknown architecture %q", pc.Arch)
}

// RunProcessor is Run for configurations that cannot fail (BASE); it panics
// on configuration errors, which a literal-configured call never produces.
func RunProcessor(tr *Trace, pc ProcessorConfig) Result {
	r, err := Run(tr, pc)
	if err != nil {
		panic(err)
	}
	return r
}

// Experiment exposes the full table/figure harness. Trace generation and
// the independent replays of every figure, table, and sweep fan out across
// a bounded worker pool (ExperimentOptions.Workers; 0 = GOMAXPROCS), and
// results are collected in input order, so the output is byte-identical
// regardless of the worker count.
type Experiment = exp.Experiment

// ExperimentOptions configures the harness, including the Workers bound on
// the parallel experiment scheduler.
type ExperimentOptions = exp.Options

// NewExperiment creates a table/figure harness; see the exp package for the
// per-table accessors (Table1, Figure3All, ReadHiddenSummary, ...).
func NewExperiment(opts ExperimentOptions) *Experiment { return exp.New(opts) }

// DefaultExperimentOptions returns the paper's main configuration.
func DefaultExperimentOptions() ExperimentOptions { return exp.DefaultOptions() }

// Structured failure types. Every sweep degrades rather than aborts: a
// failing or panicking cell is retried (ExperimentOptions.Retries), then
// recorded as a *CellError inside the *PartialError returned alongside the
// surviving columns. The simulators convert livelocks into diagnosable
// errors — *WatchdogError from a replay that stops retiring instructions,
// *MachineError from a deadlocked, runaway, or cycle-budget-exceeded
// multiprocessor simulation — both carrying a state dump and marked
// permanent so they are never retried. All unwrap with errors.As.
type (
	CellError     = exp.CellError
	PartialError  = exp.PartialError
	WatchdogError = cpu.WatchdogError
	MachineError  = tango.MachineError
)

// FaultInjector arms deterministic faults (errors, panics, delays) at named
// sites inside the harness — the hook behind ExperimentOptions.Faults, used
// by the robustness tests and the fault-injection CI job.
type FaultInjector = faultinject.Injector

// Fault configures one injected failure; NewFaultInjector creates an empty
// (disarmed) injector.
type Fault = faultinject.Fault

// NewFaultInjector creates an empty fault injector.
func NewFaultInjector() *FaultInjector { return faultinject.New() }
