// Consistency compares the four memory consistency models on the same
// trace and processor: SC serializes everything, PC hides writes, WO
// overlaps between synchronization points, and RC adds the acquire/release
// asymmetry — Figure 1 of the paper, measured instead of drawn.
package main

import (
	"fmt"
	"log"

	"dynsched"
)

func main() {
	run, err := dynsched.GenerateTrace("mp3d", dynsched.TraceOptions{Scale: dynsched.ScaleSmall})
	if err != nil {
		log.Fatal(err)
	}
	base := dynsched.RunProcessor(run.Trace, dynsched.ProcessorConfig{Arch: dynsched.ArchBase})
	fmt.Printf("%-6s %-6s total=%7d  (BASE reference)\n", "BASE", "", base.Breakdown.Total())

	for _, arch := range []dynsched.Arch{dynsched.ArchSSBR, dynsched.ArchDS} {
		for _, model := range []dynsched.Model{dynsched.SC, dynsched.PC, dynsched.WO, dynsched.RC} {
			res, err := dynsched.Run(run.Trace, dynsched.ProcessorConfig{
				Arch: arch, Model: model, Window: 64,
			})
			if err != nil {
				log.Fatal(err)
			}
			b := res.Breakdown
			fmt.Printf("%-6s %-6s total=%7d  busy=%d sync=%d read=%d write=%d  (%.1f%% of BASE)\n",
				arch, model, b.Total(), b.Busy, b.Sync, b.Read, b.Write,
				100*float64(b.Total())/float64(base.Breakdown.Total()))
		}
	}
}
