// Techniques compares the latency-tolerance techniques the paper discusses
// (§5, §6) on one workload: dynamic scheduling under RC, sequential
// consistency boosted by non-binding prefetch and by speculative loads
// (reference [8]), compiler load rescheduling for the simple SS processor,
// and a switch-on-miss multiple-contexts processor.
package main

import (
	"fmt"
	"log"

	"dynsched"
	"dynsched/internal/apps"
	"dynsched/internal/bpred"
	"dynsched/internal/consistency"
	"dynsched/internal/cpu"
	"dynsched/internal/mem"
	"dynsched/internal/resched"
	"dynsched/internal/tango"
	"dynsched/internal/vm"
)

func main() {
	const app = "mp3d"

	// Generate all 16 processors' traces in one multiprocessor run so the
	// multiple-contexts processor has real sibling threads to interleave.
	a, err := apps.Build(app, 16, apps.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	cfg := tango.Config{NumCPUs: 16, TraceCPU: 1, Mem: mem.DefaultConfig(), RecordAll: true}
	res, err := tango.Run(a.Progs, func(m *vm.PagedMem) { a.Init(m) }, cfg)
	if err != nil {
		log.Fatal(err)
	}
	tr := res.Trace

	base := cpu.RunBase(tr)
	norm := func(total uint64) float64 {
		return 100 * float64(total) / float64(base.Breakdown.Total())
	}
	fmt.Printf("%-34s %8s\n", "technique ("+app+")", "%of BASE")
	fmt.Printf("%-34s %7.1f%%\n", "BASE (no overlap)", 100.0)

	show := func(name string, c cpu.Config) {
		r, err := cpu.RunDS(tr, c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %7.1f%%\n", name, norm(r.Breakdown.Total()))
	}
	show("SC, dynamic scheduling (W=64)", cpu.Config{Model: consistency.SC, Window: 64})
	show("SC + non-binding prefetch [8]", cpu.Config{Model: consistency.SC, Window: 64, Prefetch: true})
	show("SC + speculative loads [8]", cpu.Config{Model: consistency.SC, Window: 64, SpeculativeLoads: true})
	show("RC, dynamic scheduling (W=64)", cpu.Config{Model: consistency.RC, Window: 64})
	show("RC, W=64, perfect branches", cpu.Config{Model: consistency.RC, Window: 64, Predictor: bpred.Perfect{}})

	// Compiler rescheduling on the simple SS processor.
	ssPlain, err := cpu.RunSS(tr, cpu.Config{Model: consistency.RC})
	if err != nil {
		log.Fatal(err)
	}
	moved, st := resched.RescheduleLevel(tr, 64, resched.Aggressive)
	ssSched, err := cpu.RunSS(moved, cpu.Config{Model: consistency.RC})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %7.1f%%\n", "SS (static, non-blocking reads)", norm(ssPlain.Breakdown.Total()))
	fmt.Printf("%-34s %7.1f%%   (%d loads hoisted)\n", "SS + global load scheduling",
		norm(ssSched.Breakdown.Total()), st.Hoisted)

	// Multiple contexts: utilization rather than normalized time (it runs
	// 4 threads' worth of work on one pipeline).
	mc, err := cpu.RunMC(res.Traces[:4], 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %7.0f%%   (utilization, 4 contexts)\n", "multiple contexts (switch=4)",
		100*mc.Utilization)

	// And the library facade view of the same headline comparison.
	ds, err := dynsched.Run(tr, dynsched.ProcessorConfig{Arch: dynsched.ArchDS, Model: dynsched.RC, Window: 64})
	if err != nil {
		log.Fatal(err)
	}
	hidden := 1 - float64(ds.Breakdown.Read)/float64(base.Breakdown.Read)
	fmt.Printf("\nRC dynamic scheduling hides %.0f%% of %s's read latency at window 64.\n", 100*hidden, app)
}
