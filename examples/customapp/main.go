// Customapp shows how to add a sixth workload to the simulator: a parallel
// histogram kernel written directly against the virtual-ISA assembler, run
// on the simulated multiprocessor, and replayed through the processor
// models. This is the path a user takes to study their own sharing pattern
// (here: scattered read-modify-writes to a shared table, a miss-heavy
// pattern between MP3D's space array and PTHOR's queues).
package main

import (
	"fmt"
	"log"

	"dynsched"
	"dynsched/internal/asm"
	"dynsched/internal/mem"
	"dynsched/internal/tango"
	"dynsched/internal/vm"
)

const (
	items   = 4096
	buckets = 512
)

func buildHistogram() (*asm.Program, uint64, uint64) {
	lay := asm.NewLayout(1 << 20)
	data := lay.Words(items)   // input values
	hist := lay.Words(buckets) // shared histogram

	b := asm.NewBuilder("histogram")
	dbase := b.Alloc()
	hbase := b.Alloc()
	b.Li(dbase, int64(data))
	b.Li(hbase, int64(hist))

	// Each processor owns an interleaved slice of the input.
	lo := b.Alloc()
	hi := b.Alloc()
	b.Mov(lo, asm.RegCPU)
	b.Li(hi, items)
	b.Barrier(0)

	i := b.Alloc()
	b.Mov(i, lo)
	b.While(func(c asm.Reg) { b.Slt(c, i, hi) }, func() {
		v := b.Alloc()
		p := b.Alloc()
		b.Shli(p, i, 3)
		b.Add(p, p, dbase)
		b.Ld(v, p, 0) // value
		b.Andi(v, v, buckets-1)
		b.Shli(v, v, 3)
		b.Add(v, v, hbase)
		b.Ld(p, v, 0) // histogram cell (shared, written by all CPUs)
		b.Addi(p, p, 1)
		b.St(v, 0, p)
		b.Free(v, p)
		b.Add(i, i, asm.RegNCPU)
	})
	b.Free(i, lo, hi, dbase, hbase)
	b.Barrier(1)
	b.Halt()
	return b.MustBuild(), data, hist
}

func main() {
	prog, data, hist := buildHistogram()
	progs := make([]*asm.Program, 16)
	for i := range progs {
		progs[i] = prog
	}

	cfg := tango.Config{NumCPUs: 16, TraceCPU: 1, Mem: mem.DefaultConfig()}
	var m *vm.PagedMem
	res, err := tango.Run(progs, func(pm *vm.PagedMem) {
		m = pm
		seed := uint64(0x1234)
		for i := uint64(0); i < items; i++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			pm.Store(data+i*8, seed>>33)
		}
	}, cfg)
	if err != nil {
		log.Fatal(err)
	}

	var total uint64
	for i := uint64(0); i < buckets; i++ {
		total += m.Load(hist + i*8)
	}
	fmt.Printf("histogram filled: %d of %d counted (unsynchronized updates race, as in MP3D)\n",
		total, items)

	d := res.Trace.Data()
	fmt.Printf("traced CPU: %d instrs, %.0f reads/1000, %.1f read misses/1000\n",
		d.BusyCycles, d.Per1000(d.Reads), d.Per1000(d.ReadMisses))

	base := dynsched.RunProcessor(res.Trace, dynsched.ProcessorConfig{Arch: dynsched.ArchBase})
	for _, w := range []int{16, 64, 256} {
		ds, err := dynsched.Run(res.Trace, dynsched.ProcessorConfig{
			Arch: dynsched.ArchDS, Model: dynsched.RC, Window: w,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("DS-%-3d: %5.1f%% of BASE time, read stall %5.1f%% of BASE read stall\n",
			w, 100*float64(ds.Breakdown.Total())/float64(base.Breakdown.Total()),
			100*float64(ds.Breakdown.Read)/float64(base.Breakdown.Read))
	}
}
