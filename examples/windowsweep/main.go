// Windowsweep reproduces the heart of Figure 3 for every application: how
// the fraction of read latency hidden by the dynamically scheduled
// processor grows with the lookahead window under release consistency, and
// where it levels off.
package main

import (
	"flag"
	"fmt"
	"log"

	"dynsched"
)

func main() {
	scaleName := flag.String("scale", "small", "problem scale: small, medium, paper")
	latency := flag.Uint("latency", 50, "miss penalty in cycles")
	flag.Parse()

	var scale dynsched.Scale
	switch *scaleName {
	case "small":
		scale = dynsched.ScaleSmall
	case "medium":
		scale = dynsched.ScaleMedium
	case "paper":
		scale = dynsched.ScalePaper
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}

	windows := []int{16, 32, 64, 128, 256}
	fmt.Printf("%-8s", "app")
	for _, w := range windows {
		fmt.Printf("  W=%-4d", w)
	}
	fmt.Println("  (fraction of read latency hidden, RC)")

	for _, app := range dynsched.Apps() {
		run, err := dynsched.GenerateTrace(app, dynsched.TraceOptions{
			Scale: scale, MissPenalty: uint32(*latency),
		})
		if err != nil {
			log.Fatal(err)
		}
		base := dynsched.RunProcessor(run.Trace, dynsched.ProcessorConfig{Arch: dynsched.ArchBase})
		fmt.Printf("%-8s", app)
		for _, w := range windows {
			ds, err := dynsched.Run(run.Trace, dynsched.ProcessorConfig{
				Arch: dynsched.ArchDS, Model: dynsched.RC, Window: w,
			})
			if err != nil {
				log.Fatal(err)
			}
			hidden := 0.0
			if base.Breakdown.Read > 0 {
				hidden = 1 - float64(ds.Breakdown.Read)/float64(base.Breakdown.Read)
			}
			fmt.Printf("  %4.0f%% ", 100*hidden)
		}
		fmt.Println()
	}
}
