// Quickstart: generate a trace for one application on the simulated
// 16-processor machine, then compare the BASE processor against the
// dynamically scheduled processor under release consistency — the paper's
// headline experiment in a dozen lines.
package main

import (
	"fmt"
	"log"

	"dynsched"
)

func main() {
	run, err := dynsched.GenerateTrace("lu", dynsched.TraceOptions{Scale: dynsched.ScaleSmall})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced processor executed %d instructions\n", run.Trace.Len())

	base := dynsched.RunProcessor(run.Trace, dynsched.ProcessorConfig{Arch: dynsched.ArchBase})
	fmt.Printf("BASE:      %v\n", base.Breakdown)

	for _, w := range []int{16, 64, 256} {
		ds, err := dynsched.Run(run.Trace, dynsched.ProcessorConfig{
			Arch: dynsched.ArchDS, Model: dynsched.RC, Window: w,
		})
		if err != nil {
			log.Fatal(err)
		}
		hidden := 1 - float64(ds.Breakdown.Read)/float64(base.Breakdown.Read)
		fmt.Printf("DS-%-3d RC: %v  (read latency hidden: %.0f%%)\n", w, ds.Breakdown, 100*hidden)
	}
}
