package dynsched

// BenchmarkObsOverhead guards the observability layer's core promise: with
// no sinks attached (the default configuration) the instrumented replay
// loops pay only nil checks. The benchmark replays the same trace through
// the DS model with instrumentation disabled and enabled, reports the
// relative cost, and writes BENCH_obs.json so the numbers are tracked in
// the repository.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"dynsched/internal/consistency"
	"dynsched/internal/cpu"
	"dynsched/internal/obs"
)

type obsBenchReport struct {
	GoVersion    string  `json:"go_version"`
	GOOS         string  `json:"goos"`
	GOARCH       string  `json:"goarch"`
	App          string  `json:"app"`
	Instructions uint64  `json:"instructions"`
	Model        string  `json:"model"`
	Window       int     `json:"window"`
	DisabledNs   float64 `json:"disabled_ns_per_op"`
	EnabledNs    float64 `json:"enabled_ns_per_op"`
	OverheadPct  float64 `json:"enabled_overhead_pct"`
	// TimelineNs is the replay cost with only the interval sampler attached
	// (the `hidelat timeline` configuration); its overhead is measured
	// against the fully-disabled baseline.
	TimelineNs          float64 `json:"timeline_ns_per_op"`
	TimelineOverheadPct float64 `json:"timeline_overhead_pct"`
}

func BenchmarkObsOverhead(b *testing.B) {
	b.ReportAllocs()
	e := benchHarness(b)
	run, err := e.Run("ocean")
	if err != nil {
		b.Fatal(err)
	}
	tr := run.Trace
	rep := obsBenchReport{
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		App: "ocean", Instructions: uint64(tr.Len()), Model: "RC", Window: 64,
	}

	b.Run("disabled", func(b *testing.B) {
		b.ReportAllocs()
		cfg := cpu.Config{Model: consistency.RC, Window: 64}
		for i := 0; i < b.N; i++ {
			if _, err := cpu.RunDS(tr, cfg); err != nil {
				b.Fatal(err)
			}
		}
		rep.DisabledNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("enabled", func(b *testing.B) {
		b.ReportAllocs()
		// The sinks are allocated once and reused, as a long-lived harness
		// would: this measures the per-instruction instrumentation cost, not
		// ring-buffer allocation.
		cfg := cpu.Config{
			Model: consistency.RC, Window: 64,
			Metrics: obs.NewRegistry(), MetricsPrefix: "cpu.ocean.",
			Pipe: obs.NewPipeTracer(0),
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cpu.RunDS(tr, cfg); err != nil {
				b.Fatal(err)
			}
		}
		rep.EnabledNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("timeline", func(b *testing.B) {
		b.ReportAllocs()
		// One sampler per replay, as the timeline step runs it: the dominant
		// cost is the per-cycle boundary check and occupancy sums, not the
		// bounded ring (at most 256 points regardless of run length).
		cfg := cpu.Config{Model: consistency.RC, Window: 64}
		for i := 0; i < b.N; i++ {
			cfg.Timeline = obs.NewTimeline(10, 256)
			if _, err := cpu.RunDS(tr, cfg); err != nil {
				b.Fatal(err)
			}
		}
		rep.TimelineNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})

	if rep.DisabledNs > 0 && rep.TimelineNs > 0 {
		rep.TimelineOverheadPct = 100 * (rep.TimelineNs - rep.DisabledNs) / rep.DisabledNs
	}
	if rep.DisabledNs > 0 && rep.EnabledNs > 0 {
		rep.OverheadPct = 100 * (rep.EnabledNs - rep.DisabledNs) / rep.DisabledNs
		b.ReportMetric(rep.OverheadPct, "%enabled-overhead")
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_obs.json", append(out, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
