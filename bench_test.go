package dynsched

// One benchmark per table and figure of the paper's evaluation, plus
// benches for the building blocks (trace generation, each processor model)
// and the ablation experiments. Each benchmark regenerates its artifact
// from cached traces; custom metrics report the reproduced headline numbers
// (e.g. the fraction of read latency hidden) alongside the timing.
//
// Benchmarks run at small scale so `go test -bench=.` completes quickly;
// the cmd/hidelat tool regenerates the same artifacts at medium or paper
// scale.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"dynsched/internal/apps"
	"dynsched/internal/consistency"
	"dynsched/internal/cpu"
	"dynsched/internal/exp"
	"dynsched/internal/trace"
)

var (
	benchOnce sync.Once
	benchExp  *exp.Experiment
	benchErr  error
)

// benchHarness returns a shared harness with all five traces generated.
func benchHarness(b *testing.B) *exp.Experiment {
	b.Helper()
	benchOnce.Do(func() {
		opts := exp.DefaultOptions()
		opts.Scale = apps.ScaleSmall
		benchExp = exp.New(opts)
		for _, app := range benchExp.Apps() {
			if _, err := benchExp.Run(app); err != nil {
				benchErr = err
				return
			}
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchExp
}

// BenchmarkTraceGeneration measures the execution-driven multiprocessor
// simulation that produces each application's annotated trace (§3.2).
func BenchmarkTraceGeneration(b *testing.B) {
	b.ReportAllocs()
	for _, app := range apps.Names() {
		b.Run(app, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opts := exp.DefaultOptions()
				opts.Scale = apps.ScaleSmall
				opts.Apps = []string{app}
				e := exp.New(opts)
				run, err := e.Run(app)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(run.Trace.Len()), "instrs")
			}
		})
	}
}

// BenchmarkTable1 regenerates Table 1 (data reference statistics).
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	e := benchHarness(b)
	for i := 0; i < b.N; i++ {
		rows, err := e.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (synchronization statistics).
func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	e := benchHarness(b)
	for i := 0; i < b.N; i++ {
		if _, err := e.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (branch behaviour under the paper's
// 2048-entry 4-way BTB).
func BenchmarkTable3(b *testing.B) {
	b.ReportAllocs()
	e := benchHarness(b)
	for i := 0; i < b.N; i++ {
		rows, err := e.Table3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Branches.PctCorrect, "%correct(mp3d)")
	}
}

// BenchmarkFigure3 regenerates Figure 3 per application: the full
// static/dynamic × SC/PC/RC matrix.
func BenchmarkFigure3(b *testing.B) {
	b.ReportAllocs()
	e := benchHarness(b)
	for _, app := range e.Apps() {
		b.Run(app, func(b *testing.B) {
			b.ReportAllocs()
			run, err := e.Run(app)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				cols, err := exp.Figure3(run.Trace)
				if err != nil {
					b.Fatal(err)
				}
				last := cols[len(cols)-1] // RC-DS256
				b.ReportMetric(last.Normalized, "norm%RC-DS256")
			}
		})
	}
}

// BenchmarkFigure4 regenerates Figure 4 per application: the perfect-
// prediction and ignored-dependence isolation sweep.
func BenchmarkFigure4(b *testing.B) {
	b.ReportAllocs()
	e := benchHarness(b)
	for _, app := range e.Apps() {
		b.Run(app, func(b *testing.B) {
			b.ReportAllocs()
			run, err := e.Run(app)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := exp.Figure4(run.Trace); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSummary regenerates the §7 read-latency-hidden summary and
// reports the window-64 average the paper quotes as 81%.
func BenchmarkSummary(b *testing.B) {
	b.ReportAllocs()
	e := benchHarness(b)
	for i := 0; i < b.N; i++ {
		avg, _, err := e.ReadHiddenSummary()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*avg[16], "%hidden@16")
		b.ReportMetric(100*avg[32], "%hidden@32")
		b.ReportMetric(100*avg[64], "%hidden@64")
	}
}

// BenchmarkReadMissDelays regenerates the §4.1.3 issue-delay diagnostic.
func BenchmarkReadMissDelays(b *testing.B) {
	b.ReportAllocs()
	e := benchHarness(b)
	run, err := e.Run("pthor")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		h, err := exp.ReadMissDelays(run.Trace)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*h.FractionAbove(40), "%delayed>40(pthor)")
	}
}

// BenchmarkLatency100 regenerates the §4.2 100-cycle-latency window sweep.
func BenchmarkLatency100(b *testing.B) {
	b.ReportAllocs()
	opts := exp.DefaultOptions()
	opts.Scale = apps.ScaleSmall
	opts.MissPenalty = 100
	e := exp.New(opts)
	for i := 0; i < b.N; i++ {
		acs, err := e.WindowSweepAll()
		if err != nil {
			b.Fatal(err)
		}
		if len(acs) != 5 {
			b.Fatal("missing apps")
		}
	}
}

// BenchmarkIssue4 regenerates the §4.2 four-wide-issue window sweep.
func BenchmarkIssue4(b *testing.B) {
	b.ReportAllocs()
	e := benchHarness(b)
	for i := 0; i < b.N; i++ {
		if _, err := e.Issue4All(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTango16 measures the 16-processor execution-driven simulation
// (package tango) generating one application trace end to end — the hot
// loop behind every trace the harness consumes, and the beneficiary of the
// ready-heap scheduler that replaced the per-step linear processor scan.
func BenchmarkTango16(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opts := exp.DefaultOptions()
		opts.Scale = apps.ScaleSmall
		opts.NumCPUs = 16
		opts.Apps = []string{"mp3d"}
		e := exp.New(opts)
		run, err := e.Run("mp3d")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(run.Trace.Len()), "instrs")
	}
}

// BenchmarkHighLatencySweep measures a DS window-64 RC replay at rising
// miss penalties, with the event-driven time skip on (the default) and
// forced off. The skip's payoff grows with the penalty: the longer each
// memory stall, the more quiet cycles the replay jumps over in bulk, so
// the skip arm's cost tracks the event count while the noskip arm's cost
// tracks simulated cycles.
func BenchmarkHighLatencySweep(b *testing.B) {
	b.ReportAllocs()
	for _, penalty := range []uint32{50, 200, 1000} {
		opts := exp.DefaultOptions()
		opts.Scale = apps.ScaleSmall
		opts.MissPenalty = penalty
		opts.Apps = []string{"ocean"}
		e := exp.New(opts)
		run, err := e.Run("ocean")
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			name   string
			noskip bool
		}{{"skip", false}, {"noskip", true}} {
			b.Run(fmt.Sprintf("lat%d/%s", penalty, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				cfg := cpu.Config{Model: consistency.RC, Window: 64, NoTimeSkip: mode.noskip}
				for i := 0; i < b.N; i++ {
					if _, err := cpu.RunDS(run.Trace, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkProcessorModels measures each timing model replaying the same
// trace — the cost of one Figure 3 bar.
func BenchmarkProcessorModels(b *testing.B) {
	b.ReportAllocs()
	e := benchHarness(b)
	run, err := e.Run("ocean")
	if err != nil {
		b.Fatal(err)
	}
	tr := run.Trace
	b.Run("BASE", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cpu.RunBase(tr)
		}
	})
	b.Run("SSBR", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cpu.RunSSBR(tr, cpu.Config{Model: consistency.RC}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SS", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cpu.RunSS(tr, cpu.Config{Model: consistency.RC}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, w := range exp.Windows {
		b.Run(fmt.Sprintf("DS-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cpu.RunDS(tr, cpu.Config{Model: consistency.RC, Window: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblations measures the design-choice sweeps called out in
// DESIGN.md: store-buffer depth, MSHR count, and the WO model.
func BenchmarkAblations(b *testing.B) {
	b.ReportAllocs()
	e := benchHarness(b)
	b.Run("store-buffer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.AblationStoreBuffer("mp3d"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mshr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.AblationMSHR("mp3d"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("weak-ordering", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.WOAll(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMultipleContexts measures the §5 competitive-technique model.
func BenchmarkMultipleContexts(b *testing.B) {
	b.ReportAllocs()
	e := benchHarness(b)
	for i := 0; i < b.N; i++ {
		rows, err := e.MultipleContexts("lu", 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rows[len(rows)-1].Result.Utilization, "%util@8ctx")
	}
}

// BenchmarkResched measures the compiler-rescheduling comparison.
func BenchmarkResched(b *testing.B) {
	b.ReportAllocs()
	e := benchHarness(b)
	for i := 0; i < b.N; i++ {
		rows, err := e.ReschedAll()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkSCPrefetch measures the reference-[8] prefetch sweep.
func BenchmarkSCPrefetch(b *testing.B) {
	b.ReportAllocs()
	e := benchHarness(b)
	for i := 0; i < b.N; i++ {
		if _, err := e.SCPrefetchAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContention measures the finite-bandwidth trace regeneration.
func BenchmarkContention(b *testing.B) {
	b.ReportAllocs()
	opts := exp.DefaultOptions()
	opts.Scale = apps.ScaleSmall
	for i := 0; i < b.N; i++ {
		rows, err := exp.Contention("mp3d", opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].AvgMissLat, "avgMissLat@25")
	}
}

// BenchmarkTraceSerialization measures trace save/load round trips.
func BenchmarkTraceSerialization(b *testing.B) {
	b.ReportAllocs()
	e := benchHarness(b)
	run, err := e.Run("ocean")
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := run.Trace.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := trace.ReadTrace(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}
