package dynsched

import (
	"strings"
	"testing"
)

func smallTrace(t *testing.T, app string) *TraceRun {
	t.Helper()
	run, err := GenerateTrace(app, TraceOptions{Scale: ScaleSmall})
	if err != nil {
		t.Fatalf("GenerateTrace(%s): %v", app, err)
	}
	return run
}

func TestAppsList(t *testing.T) {
	apps := Apps()
	if len(apps) != 5 {
		t.Fatalf("Apps() = %v, want the paper's five", apps)
	}
	want := "mp3d lu pthor locus ocean"
	if got := strings.Join(apps, " "); got != want {
		t.Errorf("Apps() order = %q, want %q (paper order)", got, want)
	}
}

func TestGenerateTraceDefaults(t *testing.T) {
	run := smallTrace(t, "mp3d")
	if run.Trace.NumCPUs != 16 {
		t.Errorf("default NumCPUs = %d, want 16", run.Trace.NumCPUs)
	}
	if run.Trace.MissPenalty != 50 {
		t.Errorf("default MissPenalty = %d, want 50", run.Trace.MissPenalty)
	}
	if run.Trace.CPU != 1 {
		t.Errorf("default TraceCPU = %d, want 1", run.Trace.CPU)
	}
	if len(run.CacheStats) != 16 || len(run.CPUStats) != 16 {
		t.Errorf("per-CPU stats lengths = %d/%d, want 16", len(run.CacheStats), len(run.CPUStats))
	}
}

func TestGenerateTraceUnknownApp(t *testing.T) {
	if _, err := GenerateTrace("fft", TraceOptions{}); err == nil {
		t.Error("unknown application accepted")
	}
}

func TestRunAllArchitectures(t *testing.T) {
	run := smallTrace(t, "lu")
	base := RunProcessor(run.Trace, ProcessorConfig{Arch: ArchBase})
	if base.Breakdown.Total() == 0 {
		t.Fatal("BASE produced zero cycles")
	}
	for _, arch := range []Arch{ArchSSBR, ArchSS, ArchDS} {
		for _, model := range []Model{SC, PC, WO, RC} {
			res, err := Run(run.Trace, ProcessorConfig{Arch: arch, Model: model, Window: 32})
			if err != nil {
				t.Fatalf("Run(%s, %v): %v", arch, model, err)
			}
			if res.Breakdown.Total() > base.Breakdown.Total() {
				t.Errorf("%s/%v total %d exceeds BASE %d", arch, model,
					res.Breakdown.Total(), base.Breakdown.Total())
			}
			if res.Instructions != uint64(run.Trace.Len()) {
				t.Errorf("%s/%v instructions = %d, want %d", arch, model,
					res.Instructions, run.Trace.Len())
			}
		}
	}
}

func TestRunUnknownArch(t *testing.T) {
	run := smallTrace(t, "lu")
	if _, err := Run(run.Trace, ProcessorConfig{Arch: "VLIW"}); err == nil {
		t.Error("unknown architecture accepted")
	}
}

func TestRunEmptyArchDefaultsToBase(t *testing.T) {
	run := smallTrace(t, "lu")
	a, err := Run(run.Trace, ProcessorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b := RunProcessor(run.Trace, ProcessorConfig{Arch: ArchBase})
	if a.Breakdown != b.Breakdown {
		t.Error("zero-value ProcessorConfig should behave as BASE")
	}
}

func TestPerfectBranchesKnob(t *testing.T) {
	run := smallTrace(t, "pthor") // worst branch behaviour
	btb, err := Run(run.Trace, ProcessorConfig{Arch: ArchDS, Model: RC, Window: 128})
	if err != nil {
		t.Fatal(err)
	}
	perfect, err := Run(run.Trace, ProcessorConfig{Arch: ArchDS, Model: RC, Window: 128, PerfectBranches: true})
	if err != nil {
		t.Fatal(err)
	}
	if perfect.Mispredicts != 0 {
		t.Errorf("perfect predictor mispredicted %d branches", perfect.Mispredicts)
	}
	if btb.Mispredicts == 0 {
		t.Error("BTB mispredicted nothing on PTHOR — implausible")
	}
	if perfect.Breakdown.Total() > btb.Breakdown.Total() {
		t.Errorf("perfect prediction slower (%d) than BTB (%d)",
			perfect.Breakdown.Total(), btb.Breakdown.Total())
	}
}

func TestCPIDecreasesWithWindow(t *testing.T) {
	run := smallTrace(t, "ocean")
	var prev float64 = 1e18
	for _, w := range []int{16, 64, 256} {
		res, err := Run(run.Trace, ProcessorConfig{Arch: ArchDS, Model: RC, Window: w})
		if err != nil {
			t.Fatal(err)
		}
		if cpi := res.CPI(); cpi > prev*1.02 {
			t.Errorf("CPI grew with window %d: %.3f > %.3f", w, cpi, prev)
		} else {
			prev = cpi
		}
	}
}

func TestExperimentFacade(t *testing.T) {
	opts := DefaultExperimentOptions()
	opts.Scale = ScaleSmall
	opts.Apps = []string{"lu"}
	e := NewExperiment(opts)
	rows, err := e.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].App != "lu" {
		t.Errorf("Table1 rows = %+v", rows)
	}
}

func TestTraceRunCacheStatsConsistency(t *testing.T) {
	run := smallTrace(t, "mp3d")
	// The traced CPU's cache stats must agree with the trace annotations.
	d := run.Trace.Data()
	cs := run.CacheStats[run.Trace.CPU]
	// The cache counters include lock/unlock and event traffic, so they are
	// an upper bound on the data-reference counts.
	if cs.ReadMisses < d.ReadMisses {
		t.Errorf("cache read misses %d < trace read misses %d", cs.ReadMisses, d.ReadMisses)
	}
	if cs.WriteMisses < d.WriteMisses {
		t.Errorf("cache write misses %d < trace write misses %d", cs.WriteMisses, d.WriteMisses)
	}
}
