// Command hidelat regenerates the tables and figures of "Hiding Memory
// Latency using Dynamic Scheduling in Shared-Memory Multiprocessors"
// (Gharachorloo, Gupta & Hennessy, ISCA 1992).
//
// Usage:
//
//	hidelat [flags] <experiment>
//
// Experiments:
//
//	table1      data reference statistics (§3.3, Table 1)
//	table2      synchronization statistics (§3.3, Table 2)
//	table3      branch behaviour (§3.3, Table 3)
//	fig3        static vs dynamic scheduling across SC/PC/RC (§4.1, Figure 3)
//	fig4        perfect prediction and ignored dependences (§4.1.3, Figure 4)
//	summary     fraction of read latency hidden per window (§7)
//	delays      read-miss issue-delay distribution (§4.1.3)
//	latency100  RC window sweep at 100-cycle miss latency (§4.2)
//	issue4      RC window sweep with 4-wide issue (§4.2)
//	wo          weak ordering window sweep (extension)
//	scpf        SC with non-binding prefetch (extension, ref [8])
//	resched     compiler load rescheduling for SS (§5/§7 future work)
//	cachegeom   cache-size ablation (trace regeneration per size)
//	contexts    multiple-hardware-contexts comparison (§5)
//	contention  finite memory bandwidth ablation (§5 extension)
//	machines    2-32 processor scaling sweep (extension)
//	distances   distance between consecutive read misses (§4.1.3)
//	ablate      store-buffer / MSHR / BTB ablations (extension)
//	analyze     critical-path cycle attribution and top-down bottlenecks
//	timeline    interval time series with phase detection per cell
//	all         everything above
//
// Flags select the problem scale (-scale small|medium|paper), the miss
// penalty (-latency), the processor count (-cpus), the traced processor
// (-tracecpu), and the applications (-apps mp3d,lu,...). -j bounds the
// worker goroutines used to fan out the independent replays of each
// experiment (0, the default, uses GOMAXPROCS); every experiment's output
// is byte-identical regardless of the worker count.
//
// Observability flags: -metrics-out writes a JSON snapshot of every counter
// and histogram the run produced; -pipe-trace-out writes a per-instruction
// pipeline trace of a representative RC-DS64 replay (Konata, or Chrome
// trace-event JSON when the path ends in .json); -progress prints a
// throughput line to stderr every second; -cpuprofile/-memprofile write
// runtime/pprof profiles.
//
// The analyze experiment replays every application with a critical-path
// collector attached and prints, per configuration, what fraction of
// execution time is attributable to each fine-grained cause (data
// dependences, read/write latency, synchronization, consistency ordering,
// buffer and MSHR structural limits, branch-misprediction refill), plus the
// distribution of each instruction's last-arriving dependence edge. The
// buckets sum exactly to the simulated execution time. -analyze-json writes
// the report as JSON; -flame-out writes a Chrome trace-event flamegraph
// (load it in chrome://tracing or Perfetto). With -serve, the attribution
// is also queryable live at /bottlenecks once the analyze step records it.
//
// The timeline experiment replays every application with an interval
// sampler attached: every 2^k simulated cycles it snapshots the stall
// breakdown, retire rate, and queue occupancies, decimating to coarser
// intervals when the fixed-size ring fills. A change-point detector over
// the stall-mix vectors segments each run into phases, and the step prints
// per-cell sparkline timelines with phase boundaries plus a per-phase
// summary table. The series are byte-identical across -j and -noskip.
// -timeline-json writes the full report (samples and phases) as JSON;
// -timeline-csv writes the samples as CSV.
//
// -serve ADDR starts a live HTTP server for the duration of the run
// (":0" picks a free port; the bound address is printed to stderr) exposing
// /metrics (Prometheus text), /metrics.json, /jobs (the experiment
// scheduler's per-job board), /progress, /timeline (interval series of
// every registered cell), /events (live timeline samples as Server-Sent
// Events), /healthz, and /debug/pprof/.
//
// -ledger PATH appends one structured JSON-Lines record per invocation:
// run id, version, options, wall time, allocator statistics, per-app
// generation cycles, per-cell replay cycles and MCPI, and a determinism
// checksum of the metrics snapshot.
//
// Distributed sweeps: -coordinator ADDR runs a column experiment (fig3,
// fig4, latency100, issue4, wo, scpf) as a fault-tolerant coordinator that
// generates the traces locally and serves the replay cells to remote
// workers over HTTP; workers join with
//
//	hidelat worker -join http://HOST:PORT [-id NAME]
//
// Cells move through a lease-based queue (a worker that stops heartbeating
// loses its lease and the cell is reassigned), traces travel through a
// checksummed content-addressed cache, and the merged output — tables,
// CSV, metrics, and the ledger's determinism checksum — is byte-identical
// to a single-process run at any worker count and under any failure
// schedule. -lease bounds how long a silent worker holds a cell and
// -queue-max bounds the admission queue (excess requests get 429).
//
// Incremental sweeps: -cache DIR (default $HIDELAT_CACHE) memoizes
// generated traces and per-cell replay results in a persistent
// content-addressed store, so repeated sweeps only pay for what changed —
// a warm run's stdout and ledger determinism checksum are byte-identical
// to the cold run that populated the store. -cache-off disables the store
// for one run; -cache-verify P recomputes fraction P of the hits from
// scratch and fails the run on any divergence. The store is maintained
// with
//
//	hidelat cache [-dir DIR] stats|verify|gc [-max-bytes N]|clear
//
// The diff subcommand compares two run artifacts:
//
//	hidelat diff [-threshold 0.05] [-json] OLD NEW
//
// OLD and NEW may each be a JSON-Lines run ledger (the newest record wins),
// a single ledger record, a -metrics-out snapshot, a -timeline-json report
// (compared on per-cell cycles, MCPI, and per-phase spans), or any JSON
// object with numeric leaves. All tracked metrics are cost metrics, so an increase
// beyond the threshold is a regression; diff exits non-zero when any
// tracked metric regresses, which lets CI gate on the trajectory.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dynsched"
	"dynsched/internal/apps"
	"dynsched/internal/bpred"
	"dynsched/internal/cache"
	"dynsched/internal/consistency"
	"dynsched/internal/cpu"
	"dynsched/internal/critpath"
	"dynsched/internal/dist"
	"dynsched/internal/exp"
	"dynsched/internal/obs"
	"dynsched/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hidelat:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "diff" {
		return runDiff(args[1:])
	}
	if len(args) > 0 && args[0] == "worker" {
		return runWorker(args[1:])
	}
	if len(args) > 0 && args[0] == "cache" {
		return runCacheCmd(args[1:])
	}
	start := time.Now()
	fs := flag.NewFlagSet("hidelat", flag.ContinueOnError)
	scaleName := fs.String("scale", "medium", "problem scale: small, medium, or paper")
	latency := fs.Uint("latency", 50, "cache miss penalty in cycles")
	cpus := fs.Int("cpus", 16, "processors in the multiprocessor simulation")
	traceCPU := fs.Int("tracecpu", 1, "processor whose trace is replayed")
	appList := fs.String("apps", "", "comma-separated applications (default: all five)")
	workers := fs.Int("j", 0, "worker goroutines for experiment fan-out (0 = GOMAXPROCS)")
	retries := fs.Int("retries", 0, "extra attempts a failed replay cell gets before it is marked failed")
	noskip := fs.Bool("noskip", false, "disable event-driven time skipping in the processor replays (results are identical; for diagnosis and equivalence testing)")
	timeout := fs.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	csvOut := fs.Bool("csv", false, "emit figure data as CSV (fig3, fig4, latency100, issue4, wo, scpf)")
	metricsOut := fs.String("metrics-out", "", "write a JSON metrics snapshot to this file")
	analyzeJSON := fs.String("analyze-json", "", "write the analyze report as JSON to this file")
	flameOut := fs.String("flame-out", "", "write the analyze attribution as a Chrome trace-event flamegraph to this file")
	timelineJSON := fs.String("timeline-json", "", "write the timeline report (samples and phases) as JSON to this file")
	timelineCSV := fs.String("timeline-csv", "", "write the timeline samples as CSV to this file")
	pipeOut := fs.String("pipe-trace-out", "", "write a pipeline trace of an RC-DS64 replay of the first app (.json = Chrome trace, else Konata)")
	progress := fs.Bool("progress", false, "print simulation throughput to stderr every second")
	serveAddr := fs.String("serve", "", "serve live /metrics, /jobs, /progress, and /debug/pprof on this address while the run executes (e.g. :8080; :0 picks a free port)")
	ledgerPath := fs.String("ledger", "", "append one JSON-Lines run record (cycles, MCPI, wall time, determinism checksum) to this file")
	coordAddr := fs.String("coordinator", "", "run the experiment as a distributed sweep coordinator serving workers on this address (host:port; :0 picks a free port); column experiments only")
	cacheDir := fs.String("cache", os.Getenv("HIDELAT_CACHE"), "persistent result-cache directory: memoize generated traces and replay-cell results across runs (default $HIDELAT_CACHE)")
	cacheOff := fs.Bool("cache-off", false, "disable the result cache even when -cache or $HIDELAT_CACHE is set")
	cacheVerify := fs.Float64("cache-verify", 0, "fraction [0,1] of cell cache hits to recompute and compare; a divergence fails the cell hard")
	leaseDur := fs.Duration("lease", dist.DefaultLease, "distributed mode: how long a silent worker holds a claimed cell before it is reassigned")
	queueMax := fs.Int("queue-max", dist.DefaultQueueMax, "distributed mode: admission-queue high-water mark; requests beyond it get 429")
	cpuProfile := fs.String("cpuprofile", "", "write a runtime/pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a runtime/pprof heap profile to this file")
	version := fs.Bool("version", false, "print the version and exit")
	fs.BoolVar(version, "v", false, "shorthand for -version")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage: hidelat [flags] <experiment>\n")
		fmt.Fprintf(fs.Output(), "       hidelat diff [-threshold 0.05] [-json] OLD NEW\n")
		fmt.Fprintf(fs.Output(), "       hidelat worker -join http://HOST:PORT [-id NAME]\n")
		fmt.Fprintf(fs.Output(), "       hidelat cache [-dir DIR] stats|verify|gc [-max-bytes N]|clear\n\n")
		fmt.Fprintf(fs.Output(), "Experiments: table1 table2 table3 fig3 fig4 summary delays latency100\n")
		fmt.Fprintf(fs.Output(), "             issue4 wo scpf resched cachegeom contexts contention\n")
		fmt.Fprintf(fs.Output(), "             machines distances ablate analyze timeline all\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	// flag parsing stops at the first positional; re-parse the remainder so
	// flags may also follow the experiment name (hidelat fig3 -csv).
	what := ""
	if fs.NArg() > 0 {
		what = fs.Arg(0)
		if err := fs.Parse(fs.Args()[1:]); err != nil {
			return err
		}
	}
	if *version {
		fmt.Printf("hidelat %s (dynsched)\n", dynsched.Version)
		return nil
	}
	if what == "" || fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("expected exactly one experiment name")
	}

	// Validate resource flags up front: a bad value should be a usage error
	// now, not a confusing failure three simulations in.
	switch {
	case *workers < 0:
		return fmt.Errorf("-j must be >= 0, got %d", *workers)
	case *retries < 0:
		return fmt.Errorf("-retries must be >= 0, got %d", *retries)
	case *timeout < 0:
		return fmt.Errorf("-timeout must be >= 0, got %v", *timeout)
	case *cpus <= 0:
		return fmt.Errorf("-cpus must be >= 1, got %d", *cpus)
	case *traceCPU < 0:
		return fmt.Errorf("-tracecpu must be >= 0, got %d", *traceCPU)
	case *leaseDur <= 0:
		return fmt.Errorf("-lease must be > 0, got %v", *leaseDur)
	case *queueMax < 1:
		return fmt.Errorf("-queue-max must be >= 1, got %d", *queueMax)
	case *cacheVerify < 0 || *cacheVerify > 1:
		return fmt.Errorf("-cache-verify must be in [0,1], got %g", *cacheVerify)
	}
	if *cacheVerify > 0 && (*cacheDir == "" || *cacheOff) {
		return fmt.Errorf("-cache-verify requires an enabled -cache DIR")
	}
	// The distributed-mode knobs only mean something with -coordinator, and
	// the coordinator only shards the column experiments SweepSpecs knows.
	if *coordAddr == "" {
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if set["lease"] || set["queue-max"] {
			return fmt.Errorf("-lease and -queue-max require -coordinator")
		}
	} else if _, ok := exp.SweepSpecs(what); !ok {
		return fmt.Errorf("-coordinator supports the column experiments (fig3, fig4, latency100, issue4, wo, scpf), not %q", what)
	}

	scale, err := apps.ParseScale(*scaleName)
	if err != nil {
		return err
	}

	// SIGINT/SIGTERM (and -timeout) cancel the run cooperatively: the
	// simulators poll the context and unwind, partial results are printed,
	// and the ledger record is marked interrupted.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := exp.Options{
		NumCPUs:     *cpus,
		Scale:       scale,
		MissPenalty: uint32(*latency),
		TraceCPU:    *traceCPU,
		Workers:     *workers,
		Retries:     *retries,
		NoTimeSkip:  *noskip,
		Ctx:         ctx,
	}
	if *appList != "" {
		opts.Apps = strings.Split(*appList, ",")
	}
	if *cpuProfile != "" {
		stop, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			return err
		}
		defer stop()
	}
	if *metricsOut != "" || *serveAddr != "" || *ledgerPath != "" {
		metricsReg = obs.NewRegistry()
		opts.Metrics = metricsReg
	}
	if *cacheDir != "" && !*cacheOff {
		store, err := cache.Open(*cacheDir, cache.Options{Version: dynsched.Version, Metrics: metricsReg})
		if err != nil {
			return err
		}
		// Close persists the index (LRU metadata, lifetime hit/miss counters);
		// a failure costs only staleness, never correctness, since Open
		// rescans the objects directory.
		defer func() {
			if cerr := store.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "hidelat: cache index write failed: %v\n", cerr)
			}
			if st := store.Stats(); st.Hits+st.Misses > 0 {
				fmt.Fprintf(os.Stderr, "hidelat: result cache %s: %d hit(s), %d miss(es)\n", *cacheDir, st.Hits, st.Misses)
			}
		}()
		opts.Cache = store
		opts.CacheVerify = *cacheVerify
	}
	var pr *obs.Progress
	if *progress || *serveAddr != "" {
		// The live server's /progress endpoint needs a ticker even when the
		// stderr printout is off; io.Discard keeps the terminal quiet.
		out := io.Writer(io.Discard)
		if *progress {
			out = os.Stderr
		}
		pr = obs.NewProgress(out, time.Second)
		pr.Start()
		defer pr.Stop()
		opts.Progress = pr
	}
	if *serveAddr != "" {
		opts.Board = obs.NewJobBoard()
		opts.Timelines = obs.NewTimelineHub()
		srv, err := obs.StartServer(*serveAddr, obs.ServerState{
			Registry: metricsReg, Board: opts.Board, Progress: pr,
			Timelines: opts.Timelines, Version: dynsched.Version,
		})
		if err != nil {
			return err
		}
		// Drain in-flight scrapes before exiting; fall back to a hard close
		// after two seconds so shutdown can never hang the CLI.
		defer func() {
			sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer scancel()
			srv.Shutdown(sctx)
		}()
		fmt.Fprintf(os.Stderr, "hidelat: live server on http://%s/ (metrics, jobs, progress, pprof)\n", srv.Addr)
	}
	e := exp.New(opts)
	emitCSV = *csvOut
	// writeLedger appends the run record even when the run failed: an
	// interrupted or partial sweep is marked as such rather than vanishing
	// from the run history.
	writeLedger := func(cmd string, runErr error) error {
		if *ledgerPath == "" {
			return nil
		}
		rec := obs.BuildLedgerRecord(dynsched.Version, cmd, args, map[string]any{
			"scale": *scaleName, "latency": *latency, "cpus": *cpus,
			"tracecpu": *traceCPU, "apps": *appList, "j": *workers,
		}, start, metricsReg.Snapshot())
		if errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded) {
			rec.Interrupted = true
		}
		var pe *exp.PartialError
		if errors.As(runErr, &pe) {
			rec.FailedCells = pe.FailedLabels()
		}
		if err := obs.AppendLedger(*ledgerPath, rec); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "hidelat: appended run %s to ledger %s\n", rec.ID, *ledgerPath)
		return nil
	}

	steps := map[string]func(*exp.Experiment) error{
		"table1":     table1,
		"table2":     table2,
		"table3":     table3,
		"fig3":       fig3,
		"fig4":       fig4,
		"summary":    summary,
		"delays":     delays,
		"latency100": latency100,
		"issue4":     issue4,
		"wo":         wo,
		"ablate":     ablate,
		"scpf":       scpf,
		"distances":  distances,
		"resched":    reschedCmd,
		"cachegeom":  cachegeom,
		"contexts":   contexts,
		"contention": contention,
		"machines":   machines,
		"analyze":    analyzeCmd,
		"timeline":   timelineCmd,
	}
	analyzeJSONOut, flameOutPath = *analyzeJSON, *flameOut
	timelineJSONOut, timelineCSVOut = *timelineJSON, *timelineCSV
	if what != "all" {
		if _, ok := steps[what]; !ok {
			return fmt.Errorf("unknown experiment %q", what)
		}
		if what == "latency100" && opts.MissPenalty != 100 {
			opts.MissPenalty = 100
			e = exp.New(opts)
		}
	}

	// Run the experiment(s). A *PartialError degrades rather than aborts:
	// the step has already printed its partial tables, `all` continues with
	// the remaining experiments, and the combined failure is reported at
	// exit. Anything else — including cancellation — stops the dispatch.
	stepErr := func() error {
		if *coordAddr != "" {
			stepName = what
			return distCoordinate(ctx, e, what, *coordAddr, *leaseDur, *queueMax, opts)
		}
		if what != "all" {
			stepName = what
			return steps[what](e)
		}
		var partial error
		for _, name := range []string{"table1", "table2", "table3", "fig3", "fig4",
			"summary", "delays", "distances", "issue4", "wo", "scpf", "resched",
			"cachegeom", "contexts", "contention", "machines", "ablate", "analyze",
			"timeline"} {
			stepName = name
			if err := steps[name](e); err != nil {
				var pe *exp.PartialError
				if !errors.As(err, &pe) {
					return err
				}
				partial = err
			}
			fmt.Println()
		}
		// latency100 needs its own traces; run it with a fresh harness.
		opts100 := opts
		opts100.MissPenalty = 100
		stepName = "latency100"
		if err := latency100(exp.New(opts100)); err != nil {
			var pe *exp.PartialError
			if !errors.As(err, &pe) {
				return err
			}
			partial = err
		}
		return partial
	}()

	// Write the observability artifacts unless the run was canceled — the
	// writers are atomic, so a partial sweep still leaves valid files — and
	// always record the run in the ledger, marked interrupted or partial.
	interrupted := errors.Is(stepErr, context.Canceled) || errors.Is(stepErr, context.DeadlineExceeded)
	var pe *exp.PartialError
	if !interrupted && (stepErr == nil || errors.As(stepErr, &pe)) {
		if err := finishObs(e, *metricsOut, *pipeOut, *memProfile); err != nil && stepErr == nil {
			stepErr = err
		}
	}
	if err := writeLedger(what, stepErr); err != nil && stepErr == nil {
		stepErr = err
	}
	return stepErr
}

// runCacheCmd implements `hidelat cache <op>`: maintenance of the
// persistent result cache. stats summarizes the store, verify re-checks
// every entry end to end (removing corrupt ones and failing the command so
// CI can gate on it), gc evicts least-recently-used entries down to a byte
// budget, and clear empties the store.
func runCacheCmd(args []string) error {
	fs := flag.NewFlagSet("hidelat cache", flag.ContinueOnError)
	dir := fs.String("dir", os.Getenv("HIDELAT_CACHE"), "cache directory (default $HIDELAT_CACHE)")
	maxBytes := fs.Int64("max-bytes", 0, "gc: evict least-recently-used entries until the store holds at most this many bytes")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage: hidelat cache [-dir DIR] stats|verify|gc [-max-bytes N]|clear\n\n"+
			"Maintains the persistent result cache used by -cache DIR:\n"+
			"  stats   entry count, bytes, and lifetime hit/miss counters\n"+
			"  verify  re-read every entry (magic, lengths, CRC, key); corrupt\n"+
			"          entries are removed and the command exits non-zero\n"+
			"  gc      evict least-recently-used entries down to -max-bytes\n"+
			"  clear   remove every entry and the index\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	op := ""
	if fs.NArg() > 0 {
		op = fs.Arg(0)
		if err := fs.Parse(fs.Args()[1:]); err != nil {
			return err
		}
	}
	if op == "" || fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("cache: expected exactly one operation (stats, verify, gc, clear)")
	}
	if *dir == "" {
		return fmt.Errorf("cache: no directory: pass -dir or set $HIDELAT_CACHE")
	}
	s, err := cache.Open(*dir, cache.Options{Version: dynsched.Version})
	if err != nil {
		return err
	}
	switch op {
	case "stats":
		st := s.Stats()
		fmt.Printf("cache %s: %d entries, %d bytes\n", st.Dir, st.Entries, st.Bytes)
		fmt.Printf("lifetime: %d hit(s), %d miss(es)\n", st.LifetimeHits, st.LifetimeMisses)
		return nil
	case "verify":
		checked, corrupt, err := s.Verify()
		fmt.Printf("verified %d entries, %d corrupt (removed)\n", checked, corrupt)
		if err != nil {
			return err
		}
		if corrupt > 0 {
			return fmt.Errorf("cache: %d corrupt entries found (writes are atomic, so this indicates external damage)", corrupt)
		}
		return nil
	case "gc":
		if *maxBytes <= 0 {
			return fmt.Errorf("cache gc: -max-bytes must be > 0 (use clear to empty the store)")
		}
		removed, freed, err := s.GC(*maxBytes)
		fmt.Printf("evicted %d entries, freed %d bytes\n", removed, freed)
		return err
	case "clear":
		if err := s.Clear(); err != nil {
			return err
		}
		fmt.Printf("cleared cache %s\n", *dir)
		return nil
	}
	fs.Usage()
	return fmt.Errorf("cache: unknown operation %q", op)
}

// runDiff implements `hidelat diff OLD NEW`: load the tracked metrics of two
// run artifacts, compare them, and exit non-zero when anything regressed.
func runDiff(args []string) error {
	fs := flag.NewFlagSet("hidelat diff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.05, "relative change beyond which a metric counts as regressed (0.05 = 5%)")
	jsonOut := fs.Bool("json", false, "emit the diff report as JSON instead of text")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage: hidelat diff [flags] OLD NEW\n\n"+
			"Compares the tracked metrics of two run artifacts: JSON-Lines run\n"+
			"ledgers (the newest record wins), single ledger records, -metrics-out\n"+
			"snapshots, or any JSON object with numeric leaves. Exits non-zero when\n"+
			"a tracked metric regressed beyond the threshold.\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("diff: expected exactly two run artifacts, got %d", fs.NArg())
	}
	oldM, oldKind, oldFNV, err := obs.LoadMetricsFile(fs.Arg(0))
	if err != nil {
		return err
	}
	newM, newKind, newFNV, err := obs.LoadMetricsFile(fs.Arg(1))
	if err != nil {
		return err
	}
	rep := obs.DiffMetrics(oldM, newM, obs.DiffOptions{Threshold: *threshold})
	rep.OldFNV, rep.NewFNV = oldFNV, newFNV
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Printf("old: %s (%s)\nnew: %s (%s)\n", fs.Arg(0), oldKind, fs.Arg(1), newKind)
		fmt.Print(rep.Format())
	}
	if rep.Regressions > 0 {
		return fmt.Errorf("diff: %d tracked metric(s) regressed beyond ±%.3g%%", rep.Regressions, 100**threshold)
	}
	return nil
}

// finishObs writes the observability artifacts requested on the command
// line: the pipeline trace of a representative replay, the metrics
// snapshot, and the heap profile.
func finishObs(e *exp.Experiment, metricsOut, pipeOut, memProfile string) error {
	if pipeOut != "" {
		app := e.Apps()[0]
		run, err := e.Run(app)
		if err != nil {
			return err
		}
		tracer := obs.NewPipeTracer(0)
		cfg := cpu.Config{Model: consistency.RC, Window: 64, Pipe: tracer}
		cfg.Metrics, cfg.MetricsPrefix = metricsReg, "cpu."+app+".RC-DS64."
		if _, err := cpu.RunDS(run.Trace, cfg); err != nil {
			return err
		}
		if err := obs.WritePipeTraceFile(tracer, pipeOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "hidelat: wrote pipeline trace of %s RC-DS64 (%d instructions) to %s\n",
			app, tracer.Len(), pipeOut)
	}
	if metricsOut != "" {
		if err := obs.WriteMetricsFile(metricsReg, metricsOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "hidelat: wrote metrics snapshot to %s\n", metricsOut)
	}
	if memProfile != "" {
		return obs.WriteHeapProfile(memProfile)
	}
	return nil
}

// emitCSV switches the column-based experiments to CSV output.
var emitCSV bool

// analyzeJSONOut and flameOutPath hold the -analyze-json and -flame-out
// destinations for the analyze step.
var analyzeJSONOut, flameOutPath string

// analyzeCmd runs the critical-path attribution sweep and prints the
// top-down report. Like the figure steps, a *PartialError still prints the
// healthy cells and writes the artifacts before being reported at exit.
func analyzeCmd(e *exp.Experiment) error {
	rep, err := e.AnalyzeAll()
	if rep == nil {
		return err
	}
	fmt.Print(rep.Format())
	exp.RecordAnalyze(metricsReg, rep)
	if analyzeJSONOut != "" {
		werr := obs.WriteFileAtomic(analyzeJSONOut, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		})
		if werr != nil {
			return werr
		}
		fmt.Fprintf(os.Stderr, "hidelat: wrote analyze report to %s\n", analyzeJSONOut)
	}
	if flameOutPath != "" {
		werr := obs.WriteFileAtomic(flameOutPath, func(w io.Writer) error {
			return critpath.WriteFlame(w, rep.FlameCells())
		})
		if werr != nil {
			return werr
		}
		fmt.Fprintf(os.Stderr, "hidelat: wrote attribution flamegraph to %s\n", flameOutPath)
	}
	return err
}

// timelineJSONOut and timelineCSVOut hold the -timeline-json and
// -timeline-csv paths for timelineCmd, set by run after flag parsing.
var timelineJSONOut, timelineCSVOut string

func timelineCmd(e *exp.Experiment) error {
	rep, err := e.TimelineAll()
	if rep == nil {
		return err
	}
	fmt.Print(rep.Format())
	exp.RecordTimeline(metricsReg, rep)
	if timelineJSONOut != "" {
		werr := obs.WriteFileAtomic(timelineJSONOut, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		})
		if werr != nil {
			return werr
		}
		fmt.Fprintf(os.Stderr, "hidelat: wrote timeline report to %s\n", timelineJSONOut)
	}
	if timelineCSVOut != "" {
		werr := obs.WriteFileAtomic(timelineCSVOut, func(w io.Writer) error {
			_, werr := io.WriteString(w, rep.CSV())
			return werr
		})
		if werr != nil {
			return werr
		}
		fmt.Fprintf(os.Stderr, "hidelat: wrote timeline samples to %s\n", timelineCSVOut)
	}
	return err
}

// columnTitles are the table headings of the column experiments, shared by
// the local step functions and the distributed coordinator so both paths
// print byte-identical output.
var columnTitles = map[string]string{
	"fig3":       "Figure 3: static vs dynamic scheduling under SC/PC/RC (normalized to BASE)",
	"fig4":       "Figure 4: perfect branch prediction (PBP) and ignored data dependences (ND) under RC",
	"latency100": "Latency 100: RC window sweep with a 100-cycle miss penalty (§4.2)",
	"issue4":     "Multiple issue: RC window sweep at 4-wide issue (§4.2)",
	"wo":         "Weak ordering: DS window sweep under WO (extension)",
	"scpf":       "SC with non-binding prefetch: DS window sweep (extension, ref [8] / §6)",
}

// distCoordinate runs one column experiment as the coordinator of a
// distributed sweep: start the HTTP surface, generate traces locally, feed
// cells to remote workers, and print the merged columns through the same
// epilogue a local run uses.
func distCoordinate(ctx context.Context, e *exp.Experiment, step, addr string, lease time.Duration, queueMax int, opts exp.Options) error {
	specs, _ := exp.SweepSpecs(step)
	co := dist.New(dist.Config{
		Lease:           lease,
		Retries:         opts.Retries,
		RetryBackoff:    opts.RetryBackoff,
		RetryMaxBackoff: opts.RetryMaxBackoff,
		QueueMax:        queueMax,
		Board:           opts.Board,
		Cache:           opts.Cache,
	})
	srv, err := dist.StartServer(addr, co)
	if err != nil {
		return err
	}
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer scancel()
		srv.Shutdown(sctx)
	}()
	fmt.Fprintf(os.Stderr, "hidelat: coordinating %s on http://%s/ (join with: hidelat worker -join http://%s)\n",
		step, srv.Addr, srv.Addr)
	acs, err := dist.RunSweep(ctx, e, specs, co)
	if acs != nil {
		printColumns(columnTitles[step], acs)
	}
	return err
}

// runWorker implements `hidelat worker -join URL`: claim, replay, and
// report cells until the coordinator's sweep completes. The loop is safe
// to kill at any point — an unreported cell is reassigned when its lease
// expires.
func runWorker(args []string) error {
	fs := flag.NewFlagSet("hidelat worker", flag.ContinueOnError)
	join := fs.String("join", "", "coordinator base URL to claim replay cells from (http://host:port)")
	id := fs.String("id", "", "worker name reported to the coordinator (default: hostname-pid)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "Usage: hidelat worker -join http://HOST:PORT [-id NAME]\n\n"+
			"Joins a distributed sweep started with hidelat -coordinator, replaying\n"+
			"cells until the sweep completes. Safe to kill at any point: work the\n"+
			"worker has not reported is reassigned when its lease expires.\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("worker: unexpected argument %q", fs.Arg(0))
	}
	if *join == "" {
		fs.Usage()
		return fmt.Errorf("worker: -join URL is required")
	}
	w, err := dist.NewWorker(dist.WorkerConfig{ID: *id, Coordinator: *join})
	if err != nil {
		return err
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	n, err := w.Run(ctx)
	fmt.Fprintf(os.Stderr, "hidelat: worker %s resolved %d cells\n", w.ID(), n)
	if errors.Is(err, context.Canceled) {
		return nil // interrupted by the operator; the coordinator reassigns
	}
	return err
}

// metricsReg collects every experiment's metrics when -metrics-out is set.
var metricsReg *obs.Registry

// stepName is the experiment currently printing (namespaces its metrics).
var stepName string

func printColumns(title string, acs []exp.AppColumns) {
	for _, ac := range acs {
		exp.RecordColumns(metricsReg, stepName, ac.App, ac.Cols)
	}
	if emitCSV {
		fmt.Print(exp.ColumnsCSV(acs))
		return
	}
	fmt.Print(exp.FormatAppColumns(title, acs))
}

func table1(e *exp.Experiment) error {
	rows, err := e.Table1()
	if err != nil {
		return err
	}
	fmt.Print(exp.FormatTable1(rows))
	return nil
}

func table2(e *exp.Experiment) error {
	rows, err := e.Table2()
	if err != nil {
		return err
	}
	fmt.Print(exp.FormatTable2(rows))
	return nil
}

func table3(e *exp.Experiment) error {
	rows, err := e.Table3()
	if err != nil {
		return err
	}
	fmt.Print(exp.FormatTable3(rows))
	return nil
}

func fig3(e *exp.Experiment) error {
	acs, err := e.Figure3All()
	if acs != nil {
		printColumns(columnTitles["fig3"], acs)
	}
	return err
}

func fig4(e *exp.Experiment) error {
	acs, err := e.Figure4All()
	if acs != nil {
		printColumns(columnTitles["fig4"], acs)
	}
	return err
}

func summary(e *exp.Experiment) error {
	avg, perApp, err := e.ReadHiddenSummary()
	if err != nil {
		return err
	}
	fmt.Print(exp.FormatSummary(avg, perApp))
	return nil
}

func delays(e *exp.Experiment) error {
	s, err := e.DelayReport()
	if err != nil {
		return err
	}
	fmt.Print(s)
	return nil
}

func latency100(e *exp.Experiment) error {
	acs, err := e.WindowSweepAll()
	if acs != nil {
		printColumns(columnTitles["latency100"], acs)
	}
	return err
}

func issue4(e *exp.Experiment) error {
	acs, err := e.Issue4All()
	if acs != nil {
		printColumns(columnTitles["issue4"], acs)
	}
	return err
}

func wo(e *exp.Experiment) error {
	acs, err := e.WOAll()
	if acs != nil {
		printColumns(columnTitles["wo"], acs)
	}
	return err
}

func scpf(e *exp.Experiment) error {
	acs, err := e.SCPrefetchAll()
	if acs != nil {
		printColumns(columnTitles["scpf"], acs)
	}
	return err
}

func reschedCmd(e *exp.Experiment) error {
	rows, err := e.ReschedAll()
	if err != nil {
		return err
	}
	fmt.Print(exp.FormatResched(rows))
	return nil
}

func contexts(e *exp.Experiment) error {
	for _, app := range e.Apps() {
		for _, penalty := range []int{1, 16} {
			rows, err := e.MultipleContexts(app, penalty)
			if err != nil {
				return err
			}
			fmt.Print(exp.FormatMC(rows))
		}
		fmt.Println()
	}
	return nil
}

func contention(e *exp.Experiment) error {
	for _, app := range e.Apps() {
		rows, err := exp.Contention(app, e.Options())
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatContention(app, rows))
	}
	return nil
}

func machines(e *exp.Experiment) error {
	for _, app := range e.Apps() {
		rows, err := exp.MachineSweep(app, e.Options())
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatMachines(app, rows))
	}
	return nil
}

func cachegeom(e *exp.Experiment) error {
	for _, app := range e.Apps() {
		rows, err := exp.AblationCacheSize(app, e.Options())
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatCacheGeom(app, rows))
	}
	return nil
}

func distances(e *exp.Experiment) error {
	s, err := e.MissDistanceReport()
	if err != nil {
		return err
	}
	fmt.Print(s)
	return nil
}

func ablate(e *exp.Experiment) error {
	for _, app := range e.Apps() {
		sb, err := e.AblationStoreBuffer(app)
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatColumns(fmt.Sprintf("Store-buffer depth ablation, %s (RC, window 64)", strings.ToUpper(app)), sb))
		ms, err := e.AblationMSHR(app)
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatColumns(fmt.Sprintf("MSHR ablation, %s (RC, window 64)", strings.ToUpper(app)), ms))
		bt, err := e.AblationBTB(app, func(entries int) trace.Predictor {
			b, err := bpred.NewBTB(entries, 4)
			if err != nil {
				panic(err)
			}
			return b
		})
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatColumns(fmt.Sprintf("BTB size ablation, %s (RC, window 128)", strings.ToUpper(app)), bt))
		fmt.Println()
	}
	return nil
}
