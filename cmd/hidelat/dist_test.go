package main

// CLI-level tests for distributed sweeps: flag validation for the
// -coordinator/-lease/-queue-max knobs and the worker subcommand, plus an
// in-process coordinator+worker run whose stdout must be byte-identical to
// the single-process run of the same experiment.

import (
	"net"
	"strings"
	"testing"
)

func TestCLIDistFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-lease", "0s", "fig3"}, "-lease"},
		{[]string{"-lease", "-3s", "fig3"}, "-lease"},
		{[]string{"-queue-max", "0", "fig3"}, "-queue-max"},
		// Distributed knobs without distributed mode are a usage error, not
		// silently ignored.
		{[]string{"-lease", "5s", "fig3"}, "-coordinator"},
		{[]string{"-queue-max", "64", "fig3"}, "-coordinator"},
		// The coordinator only shards the column experiments.
		{[]string{"-coordinator", "127.0.0.1:0", "table1"}, "column experiments"},
		{[]string{"-coordinator", "127.0.0.1:0", "all"}, "column experiments"},
		{[]string{"-coordinator", "127.0.0.1:0", "analyze"}, "column experiments"},
	}
	for _, tc := range cases {
		_, err := captureRun(t, tc.args...)
		if err == nil {
			t.Errorf("%v accepted, want a usage error", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%v: err = %v, want it to name %s", tc.args, err, tc.want)
		}
	}
}

func TestCLIWorkerFlagValidation(t *testing.T) {
	if _, err := captureRun(t, "worker"); err == nil || !strings.Contains(err.Error(), "-join") {
		t.Errorf("worker without -join: err = %v, want it to demand -join", err)
	}
	if _, err := captureRun(t, "worker", "-join", "not-a-url"); err == nil {
		t.Error("worker accepted a bad -join URL")
	}
	if _, err := captureRun(t, "worker", "-join", "http://127.0.0.1:1", "extra"); err == nil {
		t.Error("worker accepted a positional argument")
	}
}

// A distributed fig3 run through the CLI — coordinator process logic and a
// worker joined over real HTTP — prints byte-identical stdout to the local
// single-process run.
func TestCLIDistributedFig3MatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed sweep is seconds long")
	}
	local, err := captureRun(t, "-scale", "small", "-apps", "mp3d", "-j", "2", "fig3")
	if err != nil {
		t.Fatalf("local run: %v", err)
	}

	// Reserve a port for the coordinator so the worker knows where to join.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	workerDone := make(chan error, 1)
	go func() {
		// The worker retries until the coordinator is listening.
		workerDone <- run([]string{"worker", "-join", "http://" + addr, "-id", "cli-test"})
	}()
	distOut, err := captureRun(t, "-scale", "small", "-apps", "mp3d",
		"-coordinator", addr, "-lease", "2s", "-queue-max", "64", "fig3")
	if err != nil {
		t.Fatalf("coordinator run: %v", err)
	}
	if err := <-workerDone; err != nil {
		t.Fatalf("worker: %v", err)
	}
	if distOut != local {
		t.Errorf("distributed stdout differs from local run\nlocal:\n%s\ndistributed:\n%s", local, distOut)
	}
}
