package main

// CLI-level robustness tests: up-front flag validation, cooperative
// cancellation via -timeout (the in-process equivalent of the SIGINT e2e
// check in CI), and the interrupted-run ledger record.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dynsched/internal/obs"
)

func TestCLIFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-j", "-2", "table1"}, "-j"},
		{[]string{"-retries", "-1", "table1"}, "-retries"},
		{[]string{"-timeout", "-5s", "table1"}, "-timeout"},
		{[]string{"-cpus", "0", "table1"}, "-cpus"},
		{[]string{"-tracecpu", "-3", "table1"}, "-tracecpu"},
	}
	for _, tc := range cases {
		_, err := captureRun(t, tc.args...)
		if err == nil {
			t.Errorf("%v accepted, want a usage error", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%v: err = %v, want it to name %s", tc.args, err, tc.want)
		}
	}
	// An unparsable duration is rejected by the flag package itself.
	if _, err := captureRun(t, "-timeout", "banana", "table1"); err == nil {
		t.Error("-timeout banana accepted")
	}
}

// TestCLITimeoutCancelsRun drives the full cancellation path: a 1 ns budget
// expires before any simulation starts, the run exits with a context error,
// and the ledger still gets a readable record marked interrupted.
func TestCLITimeoutCancelsRun(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "runs.jsonl")
	_, err := captureRun(t, "-scale", "small", "-apps", "mp3d",
		"-timeout", "1ns", "-ledger", ledger, "fig3")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	recs, rerr := obs.ReadLedger(ledger)
	if rerr != nil {
		t.Fatalf("interrupted run left an unreadable ledger: %v", rerr)
	}
	if len(recs) != 1 || !recs[0].Interrupted {
		t.Fatalf("ledger records = %+v, want one record marked interrupted", recs)
	}
}

// A generous timeout must not disturb a normal run.
func TestCLITimeoutGenerousIsHarmless(t *testing.T) {
	out, err := captureRun(t, "-scale", "small", "-apps", "lu", "-timeout", "10m", "table1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table 1") {
		t.Errorf("output:\n%s", out)
	}
}

// TestCLIRetriesFlagAccepted checks -retries reaches the harness without
// changing a healthy run's output.
func TestCLIRetriesFlagAccepted(t *testing.T) {
	plain, err := captureRun(t, "-scale", "small", "-apps", "lu", "fig3")
	if err != nil {
		t.Fatal(err)
	}
	retried, err := captureRun(t, "-scale", "small", "-apps", "lu", "-retries", "2", "fig3")
	if err != nil {
		t.Fatal(err)
	}
	if plain != retried {
		t.Errorf("-retries changed a healthy run's output:\n--- plain ---\n%s\n--- retried ---\n%s", plain, retried)
	}
}

// The ledger must survive an interrupted append attempt into a directory
// that appears mid-flight; more importantly, a record appended after an
// interrupted one must still parse — O_APPEND keeps records whole.
func TestCLILedgerAppendsAfterInterruptedRun(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "runs.jsonl")
	if _, err := captureRun(t, "-scale", "small", "-apps", "mp3d",
		"-timeout", "1ns", "-ledger", ledger, "fig3"); err == nil {
		t.Fatal("timed-out run reported success")
	}
	if _, err := captureRun(t, "-scale", "small", "-apps", "lu",
		"-ledger", ledger, "table1"); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadLedger(ledger)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || !recs[0].Interrupted || recs[1].Interrupted {
		t.Fatalf("ledger = %+v, want [interrupted, clean]", recs)
	}
	if fi, err := os.Stat(ledger); err != nil || fi.Size() == 0 {
		t.Fatalf("ledger missing: %v", err)
	}
}
