package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dynsched/internal/obs"
)

// captureRun executes run(args) with stdout captured.
func captureRun(t *testing.T, args ...string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(args)
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	// Drain any remainder.
	for {
		m, err := r.Read(buf[n:])
		n += m
		if err != nil || m == 0 || n == len(buf) {
			break
		}
	}
	return string(buf[:n]), runErr
}

func TestCLITables(t *testing.T) {
	out, err := captureRun(t, "-scale", "small", "-apps", "lu", "table1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "LU") {
		t.Errorf("table1 output:\n%s", out)
	}
	out, err = captureRun(t, "-scale", "small", "-apps", "lu", "table2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wait event") {
		t.Errorf("table2 output:\n%s", out)
	}
}

func TestCLIFig3(t *testing.T) {
	out, err := captureRun(t, "-scale", "small", "-apps", "mp3d", "fig3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BASE", "SC-SSBR", "RC-DS256", "ReadHidden"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig3 output missing %q:\n%s", want, out)
		}
	}
}

func TestCLISummaryAndExtensions(t *testing.T) {
	for _, exp := range []string{"summary", "delays", "distances", "resched"} {
		out, err := captureRun(t, "-scale", "small", "-apps", "lu,pthor", exp)
		if err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if len(out) < 40 {
			t.Errorf("%s output too short:\n%s", exp, out)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	if _, err := captureRun(t, "nosuchexperiment"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := captureRun(t, "-scale", "enormous", "table1"); err == nil {
		t.Error("unknown scale accepted")
	}
	if _, err := captureRun(t); err == nil {
		t.Error("missing experiment accepted")
	}
	if _, err := captureRun(t, "-apps", "doom", "table1"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestCLILatencyFlag(t *testing.T) {
	out, err := captureRun(t, "-scale", "small", "-apps", "lu", "-latency", "100", "table1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "LU") {
		t.Errorf("latency-100 table1 output:\n%s", out)
	}
}

func TestCLICSVOutput(t *testing.T) {
	out, err := captureRun(t, "-scale", "small", "-apps", "lu", "-csv", "fig3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "app,config,model,arch,window,") {
		t.Errorf("csv header missing:\n%s", out[:min(len(out), 120)])
	}
	if !strings.Contains(out, "lu,RC-DS64,RC,DS,64,") {
		t.Errorf("csv rows missing:\n%s", out)
	}
}

// TestCLILedgerAndDiff runs a small experiment with -ledger, then exercises
// the diff subcommand: identical runs compare clean, a doctored record with
// inflated cycles makes diff fail with a regression.
func TestCLILedgerAndDiff(t *testing.T) {
	dir := t.TempDir()
	ledger := filepath.Join(dir, "runs.jsonl")
	if _, err := captureRun(t, "-scale", "small", "-apps", "lu", "-j", "2",
		"-ledger", ledger, "fig3"); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadLedger(ledger)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("ledger has %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Cmd != "fig3" || rec.MetricsFNV == "" || len(rec.Cells) == 0 {
		t.Fatalf("ledger record incomplete: %+v", rec)
	}
	if _, ok := rec.Apps["lu"]; !ok {
		t.Fatalf("ledger apps = %v, want lu", rec.Apps)
	}

	// A run diffed against itself must pass.
	out, err := captureRun(t, "diff", ledger, ledger)
	if err != nil {
		t.Fatalf("self-diff failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "0 regressed") {
		t.Errorf("self-diff output:\n%s", out)
	}

	// Inflate one cell's cycle count well past the threshold: diff must fail.
	worseRec := rec
	worseRec.Cells = make(map[string]obs.LedgerCell, len(rec.Cells))
	for k, c := range rec.Cells {
		c.Cycles = c.Cycles * 3 / 2
		worseRec.Cells[k] = c
	}
	data, err := json.Marshal(worseRec)
	if err != nil {
		t.Fatal(err)
	}
	worse := filepath.Join(dir, "worse.json")
	if err := os.WriteFile(worse, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = captureRun(t, "diff", ledger, worse)
	if err == nil {
		t.Fatalf("diff accepted a 50%% cycle regression:\n%s", out)
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Errorf("diff error = %v, want a regression message", err)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("diff output missing REGRESSION lines:\n%s", out)
	}

	// Usage errors.
	if _, err := captureRun(t, "diff", ledger); err == nil {
		t.Error("diff with one argument accepted")
	}
	if _, err := captureRun(t, "diff", ledger, filepath.Join(dir, "missing.json")); err == nil {
		t.Error("diff with a missing file accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestCLIAnalyze smoke-tests the critical-path attribution step: the text
// report, the JSON export, and the flamegraph export.
func TestCLIAnalyze(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "analyze.json")
	flamePath := filepath.Join(dir, "flame.json")
	out, err := captureRun(t, "-scale", "small", "-apps", "lu", "-cpus", "1",
		"-analyze-json", jsonPath, "-flame-out", flamePath, "analyze")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Critical-path cycle attribution", "== lu ==",
		"RC-DS256", "Last-arriving edges", "dominant stall by window"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Apps []struct {
			App   string `json:"app"`
			Cells []struct {
				Label       string `json:"label"`
				Attribution struct {
					TotalCycles uint64            `json:"total_cycles"`
					Cycles      map[string]uint64 `json:"cycles"`
				} `json:"attribution"`
			} `json:"cells"`
		} `json:"apps"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("analyze-json did not parse: %v", err)
	}
	if len(rep.Apps) != 1 || rep.Apps[0].App != "lu" || len(rep.Apps[0].Cells) != 8 {
		t.Fatalf("analyze-json shape: %+v", rep.Apps)
	}
	var sum uint64
	last := rep.Apps[0].Cells[7]
	for _, v := range last.Attribution.Cycles {
		sum += v
	}
	if sum != last.Attribution.TotalCycles || sum == 0 {
		t.Errorf("%s: JSON buckets sum to %d, total %d", last.Label, sum, last.Attribution.TotalCycles)
	}

	flame, err := os.ReadFile(flamePath)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		Events []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(flame, &tr); err != nil {
		t.Fatalf("flame-out did not parse: %v", err)
	}
	if len(tr.Events) == 0 {
		t.Error("flame-out has no trace events")
	}
}
