package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenInfoReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "lu.trace")

	if err := run([]string{"gen", "-app", "lu", "-scale", "small", "-o", file}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if fi, err := os.Stat(file); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file not written: %v", err)
	}
	if err := run([]string{"info", file}); err != nil {
		t.Fatalf("info: %v", err)
	}
	if err := run([]string{"replay", "-arch", "DS", "-model", "RC", "-window", "64", file}); err != nil {
		t.Fatalf("replay DS: %v", err)
	}
	if err := run([]string{"replay", "-arch", "SSBR", "-model", "SC", file}); err != nil {
		t.Fatalf("replay SSBR: %v", err)
	}
	if err := run([]string{"replay", "-arch", "BASE", file}); err != nil {
		t.Fatalf("replay BASE: %v", err)
	}
	if err := run([]string{"replay", "-arch", "DS", "-model", "SC", "-prefetch", "-perfect", file}); err != nil {
		t.Fatalf("replay with extensions: %v", err)
	}
}

func TestToolErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("bogus subcommand accepted")
	}
	if err := run([]string{"gen", "-app", "lu"}); err == nil {
		t.Error("gen without -o accepted")
	}
	if err := run([]string{"info", "/nonexistent/file.trace"}); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	file := filepath.Join(dir, "x.trace")
	if err := run([]string{"gen", "-app", "lu", "-scale", "small", "-o", file}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"replay", "-arch", "QUANTUM", file}); err == nil {
		t.Error("unknown arch accepted")
	}
	if err := run([]string{"replay", "-model", "XX", file}); err == nil {
		t.Error("unknown model accepted")
	}
}
