package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestConvertRoundTrip gates the streaming rewrite: a v3→v3 conversion is
// byte-identical (Writer and Trace.WriteTo share the encoder), and a v2→v3
// conversion carries every event and the header metadata across unchanged.
func TestConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "lu.trace")
	if err := run([]string{"gen", "-app", "lu", "-scale", "small", "-o", src}); err != nil {
		t.Fatalf("gen: %v", err)
	}

	out := filepath.Join(dir, "lu.v3.trace")
	if err := run([]string{"convert", "-o", out, src}); err != nil {
		t.Fatalf("convert v3: %v", err)
	}
	want, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("v3 -> v3 conversion not byte-identical: %d vs %d bytes", len(got), len(want))
	}

	tr, err := load(src)
	if err != nil {
		t.Fatal(err)
	}
	v2 := filepath.Join(dir, "lu.v2.trace")
	f, err := os.Create(v2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.WriteToV2(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	out2 := filepath.Join(dir, "lu.v2to3.trace")
	if err := run([]string{"convert", "-o", out2, v2}); err != nil {
		t.Fatalf("convert v2: %v", err)
	}
	conv, err := load(out2)
	if err != nil {
		t.Fatalf("converted trace rejected: %v", err)
	}
	if conv.Meta() != tr.Meta() {
		t.Errorf("converted meta %+v, want %+v", conv.Meta(), tr.Meta())
	}
	if !reflect.DeepEqual(conv.Events, tr.Events) {
		t.Error("converted events differ from source")
	}
	if st, err := statFile(out2); err != nil || st.Version != 3 {
		t.Errorf("converted file version %d (err %v), want 3", st.Version, err)
	}
}

func TestGenInfoReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "lu.trace")

	if err := run([]string{"gen", "-app", "lu", "-scale", "small", "-o", file}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if fi, err := os.Stat(file); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file not written: %v", err)
	}
	if err := run([]string{"info", file}); err != nil {
		t.Fatalf("info: %v", err)
	}
	if err := run([]string{"replay", "-arch", "DS", "-model", "RC", "-window", "64", file}); err != nil {
		t.Fatalf("replay DS: %v", err)
	}
	if err := run([]string{"replay", "-arch", "SSBR", "-model", "SC", file}); err != nil {
		t.Fatalf("replay SSBR: %v", err)
	}
	if err := run([]string{"replay", "-arch", "BASE", file}); err != nil {
		t.Fatalf("replay BASE: %v", err)
	}
	if err := run([]string{"replay", "-arch", "DS", "-model", "SC", "-prefetch", "-perfect", file}); err != nil {
		t.Fatalf("replay with extensions: %v", err)
	}
}

func TestToolErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("bogus subcommand accepted")
	}
	if err := run([]string{"gen", "-app", "lu"}); err == nil {
		t.Error("gen without -o accepted")
	}
	if err := run([]string{"info", "/nonexistent/file.trace"}); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	file := filepath.Join(dir, "x.trace")
	if err := run([]string{"gen", "-app", "lu", "-scale", "small", "-o", file}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"replay", "-arch", "QUANTUM", file}); err == nil {
		t.Error("unknown arch accepted")
	}
	if err := run([]string{"replay", "-model", "XX", file}); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run([]string{"convert", file}); err == nil {
		t.Error("convert without -o accepted")
	}
	if err := run([]string{"convert", "-o", filepath.Join(dir, "out.trace"), "/nonexistent/file.trace"}); err == nil {
		t.Error("convert of missing file accepted")
	}
}
