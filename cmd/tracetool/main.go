// Command tracetool generates, inspects, and replays annotated instruction
// traces. Traces are the expensive artifact of the methodology (they require
// the full 16-processor simulation), so saving them to disk and replaying
// them repeatedly mirrors how the paper's experiments were actually run.
//
// Usage:
//
//	tracetool gen     -app lu -scale paper -o lu.trace     generate and save
//	tracetool info    lu.trace                             tables 1-3 for one trace
//	tracetool replay  -arch DS -model RC -window 64 lu.trace
//	tracetool convert -o lu.v3.trace lu.trace              rewrite as chunked v3
//
// replay prints the execution-time breakdown of the chosen processor model.
// Both replay and convert stream the trace through a trace.Cursor — one
// CRC-verified chunk resident at a time — so multi-gigabyte traces replay
// and convert in constant memory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dynsched"
	"dynsched/internal/apps"
	"dynsched/internal/bpred"
	"dynsched/internal/consistency"
	"dynsched/internal/cpu"
	"dynsched/internal/exp"
	"dynsched/internal/isa"
	"dynsched/internal/obs"
	"dynsched/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracetool:", err)
		os.Exit(1)
	}
}

func usage() string {
	return `Usage: tracetool <command> [flags] [file]

Commands:
  gen      generate a trace on the simulated multiprocessor and save it
  info     print reference, synchronization, and branch statistics
  replay   replay a trace through a processor model (streaming)
  convert  rewrite a v1/v2/v3 trace as the chunked v3 format (streaming)

Run "tracetool <command> -h" for the command's flags.`
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("%s", usage())
	}
	switch args[0] {
	case "gen":
		return gen(args[1:])
	case "info":
		return info(args[1:])
	case "replay":
		return replay(args[1:])
	case "convert":
		return convert(args[1:])
	case "-version", "-v", "version":
		fmt.Printf("tracetool %s (dynsched)\n", dynsched.Version)
		return nil
	}
	return fmt.Errorf("unknown subcommand %q\n%s", args[0], usage())
}

func gen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	app := fs.String("app", "lu", "application to trace")
	scaleName := fs.String("scale", "medium", "problem scale")
	latency := fs.Uint("latency", 50, "miss penalty in cycles")
	cpus := fs.Int("cpus", 16, "number of processors")
	traceCPU := fs.Int("tracecpu", 1, "processor to trace")
	out := fs.String("o", "", "output file (required)")
	metricsOut := fs.String("metrics-out", "", "write a JSON metrics snapshot of the simulation to this file")
	progress := fs.Bool("progress", false, "print simulation throughput to stderr every second")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen: -o output file is required")
	}
	scale, err := apps.ParseScale(*scaleName)
	if err != nil {
		return err
	}
	opts := exp.Options{
		NumCPUs: *cpus, Scale: scale, MissPenalty: uint32(*latency),
		TraceCPU: *traceCPU, Apps: []string{*app},
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		opts.Metrics = reg
	}
	if *progress {
		pr := obs.NewProgress(os.Stderr, time.Second)
		pr.Start()
		defer pr.Stop()
		opts.Progress = pr
	}
	e := exp.New(opts)
	run, err := e.Run(*app)
	if err != nil {
		return err
	}
	if *metricsOut != "" {
		if err := obs.WriteMetricsFile(reg, *metricsOut); err != nil {
			return err
		}
	}
	// Write through a temp file + rename so a crash mid-write can never
	// leave a torn trace at the destination (the CRC footer would catch it,
	// but an old intact file is strictly better than a rejected one).
	var n int64
	err = obs.WriteFileAtomic(*out, func(w io.Writer) error {
		var werr error
		n, werr = run.Trace.WriteTo(w)
		return werr
	})
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d instructions, %d bytes\n", *out, run.Trace.Len(), n)
	return nil
}

func load(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadTrace(f)
}

// openCursor opens a streaming cursor over the trace at path. The caller
// must invoke close when done with the cursor.
func openCursor(path string) (c *trace.Cursor, close func() error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	c, err = trace.NewCursor(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return c, f.Close, nil
}

// convert streams a trace in any accepted container version (v1, v2, v3)
// into a fresh chunked v3 file: Cursor in, Writer out, one chunk resident
// at a time, written through a temp file + rename so the destination is
// never torn. The rewrite verifies every integrity check of the source
// (chunk CRCs, footer, per-event invariants) on the way through.
func convert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	out := fs.String("o", "", "output file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: tracetool convert -o <out> <file>")
	}
	if *out == "" {
		return fmt.Errorf("convert: -o output file is required")
	}
	c, closeIn, err := openCursor(fs.Arg(0))
	if err != nil {
		return err
	}
	defer closeIn()
	var n int64
	err = obs.WriteFileAtomic(*out, func(w io.Writer) error {
		tw, err := trace.NewWriter(w, c.Meta(), uint64(c.Len()))
		if err != nil {
			return err
		}
		for {
			e, err := c.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if err := tw.Write(e); err != nil {
				return err
			}
		}
		if err := tw.Close(); err != nil {
			return err
		}
		n = tw.BytesWritten()
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("converted %s (v%d) -> %s (v3): %d events, %d bytes\n",
		fs.Arg(0), c.Version(), *out, c.Len(), n)
	return nil
}

// statFile reports the container-level layout (format version, chunk CRC
// status, encoded density) of a serialized trace.
func statFile(path string) (trace.FileStat, error) {
	f, err := os.Open(path)
	if err != nil {
		return trace.FileStat{}, err
	}
	defer f.Close()
	return trace.Stat(f)
}

func info(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: tracetool info <file>")
	}
	tr, err := load(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("app=%s cpu=%d/%d missPenalty=%d instructions=%d\n",
		tr.App, tr.CPU, tr.NumCPUs, tr.MissPenalty, tr.Len())
	if addr, err := tr.ContentAddr(); err == nil {
		// The FNV-64a over the serialized trace — the identity the result
		// cache and the distributed coordinator key replays by.
		fmt.Printf("content address %s (fnv64a of serialized trace)\n", addr)
	}
	if st, err := statFile(args[0]); err == nil {
		fmt.Println(st.Format())
	} else {
		return err
	}
	d := tr.Data()
	fmt.Printf("reads   %8d (%.1f/1000)   read misses  %7d (%.1f/1000)\n",
		d.Reads, d.Per1000(d.Reads), d.ReadMisses, d.Per1000(d.ReadMisses))
	fmt.Printf("writes  %8d (%.1f/1000)   write misses %7d (%.1f/1000)\n",
		d.Writes, d.Per1000(d.Writes), d.WriteMisses, d.Per1000(d.WriteMisses))
	misses := d.ReadMisses + d.WriteMisses
	accesses := d.Reads + d.Writes
	if accesses > 0 {
		fmt.Printf("miss rate %.2f%% (%d misses / %d accesses)\n",
			100*float64(misses)/float64(accesses), misses, accesses)
	}
	s := tr.Sync()
	fmt.Printf("locks %d  unlocks %d  waitEv %d  setEv %d  barriers %d\n",
		s.Locks, s.Unlocks, s.WaitEvents, s.SetEvents, s.Barriers)
	var syncWait, syncTransfer uint64
	for i := range tr.Events {
		e := &tr.Events[i]
		if isa.Classify(e.Instr.Op) == isa.ClassSync {
			syncWait += uint64(e.Wait)
			syncTransfer += uint64(e.Latency)
		}
	}
	fmt.Printf("sync cycles: wait (W) %d, transfer (T) %d\n", syncWait, syncTransfer)
	b := tr.Branches(bpred.NewPaperBTB())
	fmt.Printf("branches %.1f%% of instructions, %.1f%% predicted, mispredict every %.0f instructions\n",
		b.PctInstructions, b.PctCorrect, b.AvgMispredictDistance)
	fmt.Printf("read-miss distances: %s\n", tr.ReadMissDistances())
	rd, wr, sy := tr.LatencyBound()
	fmt.Printf("latency carried: read %d, write %d, sync %d cycles\n", rd, wr, sy)
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	arch := fs.String("arch", "DS", "processor model: BASE, SSBR, SS, DS")
	modelName := fs.String("model", "RC", "consistency model: SC, PC, WO, RC")
	window := fs.Int("window", 64, "DS lookahead window size")
	width := fs.Int("width", 1, "decode/issue width")
	perfect := fs.Bool("perfect", false, "use the perfect branch predictor")
	noDeps := fs.Bool("nodeps", false, "ignore register data dependences")
	prefetch := fs.Bool("prefetch", false, "enable non-binding prefetch")
	metricsOut := fs.String("metrics-out", "", "write a JSON metrics snapshot of the replay to this file")
	pipeOut := fs.String("pipe-trace-out", "", "write the replay's pipeline trace (.json = Chrome trace, else Konata)")
	progress := fs.Bool("progress", false, "print replay throughput to stderr every second")
	cpuProfile := fs.String("cpuprofile", "", "write a runtime/pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a runtime/pprof heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: tracetool replay [flags] <file>")
	}
	path := fs.Arg(0)
	// The replay streams the file through a cursor; only a DS window beyond
	// the cursor's pointer-retention lookback needs the whole trace in
	// memory, and falls back to the materializing reader.
	materialize := *arch == "DS" && *window > trace.CursorLookback
	cur, closeCur, err := openCursor(path)
	if err != nil {
		return err
	}
	defer func() {
		if closeCur != nil {
			closeCur()
		}
	}()
	meta, count := cur.Meta(), cur.Len()
	model, err := consistency.ParseModel(*modelName)
	if err != nil {
		return err
	}
	cfg := cpu.Config{
		Model: model, Window: *window, IssueWidth: *width,
		IgnoreDataDeps: *noDeps, Prefetch: *prefetch,
	}
	if *perfect {
		cfg.Predictor = bpred.Perfect{}
	}
	if *cpuProfile != "" {
		stop, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			return err
		}
		defer stop()
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		cfg.Metrics = reg
		cfg.MetricsPrefix = fmt.Sprintf("cpu.%s.%s-%s%d.", meta.App, model, *arch, *window)
	}
	var tracer *obs.PipeTracer
	if *pipeOut != "" {
		tracer = obs.NewPipeTracer(0)
		cfg.Pipe = tracer
	}
	if *progress {
		pr := obs.NewProgress(os.Stderr, time.Second)
		pr.Start()
		defer pr.Stop()
		lane := pr.Lane(meta.App)
		lane.SetTotal(uint64(count))
		cfg.Progress = lane
	}
	var res cpu.Result
	if materialize {
		closeCur()
		closeCur = nil
		tr, err := load(path)
		if err != nil {
			return err
		}
		res, err = cpu.RunDS(tr, cfg)
		if err != nil {
			return err
		}
	} else {
		switch *arch {
		case "BASE":
			res, err = cpu.RunBaseStream(cur)
			cpu.PublishResult(reg, cfg.MetricsPrefix, res)
		case "SSBR":
			res, err = cpu.RunSSBRStream(cur, cfg)
		case "SS":
			res, err = cpu.RunSSStream(cur, cfg)
		case "DS":
			res, err = cpu.RunDSStream(cur, cfg)
		default:
			return fmt.Errorf("unknown architecture %q", *arch)
		}
		if err != nil {
			return err
		}
	}
	if *pipeOut != "" {
		if err := obs.WritePipeTraceFile(tracer, *pipeOut); err != nil {
			return err
		}
	}
	if *metricsOut != "" {
		if err := obs.WriteMetricsFile(reg, *metricsOut); err != nil {
			return err
		}
	}
	if *memProfile != "" {
		if err := obs.WriteHeapProfile(*memProfile); err != nil {
			return err
		}
	}
	// Second streaming pass for the BASE reference the normalization needs.
	bc, closeBase, err := openCursor(path)
	if err != nil {
		return err
	}
	defer closeBase()
	base, err := cpu.RunBaseStream(bc)
	if err != nil {
		return err
	}
	b := res.Breakdown
	fmt.Printf("%s under %s (window %d, width %d): %v\n", *arch, model, *window, *width, b)
	fmt.Printf("normalized to BASE: %.1f%%   CPI: %.2f   mispredicts: %d   prefetches: %d\n",
		100*float64(b.Total())/float64(base.Breakdown.Total()), res.CPI(),
		res.Mispredicts, res.Prefetches)
	if base.Breakdown.Read > 0 {
		fmt.Printf("read latency hidden: %.0f%%\n", 100*(1-float64(b.Read)/float64(base.Breakdown.Read)))
	}
	return nil
}
