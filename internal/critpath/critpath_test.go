package critpath

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Stall(ReadLat)
	c.StallN(WriteLat, 7)
	c.Uncharge()
	c.Edge(Busy)
	c.EdgeLast()
	c.Finish(100)
	if got := c.Last(); got != Busy {
		t.Errorf("nil Last() = %v, want busy", got)
	}
	if a := c.Attribution(); a.Total != 0 || a.Sum() != 0 {
		t.Errorf("nil Attribution() = %+v, want zero", a)
	}
}

func TestConservationResidualBusy(t *testing.T) {
	c := NewCollector()
	c.StallN(ReadLat, 40)
	c.Stall(BranchRefill)
	c.Stall(BranchRefill)
	c.StallN(SyncWait, 8)
	c.Finish(100)
	a := c.Attribution()
	if a.Sum() != 100 {
		t.Fatalf("Sum() = %d, want 100 (conservation)", a.Sum())
	}
	if a.Cycles[Busy] != 50 {
		t.Errorf("busy = %d, want residual 50", a.Cycles[Busy])
	}
	if a.Cycles[ReadLat] != 40 || a.Cycles[BranchRefill] != 2 || a.Cycles[SyncWait] != 8 {
		t.Errorf("stall buckets = %v", a.Cycles)
	}
	if d := a.DominantStall(); d != ReadLat {
		t.Errorf("DominantStall() = %v, want read-lat", d)
	}
}

// TestUnchargeLIFO checks that Uncharge pops fine causes in exactly the
// reverse charge order, one cycle at a time, across run-length boundaries —
// the lockstep mirror of the DS stall stack's credit pops.
func TestUnchargeLIFO(t *testing.T) {
	c := NewCollector()
	c.StallN(ReadLat, 2)
	c.Stall(BranchRefill)
	c.Stall(ReadLat) // separate run after the branch run

	want := []Cause{ReadLat, BranchRefill, ReadLat, ReadLat}
	for i, cause := range want {
		before := c.cycles[cause]
		c.Uncharge()
		if c.cycles[cause] != before-1 {
			t.Fatalf("pop %d: cycles[%v] = %d, want %d", i, cause, c.cycles[cause], before-1)
		}
	}
	c.Uncharge() // empty stack: no-op, no underflow
	for cause, n := range c.cycles {
		if n != 0 {
			t.Errorf("after draining, cycles[%v] = %d, want 0", Cause(cause), n)
		}
	}
}

func TestEdgeLastTracksMostRecentStall(t *testing.T) {
	c := NewCollector()
	c.EdgeLast() // before any stall: busy
	c.Stall(MSHRFull)
	c.EdgeLast()
	c.Edge(InOrder)
	c.Finish(10)
	a := c.Attribution()
	if a.Edges[Busy] != 1 || a.Edges[MSHRFull] != 1 || a.Edges[InOrder] != 1 {
		t.Errorf("edges = %v", a.Edges)
	}
	if a.EdgeSum() != 3 {
		t.Errorf("EdgeSum() = %d, want 3", a.EdgeSum())
	}
}

func TestCauseStrings(t *testing.T) {
	seen := make(map[string]bool)
	for _, c := range Causes() {
		s := c.String()
		if s == "" || strings.HasPrefix(s, "cause(") {
			t.Errorf("cause %d has no name", c)
		}
		if seen[s] {
			t.Errorf("duplicate cause name %q", s)
		}
		seen[s] = true
	}
	if got := Cause(200).String(); got != "cause(200)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestAttributionJSON(t *testing.T) {
	c := NewCollector()
	c.StallN(ReadLat, 30)
	c.Edge(Busy)
	c.Finish(100)
	b, err := json.Marshal(c.Attribution())
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Total  uint64            `json:"total_cycles"`
		Cycles map[string]uint64 `json:"cycles"`
		Edges  map[string]uint64 `json:"edges"`
	}
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal %s: %v", b, err)
	}
	if got.Total != 100 || got.Cycles["read-lat"] != 30 || got.Cycles["busy"] != 70 || got.Edges["busy"] != 1 {
		t.Errorf("round-trip = %+v from %s", got, b)
	}
}

func TestWriteFlame(t *testing.T) {
	c := NewCollector()
	c.StallN(ReadLat, 25)
	c.StallN(BranchRefill, 5)
	c.Finish(100)
	var buf bytes.Buffer
	if err := WriteFlame(&buf, []FlameCell{{Name: "lu RC-DS64", Attr: c.Attribution()}}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("flame output is not valid JSON: %v\n%s", err, buf.String())
	}
	// One metadata event plus one X event per non-zero bucket (busy,
	// read-lat, branch-refill).
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d trace events, want 4:\n%s", len(doc.TraceEvents), buf.String())
	}
	var dur float64
	for _, ev := range doc.TraceEvents[1:] {
		dur += ev["dur"].(float64)
	}
	if dur != 100 {
		t.Errorf("total flame duration = %v, want 100 (conservation)", dur)
	}

	// Determinism: two renders are byte-identical.
	var buf2 bytes.Buffer
	if err := WriteFlame(&buf2, []FlameCell{{Name: "lu RC-DS64", Attr: c.Attribution()}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("WriteFlame output is not deterministic")
	}
}
