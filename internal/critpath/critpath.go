// Package critpath implements critical-path cycle attribution for the
// processor timing models: a per-replay Collector that mirrors each model's
// stall accounting at a finer cause granularity and records, for every
// retired instruction, its last-arriving dependence edge.
//
// The Figure 3 Breakdown answers "where did the cycles go" in the paper's
// four coarse categories; the attribution here answers "what caused them" —
// at window W under model M, X% of execution time is on the critical path
// because of cause C. The design guarantees the conservation invariant by
// construction: the Collector charges exactly one fine cause for every
// stall cycle the model charges (and uncharges in lockstep when the DS
// model's burst-retirement credit reclassifies stall cycles as busy), then
// Finish computes the busy bucket as the residual total − Σstalls. The
// attribution buckets therefore sum exactly to Breakdown.Total().
//
// Like the hooks of package obs, every Collector method is nil-safe: a
// replay with no collector pays only nil checks on the stall path.
package critpath

import (
	"encoding/json"
	"fmt"
	"io"
)

// Cause is a fine-grained critical-path cycle (or edge) classification.
type Cause uint8

const (
	// Busy is useful work: cycles retiring instructions. As a last-arriving
	// edge it marks an instruction that flowed through without waiting.
	Busy Cause = iota
	// DataDep is a register dependence on a non-load producer (ALU chains).
	DataDep
	// ReadLat is the memory-transfer latency of an issued read (and the
	// tail of a load-use chain waiting on that read's value).
	ReadLat
	// WriteLat is write/release memory-transfer latency, including the
	// end-of-trace drain of buffered writes.
	WriteLat
	// SyncWait is acquire synchronization: contention plus transfer.
	SyncWait
	// Consistency marks an access that is ready but may not issue because
	// the consistency model orders it behind older unperformed accesses.
	Consistency
	// BufferFull is a structural stall: the store buffer (DS), write
	// buffer (SSBR/SS), or read buffer (SS) has no free slot.
	BufferFull
	// MSHRFull is a structural stall: every miss-status register is
	// occupied, so a new miss cannot start.
	MSHRFull
	// BranchRefill is the fetch-redirect bubble after a mispredicted
	// branch (plus cold-start pipeline fill).
	BranchRefill
	// InOrder is an edge-only cause: the instruction had completed but
	// waited for older instructions to retire first (FIFO retirement).
	// It is never charged cycles.
	InOrder
	// Other is the residual bucket for rare unclassified bubbles.
	Other

	// NumCauses counts the causes; valid Cause values are < NumCauses.
	NumCauses
)

var causeNames = [NumCauses]string{
	Busy:         "busy",
	DataDep:      "data-dep",
	ReadLat:      "read-lat",
	WriteLat:     "write-lat",
	SyncWait:     "sync-wait",
	Consistency:  "consistency",
	BufferFull:   "buffer-full",
	MSHRFull:     "mshr-full",
	BranchRefill: "branch-refill",
	InOrder:      "in-order",
	Other:        "other",
}

func (c Cause) String() string {
	if c < NumCauses {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// Causes returns every cause in declaration order.
func Causes() []Cause {
	out := make([]Cause, NumCauses)
	for i := range out {
		out[i] = Cause(i)
	}
	return out
}

// causeRun is one run-length-encoded stretch of identically charged cycles.
// The encoding keeps the stack O(transitions) rather than O(cycles), so the
// time-skip bulk charges cost O(1) — the same trick as the DS stall stack.
type causeRun struct {
	cause Cause
	n     uint64
}

// Collector accumulates one replay's critical-path attribution. The zero
// value is ready to use; all methods are nil-safe no-ops on a nil receiver.
// A Collector is not safe for concurrent use — the experiment harness gives
// every replay cell its own.
type Collector struct {
	cycles [NumCauses]uint64
	edges  [NumCauses]uint64
	stack  []causeRun
	last   Cause
	total  uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Stall charges one stall cycle to cause.
func (c *Collector) Stall(cause Cause) { c.StallN(cause, 1) }

// StallN charges n stall cycles to cause in bulk (the time-skip path).
func (c *Collector) StallN(cause Cause, n uint64) {
	if c == nil || n == 0 {
		return
	}
	c.cycles[cause] += n
	c.last = cause
	if l := len(c.stack); l > 0 && c.stack[l-1].cause == cause {
		c.stack[l-1].n += n
		return
	}
	c.stack = append(c.stack, causeRun{cause: cause, n: n})
}

// Uncharge pops the most recently charged stall cycle, mirroring the DS
// model's burst-retirement credit: a cycle that retires more than the issue
// width proves an earlier stall cycle overlapped useful buffered work, so
// that cycle's fine cause is reclaimed exactly as its coarse category is.
func (c *Collector) Uncharge() {
	if c == nil || len(c.stack) == 0 {
		return
	}
	r := &c.stack[len(c.stack)-1]
	c.cycles[r.cause]--
	r.n--
	if r.n == 0 {
		c.stack = c.stack[:len(c.stack)-1]
	}
}

// CycleCounts returns the raw per-cause stall-cycle counters charged so
// far, *before* Finish derives the busy residual. The timeline sampler
// snapshots these at interval boundaries to derive per-interval fine-cause
// deltas; counts can decrease between snapshots when Uncharge reclaims
// cycles. Nil-safe (returns the zero array).
func (c *Collector) CycleCounts() [NumCauses]uint64 {
	if c == nil {
		return [NumCauses]uint64{}
	}
	return c.cycles
}

// Edge records one retired instruction's last-arriving dependence edge.
func (c *Collector) Edge(cause Cause) {
	if c == nil {
		return
	}
	c.edges[cause]++
}

// EdgeLast records an edge of the most recently charged stall cause — the
// classification of the wait the retiring instruction just sat through.
// Before any stall has been charged it records Busy.
func (c *Collector) EdgeLast() {
	if c == nil {
		return
	}
	c.edges[c.last]++
}

// Last returns the most recently charged stall cause (Busy before any).
func (c *Collector) Last() Cause {
	if c == nil {
		return Busy
	}
	return c.last
}

// Finish seals the collection at the replay's total cycle count. The busy
// bucket is derived in Attribution as the residual total − Σstalls, which
// is what makes the conservation invariant hold by construction.
func (c *Collector) Finish(total uint64) {
	if c == nil {
		return
	}
	c.total = total
}

// Attribution returns the sealed attribution. Safe on a nil collector
// (returns the zero attribution).
func (c *Collector) Attribution() Attribution {
	if c == nil {
		return Attribution{}
	}
	a := Attribution{Total: c.total, Cycles: c.cycles, Edges: c.edges}
	var stall uint64
	for i := int(Busy) + 1; i < int(NumCauses); i++ {
		stall += c.cycles[i]
	}
	if a.Total >= stall {
		a.Cycles[Busy] = a.Total - stall
	}
	return a
}

// Attribution is a finished top-down cycle attribution: Cycles sums exactly
// to Total (the replay's Breakdown.Total()), and Edges sums to the retired
// instruction count.
type Attribution struct {
	Total  uint64
	Cycles [NumCauses]uint64
	Edges  [NumCauses]uint64
}

// Sum returns the total attributed cycles (== Total when conserved).
func (a Attribution) Sum() uint64 {
	var s uint64
	for _, v := range a.Cycles {
		s += v
	}
	return s
}

// EdgeSum returns the total recorded edges (== retired instructions).
func (a Attribution) EdgeSum() uint64 {
	var s uint64
	for _, v := range a.Edges {
		s += v
	}
	return s
}

// Share returns cause's fraction of total execution time.
func (a Attribution) Share(c Cause) float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(a.Cycles[c]) / float64(a.Total)
}

// DominantStall returns the largest non-busy cycle bucket (ties broken by
// declaration order, so the result is deterministic).
func (a Attribution) DominantStall() Cause {
	best := Cause(1)
	for c := Cause(1); c < NumCauses; c++ {
		if a.Cycles[c] > a.Cycles[best] {
			best = c
		}
	}
	return best
}

// MarshalJSON renders the attribution with cause-named buckets rather than
// positional arrays, so JSON consumers do not depend on enum order.
func (a Attribution) MarshalJSON() ([]byte, error) {
	cycles := make(map[string]uint64, NumCauses)
	edges := make(map[string]uint64, NumCauses)
	for c := Cause(0); c < NumCauses; c++ {
		if a.Cycles[c] > 0 {
			cycles[c.String()] = a.Cycles[c]
		}
		if a.Edges[c] > 0 {
			edges[c.String()] = a.Edges[c]
		}
	}
	return json.Marshal(struct {
		Total  uint64            `json:"total_cycles"`
		Cycles map[string]uint64 `json:"cycles"`
		Edges  map[string]uint64 `json:"edges,omitempty"`
	}{a.Total, cycles, edges})
}

// FlameCell names one attribution for the flamegraph export.
type FlameCell struct {
	Name string
	Attr Attribution
}

// WriteFlame renders the attributions as a Chrome trace (load into
// chrome://tracing or Perfetto): one process per cell, the causes laid out
// as consecutive complete events sized by their cycle counts, so each row
// reads as a flame-style bar of the cell's execution time. 1 cycle = 1 µs,
// matching the pipeline tracer's convention. Output is deterministic.
func WriteFlame(w io.Writer, cells []FlameCell) error {
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(v any) error {
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		_, err = w.Write(b)
		return err
	}
	for i, cell := range cells {
		pid := i + 1
		if err := emit(map[string]any{
			"name": "process_name", "ph": "M", "pid": pid,
			"args": map[string]string{"name": cell.Name},
		}); err != nil {
			return err
		}
		var ts uint64
		for c := Cause(0); c < NumCauses; c++ {
			n := cell.Attr.Cycles[c]
			if n == 0 {
				continue
			}
			if err := emit(map[string]any{
				"name": c.String(), "ph": "X", "pid": pid, "tid": 1,
				"ts": ts, "dur": n,
			}); err != nil {
				return err
			}
			ts += n
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}
