package obs

// Profiling hooks: thin wrappers over runtime/pprof so the command-line
// tools can profile the simulator itself (-cpuprofile / -memprofile),
// closing the loop the ROADMAP asks for: measure the simulator before
// optimizing it.

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile written to path and returns a stop
// function that finishes the profile and closes the file. An empty path is a
// no-op (the returned stop function is still non-nil).
func StartCPUProfile(path string) (stop func() error, err error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile writes an allocation profile to path after forcing a
// garbage collection so the numbers reflect live memory. An empty path is a
// no-op.
func WriteHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return f.Close()
}
