package obs

// Prometheus text exposition rendering for the live server's /metrics
// endpoint. The registry's hierarchical dot-separated names are flattened
// into the Prometheus name grammar ([a-zA-Z_:][a-zA-Z0-9_:]*) under a
// "dynsched_" namespace; histograms become the conventional cumulative
// _bucket/_sum/_count triple. Rendering is deterministic: metrics are
// emitted in sorted original-name order and name collisions introduced by
// sanitization are disambiguated with a numeric suffix, so the exposition
// never contains duplicate metric names.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// promNamespace prefixes every exported metric name.
const promNamespace = "dynsched_"

// promSanitize maps one registry metric name into the Prometheus name
// grammar: legal characters pass through, everything else ('.', '-', ...)
// becomes '_'.
func promSanitize(name string) string {
	out := make([]byte, 0, len(name)+len(promNamespace))
	out = append(out, promNamespace...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// promNamer hands out sanitized names, disambiguating collisions (two
// registry names that sanitize identically) deterministically.
type promNamer struct{ seen map[string]int }

func newPromNamer() *promNamer { return &promNamer{seen: make(map[string]int)} }

func (n *promNamer) name(raw string) string {
	s := promSanitize(raw)
	n.seen[s]++
	if c := n.seen[s]; c > 1 {
		s = fmt.Sprintf("%s_dup%d", s, c-1)
		n.seen[s]++
	}
	return s
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4).
func WritePrometheus(w io.Writer, s Snapshot) error {
	namer := newPromNamer()

	counters := sortedKeys(s.Counters)
	for _, raw := range counters {
		name := namer.name(raw)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[raw]); err != nil {
			return err
		}
	}
	gauges := sortedKeys(s.Gauges)
	for _, raw := range gauges {
		name := namer.name(raw)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(s.Gauges[raw])); err != nil {
			return err
		}
	}
	hists := sortedKeys(s.Histograms)
	for _, raw := range hists {
		name := namer.name(raw)
		h := s.Histograms[raw]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum uint64
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, bound, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Total); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum, name, h.Total); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
