package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden export files")

// goldenTracer builds a small deterministic pipeline: a hit load, two ALU
// ops, a missing load, and a mispredicted branch.
func goldenTracer() *PipeTracer {
	p := NewPipeTracer(8)
	p.Record(InstrRecord{Seq: 0, PC: 0, Disasm: "ld r1, 0(r2)",
		DecodedAt: 0, IssuedAt: 1, DoneAt: 2, RetiredAt: 2})
	p.Record(InstrRecord{Seq: 1, PC: 1, Disasm: "add r3, r1, r4",
		DecodedAt: 1, IssuedAt: 2, DoneAt: 3, RetiredAt: 3})
	p.Record(InstrRecord{Seq: 2, PC: 2, Disasm: "ld r5, 8(r2)",
		DecodedAt: 1, IssuedAt: 3, DoneAt: 53, RetiredAt: 53, Miss: true})
	p.Record(InstrRecord{Seq: 3, PC: 3, Disasm: "sub r6, r5, r1",
		DecodedAt: 2, IssuedAt: 53, DoneAt: 54, RetiredAt: 54})
	p.Record(InstrRecord{Seq: 4, PC: 4, Disasm: "beq r6, 2",
		DecodedAt: 3, IssuedAt: 54, DoneAt: 55, RetiredAt: 55, Mispredict: true})
	return p
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestWriteKonataGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteKonata(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "Kanata\t0004\n") {
		t.Fatalf("missing Kanata header:\n%s", out)
	}
	checkGolden(t, "golden.kanata", buf.Bytes())
}

func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	// The export must be valid JSON in the trace-event container format.
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	// 1 process_name metadata event + 3 stage spans per instruction.
	if want := 1 + 3*5; len(doc.TraceEvents) != want {
		t.Errorf("traceEvents = %d, want %d", len(doc.TraceEvents), want)
	}
	checkGolden(t, "golden_chrome.json", buf.Bytes())
}

func TestWritePipeTraceFileFormats(t *testing.T) {
	dir := t.TempDir()
	kan := filepath.Join(dir, "p.kanata")
	chr := filepath.Join(dir, "p.json")
	if err := WritePipeTraceFile(goldenTracer(), kan); err != nil {
		t.Fatal(err)
	}
	if err := WritePipeTraceFile(goldenTracer(), chr); err != nil {
		t.Fatal(err)
	}
	kb, _ := os.ReadFile(kan)
	if !strings.HasPrefix(string(kb), "Kanata\t0004") {
		t.Errorf(".kanata path did not produce a Konata log: %.40s", kb)
	}
	cb, _ := os.ReadFile(chr)
	if !json.Valid(cb) {
		t.Errorf(".json path did not produce valid JSON: %.40s", cb)
	}
}
