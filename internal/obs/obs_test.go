package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("a.b") != c {
		t.Error("second lookup returned a different counter")
	}
	c.Set(2)
	if got := c.Value(); got != 2 {
		t.Errorf("after Set(2): %d", got)
	}
	g := r.Gauge("g")
	g.Set(1.5)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// Every chained call on a nil registry must be a silent no-op.
	r.Counter("x").Inc()
	r.Counter("x").Add(3)
	r.Gauge("y").Set(2)
	r.Histogram("z", 1, 2).Observe(7)
	if got := r.Counter("x").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	if names := r.Names(); names != nil {
		t.Errorf("nil registry names = %v", names)
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}

	var h *Histogram
	h.Observe(1)
	if h.Total() != 0 || h.Mean() != 0 {
		t.Error("nil histogram recorded samples")
	}
	var p *PipeTracer
	p.Record(InstrRecord{Seq: 1})
	if p.Len() != 0 {
		t.Error("nil pipe tracer recorded")
	}
	var pr *Progress
	pr.SetLabel("x")
	pr.Publish(1, 1)
	pr.Add(1, 1)
	pr.Start()
	pr.Stop()
}

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]uint64{0, 10, 20})
	// Bucket bounds are inclusive upper bounds; the 4th bucket is open.
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {10, 1}, {11, 2}, {20, 2}, {21, 3}, {1 << 40, 3},
	}
	for _, c := range cases {
		before := h.Count(c.bucket)
		h.Observe(c.v)
		if got := h.Count(c.bucket); got != before+1 {
			t.Errorf("Observe(%d): bucket %d count %d, want %d", c.v, c.bucket, got, before+1)
		}
	}
	if h.Total() != uint64(len(cases)) {
		t.Errorf("total = %d, want %d", h.Total(), len(cases))
	}
}

func TestHistogramFirstRegistrationWins(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("h", 1, 2, 3)
	h2 := r.Histogram("h", 9)
	if h1 != h2 {
		t.Fatal("same name produced two histograms")
	}
	if len(h1.bounds) != 3 {
		t.Errorf("bounds = %v, want the first registration's", h1.bounds)
	}
}

// TestRegistryConcurrency exercises concurrent lookup and update from many
// goroutines; run under -race it proves the lock-free update path.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines, iters = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared.count").Inc()
				r.Gauge("shared.gauge").Set(float64(i))
				r.Histogram("shared.hist", 10, 100).Observe(uint64(i))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared.count").Value(); got != goroutines*iters {
		t.Errorf("counter = %d, want %d", got, goroutines*iters)
	}
	if got := r.Histogram("shared.hist").Total(); got != goroutines*iters {
		t.Errorf("histogram total = %d, want %d", got, goroutines*iters)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(0.5)
	r.Histogram("h", 1, 2).Observe(2)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, buf.String())
	}
	if s.Counters["c"] != 7 || s.Gauges["g"] != 0.5 {
		t.Errorf("round-tripped snapshot = %+v", s)
	}
	h := s.Histograms["h"]
	if h.Total != 1 || h.Sum != 2 || len(h.Counts) != 3 {
		t.Errorf("histogram snapshot = %+v", h)
	}
	want := []string{"c", "g", "h"}
	got := r.Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestPipeTracerRing(t *testing.T) {
	p := NewPipeTracer(4)
	for i := uint64(0); i < 6; i++ {
		p.Record(InstrRecord{Seq: i, DecodedAt: i, RetiredAt: i + 1})
	}
	if p.Len() != 4 {
		t.Errorf("len = %d, want 4 (capacity)", p.Len())
	}
	if p.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", p.Dropped())
	}
	recs := p.Records()
	if len(recs) != 4 {
		t.Fatalf("records = %d, want 4", len(recs))
	}
	for i, r := range recs {
		if want := uint64(i + 2); r.Seq != want {
			t.Errorf("records[%d].Seq = %d, want %d", i, r.Seq, want)
		}
	}
}
