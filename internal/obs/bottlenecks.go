package obs

// The /bottlenecks endpoint: a live top-down view of the critical-path
// attribution counters the analyze step publishes under
// "critpath.<app>.<label>.cycles.<cause>". The server side only needs the
// registry snapshot — the naming convention is the contract — so a sweep
// that records attribution mid-run exposes its bottleneck ranking while
// later cells are still executing.

import (
	"sort"
	"strings"
)

// BottleneckCell is one analyzed app × configuration cell, decoded from the
// snapshot's critpath counters.
type BottleneckCell struct {
	Cell        string             `json:"cell"`           // "<app>.<label>", e.g. "mp3d.RC-DS64"
	TotalCycles uint64             `json:"total_cycles"`   // execution time of the cell
	Cycles      map[string]uint64  `json:"cycles"`         // cause -> cycles on the critical path
	Shares      map[string]float64 `json:"shares"`         // cause -> fraction of total cycles
	Dominant    string             `json:"dominant_stall"` // largest non-busy bucket, "" if all busy
}

// Bottlenecks decodes every "critpath.<cell>.cycles.<cause>" counter in s
// into per-cell attributions, sorted by cell name. Snapshots without
// attribution counters decode to an empty slice. The dominant stall is the
// largest non-busy bucket; ties break toward the lexicographically smaller
// cause name so the ranking is deterministic.
func Bottlenecks(s Snapshot) []BottleneckCell {
	byCell := make(map[string]*BottleneckCell)
	for name, v := range s.Counters {
		rest, ok := strings.CutPrefix(name, "critpath.")
		if !ok {
			continue
		}
		cell, cause, ok := strings.Cut(rest, ".cycles.")
		if !ok {
			continue
		}
		bc := byCell[cell]
		if bc == nil {
			bc = &BottleneckCell{Cell: cell, Cycles: make(map[string]uint64)}
			byCell[cell] = bc
		}
		if cause == "total" {
			bc.TotalCycles = v
		} else {
			bc.Cycles[cause] = v
		}
	}

	out := make([]BottleneckCell, 0, len(byCell))
	for _, cell := range sortedKeys(byCell) {
		bc := byCell[cell]
		if bc.TotalCycles > 0 {
			bc.Shares = make(map[string]float64, len(bc.Cycles))
			for cause, v := range bc.Cycles {
				bc.Shares[cause] = float64(v) / float64(bc.TotalCycles)
			}
		}
		var domN uint64
		for _, cause := range sortedKeys(bc.Cycles) {
			if cause == "busy" {
				continue
			}
			if v := bc.Cycles[cause]; v > domN {
				bc.Dominant, domN = cause, v
			}
		}
		out = append(out, *bc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cell < out[j].Cell })
	return out
}
