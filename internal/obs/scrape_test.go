package obs

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestServeMetricsConcurrentScrape hammers /metrics while simulator workers
// stream samples into registered HistogramBatch/CounterBatch buffers. Every
// scrape triggers FlushBatches under the snapshot, so this exercises the
// batch drain racing the owners' Observe/Add; under -race it doubles as the
// data-race proof. Each response must be a well-formed exposition (the
// parser rejects duplicate names, bad grammar, malformed samples), and once
// the writers stop, a final scrape must account for every sample exactly.
func TestServeMetricsConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(NewServeMux(ServerState{Registry: r, Version: "test"}))
	defer srv.Close()

	const (
		writers    = 4
		perWriter  = 5000
		scrapes    = 25
		histBounds = 8
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hb := r.HistogramBatch("cpu.scrape.occupancy", 1, 2, 4, histBounds)
			cb := r.CounterBatch("cpu.scrape.cycles")
			defer hb.Close()
			defer cb.Close()
			for i := 0; i < perWriter; i++ {
				hb.Observe(uint64(i % (histBounds + 2)))
				cb.Inc()
				if i%64 == 0 {
					hb.Flush()
					cb.Flush()
				}
			}
		}(w)
	}

	scrape := func() string {
		t.Helper()
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics status = %d", resp.StatusCode)
		}
		return readAll(t, resp)
	}

	var sg sync.WaitGroup
	bodies := make([]string, scrapes)
	for i := 0; i < scrapes; i++ {
		sg.Add(1)
		go func(i int) {
			defer sg.Done()
			bodies[i] = scrape()
		}(i)
	}
	sg.Wait()
	wg.Wait()

	// Every mid-run scrape must already be parseable and bounded by what
	// the writers could have produced so far.
	for i, body := range bodies {
		if body == "" {
			continue // empty registry race at startup renders no lines
		}
		samples := parseExposition(t, body)
		if c := samples["dynsched_cpu_scrape_cycles"]; c > writers*perWriter {
			t.Errorf("scrape %d: counter %v exceeds the %d samples written", i, c, writers*perWriter)
		}
		if n := samples["dynsched_cpu_scrape_occupancy_count"]; n > writers*perWriter {
			t.Errorf("scrape %d: histogram count %v exceeds the %d samples written", i, n, writers*perWriter)
		}
	}

	// After the writers close their batches, the totals are exact.
	final := parseExposition(t, scrape())
	if got := final["dynsched_cpu_scrape_cycles"]; got != writers*perWriter {
		t.Errorf("final counter = %v, want %d", got, writers*perWriter)
	}
	if got := final["dynsched_cpu_scrape_occupancy_count"]; got != writers*perWriter {
		t.Errorf("final histogram count = %v, want %d", got, writers*perWriter)
	}
	inf := final[`dynsched_cpu_scrape_occupancy_bucket{le="+Inf"}`]
	if inf != writers*perWriter {
		t.Errorf("+Inf bucket = %v, want %d", inf, writers*perWriter)
	}
	// Cumulative buckets never decrease left to right.
	prev := -1.0
	for _, le := range []string{"1", "2", "4", "8", "+Inf"} {
		v, ok := final[`dynsched_cpu_scrape_occupancy_bucket{le="`+le+`"}`]
		if !ok {
			t.Fatalf("missing bucket le=%q in final scrape", le)
		}
		if v < prev {
			t.Errorf("bucket le=%q = %v < previous %v: not cumulative", le, v, prev)
		}
		prev = v
	}
}
