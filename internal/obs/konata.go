package obs

// Konata export: the Kanata log format of the Onikiri2 simulator, rendered
// by the Konata pipeline viewer (https://github.com/shioyadan/Konata) and
// emitted by gem5's O3 pipeline instrumentation. The format is a
// tab-separated command stream:
//
//	Kanata <version>       header (version 0004)
//	C= <cycle>             set the absolute current cycle
//	C <delta>              advance the current cycle
//	I <id> <iid> <tid>     begin an instruction record
//	L <id> <pane> <text>   label (pane 0: left pane, pane 1: hover detail)
//	S <id> <lane> <stage>  stage begin
//	E <id> <lane> <stage>  stage end
//	R <id> <rid> <type>    retire (type 0) or flush (type 1)
//
// Each record renders three lanes-0 stages mirroring the timing models:
// F (in the window, waiting to issue), X (executing / access in flight),
// and C (complete, waiting for in-order retirement).

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// kEvent is one Kanata command scheduled at a cycle. ord orders commands
// within the same (cycle, instruction).
type kEvent struct {
	cycle uint64
	id    uint64
	ord   int
	line  string
}

// WriteKonata writes the tracer's records as a Kanata 0004 log. Safe on a
// nil receiver (writes an empty, valid log).
func (p *PipeTracer) WriteKonata(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprint(bw, "Kanata\t0004\n"); err != nil {
		return err
	}
	recs := p.Records()
	if len(recs) == 0 {
		return bw.Flush()
	}

	events := make([]kEvent, 0, len(recs)*8)
	for i := range recs {
		r := &recs[i]
		decoded, issued, done, retired := r.stageCycles()
		id := r.Seq
		detail := fmt.Sprintf("seq=%d pc=%d decode=%d issue=%d done=%d retire=%d",
			r.Seq, r.PC, decoded, issued, done, retired)
		if r.Miss {
			detail += " miss"
		}
		if r.Mispredict {
			detail += " mispredict"
		}
		events = append(events,
			kEvent{decoded, id, 0, fmt.Sprintf("I\t%d\t%d\t0\n", id, id)},
			kEvent{decoded, id, 1, fmt.Sprintf("L\t%d\t0\t%d: %s\n", id, r.PC, r.Disasm)},
			kEvent{decoded, id, 2, fmt.Sprintf("L\t%d\t1\t%s\n", id, detail)},
			kEvent{decoded, id, 3, fmt.Sprintf("S\t%d\t0\tF\n", id)},
			kEvent{issued, id, 4, fmt.Sprintf("S\t%d\t0\tX\n", id)},
			kEvent{done, id, 5, fmt.Sprintf("S\t%d\t0\tC\n", id)},
			kEvent{retired, id, 6, fmt.Sprintf("E\t%d\t0\tC\n", id)},
			kEvent{retired, id, 7, fmt.Sprintf("R\t%d\t%d\t0\n", id, id)},
		)
	}
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.cycle != b.cycle {
			return a.cycle < b.cycle
		}
		if a.id != b.id {
			return a.id < b.id
		}
		return a.ord < b.ord
	})

	cur := events[0].cycle
	if _, err := fmt.Fprintf(bw, "C=\t%d\n", cur); err != nil {
		return err
	}
	for _, e := range events {
		if e.cycle > cur {
			if _, err := fmt.Fprintf(bw, "C\t%d\n", e.cycle-cur); err != nil {
				return err
			}
			cur = e.cycle
		}
		if _, err := bw.WriteString(e.line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// stageCycles returns the record's stage boundaries clamped to be
// monotonically non-decreasing, guarding against models that leave a stage
// timestamp unset (zero).
func (r *InstrRecord) stageCycles() (decoded, issued, done, retired uint64) {
	decoded = r.DecodedAt
	issued = max64(r.IssuedAt, decoded)
	done = max64(r.DoneAt, issued)
	retired = max64(r.RetiredAt, done)
	return
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
