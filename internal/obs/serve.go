package obs

// The live run server: an opt-in, stdlib-only HTTP server that makes a
// running sweep observable while it executes. It exposes
//
//	/            a plain-text index of the endpoints
//	/metrics     the registry snapshot in Prometheus text exposition format
//	/metrics.json  the registry snapshot as JSON (same shape as -metrics-out)
//	/bottlenecks the critical-path attribution decoded from the registry
//	/jobs        the experiment scheduler's per-job state (JobBoard.Status)
//	/progress    the Progress ticker's throughput and ETA (Progress.Status)
//	/healthz     liveness: version, uptime, goroutine count
//	/debug/pprof/* the standard net/http/pprof handlers
//
// Every data source is optional and nil-safe: a nil Registry serves an
// empty snapshot, a nil JobBoard an empty board, a nil Progress a zeroed
// status — so the command-line front ends wire up whatever the run has.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// ServerState bundles the live data sources the server renders.
type ServerState struct {
	Registry *Registry
	Board    *JobBoard
	Progress *Progress
	Version  string // reported by /healthz
}

// NewServeMux builds the live server's handler tree over st.
func NewServeMux(st ServerState) *http.ServeMux {
	start := time.Now()
	mux := http.NewServeMux()

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "dynsched live run server (version %s)\n\n", st.Version)
		fmt.Fprint(w, "endpoints:\n"+
			"  /metrics        Prometheus text exposition of the metrics registry\n"+
			"  /metrics.json   JSON metrics snapshot (same shape as -metrics-out)\n"+
			"  /bottlenecks    critical-path attribution by app and configuration\n"+
			"  /jobs           experiment scheduler job board\n"+
			"  /progress       throughput and ETA of the running simulations\n"+
			"  /healthz        liveness and uptime\n"+
			"  /debug/pprof/   runtime profiles\n")
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, st.Registry.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := st.Registry.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	mux.HandleFunc("/bottlenecks", func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, Bottlenecks(st.Registry.Snapshot()))
	})

	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, st.Board.Status())
	})

	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, st.Progress.Status())
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, map[string]any{
			"status":         "ok",
			"version":        st.Version,
			"uptime_seconds": time.Since(start).Seconds(),
			"goroutines":     runtime.NumGoroutine(),
		})
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

func serveJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Server is a running live server; Close shuts it down.
type Server struct {
	// Addr is the actual listen address (useful with ":0").
	Addr string

	srv *http.Server
}

// StartServer listens on addr (":0" picks a free port) and serves the live
// endpoints in a background goroutine until Close.
func StartServer(addr string, st ServerState) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: serve: %w", err)
	}
	srv := &http.Server{Handler: NewServeMux(st)}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return &Server{Addr: ln.Addr().String(), srv: srv}, nil
}

// Close immediately shuts the server down, dropping in-flight requests.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// Shutdown gracefully stops the server: the listener closes immediately,
// in-flight requests (a /metrics scrape, a pprof download) run to completion,
// and ctx bounds the wait — on expiry the remaining connections are dropped
// as with Close.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	if err := s.srv.Shutdown(ctx); err != nil {
		s.srv.Close()
		return err
	}
	return nil
}
