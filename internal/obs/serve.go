package obs

// The live run server: an opt-in, stdlib-only HTTP server that makes a
// running sweep observable while it executes. It exposes
//
//	/            a plain-text index of the endpoints
//	/metrics     the registry snapshot in Prometheus text exposition format
//	/metrics.json  the registry snapshot as JSON (same shape as -metrics-out)
//	/bottlenecks the critical-path attribution decoded from the registry
//	/timeline    every registered cell's interval time series (TimelineHub)
//	/events      live timeline samples as a Server-Sent Events stream
//	/jobs        the experiment scheduler's per-job state (JobBoard.Status)
//	/progress    the Progress ticker's throughput and ETA (Progress.Status)
//	/healthz     liveness: version, uptime, goroutine count
//	/debug/pprof/* the standard net/http/pprof handlers
//
// Every data source is optional and nil-safe: a nil Registry serves an
// empty snapshot, a nil JobBoard an empty board, a nil Progress a zeroed
// status, a nil TimelineHub an empty series list and an immediately-closed
// event stream — so the command-line front ends wire up whatever the run
// has. All data endpoints are read-only: non-GET methods get 405, and
// responses carry Cache-Control: no-cache since every scrape is a live
// snapshot.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// ServerState bundles the live data sources the server renders.
type ServerState struct {
	Registry  *Registry
	Board     *JobBoard
	Progress  *Progress
	Timelines *TimelineHub
	Version   string // reported by /healthz
}

// readOnly wraps a handler to reject non-GET/HEAD methods with 405. The
// data endpoints are pure snapshots; only the pprof tree (whose symbol
// handler legitimately accepts POST) is left unwrapped.
func readOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// NewServeMux builds the live server's handler tree over st.
func NewServeMux(st ServerState) *http.ServeMux {
	start := time.Now()
	mux := http.NewServeMux()

	mux.HandleFunc("/", readOnly(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Cache-Control", "no-cache")
		fmt.Fprintf(w, "dynsched live run server (version %s)\n\n", st.Version)
		fmt.Fprint(w, "endpoints:\n"+
			"  /metrics        Prometheus text exposition of the metrics registry\n"+
			"  /metrics.json   JSON metrics snapshot (same shape as -metrics-out)\n"+
			"  /bottlenecks    critical-path attribution by app and configuration\n"+
			"  /timeline       interval time series of every registered cell\n"+
			"  /events         live timeline samples (Server-Sent Events)\n"+
			"  /jobs           experiment scheduler job board\n"+
			"  /progress       throughput and ETA of the running simulations\n"+
			"  /healthz        liveness and uptime\n"+
			"  /debug/pprof/   runtime profiles\n")
	}))

	mux.HandleFunc("/metrics", readOnly(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Header().Set("Cache-Control", "no-cache")
		if err := WritePrometheus(w, st.Registry.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}))

	mux.HandleFunc("/metrics.json", readOnly(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-cache")
		if err := st.Registry.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}))

	mux.HandleFunc("/bottlenecks", readOnly(func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, Bottlenecks(st.Registry.Snapshot()))
	}))

	mux.HandleFunc("/timeline", readOnly(func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, st.Timelines.Snapshot())
	}))

	mux.HandleFunc("/events", readOnly(func(w http.ResponseWriter, r *http.Request) {
		serveSSE(w, r, st.Timelines)
	}))

	mux.HandleFunc("/jobs", readOnly(func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, st.Board.Status())
	}))

	mux.HandleFunc("/progress", readOnly(func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, st.Progress.Status())
	}))

	mux.HandleFunc("/healthz", readOnly(func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, map[string]any{
			"status":         "ok",
			"version":        st.Version,
			"uptime_seconds": time.Since(start).Seconds(),
			"goroutines":     runtime.NumGoroutine(),
		})
	}))

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

func serveJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-cache")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// serveSSE streams live timeline samples as Server-Sent Events: one
// `event: sample` frame per recorded interval, with the hub's monotone
// sequence number as the event id. The stream ends when the client goes
// away or the hub closes (run finished / server shutting down); buffered
// events drain in order first, so a client sees a well-formed, ordered
// stream through shutdown.
func serveSSE(w http.ResponseWriter, r *http.Request, hub *TimelineHub) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	ch, cancel := hub.Subscribe(256)
	defer cancel()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: sample\ndata: %s\n\n", ev.Seq, data); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// Server is a running live server; Close shuts it down.
type Server struct {
	// Addr is the actual listen address (useful with ":0").
	Addr string

	srv *http.Server
	hub *TimelineHub
}

// StartServer listens on addr (":0" picks a free port) and serves the live
// endpoints in a background goroutine until Close.
func StartServer(addr string, st ServerState) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: serve: %w", err)
	}
	srv := &http.Server{Handler: NewServeMux(st)}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return &Server{Addr: ln.Addr().String(), srv: srv, hub: st.Timelines}, nil
}

// Close immediately shuts the server down, dropping in-flight requests.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.hub.Close()
	return s.srv.Close()
}

// Shutdown gracefully stops the server: the listener closes immediately,
// in-flight requests (a /metrics scrape, a pprof download) run to
// completion, and ctx bounds the wait — on expiry the remaining
// connections are dropped as with Close. The timeline hub closes first so
// /events streams end cleanly instead of pinning the graceful wait open.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	s.hub.Close()
	if err := s.srv.Shutdown(ctx); err != nil {
		s.srv.Close()
		return err
	}
	return nil
}
