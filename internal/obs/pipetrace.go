package obs

// The pipeline event tracer records one InstrRecord per retired instruction
// into a bounded ring buffer keyed by the instruction's sequence number, so
// a trace of the last N retired instructions is always available regardless
// of run length. Records may arrive slightly out of sequence order (a load
// completes after younger ALU work has been recorded); the ring tolerates
// any skew smaller than its capacity, which is orders of magnitude larger
// than any reorder-buffer window.

// Pipeline stage timestamps of one dynamic instruction, in simulator cycles.
// The stages mirror the paper's processor models: an instruction is decoded
// into the window, issued to a functional unit or the cache port, completes
// execution, and retires in program order. For single-cycle stages the
// interval is empty (start == end) and the exporters render a 1-cycle span.
type InstrRecord struct {
	Seq    uint64 // dynamic instruction number (trace index)
	PC     int32  // static instruction index
	Disasm string // instruction text for viewer labels

	DecodedAt uint64 // entered the window / was fetched
	IssuedAt  uint64 // dispatched to a functional unit or the cache port
	DoneAt    uint64 // value produced / memory access performed
	RetiredAt uint64 // left the window in program order

	Miss       bool // memory reference missed in the cache
	Mispredict bool // mispredicted branch
	Valid      bool // set by Record; false slots are skipped on export
}

// PipeTracer is a bounded ring buffer of instruction records. A nil tracer
// is a no-op. PipeTracer is not safe for concurrent use; each replay owns
// its own tracer (the processor models are single-goroutine).
type PipeTracer struct {
	recs    []InstrRecord
	maxSeq  uint64 // highest Seq recorded + 1
	seen    uint64 // total records ever recorded
	dropped uint64 // records that fell off the ring
}

// DefaultPipeCapacity is the default ring size: enough to inspect the tail
// of any run in a viewer while bounding memory to a few MB.
const DefaultPipeCapacity = 1 << 16

// NewPipeTracer creates a tracer holding the last capacity records
// (DefaultPipeCapacity if capacity <= 0).
func NewPipeTracer(capacity int) *PipeTracer {
	if capacity <= 0 {
		capacity = DefaultPipeCapacity
	}
	return &PipeTracer{recs: make([]InstrRecord, capacity)}
}

// Record stores r in the ring, evicting the record capacity instructions
// older. Safe on a nil receiver.
func (p *PipeTracer) Record(r InstrRecord) {
	if p == nil {
		return
	}
	r.Valid = true
	slot := &p.recs[r.Seq%uint64(len(p.recs))]
	if slot.Valid && slot.Seq != r.Seq {
		p.dropped++
	}
	*slot = r
	p.seen++
	if r.Seq+1 > p.maxSeq {
		p.maxSeq = r.Seq + 1
	}
}

// Len returns the number of records currently held (0 on a nil receiver).
func (p *PipeTracer) Len() int {
	if p == nil {
		return 0
	}
	n := 0
	for i := range p.recs {
		if p.recs[i].Valid {
			n++
		}
	}
	return n
}

// Dropped returns how many records were evicted by newer ones.
func (p *PipeTracer) Dropped() uint64 {
	if p == nil {
		return 0
	}
	return p.dropped
}

// Records returns the held records in ascending sequence order. The slice is
// freshly allocated; mutating it does not affect the tracer.
func (p *PipeTracer) Records() []InstrRecord {
	if p == nil {
		return nil
	}
	out := make([]InstrRecord, 0, len(p.recs))
	cap64 := uint64(len(p.recs))
	start := uint64(0)
	if p.maxSeq > cap64 {
		start = p.maxSeq - cap64
	}
	for seq := start; seq < p.maxSeq; seq++ {
		r := p.recs[seq%cap64]
		if r.Valid && r.Seq == seq {
			out = append(out, r)
		}
	}
	return out
}
