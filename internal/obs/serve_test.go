package obs

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promNameRE is the Prometheus metric name grammar.
var promNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// parseExposition validates a Prometheus text exposition: every line is a
// `# TYPE` comment or a sample, every name matches the grammar, and no base
// metric is declared twice. It returns the sample values by sample name.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	declared := make(map[string]bool)
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", ln+1)
		}
		if typ, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fields := strings.Fields(typ)
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE comment %q", ln+1, line)
			}
			name, kind := fields[0], fields[1]
			if !promNameRE.MatchString(name) {
				t.Fatalf("line %d: illegal metric name %q", ln+1, name)
			}
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("line %d: unknown metric type %q", ln+1, kind)
			}
			if declared[name] {
				t.Fatalf("line %d: metric %q declared twice", ln+1, name)
			}
			declared[name] = true
			continue
		}
		// Sample line: name[{labels}] value.
		rest := line
		name := rest
		if i := strings.IndexAny(rest, "{ "); i >= 0 {
			name = rest[:i]
			if rest[i] == '{' {
				j := strings.Index(rest, "} ")
				if j < 0 {
					t.Fatalf("line %d: unterminated label set: %q", ln+1, line)
				}
				name = rest[:j+1]
				rest = rest[:i] + rest[j+1:]
			}
		}
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if !promNameRE.MatchString(base) {
			t.Fatalf("line %d: illegal sample name %q", ln+1, base)
		}
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		if _, dup := samples[name]; dup {
			t.Fatalf("line %d: duplicate sample %q", ln+1, name)
		}
		samples[name] = v
	}
	return samples
}

func TestWritePrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("exp.lu.cycles").Set(123)
	// These two sanitize to the same name; the renderer must disambiguate.
	r.Counter("a.b").Set(1)
	r.Counter("a-b").Set(2)
	r.Gauge("exp.lu.wall_seconds").Set(0.25)
	h := r.Histogram("cpu.lu.rob.occupancy", 1, 2, 4)
	for _, v := range []uint64{0, 1, 2, 3, 5} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, b.String())

	if got := samples["dynsched_exp_lu_cycles"]; got != 123 {
		t.Errorf("counter sample = %v, want 123", got)
	}
	if got := samples["dynsched_exp_lu_wall_seconds"]; got != 0.25 {
		t.Errorf("gauge sample = %v, want 0.25", got)
	}
	// The colliding names must both survive, one under a _dup suffix;
	// "a-b" sorts before "a.b" so it takes the plain name.
	if samples["dynsched_a_b"] != 2 || samples["dynsched_a_b_dup1"] != 1 {
		t.Errorf("collision handling: a-b=%v a.b=%v", samples["dynsched_a_b"], samples["dynsched_a_b_dup1"])
	}

	// Histogram: cumulative buckets, +Inf == count, sum correct.
	pre := "dynsched_cpu_lu_rob_occupancy"
	wantBuckets := map[string]float64{
		pre + `_bucket{le="1"}`:    2, // 0, 1
		pre + `_bucket{le="2"}`:    3,
		pre + `_bucket{le="4"}`:    4,
		pre + `_bucket{le="+Inf"}`: 5,
	}
	for name, want := range wantBuckets {
		if got := samples[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if samples[pre+"_sum"] != 11 || samples[pre+"_count"] != 5 {
		t.Errorf("sum/count = %v/%v, want 11/5", samples[pre+"_sum"], samples[pre+"_count"])
	}

	// Deterministic output: a second render must be byte-identical.
	var b2 strings.Builder
	if err := WritePrometheus(&b2, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Error("two renders of the same snapshot differ")
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("exp.lu.cycles").Set(7)
	board := NewJobBoard()
	ok := board.Enqueue("lu BASE")
	board.Start(ok)
	board.Finish(ok, nil)
	bad := board.Enqueue("lu RC-DS64")
	board.Start(bad)
	board.Finish(bad, errors.New("boom"))
	board.Enqueue("mp3d BASE")
	pr := NewProgress(nil, 0)
	lane := pr.Lane("lu")
	lane.Publish(100, 400)
	lane.SetTotal(1000)

	srv := httptest.NewServer(NewServeMux(ServerState{
		Registry: reg, Board: board, Progress: pr, Version: "test",
	}))
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		return resp, readAll(t, resp)
	}

	resp, body := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	samples := parseExposition(t, body)
	if samples["dynsched_exp_lu_cycles"] != 7 {
		t.Errorf("/metrics missing counter: %v", samples)
	}

	_, body = get("/metrics.json")
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	if snap.Counters["exp.lu.cycles"] != 7 {
		t.Errorf("/metrics.json counters = %v", snap.Counters)
	}

	_, body = get("/jobs")
	var bs BoardStatus
	if err := json.Unmarshal([]byte(body), &bs); err != nil {
		t.Fatalf("/jobs: %v", err)
	}
	if bs.Done != 1 || bs.Failed != 1 || bs.Queued != 1 || len(bs.Jobs) != 3 {
		t.Errorf("/jobs = %+v", bs)
	}
	if bs.Jobs[1].State != JobFailed || bs.Jobs[1].Err != "boom" {
		t.Errorf("failed job = %+v", bs.Jobs[1])
	}

	_, body = get("/progress")
	var ps ProgressStatus
	if err := json.Unmarshal([]byte(body), &ps); err != nil {
		t.Fatalf("/progress: %v", err)
	}
	if ps.Instrs != 100 || ps.TotalInstrs != 1000 || len(ps.Lanes) != 1 || ps.Lanes[0].Label != "lu" {
		t.Errorf("/progress = %+v", ps)
	}

	_, body = get("/healthz")
	var hz map[string]any
	if err := json.Unmarshal([]byte(body), &hz); err != nil {
		t.Fatalf("/healthz: %v", err)
	}
	if hz["status"] != "ok" || hz["version"] != "test" {
		t.Errorf("/healthz = %v", hz)
	}

	if resp, _ := get("/debug/pprof/"); resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", resp.StatusCode)
	}
	if resp, _ := get("/"); resp.StatusCode != http.StatusOK {
		t.Errorf("/ status = %d", resp.StatusCode)
	}
	if resp, _ := get("/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("/nope status = %d, want 404", resp.StatusCode)
	}
}

// TestServeNilSources: every endpoint must respond sensibly when the run has
// no registry, board, or progress attached.
func TestServeNilSources(t *testing.T) {
	srv := httptest.NewServer(NewServeMux(ServerState{Version: "test"}))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/metrics.json", "/jobs", "/progress", "/healthz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d with nil sources", path, resp.StatusCode)
		}
	}
}

func TestStartServerEphemeralPort(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Inc()
	srv, err := StartServer("127.0.0.1:0", ServerState{Registry: reg, Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if strings.HasSuffix(srv.Addr, ":0") {
		t.Fatalf("Addr = %q, expected a resolved port", srv.Addr)
	}
	resp, err := http.Get("http://" + srv.Addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Errorf("nil server Close: %v", err)
	}
}

// TestSnapshotFlushesBatches: pending registry-registered batch data must be
// visible to Snapshot (and therefore to /metrics) without an explicit Flush.
func TestSnapshotFlushesBatches(t *testing.T) {
	r := NewRegistry()
	hb := r.HistogramBatch("h", 1, 2)
	hb.Observe(1)
	hb.Observe(5)
	cb := r.CounterBatch("c")
	cb.Add(3)

	s := r.Snapshot()
	if got := s.Histograms["h"].Total; got != 2 {
		t.Errorf("snapshot histogram total = %d, want 2 (batch not flushed)", got)
	}
	if got := s.Counters["c"]; got != 3 {
		t.Errorf("snapshot counter = %d, want 3 (batch not flushed)", got)
	}

	// After Close the batch is unregistered: later observations stay local
	// until flushed by hand, and Snapshot must not double-count old data.
	hb.Close()
	cb.Close()
	s = r.Snapshot()
	if got := s.Histograms["h"].Total; got != 2 {
		t.Errorf("after Close: histogram total = %d, want 2", got)
	}
	if got := s.Counters["c"]; got != 3 {
		t.Errorf("after Close: counter = %d, want 3", got)
	}

	// Nil-safety of the registry-level constructors and hook.
	var nilReg *Registry
	nb := nilReg.HistogramBatch("x", 1)
	nb.Observe(1)
	nb.Close()
	ncb := nilReg.CounterBatch("y")
	ncb.Inc()
	ncb.Close()
	nilReg.FlushBatches()
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			return b.String()
		}
	}
}
