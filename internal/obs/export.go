package obs

// File-writing conveniences shared by the command-line front ends. All of
// them write crash-safely: content goes to a temp file in the destination
// directory first and is renamed into place only after a successful close,
// so a crash or SIGKILL mid-write can never leave a half-written artifact
// under the requested name — readers see either the old file or the new
// one, never a torn hybrid.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// WriteFileAtomic writes the output of write to path via a temp file and
// rename. On any error the temp file is removed and path is left untouched.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, "."+base+".tmp*")
	if err != nil {
		return fmt.Errorf("obs: atomic write %s: %w", path, err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("obs: atomic write %s: %w", path, err)
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	// Sync before rename: otherwise a crash shortly after could surface the
	// new name with unflushed (empty or partial) content on some filesystems.
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("obs: atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("obs: atomic write %s: %w", path, err)
	}
	return nil
}

// WriteMetricsFile writes reg's JSON snapshot to path. A nil registry writes
// an empty snapshot, so callers need not special-case disabled metrics.
func WriteMetricsFile(reg *Registry, path string) error {
	if reg == nil {
		reg = NewRegistry()
	}
	return WriteFileAtomic(path, reg.WriteJSON)
}

// WritePipeTraceFile writes p's pipeline trace to path, choosing the format
// by extension: ".json" emits Chrome trace-event JSON (Perfetto,
// chrome://tracing); anything else emits a Konata (kanata 0004) log.
func WritePipeTraceFile(p *PipeTracer, path string) error {
	return WriteFileAtomic(path, func(w io.Writer) error {
		if strings.HasSuffix(path, ".json") {
			return p.WriteChromeTrace(w)
		}
		return p.WriteKonata(w)
	})
}
