package obs

// File-writing conveniences shared by the command-line front ends.

import (
	"os"
	"strings"
)

// WriteMetricsFile writes reg's JSON snapshot to path. A nil registry writes
// an empty snapshot, so callers need not special-case disabled metrics.
func WriteMetricsFile(reg *Registry, path string) error {
	if reg == nil {
		reg = NewRegistry()
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WritePipeTraceFile writes p's pipeline trace to path, choosing the format
// by extension: ".json" emits Chrome trace-event JSON (Perfetto,
// chrome://tracing); anything else emits a Konata (kanata 0004) log.
func WritePipeTraceFile(p *PipeTracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = p.WriteChromeTrace(f)
	} else {
		err = p.WriteKonata(f)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
