// Package obs is the simulator's observability layer: a zero-dependency
// metrics registry, a bounded per-instruction pipeline event tracer with
// Konata and Chrome trace-event export, and run-level progress/profiling
// hooks.
//
// Every entry point is nil-safe: a nil *Registry, *PipeTracer, or *Progress
// turns the corresponding instrumentation into a no-op, so the timing models
// carry their hooks unconditionally and pay only a nil check when
// observability is off (the default). This is the property the overhead
// benchmark in the root package (BenchmarkObsOverhead) guards.
//
// The registry follows the shape of production metrics systems (and of
// gem5's stats framework): subsystems create named counters, gauges, and
// fixed-bucket histograms under a hierarchical dot-separated name, and one
// Snapshot call serializes everything to JSON. Names are registered once and
// cached by the caller; lookups take a mutex but updates are lock-free
// atomics, so hot simulation loops can update counters concurrently.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Set overwrites the counter value; used when a subsystem publishes an
// already-aggregated total at the end of a run. Safe on a nil receiver.
func (c *Counter) Set(n uint64) {
	if c == nil {
		return
	}
	c.v.Store(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric holding the latest observed value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the latest value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution: Bounds[i] is the inclusive upper
// bound of bucket i, and one open bucket follows the last bound. Observations
// are lock-free atomic increments.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Uint64
}

func newHistogram(bounds []uint64) *Histogram {
	b := make([]uint64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample. Safe on a nil receiver.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.total.Add(1)
	h.sum.Add(v)
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(h.bounds)].Add(1)
}

// Total returns the number of samples (0 on a nil receiver).
func (h *Histogram) Total() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Count returns the number of samples in bucket i (0 on a nil receiver).
func (h *Histogram) Count(i int) uint64 {
	if h == nil {
		return 0
	}
	return h.counts[i].Load()
}

// Mean returns the mean of all observed samples (0 with no samples).
func (h *Histogram) Mean() float64 {
	if h == nil || h.total.Load() == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(h.total.Load())
}

// HistogramSnapshot is the exported state of a Histogram.
type HistogramSnapshot struct {
	Bounds []uint64 `json:"bounds"` // inclusive upper bounds; an open bucket follows
	Counts []uint64 `json:"counts"` // len(Bounds)+1 entries
	Total  uint64   `json:"total"`
	Sum    uint64   `json:"sum"`
	Mean   float64  `json:"mean"`
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. All methods are safe on a nil receiver and return nil metrics,
// whose methods are in turn no-ops, so `reg.Counter("x").Inc()` is always
// legal.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram

	// Pending-batch flushers (see local.go), keyed by registration id so
	// batches can unregister when their run completes. Guarded by flushMu,
	// not mu: flushers touch metrics, which must not happen under mu.
	flushMu  sync.Mutex
	flushers map[uint64]func()
	flushSeq uint64
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil (a usable no-op) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Returns nil (a usable no-op) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use. The bounds of an existing histogram
// are kept (first registration wins). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds ...uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// registerFlusher adds a pending-batch flusher to the registry and returns
// a function that removes it again. Flushers run on every FlushBatches call
// — that is, ahead of every Snapshot — so worker-local batch data is never
// missing from an export.
func (r *Registry) registerFlusher(f func()) (unregister func()) {
	r.flushMu.Lock()
	defer r.flushMu.Unlock()
	if r.flushers == nil {
		r.flushers = make(map[uint64]func())
	}
	id := r.flushSeq
	r.flushSeq++
	r.flushers[id] = f
	return func() {
		r.flushMu.Lock()
		delete(r.flushers, id)
		r.flushMu.Unlock()
	}
}

// FlushBatches drains every registered worker-local batch (see
// Registry.HistogramBatch / Registry.CounterBatch) into its shared metric.
// Snapshot calls it automatically, so every export path — WriteJSON,
// WriteMetricsFile, the live /metrics endpoints — sees batched samples even
// mid-run. Safe on a nil registry.
func (r *Registry) FlushBatches() {
	if r == nil {
		return
	}
	r.flushMu.Lock()
	defer r.flushMu.Unlock()
	for _, f := range r.flushers {
		f()
	}
}

// Snapshot copies the current value of every registered metric, after
// draining any pending worker-local batches. Safe on a nil registry
// (returns an empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.FlushBatches()
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Bounds: append([]uint64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Total:  h.total.Load(),
			Sum:    h.sum.Load(),
			Mean:   h.Mean(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// LoadSnapshot replays a previously captured snapshot into the registry:
// counters and gauges are set to their snapshotted values, and histograms
// are reconstructed bucket-for-bucket. It is the restore half of the result
// cache's metrics memoization — a cache hit loads the metrics fragment the
// original computation published, so a warm run's registry (and therefore
// its determinism checksum) is byte-identical to a cold one. Existing
// metrics under other names are untouched. Safe on a nil registry.
func (r *Registry) LoadSnapshot(s Snapshot) {
	if r == nil {
		return
	}
	for name, v := range s.Counters {
		r.Counter(name).Set(v)
	}
	for name, v := range s.Gauges {
		r.Gauge(name).Set(v)
	}
	for name, hs := range s.Histograms {
		h := r.Histogram(name, hs.Bounds...)
		h.total.Store(hs.Total)
		h.sum.Store(hs.Sum)
		for i := range h.counts {
			if i < len(hs.Counts) {
				h.counts[i].Store(hs.Counts[i])
			}
		}
	}
}

// FilterSnapshot returns the subset of a snapshot whose metric names start
// with any of the given prefixes — the capture half of the result cache's
// metrics memoization.
func FilterSnapshot(s Snapshot, prefixes ...string) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	match := func(name string) bool {
		for _, p := range prefixes {
			if len(name) >= len(p) && name[:len(p)] == p {
				return true
			}
		}
		return false
	}
	for name, v := range s.Counters {
		if match(name) {
			out.Counters[name] = v
		}
	}
	for name, v := range s.Gauges {
		if match(name) {
			out.Gauges[name] = v
		}
	}
	for name, v := range s.Histograms {
		if match(name) {
			out.Histograms[name] = v
		}
	}
	return out
}

// WriteJSON serializes a snapshot of the registry as indented JSON with
// deterministically ordered keys (encoding/json sorts map keys).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Names returns the sorted names of all registered metrics, for tests and
// diagnostics.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Prefixed joins a metric-name prefix and a name; it keeps instrumentation
// call sites free of string-concatenation noise.
func Prefixed(prefix, name string) string {
	if prefix == "" {
		return name
	}
	return prefix + name
}
