package obs

// Cross-run regression diffing: compare the tracked metrics of two runs —
// ledger records, -metrics-out snapshots, or any flat JSON of numbers (the
// committed BENCH_*.json trajectories) — and report per-metric deltas
// against a configurable relative threshold. All tracked metrics are cost
// metrics (cycles, stall breakdowns, MCPI), so an increase beyond the
// threshold is a regression and a decrease an improvement; `hidelat diff`
// exits non-zero when any regression is found, which is what lets CI gate
// on the run-over-run trajectory.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// DiffOptions configures a comparison.
type DiffOptions struct {
	// Threshold is the relative change (0.05 = 5%) beyond which a metric
	// counts as regressed (increase) or improved (decrease). Zero means any
	// change at all is flagged — the right setting for a deterministic
	// simulator compared at identical configuration.
	Threshold float64
}

// Delta is one tracked metric's change between two runs.
type Delta struct {
	Name string  `json:"name"`
	Old  float64 `json:"old"`
	New  float64 `json:"new"`
	// Rel is the relative change, (new-old)/old; +Inf when old == 0.
	Rel        float64 `json:"rel"`
	Regression bool    `json:"regression"`
}

// DiffReport is the outcome of comparing two runs.
type DiffReport struct {
	Threshold    float64  `json:"threshold"`
	Compared     int      `json:"compared"`  // metrics present on both sides
	Unchanged    int      `json:"unchanged"` // within threshold
	Deltas       []Delta  `json:"deltas"`    // beyond threshold, worst first
	Regressions  int      `json:"regressions"`
	Improvements int      `json:"improvements"`
	OnlyOld      []string `json:"only_old,omitempty"` // tracked in old, missing in new
	OnlyNew      []string `json:"only_new,omitempty"`
	OldFNV       string   `json:"old_fnv,omitempty"` // ledger checksums, when available
	NewFNV       string   `json:"new_fnv,omitempty"`
}

// DiffMetrics compares two flat metric maps. Metrics present on only one
// side are listed but never count as regressions (a renamed or newly added
// metric is drift to investigate, not a perf gate failure).
func DiffMetrics(oldM, newM map[string]float64, opt DiffOptions) DiffReport {
	rep := DiffReport{Threshold: opt.Threshold}
	for _, name := range sortedKeys(oldM) {
		ov := oldM[name]
		nv, ok := newM[name]
		if !ok {
			rep.OnlyOld = append(rep.OnlyOld, name)
			continue
		}
		rep.Compared++
		var rel float64
		switch {
		case ov == nv:
			rel = 0
		case ov == 0:
			rel = math.Inf(1)
			if nv < 0 {
				rel = math.Inf(-1)
			}
		default:
			rel = (nv - ov) / math.Abs(ov)
		}
		if math.Abs(rel) <= opt.Threshold {
			rep.Unchanged++
			continue
		}
		d := Delta{Name: name, Old: ov, New: nv, Rel: rel, Regression: rel > 0}
		if d.Regression {
			rep.Regressions++
		} else {
			rep.Improvements++
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	for _, name := range sortedKeys(newM) {
		if _, ok := oldM[name]; !ok {
			rep.OnlyNew = append(rep.OnlyNew, name)
		}
	}
	sort.SliceStable(rep.Deltas, func(i, j int) bool {
		ri, rj := rep.Deltas[i], rep.Deltas[j]
		if ri.Regression != rj.Regression {
			return ri.Regression
		}
		return math.Abs(ri.Rel) > math.Abs(rj.Rel)
	})
	return rep
}

// Format renders the report for the terminal.
func (r DiffReport) Format() string {
	var b strings.Builder
	for _, d := range r.Deltas {
		verdict := "improved  "
		if d.Regression {
			verdict = "REGRESSION"
		}
		rel := fmt.Sprintf("%+.2f%%", 100*d.Rel)
		if math.IsInf(d.Rel, 0) {
			rel = "new-nonzero"
		}
		fmt.Fprintf(&b, "%s  %-52s %14.6g -> %-14.6g %s\n", verdict, d.Name, d.Old, d.New, rel)
	}
	if len(r.OnlyOld) > 0 {
		fmt.Fprintf(&b, "only in old run (%d): %s\n", len(r.OnlyOld), summarizeNames(r.OnlyOld))
	}
	if len(r.OnlyNew) > 0 {
		fmt.Fprintf(&b, "only in new run (%d): %s\n", len(r.OnlyNew), summarizeNames(r.OnlyNew))
	}
	if r.OldFNV != "" && r.NewFNV != "" {
		if r.OldFNV == r.NewFNV {
			fmt.Fprintf(&b, "metrics checksum: unchanged (%s)\n", r.OldFNV)
		} else {
			fmt.Fprintf(&b, "metrics checksum: %s -> %s (determinism drift or changed configuration)\n",
				r.OldFNV, r.NewFNV)
		}
	}
	fmt.Fprintf(&b, "compared %d tracked metrics at ±%.1f%%: %d regressed, %d improved, %d unchanged\n",
		r.Compared, 100*r.Threshold, r.Regressions, r.Improvements, r.Unchanged)
	return b.String()
}

func summarizeNames(names []string) string {
	const max = 8
	if len(names) <= max {
		return strings.Join(names, ", ")
	}
	return strings.Join(names[:max], ", ") + ", ..."
}

// LedgerMetrics flattens a ledger record's tracked outcomes into a metric
// map: per-app generation cycles and per-cell replay cycles, instruction
// counts, and MCPI. Wall times and allocator statistics are deliberately
// absent — they vary with the machine, not the simulation.
func LedgerMetrics(rec LedgerRecord) map[string]float64 {
	m := make(map[string]float64)
	for app, a := range rec.Apps {
		m["app."+app+".cycles"] = float64(a.Cycles)
	}
	for key, c := range rec.Cells {
		m["cell."+key+".cycles"] = float64(c.Cycles)
		if c.Instructions > 0 {
			m["cell."+key+".instructions"] = float64(c.Instructions)
			m["cell."+key+".mcpi"] = c.MCPI
		}
	}
	return m
}

// SnapshotMetrics flattens a metrics snapshot into a metric map: every
// counter, every deterministic gauge, and each histogram's total and mean.
func SnapshotMetrics(s Snapshot) map[string]float64 {
	m := make(map[string]float64)
	for name, v := range s.Counters {
		m[name] = float64(v)
	}
	for name, v := range s.Gauges {
		if deterministicGauge(name) {
			m[name] = v
		}
	}
	for name, h := range s.Histograms {
		m[name+".total"] = float64(h.Total)
		m[name+".mean"] = h.Mean
	}
	return m
}

// LoadMetricsFile reads the tracked metrics of a run artifact, sniffing the
// format: a JSON-Lines run ledger (the last record wins), a single ledger
// record, a -metrics-out snapshot, or any other JSON object (numeric leaves
// are flattened under dotted keys — this covers the BENCH_*.json
// trajectories). Returns the metrics, a human-readable format name, and the
// record's determinism checksum when it has one.
func LoadMetricsFile(path string) (metrics map[string]float64, kind, fnvSum string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", "", err
	}
	var obj map[string]json.RawMessage
	if json.Unmarshal(data, &obj) == nil {
		switch {
		case obj["counters"] != nil || obj["histograms"] != nil:
			var s Snapshot
			if err := json.Unmarshal(data, &s); err != nil {
				return nil, "", "", fmt.Errorf("obs: %s: %w", path, err)
			}
			return SnapshotMetrics(s), "metrics snapshot", SnapshotFNV(s), nil
		case obj["metrics_fnv"] != nil:
			var rec LedgerRecord
			if err := json.Unmarshal(data, &rec); err != nil {
				return nil, "", "", fmt.Errorf("obs: %s: %w", path, err)
			}
			return LedgerMetrics(rec), "ledger record", rec.MetricsFNV, nil
		case obj["timeline_schema"] != nil:
			m, err := timelineMetrics(data)
			if err != nil {
				return nil, "", "", fmt.Errorf("obs: %s: %w", path, err)
			}
			return m, "timeline report", "", nil
		default:
			var generic map[string]any
			if err := json.Unmarshal(data, &generic); err != nil {
				return nil, "", "", fmt.Errorf("obs: %s: %w", path, err)
			}
			m := make(map[string]float64)
			flattenNumbers("", generic, m)
			return m, "generic JSON", "", nil
		}
	}
	// Not a single JSON value: must be a JSON-Lines ledger.
	recs, err := ReadLedger(path)
	if err != nil {
		return nil, "", "", err
	}
	last := recs[len(recs)-1]
	return LedgerMetrics(last), fmt.Sprintf("ledger (%d records, comparing %s)", len(recs), last.ID),
		last.MetricsFNV, nil
}

// timelineMetrics flattens a timeline/phase-summary report (the
// `hidelat timeline` JSON export, tagged with a top-level timeline_schema
// key) into the cost metrics the regressions-first diff semantics apply
// to: per-cell total cycles, aggregate MCPI, and phase count, plus each
// phase's cycle span and MCPI. The package exp owns the report's producer
// type; this decode-only mirror keeps the dependency one-way.
func timelineMetrics(data []byte) (map[string]float64, error) {
	var rep struct {
		Apps []struct {
			App   string `json:"app"`
			Cells []struct {
				Label        string `json:"label"`
				TotalCycles  uint64 `json:"total_cycles"`
				Instructions uint64 `json:"instructions"`
				Failed       bool   `json:"failed"`
				Samples      []struct {
					Read  int64 `json:"read"`
					Write int64 `json:"write"`
				} `json:"samples"`
				Phases []struct {
					Index      int     `json:"index"`
					StartCycle uint64  `json:"start_cycle"`
					EndCycle   uint64  `json:"end_cycle"`
					MCPI       float64 `json:"mcpi"`
				} `json:"phases"`
			} `json:"cells"`
		} `json:"apps"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	m := make(map[string]float64)
	for _, app := range rep.Apps {
		for _, c := range app.Cells {
			if c.Failed {
				continue
			}
			pre := "timeline." + app.App + "." + c.Label + "."
			m[pre+"total_cycles"] = float64(c.TotalCycles)
			m[pre+"phases"] = float64(len(c.Phases))
			if c.Instructions > 0 {
				var rw int64
				for _, s := range c.Samples {
					rw += s.Read + s.Write
				}
				m[pre+"mcpi"] = float64(rw) / float64(c.Instructions)
			}
			for _, p := range c.Phases {
				ppre := fmt.Sprintf("%sphase%d.", pre, p.Index)
				m[ppre+"cycles"] = float64(p.EndCycle - p.StartCycle)
				m[ppre+"mcpi"] = p.MCPI
			}
		}
	}
	return m, nil
}

// flattenNumbers walks a decoded JSON value and collects numeric leaves
// under dot-joined keys.
func flattenNumbers(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			key := k
			if prefix != "" {
				key = prefix + "." + k
			}
			flattenNumbers(key, child, out)
		}
	case []any:
		for i, child := range x {
			flattenNumbers(fmt.Sprintf("%s.%d", prefix, i), child, out)
		}
	case float64:
		out[prefix] = x
	}
}
