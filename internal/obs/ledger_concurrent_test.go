package obs

// Tests for the ledger under concurrent appenders — the distributed-sweep
// scenario where a coordinator and a local run share one -ledger file. Each
// record goes out in a single O_APPEND write, so concurrent appenders must
// never interleave within a record, and a crash can tear at most the final
// line, which ReadLedger drops. Meaningful under -race.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestLedgerConcurrentAppenders(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	const writers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				rec := ledgerRec(fmt.Sprintf("w%d-r%d", w, i), fmt.Sprintf("2026-08-09T%02d:%02d:00Z", w, i))
				if err := AppendLedger(path, rec); err != nil {
					t.Errorf("writer %d append %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Every record must survive intact: the reader parses all of them, none
	// are duplicated or lost, and no line holds a partial record.
	recs, err := ReadLedger(path)
	if err != nil {
		t.Fatalf("ReadLedger after concurrent appends: %v", err)
	}
	if len(recs) != writers*each {
		t.Fatalf("read %d records, want %d", len(recs), writers*each)
	}
	seen := make(map[string]bool, len(recs))
	for _, r := range recs {
		if seen[r.ID] {
			t.Fatalf("record %q duplicated", r.ID)
		}
		seen[r.ID] = true
	}

	// Byte-level check that no two appends interleaved: every line is one
	// complete record — it starts with the record opener and ends with a
	// closing brace, with exactly one record-start marker per line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Fatal("ledger does not end with a newline")
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != writers*each {
		t.Fatalf("%d lines, want %d", len(lines), writers*each)
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, `{"schema"`) || !strings.HasSuffix(line, "}") {
			t.Fatalf("line %d is not one complete record: %q", i, line)
		}
		if strings.Count(line, `{"schema"`) != 1 {
			t.Fatalf("line %d holds interleaved records: %q", i, line)
		}
	}
}

// A writer killed mid-append tears only the final line; appenders that wrote
// before the crash lose nothing and ReadLedger drops exactly the tail.
func TestLedgerConcurrentAppendersThenTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	const n = 16
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := ledgerRec(fmt.Sprintf("r%d", w), fmt.Sprintf("2026-08-09T10:%02d:00Z", w))
			if err := AppendLedger(path, rec); err != nil {
				t.Errorf("append %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()

	// Simulate the crash: a final record cut off mid-write, no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema":1,"id":"torn","time":"2026-08-09T11:`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, err := ReadLedger(path)
	if err != nil {
		t.Fatalf("ReadLedger with torn tail: %v", err)
	}
	if len(recs) != n {
		t.Fatalf("read %d records, want the %d intact ones", len(recs), n)
	}
	for _, r := range recs {
		if r.ID == "torn" {
			t.Fatal("torn tail surfaced as a record")
		}
	}
}
