package obs

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testSnapshot() Snapshot {
	r := NewRegistry()
	r.Counter("exp.lu.cycles").Set(1000)
	r.Gauge("exp.lu.wall_seconds").Set(0.5)
	r.Gauge("exp.lu.cycles_per_sec").Set(2000)
	r.Counter("fig.fig3.lu.BASE.cycles.total").Set(500)
	r.Counter("fig.fig3.lu.BASE.instructions").Set(100)
	r.Counter("fig.fig3.lu.BASE.stall.read").Set(120)
	r.Counter("fig.fig3.lu.BASE.stall.write").Set(80)
	r.Gauge("fig.fig3.lu.BASE.normalized_pct").Set(100)
	return r.Snapshot()
}

func TestSnapshotFNVDeterminism(t *testing.T) {
	s := testSnapshot()
	sum1 := SnapshotFNV(s)
	sum2 := SnapshotFNV(testSnapshot())
	if sum1 != sum2 {
		t.Fatalf("identical snapshots hash differently: %s vs %s", sum1, sum2)
	}
	if len(sum1) != 16 {
		t.Errorf("checksum %q not 16 hex digits", sum1)
	}

	// Wall-clock and throughput gauges must not affect the checksum.
	r := NewRegistry()
	r.Counter("exp.lu.cycles").Set(1000)
	r.Gauge("exp.lu.wall_seconds").Set(99.9)
	r.Gauge("exp.lu.cycles_per_sec").Set(1)
	r.Counter("fig.fig3.lu.BASE.cycles.total").Set(500)
	r.Counter("fig.fig3.lu.BASE.instructions").Set(100)
	r.Counter("fig.fig3.lu.BASE.stall.read").Set(120)
	r.Counter("fig.fig3.lu.BASE.stall.write").Set(80)
	r.Gauge("fig.fig3.lu.BASE.normalized_pct").Set(100)
	if got := SnapshotFNV(r.Snapshot()); got != sum1 {
		t.Errorf("wall-clock gauges changed the checksum: %s vs %s", got, sum1)
	}

	// A simulation counter change must change it.
	r.Counter("fig.fig3.lu.BASE.cycles.total").Set(501)
	if got := SnapshotFNV(r.Snapshot()); got == sum1 {
		t.Error("counter change did not change the checksum")
	}

	// A deterministic gauge change must change it too.
	r.Counter("fig.fig3.lu.BASE.cycles.total").Set(500)
	r.Gauge("fig.fig3.lu.BASE.normalized_pct").Set(101)
	if got := SnapshotFNV(r.Snapshot()); got == sum1 {
		t.Error("deterministic gauge change did not change the checksum")
	}
}

func TestBuildLedgerRecord(t *testing.T) {
	start := time.Now().Add(-time.Second)
	rec := BuildLedgerRecord("1.2.3", "fig3", []string{"-j", "2", "fig3"},
		map[string]any{"scale": "small"}, start, testSnapshot())

	if rec.Schema != LedgerSchema || rec.Version != "1.2.3" || rec.Cmd != "fig3" {
		t.Errorf("identity fields = %+v", rec)
	}
	if rec.WallSeconds < 0.9 {
		t.Errorf("wall seconds = %v, want >= ~1", rec.WallSeconds)
	}
	if rec.Mem.TotalAllocBytes == 0 || rec.Mem.Mallocs == 0 {
		t.Errorf("allocator stats missing: %+v", rec.Mem)
	}
	if rec.MetricsFNV != SnapshotFNV(testSnapshot()) {
		t.Errorf("checksum mismatch: %s", rec.MetricsFNV)
	}

	app, ok := rec.Apps["lu"]
	if !ok {
		t.Fatalf("apps = %v, want lu", rec.Apps)
	}
	if app.Cycles != 1000 || app.WallSeconds != 0.5 {
		t.Errorf("app lu = %+v", app)
	}

	cell, ok := rec.Cells["fig3.lu.BASE"]
	if !ok {
		t.Fatalf("cells = %v, want fig3.lu.BASE", rec.Cells)
	}
	if cell.Cycles != 500 || cell.Instructions != 100 {
		t.Errorf("cell = %+v", cell)
	}
	if want := 2.0; math.Abs(cell.MCPI-want) > 1e-12 { // (120+80)/100
		t.Errorf("MCPI = %v, want %v", cell.MCPI, want)
	}

	// IDs derived from different instants must differ.
	id2 := NewRunID(start.Add(time.Millisecond))
	if rec.ID == id2 {
		t.Errorf("run ids collide: %s", rec.ID)
	}
	if !strings.Contains(rec.ID, "-") {
		t.Errorf("run id %q missing time-hash separator", rec.ID)
	}
}

func TestLedgerAppendReadRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	t0 := time.Date(2026, 8, 6, 10, 0, 0, 0, time.UTC)
	rec1 := BuildLedgerRecord("1", "fig3", nil, nil, t0, testSnapshot())
	rec2 := BuildLedgerRecord("1", "fig4", nil, nil, t0.Add(time.Hour), testSnapshot())
	// Append newest first: ReadLedger must sort by time anyway.
	if err := AppendLedger(path, rec2); err != nil {
		t.Fatal(err)
	}
	if err := AppendLedger(path, rec1); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d records, want 2", len(recs))
	}
	if recs[0].Cmd != "fig3" || recs[1].Cmd != "fig4" {
		t.Errorf("records out of time order: %s, %s", recs[0].Cmd, recs[1].Cmd)
	}
	if recs[0].Cells["fig3.lu.BASE"].Cycles != 500 {
		t.Errorf("round-tripped cell = %+v", recs[0].Cells)
	}

	if _, err := ReadLedger(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("ReadLedger on a missing file did not error")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := AppendLedger(empty, LedgerRecord{}); err != nil {
		t.Fatal(err)
	}
	if recs, err := ReadLedger(empty); err != nil || len(recs) != 1 {
		t.Errorf("minimal record: recs=%d err=%v", len(recs), err)
	}
}

func TestExtractIgnoresUnrelatedMetrics(t *testing.T) {
	r := NewRegistry()
	// Deeper "exp." names (not per-app cycles) and non-cell "fig." names must
	// not create phantom apps or cells.
	r.Counter("exp.lu.sub.cycles").Set(1)
	r.Counter("fig.fig3.lu.BASE.stall.read").Set(1)
	r.Counter("tango.lu.machine.cycles").Set(1)
	rec := BuildLedgerRecord("1", "x", nil, nil, time.Now(), r.Snapshot())
	if len(rec.Apps) != 0 {
		t.Errorf("apps = %v, want none", rec.Apps)
	}
	if len(rec.Cells) != 0 {
		t.Errorf("cells = %v, want none", rec.Cells)
	}
}
