package obs

// Tests for the crash-safety layer: torn-tail-tolerant ledger reads, atomic
// artifact writes, and graceful server shutdown.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dynsched/internal/faultinject"
)

func ledgerRec(id, tm string) LedgerRecord {
	return LedgerRecord{Schema: LedgerSchema, ID: id, Time: tm, Cmd: "fig3", MetricsFNV: "feed"}
}

func TestReadLedgerDropsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	if err := AppendLedger(path, ledgerRec("a", "2026-08-06T01:00:00Z")); err != nil {
		t.Fatal(err)
	}
	if err := AppendLedger(path, ledgerRec("b", "2026-08-06T02:00:00Z")); err != nil {
		t.Fatal(err)
	}
	// Simulate a writer killed mid-append: a third record torn partway
	// through, with no trailing newline.
	line, _ := json.Marshal(ledgerRec("c", "2026-08-06T03:00:00Z"))
	faultinject.CorruptByte("ledger.tail", line) // bit flip too, for good measure
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(line[:len(line)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, err := ReadLedger(path)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if len(recs) != 2 || recs[0].ID != "a" || recs[1].ID != "b" {
		t.Fatalf("recs = %+v, want the two intact records", recs)
	}
}

func TestReadLedgerRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	line, _ := json.Marshal(ledgerRec("a", "2026-08-06T01:00:00Z"))
	content := string(line[:len(line)/2]) + "\n" + string(line) + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLedger(path); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestReadLedgerTornOnlyRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	if err := os.WriteFile(path, []byte(`{"schema":1,"id":"trunc`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLedger(path); err == nil {
		t.Fatal("ledger holding only a torn record accepted")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A failed write leaves the previous content and no temp litter.
	boom := errors.New("boom")
	err := WriteFileAtomic(path, func(io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "old" {
		t.Fatalf("failed write clobbered the file: %q", got)
	}
	assertNoTempFiles(t, dir)

	// A successful write replaces the content.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "new")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "new" {
		t.Fatalf("content = %q, want new", got)
	}
	assertNoTempFiles(t, dir)
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestWriteMetricsFileAtomic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x.y").Add(3)
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := WriteMetricsFile(reg, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	if snap.Counters["x.y"] != 3 {
		t.Fatalf("counters = %v", snap.Counters)
	}
}

func TestServerShutdownGraceful(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", ServerState{Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after Shutdown")
	}
	// Nil-safety mirrors Close.
	var nilSrv *Server
	if err := nilSrv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
