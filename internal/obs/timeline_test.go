package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// tlPoint builds a conserving cumulative snapshot: the six breakdown fields
// sum to cycle, with the stall cycles split between read and busy.
func tlPoint(cycle, instr, read uint64) TimelinePoint {
	return TimelinePoint{
		Cycle:        cycle,
		Instructions: instr,
		Busy:         cycle - read,
		Read:         read,
		WindowSum:    3 * cycle,
	}
}

// drive records boundary snapshots exactly as a simulator would — whenever
// the simulated time reaches Boundary() — up to total cycles, deriving the
// cumulative state from the generator fn.
func drive(tl *Timeline, total uint64, fn func(cycle uint64) TimelinePoint) {
	for t := uint64(0); t <= total; t++ {
		if t == tl.Boundary() {
			tl.Record(fn(t))
		}
	}
	tl.Finish(fn(total))
}

func TestTimelineBoundaryAlignment(t *testing.T) {
	tl := NewTimeline(4, 1<<20) // interval 16, effectively unbounded ring
	drive(tl, 100, func(c uint64) TimelinePoint { return tlPoint(c, c/2, c/4) })
	samples := tl.Samples()
	// 100 cycles at interval 16: boundaries 16..96, plus the partial tail.
	if len(samples) != 7 {
		t.Fatalf("got %d samples, want 7", len(samples))
	}
	for i, s := range samples[:6] {
		if s.Start != uint64(i)*16 || s.End != uint64(i+1)*16 {
			t.Errorf("sample %d spans [%d,%d), want [%d,%d)", i, s.Start, s.End, i*16, (i+1)*16)
		}
	}
	if tail := samples[6]; tail.Start != 96 || tail.End != 100 {
		t.Errorf("tail spans [%d,%d), want [96,100)", tail.Start, tail.End)
	}
	if got := tl.Interval(); got != 16 {
		t.Errorf("Interval() = %d, want 16", got)
	}
}

func TestTimelineConservation(t *testing.T) {
	tl := NewTimeline(3, 8)
	drive(tl, 1000, func(c uint64) TimelinePoint { return tlPoint(c, c/3, c/5) })
	for i, s := range tl.Samples() {
		sum := s.Busy + s.Sync + s.Read + s.Write + s.Branch + s.Other
		if uint64(sum) != s.End-s.Start {
			t.Errorf("sample %d: breakdown sums to %d over [%d,%d), want %d",
				i, sum, s.Start, s.End, s.End-s.Start)
		}
		if want := 3.0; s.AvgWindow != want {
			t.Errorf("sample %d: AvgWindow = %g, want %g", i, s.AvgWindow, want)
		}
	}
}

// TestTimelineDecimation pins the memory bound and the decimation-exactness
// property: a long run through a small ring produces exactly the series a
// coarser-interval sampler would have recorded directly.
func TestTimelineDecimation(t *testing.T) {
	gen := func(c uint64) TimelinePoint { return tlPoint(c, c/2, c/7) }
	const total = 4096
	small := NewTimeline(2, 8) // interval 4, ring of 8 → must decimate
	drive(small, total, gen)
	if n := len(small.Samples()); n >= 9 {
		t.Fatalf("ring of 8 holds %d samples after a long run", n)
	}
	iv := small.Interval()
	if iv <= 4 || iv&(iv-1) != 0 {
		t.Fatalf("interval %d after decimation: want a larger power of two", iv)
	}
	// A sampler born at the final interval records the identical series.
	shift := uint(0)
	for 1<<shift < iv {
		shift++
	}
	coarse := NewTimeline(shift, 1<<20)
	drive(coarse, total, gen)
	if got, want := small.Samples(), coarse.Samples(); !reflect.DeepEqual(got, want) {
		t.Errorf("decimated series differs from native coarse series:\n got  %+v\n want %+v", got, want)
	}
	// The newest boundary always survives decimation (max is even, so the
	// last index is odd when the ring fills).
	last := small.Samples()
	if last[len(last)-1].End != total {
		t.Errorf("newest point lost: last sample ends at %d, want %d", last[len(last)-1].End, total)
	}
}

func TestTimelineFinishTail(t *testing.T) {
	// Run ending exactly on a boundary: no tail sample.
	tl := NewTimeline(4, 64)
	drive(tl, 32, func(c uint64) TimelinePoint { return tlPoint(c, c, 0) })
	if n := len(tl.Samples()); n != 2 {
		t.Errorf("on-boundary finish: %d samples, want 2", n)
	}
	// Run ending mid-interval: one partial tail.
	tl = NewTimeline(4, 64)
	drive(tl, 40, func(c uint64) TimelinePoint { return tlPoint(c, c, 0) })
	s := tl.Samples()
	if len(s) != 3 || s[2].Start != 32 || s[2].End != 40 {
		t.Errorf("mid-interval finish: samples %+v, want tail [32,40)", s)
	}
}

func TestTimelineCauseDeltas(t *testing.T) {
	tl := NewTimeline(2, 64)
	tl.CauseNames = []string{"busy", "read-lat"}
	gen := func(c uint64) TimelinePoint {
		p := tlPoint(c, c, c/2)
		p.Causes = []uint64{c / 2, c - c/2}
		return p
	}
	drive(tl, 8, gen)
	s := tl.Samples()
	if len(s) != 2 {
		t.Fatalf("got %d samples, want 2", len(s))
	}
	want := map[string]int64{"busy": 2, "read-lat": 2}
	if !reflect.DeepEqual(s[0].Causes, want) {
		t.Errorf("causes = %v, want %v", s[0].Causes, want)
	}
	// Unnamed indices fall back to cause<i>.
	tl2 := NewTimeline(2, 64)
	drive(tl2, 4, gen)
	if c := tl2.Samples()[0].Causes; c["cause1"] == 0 {
		t.Errorf("unnamed cause index missing: %v", c)
	}
}

func TestTimelineNilSafety(t *testing.T) {
	var tl *Timeline
	if b := tl.Boundary(); b != ^uint64(0) {
		t.Errorf("nil Boundary() = %d", b)
	}
	tl.Record(TimelinePoint{})
	tl.Finish(TimelinePoint{})
	tl.setSink(nil)
	if s := tl.Samples(); s != nil {
		t.Errorf("nil Samples() = %v", s)
	}
	if iv := tl.Interval(); iv != 0 {
		t.Errorf("nil Interval() = %d", iv)
	}

	var h *TimelineHub
	h.Register("x", NewTimeline(4, 8))
	h.Close()
	if snap := h.Snapshot(); snap == nil || len(snap) != 0 {
		t.Errorf("nil hub Snapshot() = %v, want empty non-nil", snap)
	}
	ch, cancel := h.Subscribe(4)
	cancel()
	if _, ok := <-ch; ok {
		t.Error("nil hub subscription channel not closed")
	}
}

func TestTimelineHubOrderedDelivery(t *testing.T) {
	h := NewTimelineHub()
	tl := NewTimeline(4, 64)
	h.Register("lu BASE", tl)
	ch, cancel := h.Subscribe(64)
	defer cancel()
	drive(tl, 100, func(c uint64) TimelinePoint { return tlPoint(c, c, 0) })
	h.Close()
	var seqs []uint64
	for ev := range ch {
		seqs = append(seqs, ev.Seq)
		if ev.Cell != "lu BASE" {
			t.Errorf("event cell = %q", ev.Cell)
		}
	}
	// 6 full boundaries + the Finish tail, strictly ordered from 1.
	if len(seqs) != 7 {
		t.Fatalf("delivered %d events, want 7", len(seqs))
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("event %d has seq %d: out of order", i, s)
		}
	}
	// Publishing after Close is dropped, and Close is idempotent.
	tl.Record(tlPoint(200, 200, 0))
	h.Close()
}

func TestTimelineHubSnapshotSorted(t *testing.T) {
	h := NewTimelineHub()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		tl := NewTimeline(4, 8)
		h.Register(name, tl)
		tl.Record(tlPoint(16, 8, 4))
	}
	snap := h.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d cells, want 3", len(snap))
	}
	for i, want := range []string{"alpha", "mid", "zeta"} {
		if snap[i].Cell != want {
			t.Errorf("snapshot[%d] = %q, want %q", i, snap[i].Cell, want)
		}
		if len(snap[i].Samples) != 1 || snap[i].Interval != 16 {
			t.Errorf("snapshot[%d]: %d samples at interval %d", i, len(snap[i].Samples), snap[i].Interval)
		}
	}
}

// TestServeTimelineConcurrentScrape hammers /timeline and /bottlenecks while
// a writer goroutine records into a registered timeline — the race detector
// proves a live scrape never tears a series mid-update.
func TestServeTimelineConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("critpath.lu.RC-DS64.cycles.read_latency").Set(10)
	hub := NewTimelineHub()
	srv := httptest.NewServer(NewServeMux(ServerState{Registry: reg, Timelines: hub, Version: "test"}))
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for round := 0; round < 20; round++ {
			tl := NewTimeline(2, 8)
			hub.Register(fmt.Sprintf("cell%d", round%4), tl)
			drive(tl, 512, func(c uint64) TimelinePoint { return tlPoint(c, c/2, c/3) })
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				for _, path := range []string{"/timeline", "/bottlenecks"} {
					resp, err := http.Get(srv.URL + path)
					if err != nil {
						t.Errorf("GET %s: %v", path, err)
						return
					}
					if path == "/timeline" {
						var series []TimelineSeries
						if err := json.NewDecoder(resp.Body).Decode(&series); err != nil {
							t.Errorf("decode /timeline: %v", err)
						}
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("GET %s: status %d", path, resp.StatusCode)
					}
				}
			}
		}()
	}
	wg.Wait()
	<-done
}

// TestServeEventsSSE subscribes to the /events stream, records a series, and
// shuts the server down mid-stream: the client must see well-formed,
// strictly ordered frames for every delivered event, then a clean EOF —
// never a torn frame.
func TestServeEventsSSE(t *testing.T) {
	hub := NewTimelineHub()
	srv, err := StartServer("127.0.0.1:0", ServerState{Timelines: hub, Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-cache" {
		t.Errorf("Cache-Control = %q", cc)
	}

	tl := NewTimeline(4, 64)
	hub.Register("lu RC-DS64", tl)
	drive(tl, 160, func(c uint64) TimelinePoint { return tlPoint(c, c, c/4) })

	// Graceful shutdown closes the hub first, so the stream drains its
	// buffered events in order and the handler ends the response cleanly.
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	go srv.Shutdown(sctx)

	sc := bufio.NewScanner(resp.Body)
	var ids []uint64
	var id uint64
	var sawEvent, sawData bool
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			if _, err := fmt.Sscanf(line, "id: %d", &id); err != nil {
				t.Fatalf("bad id line %q: %v", line, err)
			}
		case line == "event: sample":
			sawEvent = true
		case strings.HasPrefix(line, "data: "):
			var ev TimelineEvent
			if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
				t.Fatalf("bad data line %q: %v", line, err)
			}
			if ev.Seq != id {
				t.Errorf("frame id %d carries event seq %d", id, ev.Seq)
			}
			sawData = true
		case line == "":
			if !sawEvent || !sawData {
				t.Fatalf("frame %d missing event/data lines", id)
			}
			ids = append(ids, id)
			sawEvent, sawData = false, false
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(ids) == 0 {
		t.Fatal("no events delivered before shutdown")
	}
	for i, got := range ids {
		if got != uint64(i+1) {
			t.Fatalf("frame %d has id %d: stream not ordered", i, got)
		}
	}
}

func TestServeReadOnlyMethods(t *testing.T) {
	srv := httptest.NewServer(NewServeMux(ServerState{Version: "test"}))
	defer srv.Close()
	for _, path := range []string{"/", "/metrics", "/metrics.json", "/bottlenecks",
		"/timeline", "/events", "/jobs", "/progress", "/healthz"} {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
			t.Errorf("POST %s: Allow = %q, want GET", path, allow)
		}
	}
}

func TestServeCacheAndContentHeaders(t *testing.T) {
	srv := httptest.NewServer(NewServeMux(ServerState{Version: "test"}))
	defer srv.Close()
	wantJSON := []string{"/metrics.json", "/bottlenecks", "/timeline", "/jobs", "/progress", "/healthz"}
	for _, path := range wantJSON {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("GET %s: Content-Type = %q, want application/json", path, ct)
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "no-cache" {
			t.Errorf("GET %s: Cache-Control = %q, want no-cache", path, cc)
		}
	}
	for _, path := range []string{"/", "/metrics"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if cc := resp.Header.Get("Cache-Control"); cc != "no-cache" {
			t.Errorf("GET %s: Cache-Control = %q, want no-cache", path, cc)
		}
	}
}
