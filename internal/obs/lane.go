package obs

// Lane is one labelled row of a Progress ticker. The parallel experiment
// scheduler replays several applications at once, and before lanes existed
// every concurrent simulation published into the ticker's single
// label/counter pair, clobbering each other's output. A lane gives each
// concurrent simulation its own label and counters; the ticker prints one
// row per live lane and an aggregate total, so `-progress -j 8` output stays
// readable.
//
// Lanes follow the package's nil-safety contract: Progress.Lane on a nil
// ticker returns a nil lane, and every method of a nil *Lane is a no-op, so
// simulation loops publish unconditionally.

import "sync/atomic"

// Lane is a per-label progress channel. Create one with Progress.Lane; call
// Done when the labelled work completes so the ticker can retire the row
// into the aggregate totals.
type Lane struct {
	label  string
	instrs atomic.Uint64 // absolute instructions for this lane
	cycles atomic.Uint64 // absolute simulated cycles for this lane
	total  atomic.Uint64 // expected instructions (0 = unknown)
	done   atomic.Bool

	// Reporter-local rate state, touched only by Progress.report under the
	// ticker's mutex.
	lastInstr, lastCycle uint64
}

// Lane registers a new labelled row and returns it. Each call creates a
// distinct lane, so two concurrent simulations of the same application get
// separate rows. Safe on a nil receiver (returns a nil, no-op lane).
func (p *Progress) Lane(label string) *Lane {
	if p == nil {
		return nil
	}
	l := &Lane{label: label}
	p.mu.Lock()
	p.lanes = append(p.lanes, l)
	p.mu.Unlock()
	return l
}

// Label returns the lane's label ("" on a nil receiver).
func (l *Lane) Label() string {
	if l == nil {
		return ""
	}
	return l.label
}

// Publish stores the lane's absolute progress; simulation loops call it
// every few thousand steps (two atomic stores). Safe on a nil receiver.
func (l *Lane) Publish(instrs, cycles uint64) {
	if l == nil {
		return
	}
	l.instrs.Store(instrs)
	l.cycles.Store(cycles)
}

// Add increments the lane's absolute counters; used by drivers that flush
// deltas rather than absolutes. Safe on a nil receiver.
func (l *Lane) Add(instrs, cycles uint64) {
	if l == nil {
		return
	}
	l.instrs.Add(instrs)
	l.cycles.Add(cycles)
}

// SetTotal declares the lane's expected instruction count, enabling a
// per-lane ETA. Safe on a nil receiver.
func (l *Lane) SetTotal(n uint64) {
	if l == nil {
		return
	}
	l.total.Store(n)
}

// Done marks the lane complete. The ticker prints one final row for it and
// folds its counts into the aggregate totals. Safe on a nil receiver.
func (l *Lane) Done() {
	if l == nil {
		return
	}
	l.done.Store(true)
}
