package obs

// Chrome trace-event export: the JSON object format consumed by Perfetto
// (https://ui.perfetto.dev) and chrome://tracing. Each pipeline stage of
// each instruction becomes one complete ("ph":"X") event; one simulator
// cycle maps to one microsecond of trace time. Instructions are spread
// across chromeLanes thread rows so overlapping lifetimes render side by
// side, the visual equivalent of the reorder-buffer occupancy the paper's
// §5 discussion centers on.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// chromeLanes is the number of thread rows instructions are spread across.
const chromeLanes = 32

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the tracer's records as Chrome trace-event JSON.
// Safe on a nil receiver (writes an empty, valid trace).
func (p *PipeTracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)

	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[` + "\n"); err != nil {
		return err
	}
	write := func(first *bool, ev chromeEvent) error {
		if !*first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		*first = false
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	first := true
	if err := write(&first, chromeEvent{
		Name: "process_name", Ph: "M", PID: 0,
		Args: map[string]any{"name": "pipeline"},
	}); err != nil {
		return err
	}

	stages := [3]struct {
		name string
		cat  string
	}{
		{"F", "window"},  // decoded, waiting to issue
		{"X", "execute"}, // executing / access in flight
		{"C", "commit"},  // complete, waiting to retire in order
	}
	for _, r := range p.Records() {
		decoded, issued, done, retired := r.stageCycles()
		bounds := [4]uint64{decoded, issued, done, retired}
		lane := r.Seq % chromeLanes
		for si, st := range stages {
			start, end := bounds[si], bounds[si+1]
			dur := end - start
			if dur == 0 {
				dur = 1 // render zero-length stages as one cycle
			}
			ev := chromeEvent{
				Name: fmt.Sprintf("%s %s", st.name, r.Disasm),
				Cat:  st.cat,
				Ph:   "X",
				TS:   start,
				Dur:  dur,
				PID:  0,
				TID:  lane,
				Args: map[string]any{"seq": r.Seq, "pc": r.PC},
			}
			if r.Miss {
				ev.Args["miss"] = true
			}
			if r.Mispredict {
				ev.Args["mispredict"] = true
			}
			if err := write(&first, ev); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
