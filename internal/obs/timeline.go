package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Timeline is a deterministic interval sampler: a bounded time series of
// cumulative simulation state snapshots taken at aligned 2^k-cycle
// boundaries. The simulator records a TimelinePoint whenever simulated time
// reaches Boundary(); when the ring fills, the series is decimated by
// powers of two — every other point is dropped and the sampling interval
// doubles — so memory stays bounded for any run length. Because the stored
// points are *cumulative* counters (not per-interval deltas), decimation is
// exact: the surviving points are precisely the snapshots a coarser
// interval would have recorded, and per-interval deltas are derived at
// export time by Samples.
//
// Determinism contract: the recorded series is a pure function of the
// simulated execution, so a time-skipping replay that interpolates the
// boundary snapshots inside a bulk-charged quiet stretch produces the exact
// bytes of the cycle-stepped replay, and per-cell timelines are
// byte-identical at any -j worker count.
//
// Concurrency: the owning simulation goroutine is the only caller of
// Boundary/Record/Finish; Samples, Interval, and the hub snapshot take the
// mutex so a live HTTP scrape mid-run is race-free. All methods are
// nil-safe, matching the package's hook convention.
type Timeline struct {
	// CauseNames, when set before the run, names the indices of
	// TimelinePoint.Causes (the fine-grained critical-path causes); unnamed
	// indices render as "cause<i>". Set once before the run starts.
	CauseNames []string

	mu     sync.Mutex
	shift  uint   // log2 of the current sampling interval
	next   uint64 // next boundary cycle to record (read lock-free by the owner)
	max    int    // decimate when the ring reaches this many points (even, >= 4)
	points []TimelinePoint
	final  *TimelinePoint // partial tail past the last boundary, set by Finish
	prev   TimelinePoint  // last recorded point at native granularity (sink deltas)
	sink   func(TimelineSample)
}

// NewTimeline returns a sampler that records every 2^intervalShift cycles
// and holds at most maxPoints boundary snapshots before decimating.
// maxPoints is rounded up to an even number and clamped to at least 4.
func NewTimeline(intervalShift uint, maxPoints int) *Timeline {
	if maxPoints < 4 {
		maxPoints = 4
	}
	if maxPoints%2 != 0 {
		maxPoints++
	}
	return &Timeline{
		shift: intervalShift,
		next:  1 << intervalShift,
		max:   maxPoints,
	}
}

// TimelinePoint is one cumulative snapshot of simulation state at an
// aligned cycle boundary: counters as of Cycle cycles completed. The coarse
// breakdown fields carry the model's live stall accounting, so on the DS
// model they can *decrease* between boundaries when burst-retirement credit
// retroactively reclassifies stall cycles as busy — which is why interval
// deltas are signed.
type TimelinePoint struct {
	Cycle        uint64 // completed simulated cycles
	Instructions uint64 // retired (DS) / accepted (static) / stepped (tango)

	// Coarse breakdown, cumulative. For the replay models these sum to
	// Cycle; for tango they are machine-wide sums across processors.
	Busy   uint64
	Sync   uint64
	Read   uint64
	Write  uint64
	Branch uint64
	Other  uint64

	// Occupancy integrals (Σ per-cycle occupancy), so interval means are
	// exact: (sum(B2)-sum(B1)) / (B2-B1). The three slots map to the
	// model's structures — DS: ROB / store buffer / outstanding MSHRs;
	// static: in-flight access window / write buffer / read buffer.
	WindowSum   uint64
	StoreBufSum uint64
	MSHRSum     uint64

	// Causes holds cumulative fine-grained critical-path stall cycles per
	// cause index (nil when the replay has no collector attached).
	Causes []uint64
}

// TimelineSample is one derived per-interval delta, the exported form of
// the series. Breakdown deltas are signed (see TimelinePoint).
type TimelineSample struct {
	Start        uint64 `json:"start_cycle"`
	End          uint64 `json:"end_cycle"`
	Instructions uint64 `json:"instructions"`

	Busy   int64 `json:"busy"`
	Sync   int64 `json:"sync"`
	Read   int64 `json:"read"`
	Write  int64 `json:"write"`
	Branch int64 `json:"branch"`
	Other  int64 `json:"other"`

	// IPC is retired instructions per interval cycle; MCPI is memory stall
	// cycles (read+write) per retired instruction within the interval.
	IPC  float64 `json:"ipc"`
	MCPI float64 `json:"mcpi"`

	AvgWindow   float64 `json:"avg_window_occupancy"`
	AvgStoreBuf float64 `json:"avg_storebuf_occupancy"`
	AvgMSHR     float64 `json:"avg_mshr_occupancy"`

	// Causes holds per-interval fine-cause stall-cycle deltas keyed by
	// cause name, present when the replay carried a critpath collector.
	Causes map[string]int64 `json:"causes,omitempty"`
}

// Boundary returns the next cycle count at which the owner must Record a
// snapshot. Only the owning simulation goroutine may call it (lock-free).
func (tl *Timeline) Boundary() uint64 {
	if tl == nil {
		return ^uint64(0)
	}
	return tl.next
}

// Interval returns the current sampling interval in cycles (grows by
// doubling as the series decimates).
func (tl *Timeline) Interval() uint64 {
	if tl == nil {
		return 0
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return 1 << tl.shift
}

// Record appends the cumulative snapshot for the boundary at p.Cycle, which
// must be the cycle Boundary() returned. When the ring fills it is
// decimated in place: odd-index points — exactly the snapshots of the
// doubled interval — survive, and the newest point is always among them.
func (tl *Timeline) Record(p TimelinePoint) {
	if tl == nil {
		return
	}
	tl.mu.Lock()
	s := tl.delta(tl.prev, p)
	tl.prev = p
	tl.points = append(tl.points, p)
	if len(tl.points) >= tl.max {
		kept := tl.points[:0]
		for i := 1; i < len(tl.points); i += 2 {
			kept = append(kept, tl.points[i])
		}
		tl.points = kept
		tl.shift++
	}
	tl.next = uint64(len(tl.points)+1) << tl.shift
	sink := tl.sink
	tl.mu.Unlock()
	if sink != nil {
		sink(s)
	}
}

// Finish seals the series with the end-of-run state at p.Cycle (the total
// cycle count). If the run ended past the last recorded boundary the tail
// becomes one final partial sample; a run ending exactly on a boundary
// needs no tail.
func (tl *Timeline) Finish(p TimelinePoint) {
	if tl == nil {
		return
	}
	tl.mu.Lock()
	last := uint64(0)
	if n := len(tl.points); n > 0 {
		last = tl.points[n-1].Cycle
	}
	var s TimelineSample
	sink := tl.sink
	if p.Cycle > last {
		s = tl.delta(tl.prev, p)
		tl.prev = p
		tl.final = &p
	} else {
		sink = nil
	}
	tl.mu.Unlock()
	if sink != nil {
		sink(s)
	}
}

// Samples derives the per-interval deltas of the recorded series, including
// the final partial interval when the run did not end on a boundary.
func (tl *Timeline) Samples() []TimelineSample {
	if tl == nil {
		return nil
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	out := make([]TimelineSample, 0, len(tl.points)+1)
	var prev TimelinePoint
	for _, p := range tl.points {
		out = append(out, tl.delta(prev, p))
		prev = p
	}
	if tl.final != nil && tl.final.Cycle > prev.Cycle {
		out = append(out, tl.delta(prev, *tl.final))
	}
	return out
}

// delta derives the exported sample for the interval (a.Cycle, b.Cycle].
// Called with tl.mu held (or from a context that owns tl).
func (tl *Timeline) delta(a, b TimelinePoint) TimelineSample {
	s := TimelineSample{
		Start:        a.Cycle,
		End:          b.Cycle,
		Instructions: b.Instructions - a.Instructions,
		Busy:         int64(b.Busy) - int64(a.Busy),
		Sync:         int64(b.Sync) - int64(a.Sync),
		Read:         int64(b.Read) - int64(a.Read),
		Write:        int64(b.Write) - int64(a.Write),
		Branch:       int64(b.Branch) - int64(a.Branch),
		Other:        int64(b.Other) - int64(a.Other),
	}
	if n := b.Cycle - a.Cycle; n > 0 {
		inv := 1 / float64(n)
		s.IPC = float64(s.Instructions) * inv
		s.AvgWindow = float64(b.WindowSum-a.WindowSum) * inv
		s.AvgStoreBuf = float64(b.StoreBufSum-a.StoreBufSum) * inv
		s.AvgMSHR = float64(b.MSHRSum-a.MSHRSum) * inv
	}
	if s.Instructions > 0 {
		s.MCPI = float64(s.Read+s.Write) / float64(s.Instructions)
	}
	if len(b.Causes) > 0 {
		s.Causes = make(map[string]int64, len(b.Causes))
		for i, v := range b.Causes {
			var av uint64
			if i < len(a.Causes) {
				av = a.Causes[i]
			}
			d := int64(v) - int64(av)
			if d == 0 {
				continue
			}
			name := fmt.Sprintf("cause%d", i)
			if i < len(tl.CauseNames) {
				name = tl.CauseNames[i]
			}
			s.Causes[name] = d
		}
		if len(s.Causes) == 0 {
			s.Causes = nil
		}
	}
	return s
}

// setSink installs the hub's per-sample callback; called by Register before
// the run starts.
func (tl *Timeline) setSink(fn func(TimelineSample)) {
	if tl == nil {
		return
	}
	tl.mu.Lock()
	tl.sink = fn
	tl.mu.Unlock()
}

// TimelineSeries is one cell's exported timeline, the /timeline JSON shape.
type TimelineSeries struct {
	Cell     string           `json:"cell"`
	Interval uint64           `json:"interval_cycles"`
	Samples  []TimelineSample `json:"samples"`
}

// TimelineEvent is one live sample on the SSE /events stream. Seq is a
// hub-global monotone sequence number, so a client can assert ordering.
type TimelineEvent struct {
	Seq    uint64         `json:"seq"`
	Cell   string         `json:"cell"`
	Sample TimelineSample `json:"sample"`
}

// TimelineHub fans live timeline samples out to SSE subscribers and serves
// point-in-time snapshots of every registered cell's series. All methods
// are nil-safe and safe for concurrent use from simulation workers and
// HTTP handlers.
type TimelineHub struct {
	mu      sync.Mutex
	cells   map[string]*Timeline
	subs    map[int]chan TimelineEvent
	nextSub int
	seq     uint64
	closed  bool
}

// NewTimelineHub returns an empty hub.
func NewTimelineHub() *TimelineHub {
	return &TimelineHub{
		cells: make(map[string]*Timeline),
		subs:  make(map[int]chan TimelineEvent),
	}
}

// Register attaches a cell's timeline to the hub: its series appears in
// Snapshot and every sample it records is published to subscribers. Call
// before the cell's run starts. Re-registering a cell name replaces the
// previous series.
func (h *TimelineHub) Register(cell string, tl *Timeline) {
	if h == nil || tl == nil {
		return
	}
	h.mu.Lock()
	h.cells[cell] = tl
	h.mu.Unlock()
	tl.setSink(func(s TimelineSample) { h.publish(cell, s) })
}

// publish delivers one sample to every subscriber. Sends never block: a
// subscriber whose buffer is full misses that event (SSE is a live view;
// /timeline has the complete series).
func (h *TimelineHub) publish(cell string, s TimelineSample) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	ev := TimelineEvent{Seq: h.seq, Cell: cell, Sample: s}
	for _, ch := range h.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// Subscribe returns a channel of live timeline events and a cancel
// function. The channel is closed when the subscription is cancelled or
// the hub closes; events already buffered drain first, so a client sees
// every delivered event in order through shutdown.
func (h *TimelineHub) Subscribe(buf int) (<-chan TimelineEvent, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan TimelineEvent, buf)
	if h == nil {
		close(ch)
		return ch, func() {}
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := h.nextSub
	h.nextSub++
	h.subs[id] = ch
	h.mu.Unlock()
	return ch, func() {
		h.mu.Lock()
		if c, ok := h.subs[id]; ok {
			delete(h.subs, id)
			close(c)
		}
		h.mu.Unlock()
	}
}

// Snapshot returns every registered cell's current series, sorted by cell
// name so the output is deterministic regardless of registration order.
func (h *TimelineHub) Snapshot() []TimelineSeries {
	if h == nil {
		return []TimelineSeries{}
	}
	h.mu.Lock()
	names := make([]string, 0, len(h.cells))
	for name := range h.cells {
		names = append(names, name)
	}
	tls := make([]*Timeline, len(names))
	sort.Strings(names)
	for i, name := range names {
		tls[i] = h.cells[name]
	}
	h.mu.Unlock()
	out := make([]TimelineSeries, len(names))
	for i, name := range names {
		out[i] = TimelineSeries{Cell: name, Interval: tls[i].Interval(), Samples: tls[i].Samples()}
	}
	return out
}

// Close closes every subscriber channel (after buffered events drain on the
// receiver side) and drops future publishes. Idempotent and nil-safe.
func (h *TimelineHub) Close() {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for id, ch := range h.subs {
		delete(h.subs, id)
		close(ch)
	}
}
