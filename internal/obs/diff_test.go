package obs

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestDiffMetricsThreshold(t *testing.T) {
	oldM := map[string]float64{
		"a": 100, // +10% → regression at 5%
		"b": 100, // -10% → improvement
		"c": 100, // +4% → unchanged at 5%
		"d": 0,   // 0 → 5: new-nonzero regression
		"e": 100, // only in old
	}
	newM := map[string]float64{
		"a": 110,
		"b": 90,
		"c": 104,
		"d": 5,
		"f": 1, // only in new
	}
	rep := DiffMetrics(oldM, newM, DiffOptions{Threshold: 0.05})
	if rep.Compared != 4 || rep.Unchanged != 1 {
		t.Errorf("compared/unchanged = %d/%d, want 4/1", rep.Compared, rep.Unchanged)
	}
	if rep.Regressions != 2 || rep.Improvements != 1 {
		t.Errorf("regressions/improvements = %d/%d, want 2/1", rep.Regressions, rep.Improvements)
	}
	if len(rep.OnlyOld) != 1 || rep.OnlyOld[0] != "e" || len(rep.OnlyNew) != 1 || rep.OnlyNew[0] != "f" {
		t.Errorf("one-sided = %v / %v", rep.OnlyOld, rep.OnlyNew)
	}
	// Deltas sort regressions first, worst first; d's +Inf beats a's +10%.
	if len(rep.Deltas) != 3 || rep.Deltas[0].Name != "d" || rep.Deltas[1].Name != "a" || rep.Deltas[2].Name != "b" {
		t.Fatalf("delta order = %+v", rep.Deltas)
	}
	if !math.IsInf(rep.Deltas[0].Rel, 1) {
		t.Errorf("zero-old rel = %v, want +Inf", rep.Deltas[0].Rel)
	}
	if rep.Deltas[2].Regression {
		t.Error("improvement flagged as regression")
	}

	// Threshold zero: any change at all is flagged.
	rep0 := DiffMetrics(map[string]float64{"x": 100}, map[string]float64{"x": 100.0001}, DiffOptions{})
	if rep0.Regressions != 1 {
		t.Errorf("zero-threshold regressions = %d, want 1", rep0.Regressions)
	}
	// Exact equality is unchanged even at zero threshold.
	repEq := DiffMetrics(map[string]float64{"x": 100}, map[string]float64{"x": 100}, DiffOptions{})
	if repEq.Unchanged != 1 || repEq.Regressions != 0 {
		t.Errorf("equal metrics: %+v", repEq)
	}
}

func TestDiffReportFormat(t *testing.T) {
	rep := DiffMetrics(
		map[string]float64{"cell.fig3.lu.BASE.cycles": 100, "gone": 1},
		map[string]float64{"cell.fig3.lu.BASE.cycles": 120, "added": 2},
		DiffOptions{Threshold: 0.05})
	rep.OldFNV, rep.NewFNV = "aaaa", "bbbb"
	text := rep.Format()
	for _, want := range []string{
		"REGRESSION", "cell.fig3.lu.BASE.cycles", "+20.00%",
		"only in old run (1): gone", "only in new run (1): added",
		"determinism drift", "1 regressed",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Format() missing %q:\n%s", want, text)
		}
	}
}

func TestLedgerMetricsExcludesMachineDependent(t *testing.T) {
	rec := LedgerRecord{
		WallSeconds: 12.5,
		Mem:         LedgerMem{TotalAllocBytes: 1 << 30},
		Apps:        map[string]LedgerApp{"lu": {Cycles: 1000, WallSeconds: 3}},
		Cells: map[string]LedgerCell{
			"fig3.lu.BASE": {Cycles: 500, Instructions: 100, MCPI: 2},
		},
	}
	m := LedgerMetrics(rec)
	want := map[string]float64{
		"app.lu.cycles":                  1000,
		"cell.fig3.lu.BASE.cycles":       500,
		"cell.fig3.lu.BASE.instructions": 100,
		"cell.fig3.lu.BASE.mcpi":         2,
	}
	if len(m) != len(want) {
		t.Errorf("metrics = %v, want exactly %v", m, want)
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("%s = %v, want %v", k, m[k], v)
		}
	}
}

func TestSnapshotMetricsFiltersGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Set(1)
	r.Gauge("g.normalized_pct").Set(50)
	r.Gauge("g.wall_seconds").Set(9)
	r.Gauge("g.instrs_per_sec").Set(9)
	r.Histogram("h", 1).Observe(4)
	m := SnapshotMetrics(r.Snapshot())
	if m["c"] != 1 || m["g.normalized_pct"] != 50 {
		t.Errorf("metrics = %v", m)
	}
	if _, ok := m["g.wall_seconds"]; ok {
		t.Error("wall_seconds gauge leaked into diff metrics")
	}
	if _, ok := m["g.instrs_per_sec"]; ok {
		t.Error("throughput gauge leaked into diff metrics")
	}
	if m["h.total"] != 1 || m["h.mean"] != 4 {
		t.Errorf("histogram metrics = %v", m)
	}
}

func TestLoadMetricsFileSniffing(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// -metrics-out snapshot.
	r := NewRegistry()
	r.Counter("fig.fig3.lu.BASE.cycles.total").Set(500)
	snapJSON, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	m, kind, sum, err := LoadMetricsFile(write("snap.json", snapJSON))
	if err != nil {
		t.Fatal(err)
	}
	if kind != "metrics snapshot" || sum == "" || m["fig.fig3.lu.BASE.cycles.total"] != 500 {
		t.Errorf("snapshot load: kind=%q sum=%q m=%v", kind, sum, m)
	}

	// Single ledger record.
	rec := BuildLedgerRecord("1", "fig3", nil, nil, time.Now(), r.Snapshot())
	recJSON, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	m, kind, sum, err = LoadMetricsFile(write("rec.json", recJSON))
	if err != nil {
		t.Fatal(err)
	}
	if kind != "ledger record" || sum != rec.MetricsFNV || m["cell.fig3.lu.BASE.cycles"] != 500 {
		t.Errorf("record load: kind=%q sum=%q m=%v", kind, sum, m)
	}

	// JSON-Lines ledger: the newest record wins.
	old := rec
	old.Time = "2026-01-01T00:00:00Z"
	oldJSON, _ := json.Marshal(old)
	ledger := write("runs.jsonl", []byte(string(oldJSON)+"\n"+string(recJSON)+"\n"))
	m, kind, _, err = LoadMetricsFile(ledger)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(kind, "ledger (2 records") || m["cell.fig3.lu.BASE.cycles"] != 500 {
		t.Errorf("jsonl load: kind=%q m=%v", kind, m)
	}

	// Timeline report (the -timeline-json shape, sniffed on timeline_schema):
	// flattened to per-cell cycles, MCPI, and per-phase spans, skipping
	// failed cells.
	timeline := []byte(`{
	  "timeline_schema": "dynsched-timeline/v1",
	  "apps": [{"app": "lu", "cells": [
	    {"label": "RC-DS64", "total_cycles": 1000, "instructions": 400,
	     "samples": [{"read": 60, "write": 20}, {"read": 15, "write": 5}],
	     "phases": [{"index": 1, "start_cycle": 0, "end_cycle": 1000, "mcpi": 0.25}]},
	    {"label": "BASE", "failed": true, "total_cycles": 7}
	  ]}]}`)
	m, kind, sum, err = LoadMetricsFile(write("timeline.json", timeline))
	if err != nil {
		t.Fatal(err)
	}
	if kind != "timeline report" || sum != "" {
		t.Errorf("timeline load: kind=%q sum=%q", kind, sum)
	}
	if m["timeline.lu.RC-DS64.total_cycles"] != 1000 ||
		m["timeline.lu.RC-DS64.phases"] != 1 ||
		m["timeline.lu.RC-DS64.mcpi"] != 0.25 ||
		m["timeline.lu.RC-DS64.phase1.cycles"] != 1000 ||
		m["timeline.lu.RC-DS64.phase1.mcpi"] != 0.25 {
		t.Errorf("timeline metrics = %v", m)
	}
	for name := range m {
		if strings.Contains(name, "BASE") {
			t.Errorf("failed cell leaked into metrics: %s", name)
		}
	}

	// Generic JSON with numeric leaves (the BENCH_*.json shape).
	bench := []byte(`{"fig3": {"ns_per_op": 120.5, "runs": [1, 2]}, "note": "text"}`)
	m, kind, sum, err = LoadMetricsFile(write("bench.json", bench))
	if err != nil {
		t.Fatal(err)
	}
	if kind != "generic JSON" || sum != "" {
		t.Errorf("generic load: kind=%q sum=%q", kind, sum)
	}
	if m["fig3.ns_per_op"] != 120.5 || m["fig3.runs.0"] != 1 || m["fig3.runs.1"] != 2 {
		t.Errorf("generic metrics = %v", m)
	}
	if _, ok := m["note"]; ok {
		t.Error("non-numeric leaf collected")
	}

	if _, _, _, err := LoadMetricsFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file did not error")
	}
	if _, _, _, err := LoadMetricsFile(write("garbage.txt", []byte("not json at all"))); err == nil {
		t.Error("garbage file did not error")
	}
}
