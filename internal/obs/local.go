package obs

// Per-worker metric batching. The registry's histograms and counters are
// updated with atomic operations, which is correct under concurrency but
// makes every hot-loop Observe a shared-cache-line round trip once several
// simulator workers publish into the same registry. A batch accumulates a
// worker's updates in plain (non-atomic) locals and merges them into the
// shared metric once per run, so the registry is touched O(1) times per
// replay instead of O(cycles).
//
// Like everything else in this package, batches are nil-safe: the batch of a
// nil metric is nil, and a nil batch's methods are no-ops, so instrumented
// loops need no conditionals beyond the ones they already have.

// HistogramBatch is a worker-local accumulation buffer for one Histogram.
type HistogramBatch struct {
	h      *Histogram
	counts []uint64
	total  uint64
	sum    uint64
}

// Batch returns a local accumulation buffer for h. Safe on a nil receiver
// (returns a nil batch, whose methods are no-ops).
func (h *Histogram) Batch() *HistogramBatch {
	if h == nil {
		return nil
	}
	return &HistogramBatch{h: h, counts: make([]uint64, len(h.counts))}
}

// Observe records one sample locally without touching the shared histogram.
// Safe on a nil receiver.
func (b *HistogramBatch) Observe(v uint64) {
	if b == nil {
		return
	}
	b.total++
	b.sum += v
	for i, bound := range b.h.bounds {
		if v <= bound {
			b.counts[i]++
			return
		}
	}
	b.counts[len(b.h.bounds)]++
}

// Flush merges the batched samples into the shared histogram and resets the
// batch for reuse. Safe on a nil receiver.
func (b *HistogramBatch) Flush() {
	if b == nil || b.total == 0 {
		return
	}
	for i, c := range b.counts {
		if c != 0 {
			b.h.counts[i].Add(c)
			b.counts[i] = 0
		}
	}
	b.h.total.Add(b.total)
	b.h.sum.Add(b.sum)
	b.total, b.sum = 0, 0
}

// CounterBatch is a worker-local accumulation buffer for one Counter.
type CounterBatch struct {
	c *Counter
	n uint64
}

// Batch returns a local accumulation buffer for c. Safe on a nil receiver
// (returns a nil batch, whose methods are no-ops).
func (c *Counter) Batch() *CounterBatch {
	if c == nil {
		return nil
	}
	return &CounterBatch{c: c}
}

// Add increments the batch locally. Safe on a nil receiver.
func (b *CounterBatch) Add(n uint64) {
	if b == nil {
		return
	}
	b.n += n
}

// Inc increments the batch by one. Safe on a nil receiver.
func (b *CounterBatch) Inc() { b.Add(1) }

// Flush merges the batched count into the shared counter and resets the
// batch for reuse. Safe on a nil receiver.
func (b *CounterBatch) Flush() {
	if b == nil || b.n == 0 {
		return
	}
	b.c.Add(b.n)
	b.n = 0
}
