package obs

// Per-worker metric batching. The registry's histograms and counters are
// updated with atomic operations, which is correct under concurrency but
// makes every hot-loop Observe a shared-cache-line round trip once several
// simulator workers publish into the same registry. A batch accumulates a
// worker's updates in worker-local storage and merges them into the shared
// metric once per run, so the registry's shared cache lines are touched O(1)
// times per replay instead of O(cycles).
//
// Batch storage is atomic — but worker-local, so the atomics stay
// uncontended and cheap — which lets the registry's FlushBatches hook drain
// a batch mid-run (for the live /metrics endpoint, or a -metrics-out written
// on error) without racing the worker that owns it. Prefer the registry
// constructors (Registry.HistogramBatch / Registry.CounterBatch): they
// register the batch with the registry so every Snapshot sees its pending
// samples; call Close when the run finishes to flush and unregister.
//
// Like everything else in this package, batches are nil-safe: the batch of a
// nil metric is nil, and a nil batch's methods are no-ops, so instrumented
// loops need no conditionals beyond the ones they already have.

import "sync/atomic"

// HistogramBatch is a worker-local accumulation buffer for one Histogram.
type HistogramBatch struct {
	h          *Histogram
	counts     []atomic.Uint64
	total      atomic.Uint64
	sum        atomic.Uint64
	unregister func()
}

// Batch returns a local accumulation buffer for h. The buffer is invisible
// to Registry.Snapshot until Flush is called; prefer Registry.HistogramBatch,
// which keeps snapshots exact. Safe on a nil receiver (returns a nil batch,
// whose methods are no-ops).
func (h *Histogram) Batch() *HistogramBatch {
	if h == nil {
		return nil
	}
	return &HistogramBatch{h: h, counts: make([]atomic.Uint64, len(h.counts))}
}

// HistogramBatch returns a worker-local batch for the named histogram,
// registered with the registry so FlushBatches (and therefore Snapshot and
// every export path) drains its pending samples. Call Close on the batch
// when the run completes. Returns nil (a usable no-op) on a nil registry.
func (r *Registry) HistogramBatch(name string, bounds ...uint64) *HistogramBatch {
	if r == nil {
		return nil
	}
	b := r.Histogram(name, bounds...).Batch()
	b.unregister = r.registerFlusher(b.Flush)
	return b
}

// Observe records one sample locally without touching the shared histogram.
// Safe on a nil receiver.
func (b *HistogramBatch) Observe(v uint64) {
	if b == nil {
		return
	}
	b.total.Add(1)
	b.sum.Add(v)
	for i, bound := range b.h.bounds {
		if v <= bound {
			b.counts[i].Add(1)
			return
		}
	}
	b.counts[len(b.h.bounds)].Add(1)
}

// ObserveN records n identical samples of value v locally, exactly as n
// calls to Observe would: the bucket count and total grow by n and the sum
// by v*n. The time-skip simulation paths use it to account a whole run of
// identical stall cycles in one call while keeping every downstream
// snapshot — and therefore the ledger checksum — byte-identical to the
// cycle-stepped accounting. Safe on a nil receiver.
func (b *HistogramBatch) ObserveN(v, n uint64) {
	if b == nil || n == 0 {
		return
	}
	b.total.Add(n)
	b.sum.Add(v * n)
	for i, bound := range b.h.bounds {
		if v <= bound {
			b.counts[i].Add(n)
			return
		}
	}
	b.counts[len(b.h.bounds)].Add(n)
}

// Flush merges the batched samples into the shared histogram and resets the
// batch for reuse. It is safe to call concurrently with Observe (samples
// that land during the flush are simply merged by a later flush). Safe on a
// nil receiver.
func (b *HistogramBatch) Flush() {
	if b == nil || b.total.Load() == 0 {
		return
	}
	for i := range b.counts {
		if c := b.counts[i].Swap(0); c != 0 {
			b.h.counts[i].Add(c)
		}
	}
	b.h.total.Add(b.total.Swap(0))
	b.h.sum.Add(b.sum.Swap(0))
}

// Close flushes any pending samples and unregisters the batch from its
// registry. Safe on a nil receiver and on batches created with
// Histogram.Batch (which have no registration).
func (b *HistogramBatch) Close() {
	if b == nil {
		return
	}
	b.Flush()
	if b.unregister != nil {
		b.unregister()
		b.unregister = nil
	}
}

// CounterBatch is a worker-local accumulation buffer for one Counter.
type CounterBatch struct {
	c          *Counter
	n          atomic.Uint64
	unregister func()
}

// Batch returns a local accumulation buffer for c. The buffer is invisible
// to Registry.Snapshot until Flush is called; prefer Registry.CounterBatch,
// which keeps snapshots exact. Safe on a nil receiver (returns a nil batch,
// whose methods are no-ops).
func (c *Counter) Batch() *CounterBatch {
	if c == nil {
		return nil
	}
	return &CounterBatch{c: c}
}

// CounterBatch returns a worker-local batch for the named counter,
// registered with the registry so FlushBatches (and therefore Snapshot and
// every export path) drains its pending count. Call Close on the batch when
// the run completes. Returns nil (a usable no-op) on a nil registry.
func (r *Registry) CounterBatch(name string) *CounterBatch {
	if r == nil {
		return nil
	}
	b := r.Counter(name).Batch()
	b.unregister = r.registerFlusher(b.Flush)
	return b
}

// Add increments the batch locally. Safe on a nil receiver.
func (b *CounterBatch) Add(n uint64) {
	if b == nil {
		return
	}
	b.n.Add(n)
}

// Inc increments the batch by one. Safe on a nil receiver.
func (b *CounterBatch) Inc() { b.Add(1) }

// Flush merges the batched count into the shared counter and resets the
// batch for reuse. Safe to call concurrently with Add, and on a nil
// receiver.
func (b *CounterBatch) Flush() {
	if b == nil {
		return
	}
	if n := b.n.Swap(0); n != 0 {
		b.c.Add(n)
	}
}

// Close flushes any pending count and unregisters the batch from its
// registry. Safe on a nil receiver and on batches created with
// Counter.Batch.
func (b *CounterBatch) Close() {
	if b == nil {
		return
	}
	b.Flush()
	if b.unregister != nil {
		b.unregister()
		b.unregister = nil
	}
}
