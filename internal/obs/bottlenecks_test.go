package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestBottlenecksDecode(t *testing.T) {
	r := NewRegistry()
	// Two analyzed cells plus unrelated metrics that must be ignored.
	r.Counter("critpath.lu.RC-DS16.cycles.total").Set(1000)
	r.Counter("critpath.lu.RC-DS16.cycles.busy").Set(600)
	r.Counter("critpath.lu.RC-DS16.cycles.read-lat").Set(300)
	r.Counter("critpath.lu.RC-DS16.cycles.branch-refill").Set(100)
	r.Counter("critpath.lu.RC-DS256.cycles.total").Set(800)
	r.Counter("critpath.lu.RC-DS256.cycles.busy").Set(700)
	r.Counter("critpath.lu.RC-DS256.cycles.branch-refill").Set(90)
	r.Counter("critpath.lu.RC-DS256.cycles.read-lat").Set(10)
	r.Counter("critpath.lu.RC-DS16.edges.busy").Set(50) // edges are not cycles
	r.Counter("exp.lu.cycles").Set(12345)

	cells := Bottlenecks(r.Snapshot())
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2: %+v", len(cells), cells)
	}
	small, large := cells[0], cells[1]
	if small.Cell != "lu.RC-DS16" || large.Cell != "lu.RC-DS256" {
		t.Fatalf("cell order: %q, %q", small.Cell, large.Cell)
	}
	if small.TotalCycles != 1000 || small.Dominant != "read-lat" {
		t.Errorf("small window: total=%d dominant=%q, want 1000/read-lat", small.TotalCycles, small.Dominant)
	}
	if large.Dominant != "branch-refill" {
		t.Errorf("large window dominant = %q, want branch-refill", large.Dominant)
	}
	if got := small.Shares["read-lat"]; got != 0.3 {
		t.Errorf("read-lat share = %v, want 0.3", got)
	}
	if _, ok := small.Cycles["busy"]; !ok {
		t.Error("busy bucket missing from cycles map")
	}

	if got := Bottlenecks(NewRegistry().Snapshot()); len(got) != 0 {
		t.Errorf("empty registry decoded to %+v", got)
	}
}

func TestServeBottlenecks(t *testing.T) {
	r := NewRegistry()
	r.Counter("critpath.mp3d.RC-DS64.cycles.total").Set(500)
	r.Counter("critpath.mp3d.RC-DS64.cycles.busy").Set(200)
	r.Counter("critpath.mp3d.RC-DS64.cycles.sync-wait").Set(300)

	srv := httptest.NewServer(NewServeMux(ServerState{Registry: r, Version: "test"}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/bottlenecks")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/bottlenecks status = %d", resp.StatusCode)
	}
	var cells []BottleneckCell
	if err := json.NewDecoder(resp.Body).Decode(&cells); err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Cell != "mp3d.RC-DS64" || cells[0].Dominant != "sync-wait" {
		t.Errorf("/bottlenecks = %+v", cells)
	}

	// The endpoint must also answer (with an empty list) when no analyze
	// step has published anything, including with a nil registry.
	nilSrv := httptest.NewServer(NewServeMux(ServerState{Version: "test"}))
	defer nilSrv.Close()
	resp2, err := http.Get(nilSrv.URL + "/bottlenecks")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("/bottlenecks with nil registry: status = %d", resp2.StatusCode)
	}
}
