package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestProgressLaneMultiplexing drives two lanes the way two concurrent
// simulations would and checks the ticker output: one row per live lane,
// an aggregate [total] row, and a done line when a lane retires.
func TestProgressLaneMultiplexing(t *testing.T) {
	var buf strings.Builder
	p := NewProgress(&buf, time.Hour) // ticks driven by hand via report
	p.Start()

	lu := p.Lane("lu")
	mp3d := p.Lane("mp3d")
	lu.Publish(100, 400)
	lu.SetTotal(1000)
	mp3d.Publish(200, 800)

	p.report(false)
	out := buf.String()
	for _, want := range []string{"progress [lu]", "progress [mp3d]", "[total]"} {
		if !strings.Contains(out, want) {
			t.Errorf("tick output missing %q:\n%s", want, out)
		}
	}

	// Retire one lane: the next tick prints its done line and folds its
	// counts into the aggregate.
	buf.Reset()
	lu.Done()
	p.report(false)
	out = buf.String()
	if !strings.Contains(out, "progress [lu] done:") {
		t.Errorf("no done line for retired lane:\n%s", out)
	}
	if strings.Contains(out, "progress [lu] 100") {
		t.Errorf("retired lane still has a live row:\n%s", out)
	}

	mp3d.Done()
	buf.Reset()
	p.Stop()
	out = buf.String()
	if !strings.Contains(out, "300 instrs") {
		t.Errorf("final summary did not aggregate lane counts:\n%s", out)
	}
}

// TestProgressStatusAggregatesLanes checks the /progress JSON view.
func TestProgressStatusAggregatesLanes(t *testing.T) {
	p := NewProgress(&strings.Builder{}, time.Hour)
	p.Start()
	defer p.Stop()
	a := p.Lane("a")
	b := p.Lane("b")
	a.Publish(100, 200)
	a.SetTotal(400)
	b.Add(50, 60)
	b.Add(50, 60)

	st := p.Status()
	if !st.Running {
		t.Error("status not running after Start")
	}
	if st.Instrs != 200 || st.Cycles != 320 || st.TotalInstrs != 400 {
		t.Errorf("aggregate = %+v", st)
	}
	if len(st.Lanes) != 2 || st.Lanes[0].Label != "a" || st.Lanes[1].Instrs != 100 {
		t.Errorf("lanes = %+v", st.Lanes)
	}
	if st.ETASeconds <= 0 {
		t.Errorf("ETA = %v, want > 0 with total set", st.ETASeconds)
	}

	var nilP *Progress
	if got := nilP.Status(); got.Running || got.Instrs != 0 {
		t.Errorf("nil progress status = %+v", got)
	}
}

// TestLaneConcurrentPublish exercises many lanes publishing while the
// reporter runs; meaningful under -race.
func TestLaneConcurrentPublish(t *testing.T) {
	var mu sync.Mutex
	var buf strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	p := NewProgress(w, time.Millisecond)
	p.Start()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			l := p.Lane("lane")
			for i := uint64(1); i <= 500; i++ {
				l.Publish(i, 2*i)
				if i%100 == 0 {
					_ = p.Status()
				}
			}
			l.Done()
		}(g)
	}
	wg.Wait()
	p.Stop()
	st := p.Status()
	if st.Instrs != 8*500 {
		t.Errorf("final instrs = %d, want %d", st.Instrs, 8*500)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestLaneNilSafety(t *testing.T) {
	var p *Progress
	l := p.Lane("x")
	if l != nil {
		t.Fatal("nil progress returned a non-nil lane")
	}
	l.Publish(1, 2)
	l.Add(1, 2)
	l.SetTotal(5)
	l.Done()
	if l.Label() != "" {
		t.Error("nil lane label not empty")
	}
}

func TestJobBoardLifecycle(t *testing.T) {
	b := NewJobBoard()
	id1 := b.Enqueue("lu BASE")
	id2 := b.Enqueue("lu RC-DS64")
	id3 := b.Enqueue("mp3d BASE")
	if id1 != 0 || id2 != 1 || id3 != 2 {
		t.Fatalf("ids = %d, %d, %d", id1, id2, id3)
	}

	st := b.Status()
	if st.Queued != 3 || st.Running+st.Done+st.Failed != 0 {
		t.Errorf("initial status = %+v", st)
	}

	b.Start(id1)
	b.Finish(id1, nil)
	b.Start(id2)
	b.Finish(id2, errors.New("replay exploded"))
	b.Start(id3)

	st = b.Status()
	if st.Done != 1 || st.Failed != 1 || st.Running != 1 || st.Queued != 0 {
		t.Errorf("status = %+v", st)
	}
	if st.Jobs[0].State != JobDone || st.Jobs[0].WallSeconds < 0 {
		t.Errorf("job 0 = %+v", st.Jobs[0])
	}
	if st.Jobs[1].State != JobFailed || st.Jobs[1].Err != "replay exploded" {
		t.Errorf("job 1 = %+v", st.Jobs[1])
	}
	if st.Jobs[2].State != JobRunning {
		t.Errorf("job 2 = %+v", st.Jobs[2])
	}

	// Finish without Start backfills the start time rather than reporting a
	// bogus multi-decade wall time.
	id4 := b.Enqueue("late")
	b.Finish(id4, nil)
	st = b.Status()
	if w := st.Jobs[3].WallSeconds; w < 0 || w > 1 {
		t.Errorf("unstarted-finish wall seconds = %v", w)
	}

	// Nil board and out-of-range ids are no-ops.
	var nb *JobBoard
	if id := nb.Enqueue("x"); id != -1 {
		t.Errorf("nil Enqueue = %d, want -1", id)
	}
	nb.Start(0)
	nb.Finish(0, nil)
	if st := nb.Status(); len(st.Jobs) != 0 {
		t.Errorf("nil board status = %+v", st)
	}
	b.Start(-1)
	b.Finish(99, nil)
}

// TestJobBoardConcurrent hammers the board from many goroutines; meaningful
// under -race.
func TestJobBoardConcurrent(t *testing.T) {
	b := NewJobBoard()
	const n = 64
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := b.Enqueue("job")
			b.Start(id)
			_ = b.Status()
			b.Finish(id, nil)
		}()
	}
	wg.Wait()
	st := b.Status()
	if st.Done != n || st.Queued != 0 || st.Running != 0 {
		t.Errorf("final status = %+v", st)
	}
}
