package obs

// Tests for the job board's bounded finished-job retention: long-lived
// serve/coordinator processes must not grow without bound, yet the summary
// counters must keep every outcome and live jobs must never be evicted.

import (
	"errors"
	"sync"
	"testing"
)

func TestJobBoardRetentionEvictsOldestFinished(t *testing.T) {
	b := NewJobBoard()
	b.SetRetention(4)
	for i := 0; i < 10; i++ {
		id := b.Enqueue("job")
		b.Start(id)
		if i%3 == 2 {
			b.Finish(id, errors.New("boom"))
		} else {
			b.Finish(id, nil)
		}
	}
	st := b.Status()
	if len(st.Jobs) != 4 {
		t.Fatalf("retained %d jobs, want 4", len(st.Jobs))
	}
	// The retained entries are the newest finishes, ids 6..9.
	if st.Jobs[0].ID != 6 || st.Jobs[3].ID != 9 {
		t.Errorf("retained ids %d..%d, want 6..9", st.Jobs[0].ID, st.Jobs[3].ID)
	}
	// Summary counters still see all ten outcomes: ids 2, 5, 8 failed.
	if st.Done != 7 || st.Failed != 3 {
		t.Errorf("done/failed = %d/%d, want 7/3", st.Done, st.Failed)
	}
	if st.Evicted != 6 {
		t.Errorf("evicted = %d, want 6", st.Evicted)
	}
}

func TestJobBoardRetentionSparesLiveJobs(t *testing.T) {
	b := NewJobBoard()
	b.SetRetention(2)
	queued := b.Enqueue("still queued")
	running := b.Enqueue("still running")
	b.Start(running)
	for i := 0; i < 8; i++ {
		id := b.Enqueue("done")
		b.Start(id)
		b.Finish(id, nil)
	}
	st := b.Status()
	if st.Queued != 1 || st.Running != 1 {
		t.Fatalf("live jobs evicted: %+v", st)
	}
	if len(st.Jobs) != 4 { // 2 live + 2 retained finished
		t.Errorf("retained %d jobs, want 4", len(st.Jobs))
	}
	if st.Jobs[0].ID != queued || st.Jobs[1].ID != running {
		t.Errorf("live jobs %d, %d missing from %+v", queued, running, st.Jobs)
	}
	if st.Done != 8 || st.Evicted != 6 {
		t.Errorf("done/evicted = %d/%d, want 8/6", st.Done, st.Evicted)
	}
}

// SetRetention applied after the fact trims immediately; ids keep counting
// up so late Status readers still see a stable, monotonic id space.
func TestJobBoardSetRetentionTrims(t *testing.T) {
	b := NewJobBoard()
	for i := 0; i < 6; i++ {
		id := b.Enqueue("job")
		b.Finish(id, nil)
	}
	b.SetRetention(1)
	st := b.Status()
	if len(st.Jobs) != 1 || st.Jobs[0].ID != 5 {
		t.Fatalf("retained %+v, want only id 5", st.Jobs)
	}
	if id := b.Enqueue("next"); id != 6 {
		t.Errorf("next id = %d, want 6", id)
	}
}

// Concurrent finishes under a tight cap; meaningful under -race.
func TestJobBoardRetentionConcurrent(t *testing.T) {
	b := NewJobBoard()
	b.SetRetention(8)
	const n = 128
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := b.Enqueue("job")
			b.Start(id)
			_ = b.Status()
			b.Finish(id, nil)
		}()
	}
	wg.Wait()
	st := b.Status()
	if st.Done != n {
		t.Errorf("done = %d, want %d", st.Done, n)
	}
	if len(st.Jobs) != 8 || st.Evicted != n-8 {
		t.Errorf("retained %d evicted %d, want 8 and %d", len(st.Jobs), st.Evicted, n-8)
	}
}

func TestJobBoardCachedLifecycle(t *testing.T) {
	b := NewJobBoard()
	hit := b.Enqueue("lu BASE")
	miss := b.Enqueue("lu SC-SS")
	// A cache hit never starts: Enqueue -> FinishCached, no Start.
	b.FinishCached(hit)
	b.Start(miss)
	b.Finish(miss, nil)
	st := b.Status()
	if st.Cached != 1 || st.Done != 1 || st.Failed != 0 {
		t.Fatalf("cached/done/failed = %d/%d/%d, want 1/1/0", st.Cached, st.Done, st.Failed)
	}
	if got := st.Jobs[0].State; got != JobCached {
		t.Fatalf("hit job state = %q, want %q", got, JobCached)
	}
	// Cached is terminal: a later Finish (the scheduler's deferred cleanup)
	// must not demote it to done or failed.
	b.Finish(hit, errors.New("late"))
	if st := b.Status(); st.Cached != 1 || st.Failed != 0 {
		t.Fatalf("cached state overwritten: %+v", st)
	}
	// And FinishCached must not overwrite a real outcome.
	b.FinishCached(miss)
	if st := b.Status(); st.Done != 1 || st.Cached != 1 {
		t.Fatalf("done state overwritten by FinishCached: %+v", st)
	}
}

func TestJobBoardCachedSurvivesEviction(t *testing.T) {
	b := NewJobBoard()
	b.SetRetention(2)
	for i := 0; i < 8; i++ {
		id := b.Enqueue("job")
		if i%2 == 0 {
			b.FinishCached(id)
		} else {
			b.Start(id)
			b.Finish(id, nil)
		}
	}
	st := b.Status()
	if st.Cached != 4 || st.Done != 4 {
		t.Fatalf("cached/done = %d/%d after eviction, want 4/4", st.Cached, st.Done)
	}
	if st.Evicted != 6 {
		t.Fatalf("evicted = %d, want 6", st.Evicted)
	}
}
