package obs

// Progress is the run-level ticker: simulation loops publish their absolute
// instruction and cycle counts, and a background goroutine periodically
// prints throughput (instructions/sec of wall time, simulated cycles/sec)
// and an ETA when a total is known. A nil *Progress is a no-op, so the hot
// loops call Publish unconditionally.

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress reports simulation throughput at a fixed wall-clock interval.
type Progress struct {
	out      io.Writer
	interval time.Duration
	label    atomic.Value // string: current phase label

	instrs atomic.Uint64 // absolute instructions processed
	cycles atomic.Uint64 // absolute simulated cycles
	total  atomic.Uint64 // expected instructions (0 = unknown)

	start     time.Time
	mu        sync.Mutex
	stop      chan struct{}
	done      chan struct{}
	lastInstr uint64
	lastCycle uint64
	lastAt    time.Time
}

// NewProgress creates a ticker writing to w every interval (1s if
// interval <= 0). Call Start to begin reporting and Stop when done.
func NewProgress(w io.Writer, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = time.Second
	}
	p := &Progress{out: w, interval: interval}
	p.label.Store("")
	return p
}

// SetLabel names the current phase (e.g. the application being simulated).
// Safe on a nil receiver.
func (p *Progress) SetLabel(label string) {
	if p == nil {
		return
	}
	p.label.Store(label)
}

// SetTotal declares the expected instruction count, enabling the ETA.
// Safe on a nil receiver.
func (p *Progress) SetTotal(n uint64) {
	if p == nil {
		return
	}
	p.total.Store(n)
}

// Publish stores the absolute progress of the running simulation. Simulation
// loops call it every few thousand steps; it is two atomic stores. Safe on a
// nil receiver.
func (p *Progress) Publish(instrs, cycles uint64) {
	if p == nil {
		return
	}
	p.instrs.Store(instrs)
	p.cycles.Store(cycles)
}

// Add increments the absolute counters; used by drivers that aggregate
// several sequential simulations. Safe on a nil receiver.
func (p *Progress) Add(instrs, cycles uint64) {
	if p == nil {
		return
	}
	p.instrs.Add(instrs)
	p.cycles.Add(cycles)
}

// Start launches the reporting goroutine. Safe on a nil receiver.
func (p *Progress) Start() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		return // already running
	}
	p.start = time.Now()
	p.lastAt = p.start
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go p.run(p.stop, p.done)
}

// Stop halts the reporting goroutine and prints a final summary line.
// Safe on a nil receiver and when Start was never called.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	p.mu.Lock()
	stop, done := p.stop, p.done
	p.stop, p.done = nil, nil
	p.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
	p.report(true)
}

func (p *Progress) run(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			p.report(false)
		}
	}
}

// report prints one progress line. final switches to the summary format.
func (p *Progress) report(final bool) {
	now := time.Now()
	instrs, cycles := p.instrs.Load(), p.cycles.Load()

	p.mu.Lock()
	dt := now.Sub(p.lastAt).Seconds()
	di, dc := instrs-p.lastInstr, cycles-p.lastCycle
	p.lastAt, p.lastInstr, p.lastCycle = now, instrs, cycles
	p.mu.Unlock()

	elapsed := now.Sub(p.start).Seconds()
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	ips, cps := float64(di)/dt, float64(dc)/dt
	if final || dt <= 0 {
		ips, cps = float64(instrs)/elapsed, float64(cycles)/elapsed
	}

	label := p.label.Load().(string)
	if label != "" {
		label = " [" + label + "]"
	}
	line := fmt.Sprintf("progress%s: %s instrs (%s/s), %s sim cycles (%s/s)",
		label, siCount(instrs), siCount(uint64(ips)), siCount(cycles), siCount(uint64(cps)))
	if total := p.total.Load(); total > 0 && instrs > 0 && instrs < total && !final {
		remain := float64(total-instrs) / (float64(instrs) / elapsed)
		line += fmt.Sprintf(", ETA %s", time.Duration(remain*float64(time.Second)).Round(time.Second))
	}
	if final {
		line += fmt.Sprintf(", wall %s", time.Duration(elapsed*float64(time.Second)).Round(time.Millisecond))
	}
	fmt.Fprintln(p.out, line)
}

// siCount formats a count with a k/M/G suffix.
func siCount(n uint64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	}
	return fmt.Sprintf("%d", n)
}

// PublishEvery is the recommended stride, in simulation steps, between
// Publish calls from hot loops: frequent enough for 1-second ticks, rare
// enough to be invisible in profiles.
const PublishEvery = 1 << 14
