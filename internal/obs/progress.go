package obs

// Progress is the run-level ticker: simulation loops publish their absolute
// instruction and cycle counts, and a background goroutine periodically
// prints throughput (instructions/sec of wall time, simulated cycles/sec)
// and an ETA when a total is known. A nil *Progress is a no-op, so the hot
// loops call Publish unconditionally.
//
// Concurrent simulations each publish into their own Lane (see lane.go); the
// ticker prints one row per live lane plus an aggregate total, instead of
// letting parallel workers clobber a single shared label.

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress reports simulation throughput at a fixed wall-clock interval.
type Progress struct {
	out      io.Writer
	interval time.Duration
	label    atomic.Value // string: current phase label (legacy single-lane mode)

	instrs atomic.Uint64 // absolute instructions: direct publishes + retired lanes
	cycles atomic.Uint64 // absolute simulated cycles, likewise
	total  atomic.Uint64 // expected instructions (0 = unknown)

	start     time.Time
	running   atomic.Bool
	mu        sync.Mutex
	lanes     []*Lane // live per-label rows; done lanes are folded into instrs/cycles
	stop      chan struct{}
	done      chan struct{}
	lastInstr uint64
	lastCycle uint64
	lastAt    time.Time
}

// NewProgress creates a ticker writing to w every interval (1s if
// interval <= 0). Call Start to begin reporting and Stop when done.
func NewProgress(w io.Writer, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = time.Second
	}
	p := &Progress{out: w, interval: interval}
	p.label.Store("")
	return p
}

// SetLabel names the current phase (e.g. the application being simulated)
// for the aggregate row. Concurrent simulations should prefer per-label
// lanes (Progress.Lane), which cannot clobber each other. Safe on a nil
// receiver.
func (p *Progress) SetLabel(label string) {
	if p == nil {
		return
	}
	p.label.Store(label)
}

// SetTotal declares the expected aggregate instruction count, enabling the
// ETA. Safe on a nil receiver.
func (p *Progress) SetTotal(n uint64) {
	if p == nil {
		return
	}
	p.total.Store(n)
}

// Publish stores the absolute progress of the running simulation. Simulation
// loops call it every few thousand steps; it is two atomic stores. Safe on a
// nil receiver.
func (p *Progress) Publish(instrs, cycles uint64) {
	if p == nil {
		return
	}
	p.instrs.Store(instrs)
	p.cycles.Store(cycles)
}

// Add increments the absolute counters; used by drivers that aggregate
// several sequential simulations. Safe on a nil receiver.
func (p *Progress) Add(instrs, cycles uint64) {
	if p == nil {
		return
	}
	p.instrs.Add(instrs)
	p.cycles.Add(cycles)
}

// Start launches the reporting goroutine. Safe on a nil receiver.
func (p *Progress) Start() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		return // already running
	}
	p.start = time.Now()
	p.lastAt = p.start
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	p.running.Store(true)
	go p.run(p.stop, p.done)
}

// Stop halts the reporting goroutine and prints a final summary line.
// Safe on a nil receiver and when Start was never called.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	p.mu.Lock()
	stop, done := p.stop, p.done
	p.stop, p.done = nil, nil
	p.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
	p.report(true)
	p.running.Store(false)
}

func (p *Progress) run(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			p.report(false)
		}
	}
}

// takeLanes splits the registered lanes into live and freshly finished ones,
// folding the finished lanes' counts and totals into the aggregate counters.
// Called with p.mu held.
func (p *Progress) takeLanes() (live, finished []*Lane) {
	for _, l := range p.lanes {
		if l.done.Load() {
			finished = append(finished, l)
			p.instrs.Add(l.instrs.Load())
			p.cycles.Add(l.cycles.Load())
			p.total.Add(l.total.Load())
		} else {
			live = append(live, l)
		}
	}
	p.lanes = live
	return live, finished
}

// report prints one progress line per live lane plus an aggregate line.
// final switches the aggregate to the summary format.
func (p *Progress) report(final bool) {
	now := time.Now()

	p.mu.Lock()
	live, finished := p.takeLanes()
	dt := now.Sub(p.lastAt).Seconds()
	var laneInstrs, laneCycles, laneTotals uint64
	type laneRow struct {
		label                 string
		instrs, cycles, total uint64
		di, dc                uint64
	}
	rows := make([]laneRow, 0, len(live))
	for _, l := range live {
		li, lc := l.instrs.Load(), l.cycles.Load()
		rows = append(rows, laneRow{
			label: l.label, instrs: li, cycles: lc, total: l.total.Load(),
			di: li - l.lastInstr, dc: lc - l.lastCycle,
		})
		l.lastInstr, l.lastCycle = li, lc
		laneInstrs += li
		laneCycles += lc
		laneTotals += l.total.Load()
	}
	instrs := p.instrs.Load() + laneInstrs
	cycles := p.cycles.Load() + laneCycles
	di, dc := instrs-p.lastInstr, cycles-p.lastCycle
	p.lastAt, p.lastInstr, p.lastCycle = now, instrs, cycles
	p.mu.Unlock()

	elapsed := now.Sub(p.start).Seconds()
	if elapsed <= 0 {
		elapsed = 1e-9
	}

	for _, l := range finished {
		fmt.Fprintf(p.out, "progress [%s] done: %s instrs, %s sim cycles\n",
			l.label, siCount(l.instrs.Load()), siCount(l.cycles.Load()))
	}
	if !final {
		for _, r := range rows {
			line := fmt.Sprintf("progress [%s] %s instrs (%s/s), %s sim cycles (%s/s)",
				r.label, siCount(r.instrs), siCount(rate(r.di, dt)),
				siCount(r.cycles), siCount(rate(r.dc, dt)))
			if r.total > 0 && r.instrs > 0 && r.instrs < r.total {
				remain := float64(r.total-r.instrs) / (float64(r.instrs) / elapsed)
				line += fmt.Sprintf(", ETA %s", time.Duration(remain*float64(time.Second)).Round(time.Second))
			}
			fmt.Fprintln(p.out, line)
		}
	}

	// The aggregate line: skip it on intermediate ticks when a single live
	// lane already tells the whole story.
	if !final && len(rows) == 1 && p.instrs.Load() == 0 {
		return
	}
	ips, cps := rate(di, dt), rate(dc, dt)
	if final || dt <= 0 {
		ips, cps = uint64(float64(instrs)/elapsed), uint64(float64(cycles)/elapsed)
	}
	label := p.label.Load().(string)
	if label != "" {
		label = " [" + label + "]"
	} else if len(rows) > 0 || len(finished) > 0 {
		label = " [total]"
	}
	line := fmt.Sprintf("progress%s: %s instrs (%s/s), %s sim cycles (%s/s)",
		label, siCount(instrs), siCount(ips), siCount(cycles), siCount(cps))
	total := p.total.Load() + laneTotals
	if total > 0 && instrs > 0 && instrs < total && !final {
		remain := float64(total-instrs) / (float64(instrs) / elapsed)
		line += fmt.Sprintf(", ETA %s", time.Duration(remain*float64(time.Second)).Round(time.Second))
	}
	if final {
		line += fmt.Sprintf(", wall %s", time.Duration(elapsed*float64(time.Second)).Round(time.Millisecond))
	}
	fmt.Fprintln(p.out, line)
}

// rate converts a delta over dt seconds into a per-second figure.
func rate(d uint64, dt float64) uint64 {
	if dt <= 0 {
		return 0
	}
	return uint64(float64(d) / dt)
}

// LaneStatus is one lane's state in a ProgressStatus.
type LaneStatus struct {
	Label       string `json:"label"`
	Instrs      uint64 `json:"instrs"`
	Cycles      uint64 `json:"cycles"`
	TotalInstrs uint64 `json:"total_instrs,omitempty"`
}

// ProgressStatus is a point-in-time view of a Progress ticker, served as
// JSON by the live server's /progress endpoint.
type ProgressStatus struct {
	Running        bool         `json:"running"`
	ElapsedSeconds float64      `json:"elapsed_seconds"`
	Instrs         uint64       `json:"instrs"`
	Cycles         uint64       `json:"cycles"`
	TotalInstrs    uint64       `json:"total_instrs,omitempty"`
	InstrsPerSec   float64      `json:"instrs_per_sec"`
	CyclesPerSec   float64      `json:"cycles_per_sec"`
	ETASeconds     float64      `json:"eta_seconds,omitempty"`
	Lanes          []LaneStatus `json:"lanes,omitempty"`
}

// Status reports the ticker's current aggregate and per-lane progress. The
// per-second rates are run-lifetime averages. Safe on a nil receiver.
func (p *Progress) Status() ProgressStatus {
	if p == nil {
		return ProgressStatus{}
	}
	st := ProgressStatus{Running: p.running.Load()}
	instrs, cycles, total := p.instrs.Load(), p.cycles.Load(), p.total.Load()

	p.mu.Lock()
	start := p.start
	for _, l := range p.lanes {
		li, lc, lt := l.instrs.Load(), l.cycles.Load(), l.total.Load()
		st.Lanes = append(st.Lanes, LaneStatus{Label: l.label, Instrs: li, Cycles: lc, TotalInstrs: lt})
		instrs += li
		cycles += lc
		total += lt
	}
	p.mu.Unlock()

	st.Instrs, st.Cycles, st.TotalInstrs = instrs, cycles, total
	if !start.IsZero() {
		st.ElapsedSeconds = time.Since(start).Seconds()
	}
	if st.ElapsedSeconds > 0 {
		st.InstrsPerSec = float64(instrs) / st.ElapsedSeconds
		st.CyclesPerSec = float64(cycles) / st.ElapsedSeconds
		if total > instrs && instrs > 0 {
			st.ETASeconds = float64(total-instrs) / st.InstrsPerSec
		}
	}
	return st
}

// siCount formats a count with a k/M/G suffix.
func siCount(n uint64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	}
	return fmt.Sprintf("%d", n)
}

// PublishEvery is the recommended stride, in simulation steps, between
// Publish calls from hot loops: frequent enough for 1-second ticks, rare
// enough to be invisible in profiles.
const PublishEvery = 1 << 14
