package obs

// The run ledger: every command-line invocation appends one structured
// JSON-Lines record capturing what ran (command, options, version), what it
// cost (wall time, allocator statistics), and what it produced (per-app
// trace-generation cycles, per-cell replay cycles and MCPI, and an FNV-1a
// checksum of the deterministic slice of the metrics snapshot). A ledger is
// the longitudinal half of the observability layer: `hidelat diff` compares
// two records and flags regressions, and the checksum makes determinism
// drift across commits detectable without storing full snapshots.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// LedgerSchema is the current record schema version.
const LedgerSchema = 1

// LedgerMem captures allocator statistics from runtime.MemStats.
type LedgerMem struct {
	TotalAllocBytes uint64 `json:"total_alloc_bytes"` // cumulative bytes allocated
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`  // live heap at record time
	SysBytes        uint64 `json:"sys_bytes"`         // peak memory obtained from the OS
	Mallocs         uint64 `json:"mallocs"`
	NumGC           uint32 `json:"num_gc"`
}

// LedgerApp is one application's trace-generation outcome.
type LedgerApp struct {
	Cycles      uint64  `json:"cycles"` // simulated machine cycles to run the app
	WallSeconds float64 `json:"wall_seconds,omitempty"`
}

// LedgerCell is one replay cell's outcome (one bar of a figure or sweep:
// app × architecture × consistency model × window).
type LedgerCell struct {
	Cycles       uint64  `json:"cycles"`
	Instructions uint64  `json:"instructions,omitempty"`
	MCPI         float64 `json:"mcpi,omitempty"` // memory stall cycles (read+write) per instruction
}

// LedgerRecord is one run of a command-line tool.
type LedgerRecord struct {
	Schema      int                   `json:"schema"`
	ID          string                `json:"id"`
	Time        string                `json:"time"` // RFC 3339
	Version     string                `json:"version"`
	GoVersion   string                `json:"go_version"`
	Cmd         string                `json:"cmd"` // experiment / subcommand name
	Args        []string              `json:"args,omitempty"`
	Options     map[string]any        `json:"options,omitempty"`
	WallSeconds float64               `json:"wall_seconds"`
	Mem         LedgerMem             `json:"mem"`
	Apps        map[string]LedgerApp  `json:"apps,omitempty"`
	Cells       map[string]LedgerCell `json:"cells,omitempty"`
	MetricsFNV  string                `json:"metrics_fnv"`
	// CacheHits/CacheMisses count result-cache lookups during the run. They
	// live outside the determinism checksum (a warm run must hash identically
	// to a cold one), so they get dedicated fields rather than counters.
	CacheHits   uint64 `json:"cache_hits,omitempty"`
	CacheMisses uint64 `json:"cache_misses,omitempty"`
	// Interrupted marks a run cut short by SIGINT/SIGTERM or -timeout; its
	// figures cover only the cells that finished before cancellation.
	Interrupted bool `json:"interrupted,omitempty"`
	// FailedCells lists the labels of cells that exhausted their retries
	// (panic or error); the record's Cells map holds only the survivors.
	FailedCells []string `json:"failed_cells,omitempty"`
}

// NewRunID derives a human-sortable, collision-resistant run id from the
// start time and process id, e.g. "20260806T121314-5f2a91c3".
func NewRunID(now time.Time) string {
	h := fnv.New32a()
	fmt.Fprintf(h, "%d|%d|%s", now.UnixNano(), os.Getpid(), hostname())
	return fmt.Sprintf("%s-%08x", now.UTC().Format("20060102T150405"), h.Sum32())
}

func hostname() string {
	hn, err := os.Hostname()
	if err != nil {
		return "unknown"
	}
	return hn
}

// deterministicGauge reports whether a gauge's value is a pure function of
// the simulation (and so belongs in the determinism checksum). Wall-clock
// and throughput gauges vary run to run and are excluded.
func deterministicGauge(name string) bool {
	return !strings.HasSuffix(name, "wall_seconds") && !strings.HasSuffix(name, "_per_sec")
}

// SnapshotFNV hashes the deterministic slice of a metrics snapshot — every
// counter and histogram, plus gauges whose value is simulation-determined —
// with FNV-1a 64. Two runs of the same build over the same inputs produce
// the same checksum; a difference flags determinism drift.
func SnapshotFNV(s Snapshot) string {
	h := fnv.New64a()
	for _, name := range sortedKeys(s.Counters) {
		// Result-cache bookkeeping ("cache.hits" etc.) depends on what was in
		// the cache, not on the simulation: excluding it keeps cold, warm, and
		// cache-off runs checksum-identical.
		if strings.HasPrefix(name, "cache.") {
			continue
		}
		fmt.Fprintf(h, "C|%s|%d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		if deterministicGauge(name) {
			fmt.Fprintf(h, "G|%s|%s\n", name, strconv.FormatFloat(s.Gauges[name], 'g', -1, 64))
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		hs := s.Histograms[name]
		fmt.Fprintf(h, "H|%s|%d|%d|%v\n", name, hs.Total, hs.Sum, hs.Counts)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// BuildLedgerRecord assembles a record from a finished run: command
// identity, wall time, allocator statistics, and the per-app / per-cell
// outcomes extracted from the metrics snapshot (the "exp.<app>." gauges and
// "fig.<step>.<app>.<label>." counters the harness publishes).
func BuildLedgerRecord(version, cmd string, args []string, options map[string]any,
	start time.Time, snap Snapshot) LedgerRecord {

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rec := LedgerRecord{
		Schema:      LedgerSchema,
		ID:          NewRunID(start),
		Time:        start.UTC().Format(time.RFC3339),
		Version:     version,
		GoVersion:   runtime.Version(),
		Cmd:         cmd,
		Args:        args,
		Options:     options,
		WallSeconds: time.Since(start).Seconds(),
		Mem: LedgerMem{
			TotalAllocBytes: ms.TotalAlloc,
			HeapAllocBytes:  ms.HeapAlloc,
			SysBytes:        ms.Sys,
			Mallocs:         ms.Mallocs,
			NumGC:           ms.NumGC,
		},
		Apps:        extractApps(snap),
		Cells:       extractCells(snap),
		MetricsFNV:  SnapshotFNV(snap),
		CacheHits:   snap.Counters["cache.hits"],
		CacheMisses: snap.Counters["cache.misses"],
	}
	return rec
}

// extractApps pulls per-application trace-generation outcomes from the
// "exp.<app>." metrics the harness publishes.
func extractApps(s Snapshot) map[string]LedgerApp {
	apps := make(map[string]LedgerApp)
	for name, v := range s.Counters {
		rest, ok := strings.CutPrefix(name, "exp.")
		if !ok {
			continue
		}
		app, ok := strings.CutSuffix(rest, ".cycles")
		if !ok || strings.Contains(app, ".") {
			continue
		}
		a := apps[app]
		a.Cycles = v
		a.WallSeconds = s.Gauges["exp."+app+".wall_seconds"]
		apps[app] = a
	}
	if len(apps) == 0 {
		return nil
	}
	return apps
}

// extractCells pulls per-replay-cell outcomes from the
// "fig.<step>.<app>.<label>." counters published by RecordColumns: total
// cycles, instructions, and MCPI (read + write stall cycles per
// instruction).
func extractCells(s Snapshot) map[string]LedgerCell {
	cells := make(map[string]LedgerCell)
	for name, v := range s.Counters {
		rest, ok := strings.CutPrefix(name, "fig.")
		if !ok {
			continue
		}
		key, ok := strings.CutSuffix(rest, ".cycles.total")
		if !ok {
			continue
		}
		pre := "fig." + key + "."
		c := LedgerCell{
			Cycles:       v,
			Instructions: s.Counters[pre+"instructions"],
		}
		if c.Instructions > 0 {
			memStall := s.Counters[pre+"stall.read"] + s.Counters[pre+"stall.write"]
			c.MCPI = float64(memStall) / float64(c.Instructions)
		}
		cells[key] = c
	}
	if len(cells) == 0 {
		return nil
	}
	return cells
}

// AppendLedger appends rec as one JSON line to the ledger at path, creating
// the file if needed. The record (including its trailing newline) goes out
// in a single O_APPEND write, so concurrent appenders cannot interleave
// within a record and a crash can tear at most the final line — which
// ReadLedger detects and drops.
func AppendLedger(path string, rec LedgerRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("obs: ledger: %w", err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("obs: ledger: %w", err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("obs: ledger: %w", err)
	}
	return f.Close()
}

// ReadLedger parses every record of a JSON-Lines ledger, oldest first.
//
// A torn tail — a final line with no trailing newline that fails to parse,
// the signature of a writer killed mid-append — is dropped silently, since
// every complete record before it is intact. Unparsable records anywhere
// else are real corruption and return an error.
func ReadLedger(path string) ([]LedgerRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: ledger: %w", err)
	}
	endsWithNewline := len(data) > 0 && data[len(data)-1] == '\n'
	lines := strings.Split(string(data), "\n")
	var recs []LedgerRecord
	for i, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		var rec LedgerRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			if i == len(lines)-1 && !endsWithNewline {
				break // torn tail from an interrupted append: drop it
			}
			return nil, fmt.Errorf("obs: ledger %s record %d: %w", path, len(recs)+1, err)
		}
		recs = append(recs, rec)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("obs: ledger %s holds no records", path)
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time < recs[j].Time })
	return recs, nil
}
