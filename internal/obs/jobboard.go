package obs

// JobBoard is the live board of the experiment scheduler's jobs: every
// replay cell and trace generation the scheduler fans out is enqueued here,
// moved to running when a worker picks it up, and finished with its outcome.
// The live server's /jobs endpoint serializes the board, turning a
// multi-hour sweep from a black box into a watchable queue.
//
// Finished-job retention is bounded: once more than the retention cap of
// jobs have finished, the oldest finished entries are evicted from the
// detailed list (their outcomes stay counted in the Done/Failed summary
// counters), so a long-lived serve or coordinator process holds at most the
// cap plus the live jobs no matter how many sweeps it has run. Queued and
// running jobs are never evicted.
//
// A nil *JobBoard is a no-op (Enqueue returns an invalid id that the other
// methods ignore), so the scheduler publishes unconditionally.

import (
	"sort"
	"sync"
	"time"
)

// Job states, as reported by JobStatus.State.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
	// JobCached marks a job satisfied from the result cache without being
	// computed. It is terminal like JobDone but reported separately, so a
	// warm sweep's near-zero cell durations don't skew lane throughput or
	// ETA estimates derived from genuinely computed cells.
	JobCached = "cached"
)

// DefaultBoardRetention is how many finished jobs a board keeps in detail
// before evicting the oldest into the summary counters.
const DefaultBoardRetention = 4096

type boardJob struct {
	label    string
	state    string
	queued   time.Time
	started  time.Time
	finished time.Time
	err      string
}

// JobBoard tracks the lifecycle of scheduler jobs. Safe for concurrent use.
type JobBoard struct {
	mu     sync.Mutex
	retain int
	nextID int
	jobs   map[int]*boardJob

	// finished[finHead:] lists finished job ids oldest-first — the eviction
	// queue. The head index avoids an O(retain) slide per eviction; the
	// backing array is compacted once the dead prefix outgrows the cap.
	finished []int
	finHead  int

	evictedDone   int
	evictedFailed int
	evictedCached int
}

// NewJobBoard creates an empty board with the default finished-job
// retention.
func NewJobBoard() *JobBoard {
	return &JobBoard{retain: DefaultBoardRetention, jobs: make(map[int]*boardJob)}
}

// SetRetention bounds how many finished jobs the board keeps in detail
// (minimum 1). It evicts immediately if the board already holds more.
func (b *JobBoard) SetRetention(n int) {
	if b == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.retain = n
	b.evictLocked()
}

// Enqueue registers a job in the queued state and returns its id. On a nil
// board it returns -1, which Start and Finish ignore.
func (b *JobBoard) Enqueue(label string) int {
	if b == nil {
		return -1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.nextID
	b.nextID++
	b.jobs[id] = &boardJob{label: label, state: JobQueued, queued: time.Now()}
	return id
}

// Start marks the job as running. Safe on a nil board and an invalid id.
func (b *JobBoard) Start(id int) {
	if b == nil || id < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if j, ok := b.jobs[id]; ok && j.state == JobQueued {
		j.state = JobRunning
		j.started = time.Now()
	}
}

// Finish marks the job as done, or failed when err is non-nil. Safe on a nil
// board and an invalid id.
func (b *JobBoard) Finish(id int, err error) {
	if b == nil || id < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	j, ok := b.jobs[id]
	if !ok || j.state == JobDone || j.state == JobFailed || j.state == JobCached {
		return
	}
	j.finished = time.Now()
	if j.started.IsZero() {
		j.started = j.finished
	}
	if err != nil {
		j.state = JobFailed
		j.err = err.Error()
	} else {
		j.state = JobDone
	}
	b.finished = append(b.finished, id)
	b.evictLocked()
}

// FinishCached marks the job as satisfied from the result cache. Safe on a
// nil board and an invalid id.
func (b *JobBoard) FinishCached(id int) {
	if b == nil || id < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	j, ok := b.jobs[id]
	if !ok || j.state == JobDone || j.state == JobFailed || j.state == JobCached {
		return
	}
	j.finished = time.Now()
	if j.started.IsZero() {
		j.started = j.finished
	}
	j.state = JobCached
	b.finished = append(b.finished, id)
	b.evictLocked()
}

// evictLocked drops the oldest finished jobs past the retention cap,
// folding their outcomes into the summary counters. Caller holds b.mu.
func (b *JobBoard) evictLocked() {
	for len(b.finished)-b.finHead > b.retain {
		id := b.finished[b.finHead]
		b.finHead++
		if j, ok := b.jobs[id]; ok {
			switch j.state {
			case JobFailed:
				b.evictedFailed++
			case JobCached:
				b.evictedCached++
			default:
				b.evictedDone++
			}
			delete(b.jobs, id)
		}
	}
	if b.finHead > b.retain && b.finHead*2 > len(b.finished) {
		b.finished = append(b.finished[:0], b.finished[b.finHead:]...)
		b.finHead = 0
	}
}

// JobStatus is one job's externally visible state.
type JobStatus struct {
	ID          int     `json:"id"`
	Label       string  `json:"label"`
	State       string  `json:"state"`
	WallSeconds float64 `json:"wall_seconds"` // run time so far (running) or total (finished)
	Err         string  `json:"error,omitempty"`
}

// BoardStatus is a point-in-time view of the whole board, served as JSON by
// the live server's /jobs endpoint. Done and Failed count every job ever
// finished, including those evicted from the detailed Jobs list; Evicted
// says how many of them the list no longer shows.
type BoardStatus struct {
	Queued  int         `json:"queued"`
	Running int         `json:"running"`
	Done    int         `json:"done"`
	Failed  int         `json:"failed"`
	Cached  int         `json:"cached,omitempty"`
	Evicted int         `json:"evicted,omitempty"`
	Jobs    []JobStatus `json:"jobs"`
}

// Status snapshots every retained job on the board in enqueue order. Safe on
// a nil board (returns an empty status).
func (b *JobBoard) Status() BoardStatus {
	st := BoardStatus{Jobs: []JobStatus{}}
	if b == nil {
		return st
	}
	now := time.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	st.Done = b.evictedDone
	st.Failed = b.evictedFailed
	st.Cached = b.evictedCached
	st.Evicted = b.evictedDone + b.evictedFailed + b.evictedCached
	ids := make([]int, 0, len(b.jobs))
	for id := range b.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		j := b.jobs[id]
		js := JobStatus{ID: id, Label: j.label, State: j.state, Err: j.err}
		switch j.state {
		case JobQueued:
			st.Queued++
		case JobRunning:
			st.Running++
			js.WallSeconds = now.Sub(j.started).Seconds()
		case JobDone:
			st.Done++
			js.WallSeconds = j.finished.Sub(j.started).Seconds()
		case JobFailed:
			st.Failed++
			js.WallSeconds = j.finished.Sub(j.started).Seconds()
		case JobCached:
			st.Cached++
			js.WallSeconds = j.finished.Sub(j.started).Seconds()
		}
		st.Jobs = append(st.Jobs, js)
	}
	return st
}
