package obs

// JobBoard is the live board of the experiment scheduler's jobs: every
// replay cell and trace generation the scheduler fans out is enqueued here,
// moved to running when a worker picks it up, and finished with its outcome.
// The live server's /jobs endpoint serializes the board, turning a
// multi-hour sweep from a black box into a watchable queue.
//
// A nil *JobBoard is a no-op (Enqueue returns an invalid id that the other
// methods ignore), so the scheduler publishes unconditionally.

import (
	"sync"
	"time"
)

// Job states, as reported by JobStatus.State.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

type boardJob struct {
	label    string
	state    string
	queued   time.Time
	started  time.Time
	finished time.Time
	err      string
}

// JobBoard tracks the lifecycle of scheduler jobs. Safe for concurrent use.
type JobBoard struct {
	mu   sync.Mutex
	jobs []boardJob
}

// NewJobBoard creates an empty board.
func NewJobBoard() *JobBoard { return &JobBoard{} }

// Enqueue registers a job in the queued state and returns its id. On a nil
// board it returns -1, which Start and Finish ignore.
func (b *JobBoard) Enqueue(label string) int {
	if b == nil {
		return -1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.jobs = append(b.jobs, boardJob{label: label, state: JobQueued, queued: time.Now()})
	return len(b.jobs) - 1
}

// Start marks the job as running. Safe on a nil board and an invalid id.
func (b *JobBoard) Start(id int) {
	if b == nil || id < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if id < len(b.jobs) {
		b.jobs[id].state = JobRunning
		b.jobs[id].started = time.Now()
	}
}

// Finish marks the job as done, or failed when err is non-nil. Safe on a nil
// board and an invalid id.
func (b *JobBoard) Finish(id int, err error) {
	if b == nil || id < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if id >= len(b.jobs) {
		return
	}
	j := &b.jobs[id]
	j.finished = time.Now()
	if j.started.IsZero() {
		j.started = j.finished
	}
	if err != nil {
		j.state = JobFailed
		j.err = err.Error()
	} else {
		j.state = JobDone
	}
}

// JobStatus is one job's externally visible state.
type JobStatus struct {
	ID          int     `json:"id"`
	Label       string  `json:"label"`
	State       string  `json:"state"`
	WallSeconds float64 `json:"wall_seconds"` // run time so far (running) or total (finished)
	Err         string  `json:"error,omitempty"`
}

// BoardStatus is a point-in-time view of the whole board, served as JSON by
// the live server's /jobs endpoint.
type BoardStatus struct {
	Queued  int         `json:"queued"`
	Running int         `json:"running"`
	Done    int         `json:"done"`
	Failed  int         `json:"failed"`
	Jobs    []JobStatus `json:"jobs"`
}

// Status snapshots every job on the board in enqueue order. Safe on a nil
// board (returns an empty status).
func (b *JobBoard) Status() BoardStatus {
	st := BoardStatus{Jobs: []JobStatus{}}
	if b == nil {
		return st
	}
	now := time.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.jobs {
		j := &b.jobs[i]
		js := JobStatus{ID: i, Label: j.label, State: j.state, Err: j.err}
		switch j.state {
		case JobQueued:
			st.Queued++
		case JobRunning:
			st.Running++
			js.WallSeconds = now.Sub(j.started).Seconds()
		case JobDone:
			st.Done++
			js.WallSeconds = j.finished.Sub(j.started).Seconds()
		case JobFailed:
			st.Failed++
			js.WallSeconds = j.finished.Sub(j.started).Seconds()
		}
		st.Jobs = append(st.Jobs, js)
	}
	return st
}
