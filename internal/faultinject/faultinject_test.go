package faultinject

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Fire("anywhere"); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if in.Fired("anywhere") != 0 || in.Seen("anywhere") != 0 {
		t.Fatal("nil injector reported activity")
	}
}

func TestErrorFault(t *testing.T) {
	in := New()
	in.Arm("cell.run", Fault{Kind: KindError, Times: 2})
	for i := 1; i <= 2; i++ {
		err := in.Fire("cell.run")
		var inj *InjectedError
		if !errors.As(err, &inj) {
			t.Fatalf("firing %d: err = %v, want *InjectedError", i, err)
		}
		if inj.Site != "cell.run" || inj.N != i {
			t.Fatalf("firing %d: %+v", i, inj)
		}
	}
	// Disarmed after Times firings.
	if err := in.Fire("cell.run"); err != nil {
		t.Fatalf("fault fired past Times: %v", err)
	}
	if got := in.Fired("cell.run"); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
	if got := in.Seen("cell.run"); got != 3 {
		t.Fatalf("Seen = %d, want 3", got)
	}
	// Unarmed sites never fire.
	if err := in.Fire("other.site"); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
}

func TestPanicFault(t *testing.T) {
	in := New()
	in.Arm("boom", Fault{Kind: KindPanic})
	defer func() {
		r := recover()
		inj, ok := r.(*InjectedError)
		if !ok || inj.Kind != KindPanic || inj.Site != "boom" {
			t.Fatalf("recover() = %v, want *InjectedError at boom", r)
		}
	}()
	in.Fire("boom")
	t.Fatal("armed panic did not fire")
}

func TestSlowFault(t *testing.T) {
	in := New()
	in.Arm("lag", Fault{Kind: KindSlow, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := in.Fire("lag"); err != nil {
		t.Fatalf("slow fault returned error: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("slow fault returned after %v, want >= 20ms", d)
	}
}

func TestArmDefaultsTimesToOne(t *testing.T) {
	in := New()
	in.Arm("once", Fault{Kind: KindError})
	if err := in.Fire("once"); err == nil {
		t.Fatal("fault did not fire")
	}
	if err := in.Fire("once"); err != nil {
		t.Fatalf("Times=0 fault fired twice: %v", err)
	}
}

func TestConcurrentFire(t *testing.T) {
	in := New()
	in.Arm("racy", Fault{Kind: KindError, Times: 10})
	done := make(chan int)
	for g := 0; g < 8; g++ {
		go func() {
			n := 0
			for i := 0; i < 100; i++ {
				if in.Fire("racy") != nil {
					n++
				}
			}
			done <- n
		}()
	}
	total := 0
	for g := 0; g < 8; g++ {
		total += <-done
	}
	if total != 10 {
		t.Fatalf("fault fired %d times, want exactly 10", total)
	}
}

func TestCorruptByteDeterministic(t *testing.T) {
	orig := bytes.Repeat([]byte{0xAA}, 64)
	a := append([]byte(nil), orig...)
	b := append([]byte(nil), orig...)
	offA := CorruptByte("trace.footer", a)
	offB := CorruptByte("trace.footer", b)
	if offA != offB || !bytes.Equal(a, b) {
		t.Fatal("CorruptByte is not deterministic for equal inputs")
	}
	if bytes.Equal(a, orig) {
		t.Fatal("CorruptByte did not change the buffer")
	}
	diff := 0
	for i := range a {
		if x := a[i] ^ orig[i]; x != 0 {
			diff++
			if x&(x-1) != 0 {
				t.Fatalf("byte %d changed by more than one bit: %02x -> %02x", i, orig[i], a[i])
			}
		}
	}
	if diff != 1 {
		t.Fatalf("CorruptByte changed %d bytes, want 1", diff)
	}
	if off := CorruptByte("x", nil); off != -1 {
		t.Fatalf("CorruptByte(nil) = %d, want -1", off)
	}
}
