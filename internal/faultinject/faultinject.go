// Package faultinject is the deterministic fault-injection harness behind
// the robustness tests: it lets a test arm panics, errors, artificial
// slowness, and byte corruption at named sites inside the experiment
// pipeline, then assert that the surrounding layers contain the failure —
// a panicking cell must not crash the sweep, a slow cell must be cut off by
// the caller's context, and corrupted artifact bytes must be rejected by
// checksums rather than silently deserialized.
//
// Injection is fully deterministic: a fault fires on exactly the first
// Times calls to Fire for its site (no randomness, no time dependence), and
// CorruptByte flips a byte chosen by an FNV hash of the site name, so every
// run of a fault-injection test exercises the identical failure.
//
// A nil *Injector is inert and every hook is nil-safe, so production code
// paths carry injection sites at the cost of a nil check.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// Kind selects what happens when an armed fault fires.
type Kind int

const (
	// KindError makes Fire return an *InjectedError.
	KindError Kind = iota
	// KindPanic makes Fire panic with an *InjectedError.
	KindPanic
	// KindSlow makes Fire sleep for the fault's Delay, then return nil —
	// the "livelocked cell" simulation used by timeout and watchdog tests.
	KindSlow
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindSlow:
		return "slow"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// InjectedError is the error (or panic value) produced by a fired fault.
// Tests unwrap to it with errors.As to prove a failure travelled through the
// pipeline's containment layers intact.
type InjectedError struct {
	Site string
	Kind Kind
	N    int // 1-based count of firings at this site
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected %s at %q (firing %d)", e.Kind, e.Site, e.N)
}

// Fault arms one failure mode at a site.
type Fault struct {
	Kind Kind
	// Times is how many Fire calls trigger the fault before it disarms;
	// 0 means 1 (fire once).
	Times int
	// Delay is the sleep duration for KindSlow faults.
	Delay time.Duration
}

type armed struct {
	fault Fault
	fired int // total Fire calls that triggered
	seen  int // total Fire calls, triggered or not
}

// Injector holds the armed faults of one test. The zero value and nil are
// both usable (no faults armed).
type Injector struct {
	mu    sync.Mutex
	sites map[string]*armed
}

// New returns an empty injector.
func New() *Injector { return &Injector{} }

// Arm installs f at site, replacing any previous fault there.
func (in *Injector) Arm(site string, f Fault) {
	if f.Times == 0 {
		f.Times = 1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.sites == nil {
		in.sites = make(map[string]*armed)
	}
	in.sites[site] = &armed{fault: f}
}

// Fire triggers the fault armed at site, if any: it panics, returns an
// error, or sleeps according to the fault's Kind. Once a fault has fired
// Times times it disarms and Fire returns nil. Nil-safe.
func (in *Injector) Fire(site string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	a := in.sites[site]
	if a == nil {
		in.mu.Unlock()
		return nil
	}
	a.seen++
	if a.fired >= a.fault.Times {
		in.mu.Unlock()
		return nil
	}
	a.fired++
	err := &InjectedError{Site: site, Kind: a.fault.Kind, N: a.fired}
	delay := a.fault.Delay
	in.mu.Unlock()

	switch err.Kind {
	case KindPanic:
		panic(err)
	case KindSlow:
		time.Sleep(delay)
		return nil
	}
	return err
}

// Fired reports how many times the fault at site has triggered. Nil-safe.
func (in *Injector) Fired(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if a := in.sites[site]; a != nil {
		return a.fired
	}
	return 0
}

// Seen reports how many times Fire was called for site (whether or not the
// fault still triggered). Nil-safe.
func (in *Injector) Seen(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if a := in.sites[site]; a != nil {
		return a.seen
	}
	return 0
}

// CorruptByte deterministically flips one bit of b in place and returns the
// affected offset: the byte index and bit are chosen by an FNV-64a hash of
// site, so the same site name always corrupts the same position of an
// equally sized buffer. It returns -1 (and leaves b untouched) when b is
// empty.
func CorruptByte(site string, b []byte) int {
	if len(b) == 0 {
		return -1
	}
	h := fnv.New64a()
	h.Write([]byte(site))
	sum := h.Sum64()
	off := int(sum % uint64(len(b)))
	b[off] ^= 1 << (sum >> 8 & 7)
	return off
}
