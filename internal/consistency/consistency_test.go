// The tests in this file encode Figure 1 of the paper: the completion-order
// restrictions each consistency model places on accesses from one processor.
package consistency

import (
	"testing"
	"testing/quick"

	"dynsched/internal/isa"
)

func TestStrings(t *testing.T) {
	for _, m := range Models {
		got, err := ParseModel(m.String())
		if err != nil || got != m {
			t.Errorf("ParseModel(%v.String()) = %v, %v", m, got, err)
		}
	}
	if _, err := ParseModel("XX"); err == nil {
		t.Error("ParseModel accepted junk")
	}
}

func TestKindOf(t *testing.T) {
	cases := []struct {
		op   isa.Op
		want Kind
	}{
		{isa.OpLd, Load},
		{isa.OpSt, Store},
		{isa.OpLock, Acquire},
		{isa.OpWaitEv, Acquire},
		{isa.OpUnlock, Release},
		{isa.OpSetEv, Release},
		{isa.OpBarrier, Acquire | Release},
		{isa.OpAdd, 0},
		{isa.OpBeqz, 0},
	}
	for _, c := range cases {
		if got := KindOf(c.op); got != c.want {
			t.Errorf("KindOf(%v) = %v, want %v", c.op, got, c.want)
		}
	}
}

// --- SC: serial order (Figure 1, leftmost column) -------------------------

func TestSCIsSerial(t *testing.T) {
	// Any pending access blocks any new access.
	for _, k := range []Kind{Load, Store, Acquire, Release} {
		if !MayIssue(SC, k, Pending{}) {
			t.Errorf("SC: %v blocked with nothing pending", k)
		}
		for _, p := range []Pending{{Loads: 1}, {Stores: 1}, {Acquires: 1}, {Releases: 1}} {
			if MayIssue(SC, k, p) {
				t.Errorf("SC: %v allowed to issue past pending %+v", k, p)
			}
		}
	}
}

// --- PC: reads bypass writes (Figure 1, second column) ---------------------

func TestPCReadBypassesWrite(t *testing.T) {
	if !MayIssue(PC, Load, Pending{Stores: 3}) {
		t.Error("PC: read must be able to bypass pending writes")
	}
	if !MayIssue(PC, Load, Pending{Stores: 1, Releases: 1}) {
		t.Error("PC: read must bypass pending releases (writes) too")
	}
}

func TestPCReadsSerialized(t *testing.T) {
	if MayIssue(PC, Load, Pending{Loads: 1}) {
		t.Error("PC: read must wait for older reads")
	}
	if MayIssue(PC, Load, Pending{Acquires: 1}) {
		t.Error("PC: read must wait for older acquire (a read under PC)")
	}
}

func TestPCWritesWaitForEverything(t *testing.T) {
	if MayIssue(PC, Store, Pending{Loads: 1}) {
		t.Error("PC: write must wait for older reads")
	}
	if MayIssue(PC, Store, Pending{Stores: 1}) {
		t.Error("PC: write must wait for older writes")
	}
	if !MayIssue(PC, Store, Pending{}) {
		t.Error("PC: write with empty pipeline blocked")
	}
}

// --- WO: ordering only at sync points (Figure 1, third column) ------------

func TestWODataOverlapsBetweenSyncs(t *testing.T) {
	if !MayIssue(WO, Load, Pending{Loads: 2, Stores: 3}) {
		t.Error("WO: data read must overlap with pending data accesses")
	}
	if !MayIssue(WO, Store, Pending{Loads: 2, Stores: 3}) {
		t.Error("WO: data write must overlap with pending data accesses")
	}
}

func TestWOSyncIsFence(t *testing.T) {
	for _, k := range []Kind{Acquire, Release, Acquire | Release} {
		if MayIssue(WO, k, Pending{Loads: 1}) {
			t.Errorf("WO: sync %v must wait for older data accesses", k)
		}
	}
	if MayIssue(WO, Load, Pending{Acquires: 1}) {
		t.Error("WO: data access must wait for older sync")
	}
	if MayIssue(WO, Store, Pending{Releases: 1}) {
		t.Error("WO: data access must wait for older release under WO")
	}
}

// --- RC: acquire/release asymmetry (Figure 1, rightmost column) -----------

func TestRCDataBypassesRelease(t *testing.T) {
	// The defining relaxation over WO: accesses after a release need not
	// wait for it.
	if !MayIssue(RC, Load, Pending{Releases: 1}) {
		t.Error("RC: read must overlap with a pending release")
	}
	if !MayIssue(RC, Store, Pending{Releases: 1}) {
		t.Error("RC: write must overlap with a pending release")
	}
}

func TestRCAcquireBlocksYounger(t *testing.T) {
	for _, k := range []Kind{Load, Store, Acquire, Release} {
		if MayIssue(RC, k, Pending{Acquires: 1}) {
			t.Errorf("RC: %v must wait for pending acquire", k)
		}
	}
}

func TestRCReleaseWaitsForOlder(t *testing.T) {
	if MayIssue(RC, Release, Pending{Loads: 1}) {
		t.Error("RC: release must wait for older reads")
	}
	if MayIssue(RC, Release, Pending{Stores: 1}) {
		t.Error("RC: release must wait for older writes")
	}
	if !MayIssue(RC, Release, Pending{}) {
		t.Error("RC: release with empty pipeline blocked")
	}
}

func TestRCDataOverlapsData(t *testing.T) {
	if !MayIssue(RC, Load, Pending{Loads: 5, Stores: 5}) {
		t.Error("RC: reads must overlap with pending data accesses")
	}
	if !MayIssue(RC, Store, Pending{Loads: 5, Stores: 5}) {
		t.Error("RC: writes must overlap with pending data accesses")
	}
}

func TestRCSyncSCAmongThemselves(t *testing.T) {
	if MayIssue(RC, Acquire, Pending{Releases: 1}) {
		t.Error("RCsc: acquire must wait for older release")
	}
	if !MayIssue(RC, Acquire, Pending{Loads: 3}) {
		t.Error("RC: acquire need not wait for older data reads")
	}
}

// --- cross-model relations -------------------------------------------------

// Property: the models form a strictness hierarchy on every data-access
// decision: anything SC allows, PC allows; anything PC allows for data, WO
// and RC... (WO and PC are incomparable in general, but RC is weaker than
// WO, and SC is the strictest of all). We check SC⊆PC, SC⊆WO, WO⊆RC.
func TestStrictnessHierarchy(t *testing.T) {
	f := func(kSeed uint8, loads, stores, acqs, rels uint8) bool {
		kinds := []Kind{Load, Store, Acquire, Release, Acquire | Release}
		k := kinds[int(kSeed)%len(kinds)]
		p := Pending{
			Loads:    int(loads % 4),
			Stores:   int(stores % 4),
			Acquires: int(acqs % 4),
			Releases: int(rels % 4),
		}
		if MayIssue(SC, k, p) && !MayIssue(PC, k, p) {
			return false
		}
		if MayIssue(SC, k, p) && !MayIssue(WO, k, p) {
			return false
		}
		if MayIssue(WO, k, p) && !MayIssue(RC, k, p) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: with nothing pending, every model allows every access.
func TestEmptyPipelineAlwaysIssues(t *testing.T) {
	for _, m := range Models {
		for _, k := range []Kind{Load, Store, Acquire, Release, Acquire | Release} {
			if !MayIssue(m, k, Pending{}) {
				t.Errorf("%v: %v blocked on empty pipeline", m, k)
			}
		}
	}
}

func TestLoadBypass(t *testing.T) {
	if AllowsLoadBypass(SC) {
		t.Error("SC must not allow store-buffer bypass")
	}
	for _, m := range []Model{PC, WO, RC} {
		if !AllowsLoadBypass(m) {
			t.Errorf("%v must allow store-buffer bypass", m)
		}
	}
}
