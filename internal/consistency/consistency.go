// Package consistency encodes the memory consistency models of §2.1 of the
// paper — sequential consistency (SC), processor consistency (PC), weak
// ordering (WO), and release consistency (RC) — as issue-ordering predicates
// used by every processor model.
//
// The encoding follows the "straightforward implementations" of Figure 1: a
// memory or synchronization access may be issued to the memory system only
// when the accesses it is ordered after have performed. The predicate
// MayIssue receives a summary of the older not-yet-performed accesses of the
// same processor and decides whether a new access of a given kind may issue.
package consistency

import (
	"fmt"

	"dynsched/internal/isa"
)

// Model identifies a memory consistency model.
type Model uint8

const (
	// SC is Lamport's sequential consistency: accesses from one processor
	// perform strictly in program order.
	SC Model = iota
	// PC is processor consistency (Goodman): reads may bypass older writes,
	// but reads are ordered after older reads and writes after everything.
	PC
	// WO is weak ordering (Dubois et al.): synchronization accesses are
	// ordered after all older accesses and before all younger ones; data
	// accesses between synchronization points may overlap freely.
	WO
	// RC is release consistency (Gharachorloo et al.): like WO, but only
	// acquires block younger accesses and only releases wait for older
	// accesses; special accesses are sequentially consistent among
	// themselves (the RCsc variant).
	RC
)

// Models lists all supported models in presentation order.
var Models = []Model{SC, PC, WO, RC}

// String returns the conventional abbreviation.
func (m Model) String() string {
	switch m {
	case SC:
		return "SC"
	case PC:
		return "PC"
	case WO:
		return "WO"
	case RC:
		return "RC"
	}
	return fmt.Sprintf("Model(%d)", uint8(m))
}

// ParseModel converts an abbreviation to a Model.
func ParseModel(s string) (Model, error) {
	for _, m := range Models {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("consistency: unknown model %q", s)
}

// Kind classifies an access for ordering purposes. It is a bit set: a
// barrier is both an acquire and a release.
type Kind uint8

const (
	Load    Kind = 1 << iota // data read
	Store                    // data write
	Acquire                  // acquire synchronization (lock, event wait, barrier)
	Release                  // release synchronization (unlock, event set, barrier)
)

// KindOf maps an opcode to its ordering kind. Non-memory, non-sync opcodes
// return 0.
func KindOf(op isa.Op) Kind {
	switch op {
	case isa.OpLd:
		return Load
	case isa.OpSt:
		return Store
	case isa.OpLock, isa.OpWaitEv:
		return Acquire
	case isa.OpUnlock, isa.OpSetEv:
		return Release
	case isa.OpBarrier:
		return Acquire | Release
	}
	return 0
}

// reads reports whether the access behaves as a read when the model draws
// no synchronization distinction (SC and PC treat an acquire as a read and
// a release as a write).
func (k Kind) reads() bool { return k&(Load|Acquire) != 0 }

// writes reports whether the access behaves as a write under SC/PC.
func (k Kind) writes() bool { return k&(Store|Release) != 0 }

// sync reports whether the access is a synchronization access.
func (k Kind) sync() bool { return k&(Acquire|Release) != 0 }

// Pending summarizes the older accesses of the same processor that have
// been decoded (are in flight) but have not yet performed.
type Pending struct {
	Loads    int // older unperformed data reads
	Stores   int // older unperformed data writes
	Acquires int // older unperformed acquires
	Releases int // older unperformed releases (a barrier counts as both)
}

// Total returns the total number of older unperformed accesses.
func (p Pending) Total() int { return p.Loads + p.Stores + p.Acquires + p.Releases }

func (p Pending) readsPending() int { return p.Loads + p.Acquires }
func (p Pending) syncPending() int  { return p.Acquires + p.Releases }

// MayIssue reports whether an access of kind k may be issued to the memory
// system given the summary of older unperformed accesses, under model m.
// This is the Figure 1 ordering relation.
func MayIssue(m Model, k Kind, p Pending) bool {
	switch m {
	case SC:
		// Every access waits for all older accesses.
		return p.Total() == 0
	case PC:
		// Reads wait for older reads only (they bypass older writes);
		// writes wait for everything. A barrier is read+write: use the
		// stricter rule.
		if k.writes() {
			return p.Total() == 0
		}
		return p.readsPending() == 0
	case WO:
		// Sync accesses wait for everything; data accesses wait only for
		// older sync accesses.
		if k.sync() {
			return p.Total() == 0
		}
		return p.syncPending() == 0
	case RC:
		// Everything waits for older acquires. Releases additionally wait
		// for all older accesses. Special accesses are kept sequentially
		// consistent among themselves (RCsc), so an acquire also waits for
		// older releases.
		if p.Acquires > 0 {
			return false
		}
		if k&Release != 0 {
			return p.Total() == 0
		}
		if k&Acquire != 0 {
			return p.syncPending() == 0
		}
		return true
	}
	return false
}

// AllowsLoadBypass reports whether the model permits a load to bypass
// pending writes in the store buffer (with dependence checking providing
// the correct value, §3.1). SC forbids it; the relaxed models allow it.
func AllowsLoadBypass(m Model) bool { return m != SC }

// HidesWriteLatency reports whether the model lets a simple write-buffered
// processor proceed past an incomplete write: under SC the next access may
// not issue until the write performs, so write latency is exposed.
// Used by documentation-oriented assertions in tests.
func HidesWriteLatency(m Model) bool { return m != SC }
