package cpu

// Edge-case robustness tests for all processor models: degenerate traces,
// minimal windows, and buffer-exhaustion paths.

import (
	"testing"

	"dynsched/internal/consistency"
	"dynsched/internal/trace"
)

func TestEmptyTrace(t *testing.T) {
	tr := &trace.Trace{App: "empty", MissPenalty: 50}
	if got := RunBase(tr).Breakdown.Total(); got != 0 {
		t.Errorf("BASE on empty trace = %d cycles", got)
	}
	for _, f := range []func(*trace.Trace, Config) (Result, error){RunSSBR, RunSS, RunDS} {
		res, err := f(tr, Config{Model: consistency.RC})
		if err != nil {
			t.Fatal(err)
		}
		if res.Breakdown.Total() != 0 {
			t.Errorf("empty trace produced %d cycles", res.Breakdown.Total())
		}
	}
}

func TestHaltOnlyTrace(t *testing.T) {
	tr := newTB().halt()
	for _, static := range []func(*trace.Trace, Config) (Result, error){RunSSBR, RunSS} {
		res, err := static(tr, Config{Model: consistency.SC})
		if err != nil {
			t.Fatal(err)
		}
		if res.Breakdown.Total() != 1 || res.Breakdown.Busy != 1 {
			t.Errorf("halt-only trace (static): %v", res.Breakdown)
		}
	}
	// The DS pipeline pays its decode→dispatch→retire fill (≤3 cycles).
	res, err := RunDS(tr, Config{Model: consistency.SC})
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.Busy != 1 || res.Breakdown.Total() > 3 {
		t.Errorf("halt-only trace (DS): %v", res.Breakdown)
	}
}

func TestDSWindowOne(t *testing.T) {
	// A window of 1 degenerates to fully serial execution — every
	// instruction decodes, executes, and retires alone.
	b := newTB()
	b.load(2, 1, 64, true)
	b.alu(3, 2, 2)
	b.load(4, 1, 128, true)
	tr := b.halt()
	res, err := RunDS(tr, cfg(consistency.RC, 1))
	if err != nil {
		t.Fatal(err)
	}
	base := RunBase(tr)
	// No overlap is possible; total within a few pipeline cycles of BASE.
	if res.Breakdown.Total() < base.Breakdown.Total() {
		t.Errorf("window 1 total %d below BASE %d: impossible overlap", res.Breakdown.Total(), base.Breakdown.Total())
	}
	if res.Breakdown.Total() > base.Breakdown.Total()+10 {
		t.Errorf("window 1 total %d far above BASE %d", res.Breakdown.Total(), base.Breakdown.Total())
	}
}

func TestSSReadBufferExhaustion(t *testing.T) {
	// More outstanding loads than the read buffer holds: the processor
	// stalls on buffer space even though no value is used.
	b := newTB()
	for i := 0; i < 40; i++ {
		b.load(uint8(2+(i%8)), 1, uint64(i)*64, true)
	}
	tr := b.halt()
	deep, err := RunSS(tr, Config{Model: consistency.RC, ReadBufDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := RunSS(tr, Config{Model: consistency.RC, ReadBufDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if shallow.Breakdown.Total() <= deep.Breakdown.Total() {
		t.Errorf("2-deep read buffer total %d not above 64-deep total %d",
			shallow.Breakdown.Total(), deep.Breakdown.Total())
	}
}

func TestSSBRWriteBufferDrainAtEnd(t *testing.T) {
	// A trace ending in write misses: execution time must include the
	// drain, charged to write stall.
	b := newTB()
	b.store(1, 2, 64, true)
	b.store(1, 2, 128, true)
	tr := b.halt()
	res, err := RunSSBR(tr, Config{Model: consistency.RC})
	if err != nil {
		t.Fatal(err)
	}
	// Two overlapped 50-cycle writes still take ~51+ cycles beyond the 3
	// instructions.
	if res.Breakdown.Total() < 50 {
		t.Errorf("final writes not drained: total = %d", res.Breakdown.Total())
	}
	if res.Breakdown.Write == 0 {
		t.Error("drain cycles not charged to write")
	}
}

func TestDSTraceEndingInStore(t *testing.T) {
	b := newTB()
	b.alu(1, 0, 0)
	b.store(1, 2, 64, true)
	tr := b.halt()
	res, err := RunDS(tr, cfg(consistency.RC, 16))
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.Total() < 50 {
		t.Errorf("store-buffer drain missing: total = %d", res.Breakdown.Total())
	}
}

func TestAllModelsOnAllClassMix(t *testing.T) {
	// One of everything, through every model/arch pair: exercises each
	// opcode-class path without asserting exact timings.
	b := newTB()
	b.alu(1, 0, 0)
	b.load(2, 1, 64, true)
	b.store(1, 2, 128, false)
	b.branch(3)
	b.lock(256, 5, 50)
	b.load(4, 2, 192, false)
	b.unlock(256, 1)
	b.barrier(25, 50)
	b.alu(5, 4, 2)
	tr := b.halt()
	base := RunBase(tr)
	for _, m := range consistency.Models {
		for _, arch := range []string{"SSBR", "SS", "DS"} {
			var res Result
			var err error
			switch arch {
			case "SSBR":
				res, err = RunSSBR(tr, Config{Model: m})
			case "SS":
				res, err = RunSS(tr, Config{Model: m})
			case "DS":
				res, err = RunDS(tr, Config{Model: m, Window: 8})
			}
			if err != nil {
				t.Fatalf("%v/%s: %v", m, arch, err)
			}
			if res.Breakdown.Total() > base.Breakdown.Total() {
				t.Errorf("%v/%s total %d exceeds BASE %d", m, arch, res.Breakdown.Total(), base.Breakdown.Total())
			}
			if res.Breakdown.Sync < 25 {
				t.Errorf("%v/%s sync %d below barrier wait 25", m, arch, res.Breakdown.Sync)
			}
		}
	}
}

func TestContendedTraceLatenciesAboveBase(t *testing.T) {
	// Traces generated under finite bandwidth carry latencies above the
	// penalty; the models must handle them.
	b := newTB()
	b.load(2, 1, 64, true)
	b.tr.Events[0].Latency = 180 // queued miss
	b.alu(3, 2, 2)
	tr := b.halt()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := RunDS(tr, cfg(consistency.RC, 16))
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.Total() < 180 {
		t.Errorf("long-latency miss not honoured: total = %d", res.Breakdown.Total())
	}
}
