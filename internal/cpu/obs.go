package cpu

// Metrics publication shared by the processor models. Each Run* function
// calls publishResult on exit when Config.Metrics is set; occupancy and
// delay histograms are observed live inside the cycle loops.

import "dynsched/internal/obs"

// Histogram bucket bounds for the occupancy metrics. Occupancies are small
// integers, so power-of-two buckets up to the largest window give useful
// resolution everywhere.
var (
	occupancyBuckets = []uint64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}
	bufferBuckets    = []uint64{0, 1, 2, 4, 8, 16, 32}
	delayBuckets     = []uint64{0, 10, 20, 30, 40, 50, 100}
)

// PublishResult registers a replay's aggregate outcome into reg under
// prefix: the Figure 3 stall breakdown as counters plus instruction,
// mispredict, and prefetch totals. It is exported because the BASE model
// takes no Config, so its callers publish through this helper directly.
// Safe with a nil registry.
func PublishResult(reg *obs.Registry, prefix string, res Result) {
	if reg == nil {
		return
	}
	b := res.Breakdown
	set := func(name string, v uint64) { reg.Counter(obs.Prefixed(prefix, name)).Set(v) }
	set("cycles.total", b.Total())
	set("cycles.busy", b.Busy)
	set("stall.sync", b.Sync)
	set("stall.read", b.Read)
	set("stall.write", b.Write)
	set("stall.branch", b.Branch)
	set("stall.other", b.Other)
	set("instructions", res.Instructions)
	set("branch.mispredicts", res.Mispredicts)
	set("prefetches", res.Prefetches)
	if res.AvgOccupancy > 0 {
		reg.Gauge(obs.Prefixed(prefix, "rob.avg_occupancy")).Set(res.AvgOccupancy)
	}
	// Derived per-instruction rates under the names the run ledger and
	// regression diff track: cpi (total cycles per instruction) and mcpi
	// (memory stall cycles — read + write — per instruction, the paper's
	// latency-hiding figure of merit).
	if res.Instructions > 0 {
		n := float64(res.Instructions)
		reg.Gauge(obs.Prefixed(prefix, "cpi")).Set(float64(b.Total()) / n)
		reg.Gauge(obs.Prefixed(prefix, "mcpi")).Set(float64(b.Read+b.Write) / n)
	}
}

// publishResult is PublishResult for models driven by a Config.
func publishResult(cfg *Config, res Result) {
	PublishResult(cfg.Metrics, cfg.MetricsPrefix, res)
}
