package cpu

import (
	"dynsched/internal/isa"
	"dynsched/internal/trace"
)

// RunBase replays tr through the BASE processor of Figure 3: an in-order
// machine "which completes each operation before initiating the next one
// (i.e., no overlap in execution of instructions and memory operations)".
//
// Every instruction costs one busy cycle; memory operations add their full
// transfer latency minus the overlapping execute cycle; synchronization
// operations add their wait and transfer components. The consistency model
// is irrelevant for BASE because nothing overlaps anyway.
func RunBase(tr *trace.Trace) Result {
	var b Breakdown
	for i := range tr.Events {
		e := &tr.Events[i]
		b.Busy++
		switch e.Class() {
		case isa.ClassLoad:
			b.Read += uint64(e.Latency) - 1
		case isa.ClassStore:
			b.Write += uint64(e.Latency) - 1
		case isa.ClassSync:
			// Acquires (lock, event wait, barrier) stall for their wait and
			// transfer components; releases (unlock, event set) are writes
			// and their latency is charged as write time — "release
			// operations are included in the total write miss time".
			if isAcquireClass(e.Instr.Op) {
				b.Sync += uint64(e.Wait) + uint64(e.Latency) - 1
			} else {
				b.Write += uint64(e.Wait) + uint64(e.Latency) - 1
			}
		}
	}
	return Result{Breakdown: b, Instructions: uint64(len(tr.Events))}
}
