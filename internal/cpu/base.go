package cpu

import (
	"dynsched/internal/critpath"
	"dynsched/internal/isa"
	"dynsched/internal/obs"
	"dynsched/internal/trace"
)

// RunBase replays tr through the BASE processor of Figure 3: an in-order
// machine "which completes each operation before initiating the next one
// (i.e., no overlap in execution of instructions and memory operations)".
//
// Every instruction costs one busy cycle; memory operations add their full
// transfer latency minus the overlapping execute cycle; synchronization
// operations add their wait and transfer components. The consistency model
// is irrelevant for BASE because nothing overlaps anyway.
func RunBase(tr *trace.Trace) Result {
	return RunBaseCP(tr, nil)
}

// RunBaseCP is RunBase with critical-path attribution. BASE takes no
// Config, so — like obs.PublishResult — the collector hook is a separate
// entry point rather than a Config field. With BASE nothing overlaps, so
// the attribution is exact: every stall cycle's cause is the instruction's
// own memory or synchronization latency, and each instruction's
// last-arriving edge is that same cause (busy when it added no stall).
func RunBaseCP(tr *trace.Trace, cp *critpath.Collector) Result {
	return RunBaseObs(tr, cp, nil)
}

// RunBaseObs is RunBase with the full observability hook set BASE supports:
// critical-path attribution plus interval timeline sampling. BASE has no
// cycle loop — it charges each instruction's cycles in one step — so the
// sampler interpolates within an instruction's charges (the busy cycle
// first, then the stall stretch) whenever they cross a boundary, keeping
// the emitted snapshots exactly aligned.
func RunBaseObs(tr *trace.Trace, cp *critpath.Collector, tl *obs.Timeline) Result {
	src := sliceSource(tr)
	res, _ := runBase(&src, cp, tl) // the materialized arm cannot fail
	return res
}

// runBase is the BASE replay core over an eventSource; the streaming arm
// can surface a decode or integrity error from the cursor.
func runBase(src *eventSource, cp *critpath.Collector, tl *obs.Timeline) (Result, error) {
	var b Breakdown
	var retired uint64
	basePoint := func(cycle uint64, pb Breakdown, instr uint64, causes []uint64) obs.TimelinePoint {
		return obs.TimelinePoint{
			Cycle: cycle, Instructions: instr,
			Busy: pb.Busy, Sync: pb.Sync, Read: pb.Read,
			Write: pb.Write, Branch: pb.Branch, Other: pb.Other,
			Causes: causes,
		}
	}
	for i := 0; i < src.n; i++ {
		e, err := src.fetch()
		if err != nil {
			return Result{}, err
		}
		prev := b
		var baseCauses [critpath.NumCauses]uint64
		if tl != nil && cp != nil {
			baseCauses = cp.CycleCounts()
		}
		var d uint64
		fine := critpath.Busy
		b.Busy++
		retired++
		switch e.Class() {
		case isa.ClassLoad:
			d = uint64(e.Latency) - 1
			b.Read += d
			fine = critpath.ReadLat
		case isa.ClassStore:
			d = uint64(e.Latency) - 1
			b.Write += d
			fine = critpath.WriteLat
		case isa.ClassSync:
			// Acquires (lock, event wait, barrier) stall for their wait and
			// transfer components; releases (unlock, event set) are writes
			// and their latency is charged as write time — "release
			// operations are included in the total write miss time".
			d = uint64(e.Wait) + uint64(e.Latency) - 1
			if isAcquireClass(e.Instr.Op) {
				b.Sync += d
				fine = critpath.SyncWait
			} else {
				b.Write += d
				fine = critpath.WriteLat
			}
		}
		if d > 0 {
			cp.StallN(fine, d)
			cp.Edge(fine)
		} else {
			cp.Edge(critpath.Busy)
		}
		if tl != nil {
			// This instruction's cycles run from prev.Total() exclusive to
			// b.Total() inclusive: the busy cycle first, then d stall
			// cycles of a single category. A boundary bb inside that span
			// snapshots the busy cycle plus bb-prevTotal-1 stall cycles.
			prevTotal := prev.Total()
			newTotal := b.Total()
			for bb := tl.Boundary(); bb <= newTotal; bb = tl.Boundary() {
				part := bb - prevTotal - 1
				pb := prev
				pb.Busy++
				switch {
				case b.Read != prev.Read:
					pb.Read += part
				case b.Write != prev.Write:
					pb.Write += part
				case b.Sync != prev.Sync:
					pb.Sync += part
				}
				var causes []uint64
				if cp != nil {
					cc := baseCauses
					cc[fine] += part
					causes = append([]uint64(nil), cc[:]...)
				}
				tl.Record(basePoint(bb, pb, retired, causes))
			}
		}
	}
	cp.Finish(b.Total())
	if tl != nil {
		var causes []uint64
		if cp != nil {
			cc := cp.CycleCounts()
			causes = append([]uint64(nil), cc[:]...)
		}
		tl.Finish(basePoint(b.Total(), b, retired, causes))
	}
	return Result{Breakdown: b, Instructions: uint64(src.n)}, nil
}
