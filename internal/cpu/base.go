package cpu

import (
	"dynsched/internal/critpath"
	"dynsched/internal/isa"
	"dynsched/internal/trace"
)

// RunBase replays tr through the BASE processor of Figure 3: an in-order
// machine "which completes each operation before initiating the next one
// (i.e., no overlap in execution of instructions and memory operations)".
//
// Every instruction costs one busy cycle; memory operations add their full
// transfer latency minus the overlapping execute cycle; synchronization
// operations add their wait and transfer components. The consistency model
// is irrelevant for BASE because nothing overlaps anyway.
func RunBase(tr *trace.Trace) Result {
	return RunBaseCP(tr, nil)
}

// RunBaseCP is RunBase with critical-path attribution. BASE takes no
// Config, so — like obs.PublishResult — the collector hook is a separate
// entry point rather than a Config field. With BASE nothing overlaps, so
// the attribution is exact: every stall cycle's cause is the instruction's
// own memory or synchronization latency, and each instruction's
// last-arriving edge is that same cause (busy when it added no stall).
func RunBaseCP(tr *trace.Trace, cp *critpath.Collector) Result {
	src := sliceSource(tr)
	res, _ := runBase(&src, cp) // the materialized arm cannot fail
	return res
}

// runBase is the BASE replay core over an eventSource; the streaming arm
// can surface a decode or integrity error from the cursor.
func runBase(src *eventSource, cp *critpath.Collector) (Result, error) {
	var b Breakdown
	stall := func(cause critpath.Cause, n uint64) {
		cp.StallN(cause, n)
		if n > 0 {
			cp.Edge(cause)
		} else {
			cp.Edge(critpath.Busy)
		}
	}
	for i := 0; i < src.n; i++ {
		e, err := src.fetch()
		if err != nil {
			return Result{}, err
		}
		b.Busy++
		switch e.Class() {
		case isa.ClassLoad:
			d := uint64(e.Latency) - 1
			b.Read += d
			stall(critpath.ReadLat, d)
		case isa.ClassStore:
			d := uint64(e.Latency) - 1
			b.Write += d
			stall(critpath.WriteLat, d)
		case isa.ClassSync:
			// Acquires (lock, event wait, barrier) stall for their wait and
			// transfer components; releases (unlock, event set) are writes
			// and their latency is charged as write time — "release
			// operations are included in the total write miss time".
			d := uint64(e.Wait) + uint64(e.Latency) - 1
			if isAcquireClass(e.Instr.Op) {
				b.Sync += d
				stall(critpath.SyncWait, d)
			} else {
				b.Write += d
				stall(critpath.WriteLat, d)
			}
		default:
			cp.Edge(critpath.Busy)
		}
	}
	cp.Finish(b.Total())
	return Result{Breakdown: b, Instructions: uint64(src.n)}, nil
}
