// Package cpu implements the four processor timing models of §4.1 of the
// paper, all driven by the annotated traces of package tango:
//
//   - BASE: an in-order processor that completes each operation before
//     initiating the next — no overlap at all (the leftmost bar of Figure 3).
//   - SSBR: statically scheduled, blocking reads, with a 16-deep write
//     buffer whose drain order is governed by the consistency model.
//   - SS: statically scheduled with non-blocking reads — loads enter a
//     16-deep read buffer and the stall is delayed to the first use of the
//     return value.
//   - DS: the dynamically scheduled processor derived from Johnson's
//     architecture — a reorder buffer (lookahead window) of 16–256 entries,
//     register renaming via reorder-buffer tags, reservation-station-style
//     wakeup, a BTB with speculative execution, a store buffer with load
//     bypassing and forwarding, and a lockup-free single-ported cache.
//
// Every model produces an execution-time Breakdown in the same categories
// as Figure 3 (busy, acquire synchronization, read miss, write miss), plus
// two explicit buckets the paper folds away: Branch (fetch-redirect bubbles
// after mispredictions) and Other (rare pipeline bubbles).
package cpu

import (
	"context"
	"fmt"

	"dynsched/internal/consistency"
	"dynsched/internal/critpath"
	"dynsched/internal/isa"
	"dynsched/internal/obs"
	"dynsched/internal/trace"
)

// Breakdown decomposes execution time into the Figure 3 stall categories.
// All values are in cycles.
type Breakdown struct {
	Busy   uint64 // cycles retiring useful instructions
	Sync   uint64 // stalled on acquire synchronization
	Read   uint64 // stalled on read misses
	Write  uint64 // stalled on writes (full buffers, releases, drain)
	Branch uint64 // fetch-redirect bubbles after mispredicted branches
	Other  uint64 // residual pipeline bubbles
}

// Total returns total execution time in cycles.
func (b Breakdown) Total() uint64 {
	return b.Busy + b.Sync + b.Read + b.Write + b.Branch + b.Other
}

// Add accumulates o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.Busy += o.Busy
	b.Sync += o.Sync
	b.Read += o.Read
	b.Write += o.Write
	b.Branch += o.Branch
	b.Other += o.Other
}

// String formats the breakdown compactly for logs and examples.
func (b Breakdown) String() string {
	return fmt.Sprintf("total=%d busy=%d sync=%d read=%d write=%d branch=%d other=%d",
		b.Total(), b.Busy, b.Sync, b.Read, b.Write, b.Branch, b.Other)
}

// DelayHistogram buckets the decode-to-issue delay of read misses, the
// §4.1.3 diagnostic ("one such result measures the delay of each read miss
// from the time the instruction is decoded ... to the time the read is
// issued to memory").
type DelayHistogram struct {
	Bounds []uint64 // bucket upper bounds (inclusive); last bucket is open
	Counts []uint64
	Total  uint64
}

// NewDelayHistogram returns a histogram with the paper-relevant bounds.
func NewDelayHistogram() *DelayHistogram {
	return &DelayHistogram{
		Bounds: []uint64{0, 10, 20, 30, 40, 50, 100},
		Counts: make([]uint64, 8),
	}
}

// Observe records one delay sample.
func (h *DelayHistogram) Observe(d uint64) {
	h.Total++
	for i, b := range h.Bounds {
		if d <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Bounds)]++
}

// FractionAbove returns the fraction of samples strictly greater than bound.
func (h *DelayHistogram) FractionAbove(bound uint64) float64 {
	if h.Total == 0 {
		return 0
	}
	var above uint64
	for i, b := range h.Bounds {
		if b > bound {
			above += h.Counts[i]
		}
	}
	above += h.Counts[len(h.Bounds)]
	return float64(above) / float64(h.Total)
}

// Result is the outcome of replaying a trace through a processor model.
type Result struct {
	Breakdown    Breakdown
	Instructions uint64
	Mispredicts  uint64 // mispredicted conditional branches (DS only)
	Prefetches   uint64 // non-binding prefetches issued (DS with Prefetch)

	// AvgOccupancy is the mean number of instructions resident in the
	// reorder buffer per cycle (DS only). It quantifies the §5 discussion
	// of FIFO retirement: completed instructions that cannot retire yet
	// still occupy window slots.
	AvgOccupancy float64

	// ReadMissDelay is the decode-to-issue delay histogram for read misses
	// (DS only; nil for the other models).
	ReadMissDelay *DelayHistogram
}

// CPI returns cycles per instruction.
func (r Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Breakdown.Total()) / float64(r.Instructions)
}

// Config parameterizes the processor models. The zero value is completed by
// fillDefaults; use one of the constructor helpers for the paper's machines.
type Config struct {
	Model consistency.Model

	// Window is the DS reorder-buffer (lookahead window) size: the maximum
	// number of instructions resident at once. Paper: 16–256.
	Window int

	// IssueWidth is the maximum decode/retire rate per cycle. The paper's
	// main experiments use 1; §4.2 explores 4.
	IssueWidth int

	// WriteBufDepth is the write buffer depth for SSBR/SS (paper: 16 words).
	WriteBufDepth int
	// ReadBufDepth is the SS read buffer depth (paper: 16 words).
	ReadBufDepth int
	// StoreBufDepth is the DS store buffer depth.
	StoreBufDepth int

	// MSHRs bounds outstanding cache misses; 0 means unlimited (the paper
	// assumes an aggressive lockup-free cache and memory system).
	MSHRs int

	// Predictor supplies branch predictions for the DS model. nil selects
	// the paper's 2048-entry 4-way BTB; use bpred.Perfect{} for the perfect
	// branch prediction experiments of Figure 4.
	Predictor trace.Predictor

	// IgnoreDataDeps removes register data dependences (Figure 4, right
	// half). Consistency-model ordering constraints are still respected,
	// exactly as in the paper's footnote 3.
	IgnoreDataDeps bool

	// Prefetch enables non-binding hardware prefetching for accesses that
	// are ready but delayed by consistency constraints — the first of the
	// two SC-boosting techniques of Gharachorloo et al. [8], discussed in
	// §6 of the paper. A prefetch brings the line toward the cache without
	// binding the value; when the access later issues for real, its
	// latency is reduced by the time the prefetch has been in flight.
	Prefetch bool

	// SpeculativeLoads enables the second technique of [8]: loads issue
	// speculatively even when the consistency model forbids it, relying on
	// a rollback mechanism if another processor invalidates the
	// speculatively-read line before the load retires. The replay models
	// the optimistic case (no rollbacks), which [8] found to be the common
	// one; it is therefore an upper bound on the technique's benefit.
	// Stores still obey the model, and loads still retire in order.
	SpeculativeLoads bool

	// Observability hooks (package obs). All are optional, nil by default,
	// and nil-safe: a disabled replay pays only nil checks.

	// Metrics receives the run's counters and occupancy/delay histograms.
	Metrics *obs.Registry
	// MetricsPrefix prefixes every metric name this replay registers
	// (e.g. "cpu.lu.RC-DS64.").
	MetricsPrefix string
	// Pipe records per-instruction pipeline events at retirement for
	// Konata / Chrome-trace export.
	Pipe *obs.PipeTracer
	// Progress receives periodic instruction/cycle counts for the -progress
	// ticker, as one labelled lane so concurrent replays do not clobber each
	// other's rows (obtain one via Progress.Lane).
	Progress *obs.Lane
	// CritPath collects critical-path cycle attribution: every stall cycle
	// the model charges is mirrored into a fine-grained cause bucket, and
	// each retired instruction records its last-arriving dependence edge.
	// The collector is per-replay (not safe for sharing across cells); the
	// buckets it accumulates sum exactly to Breakdown.Total(). nil (the
	// default) collects nothing and costs only nil checks.
	CritPath *critpath.Collector
	// Timeline, when non-nil, receives cumulative state snapshots at
	// aligned 2^k-cycle boundaries (stall breakdown, retired instructions,
	// structure-occupancy integrals, and — when CritPath is also set —
	// fine-cause cycle counts). Sampling is purely observational: boundary
	// snapshots are emitted at exact cycles even under time-skip (a jump
	// crossing k boundaries interpolates k snapshots inside the
	// bulk-charged stretch), so the series is byte-identical skip vs
	// noskip and the simulated Result is untouched.
	Timeline *obs.Timeline

	// NoTimeSkip forces the cycle-stepped simulation path. By default the
	// replay loops are event-driven: when a cycle completes nothing, accepts
	// nothing, issues nothing, and charges exactly one stall cycle, the
	// machine state is a fixed point until the next scheduled event
	// (a miss completion, an acquire's contention wall, a prefetch-decay
	// threshold), so simulated time jumps there directly and the skipped
	// stall cycles are charged in bulk. The two paths are byte-identical in
	// every Result field, stall category, and histogram; NoTimeSkip exists
	// as the escape hatch that proves it (see TestSkipEquivalence) and as a
	// debugging aid when stepping through individual cycles.
	NoTimeSkip bool

	// Robustness controls.

	// Ctx cancels a long replay cooperatively: the simulation loops poll it
	// every few thousand cycles and return its error once it is done. nil
	// means never cancel.
	Ctx context.Context

	// WatchdogBudget is the maximum number of cycles a replay may run
	// without forward progress (retiring an instruction or accepting /
	// completing an access) before it is killed with a *WatchdogError
	// carrying a pipeline-state dump. 0 selects DefaultWatchdogBudget.
	WatchdogBudget uint64
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 64
	}
	if c.IssueWidth == 0 {
		c.IssueWidth = 1
	}
	if c.WriteBufDepth == 0 {
		c.WriteBufDepth = 16
	}
	if c.ReadBufDepth == 0 {
		c.ReadBufDepth = 16
	}
	if c.StoreBufDepth == 0 {
		c.StoreBufDepth = 16
	}
	return c
}

func (c Config) validate() error {
	if c.Window < 1 {
		return fmt.Errorf("cpu: window %d < 1", c.Window)
	}
	if c.IssueWidth < 1 {
		return fmt.Errorf("cpu: issue width %d < 1", c.IssueWidth)
	}
	if c.WriteBufDepth < 1 || c.ReadBufDepth < 1 || c.StoreBufDepth < 1 {
		return fmt.Errorf("cpu: buffer depths must be >= 1")
	}
	return nil
}

// classOf distinguishes the scheduling classes a replay model cares about.
// Sync opcodes split by acquire/release: a barrier behaves as an acquire
// (it blocks) whose kind also carries the release ordering.
func isAcquireClass(op isa.Op) bool {
	return op == isa.OpLock || op == isa.OpWaitEv || op == isa.OpBarrier
}
func isReleaseOnly(op isa.Op) bool { return op == isa.OpUnlock || op == isa.OpSetEv }
