package cpu

// Tests for the extension features: the two SC-boosting techniques of
// Gharachorloo et al. [8] (non-binding prefetch and speculative loads,
// discussed in §6 of the paper) and the window-occupancy diagnostic.

import (
	"testing"

	"dynsched/internal/consistency"
	"dynsched/internal/trace"
)

// independentMissTrace: repeated pattern of an independent read miss
// followed by computation — SC serializes the misses, so the prefetch and
// speculation techniques have room to help.
func independentMissTrace(reps int) *trace.Trace {
	b := newTB()
	for r := 0; r < reps; r++ {
		b.load(2, 1, uint64(r)*64, true)
		for i := 0; i < 20; i++ {
			b.alu(3, 4, 4)
		}
		b.alu(5, 2, 2)
	}
	return b.halt()
}

func TestPrefetchBoostsSC(t *testing.T) {
	tr := independentMissTrace(20)
	plain, err := RunDS(tr, cfg(consistency.SC, 256))
	if err != nil {
		t.Fatal(err)
	}
	c := cfg(consistency.SC, 256)
	c.Prefetch = true
	pf, err := RunDS(tr, c)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Prefetches == 0 {
		t.Fatal("no prefetches issued under SC with blocked misses")
	}
	if float64(pf.Breakdown.Total()) > 0.75*float64(plain.Breakdown.Total()) {
		t.Errorf("prefetch should substantially boost SC: %d vs plain %d",
			pf.Breakdown.Total(), plain.Breakdown.Total())
	}
}

func TestPrefetchNoOpUnderRC(t *testing.T) {
	// Under RC nothing is consistency-blocked, so prefetching changes
	// nothing and issues (almost) no prefetches.
	tr := independentMissTrace(20)
	plain, err := RunDS(tr, cfg(consistency.RC, 256))
	if err != nil {
		t.Fatal(err)
	}
	c := cfg(consistency.RC, 256)
	c.Prefetch = true
	pf, err := RunDS(tr, c)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Breakdown.Total() != plain.Breakdown.Total() {
		t.Errorf("prefetch changed RC timing: %d vs %d", pf.Breakdown.Total(), plain.Breakdown.Total())
	}
}

func TestSpeculativeLoadsApproachRC(t *testing.T) {
	tr := independentMissTrace(20)
	sc, err := RunDS(tr, cfg(consistency.SC, 256))
	if err != nil {
		t.Fatal(err)
	}
	c := cfg(consistency.SC, 256)
	c.SpeculativeLoads = true
	spec, err := RunDS(tr, c)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := RunDS(tr, cfg(consistency.RC, 256))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Breakdown.Total() >= sc.Breakdown.Total() {
		t.Errorf("speculative loads did not improve SC: %d vs %d",
			spec.Breakdown.Total(), sc.Breakdown.Total())
	}
	// Loads dominate this trace, so speculation should recover most of the
	// SC-to-RC gap (stores still obey SC).
	gap := float64(sc.Breakdown.Total() - rc.Breakdown.Total())
	closed := float64(sc.Breakdown.Total() - spec.Breakdown.Total())
	if closed < 0.6*gap {
		t.Errorf("speculation closed only %.0f%% of the SC→RC gap", 100*closed/gap)
	}
}

func TestSpeculativeLoadsForwardFromPendingStore(t *testing.T) {
	// A load from a pending store's address must forward even under SC when
	// speculation is enabled (the value comes from the same processor).
	b := newTB()
	b.store(1, 2, 64, true)
	b.load(3, 1, 64, false)
	b.tr.Events[1].Miss = true
	b.tr.Events[1].Latency = 50
	tr := b.halt()
	c := cfg(consistency.SC, 64)
	c.SpeculativeLoads = true
	res, err := RunDS(tr, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.Total() > 60 {
		t.Errorf("speculative load did not forward: total = %d", res.Breakdown.Total())
	}
}

func TestOccupancyGrowsWithWindow(t *testing.T) {
	// A miss-heavy trace fills whatever window it is given.
	b := newTB()
	for r := 0; r < 40; r++ {
		b.load(2, 2, uint64(r)*64, true) // dependent chain keeps the ROB full
	}
	tr := b.halt()
	small, err := RunDS(tr, cfg(consistency.RC, 16))
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunDS(tr, cfg(consistency.RC, 256))
	if err != nil {
		t.Fatal(err)
	}
	if small.AvgOccupancy <= 0 || large.AvgOccupancy <= 0 {
		t.Fatal("occupancy not measured")
	}
	if small.AvgOccupancy > 16 {
		t.Errorf("occupancy %f exceeds window 16", small.AvgOccupancy)
	}
	if large.AvgOccupancy <= small.AvgOccupancy {
		t.Errorf("bigger window should hold more: %f vs %f", large.AvgOccupancy, small.AvgOccupancy)
	}
}

func TestPrefetchRespectsNonBinding(t *testing.T) {
	// A prefetched access must still obey consistency for its real issue:
	// under SC the loads remain ordered even with prefetching (correct
	// ordering, better timing). We verify ordering indirectly: total time
	// is at least the instruction count plus one residual latency.
	tr := independentMissTrace(10)
	c := cfg(consistency.SC, 256)
	c.Prefetch = true
	res, err := RunDS(tr, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.Total() < res.Instructions {
		t.Errorf("total %d below instruction count %d", res.Breakdown.Total(), res.Instructions)
	}
}
