package cpu

// Streaming replay entry points. Every timing model consumes its trace
// strictly in program order, one event per decode slot, so the replay
// cores run against an eventSource — either a materialized []trace.Event
// or a trace.Cursor streaming chunk-resident events out of a file. The
// slice arm keeps the existing RunBase/RunSSBR/RunSS/RunDS signatures and
// cost (one predicted branch per fetch); the cursor arm gives the file
// tools zero-copy replay: no whole-trace materialization, no per-event
// allocation, the same Results byte for byte.

import (
	"fmt"

	"dynsched/internal/critpath"
	"dynsched/internal/obs"
	"dynsched/internal/trace"
)

// eventSource is the replay cores' view of a trace's instruction stream:
// sequential fetch of each event exactly once, plus the metadata the
// models need. It is a concrete struct, not an interface, so the hot
// decode loops pay a nil check instead of dynamic dispatch.
type eventSource struct {
	events []trace.Event // materialized arm (used when cur is nil)
	cur    *trace.Cursor // streaming arm
	n      int           // total events
	next   int           // next index to fetch
}

func sliceSource(tr *trace.Trace) eventSource {
	return eventSource{events: tr.Events, n: len(tr.Events)}
}

func cursorSource(c *trace.Cursor) eventSource {
	return eventSource{cur: c, n: c.Len()}
}

// fetch returns the next event in program order. The caller must not fetch
// past n events. For the cursor arm the returned pointer obeys the cursor's
// lookback contract (valid for the next trace.CursorLookback fetches); the
// replay cores never hold an event pointer longer than their window, and
// the streaming entry points reject windows beyond the lookback.
func (s *eventSource) fetch() (*trace.Event, error) {
	if s.cur == nil {
		e := &s.events[s.next]
		s.next++
		return e, nil
	}
	s.next++
	e, err := s.cur.Next()
	if err != nil {
		return nil, fmt.Errorf("cpu: trace stream at event %d: %w", s.next-1, err)
	}
	return e, nil
}

// checkStreamWindow rejects streaming configurations whose lookahead
// window exceeds the cursor's pointer-retention guarantee.
func checkStreamWindow(window int) error {
	if window > trace.CursorLookback {
		return fmt.Errorf("cpu: window %d exceeds streaming lookback %d; materialize the trace with ReadTrace instead",
			window, trace.CursorLookback)
	}
	return nil
}

// RunBaseStream replays a streaming trace through the BASE processor.
// A decode or integrity error from the stream aborts the replay.
func RunBaseStream(c *trace.Cursor) (Result, error) {
	return RunBaseStreamCP(c, nil)
}

// RunBaseStreamCP is RunBaseStream with critical-path attribution.
func RunBaseStreamCP(c *trace.Cursor, cp *critpath.Collector) (Result, error) {
	return RunBaseStreamObs(c, cp, nil)
}

// RunBaseStreamObs is RunBaseStream with critical-path attribution and
// interval timeline sampling, mirroring RunBaseObs for the streaming arm.
func RunBaseStreamObs(c *trace.Cursor, cp *critpath.Collector, tl *obs.Timeline) (Result, error) {
	src := cursorSource(c)
	return runBase(&src, cp, tl)
}

// RunSSBRStream replays a streaming trace through the statically
// scheduled, blocking-read processor.
func RunSSBRStream(c *trace.Cursor, cfg Config) (Result, error) {
	src := cursorSource(c)
	return runStatic(&src, cfg, false)
}

// RunSSStream replays a streaming trace through the statically scheduled,
// non-blocking-read processor.
func RunSSStream(c *trace.Cursor, cfg Config) (Result, error) {
	src := cursorSource(c)
	return runStatic(&src, cfg, true)
}

// RunDSStream replays a streaming trace through the dynamically scheduled
// processor. The window must not exceed trace.CursorLookback (4096; the
// paper's largest is 256), because reorder-buffer entries hold pointers
// into the cursor's event ring.
func RunDSStream(c *trace.Cursor, cfg Config) (Result, error) {
	if err := checkStreamWindow(cfg.withDefaults().Window); err != nil {
		return Result{}, err
	}
	src := cursorSource(c)
	return runDS(&src, cfg)
}
