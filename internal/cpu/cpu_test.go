package cpu

import (
	"testing"

	"dynsched/internal/bpred"
	"dynsched/internal/consistency"
	"dynsched/internal/isa"
	"dynsched/internal/trace"
)

// tb builds synthetic annotated traces for the processor models.
type tb struct {
	tr *trace.Trace
	pc int32
}

func newTB() *tb {
	return &tb{tr: &trace.Trace{App: "synthetic", NumCPUs: 16, MissPenalty: 50}}
}

func (b *tb) emit(e trace.Event) *tb {
	e.PC = b.pc
	e.NextPC = b.pc + 1
	b.pc++
	b.tr.Events = append(b.tr.Events, e)
	return b
}

// alu emits dst = s1 op s2 (1-cycle integer add).
func (b *tb) alu(dst, s1, s2 uint8) *tb {
	return b.emit(trace.Event{Instr: isa.Instr{Op: isa.OpAdd, Dst: dst, Src1: s1, Src2: s2}})
}

func (b *tb) load(dst, addrReg uint8, addr uint64, miss bool) *tb {
	lat := uint32(1)
	if miss {
		lat = 50
	}
	return b.emit(trace.Event{
		Instr: isa.Instr{Op: isa.OpLd, Dst: dst, Src1: addrReg},
		Addr:  addr, Miss: miss, Latency: lat,
	})
}

func (b *tb) store(addrReg, data uint8, addr uint64, miss bool) *tb {
	lat := uint32(1)
	if miss {
		lat = 50
	}
	return b.emit(trace.Event{
		Instr: isa.Instr{Op: isa.OpSt, Src1: addrReg, Src2: data},
		Addr:  addr, Miss: miss, Latency: lat,
	})
}

// branch emits a not-taken conditional branch on reg.
func (b *tb) branch(reg uint8) *tb {
	return b.emit(trace.Event{Instr: isa.Instr{Op: isa.OpBnez, Src1: reg, Imm: 9999}})
}

func (b *tb) lock(addr uint64, wait, lat uint32) *tb {
	return b.emit(trace.Event{Instr: isa.Instr{Op: isa.OpLock}, Addr: addr, Latency: lat, Wait: wait, Miss: lat > 1})
}

func (b *tb) unlock(addr uint64, lat uint32) *tb {
	return b.emit(trace.Event{Instr: isa.Instr{Op: isa.OpUnlock}, Addr: addr, Latency: lat, Miss: lat > 1})
}

func (b *tb) barrier(wait, lat uint32) *tb {
	return b.emit(trace.Event{Instr: isa.Instr{Op: isa.OpBarrier, Imm: 1}, Latency: lat, Wait: wait, Miss: lat > 1})
}

func (b *tb) halt() *trace.Trace {
	b.emit(trace.Event{Instr: isa.Instr{Op: isa.OpHalt}})
	b.tr.Events[len(b.tr.Events)-1].NextPC = b.pc - 1
	return b.tr
}

func cfg(m consistency.Model, window int) Config {
	return Config{Model: m, Window: window, Predictor: bpred.Perfect{}}
}

// --- BASE ------------------------------------------------------------------

func TestBaseSerial(t *testing.T) {
	tr := newTB().
		alu(1, 0, 0).
		load(2, 1, 64, true).   // 50
		store(1, 2, 128, true). // 50
		lock(256, 30, 50).
		unlock(256, 1).
		halt()
	r := RunBase(tr)
	// busy = 6 instructions; read = 49; write = 49 (+0 for unlock hit);
	// sync = 30 + 50 - 1 = 79.
	if r.Breakdown.Busy != 6 {
		t.Errorf("busy = %d, want 6", r.Breakdown.Busy)
	}
	if r.Breakdown.Read != 49 {
		t.Errorf("read = %d, want 49", r.Breakdown.Read)
	}
	if r.Breakdown.Write != 49 {
		t.Errorf("write = %d, want 49", r.Breakdown.Write)
	}
	if r.Breakdown.Sync != 79 {
		t.Errorf("sync = %d, want 79", r.Breakdown.Sync)
	}
	if r.Breakdown.Total() != 6+49+49+79 {
		t.Errorf("total = %d", r.Breakdown.Total())
	}
}

// --- SSBR ------------------------------------------------------------------

// Under SC a store's latency is exposed because the next access may not
// issue until it performs; under PC/RC it is hidden by the write buffer.
func TestSSBRWriteLatencyByModel(t *testing.T) {
	mk := func() *trace.Trace {
		b := newTB()
		b.store(1, 2, 64, true) // write miss, 50 cycles
		b.load(3, 1, 1024, true)
		for i := 0; i < 10; i++ {
			b.alu(4, 3, 3)
		}
		return b.halt()
	}
	sc, err := RunSSBR(mk(), Config{Model: consistency.SC})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := RunSSBR(mk(), Config{Model: consistency.RC})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Breakdown.Total() <= rc.Breakdown.Total() {
		t.Errorf("SC total %d should exceed RC total %d (write latency exposed)",
			sc.Breakdown.Total(), rc.Breakdown.Total())
	}
	// Under RC the store is buffered and the read bypasses it; the write
	// never stalls the processor (its drain overlaps the read miss stall).
	if rc.Breakdown.Write != 0 {
		t.Errorf("RC write stall = %d, want 0 (hidden behind read miss)", rc.Breakdown.Write)
	}
	// SC: the load may not issue until the store performs; its stall grows.
	if sc.Breakdown.Read+sc.Breakdown.Write < 90 {
		t.Errorf("SC memory stalls = read %d + write %d, want ~98", sc.Breakdown.Read, sc.Breakdown.Write)
	}
}

// A burst of write misses longer than the write buffer stalls even RC-lite
// models when nothing drains them — the OCEAN/PC effect of §4.1.1 is that
// PC drains writes serially while RC overlaps them. With a fixed 50-cycle
// pipe and one access per cycle the drain also serializes here, so we check
// the weaker, robust property: PC write stalls strictly exceed RC's.
func TestWriteBurstPCvsRC(t *testing.T) {
	mk := func() *trace.Trace {
		b := newTB()
		for i := 0; i < 40; i++ {
			b.store(1, 2, uint64(i)*64, true)
		}
		// Reads between writes let RC's bypass ability matter.
		b.load(3, 1, 4096, true)
		for i := 0; i < 40; i++ {
			b.alu(4, 3, 3)
		}
		return b.halt()
	}
	pc, err := RunSSBR(mk(), Config{Model: consistency.PC})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := RunSSBR(mk(), Config{Model: consistency.RC})
	if err != nil {
		t.Fatal(err)
	}
	if pc.Breakdown.Total() < rc.Breakdown.Total() {
		t.Errorf("PC total %d unexpectedly below RC total %d", pc.Breakdown.Total(), rc.Breakdown.Total())
	}
	if pc.Breakdown.Write <= rc.Breakdown.Write {
		t.Errorf("PC write stall %d should exceed RC write stall %d (serialized drain)",
			pc.Breakdown.Write, rc.Breakdown.Write)
	}
}

// --- SS --------------------------------------------------------------------

// SS hides the portion of a read miss between the load and its first use.
func TestSSFirstUseStall(t *testing.T) {
	mk := func(gap int) *trace.Trace {
		b := newTB()
		b.load(2, 1, 64, true) // miss, 50 cycles
		for i := 0; i < gap; i++ {
			b.alu(3, 4, 4) // independent of r2
		}
		b.alu(5, 2, 2) // first use of the load value
		return b.halt()
	}
	near, err := RunSS(mk(2), Config{Model: consistency.RC})
	if err != nil {
		t.Fatal(err)
	}
	far, err := RunSS(mk(40), Config{Model: consistency.RC})
	if err != nil {
		t.Fatal(err)
	}
	blocking, err := RunSSBR(mk(2), Config{Model: consistency.RC})
	if err != nil {
		t.Fatal(err)
	}
	if near.Breakdown.Read >= blocking.Breakdown.Read {
		t.Errorf("SS read stall %d should be below SSBR %d", near.Breakdown.Read, blocking.Breakdown.Read)
	}
	if far.Breakdown.Read >= near.Breakdown.Read {
		t.Errorf("more independent work should hide more: far %d >= near %d",
			far.Breakdown.Read, near.Breakdown.Read)
	}
	if far.Breakdown.Read > 12 {
		t.Errorf("40 independent ops should hide nearly all of 49 stall cycles; read = %d", far.Breakdown.Read)
	}
}

// --- DS --------------------------------------------------------------------

// With RC, a window larger than the miss latency, and enough independent
// work, the read miss is fully hidden.
func TestDSHidesIndependentReadMiss(t *testing.T) {
	mk := func() *trace.Trace {
		b := newTB()
		b.load(2, 1, 64, true)
		for i := 0; i < 60; i++ {
			b.alu(3, 4, 4)
		}
		b.alu(5, 2, 2)
		return b.halt()
	}
	r, err := RunDS(mk(), cfg(consistency.RC, 128))
	if err != nil {
		t.Fatal(err)
	}
	if r.Breakdown.Read > 2 {
		t.Errorf("read stall = %d, want ~0 (fully hidden)", r.Breakdown.Read)
	}
	if r.Breakdown.Busy != r.Instructions {
		t.Errorf("busy %d != instructions %d at width 1", r.Breakdown.Busy, r.Instructions)
	}
}

// A small window cannot span the latency: stall remains.
func TestDSWindowSizeLimitsOverlap(t *testing.T) {
	mk := func() *trace.Trace {
		b := newTB()
		for rep := 0; rep < 20; rep++ {
			b.load(2, 1, uint64(rep)*64, true)
			for i := 0; i < 60; i++ {
				b.alu(3, 4, 4)
			}
			b.alu(5, 2, 2)
		}
		return b.halt()
	}
	small, err := RunDS(mk(), cfg(consistency.RC, 16))
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunDS(mk(), cfg(consistency.RC, 128))
	if err != nil {
		t.Fatal(err)
	}
	if small.Breakdown.Read <= large.Breakdown.Read {
		t.Errorf("window 16 read stall %d should exceed window 128 stall %d",
			small.Breakdown.Read, large.Breakdown.Read)
	}
	if large.Breakdown.Read > 25 {
		t.Errorf("window 128 should hide nearly all read latency; read = %d", large.Breakdown.Read)
	}
}

// Under SC, dynamic scheduling gains almost nothing (reads serialize).
func TestDSSCSerializesReads(t *testing.T) {
	mk := func() *trace.Trace {
		b := newTB()
		for rep := 0; rep < 10; rep++ {
			b.load(2, 1, uint64(rep)*64, true) // independent misses
			b.alu(3, 4, 4)
		}
		return b.halt()
	}
	sc, err := RunDS(mk(), cfg(consistency.SC, 256))
	if err != nil {
		t.Fatal(err)
	}
	rc, err := RunDS(mk(), cfg(consistency.RC, 256))
	if err != nil {
		t.Fatal(err)
	}
	// RC overlaps the 10 independent misses; SC pays them serially.
	if sc.Breakdown.Total() < 10*49 {
		t.Errorf("SC total %d too small; misses must serialize", sc.Breakdown.Total())
	}
	if rc.Breakdown.Total() >= sc.Breakdown.Total()/2 {
		t.Errorf("RC %d should be far below SC %d with overlapped misses",
			rc.Breakdown.Total(), sc.Breakdown.Total())
	}
}

// A dependent chain of misses (pointer chasing) cannot be overlapped even
// with a huge window — the PTHOR effect.
func TestDSDependentMissChain(t *testing.T) {
	mk := func() *trace.Trace {
		b := newTB()
		for rep := 0; rep < 10; rep++ {
			b.load(2, 2, uint64(rep)*64, true) // address depends on prior load
		}
		return b.halt()
	}
	r, err := RunDS(mk(), cfg(consistency.RC, 256))
	if err != nil {
		t.Fatal(err)
	}
	if r.Breakdown.Read < 10*45 {
		t.Errorf("dependent chain read stall %d, want near %d (serial misses)", r.Breakdown.Read, 10*49)
	}
	// Ignoring data dependences (Figure 4, right side) removes the chain.
	c := cfg(consistency.RC, 256)
	c.IgnoreDataDeps = true
	free, err := RunDS(mk(), c)
	if err != nil {
		t.Fatal(err)
	}
	if free.Breakdown.Read >= r.Breakdown.Read/2 {
		t.Errorf("ignoring deps should overlap the chain: %d vs %d", free.Breakdown.Read, r.Breakdown.Read)
	}
}

// Mispredicted branches block lookahead: with a predictor that always
// mispredicts, the miss behind the branch cannot be overlapped.
func TestDSMispredictBlocksLookahead(t *testing.T) {
	mk := func() *trace.Trace {
		b := newTB()
		for rep := 0; rep < 10; rep++ {
			b.load(2, 1, uint64(rep)*64, true)
			b.branch(9) // not taken (r9 independent of load)
			for i := 0; i < 55; i++ {
				b.alu(3, 4, 4)
			}
			b.alu(5, 2, 2)
		}
		return b.halt()
	}
	perfect, err := RunDS(mk(), cfg(consistency.RC, 128))
	if err != nil {
		t.Fatal(err)
	}
	c := cfg(consistency.RC, 128)
	c.Predictor = bpred.StaticTaken{} // every branch in mk() is not-taken → all mispredict
	bad, err := RunDS(mk(), c)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Mispredicts != 10 {
		t.Errorf("mispredicts = %d, want 10", bad.Mispredicts)
	}
	if perfect.Mispredicts != 0 {
		t.Errorf("perfect predictor mispredicted %d times", perfect.Mispredicts)
	}
	if bad.Breakdown.Total() <= perfect.Breakdown.Total() {
		t.Errorf("mispredicts should cost cycles: bad %d <= perfect %d",
			bad.Breakdown.Total(), perfect.Breakdown.Total())
	}
}

// Acquire semantics: T is hideable (issues early), W is not (starts at the
// window head).
func TestDSAcquireWaitUnhideable(t *testing.T) {
	// An early read miss lets decode run ahead of retirement, so the
	// acquire can issue early: its transfer latency T overlaps the drain of
	// the buffered computation (the paper's "latency to access a free lock
	// can be hidden by overlapping this time with the computation prior to
	// it"). The contention component W, in contrast, only starts elapsing at
	// the window head and is charged in full.
	mk := func(wait uint32) *trace.Trace {
		b := newTB()
		b.load(2, 1, 64, true)
		for i := 0; i < 30; i++ {
			b.alu(3, 4, 4)
		}
		b.lock(256, wait, 50)
		b.unlock(256, 1)
		return b.halt()
	}
	noWait, err := RunDS(mk(0), cfg(consistency.RC, 128))
	if err != nil {
		t.Fatal(err)
	}
	withWait, err := RunDS(mk(200), cfg(consistency.RC, 128))
	if err != nil {
		t.Fatal(err)
	}
	// With W=0, part of the 50-cycle transfer overlaps the read-miss drain.
	if noWait.Breakdown.Sync >= 45 {
		t.Errorf("free-lock transfer latency not partially hidden: sync = %d", noWait.Breakdown.Sync)
	}
	// With W=200 the full contention wait is exposed (T hides inside W).
	if withWait.Breakdown.Sync < 195 {
		t.Errorf("contention wait W=200 must be unhideable; sync = %d", withWait.Breakdown.Sync)
	}
	ssbr, err := RunSSBR(mk(0), Config{Model: consistency.RC})
	if err != nil {
		t.Fatal(err)
	}
	if noWait.Breakdown.Sync >= ssbr.Breakdown.Sync {
		t.Errorf("DS sync stall %d should be below blocking-read SSBR %d", noWait.Breakdown.Sync, ssbr.Breakdown.Sync)
	}
}

// Store buffer forwarding: a load from a pending store's address completes
// quickly under relaxed models.
func TestDSStoreForwarding(t *testing.T) {
	mk := func() *trace.Trace {
		b := newTB()
		b.store(1, 2, 64, true) // write miss to addr 64
		b.load(3, 1, 64, false).tr.Events[1].Miss = true
		b.tr.Events[1].Latency = 50 // the load would miss in the cache
		return b.halt()
	}
	rc, err := RunDS(mk(), cfg(consistency.RC, 64))
	if err != nil {
		t.Fatal(err)
	}
	// The load forwards from the store buffer: total far below 100.
	if rc.Breakdown.Total() > 60 {
		t.Errorf("forwarded load should not pay the miss: total = %d (%v)", rc.Breakdown.Total(), rc.Breakdown)
	}
}

// The store buffer fills and back-pressures retirement when stores miss
// faster than they drain.
func TestDSStoreBufferBackpressure(t *testing.T) {
	mk := func() *trace.Trace {
		b := newTB()
		for i := 0; i < 64; i++ {
			b.store(1, 2, uint64(i)*64, true)
		}
		return b.halt()
	}
	c := cfg(consistency.RC, 64)
	c.StoreBufDepth = 2
	small, err := RunDS(mk(), c)
	if err != nil {
		t.Fatal(err)
	}
	c.StoreBufDepth = 64
	big, err := RunDS(mk(), c)
	if err != nil {
		t.Fatal(err)
	}
	if small.Breakdown.Write <= big.Breakdown.Write {
		t.Errorf("SB depth 2 write stall %d should exceed depth 64 stall %d",
			small.Breakdown.Write, big.Breakdown.Write)
	}
}

// MSHR limits throttle miss overlap.
func TestDSMSHRLimit(t *testing.T) {
	mk := func() *trace.Trace {
		b := newTB()
		for i := 0; i < 20; i++ {
			b.load(2, 1, uint64(i)*64, true)
		}
		b.alu(3, 2, 2)
		return b.halt()
	}
	c := cfg(consistency.RC, 256)
	c.MSHRs = 1
	one, err := RunDS(mk(), c)
	if err != nil {
		t.Fatal(err)
	}
	c.MSHRs = 0 // unlimited
	unl, err := RunDS(mk(), c)
	if err != nil {
		t.Fatal(err)
	}
	if one.Breakdown.Total() <= unl.Breakdown.Total() {
		t.Errorf("1 MSHR total %d should exceed unlimited total %d",
			one.Breakdown.Total(), unl.Breakdown.Total())
	}
}

// Multi-issue retires faster on computation-heavy code.
func TestDSMultiIssue(t *testing.T) {
	mk := func() *trace.Trace {
		b := newTB()
		for i := 0; i < 400; i++ {
			b.alu(uint8(1+(i%8)), 9, 10) // independent ALU ops
		}
		return b.halt()
	}
	c1 := cfg(consistency.RC, 128)
	r1, err := RunDS(mk(), c1)
	if err != nil {
		t.Fatal(err)
	}
	c4 := cfg(consistency.RC, 128)
	c4.IssueWidth = 4
	r4, err := RunDS(mk(), c4)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Breakdown.Total() >= r1.Breakdown.Total()*2/3 {
		t.Errorf("4-wide total %d not clearly below 1-wide %d", r4.Breakdown.Total(), r1.Breakdown.Total())
	}
}

// The read-miss issue-delay histogram reflects dependence chains.
func TestDSReadMissDelayHistogram(t *testing.T) {
	chain := newTB()
	for i := 0; i < 5; i++ {
		chain.load(2, 2, uint64(i)*64, true)
	}
	r, err := RunDS(chain.halt(), cfg(consistency.RC, 64))
	if err != nil {
		t.Fatal(err)
	}
	if r.ReadMissDelay.Total != 5 {
		t.Fatalf("histogram samples = %d, want 5", r.ReadMissDelay.Total)
	}
	if r.ReadMissDelay.FractionAbove(40) < 0.5 {
		t.Errorf("chained misses should mostly be delayed > 40 cycles; fraction = %v",
			r.ReadMissDelay.FractionAbove(40))
	}

	indep := newTB()
	for i := 0; i < 5; i++ {
		indep.load(2, 1, uint64(i)*64, true)
	}
	r2, err := RunDS(indep.halt(), cfg(consistency.RC, 64))
	if err != nil {
		t.Fatal(err)
	}
	if r2.ReadMissDelay.FractionAbove(10) > 0.2 {
		t.Errorf("independent misses should issue promptly; fraction above 10 = %v",
			r2.ReadMissDelay.FractionAbove(10))
	}
}

// DS under RC must never be slower than BASE, and total time must be at
// least the instruction count.
func TestDSSanityBounds(t *testing.T) {
	b := newTB()
	for i := 0; i < 50; i++ {
		b.load(2, 1, uint64(i%4)*4096, i%3 == 0)
		b.alu(3, 2, 2)
		b.store(1, 3, uint64(i%4)*4096+8, false)
	}
	tr := b.halt()
	base := RunBase(tr)
	ds, err := RunDS(tr, cfg(consistency.RC, 64))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Breakdown.Total() > base.Breakdown.Total() {
		t.Errorf("DS total %d exceeds BASE total %d", ds.Breakdown.Total(), base.Breakdown.Total())
	}
	if ds.Breakdown.Total() < ds.Instructions {
		t.Errorf("DS total %d below instruction count %d", ds.Breakdown.Total(), ds.Instructions)
	}
}

func TestConfigValidation(t *testing.T) {
	tr := newTB().alu(1, 0, 0).halt()
	if _, err := RunDS(tr, Config{Window: -1}); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := RunSSBR(tr, Config{WriteBufDepth: -1}); err == nil {
		t.Error("negative write buffer accepted")
	}
}
