package cpu

// Property-based tests: the processor models must satisfy structural
// invariants on arbitrary well-formed traces, not just on the benchmark
// applications. Traces are generated from a seed so failures reproduce.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynsched/internal/bpred"
	"dynsched/internal/consistency"
	"dynsched/internal/isa"
	"dynsched/internal/trace"
)

// randomTrace builds a valid synthetic trace of about n instructions.
func randomTrace(seed int64, n int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{App: "random", NumCPUs: 16, MissPenalty: 50}
	pc := int32(0)
	emit := func(e trace.Event) {
		e.PC = pc
		e.NextPC = pc + 1
		pc++
		tr.Events = append(tr.Events, e)
	}
	reg := func() uint8 { return uint8(1 + rng.Intn(12)) }
	lockHeld := false
	for i := 0; i < n; i++ {
		switch r := rng.Intn(100); {
		case r < 40: // ALU
			emit(trace.Event{Instr: isa.Instr{Op: isa.OpAdd, Dst: reg(), Src1: reg(), Src2: reg()}})
		case r < 60: // load
			miss := rng.Intn(4) == 0
			lat := uint32(1)
			if miss {
				lat = 50
			}
			emit(trace.Event{
				Instr: isa.Instr{Op: isa.OpLd, Dst: reg(), Src1: reg()},
				Addr:  uint64(rng.Intn(1024)) * 8, Miss: miss, Latency: lat,
			})
		case r < 75: // store
			miss := rng.Intn(4) == 0
			lat := uint32(1)
			if miss {
				lat = 50
			}
			emit(trace.Event{
				Instr: isa.Instr{Op: isa.OpSt, Src1: reg(), Src2: reg()},
				Addr:  uint64(rng.Intn(1024)) * 8, Miss: miss, Latency: lat,
			})
		case r < 90: // branch (not taken, so PC linking stays linear)
			emit(trace.Event{Instr: isa.Instr{Op: isa.OpBnez, Src1: reg(), Imm: int64(pc) + 2}})
		case r < 95 && !lockHeld: // acquire
			emit(trace.Event{
				Instr: isa.Instr{Op: isa.OpLock, Src1: reg()},
				Addr:  4096, Latency: 50, Wait: uint32(rng.Intn(80)), Miss: true,
			})
			lockHeld = true
		case lockHeld: // release
			emit(trace.Event{
				Instr: isa.Instr{Op: isa.OpUnlock, Src1: reg()},
				Addr:  4096, Latency: 1,
			})
			lockHeld = false
		default: // barrier
			emit(trace.Event{
				Instr: isa.Instr{Op: isa.OpBarrier, Imm: 1},
				Addr:  1, Latency: 50, Wait: uint32(rng.Intn(200)), Miss: true,
			})
		}
	}
	if lockHeld {
		emit(trace.Event{Instr: isa.Instr{Op: isa.OpUnlock, Src1: 1}, Addr: 4096, Latency: 1})
	}
	emit(trace.Event{Instr: isa.Instr{Op: isa.OpHalt}})
	tr.Events[len(tr.Events)-1].NextPC = pc - 1
	return tr
}

func TestRandomTracesAreValid(t *testing.T) {
	f := func(seed int64) bool {
		return randomTrace(seed, 200).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Invariant: every model's total time is at least the instruction count and
// at most BASE's total (overlap never hurts), and busy equals the
// instruction count at issue width 1.
func TestModelsBoundedByBase(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(seed, 300)
		base := RunBase(tr)
		n := uint64(tr.Len())
		if base.Breakdown.Busy != n {
			return false
		}
		for _, model := range consistency.Models {
			for _, arch := range []string{"SSBR", "SS", "DS"} {
				var res Result
				var err error
				cfg := Config{Model: model, Window: 64, Predictor: bpred.Perfect{}}
				switch arch {
				case "SSBR":
					res, err = RunSSBR(tr, cfg)
				case "SS":
					res, err = RunSS(tr, cfg)
				case "DS":
					res, err = RunDS(tr, cfg)
				}
				if err != nil {
					t.Logf("seed %d %v/%s: %v", seed, model, arch, err)
					return false
				}
				total := res.Breakdown.Total()
				if total < n {
					t.Logf("seed %d %v/%s: total %d < instructions %d", seed, model, arch, total, n)
					return false
				}
				if total > base.Breakdown.Total() {
					t.Logf("seed %d %v/%s: total %d > BASE %d", seed, model, arch, total, base.Breakdown.Total())
					return false
				}
				if res.Breakdown.Busy != n {
					t.Logf("seed %d %v/%s: busy %d != n %d", seed, model, arch, res.Breakdown.Busy, n)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Invariant: relaxing the consistency model never slows the DS processor
// down (SC >= PC, SC >= WO >= RC), within a small scheduling-noise slack.
func TestModelRelaxationMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(seed, 300)
		totals := make(map[consistency.Model]uint64)
		for _, m := range consistency.Models {
			res, err := RunDS(tr, Config{Model: m, Window: 128, Predictor: bpred.Perfect{}})
			if err != nil {
				return false
			}
			totals[m] = res.Breakdown.Total()
		}
		slack := func(a, b uint64) bool { return float64(b) <= 1.02*float64(a)+20 }
		if !slack(totals[consistency.SC], totals[consistency.PC]) {
			t.Logf("seed %d: PC %d > SC %d", seed, totals[consistency.PC], totals[consistency.SC])
			return false
		}
		if !slack(totals[consistency.SC], totals[consistency.WO]) {
			t.Logf("seed %d: WO %d > SC %d", seed, totals[consistency.WO], totals[consistency.SC])
			return false
		}
		if !slack(totals[consistency.WO], totals[consistency.RC]) {
			t.Logf("seed %d: RC %d > WO %d", seed, totals[consistency.RC], totals[consistency.WO])
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Invariant: growing the DS window never slows execution down (within
// slack), and the breakdown categories always sum to the total.
func TestWindowMonotonicityAndSum(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(seed, 300)
		var prev uint64
		for i, w := range []int{16, 32, 64, 128, 256} {
			res, err := RunDS(tr, Config{Model: consistency.RC, Window: w, Predictor: bpred.Perfect{}})
			if err != nil {
				return false
			}
			b := res.Breakdown
			if b.Busy+b.Sync+b.Read+b.Write+b.Branch+b.Other != b.Total() {
				return false
			}
			if i > 0 && float64(b.Total()) > 1.02*float64(prev)+20 {
				t.Logf("seed %d: window %d total %d > previous %d", seed, w, b.Total(), prev)
				return false
			}
			prev = b.Total()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Invariant: the DS processor is deterministic — identical runs produce
// identical breakdowns.
func TestDSDeterministicOnRandomTraces(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(seed, 250)
		a, err1 := RunDS(tr, Config{Model: consistency.RC, Window: 64})
		b, err2 := RunDS(tr, Config{Model: consistency.RC, Window: 64})
		return err1 == nil && err2 == nil && a.Breakdown == b.Breakdown
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Invariant: the acquire wait component W is never hidden. Each wait only
// starts elapsing at the window head, after every older instruction has
// retired, so the waits serialize: total time is at least their sum (and
// at least the decode-limited instruction count). This is the paper's
// §4.1.2 bound — acquire overhead from contention and load imbalance is
// "impossible to hide with the techniques we are considering".
func TestAcquireWaitLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(seed, 300)
		var waits, nsync uint64
		for i := range tr.Events {
			if w := uint64(tr.Events[i].Wait); w > 0 {
				waits += w
				nsync++
			}
		}
		res, err := RunDS(tr, Config{Model: consistency.RC, Window: 256, Predictor: bpred.Perfect{}, IgnoreDataDeps: true})
		if err != nil {
			return false
		}
		total := res.Breakdown.Total()
		// One boundary cycle of slack per waiting sync op: its wall starts
		// on a cycle that may also retire older instructions.
		if total+nsync < waits {
			t.Logf("seed %d: total %d < serialized waits %d", seed, total, waits)
			return false
		}
		if total < uint64(tr.Len()) {
			t.Logf("seed %d: total %d < decode bound %d", seed, total, tr.Len())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Invariant: perfect branch prediction and ignoring data dependences never
// hurt.
func TestOracleKnobsNeverHurt(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(seed, 300)
		plain, err := RunDS(tr, Config{Model: consistency.RC, Window: 64})
		if err != nil {
			return false
		}
		pbp, err := RunDS(tr, Config{Model: consistency.RC, Window: 64, Predictor: bpred.Perfect{}})
		if err != nil {
			return false
		}
		nd, err := RunDS(tr, Config{Model: consistency.RC, Window: 64, Predictor: bpred.Perfect{}, IgnoreDataDeps: true})
		if err != nil {
			return false
		}
		ok := func(better, worse uint64) bool { return float64(better) <= 1.02*float64(worse)+20 }
		return ok(pbp.Breakdown.Total(), plain.Breakdown.Total()) &&
			ok(nd.Breakdown.Total(), pbp.Breakdown.Total())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
