package cpu

import (
	"testing"

	"dynsched/internal/trace"
)

// missyTrace builds a trace alternating a read miss with gap busy cycles.
func missyTrace(misses, gap int) *trace.Trace {
	b := newTB()
	for m := 0; m < misses; m++ {
		b.load(2, 1, uint64(m)*64, true)
		for i := 0; i < gap; i++ {
			b.alu(3, 4, 4)
		}
	}
	return b.halt()
}

func TestMCSingleContextMatchesBlockingModel(t *testing.T) {
	tr := missyTrace(10, 5)
	mc, err := RunMC([]*trace.Trace{tr}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Switches != 0 {
		t.Errorf("single context switched %d times", mc.Switches)
	}
	// One context, blocking reads: total = instructions + misses*(lat-1).
	want := uint64(tr.Len()) + 10*49
	if mc.Breakdown.Total() != want {
		t.Errorf("total = %d, want %d", mc.Breakdown.Total(), want)
	}
	if mc.Utilization <= 0 || mc.Utilization >= 1 {
		t.Errorf("utilization = %f", mc.Utilization)
	}
}

func TestMCUtilizationGrowsWithContexts(t *testing.T) {
	mk := func() *trace.Trace { return missyTrace(20, 10) }
	var prev float64
	for _, k := range []int{1, 2, 4} {
		traces := make([]*trace.Trace, k)
		for i := range traces {
			traces[i] = mk()
		}
		mc, err := RunMC(traces, 1)
		if err != nil {
			t.Fatal(err)
		}
		if mc.Utilization < prev {
			t.Errorf("utilization fell with %d contexts: %f < %f", k, mc.Utilization, prev)
		}
		prev = mc.Utilization
	}
	if prev < 0.5 {
		t.Errorf("4 contexts over 10-instruction gaps should exceed 50%% utilization; got %.0f%%", 100*prev)
	}
}

func TestMCSwitchPenaltyCosts(t *testing.T) {
	mk := func() *trace.Trace { return missyTrace(20, 10) }
	cheap, err := RunMC([]*trace.Trace{mk(), mk(), mk(), mk()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	dear, err := RunMC([]*trace.Trace{mk(), mk(), mk(), mk()}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if dear.Breakdown.Total() <= cheap.Breakdown.Total() {
		t.Errorf("higher switch penalty should cost cycles: %d vs %d",
			dear.Breakdown.Total(), cheap.Breakdown.Total())
	}
	if dear.Breakdown.Other <= cheap.Breakdown.Other {
		t.Errorf("switch overhead not visible in Other: %d vs %d",
			dear.Breakdown.Other, cheap.Breakdown.Other)
	}
}

func TestMCAcquireWaitsBlockContext(t *testing.T) {
	// One context hits a long acquire; with a second context the pipeline
	// keeps working through it.
	mkSync := func() *trace.Trace {
		b := newTB()
		b.alu(3, 4, 4)
		b.lock(256, 400, 50)
		b.unlock(256, 1)
		return b.halt()
	}
	mkBusy := func() *trace.Trace {
		b := newTB()
		for i := 0; i < 300; i++ {
			b.alu(3, 4, 4)
		}
		return b.halt()
	}
	solo, err := RunMC([]*trace.Trace{mkSync()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if solo.Breakdown.Sync < 400 {
		t.Errorf("acquire wait not charged: sync = %d", solo.Breakdown.Sync)
	}
	duo, err := RunMC([]*trace.Trace{mkSync(), mkBusy()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if duo.Utilization <= solo.Utilization {
		t.Errorf("second context should absorb the sync wait: %f vs %f",
			duo.Utilization, solo.Utilization)
	}
}

func TestMCValidation(t *testing.T) {
	if _, err := RunMC(nil, 1); err == nil {
		t.Error("empty trace list accepted")
	}
	if _, err := RunMC([]*trace.Trace{nil}, 1); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := RunMC([]*trace.Trace{missyTrace(1, 1)}, -1); err == nil {
		t.Error("negative penalty accepted")
	}
}

func TestMCInstructionConservation(t *testing.T) {
	traces := []*trace.Trace{missyTrace(5, 3), missyTrace(7, 2), missyTrace(3, 9)}
	var want uint64
	for _, tr := range traces {
		want += uint64(tr.Len())
	}
	mc, err := RunMC(traces, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Instructions != want {
		t.Errorf("instructions = %d, want %d", mc.Instructions, want)
	}
	if mc.Breakdown.Busy != want {
		t.Errorf("busy = %d, want %d (one cycle per instruction)", mc.Breakdown.Busy, want)
	}
}
