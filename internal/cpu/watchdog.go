package cpu

// The replay watchdog: every simulation loop in this package is driven by a
// cycle counter, so a modelling bug (an access that never performs, a
// dependence edge that never resolves) shows up as a loop that spins forever
// without retiring anything. The watchdog bounds how long a replay may run
// without forward progress and converts such livelocks into a structured
// *WatchdogError carrying a pipeline-state dump, instead of a hung process.
//
// It is deliberately distinct from the absolute maxDSCycles guard: that one
// caps total simulated time, while the watchdog caps *stagnant* time, so it
// fires long before the absolute cap on a genuinely stuck pipeline yet never
// fires on a long-but-progressing replay.

import (
	"context"
	"fmt"
)

// DefaultWatchdogBudget is the no-progress cycle budget used when
// Config.WatchdogBudget is zero. Legitimate no-retire stretches — an
// acquire's contention wait W, a burst of back-to-back misses — are bounded
// by the application's own simulated time, orders of magnitude below this.
const DefaultWatchdogBudget = uint64(1) << 30

// watchdogStride is how often (in loop iterations, power of two) the replay
// loops poll the watchdog and the cancellation context; a stride keeps the
// checks off the per-cycle hot path. The stride counts iterations rather
// than simulated cycles because the time-skip paths jump the cycle counter
// in irregular increments: a cycle-masked check (t&(stride-1)==0) could be
// jumped over forever, whereas every iteration — stepped or jumped — ticks
// the iteration counter exactly once. The skip paths additionally poll at
// every jump landing, so a jump that crosses the no-progress budget fires
// the watchdog promptly instead of waiting out the stride.
const watchdogStride = 1 << 14

// WatchdogError reports a replay killed for making no forward progress.
// It is permanent: retrying the same deterministic simulation would livelock
// again, so the experiment scheduler fails the cell immediately.
type WatchdogError struct {
	Model        string // "DS", "SSBR", "SS", "tango"
	Cycle        uint64 // cycle at which the watchdog fired
	LastProgress uint64 // last cycle that retired/completed anything
	Budget       uint64 // the no-progress budget that was exceeded
	State        string // human-readable pipeline-state dump
}

func (e *WatchdogError) Error() string {
	return fmt.Sprintf("cpu: %s watchdog: no forward progress for %d cycles (budget %d, cycle %d, last progress at %d); state: %s",
		e.Model, e.Cycle-e.LastProgress, e.Budget, e.Cycle, e.LastProgress, e.State)
}

// Permanent marks the error as not worth retrying (see exp's retry policy).
func (e *WatchdogError) Permanent() bool { return true }

// watchdog tracks the last cycle at which a replay made forward progress.
type watchdog struct {
	budget uint64
	last   uint64
}

func newWatchdog(budget uint64) watchdog {
	if budget == 0 {
		budget = DefaultWatchdogBudget
	}
	return watchdog{budget: budget}
}

// check returns a *WatchdogError if more than budget cycles have elapsed
// since the last recorded progress. state is only invoked when firing.
func (w *watchdog) check(model string, t uint64, state func() string) error {
	if t-w.last <= w.budget {
		return nil
	}
	return &WatchdogError{
		Model:        model,
		Cycle:        t,
		LastProgress: w.last,
		Budget:       w.budget,
		State:        state(),
	}
}

// ctxErr polls ctx without blocking; nil ctx never cancels.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}
