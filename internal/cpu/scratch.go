package cpu

// Allocation-free hot paths. A figure sweep replays the same trace through
// RunDS/RunSS/RunSSBR thousands of times, and each replay used to rebuild
// its reorder-buffer entries, event heap, memory queue, and one heap-
// allocated memOp per memory instruction. The scratch structures here are
// recycled through sync.Pools so a steady-state replay performs no
// allocations beyond its Result: each parallel experiment worker naturally
// ends up with its own scratch, and single-threaded callers reuse one.

import (
	"sync"

	"dynsched/internal/consistency"
	"dynsched/internal/trace"
)

// arenaBlockSize is the number of memOps per arena block. Blocks are never
// reallocated, so pointers handed out by alloc stay valid for the arena's
// lifetime — the property the memq/entries cross-references rely on.
const arenaBlockSize = 1024

// opArena hands out memOps from fixed-size blocks and recycles all of them
// with one reset. memOp contains no pointers, so retained blocks pin nothing
// between runs.
type opArena struct {
	blocks [][]memOp
	bi, n  int // next free slot: blocks[bi][n], with n < arenaBlockSize
}

func (a *opArena) alloc() *memOp {
	if a.bi == len(a.blocks) {
		a.blocks = append(a.blocks, make([]memOp, arenaBlockSize))
	}
	op := &a.blocks[a.bi][a.n]
	*op = memOp{}
	a.n++
	if a.n == arenaBlockSize {
		a.bi++
		a.n = 0
	}
	return op
}

func (a *opArena) reset() { a.bi, a.n = 0, 0 }

// newMemOp allocates an access record for e from the arena.
func (a *opArena) newMemOp(seq int, e *trace.Event) *memOp {
	op := a.alloc()
	op.seq = seq
	op.instr = e.Instr
	op.pc = e.PC
	op.kind = consistency.KindOf(e.Instr.Op)
	op.addr = e.Addr
	op.latency = e.Latency
	op.wait = e.Wait
	op.miss = e.Miss
	op.destReg = e.Instr.Dst
	return op
}

// dsScratch is the reusable working set of one RunDS replay.
type dsScratch struct {
	entries    []dsEntry
	evq        eventHeap
	dispatch   seqHeap
	memq       []*memOp
	stallStack stallStack
	arena      opArena
}

var dsPool = sync.Pool{New: func() any { return new(dsScratch) }}

// getDSScratch returns a scratch with at least window entries, all zeroed.
func getDSScratch(window int) *dsScratch {
	s := dsPool.Get().(*dsScratch)
	if cap(s.entries) < window {
		s.entries = make([]dsEntry, window)
	}
	s.entries = s.entries[:window]
	return s
}

// release clears every pointer the run left behind — trace events in the
// entries, arena ops in the memory queue — so a pooled scratch never pins a
// trace, then returns it to the pool.
func (s *dsScratch) release() {
	for i := range s.entries {
		w := s.entries[i].waiters
		s.entries[i] = dsEntry{waiters: w[:0]}
	}
	for i := range s.memq {
		s.memq[i] = nil
	}
	s.memq = s.memq[:0]
	s.evq = s.evq[:0]
	s.dispatch = s.dispatch[:0]
	s.stallStack = s.stallStack[:0]
	s.arena.reset()
	dsPool.Put(s)
}

// staticScratch is the reusable working set of one RunSS/RunSSBR replay.
type staticScratch struct {
	ops   []*memOp
	wake  []uint64 // opWindow completion-time heap (capacity reuse)
	arena opArena
}

var staticPool = sync.Pool{New: func() any { return new(staticScratch) }}

func getStaticScratch() *staticScratch {
	return staticPool.Get().(*staticScratch)
}

func (s *staticScratch) release() {
	for i := range s.ops {
		s.ops[i] = nil
	}
	s.ops = s.ops[:0]
	s.wake = s.wake[:0]
	s.arena.reset()
	staticPool.Put(s)
}
