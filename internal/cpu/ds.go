package cpu

import (
	"fmt"

	"dynsched/internal/bpred"
	"dynsched/internal/consistency"
	"dynsched/internal/critpath"
	"dynsched/internal/isa"
	"dynsched/internal/obs"
	"dynsched/internal/trace"
)

// The DS model follows Johnson's dynamically scheduled processor (§3.1):
//
//   - Decoded instructions enter the reorder buffer (the lookahead window)
//     in program order, at most IssueWidth per cycle, and retire from its
//     head in program order (FIFO retirement, providing precise interrupts).
//   - Register renaming is implicit in the reorder buffer: an instruction
//     depends on the most recent older in-window producer of each source
//     register that has not yet produced its value. WAR/WAW hazards do not
//     exist in the replay because only true dependences are tracked.
//   - Functional units are 1-cycle (paper assumption); dispatch to them is
//     limited to IssueWidth per cycle, oldest-ready first.
//   - Branches are predicted with the configured predictor. A mispredicted
//     branch stops decode (wrong-path instructions are not in the trace, so
//     the lost lookahead is modelled by the fetch stall) and decode resumes
//     the cycle after the branch executes.
//   - Loads and synchronization accesses issue to a lockup-free, single-
//     ported cache. Loads may issue speculatively and out of order whenever
//     the consistency model permits, and may bypass the store buffer with
//     forwarding on an address match. Stores are held until retirement,
//     then drain from the store buffer subject to the consistency model
//     (footnote 2 of the paper).
//   - An acquire's contention component W cannot begin to elapse before the
//     acquire reaches the head of the window, reproducing the paper's bound
//     that contention and load-imbalance time cannot be hidden, while the
//     memory-transfer component T can be overlapped like any read.

type dsEntry struct {
	seq      int
	ev       *trace.Event
	class    isa.Class
	kind     consistency.Kind
	depCount int
	waiters  []int

	dispatched bool
	done       bool
	mop        *memOp

	decodedAt    uint64
	issuedAt     uint64 // dispatch to a functional unit (pipeline tracing)
	doneAt       uint64 // FU completion / load perform (pipeline tracing)
	headAt       uint64 // cycle the entry reached the ROB head (for W walls)
	headSeen     bool
	mispredicted bool
	waitsOnLoad  bool // some register producer was a load (stall attribution)
}

type dsEventKind uint8

const (
	evDone    dsEventKind = iota // functional unit completes entry
	evPerform                    // memory access performs
)

// Stall attribution categories.
const (
	catSync uint8 = iota
	catRead
	catWrite
	catBranch
	catOther
)

type dsEvent struct {
	at   uint64
	kind dsEventKind
	seq  int
}

// eventHeap is a binary min-heap on event time (ties broken by seq so the
// simulation is deterministic).
type eventHeap []dsEvent

func (h *eventHeap) push(e dsEvent) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !lessEv((*h)[i], (*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *eventHeap) pop() dsEvent {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && lessEv(old[l], old[s]) {
			s = l
		}
		if r < n && lessEv(old[r], old[s]) {
			s = r
		}
		if s == i {
			break
		}
		old[i], old[s] = old[s], old[i]
		i = s
	}
	return top
}

func lessEv(a, b dsEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// seqHeap is a min-heap of sequence numbers (oldest-ready-first dispatch).
type seqHeap []int

func (h *seqHeap) push(s int) {
	*h = append(*h, s)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[i] >= (*h)[p] {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *seqHeap) pop() int {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && old[l] < old[s] {
			s = l
		}
		if r < n && old[r] < old[s] {
			s = r
		}
		if s == i {
			break
		}
		old[i], old[s] = old[s], old[i]
		i = s
	}
	return top
}

// stallStack is the LIFO of charged stall categories used for burst credit,
// run-length encoded: a stretch of identical charges is one run. The
// encoding is what lets the time-skip path push a whole quiet stretch in
// O(1) without the stack growing with simulated time, while popping remains
// strictly one charged cycle at a time — the pop order is identical to a
// flat per-cycle stack, so the credited categories match the cycle-stepped
// accounting exactly.
type stallRun struct {
	cat uint8
	n   uint64
}

type stallStack []stallRun

// pushN records n consecutive stall cycles of category cat.
func (s *stallStack) pushN(cat uint8, n uint64) {
	if l := len(*s); l > 0 && (*s)[l-1].cat == cat {
		(*s)[l-1].n += n
		return
	}
	*s = append(*s, stallRun{cat: cat, n: n})
}

// pop removes and returns the most recently charged cycle's category.
// The caller must check len(*s) > 0 first.
func (s *stallStack) pop() uint8 {
	l := len(*s)
	c := (*s)[l-1].cat
	(*s)[l-1].n--
	if (*s)[l-1].n == 0 {
		*s = (*s)[:l-1]
	}
	return c
}

const maxDSCycles = uint64(1) << 40

// RunDS replays tr through the dynamically scheduled processor.
func RunDS(tr *trace.Trace, cfg Config) (Result, error) {
	src := sliceSource(tr)
	return runDS(&src, cfg)
}

// runDS is the DS replay core, fed by an eventSource so the same loop
// serves materialized traces and streaming cursors. Reorder-buffer entries
// hold *trace.Event pointers for at most Window fetches, which the
// streaming entry point bounds by trace.CursorLookback.
func runDS(src *eventSource, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	pred := cfg.Predictor
	if pred == nil {
		pred = bpred.NewPaperBTB()
	}

	scratch := getDSScratch(cfg.Window)
	var (
		cat        [5]uint64            // stall cycles by category (see catSync..catOther)
		stallStack = scratch.stallStack // LIFO of charged stall categories, for burst credit
		credit     int                  // excess retirements not yet converted to credit
		window     = cfg.Window
		entries    = scratch.entries

		headSeq, nextSeq int // ROB occupancy is [headSeq, nextSeq)
		idx              int // next trace event to decode

		lastWriter [isa.NumRegs]int

		evq      = scratch.evq
		dispatch = scratch.dispatch

		memq    = scratch.memq
		memLive int
		sbCount int
		outMiss int // outstanding (issued, unperformed) misses

		fetchBlockedBy = -1
		mispredicts    uint64
		prefetches     uint64
		occupancySum   uint64
		hist           = NewDelayHistogram()
		t              uint64
	)
	defer func() {
		// Hand the (possibly grown) slices back so the pool retains their
		// capacity for the next replay.
		scratch.evq, scratch.dispatch = evq, dispatch
		scratch.memq, scratch.stallStack = memq, stallStack
		scratch.release()
	}()
	for r := range lastWriter {
		lastWriter[r] = -1
	}

	// Observability: occupancy/delay histograms when metrics are on, batched
	// per run so the hot loop never touches the shared registry. The batches
	// are registry-registered, so a snapshot taken mid-run (live /metrics,
	// -metrics-out on error) still sees their pending samples.
	var robHist, sbHist, mshrHist, delayHist *obs.HistogramBatch
	if cfg.Metrics != nil {
		p := cfg.MetricsPrefix
		robHist = cfg.Metrics.HistogramBatch(obs.Prefixed(p, "rob.occupancy"), occupancyBuckets...)
		sbHist = cfg.Metrics.HistogramBatch(obs.Prefixed(p, "storebuf.occupancy"), bufferBuckets...)
		mshrHist = cfg.Metrics.HistogramBatch(obs.Prefixed(p, "mshr.outstanding"), bufferBuckets...)
		delayHist = cfg.Metrics.HistogramBatch(obs.Prefixed(p, "readmiss.issue_delay"), delayBuckets...)
	}
	at := func(seq int) *dsEntry { return &entries[seq%window] }
	inROB := func(seq int) bool {
		return seq >= 0 && seq >= headSeq && seq < nextSeq && at(seq).seq == seq
	}
	producerPending := func(seq int) bool {
		// A producer blocks its consumers until its value is available:
		// loads until they perform, everything else until the FU completes.
		if !inROB(seq) {
			return false
		}
		e := at(seq)
		if e.class == isa.ClassLoad {
			return e.mop == nil || !e.mop.performed
		}
		return !e.done
	}
	wake := func(e *dsEntry) {
		for _, w := range e.waiters {
			we := at(w)
			if we.seq != w {
				continue
			}
			we.depCount--
			if we.depCount == 0 {
				makeReady(we, &dispatch)
			}
		}
		e.waiters = e.waiters[:0]
	}

	var srcBuf [2]uint8

	// Critical-path attribution (package critpath): each stall cycle the
	// coarse accounting below charges is mirrored into a fine cause bucket,
	// refined at the same decision points — e.g. an unissued head load is
	// split into consistency-blocked vs MSHR-exhausted by replaying the
	// cache port's own issue test. fineStall is evaluated only on stall
	// cycles with a collector attached; the default path pays nil checks.
	cp := cfg.CritPath
	fineStall := func() critpath.Cause {
		if headSeq < nextSeq {
			h := at(headSeq)
			switch h.class {
			case isa.ClassLoad:
				m := h.mop
				if m.issued {
					return critpath.ReadLat
				}
				if !m.addrReady {
					if h.waitsOnLoad {
						return critpath.ReadLat // load-use address chain
					}
					return critpath.DataDep
				}
				// Ready but the port has not accepted it: mirror issueMem's
				// gates — consistency ordering first, then the MSHR bound.
				var pend consistency.Pending
				for _, om := range memq {
					if !om.performed && om.seq < h.seq {
						pendingOf(om, &pend)
					}
				}
				if !consistency.MayIssue(cfg.Model, h.kind, pend) && !cfg.SpeculativeLoads {
					return critpath.Consistency
				}
				if cfg.MSHRs > 0 && outMiss >= cfg.MSHRs && m.latency > 1 {
					return critpath.MSHRFull
				}
				return critpath.ReadLat // allowed; waiting on the single port
			case isa.ClassStore:
				if h.waitsOnLoad && !h.done {
					return critpath.ReadLat
				}
				if !h.done {
					return critpath.DataDep
				}
				return critpath.BufferFull // store buffer full at retirement
			case isa.ClassSync:
				if isAcquireClass(h.ev.Instr.Op) {
					return critpath.SyncWait
				}
				if h.waitsOnLoad && !h.done {
					return critpath.ReadLat
				}
				if !h.done {
					return critpath.DataDep
				}
				return critpath.BufferFull // release blocked on the store buffer
			default: // ALU/branch/halt not yet executed
				if h.waitsOnLoad {
					return critpath.ReadLat // tail of a load-use chain
				}
				if h.depCount > 0 {
					return critpath.DataDep
				}
				return critpath.BranchRefill // pipeline fill after redirect
			}
		}
		if fetchBlockedBy >= 0 {
			return critpath.BranchRefill
		}
		if memLive > 0 && idx >= src.n {
			return critpath.WriteLat // draining buffered writes at the end
		}
		return critpath.Other
	}
	var fineCat critpath.Cause // this cycle's fine cause (valid when charged)

	// Interval timeline sampling: cumulative state snapshots at aligned
	// 2^k-cycle boundaries. At the top of the body for cycle t the live
	// counters cover cycles 0..t-1 — exactly boundary t — and a time-skip
	// jump interpolates each crossed boundary inside the bulk-charged
	// stretch, so the series is byte-identical skip vs noskip. Busy is the
	// same residual the final Breakdown uses (cycle − Σstalls), which is
	// why a snapshot needs only the stall-category array: burst-retirement
	// credit pops show up as stall counters *decreasing* between
	// boundaries, i.e. signed interval deltas.
	tl := cfg.Timeline
	var tlSBSum, tlMSHRSum uint64
	dsPoint := func(cycle uint64, stalls [5]uint64, occSum, sbSum, mshrSum uint64, extra critpath.Cause, extraN uint64) obs.TimelinePoint {
		st := stalls[catSync] + stalls[catRead] + stalls[catWrite] + stalls[catBranch] + stalls[catOther]
		p := obs.TimelinePoint{
			Cycle: cycle, Instructions: uint64(headSeq),
			Busy: cycle - st,
			Sync: stalls[catSync], Read: stalls[catRead], Write: stalls[catWrite],
			Branch: stalls[catBranch], Other: stalls[catOther],
			WindowSum: occSum, StoreBufSum: sbSum, MSHRSum: mshrSum,
		}
		if cp != nil {
			cc := cp.CycleCounts()
			cc[extra] += extraN
			p.Causes = append([]uint64(nil), cc[:]...)
		}
		return p
	}

	// Livelock watchdog and cooperative cancellation, polled on a stride so
	// the per-cycle hot path stays branch-light.
	dog := newWatchdog(cfg.WatchdogBudget)
	dsState := func() string {
		s := fmt.Sprintf("head=%d next=%d decoded=%d/%d memLive=%d storeBuf=%d outstandingMiss=%d fetchBlockedBy=%d",
			headSeq, nextSeq, idx, src.n, memLive, sbCount, outMiss, fetchBlockedBy)
		if headSeq < nextSeq {
			h := at(headSeq)
			s += fmt.Sprintf("; ROB head seq=%d op=%s deps=%d dispatched=%t done=%t",
				h.seq, h.ev.Instr.String(), h.depCount, h.dispatched, h.done)
			if h.mop != nil {
				s += fmt.Sprintf(" mop{addrReady=%t issued=%t performed=%t inSB=%t}",
					h.mop.addrReady, h.mop.issued, h.mop.performed, h.mop.inSB)
			}
		}
		return s
	}

	// Event-driven time-skip: when a fully executed cycle is a fixed point —
	// no completion, no retirement, no dispatch, an idle cache port, no
	// decode, exactly one stall charge — every cycle until the next scheduled
	// event behaves identically, so simulated time jumps straight there and
	// the skipped stall cycles are charged in bulk. The accounting below is
	// byte-identical to stepping: same stall categories, same stall-stack
	// contents (run-length encoded), same occupancy sums and histogram
	// observations.
	var (
		skip   = !cfg.NoTimeSkip
		iter   uint64 // loop iterations (not cycles): the poll cadence
		jumped bool   // last iteration time-skipped; poll on landing
	)

	for idx < src.n || headSeq < nextSeq || memLive > 0 {
		if t >= maxDSCycles {
			return Result{}, fmt.Errorf("cpu: DS simulation exceeded %d cycles (stuck?)", maxDSCycles)
		}
		// Polls are strided by loop iteration, not by cycle mask: time-skip
		// jumps land on arbitrary cycle values, so a cycle-masked check could
		// be jumped over indefinitely. A jump landing is polled immediately —
		// a skip that crossed the no-progress budget must fire the watchdog
		// now, not a stride later.
		if iter&(watchdogStride-1) == 0 || jumped {
			jumped = false
			if err := ctxErr(cfg.Ctx); err != nil {
				return Result{}, fmt.Errorf("cpu: DS replay canceled at cycle %d: %w", t, err)
			}
			if err := dog.check("DS", t, dsState); err != nil {
				return Result{}, err
			}
		}
		iter++

		if tl != nil && t == tl.Boundary() {
			tl.Record(dsPoint(t, cat, occupancySum, tlSBSum, tlMSHRSum, 0, 0))
		}

		prevIdx := idx

		// Phase 1: completions scheduled for this cycle.
		popped := false
		for len(evq) > 0 && evq[0].at <= t {
			popped = true
			e := evq.pop()
			switch e.kind {
			case evDone:
				en := at(e.seq)
				if en.seq != e.seq {
					break // stale (should not happen; entries retire after done)
				}
				en.done = true
				en.doneAt = t
				if en.mispredicted && fetchBlockedBy == e.seq {
					fetchBlockedBy = -1 // decode resumes this cycle
				}
				wake(en)
			case evPerform:
				en := at(e.seq)
				var mop *memOp
				if en.seq == e.seq && en.mop != nil {
					mop = en.mop
				}
				// Retired stores have left the ROB; find their op in memq.
				if mop == nil {
					for _, m := range memq {
						if m.seq == e.seq && !m.performed {
							mop = m
							break
						}
					}
				}
				if mop == nil || mop.performed {
					break
				}
				mop.performed = true
				memLive--
				if mop.usedMSHR {
					outMiss--
				}
				if mop.inSB {
					sbCount--
				}
				if en.seq == e.seq {
					if en.class == isa.ClassLoad {
						en.done = true
					}
					en.doneAt = t
					wake(en)
				}
			}
		}

		// Phase 2: retire completed instructions from the ROB head. Decode
		// and issue are limited to IssueWidth per cycle (§4.1: "we have
		// limited the decode and issue rate ... to a maximum of 1
		// instruction per cycle") but retirement is not: the reorder buffer
		// deallocates every completed head entry, which is what lets
		// buffered-up computation drain after a long miss resolves.
		retired := 0
		for headSeq < nextSeq {
			h := at(headSeq)
			if !h.headSeen {
				h.headSeen = true
				h.headAt = t
			}
			ok := false
			switch h.class {
			case isa.ClassALU, isa.ClassBranch, isa.ClassHalt:
				ok = h.done
			case isa.ClassLoad:
				ok = h.mop.performed
			case isa.ClassStore:
				if h.done && sbCount < cfg.StoreBufDepth {
					h.mop.inSB = true
					sbCount++
					ok = true
				}
			case isa.ClassSync:
				if isAcquireClass(h.ev.Instr.Op) {
					ok = h.mop.performed && t >= h.headAt+uint64(h.mop.wait)
				} else if h.done && sbCount < cfg.StoreBufDepth {
					h.mop.inSB = true // releases drain through the store buffer
					sbCount++
					ok = true
				}
			}
			if !ok {
				break
			}
			if cfg.Pipe != nil {
				issued := h.issuedAt
				if h.mop != nil && h.mop.issuedAt > issued {
					issued = h.mop.issuedAt // cache-port issue time for loads/acquires
				}
				cfg.Pipe.Record(obs.InstrRecord{
					Seq:        uint64(h.seq),
					PC:         h.ev.PC,
					Disasm:     h.ev.Instr.String(),
					DecodedAt:  h.decodedAt,
					IssuedAt:   issued,
					DoneAt:     h.doneAt,
					RetiredAt:  t,
					Miss:       h.ev.Miss,
					Mispredict: h.mispredicted,
				})
			}
			if cp != nil {
				// Last-arriving edge of the retiring instruction: a head that
				// waited takes the cause of the stall it sat through; one that
				// completed earlier but retired only now was bound by in-order
				// retirement; anything else flowed through busily.
				switch {
				case h.headAt < t:
					cp.EdgeLast()
				case h.doneAt < t:
					cp.Edge(critpath.InOrder)
				default:
					cp.Edge(critpath.Busy)
				}
			}
			headSeq++
			retired++
		}
		if retired > 0 {
			dog.last = t
		}

		// Stall attribution: a cycle with no retirement is classified by the
		// blocking reason at the reorder-buffer head and pushed on the stall
		// stack. A cycle that retires k > 1 instructions proves that k-1 of
		// the most recent stall cycles actually overlapped useful buffered
		// work, so those cycles are reclassified as busy (popped). This
		// keeps the busy section equal to the useful cycles, as in Figure 3.
		stallCat := catOther // category charged this cycle (valid when retired == 0)
		if retired == 0 {
			c := catOther
			if headSeq < nextSeq {
				h := at(headSeq)
				switch h.class {
				case isa.ClassLoad:
					if h.mop.issued {
						c = catRead
					} else {
						// Blocked by consistency constraints: charge the
						// oldest unperformed access holding it up (e.g. an
						// incomplete write under SC), as in the static
						// models' attribution.
						c = oldestPendingCategory(memq)
					}
				case isa.ClassStore:
					if h.waitsOnLoad && !h.done {
						c = catRead
					} else {
						c = catWrite
					}
				case isa.ClassSync:
					if isAcquireClass(h.ev.Instr.Op) {
						c = catSync
					} else if h.waitsOnLoad && !h.done {
						c = catRead
					} else {
						c = catWrite
					}
				default: // ALU/branch/halt not yet executed
					if h.waitsOnLoad {
						c = catRead // tail of a load-use chain
					} else {
						c = catBranch // pipeline refill after redirect or cold start
					}
				}
			} else if fetchBlockedBy >= 0 {
				c = catBranch
			} else if memLive > 0 && idx >= src.n {
				c = catWrite // draining the store buffer at the end
			}
			cat[c]++
			stallStack.pushN(c, 1)
			stallCat = c
			if cp != nil {
				fineCat = fineStall()
				cp.Stall(fineCat)
			}
		} else if retired > cfg.IssueWidth {
			// A cycle that retires more than the issue width proves that
			// earlier stall cycles overlapped useful buffered work; credit
			// them in units of the issue width (one width's worth of
			// retirements = one cycle of useful work).
			credit += retired - cfg.IssueWidth
			for credit >= cfg.IssueWidth && len(stallStack) > 0 {
				cat[stallStack.pop()]--
				cp.Uncharge()
				credit -= cfg.IssueWidth
			}
		}

		occupancySum += uint64(nextSeq - headSeq)
		if tl != nil {
			tlSBSum += uint64(sbCount)
			tlMSHRSum += uint64(outMiss)
		}
		if cfg.Metrics != nil {
			robHist.Observe(uint64(nextSeq - headSeq))
			sbHist.Observe(uint64(sbCount))
			mshrHist.Observe(uint64(outMiss))
		}
		if cfg.Progress != nil && t&(obs.PublishEvery-1) == 0 {
			cfg.Progress.Publish(uint64(headSeq), t)
		}

		// Phase 3: dispatch up to IssueWidth ready instructions to FUs.
		dispatched := false
		for n := 0; n < cfg.IssueWidth && len(dispatch) > 0; n++ {
			s := dispatch.pop()
			en := at(s)
			if en.seq != s || en.dispatched {
				n--
				continue
			}
			en.dispatched = true
			en.issuedAt = t
			dispatched = true
			evq.push(dsEvent{at: t + 1, kind: evDone, seq: s})
		}

		// Phase 4: the cache port issues at most one memory access.
		memActive := issueMem(memq, t, cfg, &evq, &outMiss, hist, delayHist, &prefetches)

		// Compact the memory queue when mostly dead.
		if len(memq) > 2*memLive+32 {
			live := memq[:0]
			for _, m := range memq {
				if !m.performed {
					live = append(live, m)
				}
			}
			for i := len(live); i < len(memq); i++ {
				memq[i] = nil
			}
			memq = live
		}

		// Phase 5: decode up to IssueWidth instructions into the ROB.
		for n := 0; n < cfg.IssueWidth; n++ {
			if idx >= src.n || fetchBlockedBy >= 0 || nextSeq-headSeq >= window {
				break
			}
			ev, err := src.fetch()
			if err != nil {
				return Result{}, err
			}
			seq := nextSeq
			en := at(seq)
			*en = dsEntry{seq: seq, ev: ev, class: ev.Class(), kind: consistency.KindOf(ev.Instr.Op), decodedAt: t, waiters: en.waiters[:0]}

			if !cfg.IgnoreDataDeps {
				for _, r := range ev.Instr.SrcRegs(srcBuf[:0]) {
					w := lastWriter[r]
					if producerPending(w) {
						p := at(w)
						p.waiters = append(p.waiters, seq)
						en.depCount++
						if p.class == isa.ClassLoad {
							en.waitsOnLoad = true
						} else if p.waitsOnLoad {
							en.waitsOnLoad = true // transitive load-use chain
						}
					}
				}
			}
			if ev.Instr.HasDest() {
				lastWriter[ev.Instr.Dst] = seq
			}

			switch en.class {
			case isa.ClassALU, isa.ClassHalt:
				if en.depCount == 0 {
					dispatch.push(seq)
				}
			case isa.ClassBranch:
				if isa.IsCondBranch(ev.Instr.Op) {
					if pred.Predict(ev.PC, ev.Taken) != ev.Taken {
						en.mispredicted = true
						mispredicts++
						fetchBlockedBy = seq
					}
					pred.Update(ev.PC, ev.Taken)
				}
				if en.depCount == 0 {
					dispatch.push(seq)
				}
			case isa.ClassLoad:
				en.mop = scratch.arena.newMemOp(seq, ev)
				memq = append(memq, en.mop)
				memLive++
				if en.depCount == 0 {
					en.mop.addrReady = true
				}
			case isa.ClassStore:
				en.mop = scratch.arena.newMemOp(seq, ev)
				memq = append(memq, en.mop)
				memLive++
				if en.depCount == 0 {
					dispatch.push(seq) // compute address+data, then retire to SB
				}
			case isa.ClassSync:
				en.mop = scratch.arena.newMemOp(seq, ev)
				memq = append(memq, en.mop)
				memLive++
				if isAcquireClass(ev.Instr.Op) {
					en.mop.addrReady = true // acquires carry no register deps
				} else if en.depCount == 0 {
					dispatch.push(seq)
				}
			}
			if en.mop != nil {
				en.mop.decodedAt = t
			}
			nextSeq++
			idx++
		}

		// Time-skip: this cycle was a fixed point iff nothing above mutated
		// machine state beyond the single stall charge. If so, find the next
		// cycle at which anything can change and jump there, charging the
		// quiet stretch in bulk. With no scheduled event the machine is
		// genuinely livelocked: fall through to single-cycle stepping so the
		// watchdog measures the stagnation and kills the replay.
		if skip && retired == 0 && !popped && !dispatched && !memActive && idx == prevIdx {
			next := ^uint64(0)
			if len(evq) > 0 {
				next = evq[0].at // earliest FU completion or memory perform
			}
			if headSeq < nextSeq {
				// A performed acquire at the ROB head retires only once its
				// contention wall headAt+W has elapsed — a purely
				// time-triggered transition.
				if h := at(headSeq); h.class == isa.ClassSync && isAcquireClass(h.ev.Instr.Op) &&
					h.mop.performed {
					if w := h.headAt + uint64(h.mop.wait); w > t && w < next {
						next = w
					}
				}
			}
			if cfg.Prefetch && cfg.MSHRs > 0 {
				// A prefetched access blocked on exhausted MSHRs becomes
				// issuable when its in-flight prefetch decays the remaining
				// latency to 1, which bypasses the MSHR gate: at
				// prefetchedAt+latency-1.
				for _, m := range memq {
					if m.prefetched && !m.issued && !m.performed && m.latency > 1 {
						if th := m.prefetchedAt + uint64(m.latency) - 1; th > t && th < next {
							next = th
						}
					}
				}
			}
			if next != ^uint64(0) && next > maxDSCycles {
				next = maxDSCycles // the absolute guard fires at the same cycle as stepping
			}
			if next != ^uint64(0) && next > t+1 {
				delta := next - t - 1 // quiet cycles t+1 .. next-1
				occ := uint64(nextSeq - headSeq)
				if tl != nil {
					// The jump lands at next with the top-of-body check
					// already past boundary next, so interpolate every
					// boundary b in (t, next] here, before the bulk charges
					// land: b snapshots the state after cycles 0..b-1, i.e.
					// the fixed point plus b-t-1 repeats of its single
					// stall charge, with occupancy frozen and no retires.
					for b := tl.Boundary(); b <= next; b = tl.Boundary() {
						q := b - t - 1
						sq := cat
						sq[stallCat] += q
						tl.Record(dsPoint(b, sq, occupancySum+occ*q,
							tlSBSum+uint64(sbCount)*q, tlMSHRSum+uint64(outMiss)*q,
							fineCat, q))
					}
				}
				cat[stallCat] += delta
				stallStack.pushN(stallCat, delta)
				if cp != nil {
					// The fixed point charged fineCat this cycle; the skipped
					// stretch repeats exactly that charge.
					cp.StallN(fineCat, delta)
				}
				occupancySum += occ * delta
				if tl != nil {
					tlSBSum += uint64(sbCount) * delta
					tlMSHRSum += uint64(outMiss) * delta
				}
				if cfg.Metrics != nil {
					robHist.ObserveN(occ, delta)
					sbHist.ObserveN(uint64(sbCount), delta)
					mshrHist.ObserveN(uint64(outMiss), delta)
				}
				if cfg.Progress != nil && t/obs.PublishEvery != next/obs.PublishEvery {
					cfg.Progress.Publish(uint64(headSeq), next)
				}
				t = next
				jumped = true
				continue
			}
		}

		t++
	}

	// Assemble the final breakdown: total cycles minus attributed stall
	// cycles is busy (useful) time. For issue width 1 this equals the
	// instruction count exactly; for wider issue it is the cycles the
	// machine spent retiring work.
	stall := cat[catSync] + cat[catRead] + cat[catWrite] + cat[catBranch] + cat[catOther]
	busy := t - stall
	bd := Breakdown{
		Busy:   busy,
		Sync:   cat[catSync],
		Read:   cat[catRead],
		Write:  cat[catWrite],
		Branch: cat[catBranch],
		Other:  cat[catOther],
	}

	res := Result{
		Breakdown:     bd,
		Instructions:  uint64(src.n),
		Mispredicts:   mispredicts,
		Prefetches:    prefetches,
		ReadMissDelay: hist,
	}
	if t > 0 {
		res.AvgOccupancy = float64(occupancySum) / float64(t)
	}
	if tl != nil {
		tl.Finish(dsPoint(t, cat, occupancySum, tlSBSum, tlMSHRSum, 0, 0))
	}
	cp.Finish(t)
	robHist.Close()
	sbHist.Close()
	mshrHist.Close()
	delayHist.Close()
	cfg.Progress.Publish(uint64(headSeq), t)
	publishResult(&cfg, res)
	return res, nil
}

// makeReady transitions an entry whose dependences are satisfied.
func makeReady(e *dsEntry, dispatch *seqHeap) {
	switch e.class {
	case isa.ClassLoad:
		e.mop.addrReady = true
	case isa.ClassStore:
		dispatch.push(e.seq)
	case isa.ClassSync:
		if isAcquireClass(e.ev.Instr.Op) {
			e.mop.addrReady = true
		} else {
			dispatch.push(e.seq)
		}
	default:
		dispatch.push(e.seq)
	}
}

// issueMem models the single cache port: scan the memory queue in program
// order, accumulating the consistency summary of older unperformed
// accesses, and issue the first access that is ready and permitted. With
// prefetching enabled, an otherwise idle port issues a non-binding prefetch
// for the oldest consistency-blocked miss instead. It reports whether it
// changed machine state (issued an access or started a prefetch) — an idle
// port is one of the conditions for a cycle to be a time-skip fixed point.
func issueMem(memq []*memOp, t uint64, cfg Config, evq *eventHeap, outMiss *int, hist *DelayHistogram, delayHist *obs.HistogramBatch, prefetches *uint64) bool {
	var pend consistency.Pending
	var pfCand *memOp
	for i, m := range memq {
		if m.performed {
			continue
		}
		if !m.issued && memReady(m) {
			allowed := consistency.MayIssue(cfg.Model, m.kind, pend)
			if !allowed && cfg.SpeculativeLoads && m.kind == consistency.Load {
				// Speculative read ([8]): issue anyway; in-order retirement
				// plus the (unmodelled, rare) rollback preserve the model.
				allowed = true
			}
			if allowed {
				forwarded := m.kind == consistency.Load &&
					(consistency.AllowsLoadBypass(cfg.Model) || cfg.SpeculativeLoads) &&
					forwardableIn(memq[:i], m.addr)
				lat := uint64(m.latency)
				if forwarded {
					lat = 1 // store-buffer forwarding satisfies the load locally
				} else if m.prefetched {
					// The prefetch has been bringing the line in; only the
					// remaining latency is exposed.
					if el := t - m.prefetchedAt; el >= lat-1 {
						lat = 1
					} else {
						lat -= el
					}
				}
				if lat > 1 && cfg.MSHRs > 0 && *outMiss >= cfg.MSHRs {
					pendingOf(m, &pend)
					continue // MSHRs exhausted: this miss cannot start yet
				}
				m.issued = true
				m.issuedAt = t
				if lat > 1 {
					m.usedMSHR = true
					*outMiss++
				}
				if m.kind == consistency.Load && m.miss && !forwarded {
					hist.Observe(t - m.decodedAt)
					delayHist.Observe(t - m.decodedAt)
				}
				m.performAt = t + lat
				evq.push(dsEvent{at: m.performAt, kind: evPerform, seq: m.seq})
				return true
			}
			if cfg.Prefetch && pfCand == nil && m.miss && !m.prefetched {
				pfCand = m // oldest ready access blocked purely by consistency
			}
		}
		pendingOf(m, &pend)
	}
	if pfCand != nil {
		// Non-binding prefetch: warms the cache without performing the
		// access, so no consistency constraint applies (reference [8]).
		pfCand.prefetched = true
		pfCand.prefetchedAt = t
		*prefetches++
		return true
	}
	return false
}

// oldestPendingCategory classifies the oldest unperformed access in the
// memory queue for stall attribution.
func oldestPendingCategory(memq []*memOp) uint8 {
	for _, m := range memq {
		if m.performed {
			continue
		}
		switch {
		case m.kind&consistency.Acquire != 0:
			return catSync
		case m.kind&(consistency.Store|consistency.Release) != 0:
			return catWrite
		default:
			return catRead
		}
	}
	return catRead
}

func memReady(m *memOp) bool {
	if m.kind&(consistency.Store|consistency.Release) != 0 && m.kind&consistency.Acquire == 0 {
		return m.inSB
	}
	return m.addrReady
}

// forwardableIn reports whether older contains an unperformed store to addr.
func forwardableIn(older []*memOp, addr uint64) bool {
	for _, m := range older {
		if !m.performed && m.kind&consistency.Store != 0 && m.addr == addr {
			return true
		}
	}
	return false
}
