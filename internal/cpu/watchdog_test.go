package cpu

import (
	"context"
	"errors"
	"strings"
	"testing"

	"dynsched/internal/consistency"
	"dynsched/internal/trace"
)

// stallTrace holds an acquire whose contention wait W is far beyond the
// test's watchdog budget, producing a long legitimate no-retire stretch —
// exactly the signature of a livelocked replay.
func stallTrace(wait uint32) *trace.Trace {
	return newTB().
		alu(1, 0, 0).
		lock(256, wait, 50).
		unlock(256, 1).
		halt()
}

func TestWatchdogKillsStalledReplay(t *testing.T) {
	tr := stallTrace(1 << 22)
	for _, tc := range []struct {
		model string
		run   func(*trace.Trace, Config) (Result, error)
	}{
		{"SSBR", RunSSBR},
		{"SS", RunSS},
		{"DS", RunDS},
	} {
		c := cfg(consistency.SC, 64)
		c.WatchdogBudget = 100
		_, err := tc.run(tr, c)
		if err == nil {
			t.Fatalf("%s: stalled replay not killed", tc.model)
		}
		var wd *WatchdogError
		if !errors.As(err, &wd) {
			t.Fatalf("%s: err = %v, want *WatchdogError", tc.model, err)
		}
		if wd.Model != tc.model {
			t.Errorf("model = %q, want %q", wd.Model, tc.model)
		}
		if wd.Budget != 100 || wd.Cycle <= wd.LastProgress {
			t.Errorf("%s: bad watchdog bookkeeping: %+v", tc.model, wd)
		}
		if wd.State == "" {
			t.Errorf("%s: watchdog fired without a pipeline-state dump", tc.model)
		}
		if !wd.Permanent() {
			t.Errorf("%s: watchdog errors must be permanent (not retried)", tc.model)
		}
		if !strings.Contains(err.Error(), "watchdog") || !strings.Contains(err.Error(), "state:") {
			t.Errorf("%s: undiagnosable error text: %v", tc.model, err)
		}
	}
}

// TestWatchdogFiresUnderTimeSkip guards the interaction between the
// watchdog and the event-driven time-skip path. The stall's wait is
// deliberately not a multiple of the poll stride: a cycle-masked poll
// (t&(stride-1)==0, the pre-skip design) would never be evaluated once the
// skip path jumps straight from the stall's onset to the acquire wall,
// letting a livelock sail past the budget unnoticed. The iteration-strided
// polls plus the poll at every jump landing must catch the stagnation under
// both stepping disciplines.
func TestWatchdogFiresUnderTimeSkip(t *testing.T) {
	tr := stallTrace(1<<22 + 12345)
	for _, tc := range []struct {
		model string
		run   func(*trace.Trace, Config) (Result, error)
	}{
		{"SSBR", RunSSBR},
		{"SS", RunSS},
		{"DS", RunDS},
	} {
		for _, noskip := range []bool{false, true} {
			c := cfg(consistency.SC, 64)
			c.WatchdogBudget = 100
			c.NoTimeSkip = noskip
			_, err := tc.run(tr, c)
			var wd *WatchdogError
			if !errors.As(err, &wd) {
				t.Fatalf("%s noskip=%v: err = %v, want *WatchdogError", tc.model, noskip, err)
			}
			if wd.Cycle-wd.LastProgress <= wd.Budget {
				t.Errorf("%s noskip=%v: fired within budget: %+v", tc.model, noskip, wd)
			}
		}
	}
}

// The same stall under the default budget must complete: long waits are
// legitimate, only stagnation beyond the budget is not.
func TestWatchdogDefaultBudgetAllowsLongWaits(t *testing.T) {
	tr := stallTrace(1 << 18)
	for _, run := range []func(*trace.Trace, Config) (Result, error){RunSSBR, RunSS, RunDS} {
		if _, err := run(tr, cfg(consistency.SC, 64)); err != nil {
			t.Fatalf("legitimate long wait killed: %v", err)
		}
	}
}

// A generous explicit budget must not fire on a normal replay either.
func TestWatchdogQuietOnNormalReplay(t *testing.T) {
	tr := newTB().
		alu(1, 0, 0).
		load(2, 1, 64, true).
		store(1, 2, 128, true).
		halt()
	for _, run := range []func(*trace.Trace, Config) (Result, error){RunSSBR, RunSS, RunDS} {
		c := cfg(consistency.RC, 64)
		c.WatchdogBudget = 1 << 20
		if _, err := run(tr, c); err != nil {
			t.Fatalf("watchdog fired on a healthy replay: %v", err)
		}
	}
}

func TestReplayCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr := stallTrace(30)
	for _, run := range []func(*trace.Trace, Config) (Result, error){RunSSBR, RunSS, RunDS} {
		c := cfg(consistency.SC, 64)
		c.Ctx = ctx
		_, err := run(tr, c)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled replay returned %v, want context.Canceled", err)
		}
	}
	// A live context changes nothing.
	for _, run := range []func(*trace.Trace, Config) (Result, error){RunSSBR, RunSS, RunDS} {
		c := cfg(consistency.SC, 64)
		c.Ctx = context.Background()
		if _, err := run(tr, c); err != nil {
			t.Fatalf("background ctx broke the replay: %v", err)
		}
	}
}
