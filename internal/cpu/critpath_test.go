package cpu

import (
	"fmt"
	"testing"

	"dynsched/internal/consistency"
	"dynsched/internal/critpath"
	"dynsched/internal/isa"
	"dynsched/internal/trace"
)

// takenBranch emits a taken conditional branch, which the cold paper BTB
// mispredicts (it predicts not-taken for unseen PCs).
func takenBranch(b *tb, reg uint8) *tb {
	return b.emit(trace.Event{Instr: isa.Instr{Op: isa.OpBnez, Src1: reg, Imm: 9999}, Taken: true})
}

// critpathTraces builds a family of synthetic traces that exercise every
// attribution cause: read-miss chains, store bursts, mispredicted branches,
// lock contention, and consistency-ordered accesses.
func critpathTraces() map[string]*trace.Trace {
	mix := newTB()
	for i := 0; i < 40; i++ {
		mix.load(1, 0, uint64(0x1000+i*64), true)
		mix.alu(2, 1, 1) // load-use chain
		mix.alu(3, 3, 3) // independent work
		mix.store(0, 2, uint64(0x8000+i*64), true)
		if i%4 == 0 {
			takenBranch(mix, 3)
		} else {
			mix.branch(3)
		}
		if i%8 == 0 {
			mix.lock(0x9000, 20, 50)
			mix.unlock(0x9000, 50)
		}
	}

	stores := newTB()
	for i := 0; i < 60; i++ {
		stores.store(0, 3, uint64(0x4000+i*64), true)
	}

	reads := newTB()
	for i := 0; i < 30; i++ {
		reads.load(uint8(1+i%4), 0, uint64(0x2000+i*64), true)
		reads.alu(5, uint8(1+i%4), 5)
	}

	// Mostly ALU work punctuated by taken branches: every branch PC is
	// fresh, so the cold BTB mispredicts them all and the refill bubbles
	// are the only stall source.
	branchy := newTB()
	for i := 0; i < 40; i++ {
		branchy.alu(1, 1, 1)
		branchy.alu(2, 1, 2)
		takenBranch(branchy, 2)
	}

	// Pairs of store misses ahead of each load miss: the stores retire
	// into the store buffer and hold the MSHRs, so with MSHRs=2 the head
	// load is ready and permitted (under RC) but structurally blocked.
	mshr := newTB()
	for i := 0; i < 20; i++ {
		mshr.store(0, 3, uint64(0x4000+i*128), true)
		mshr.store(0, 3, uint64(0x4040+i*128), true)
		mshr.load(1, 0, uint64(0x2000+i*64), true)
		mshr.alu(2, 1, 1)
	}

	return map[string]*trace.Trace{
		"mix":     mix.halt(),
		"stores":  stores.halt(),
		"reads":   reads.halt(),
		"branchy": branchy.halt(),
		"mshr":    mshr.halt(),
	}
}

// runWithCollector replays tr through arch with a fresh collector attached.
func runWithCollector(t *testing.T, tr *trace.Trace, arch string, cfg Config) (Result, critpath.Attribution) {
	t.Helper()
	cp := critpath.NewCollector()
	cfg.CritPath = cp
	var (
		res Result
		err error
	)
	switch arch {
	case "BASE":
		res = RunBaseCP(tr, cp)
	case "SSBR":
		res, err = RunSSBR(tr, cfg)
	case "SS":
		res, err = RunSS(tr, cfg)
	case "DS":
		res, err = RunDS(tr, cfg)
	default:
		t.Fatalf("unknown arch %q", arch)
	}
	if err != nil {
		t.Fatalf("%s: %v", arch, err)
	}
	return res, cp.Attribution()
}

// TestCritPathConservation is the tentpole invariant: for every model,
// consistency model, and window, the attribution buckets sum exactly to
// Breakdown.Total(), the busy bucket equals Breakdown.Busy, and the edge
// counts sum to the retired instruction count. Attaching a collector must
// not perturb the simulation result.
func TestCritPathConservation(t *testing.T) {
	type arch struct {
		name string
		cfg  Config
	}
	archs := []arch{
		{"BASE", Config{}},
		{"SSBR", Config{}},
		{"SS", Config{}},
		{"DS", Config{Window: 16}},
		{"DS", Config{Window: 64}},
		{"DS", Config{Window: 256}},
		{"DS", Config{Window: 64, MSHRs: 2}},
		{"DS", Config{Window: 64, StoreBufDepth: 2}},
		{"DS", Config{Window: 64, IssueWidth: 4}}, // exercises credit pops
		{"DS", Config{Window: 64, Prefetch: true, MSHRs: 4}},
		{"DS", Config{Window: 64, SpeculativeLoads: true}},
	}
	for trName, tr := range critpathTraces() {
		for _, m := range []consistency.Model{consistency.SC, consistency.PC, consistency.RC} {
			for _, a := range archs {
				name := fmt.Sprintf("%s/%s/%s-W%d", trName, m, a.name, a.cfg.Window)
				t.Run(name, func(t *testing.T) {
					cfg := a.cfg
					cfg.Model = m
					res, attr := runWithCollector(t, tr, a.name, cfg)

					if got, want := attr.Sum(), res.Breakdown.Total(); got != want {
						t.Errorf("attribution sum = %d, want Breakdown.Total() = %d", got, want)
					}
					if attr.Total != res.Breakdown.Total() {
						t.Errorf("attr.Total = %d, want %d", attr.Total, res.Breakdown.Total())
					}
					if attr.Cycles[critpath.Busy] != res.Breakdown.Busy {
						t.Errorf("attr busy = %d, want Breakdown.Busy = %d",
							attr.Cycles[critpath.Busy], res.Breakdown.Busy)
					}
					if got, want := attr.EdgeSum(), res.Instructions; got != want {
						t.Errorf("edge sum = %d, want instruction count %d", got, want)
					}

					// The collector is observational: the result with the hook
					// must equal the result without it.
					bare := cfg
					bare.CritPath = nil
					var (
						res2 Result
						err  error
					)
					switch a.name {
					case "BASE":
						res2 = RunBase(tr)
					case "SSBR":
						res2, err = RunSSBR(tr, bare)
					case "SS":
						res2, err = RunSS(tr, bare)
					case "DS":
						res2, err = RunDS(tr, bare)
					}
					if err != nil {
						t.Fatal(err)
					}
					if res.Breakdown != res2.Breakdown {
						t.Errorf("collector perturbed the breakdown:\nwith    %v\nwithout %v",
							res.Breakdown, res2.Breakdown)
					}
				})
			}
		}
	}
}

// TestCritPathSkipEquivalence pins the attribution to the same determinism
// discipline as the Breakdown: the event-driven time-skip path must produce
// byte-identical fine-cause buckets and edges to cycle stepping.
func TestCritPathSkipEquivalence(t *testing.T) {
	for trName, tr := range critpathTraces() {
		for _, m := range []consistency.Model{consistency.SC, consistency.RC} {
			for _, a := range []struct {
				name string
				cfg  Config
			}{
				{"SSBR", Config{}},
				{"SS", Config{}},
				{"DS", Config{Window: 64}},
				{"DS", Config{Window: 64, MSHRs: 2}},
			} {
				name := fmt.Sprintf("%s/%s/%s-W%d", trName, m, a.name, a.cfg.Window)
				t.Run(name, func(t *testing.T) {
					cfg := a.cfg
					cfg.Model = m
					_, step := runWithCollector(t, tr, a.name, func() Config {
						c := cfg
						c.NoTimeSkip = true
						return c
					}())
					_, skip := runWithCollector(t, tr, a.name, cfg)
					if step != skip {
						t.Errorf("time-skip attribution diverges:\nstep %v\nskip %v", step, skip)
					}
				})
			}
		}
	}
}

// TestCritPathCauseSemantics spot-checks that the headline causes fire on
// the traces built to trigger them.
func TestCritPathCauseSemantics(t *testing.T) {
	traces := critpathTraces()

	// A cold BTB mispredicts every taken branch of the branchy trace: DS
	// must attribute branch-refill cycles.
	res, attr := runWithCollector(t, traces["branchy"], "DS", Config{Model: consistency.RC, Window: 64})
	if res.Mispredicts == 0 {
		t.Fatal("branchy trace produced no mispredicts; the trace no longer exercises branch refill")
	}
	if attr.Cycles[critpath.BranchRefill] == 0 {
		t.Error("DS on mispredicting trace attributed no branch-refill cycles")
	}

	res, attr = runWithCollector(t, traces["mix"], "DS", Config{Model: consistency.RC, Window: 64})
	if attr.Cycles[critpath.ReadLat] == 0 {
		t.Error("DS on read-miss trace attributed no read-latency cycles")
	}
	if attr.Cycles[critpath.SyncWait] == 0 {
		t.Error("DS on lock trace attributed no sync-wait cycles")
	}

	// Store misses occupy both MSHRs while the head load is ready and
	// permitted under RC: the structural MSHR bound must appear.
	_, attr = runWithCollector(t, traces["mshr"], "DS", Config{Model: consistency.RC, Window: 64, MSHRs: 2})
	if attr.Cycles[critpath.MSHRFull] == 0 {
		t.Error("MSHR-limited DS attributed no mshr-full cycles")
	}

	// A 2-deep store buffer against a store burst: buffer-full stalls.
	_, attr = runWithCollector(t, traces["stores"], "DS", Config{Model: consistency.RC, Window: 64, StoreBufDepth: 2})
	if attr.Cycles[critpath.BufferFull] == 0 {
		t.Error("store-buffer-limited DS attributed no buffer-full cycles")
	}

	// Under SC a load may not issue past the older incomplete store misses:
	// consistency-ordering cycles must appear in the static SS model.
	scTB := newTB()
	for i := 0; i < 10; i++ {
		scTB.store(0, 3, uint64(0x4000+i*64), true)
		scTB.load(1, 0, uint64(0x100), false)
		scTB.alu(2, 1, 1)
	}
	_, attr = runWithCollector(t, scTB.halt(), "SS", Config{Model: consistency.SC})
	if attr.Cycles[critpath.Consistency] == 0 {
		t.Error("SC SS replay attributed no consistency-ordering cycles")
	}

	// BASE attribution is exact per construction: spot-check the buckets
	// match the breakdown one to one.
	res, attr = runWithCollector(t, traces["mix"], "BASE", Config{})
	if attr.Cycles[critpath.ReadLat] != res.Breakdown.Read ||
		attr.Cycles[critpath.WriteLat] != res.Breakdown.Write ||
		attr.Cycles[critpath.SyncWait] != res.Breakdown.Sync {
		t.Errorf("BASE fine buckets diverge from breakdown: %v vs %v", attr.Cycles, res.Breakdown)
	}
}
