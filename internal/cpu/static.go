package cpu

import (
	"fmt"

	"dynsched/internal/consistency"
	"dynsched/internal/critpath"
	"dynsched/internal/isa"
	"dynsched/internal/obs"
	"dynsched/internal/trace"
)

// memOp is an in-flight memory or synchronization access shared by the
// static and dynamic processor models.
type memOp struct {
	seq     int // program-order sequence (trace index)
	instr   isa.Instr
	pc      int32
	kind    consistency.Kind
	addr    uint64
	latency uint32
	wait    uint32
	miss    bool

	issued    bool
	performed bool
	issuedAt  uint64 // cycle the cache port accepted the access (tracing)
	performAt uint64
	wall      uint64 // acquires: earliest completion time (stall start + W)
	destReg   uint8  // loads: destination register (SS first-use tracking)

	// DS-only bookkeeping.
	addrReady bool   // operands available; the access may be issued
	inSB      bool   // store/release has retired into the store buffer
	usedMSHR  bool   // the access occupies a miss-status register
	decodedAt uint64 // decode cycle (read-miss issue-delay histogram)

	prefetched   bool   // a non-binding prefetch is in flight
	prefetchedAt uint64 // when the prefetch was issued
}

// opWindow is the program-ordered set of decoded-but-unperformed accesses
// against which consistency constraints are evaluated. wake is a min-heap
// of the performAt cycles of issued-but-unperformed accesses: the
// completion scan and the time-skip next-event computation read its
// minimum instead of scanning the window, so both are O(1) when nothing
// completes. The heap is exactly that multiset — entries are pushed when
// the port issues and popped when the completion scan performs them — so
// consulting it is byte-identical to the scans it replaces.
type opWindow struct {
	ops  []*memOp
	wake []uint64
}

// wakePush inserts a completion time into the wake heap.
func (w *opWindow) wakePush(at uint64) {
	w.wake = append(w.wake, at)
	h := w.wake
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[i] >= h[p] {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// wakePop removes the minimum completion time from the wake heap.
func (w *opWindow) wakePop() {
	h := w.wake
	n := len(h) - 1
	h[0] = h[n]
	w.wake = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h[l] < h[s] {
			s = l
		}
		if r < n && h[r] < h[s] {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
}

func (w *opWindow) add(op *memOp) { w.ops = append(w.ops, op) }

// compact removes performed accesses from the front and interior.
func (w *opWindow) compact() {
	live := w.ops[:0]
	for _, op := range w.ops {
		if !op.performed {
			live = append(live, op)
		}
	}
	// Zero the tail so the backing array does not pin dead entries.
	for i := len(live); i < len(w.ops); i++ {
		w.ops[i] = nil
	}
	w.ops = live
}

// pendingBefore accumulates the consistency.Pending summary of unperformed
// accesses older than target.
func pendingOf(op *memOp, p *consistency.Pending) {
	if op.kind&consistency.Load != 0 {
		p.Loads++
	}
	if op.kind&consistency.Store != 0 {
		p.Stores++
	}
	if op.kind&consistency.Acquire != 0 {
		p.Acquires++
	}
	if op.kind&consistency.Release != 0 {
		p.Releases++
	}
}

// stallCategory classifies a stall on blocked, an unperformed access: if it
// has issued, the processor is genuinely waiting for memory and the stall
// belongs to the access's own class; if it has not issued, it is blocked by
// consistency constraints and the stall is charged to the oldest
// unperformed access that is holding it up (so, e.g., a load that may not
// issue past an incomplete write under SC charges write time, matching the
// paper's Figure 3 attribution).
func (w *opWindow) stallCategory(blocked *memOp) uint8 {
	culprit := blocked
	if !blocked.issued {
		for _, op := range w.ops {
			if !op.performed {
				culprit = op
				break
			}
		}
	}
	switch {
	case culprit.kind&consistency.Acquire != 0:
		return catSync
	case culprit.kind&(consistency.Store|consistency.Release) != 0:
		return catWrite
	default:
		return catRead
	}
}

// forwardable reports whether an older unperformed store to the same word
// address precedes target in the window (store-buffer forwarding).
func (w *opWindow) forwardable(target *memOp) bool {
	for _, op := range w.ops {
		if op == target {
			return false
		}
		if op.kind&consistency.Store != 0 && !op.performed && op.addr == target.addr {
			return true
		}
	}
	return false
}

// issueOne models the single cache port: it issues at most one eligible
// access this cycle, scanning in program order so older accesses have
// priority. eligible filters candidates (e.g. stores must be in the write
// buffer). It returns the issued op, or nil.
func (w *opWindow) issueOne(t uint64, model consistency.Model, eligible func(*memOp) bool) *memOp {
	var pend consistency.Pending
	for _, op := range w.ops {
		if op.performed {
			continue
		}
		if !op.issued && eligible(op) && consistency.MayIssue(model, op.kind, pend) {
			op.issued = true
			op.issuedAt = t
			lat := uint64(op.latency)
			if op.kind == consistency.Load && consistency.AllowsLoadBypass(model) && w.forwardable(op) {
				lat = 1 // forwarded from the store buffer
			}
			op.performAt = t + lat
			w.wakePush(op.performAt)
			return op
		}
		if !op.performed {
			pendingOf(op, &pend)
		}
	}
	return nil
}

// RunSSBR replays tr through the statically scheduled, blocking-read
// processor: reads stall the processor until they perform; writes and
// releases enter a WriteBufDepth-deep write buffer drained in FIFO order
// subject to the consistency model; acquires stall until they complete.
func RunSSBR(tr *trace.Trace, cfg Config) (Result, error) {
	src := sliceSource(tr)
	return runStatic(&src, cfg, false)
}

// RunSS replays tr through the statically scheduled, non-blocking-read
// processor: loads enter a ReadBufDepth-deep read buffer and the processor
// stalls only at the first instruction that uses a pending return value —
// "the stall is delayed up to the first use of the return value" (§4.1).
func RunSS(tr *trace.Trace, cfg Config) (Result, error) {
	src := sliceSource(tr)
	return runStatic(&src, cfg, true)
}

func runStatic(src *eventSource, cfg Config, nonBlockingReads bool) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}

	scratch := getStaticScratch()
	var (
		bd        Breakdown
		win       = opWindow{ops: scratch.ops, wake: scratch.wake}
		wbCount   int // stores + releases in the write buffer
		rbCount   int // pending loads in the read buffer (SS)
		blockLoad *memOp
		blockAcq  *memOp
		regOwner  [isa.NumRegs]*memOp // SS: pending load producing each register
		srcBuf    [2]uint8
		t         uint64
		idx       int
		curEv     *trace.Event // current decode slot, fetched once per accept
	)
	defer func() {
		scratch.ops, scratch.wake = win.ops, win.wake
		scratch.release()
	}()

	eligible := func(op *memOp) bool { return true } // all window entries are in flight

	// Observability: buffer-occupancy histograms when metrics are enabled
	// (batched per run so the hot loop never touches the shared registry),
	// and per-instruction pipeline records. Non-memory instructions occupy
	// the in-order pipeline for exactly their accept cycle; memory and
	// synchronization accesses are recorded when they perform, spanning
	// decode → port issue → completion.
	var wbHist, rbHist *obs.HistogramBatch
	if cfg.Metrics != nil {
		p := cfg.MetricsPrefix
		wbHist = cfg.Metrics.HistogramBatch(obs.Prefixed(p, "writebuf.occupancy"), bufferBuckets...)
		rbHist = cfg.Metrics.HistogramBatch(obs.Prefixed(p, "readbuf.occupancy"), bufferBuckets...)
	}
	recordAccept := func(e *trace.Event) {
		if cfg.Pipe != nil {
			cfg.Pipe.Record(obs.InstrRecord{
				Seq: uint64(idx), PC: e.PC, Disasm: e.Instr.String(),
				DecodedAt: t, IssuedAt: t, DoneAt: t, RetiredAt: t,
			})
		}
	}

	// Critical-path attribution: every coarse stall charge below is
	// mirrored into a fine cause bucket at the same decision site, so the
	// buckets sum exactly to the Breakdown (busy is the Finish residual).
	// fineLast remembers the cycle's charge for the time-skip bulk path.
	cp := cfg.CritPath
	var fineLast critpath.Cause
	fineCharge := func(f critpath.Cause) {
		fineLast = f
		cp.Stall(f)
	}
	// fineStallOn classifies a stall on an unperformed access, the fine
	// analogue of opWindow.stallCategory: an issued access is genuine
	// memory latency of its own class; an unissued one is held back by
	// consistency-model ordering.
	fineStallOn := func(blocked *memOp) critpath.Cause {
		if !blocked.issued {
			return critpath.Consistency
		}
		switch {
		case blocked.kind&consistency.Acquire != 0:
			return critpath.SyncWait
		case blocked.kind&(consistency.Store|consistency.Release) != 0:
			return critpath.WriteLat
		default:
			return critpath.ReadLat
		}
	}
	// Interval timeline sampling: cumulative state snapshots at aligned
	// 2^k-cycle boundaries. At the top of the body for cycle t the
	// cumulative counters cover cycles 0..t-1 — exactly boundary t — and a
	// time-skip jump interpolates each crossed boundary inside the
	// bulk-charged stretch, so the series is byte-identical skip vs noskip.
	tl := cfg.Timeline
	var tlWinSum, tlWBSum, tlRBSum uint64
	staticPoint := func(cycle uint64, b Breakdown, winSum, wbSum, rbSum uint64, extra critpath.Cause, extraN uint64) obs.TimelinePoint {
		p := obs.TimelinePoint{
			Cycle: cycle, Instructions: uint64(idx),
			Busy: b.Busy, Sync: b.Sync, Read: b.Read,
			Write: b.Write, Branch: b.Branch, Other: b.Other,
			WindowSum: winSum, StoreBufSum: wbSum, MSHRSum: rbSum,
		}
		if cp != nil {
			cc := cp.CycleCounts()
			cc[extra] += extraN
			p.Causes = append([]uint64(nil), cc[:]...)
		}
		return p
	}

	// Edge recording: the static pipeline accepts at most one instruction
	// per cycle, so an instruction accepted right after the previous one
	// never waited (busy edge); anything else waited through the stall
	// cycles just charged, whose cause is its last-arriving edge.
	var (
		anyAccept   bool
		lastAcceptT uint64
	)
	recordEdge := func() {
		if cp == nil {
			return
		}
		if !anyAccept || t <= lastAcceptT+1 {
			cp.Edge(critpath.Busy)
		} else {
			cp.EdgeLast()
		}
		anyAccept, lastAcceptT = true, t
	}

	model := "SSBR"
	if nonBlockingReads {
		model = "SS"
	}
	dog := newWatchdog(cfg.WatchdogBudget)
	staticState := func() string {
		s := fmt.Sprintf("accepted=%d/%d window=%d writeBuf=%d readBuf=%d",
			idx, src.n, len(win.ops), wbCount, rbCount)
		if blockAcq != nil {
			s += fmt.Sprintf("; blocked on acquire seq=%d performed=%t wall=%d",
				blockAcq.seq, blockAcq.performed, blockAcq.wall)
		}
		if blockLoad != nil {
			s += fmt.Sprintf("; blocked on load seq=%d issued=%t", blockLoad.seq, blockLoad.issued)
		}
		if len(win.ops) > 0 {
			h := win.ops[0]
			s += fmt.Sprintf("; oldest access seq=%d op=%s issued=%t performed=%t",
				h.seq, h.instr.Op, h.issued, h.performed)
		}
		return s
	}

	// Event-driven time-skip: a cycle that completes nothing, accepts
	// nothing, issues nothing, and leaves the blocking pointers untouched is
	// a fixed point of the machine — every following cycle charges the same
	// single stall category until the next scheduled event (the earliest
	// in-flight completion, or a completed acquire's wall). Jump simulated
	// time there directly and charge the stretch in bulk; the accounting is
	// byte-identical to stepping every cycle.
	var (
		skip   = !cfg.NoTimeSkip
		iter   uint64 // loop iterations (not cycles): the poll cadence
		jumped bool   // last iteration time-skipped; poll on landing
	)

	for idx < src.n || len(win.ops) > 0 {
		// Iteration-strided polls (plus one at every jump landing): a
		// cycle-masked check could be jumped over by time-skip.
		if iter&(watchdogStride-1) == 0 || jumped {
			jumped = false
			if err := ctxErr(cfg.Ctx); err != nil {
				return Result{}, fmt.Errorf("cpu: %s replay canceled at cycle %d: %w", model, t, err)
			}
			if err := dog.check(model, t, staticState); err != nil {
				return Result{}, err
			}
		}
		iter++

		if tl != nil && t == tl.Boundary() {
			tl.Record(staticPoint(t, bd, tlWinSum, tlWBSum, tlRBSum, 0, 0))
		}

		prevIdx := idx
		prevAcq, prevLoad := blockAcq, blockLoad
		prevBd := bd

		// Phase 1: completions. The wake heap's minimum is the earliest
		// in-flight completion, so when it is still in the future the scan
		// below could not mark anything performed and is skipped outright —
		// that is what makes a quiet stalled cycle O(1) instead of O(window).
		changed := false
		if len(win.wake) > 0 && win.wake[0] <= t {
			for _, op := range win.ops {
				if op.issued && !op.performed && op.performAt <= t {
					op.performed = true
					changed = true
					if cfg.Pipe != nil {
						cfg.Pipe.Record(obs.InstrRecord{
							Seq: uint64(op.seq), PC: op.pc, Disasm: op.instr.String(),
							DecodedAt: op.decodedAt, IssuedAt: op.issuedAt,
							DoneAt: op.performAt, RetiredAt: op.performAt,
							Miss: op.miss,
						})
					}
					switch {
					case op.kind&(consistency.Store|consistency.Release) != 0 && op.kind&consistency.Acquire == 0:
						wbCount-- // data stores and releases drain from the write buffer
					case op.kind == consistency.Load:
						rbCount--
						if regOwner[op.destReg] == op {
							regOwner[op.destReg] = nil
						}
					}
				}
			}
			for len(win.wake) > 0 && win.wake[0] <= t {
				win.wakePop()
			}
		}
		if changed {
			win.compact()
		}

		// Phase 2: processor (at most one instruction per cycle).
		stalled := false
		if blockAcq != nil {
			if blockAcq.performed && t >= blockAcq.wall {
				blockAcq = nil
			} else {
				bd.Sync++
				fineCharge(critpath.SyncWait)
				stalled = true
			}
		}
		if !stalled && blockLoad != nil {
			if blockLoad.performed {
				blockLoad = nil
			} else {
				charge(&bd, win.stallCategory(blockLoad))
				fineCharge(fineStallOn(blockLoad))
				stalled = true
			}
		}
		if !stalled && blockAcq == nil && blockLoad == nil && idx < src.n {
			if curEv == nil {
				var ferr error
				if curEv, ferr = src.fetch(); ferr != nil {
					return Result{}, ferr
				}
			}
			e := curEv
			switch e.Class() {
			case isa.ClassALU, isa.ClassBranch, isa.ClassHalt:
				if p := pendingProducer(e, &regOwner, srcBuf[:0]); nonBlockingReads && p != nil {
					charge(&bd, win.stallCategory(p))
					fineCharge(fineStallOn(p))
				} else {
					recordAccept(e)
					recordEdge()
					bd.Busy++
					idx++
				}
			case isa.ClassLoad:
				pp := pendingProducer(e, &regOwner, srcBuf[:0])
				switch {
				case nonBlockingReads && pp != nil:
					charge(&bd, win.stallCategory(pp))
					fineCharge(fineStallOn(pp))
				case nonBlockingReads && rbCount >= cfg.ReadBufDepth:
					bd.Read++ // read buffer full
					fineCharge(critpath.BufferFull)
				default:
					op := scratch.arena.newMemOp(idx, e)
					op.decodedAt = t
					win.add(op)
					if nonBlockingReads {
						rbCount++
						regOwner[op.destReg] = op
					} else {
						blockLoad = op
					}
					recordEdge()
					bd.Busy++
					idx++
				}
			case isa.ClassStore:
				pp := pendingProducer(e, &regOwner, srcBuf[:0])
				switch {
				case nonBlockingReads && pp != nil:
					charge(&bd, win.stallCategory(pp))
					fineCharge(fineStallOn(pp))
				case wbCount >= cfg.WriteBufDepth:
					bd.Write++ // write buffer full
					fineCharge(critpath.BufferFull)
				default:
					op := scratch.arena.newMemOp(idx, e)
					op.decodedAt = t
					win.add(op)
					wbCount++
					recordEdge()
					bd.Busy++
					idx++
				}
			case isa.ClassSync:
				if p := pendingProducer(e, &regOwner, srcBuf[:0]); nonBlockingReads && p != nil {
					charge(&bd, win.stallCategory(p))
					fineCharge(fineStallOn(p))
					break
				}
				op := scratch.arena.newMemOp(idx, e)
				op.decodedAt = t
				if isAcquireClass(e.Instr.Op) {
					op.wall = t + uint64(op.wait)
					win.add(op)
					blockAcq = op
					recordEdge()
					bd.Busy++
					idx++
				} else if wbCount >= cfg.WriteBufDepth {
					bd.Write++
					fineCharge(critpath.BufferFull)
				} else {
					win.add(op) // release drains through the write buffer
					wbCount++
					recordEdge()
					bd.Busy++
					idx++
				}
			}
		} else if !stalled && blockAcq == nil && blockLoad == nil {
			// Trace exhausted: draining the window. Charge by the oldest
			// unperformed access.
			if len(win.ops) > 0 {
				head := win.ops[0]
				switch {
				case head.kind&consistency.Acquire != 0:
					bd.Sync++
				case head.kind == consistency.Load:
					bd.Read++
				default:
					bd.Write++
				}
				fineCharge(fineStallOn(head))
			}
		}

		// Phase 3: cache port issues one access.
		issued := win.issueOne(t, cfg.Model, eligible)

		if idx != prevIdx {
			curEv = nil // accepted: the next accept fetches the next event
		}
		if changed || idx != prevIdx {
			dog.last = t
		}

		if cfg.Metrics != nil {
			wbHist.Observe(uint64(wbCount))
			rbHist.Observe(uint64(rbCount))
		}
		if tl != nil {
			tlWinSum += uint64(len(win.ops))
			tlWBSum += uint64(wbCount)
			tlRBSum += uint64(rbCount)
		}
		if cfg.Progress != nil && t&(obs.PublishEvery-1) == 0 {
			cfg.Progress.Publish(uint64(idx), t)
		}

		// Time-skip: the cycle was a fixed point iff nothing mutated beyond
		// a single stall charge. The next state change is time-triggered: an
		// in-flight access completing, or a completed acquire's wall
		// elapsing. issueOne is time-invariant — if the port issued nothing
		// at t it issues nothing at any later cycle of the same state — so
		// with no scheduled event the machine is livelocked and falls back
		// to stepping, where the watchdog measures the stagnation.
		if skip && !changed && idx == prevIdx && issued == nil &&
			blockAcq == prevAcq && blockLoad == prevLoad {
			if c, ok := soleStallCharge(&prevBd, &bd); ok {
				// The wake heap's minimum is exactly the min performAt over
				// issued-unperformed accesses (all > t after phase 1).
				next := ^uint64(0)
				if len(win.wake) > 0 {
					next = win.wake[0]
				}
				// A performed acquire has been compacted out of the window
				// but still blocks the processor until its wall.
				if blockAcq != nil && blockAcq.performed && blockAcq.wall > t && blockAcq.wall < next {
					next = blockAcq.wall
				}
				if next != ^uint64(0) && next > t+1 {
					delta := next - t - 1 // quiet cycles t+1 .. next-1
					if tl != nil {
						// The jump lands at next with the body's top-of-loop
						// check already past boundary next, so interpolate
						// every boundary b in (t, next] here: b snapshots the
						// state after cycles 0..b-1, i.e. the fixed point
						// plus b-t-1 repeats of its single stall charge.
						for b := tl.Boundary(); b <= next; b = tl.Boundary() {
							q := b - t - 1
							bq := bd
							chargeN(&bq, c, q)
							tl.Record(staticPoint(b, bq,
								tlWinSum+uint64(len(win.ops))*q,
								tlWBSum+uint64(wbCount)*q,
								tlRBSum+uint64(rbCount)*q,
								fineLast, q))
						}
					}
					chargeN(&bd, c, delta)
					// The fixed-point cycle charged exactly one stall, whose
					// fine cause fineCharge just recorded; the skipped stretch
					// repeats that charge.
					cp.StallN(fineLast, delta)
					if cfg.Metrics != nil {
						wbHist.ObserveN(uint64(wbCount), delta)
						rbHist.ObserveN(uint64(rbCount), delta)
					}
					if tl != nil {
						tlWinSum += uint64(len(win.ops)) * delta
						tlWBSum += uint64(wbCount) * delta
						tlRBSum += uint64(rbCount) * delta
					}
					if cfg.Progress != nil && t/obs.PublishEvery != next/obs.PublishEvery {
						cfg.Progress.Publish(uint64(idx), next)
					}
					t = next
					jumped = true
					continue
				}
			}
		}

		t++
	}

	res := Result{Breakdown: bd, Instructions: uint64(src.n)}
	if tl != nil {
		tl.Finish(staticPoint(t, bd, tlWinSum, tlWBSum, tlRBSum, 0, 0))
	}
	cp.Finish(bd.Total())
	wbHist.Close()
	rbHist.Close()
	cfg.Progress.Publish(uint64(idx), t)
	publishResult(&cfg, res)
	return res, nil
}

// pendingProducer returns the outstanding load whose value e needs, or nil
// (the SS first-use stall).
func pendingProducer(e *trace.Event, owner *[isa.NumRegs]*memOp, buf []uint8) *memOp {
	for _, r := range e.Instr.SrcRegs(buf) {
		if op := owner[r]; op != nil {
			return op
		}
	}
	return nil
}

// charge adds one stall cycle of the given category to bd.
func charge(bd *Breakdown, cat uint8) {
	chargeN(bd, cat, 1)
}

// chargeN adds n stall cycles of the given category to bd.
func chargeN(bd *Breakdown, cat uint8, n uint64) {
	switch cat {
	case catSync:
		bd.Sync += n
	case catRead:
		bd.Read += n
	case catWrite:
		bd.Write += n
	case catBranch:
		bd.Branch += n
	default:
		bd.Other += n
	}
}

// soleStallCharge reports whether cur differs from prev by exactly one stall
// cycle in exactly one category with busy time unchanged — the charge
// signature of a time-skip fixed-point cycle — and returns that category.
func soleStallCharge(prev, cur *Breakdown) (uint8, bool) {
	if cur.Busy != prev.Busy {
		return 0, false
	}
	d := [5]uint64{
		catSync:   cur.Sync - prev.Sync,
		catRead:   cur.Read - prev.Read,
		catWrite:  cur.Write - prev.Write,
		catBranch: cur.Branch - prev.Branch,
		catOther:  cur.Other - prev.Other,
	}
	if d[catSync]+d[catRead]+d[catWrite]+d[catBranch]+d[catOther] != 1 {
		return 0, false
	}
	for c, n := range d {
		if n == 1 {
			return uint8(c), true
		}
	}
	return 0, false
}
