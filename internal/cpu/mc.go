package cpu

import (
	"fmt"

	"dynsched/internal/isa"
	"dynsched/internal/trace"
)

// RunMC models a multiple-hardware-contexts processor — the principal
// competitive latency-tolerance technique the paper discusses in §5
// (Weber & Gupta; APRIL; HEP): a simple in-order, blocking-read pipeline
// that holds several threads' register sets and switches to another ready
// context whenever the running one takes a long-latency event (a read miss
// or an acquire), paying switchPenalty cycles per switch.
//
// Each context executes its own processor's trace from the same
// multiprocessor run (tango with RecordAll). Writes are assumed buffered
// under release consistency, as in the tango machine, so stores and
// releases cost one cycle. The result's breakdown attributes cycles where
// no context is ready to the blocking reason of the context that becomes
// ready soonest; Busy counts cycles doing useful work and Other counts
// context-switch overhead.
//
// MCResult.Utilization is the headline number of the multiple-contexts
// literature: the fraction of cycles spent on useful work.
type MCResult struct {
	Result
	Contexts    int
	Switches    uint64
	Utilization float64
}

type mcCtx struct {
	events  []trace.Event
	idx     int
	readyAt uint64 // context is blocked until this cycle
	reason  uint8  // stall category while blocked
}

// RunMC interleaves the given traces on one pipeline. switchPenalty is the
// cost in cycles of resuming a different context (1-16 in the literature;
// APRIL ≈ 10).
func RunMC(traces []*trace.Trace, switchPenalty int) (MCResult, error) {
	if len(traces) == 0 {
		return MCResult{}, fmt.Errorf("cpu: RunMC needs at least one trace")
	}
	if switchPenalty < 0 {
		return MCResult{}, fmt.Errorf("cpu: negative switch penalty")
	}
	ctxs := make([]*mcCtx, len(traces))
	var instructions uint64
	for i, tr := range traces {
		if tr == nil {
			return MCResult{}, fmt.Errorf("cpu: RunMC trace %d is nil", i)
		}
		ctxs[i] = &mcCtx{events: tr.Events}
		instructions += uint64(len(tr.Events))
	}

	var (
		bd       Breakdown
		t        uint64
		active   = 0
		switches uint64
		done     int
	)

	for done < len(ctxs) {
		if t >= maxDSCycles {
			return MCResult{}, fmt.Errorf("cpu: MC simulation exceeded %d cycles", maxDSCycles)
		}
		c := ctxs[active]
		if c.idx < len(c.events) && c.readyAt <= t {
			// Execute one instruction on the active context.
			e := &c.events[c.idx]
			c.idx++
			bd.Busy++
			t++
			if c.idx == len(c.events) {
				done++
			}
			switch e.Class() {
			case isa.ClassLoad:
				if e.Miss {
					// Block this context; the next loop iteration finds
					// another ready context (switch-on-miss).
					c.readyAt = t - 1 + uint64(e.Latency)
					c.reason = catRead
				}
			case isa.ClassSync:
				if isAcquireClass(e.Instr.Op) {
					c.readyAt = t - 1 + uint64(e.Wait) + uint64(e.Latency)
					c.reason = catSync
				}
				// Releases drain through the write buffer: 1 cycle.
			}
			continue
		}
		// Active context is blocked or finished: find another ready one
		// (round-robin from the next context).
		next := -1
		soonest, soonestAt := -1, ^uint64(0)
		for i := range ctxs {
			j := (active + 1 + i) % len(ctxs)
			cj := ctxs[j]
			if cj.idx >= len(cj.events) {
				continue
			}
			if cj.readyAt <= t {
				next = j
				break
			}
			if cj.readyAt < soonestAt {
				soonest, soonestAt = j, cj.readyAt
			}
		}
		switch {
		case next >= 0:
			if next != active {
				switches++
				for k := 0; k < switchPenalty; k++ {
					bd.Other++ // context-switch overhead
					t++
				}
				active = next
			} else {
				// Only the active context remains and it is ready.
			}
		case soonest >= 0:
			// Everyone is blocked: stall until the soonest wakes, charged to
			// its blocking reason.
			for t < soonestAt {
				charge(&bd, ctxs[soonest].reason)
				t++
			}
			active = soonest
		default:
			done = len(ctxs) // nothing left anywhere
		}
	}

	res := MCResult{
		Result:   Result{Breakdown: bd, Instructions: instructions},
		Contexts: len(ctxs),
		Switches: switches,
	}
	if total := bd.Total(); total > 0 {
		res.Utilization = float64(bd.Busy) / float64(total)
	}
	return res, nil
}
