// Package isa defines the virtual RISC instruction set used throughout the
// simulator. It is a small 64-register load/store architecture with integer
// and floating-point arithmetic, conditional branches, and explicit
// synchronization instructions (lock, unlock, barrier, event wait/set).
//
// The ISA exists so that the five benchmark applications can be expressed at
// the register level: the dynamically scheduled processor model needs true
// register data dependences, realistic branch behaviour, and effective
// addresses, which a source-level workload model cannot provide.
//
// Registers are 64 bits wide. Register 0 (Zero) always reads as zero, as on
// MIPS. Floating-point values are stored in the same register file as raw
// IEEE-754 bit patterns. Memory is byte-addressed; loads and stores transfer
// aligned 8-byte words.
package isa

import (
	"fmt"
	"math"
)

// NumRegs is the number of architectural registers.
const NumRegs = 64

// Zero is the hardwired zero register.
const Zero uint8 = 0

// WordSize is the size in bytes of a memory word (all loads/stores are
// word-sized).
const WordSize = 8

// Op is an instruction opcode.
type Op uint8

// Opcodes. The comment gives the semantics using d (dest), a (src1), b
// (src2), and imm (immediate).
const (
	OpNop Op = iota // no operation

	// Integer ALU, register-register: d = a <op> b.
	OpAdd // d = a + b
	OpSub // d = a - b
	OpMul // d = a * b
	OpDiv // d = a / b (signed; division by zero yields 0)
	OpRem // d = a % b (signed; modulo by zero yields 0)
	OpAnd // d = a & b
	OpOr  // d = a | b
	OpXor // d = a ^ b
	OpShl // d = a << (b & 63)
	OpShr // d = a >> (b & 63) (logical)
	OpSlt // d = 1 if int64(a) < int64(b) else 0
	OpSle // d = 1 if int64(a) <= int64(b) else 0
	OpSeq // d = 1 if a == b else 0
	OpSne // d = 1 if a != b else 0

	// Integer ALU, register-immediate: d = a <op> imm.
	OpAddi // d = a + imm
	OpMuli // d = a * imm
	OpAndi // d = a & imm
	OpShli // d = a << imm
	OpShri // d = a >> imm
	OpSlti // d = 1 if int64(a) < imm else 0

	// Constants and moves.
	OpLi  // d = imm
	OpMov // d = a

	// Floating point (operands/results are float64 bit patterns).
	OpFAdd  // d = a +. b
	OpFSub  // d = a -. b
	OpFMul  // d = a *. b
	OpFDiv  // d = a /. b
	OpFNeg  // d = -.a
	OpFAbs  // d = |a|
	OpFSlt  // d = 1 if a <. b else 0
	OpFSqr  // d = sqrt(a)
	OpCvtIF // d = float64(int64(a))
	OpCvtFI // d = int64(float64bits(a))

	// Memory. Effective address is a + imm.
	OpLd // d = mem[a+imm]
	OpSt // mem[a+imm] = b

	// Control. Branch targets are absolute instruction indices held in imm.
	OpBeqz // if a == 0 goto imm
	OpBnez // if a != 0 goto imm
	OpJ    // goto imm
	OpHalt // stop the thread

	// Synchronization. The ANL-macro-style primitives of the paper's
	// applications. Lock/Unlock address a lock variable at a+imm.
	// Barrier/event instructions name their object by a+imm, so ids may be
	// computed at run time (LU waits on one event per pivot column).
	OpLock    // acquire lock at a+imm (blocks until held)
	OpUnlock  // release lock at a+imm
	OpBarrier // enter barrier a+imm (blocks until all participants arrive)
	OpWaitEv  // wait until event a+imm has been set (acquire)
	OpSetEv   // set event a+imm (release)

	numOps
)

var opNames = [...]string{
	OpNop: "nop",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpSlt: "slt", OpSle: "sle", OpSeq: "seq", OpSne: "sne",
	OpAddi: "addi", OpMuli: "muli", OpAndi: "andi", OpShli: "shli",
	OpShri: "shri", OpSlti: "slti",
	OpLi: "li", OpMov: "mov",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFNeg: "fneg", OpFAbs: "fabs", OpFSlt: "fslt", OpFSqr: "fsqrt",
	OpCvtIF: "cvtif", OpCvtFI: "cvtfi",
	OpLd: "ld", OpSt: "st",
	OpBeqz: "beqz", OpBnez: "bnez", OpJ: "j", OpHalt: "halt",
	OpLock: "lock", OpUnlock: "unlock", OpBarrier: "barrier",
	OpWaitEv: "waitev", OpSetEv: "setev",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < numOps }

// Instr is a single static instruction.
type Instr struct {
	Op   Op
	Dst  uint8 // destination register (0 if none)
	Src1 uint8 // first source register
	Src2 uint8 // second source register
	Imm  int64 // immediate / displacement / branch target / sync object id
}

// Class partitions instructions by how the timing models treat them.
type Class uint8

const (
	ClassALU    Class = iota // integer or FP computation, moves, nop
	ClassLoad                // memory read
	ClassStore               // memory write
	ClassBranch              // conditional or unconditional control transfer
	ClassSync                // synchronization operation
	ClassHalt                // thread termination
)

// Classify returns the timing class of the opcode.
func Classify(op Op) Class {
	switch op {
	case OpLd:
		return ClassLoad
	case OpSt:
		return ClassStore
	case OpBeqz, OpBnez, OpJ:
		return ClassBranch
	case OpLock, OpUnlock, OpBarrier, OpWaitEv, OpSetEv:
		return ClassSync
	case OpHalt:
		return ClassHalt
	default:
		return ClassALU
	}
}

// IsLoad reports whether the opcode reads memory.
func IsLoad(op Op) bool { return op == OpLd }

// IsStore reports whether the opcode writes memory.
func IsStore(op Op) bool { return op == OpSt }

// IsBranch reports whether the opcode may transfer control.
func IsBranch(op Op) bool { return op == OpBeqz || op == OpBnez || op == OpJ }

// IsCondBranch reports whether the opcode is a conditional branch.
func IsCondBranch(op Op) bool { return op == OpBeqz || op == OpBnez }

// IsSync reports whether the opcode is a synchronization operation.
func IsSync(op Op) bool {
	switch op {
	case OpLock, OpUnlock, OpBarrier, OpWaitEv, OpSetEv:
		return true
	}
	return false
}

// IsAcquire reports whether the opcode is an acquire synchronization
// operation (gains permission: lock, event wait, barrier).
//
// A barrier is both a release (arrival) and an acquire (departure); the
// consistency machinery treats it as both, and Acquire/Release both report
// true for it.
func IsAcquire(op Op) bool {
	return op == OpLock || op == OpWaitEv || op == OpBarrier
}

// IsRelease reports whether the opcode is a release synchronization
// operation (gives away permission: unlock, event set, barrier).
func IsRelease(op Op) bool {
	return op == OpUnlock || op == OpSetEv || op == OpBarrier
}

// IsMem reports whether the opcode accesses data memory (loads, stores, and
// lock/unlock, which address a shared lock variable).
func IsMem(op Op) bool {
	return op == OpLd || op == OpSt || op == OpLock || op == OpUnlock
}

// HasDest reports whether the instruction writes a destination register.
func (i Instr) HasDest() bool {
	if i.Dst == Zero {
		return false
	}
	switch Classify(i.Op) {
	case ClassALU, ClassLoad:
		return i.Op != OpNop
	}
	return false
}

// SrcRegs appends the source registers the instruction reads (excluding the
// zero register) to dst and returns the result. The slice has at most two
// elements.
func (i Instr) SrcRegs(dst []uint8) []uint8 {
	uses1, uses2 := false, false
	switch i.Op {
	case OpNop, OpLi, OpJ, OpHalt:
		// no register sources
	case OpMov, OpFNeg, OpFAbs, OpFSqr, OpCvtIF, OpCvtFI,
		OpAddi, OpMuli, OpAndi, OpShli, OpShri, OpSlti,
		OpLd, OpBeqz, OpBnez, OpLock, OpUnlock,
		OpBarrier, OpWaitEv, OpSetEv:
		uses1 = true
	case OpSt:
		uses1, uses2 = true, true // address base and data
	default:
		uses1, uses2 = true, true
	}
	if uses1 && i.Src1 != Zero {
		dst = append(dst, i.Src1)
	}
	if uses2 && i.Src2 != Zero {
		dst = append(dst, i.Src2)
	}
	return dst
}

// String renders the instruction in assembly-like form.
func (i Instr) String() string {
	switch i.Op {
	case OpNop, OpHalt:
		return i.Op.String()
	case OpLi:
		return fmt.Sprintf("%s r%d, %d", i.Op, i.Dst, i.Imm)
	case OpMov, OpFNeg, OpFAbs, OpFSqr, OpCvtIF, OpCvtFI:
		return fmt.Sprintf("%s r%d, r%d", i.Op, i.Dst, i.Src1)
	case OpAddi, OpMuli, OpAndi, OpShli, OpShri, OpSlti:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Dst, i.Src1, i.Imm)
	case OpLd:
		return fmt.Sprintf("ld r%d, %d(r%d)", i.Dst, i.Imm, i.Src1)
	case OpSt:
		return fmt.Sprintf("st r%d, %d(r%d)", i.Src2, i.Imm, i.Src1)
	case OpBeqz, OpBnez:
		return fmt.Sprintf("%s r%d, @%d", i.Op, i.Src1, i.Imm)
	case OpJ:
		return fmt.Sprintf("j @%d", i.Imm)
	case OpLock, OpUnlock:
		return fmt.Sprintf("%s %d(r%d)", i.Op, i.Imm, i.Src1)
	case OpBarrier, OpWaitEv, OpSetEv:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Dst, i.Src1, i.Src2)
	}
}

// F64 converts a register bit pattern to a float64.
func F64(bits uint64) float64 { return math.Float64frombits(bits) }

// Bits converts a float64 to a register bit pattern.
func Bits(f float64) uint64 { return math.Float64bits(f) }

// EvalALU computes the result of a non-memory, non-branch instruction given
// its operand values. It panics on opcodes outside ClassALU.
func EvalALU(op Op, a, b uint64, imm int64) uint64 {
	switch op {
	case OpNop:
		return 0
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return uint64(int64(a) * int64(b))
	case OpDiv:
		if b == 0 {
			return 0
		}
		return uint64(int64(a) / int64(b))
	case OpRem:
		if b == 0 {
			return 0
		}
		return uint64(int64(a) % int64(b))
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << (b & 63)
	case OpShr:
		return a >> (b & 63)
	case OpSlt:
		return boolBit(int64(a) < int64(b))
	case OpSle:
		return boolBit(int64(a) <= int64(b))
	case OpSeq:
		return boolBit(a == b)
	case OpSne:
		return boolBit(a != b)
	case OpAddi:
		return a + uint64(imm)
	case OpMuli:
		return uint64(int64(a) * imm)
	case OpAndi:
		return a & uint64(imm)
	case OpShli:
		return a << (uint64(imm) & 63)
	case OpShri:
		return a >> (uint64(imm) & 63)
	case OpSlti:
		return boolBit(int64(a) < imm)
	case OpLi:
		return uint64(imm)
	case OpMov:
		return a
	case OpFAdd:
		return Bits(F64(a) + F64(b))
	case OpFSub:
		return Bits(F64(a) - F64(b))
	case OpFMul:
		return Bits(F64(a) * F64(b))
	case OpFDiv:
		return Bits(F64(a) / F64(b))
	case OpFNeg:
		return Bits(-F64(a))
	case OpFAbs:
		return Bits(math.Abs(F64(a)))
	case OpFSlt:
		return boolBit(F64(a) < F64(b))
	case OpFSqr:
		return Bits(math.Sqrt(F64(a)))
	case OpCvtIF:
		return Bits(float64(int64(a)))
	case OpCvtFI:
		return uint64(int64(F64(a)))
	}
	panic(fmt.Sprintf("isa: EvalALU called with non-ALU opcode %v", op))
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
