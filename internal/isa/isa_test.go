package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{OpAdd, ClassALU}, {OpFMul, ClassALU}, {OpLi, ClassALU}, {OpNop, ClassALU},
		{OpLd, ClassLoad}, {OpSt, ClassStore},
		{OpBeqz, ClassBranch}, {OpBnez, ClassBranch}, {OpJ, ClassBranch},
		{OpLock, ClassSync}, {OpUnlock, ClassSync}, {OpBarrier, ClassSync},
		{OpWaitEv, ClassSync}, {OpSetEv, ClassSync},
		{OpHalt, ClassHalt},
	}
	for _, c := range cases {
		if got := Classify(c.op); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestAcquireRelease(t *testing.T) {
	if !IsAcquire(OpLock) || !IsAcquire(OpWaitEv) || !IsAcquire(OpBarrier) {
		t.Error("lock, waitev, barrier must be acquires")
	}
	if !IsRelease(OpUnlock) || !IsRelease(OpSetEv) || !IsRelease(OpBarrier) {
		t.Error("unlock, setev, barrier must be releases")
	}
	if IsAcquire(OpUnlock) || IsRelease(OpLock) {
		t.Error("unlock is not an acquire; lock is not a release")
	}
	if IsAcquire(OpLd) || IsRelease(OpSt) {
		t.Error("plain memory ops are not synchronization")
	}
}

func TestIsMem(t *testing.T) {
	for _, op := range []Op{OpLd, OpSt, OpLock, OpUnlock} {
		if !IsMem(op) {
			t.Errorf("IsMem(%v) = false, want true", op)
		}
	}
	for _, op := range []Op{OpAdd, OpBarrier, OpWaitEv, OpSetEv, OpBeqz} {
		if IsMem(op) {
			t.Errorf("IsMem(%v) = true, want false", op)
		}
	}
}

func TestEvalALUInteger(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		imm  int64
		want uint64
	}{
		{OpAdd, 3, 4, 0, 7},
		{OpSub, 3, 4, 0, ^uint64(0)}, // -1
		{OpMul, 6, 7, 0, 42},
		{OpDiv, 42, 6, 0, 7},
		{OpDiv, 42, 0, 0, 0}, // div by zero defined as 0
		{OpRem, 43, 6, 0, 1},
		{OpRem, 43, 0, 0, 0},
		{OpAnd, 0b1100, 0b1010, 0, 0b1000},
		{OpOr, 0b1100, 0b1010, 0, 0b1110},
		{OpXor, 0b1100, 0b1010, 0, 0b0110},
		{OpShl, 1, 4, 0, 16},
		{OpShr, 16, 4, 0, 1},
		{OpSlt, ^uint64(0) /* -1 */, 0, 0, 1},
		{OpSlt, 0, 0, 0, 0},
		{OpSle, 5, 5, 0, 1},
		{OpSeq, 9, 9, 0, 1},
		{OpSne, 9, 9, 0, 0},
		{OpAddi, 10, 0, -3, 7},
		{OpMuli, 10, 0, 3, 30},
		{OpAndi, 0xff, 0, 0x0f, 0x0f},
		{OpShli, 1, 0, 5, 32},
		{OpShri, 32, 0, 5, 1},
		{OpSlti, 2, 0, 3, 1},
		{OpLi, 0, 0, -9, ^uint64(8)}, // two's-complement -9
		{OpMov, 123, 0, 0, 123},
	}
	for _, c := range cases {
		if got := EvalALU(c.op, c.a, c.b, c.imm); got != c.want {
			t.Errorf("EvalALU(%v, %d, %d, %d) = %d, want %d", c.op, c.a, c.b, c.imm, got, c.want)
		}
	}
}

func TestEvalALUFloat(t *testing.T) {
	a, b := Bits(2.5), Bits(4.0)
	if got := F64(EvalALU(OpFAdd, a, b, 0)); got != 6.5 {
		t.Errorf("fadd = %v, want 6.5", got)
	}
	if got := F64(EvalALU(OpFSub, a, b, 0)); got != -1.5 {
		t.Errorf("fsub = %v, want -1.5", got)
	}
	if got := F64(EvalALU(OpFMul, a, b, 0)); got != 10.0 {
		t.Errorf("fmul = %v, want 10", got)
	}
	if got := F64(EvalALU(OpFDiv, b, a, 0)); got != 1.6 {
		t.Errorf("fdiv = %v, want 1.6", got)
	}
	if got := F64(EvalALU(OpFNeg, a, 0, 0)); got != -2.5 {
		t.Errorf("fneg = %v, want -2.5", got)
	}
	if got := F64(EvalALU(OpFAbs, Bits(-3.0), 0, 0)); got != 3.0 {
		t.Errorf("fabs = %v, want 3", got)
	}
	if got := EvalALU(OpFSlt, a, b, 0); got != 1 {
		t.Errorf("fslt(2.5,4) = %d, want 1", got)
	}
	if got := F64(EvalALU(OpFSqr, Bits(9.0), 0, 0)); got != 3.0 {
		t.Errorf("fsqrt = %v, want 3", got)
	}
	if got := F64(EvalALU(OpCvtIF, ^uint64(6) /* -7 */, 0, 0)); got != -7.0 {
		t.Errorf("cvtif = %v, want -7", got)
	}
	if got := int64(EvalALU(OpCvtFI, Bits(-7.9), 0, 0)); got != -7 {
		t.Errorf("cvtfi = %d, want -7 (truncation)", got)
	}
}

func TestEvalALUPanicsOnMemOp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EvalALU(OpLd) did not panic")
		}
	}()
	EvalALU(OpLd, 0, 0, 0)
}

// Property: float round-trip through register bits is exact.
func TestFloatBitsRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return math.IsNaN(F64(Bits(x)))
		}
		return F64(Bits(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add/Sub are inverses on the uint64 ring.
func TestAddSubInverse(t *testing.T) {
	f := func(a, b uint64) bool {
		return EvalALU(OpSub, EvalALU(OpAdd, a, b, 0), b, 0) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: comparison results are always 0 or 1.
func TestComparisonsAreBoolean(t *testing.T) {
	ops := []Op{OpSlt, OpSle, OpSeq, OpSne, OpSlti, OpFSlt}
	f := func(a, b uint64, imm int64) bool {
		for _, op := range ops {
			v := EvalALU(op, a, b, imm)
			if v != 0 && v != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSrcRegs(t *testing.T) {
	var buf []uint8
	cases := []struct {
		in   Instr
		want int
	}{
		{Instr{Op: OpAdd, Dst: 3, Src1: 1, Src2: 2}, 2},
		{Instr{Op: OpAdd, Dst: 3, Src1: 0, Src2: 2}, 1}, // zero reg excluded
		{Instr{Op: OpLi, Dst: 3}, 0},
		{Instr{Op: OpLd, Dst: 3, Src1: 4}, 1},
		{Instr{Op: OpSt, Src1: 4, Src2: 5}, 2},
		{Instr{Op: OpBeqz, Src1: 4}, 1},
		{Instr{Op: OpJ}, 0},
		{Instr{Op: OpLock, Src1: 4}, 1},
		{Instr{Op: OpBarrier, Imm: 1}, 0},
	}
	for _, c := range cases {
		got := c.in.SrcRegs(buf[:0])
		if len(got) != c.want {
			t.Errorf("SrcRegs(%v) = %v, want %d regs", c.in, got, c.want)
		}
	}
}

func TestHasDest(t *testing.T) {
	if !(Instr{Op: OpAdd, Dst: 1}).HasDest() {
		t.Error("add r1 has dest")
	}
	if (Instr{Op: OpAdd, Dst: Zero}).HasDest() {
		t.Error("add r0 has no architectural dest")
	}
	if (Instr{Op: OpSt, Src1: 1, Src2: 2}).HasDest() {
		t.Error("store has no dest")
	}
	if (Instr{Op: OpBeqz, Src1: 1}).HasDest() {
		t.Error("branch has no dest")
	}
	if !(Instr{Op: OpLd, Dst: 2, Src1: 1}).HasDest() {
		t.Error("load has dest")
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpLi, Dst: 1, Imm: 5}, "li r1, 5"},
		{Instr{Op: OpLd, Dst: 2, Src1: 3, Imm: 16}, "ld r2, 16(r3)"},
		{Instr{Op: OpSt, Src1: 3, Src2: 4, Imm: 8}, "st r4, 8(r3)"},
		{Instr{Op: OpBeqz, Src1: 5, Imm: 42}, "beqz r5, @42"},
		{Instr{Op: OpBarrier, Imm: 2}, "barrier 2"},
		{Instr{Op: OpAdd, Dst: 1, Src1: 2, Src2: 3}, "add r1, r2, r3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}
