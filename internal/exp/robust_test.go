package exp

// Tests for the scheduler's failure containment: deterministic lowest-index
// error selection (byte-identical failures at any worker count), graceful
// degradation to partial results, panic isolation, retry of transient
// faults, and cooperative cancellation. The fault-injection harness drives
// the failure paths deterministically; run with -race in CI.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"dynsched/internal/apps"
	"dynsched/internal/faultinject"
)

// TestRunJobsLowestIndexError pins the determinism fix: index 7 fails
// instantly, index 3 fails only after a delay, so completion order favours
// 7 — but the caller must always see index 3's error, exactly as serial
// execution would.
func TestRunJobsLowestIndexError(t *testing.T) {
	errSlow := errors.New("slow failure at 3")
	errFast := errors.New("fast failure at 7")
	for _, workers := range []int{1, 2, 4, 8} {
		err := runJobs(20, workers, func(i int) error {
			switch i {
			case 3:
				time.Sleep(20 * time.Millisecond)
				return errSlow
			case 7:
				return errFast
			}
			return nil
		})
		if !errors.Is(err, errSlow) {
			t.Fatalf("workers=%d: err = %v, want the lowest-index error %v", workers, err, errSlow)
		}
	}
}

// Every index below the returned failure must have actually run — the
// lowest-index guarantee is about matching serial semantics, not just
// picking a smaller number.
func TestRunJobsRunsEverythingBelowFailure(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{2, 8} {
		const n, failAt = 64, 40
		ran := make([]bool, n)
		var mu sync.Mutex
		err := runJobs(n, workers, func(i int) error {
			mu.Lock()
			ran[i] = true
			mu.Unlock()
			if i == failAt {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		for i := 0; i < failAt; i++ {
			if !ran[i] {
				t.Fatalf("workers=%d: index %d below the failure never ran", workers, i)
			}
		}
	}
}

func TestRunJobsAllCollectsEveryError(t *testing.T) {
	bad := map[int]error{5: errors.New("five"), 12: errors.New("twelve")}
	for _, workers := range []int{0, 1, 4} {
		const n = 20
		ran := make([]bool, n)
		var mu sync.Mutex
		errs := runJobsAll(nil, n, workers, func(i int) error {
			mu.Lock()
			ran[i] = true
			mu.Unlock()
			return bad[i]
		})
		for i := 0; i < n; i++ {
			if !ran[i] {
				t.Fatalf("workers=%d: index %d never ran despite failures elsewhere", workers, i)
			}
			if !errors.Is(errs[i], bad[i]) {
				t.Fatalf("workers=%d: errs[%d] = %v, want %v", workers, i, errs[i], bad[i])
			}
		}
	}
}

func TestAttemptRetriesTransientThenSucceeds(t *testing.T) {
	o := &Options{Retries: 2, RetryBackoff: time.Millisecond}
	calls := 0
	cerr := o.attempt("flaky", 0, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if cerr != nil || calls != 3 {
		t.Fatalf("cerr = %v, calls = %d; want success on third attempt", cerr, calls)
	}
}

func TestAttemptCapturesPanicWithStack(t *testing.T) {
	o := &Options{Retries: 1, RetryBackoff: time.Millisecond}
	cerr := o.attempt("boom", 4, func() error { panic("cell exploded") })
	if cerr == nil {
		t.Fatal("panicking cell reported success")
	}
	if cerr.Stack == nil || !strings.Contains(string(cerr.Stack), "goroutine") {
		t.Errorf("panic stack not captured: %q", cerr.Stack)
	}
	if cerr.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (panics are retried)", cerr.Attempts)
	}
	if cerr.Index != 4 || cerr.Label != "boom" {
		t.Errorf("identity lost: %+v", cerr)
	}
	if !strings.Contains(cerr.Error(), "panicked") || !strings.Contains(cerr.Error(), "cell exploded") {
		t.Errorf("undiagnosable error text: %v", cerr)
	}
}

func TestAttemptDoesNotRetryPermanentErrors(t *testing.T) {
	o := &Options{Retries: 5, RetryBackoff: time.Millisecond}
	calls := 0
	cerr := o.attempt("dead", 0, func() error {
		calls++
		return &permanentError{errors.New("watchdog fired")}
	})
	if cerr == nil || calls != 1 {
		t.Fatalf("cerr = %v, calls = %d; permanent errors must fail on the first attempt", cerr, calls)
	}
}

func TestAttemptStopsOnCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := &Options{Retries: 10, RetryBackoff: time.Hour, Ctx: ctx}
	calls := 0
	cerr := o.attempt("canceled", 0, func() error { calls++; return errors.New("transient") })
	if cerr == nil || calls != 1 {
		t.Fatalf("cerr = %v, calls = %d; cancellation must stop the retry loop", cerr, calls)
	}
}

// TestPanickingCellDegradesGracefully is the headline fault-injection check:
// one cell of Figure 3 panics on every attempt, the sweep still finishes,
// returns every other column, marks the failed one, and produces the exact
// same partial output at any worker count.
func TestPanickingCellDegradesGracefully(t *testing.T) {
	render := func(workers int) (string, string) {
		opts := DefaultOptions()
		opts.Scale = apps.ScaleSmall
		opts.Apps = []string{"mp3d"}
		opts.Workers = workers
		opts.Retries = 1
		opts.RetryBackoff = time.Millisecond
		opts.Faults = faultinject.New()
		opts.Faults.Arm("cell.mp3d RC-DS64", faultinject.Fault{Kind: faultinject.KindPanic, Times: 99})
		e := New(opts)
		acs, err := e.Figure3All()
		var pe *PartialError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PartialError", workers, err)
		}
		if len(pe.Cells) != 1 || pe.Cells[0].Label != "mp3d RC-DS64" {
			t.Fatalf("workers=%d: wrong failure set: %v", workers, pe.FailedLabels())
		}
		if pe.Cells[0].Attempts != 2 || pe.Cells[0].Stack == nil {
			t.Errorf("workers=%d: retry/stack bookkeeping off: attempts=%d stack=%v",
				workers, pe.Cells[0].Attempts, pe.Cells[0].Stack != nil)
		}
		healthy := 0
		for _, c := range acs[0].Cols {
			if !c.Failed && c.Breakdown.Total() > 0 {
				healthy++
			}
		}
		if healthy != len(acs[0].Cols)-1 {
			t.Fatalf("workers=%d: %d healthy columns, want %d", workers, healthy, len(acs[0].Cols)-1)
		}
		table := FormatAppColumns("fig3", acs)
		if !strings.Contains(table, "FAILED") {
			t.Errorf("workers=%d: failed cell not marked in the table:\n%s", workers, table)
		}
		return table, pe.Error()
	}
	serialTable, serialErr := render(1)
	parTable, parErr := render(8)
	if serialTable != parTable {
		t.Errorf("partial table differs between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s", serialTable, parTable)
	}
	if serialErr != parErr {
		t.Errorf("partial error differs between worker counts:\n%s\nvs\n%s", serialErr, parErr)
	}
}

// A transient injected fault plus one retry must leave no trace in the
// results: the sweep succeeds completely.
func TestRetryRecoversTransientCellFault(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = apps.ScaleSmall
	opts.Apps = []string{"mp3d"}
	opts.Workers = 4
	opts.Retries = 1
	opts.RetryBackoff = time.Millisecond
	opts.Faults = faultinject.New()
	opts.Faults.Arm("cell.mp3d BASE", faultinject.Fault{Kind: faultinject.KindError})
	e := New(opts)
	acs, err := e.Figure3All()
	if err != nil {
		t.Fatalf("one transient fault with a retry budget broke the sweep: %v", err)
	}
	if opts.Faults.Fired("cell.mp3d BASE") != 1 {
		t.Fatalf("fault fired %d times, want 1", opts.Faults.Fired("cell.mp3d BASE"))
	}
	for _, c := range acs[0].Cols {
		if c.Failed || c.Breakdown.Total() == 0 {
			t.Fatalf("column %q incomplete after recovery", c.Label)
		}
	}
}

// A failed trace generation fails that application's cells and nothing else.
func TestGenerationFailureIsolatedPerApp(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = apps.ScaleSmall
	opts.Apps = []string{"mp3d", "ocean"}
	opts.Workers = 4
	opts.Faults = faultinject.New()
	opts.Faults.Arm("gen.mp3d", faultinject.Fault{Kind: faultinject.KindError})
	e := New(opts)
	acs, err := e.WindowSweepAll()
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if len(pe.Cells) != 1 || pe.Cells[0].Label != "mp3d (trace generation)" {
		t.Fatalf("wrong failure set: %v", pe.FailedLabels())
	}
	for _, c := range acs[0].Cols { // mp3d
		if !c.Failed {
			t.Fatalf("mp3d column %q not marked failed after its generation failed", c.Label)
		}
	}
	for _, c := range acs[1].Cols { // ocean
		if c.Failed || c.Breakdown.Total() == 0 {
			t.Fatalf("ocean column %q collateral-damaged by mp3d's generation failure", c.Label)
		}
	}
	if csv := ColumnsCSV(acs); strings.Contains(csv, "mp3d") || !strings.Contains(csv, "ocean") {
		t.Errorf("CSV must omit failed cells and keep healthy ones:\n%s", csv)
	}
}

// Cancellation aborts the sweep outright — no partial results, a context
// error — and a pre-canceled harness never starts simulating.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.Scale = apps.ScaleSmall
	opts.Apps = []string{"mp3d"}
	opts.Ctx = ctx
	e := New(opts)
	acs, err := e.Figure3All()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if acs != nil {
		t.Fatalf("canceled sweep returned results: %v", acs)
	}
}

// A panic during trace generation must not poison the single-flight cache:
// later callers get the captured error, not (nil, nil).
func TestGenerationPanicDoesNotPoisonCache(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = apps.ScaleSmall
	opts.Apps = []string{"mp3d"}
	opts.Faults = faultinject.New()
	opts.Faults.Arm("gen.mp3d", faultinject.Fault{Kind: faultinject.KindPanic, Times: 99})
	e := New(opts)
	for i := 0; i < 2; i++ {
		run, err := e.Run("mp3d")
		if run != nil || err == nil {
			t.Fatalf("call %d: run=%v err=%v, want (nil, error)", i, run, err)
		}
		if !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("call %d: panic origin lost: %v", i, err)
		}
		if !isPermanent(err) {
			t.Fatalf("call %d: cached generation failure must be permanent", i)
		}
	}
}

// TestRetryScheduleJitterAndCap pins the retry-backoff contract: the waits
// double from RetryBackoff, never exceed RetryMaxBackoff, carry a
// deterministic per-(label, attempt) jitter in the upper half of the
// exponential delay, and are observable through the injectable sleeper — a
// second identical run records the identical schedule.
func TestRetryScheduleJitterAndCap(t *testing.T) {
	const label = "mp3d RC-DS64"
	base, max := 10*time.Millisecond, 80*time.Millisecond
	record := func(label string) []time.Duration {
		var sleeps []time.Duration
		o := &Options{
			Retries: 6, RetryBackoff: base, RetryMaxBackoff: max,
			Sleep: func(d time.Duration) { sleeps = append(sleeps, d) },
		}
		ce := o.attempt(label, 0, func() error { return errors.New("transient") })
		if ce == nil || ce.Attempts != 7 {
			t.Fatalf("attempt result = %+v, want terminal failure after 7 attempts", ce)
		}
		return sleeps
	}
	sleeps := record(label)
	if len(sleeps) != 6 {
		t.Fatalf("recorded %d sleeps, want 6", len(sleeps))
	}
	for i, d := range sleeps {
		a := i + 1
		if want := RetryDelay(label, a, base, max); d != want {
			t.Errorf("attempt %d slept %v, want RetryDelay = %v", a, d, want)
		}
		exp := base << i
		if exp > max {
			exp = max
		}
		if d <= exp/2 || d > exp {
			t.Errorf("attempt %d slept %v, want within (%v, %v]", a, d, exp/2, exp)
		}
	}
	// The capped tail still spreads: attempts 4-6 all hit the 80ms cap, but
	// their jittered waits must not be identical (lockstep retries are the
	// failure mode the jitter exists to break).
	if sleeps[3] == sleeps[4] && sleeps[4] == sleeps[5] {
		t.Errorf("capped retries slept in lockstep: %v", sleeps[3:])
	}
	// Reproducible: the schedule is a pure function of the label.
	again := record(label)
	for i := range sleeps {
		if sleeps[i] != again[i] {
			t.Fatalf("retry schedule not deterministic: %v vs %v", sleeps, again)
		}
	}
	// Decorrelated: a different cell label yields a different schedule.
	other := record("lu SC-SS")
	same := true
	for i := range sleeps {
		if sleeps[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Errorf("labels %q and %q share a retry schedule: %v", label, "lu SC-SS", sleeps)
	}
}
