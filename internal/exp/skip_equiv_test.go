package exp

// TestSkipEquivalence is the property test behind the event-driven time-skip
// optimization in internal/cpu: for every processor model, consistency
// model, window size, and miss penalty in the grid below, a replay with time
// skipping enabled (the default) must produce a Result byte-identical to the
// pure cycle-stepped replay (NoTimeSkip), including every stall-breakdown
// category, the occupancy average, the read-miss delay histogram, and the
// full observability snapshot (counters + histograms) that feeds the run
// ledger's determinism checksum. CI runs this test as a standalone gate.

import (
	"fmt"
	"reflect"
	"testing"

	"dynsched/internal/apps"
	"dynsched/internal/consistency"
	"dynsched/internal/cpu"
	"dynsched/internal/obs"
	"dynsched/internal/trace"
)

// skipEquivCells is the configuration grid replayed under both arms. BASE
// has no time-skip path (its cost model is already event-free) but is kept
// in the grid so all four processor models are pinned by the same property.
func skipEquivCells() []struct {
	label  string
	arch   string
	window int
	extra  func(*cpu.Config)
} {
	cells := []struct {
		label  string
		arch   string
		window int
		extra  func(*cpu.Config)
	}{
		{label: "BASE", arch: "BASE"},
		{label: "SSBR", arch: "SSBR"},
		{label: "SS", arch: "SS"},
		{label: "DS16", arch: "DS", window: 16},
		{label: "DS64", arch: "DS", window: 64},
		// Prefetching with bounded MSHRs exercises the prefetch-decay skip
		// candidate, the subtlest of the jump targets.
		{label: "DS64pf", arch: "DS", window: 64,
			extra: func(c *cpu.Config) { c.Prefetch = true; c.MSHRs = 4 }},
	}
	return cells
}

func replayBothArms(t *testing.T, tr *trace.Trace, label, arch string, cfg cpu.Config) {
	t.Helper()
	type arm struct {
		res  cpu.Result
		fnv  string
		name string
	}
	arms := make([]arm, 2)
	for i, noskip := range []bool{false, true} {
		reg := obs.NewRegistry()
		c := cfg
		c.NoTimeSkip = noskip
		c.Metrics = reg
		c.MetricsPrefix = "equiv."
		res, err := runArch(tr, arch, c)
		if err != nil {
			t.Fatalf("%s noskip=%v: %v", label, noskip, err)
		}
		cpu.PublishResult(reg, "equiv.", res)
		arms[i] = arm{res: res, fnv: obs.SnapshotFNV(reg.Snapshot()), name: fmt.Sprintf("noskip=%v", noskip)}
	}
	if !reflect.DeepEqual(arms[0].res, arms[1].res) {
		t.Errorf("%s: Result differs between skip and noskip:\n skip:   %+v\n noskip: %+v",
			label, arms[0].res, arms[1].res)
	}
	if arms[0].fnv != arms[1].fnv {
		t.Errorf("%s: metrics snapshot FNV differs: skip %s, noskip %s",
			label, arms[0].fnv, arms[1].fnv)
	}
}

func TestSkipEquivalence(t *testing.T) {
	models := []consistency.Model{consistency.SC, consistency.PC, consistency.WO, consistency.RC}
	for _, penalty := range []uint32{50, 200} {
		opts := DefaultOptions()
		opts.Scale = apps.ScaleSmall
		opts.Apps = []string{"mp3d", "ocean"}
		opts.MissPenalty = penalty
		e := New(opts)
		for _, app := range opts.Apps {
			run, err := e.Run(app)
			if err != nil {
				t.Fatal(err)
			}
			for _, model := range models {
				for _, c := range skipEquivCells() {
					label := fmt.Sprintf("lat%d/%s/%s/%s", penalty, app, model, c.label)
					cfg := cpu.Config{Model: model, Window: c.window}
					if c.extra != nil {
						c.extra(&cfg)
					}
					replayBothArms(t, run.Trace, label, c.arch, cfg)
				}
			}
		}
	}
}
