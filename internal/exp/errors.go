package exp

// Failure containment for the experiment scheduler. A sweep is hundreds of
// independent replay cells; one panicking or failing cell must not take the
// rest of a multi-figure run with it. Every cell runs under attempt(), which
// converts panics into structured errors, retries transient failures with
// backoff, and hands terminal failures back as *CellError values that the
// sweep aggregates into a *PartialError — the caller still gets every
// healthy column, with the failed ones marked.

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"strings"
	"time"
)

// CellError is one cell's terminal failure: which job, how it failed, how
// many times it was attempted, and — for panics — the captured stack.
type CellError struct {
	Label    string // job label, e.g. "mp3d RC-DS64"
	Index    int    // job index within the sweep (stable across worker counts)
	Attempts int    // how many times the cell was run before giving up
	Err      error  // the final underlying error (the panic value for panics)
	Stack    []byte // goroutine stack at panic time; nil for plain errors
}

func (e *CellError) Error() string {
	kind := ""
	if e.Stack != nil {
		kind = "panicked: "
	}
	return fmt.Sprintf("cell %q (job %d) failed after %d attempt(s): %s%v",
		e.Label, e.Index, e.Attempts, kind, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// PartialError reports a sweep that degraded gracefully: some cells failed
// terminally, the rest completed and their results are returned alongside
// this error. Failures are ordered by job index, so the message is
// byte-identical at any worker count.
type PartialError struct {
	Total int          // cells attempted
	Cells []*CellError // terminal failures, ordered by index
}

func (e *PartialError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "exp: %d of %d cells failed (results are partial)", len(e.Cells), e.Total)
	for _, c := range e.Cells {
		b.WriteString("\n  ")
		b.WriteString(c.Error())
	}
	return b.String()
}

// Unwrap exposes the individual cell errors to errors.Is / errors.As.
func (e *PartialError) Unwrap() []error {
	errs := make([]error, len(e.Cells))
	for i, c := range e.Cells {
		errs[i] = c
	}
	return errs
}

// FailedLabels returns the failed cells' labels, ordered by index — the
// list the run ledger records.
func (e *PartialError) FailedLabels() []string {
	labels := make([]string, len(e.Cells))
	for i, c := range e.Cells {
		labels[i] = c.Label
	}
	return labels
}

// permanentError marks a deterministic failure as not worth retrying (a
// cached trace-generation error: the single-flight cache would hand back
// the identical error without re-running anything).
type permanentError struct{ err error }

func (e *permanentError) Error() string   { return e.err.Error() }
func (e *permanentError) Unwrap() error   { return e.err }
func (e *permanentError) Permanent() bool { return true }

// isPermanent reports whether any error in the chain declares itself
// permanent (cpu.WatchdogError, tango.MachineError, cached generation
// failures). Context cancellation is likewise terminal: retrying a canceled
// cell only delays shutdown.
func isPermanent(err error) bool {
	var p interface{ Permanent() bool }
	if errors.As(err, &p) && p.Permanent() {
		return true
	}
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// IsPermanent is the exported form of isPermanent, for callers outside the
// scheduler that must apply the same retry policy — the distributed worker
// classifies a replay failure before reporting it, so the coordinator
// requeues only what a local attempt() would have retried.
func IsPermanent(err error) bool { return isPermanent(err) }

// DefaultRetryBackoff is the first-retry delay when Options.RetryBackoff is
// zero; it doubles on each subsequent attempt.
const DefaultRetryBackoff = 50 * time.Millisecond

// DefaultRetryMaxBackoff caps the doubling when Options.RetryMaxBackoff is
// zero: past the cap every further retry waits the same bounded time, so a
// high retry budget cannot grow into minute-long sleeps.
const DefaultRetryMaxBackoff = 2 * time.Second

// RetryDelay returns the wait before retrying attempt a (1-based: the delay
// after the a-th failed attempt) of the cell labelled label: base doubling
// per attempt, capped at max, with half the capped delay replaced by a
// jitter hashed from (label, attempt). The jitter decorrelates cells that
// fail together — a coordinator requeueing a whole dead worker's cells must
// not have them all retry in lockstep — while staying a pure function of
// its arguments, so retry schedules are reproducible in tests and the delay
// never exceeds max. base <= 0 selects DefaultRetryBackoff, max <= 0
// DefaultRetryMaxBackoff.
func RetryDelay(label string, a int, base, max time.Duration) time.Duration {
	if base <= 0 {
		base = DefaultRetryBackoff
	}
	if max <= 0 {
		max = DefaultRetryMaxBackoff
	}
	if base > max {
		base = max
	}
	d := base
	for i := 1; i < a && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Equal jitter: keep half the exponential delay, hash the other half, so
	// the wait stays within [d/2, d] and under the cap.
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", label, a)
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(h.Sum64()%uint64(half)+1)
}

// attempt runs one cell's work with panic isolation and retry: a panic is
// recovered into a *CellError with its stack, transient errors are retried
// up to Options.Retries extra times with capped, jittered doubling backoff
// (see RetryDelay), and permanent errors (watchdog kills, cancellation,
// cached generation failures) stop immediately. It returns nil on success.
func (o *Options) attempt(label string, index int, fn func() error) *CellError {
	sleep := o.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var last *CellError
	for a := 1; a <= o.Retries+1; a++ {
		err, stack := protect(fn)
		if err == nil {
			return nil
		}
		last = &CellError{Label: label, Index: index, Attempts: a, Err: err, Stack: stack}
		if isPermanent(err) || ctxDone(o.Ctx) != nil {
			break
		}
		if a <= o.Retries {
			sleep(RetryDelay(label, a, o.RetryBackoff, o.RetryMaxBackoff))
		}
	}
	return last
}

// protect invokes fn, converting a panic into an error plus the stack.
func protect(fn func() error) (err error, stack []byte) {
	defer func() {
		if r := recover(); r != nil {
			stack = debug.Stack()
			if e, ok := r.(error); ok {
				err = e
			} else {
				err = fmt.Errorf("panic: %v", r)
			}
		}
	}()
	return fn(), nil
}

// ctxDone polls ctx without blocking; nil ctx never cancels.
func ctxDone(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}
