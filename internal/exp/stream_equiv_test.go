package exp

// TestStreamEquivalence is the property test behind the zero-copy streaming
// replay path: for every processor model, consistency model, window size,
// and miss penalty in the TestSkipEquivalence grid, replaying a serialized
// trace through a trace.Cursor (chunk-at-a-time, no whole-trace []Event)
// must produce a Result byte-identical to replaying the materialized trace,
// including every stall-breakdown category, the occupancy average, the
// read-miss delay histogram, and the full observability snapshot that feeds
// the run ledger's determinism checksum. CI runs this test as a standalone
// gate alongside the time-skip equivalence.

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"dynsched/internal/apps"
	"dynsched/internal/consistency"
	"dynsched/internal/cpu"
	"dynsched/internal/obs"
	"dynsched/internal/trace"
)

// runArchStream is runArch's streaming dual: the same processor dispatch
// over a cursor instead of a materialized trace.
func runArchStream(c *trace.Cursor, arch string, cfg cpu.Config) (cpu.Result, error) {
	switch arch {
	case "BASE":
		return cpu.RunBaseStreamCP(c, cfg.CritPath)
	case "SSBR":
		return cpu.RunSSBRStream(c, cfg)
	case "SS":
		return cpu.RunSSStream(c, cfg)
	case "DS":
		return cpu.RunDSStream(c, cfg)
	}
	return cpu.Result{}, fmt.Errorf("exp: unknown architecture %q", arch)
}

func TestStreamEquivalence(t *testing.T) {
	models := []consistency.Model{consistency.SC, consistency.PC, consistency.WO, consistency.RC}
	for _, penalty := range []uint32{50, 200} {
		opts := DefaultOptions()
		opts.Scale = apps.ScaleSmall
		opts.Apps = []string{"mp3d", "ocean"}
		opts.MissPenalty = penalty
		e := New(opts)
		for _, app := range opts.Apps {
			run, err := e.Run(app)
			if err != nil {
				t.Fatal(err)
			}
			// One serialized container per app: every streaming arm decodes
			// the same bytes a trace file would hold.
			var buf bytes.Buffer
			if _, err := run.Trace.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			raw := buf.Bytes()
			for _, model := range models {
				for _, c := range skipEquivCells() {
					label := fmt.Sprintf("lat%d/%s/%s/%s", penalty, app, model, c.label)
					cfg := cpu.Config{Model: model, Window: c.window}
					if c.extra != nil {
						c.extra(&cfg)
					}

					regM := obs.NewRegistry()
					cfgM := cfg
					cfgM.Metrics = regM
					cfgM.MetricsPrefix = "equiv."
					want, err := runArch(run.Trace, c.arch, cfgM)
					if err != nil {
						t.Fatalf("%s materialized: %v", label, err)
					}
					cpu.PublishResult(regM, "equiv.", want)

					cur, err := trace.NewCursor(bytes.NewReader(raw))
					if err != nil {
						t.Fatalf("%s: NewCursor: %v", label, err)
					}
					regS := obs.NewRegistry()
					cfgS := cfg
					cfgS.Metrics = regS
					cfgS.MetricsPrefix = "equiv."
					got, err := runArchStream(cur, c.arch, cfgS)
					if err != nil {
						t.Fatalf("%s streaming: %v", label, err)
					}
					cpu.PublishResult(regS, "equiv.", got)

					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s: Result differs between streaming and materialized:\n stream: %+v\n slice:  %+v",
							label, got, want)
					}
					if sf, mf := obs.SnapshotFNV(regS.Snapshot()), obs.SnapshotFNV(regM.Snapshot()); sf != mf {
						t.Errorf("%s: metrics snapshot FNV differs: streaming %s, materialized %s", label, sf, mf)
					}
				}
			}
		}
	}
}

// TestStreamWindowGuard pins the lookback contract at the API boundary: a
// DS window deeper than the cursor's pointer-retention guarantee must be
// rejected, not silently replayed over recycled ring slots.
func TestStreamWindowGuard(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = apps.ScaleSmall
	opts.Apps = []string{"mp3d"}
	e := New(opts)
	run, err := e.Run("mp3d")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := run.Trace.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	cur, err := trace.NewCursor(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.RunDSStream(cur, cpu.Config{Model: consistency.RC, Window: trace.CursorLookback + 1}); err == nil {
		t.Fatal("RunDSStream accepted a window beyond trace.CursorLookback")
	}
}
