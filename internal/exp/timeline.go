package exp

// The simulated-time telemetry sweep (`hidelat timeline`): the attribution
// cell matrix replayed with an interval Timeline sampler (and a critpath
// collector for per-interval fine-cause deltas) attached to every cell,
// producing per-cell time series of the stall mix, retire rate, and
// structure occupancy, segmented into execution phases by a change-point
// detector over the stall-mix vectors. The collection follows the ledger's
// determinism discipline — one sampler per cell, results merged by input
// index — so the report, JSON, and CSV are byte-identical at any worker
// count and skip-vs-noskip.

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"dynsched/internal/cpu"
	"dynsched/internal/critpath"
	"dynsched/internal/obs"
)

const (
	// timelineShift is the replay cells' initial sampling interval (2^10 =
	// 1024 cycles); timelineMaxPoints bounds the series, decimating by
	// doubling the interval when full. 256 points cover a 256k-cycle run
	// at native granularity and any longer run at a power-of-two multiple.
	timelineShift     = 10
	timelineMaxPoints = 256
	// genTimelineShift is the coarser interval for multiprocessor trace
	// generations, whose simulated times run ~NumCPUs times longer.
	genTimelineShift = 12

	// phaseThreshold is the change-point trigger: the L1 distance (max 2.0)
	// between an interval's stall-mix vector and the running mean of the
	// current phase above which a new phase starts. 0.5 means roughly a
	// quarter of the interval's cycles moved between categories.
	phaseThreshold = 0.5
)

// TimelineSchema tags the timeline JSON export so `hidelat diff` can sniff
// the format.
const TimelineSchema = "dynsched-timeline/v1"

// TimelinePhase summarizes one detected execution phase: a maximal run of
// sampling intervals with a stable stall-mix vector.
type TimelinePhase struct {
	Index        int    `json:"index"`
	StartCycle   uint64 `json:"start_cycle"`
	EndCycle     uint64 `json:"end_cycle"`
	Intervals    int    `json:"intervals"`
	Instructions uint64 `json:"instructions"`
	// IPC is retired instructions per cycle over the phase; MCPI is memory
	// stall cycles (read+write) per instruction.
	IPC  float64 `json:"ipc"`
	MCPI float64 `json:"mcpi"`
	// DominantStall is the largest coarse stall category by cycles over
	// the phase ("busy" when no stall cycles were charged at all).
	DominantStall string `json:"dominant_stall"`
}

// TimelineCell is one replay cell's sampled series and detected phases.
type TimelineCell struct {
	Label        string               `json:"label"`
	Arch         string               `json:"arch"`
	Window       int                  `json:"window,omitempty"`
	Interval     uint64               `json:"interval_cycles"`
	TotalCycles  uint64               `json:"total_cycles"`
	Instructions uint64               `json:"instructions"`
	Samples      []obs.TimelineSample `json:"samples"`
	Phases       []TimelinePhase      `json:"phases"`

	Failed bool   `json:"failed,omitempty"`
	Error  string `json:"error,omitempty"`
	Err    error  `json:"-"`
}

// TimelineApp is one application's cells, in fixed configuration order.
type TimelineApp struct {
	App   string         `json:"app"`
	Cells []TimelineCell `json:"cells"`
}

// TimelineReport is the full telemetry sweep: every configured application
// against the attribution cell matrix (BASE, RC-SSBR, RC-SS, RC-DS sweep).
type TimelineReport struct {
	Schema string        `json:"timeline_schema"`
	Apps   []TimelineApp `json:"apps"`
}

// timelineCauseNames names the indices of the per-interval fine-cause
// deltas in declaration order.
func timelineCauseNames() []string {
	names := make([]string, critpath.NumCauses)
	for _, c := range critpath.Causes() {
		names[c] = c.String()
	}
	return names
}

// TimelineAll generates every application's trace concurrently, then fans
// the apps × cells matrix out as one flat job list, each cell with its own
// sampler and collector. Failure containment mirrors AnalyzeAll: a failed
// generation marks the application's cells, a failed cell is marked without
// disturbing its neighbours, and partial results return a *PartialError.
func (e *Experiment) TimelineAll() (*TimelineReport, error) {
	appNames := e.Apps()
	o := &e.opts
	cells := analyzeCells()
	nc := len(cells)

	runs := make([]*AppRun, len(appNames))
	genErrs := runJobsAll(o.Ctx, len(appNames), o.Workers, func(i int) error {
		r, err := e.Run(appNames[i])
		if err != nil {
			return err
		}
		runs[i] = r
		return nil
	})
	if err := ctxDone(o.Ctx); err != nil {
		return nil, fmt.Errorf("exp: timeline canceled: %w", err)
	}

	rep := &TimelineReport{Schema: TimelineSchema, Apps: make([]TimelineApp, len(appNames))}
	for a, app := range appNames {
		rep.Apps[a].App = app
		rep.Apps[a].Cells = make([]TimelineCell, nc)
		for c := range cells {
			rep.Apps[a].Cells[c] = TimelineCell{Label: cells[c].label, Arch: cells[c].arch, Window: cells[c].window}
		}
	}

	var failed []*CellError
	markFailed := func(a, c int, ce *CellError) {
		slot := &rep.Apps[a].Cells[c]
		slot.Failed = true
		slot.Err = ce
		slot.Error = ce.Error()
	}
	for a, gerr := range genErrs {
		if gerr == nil {
			continue
		}
		ce := &CellError{Label: appNames[a] + " (trace generation)", Index: a * nc, Attempts: 1, Err: gerr}
		failed = append(failed, ce)
		for c := range cells {
			markFailed(a, c, ce)
		}
	}

	type cellJob struct{ a, c, job int }
	var cjs []cellJob
	for a := range appNames {
		if genErrs[a] != nil {
			continue
		}
		for c := range cells {
			cjs = append(cjs, cellJob{a, c, o.Board.Enqueue(appNames[a] + " timeline " + cells[c].label)})
		}
	}
	cellErrs := runJobsAll(o.Ctx, len(cjs), o.Workers, func(j int) error {
		cj := cjs[j]
		site := appNames[cj.a] + " timeline " + cells[cj.c].label
		o.Board.Start(cj.job)
		cerr := o.attempt(site, cj.a*nc+cj.c, func() error {
			if err := o.Faults.Fire("cell." + site); err != nil {
				return err
			}
			// A fresh sampler and collector per attempt: a retried cell
			// must not accumulate the failed attempt's partial series.
			cl := cells[cj.c]
			tl := obs.NewTimeline(timelineShift, timelineMaxPoints)
			tl.CauseNames = timelineCauseNames()
			o.Timelines.Register(appNames[cj.a]+" "+cl.label, tl)
			cp := critpath.NewCollector()
			cfg := cpu.Config{Model: cl.model, Window: cl.window, Ctx: o.Ctx,
				NoTimeSkip: o.NoTimeSkip, CritPath: cp, Timeline: tl}
			if cl.mutate != nil {
				cl.mutate(&cfg)
			}
			res, err := runArch(runs[cj.a].Trace, cl.arch, cfg)
			if err != nil {
				return err
			}
			slot := &rep.Apps[cj.a].Cells[cj.c]
			slot.Interval = tl.Interval()
			slot.TotalCycles = res.Breakdown.Total()
			slot.Instructions = res.Instructions
			slot.Samples = tl.Samples()
			slot.Phases = DetectPhases(slot.Samples)
			return nil
		})
		if cerr != nil {
			o.Board.Finish(cj.job, cerr)
			return cerr
		}
		o.Board.Finish(cj.job, nil)
		return nil
	})
	if err := ctxDone(o.Ctx); err != nil {
		return nil, fmt.Errorf("exp: timeline canceled: %w", err)
	}
	for j, err := range cellErrs {
		if err == nil {
			continue
		}
		ce := err.(*CellError)
		markFailed(cjs[j].a, cjs[j].c, ce)
		failed = append(failed, ce)
	}

	if failed != nil {
		sort.Slice(failed, func(i, j int) bool { return failed[i].Index < failed[j].Index })
		return rep, &PartialError{Total: len(appNames) * nc, Cells: failed}
	}
	return rep, nil
}

// stallMix is an interval's normalized cycle distribution over the six
// coarse categories (fractions of the interval length, clamped at zero for
// the DS model's credit-pop negatives).
func stallMix(s obs.TimelineSample) [6]float64 {
	n := s.End - s.Start
	if n == 0 {
		return [6]float64{}
	}
	inv := 1 / float64(n)
	frac := func(v int64) float64 {
		if v <= 0 {
			return 0
		}
		return float64(v) * inv
	}
	return [6]float64{frac(s.Busy), frac(s.Sync), frac(s.Read), frac(s.Write), frac(s.Branch), frac(s.Other)}
}

// DetectPhases segments a sampled series into execution phases with a
// deterministic online change-point detector: each interval's stall-mix
// vector is compared (L1 distance) against the running mean of the current
// phase; a distance above phaseThreshold closes the phase and starts a new
// one. Exact and order-dependent only on the input series, so the
// segmentation is byte-stable wherever the series is.
func DetectPhases(samples []obs.TimelineSample) []TimelinePhase {
	if len(samples) == 0 {
		return nil
	}
	var phases []TimelinePhase
	var mean [6]float64
	var agg struct {
		start, end                             uint64
		intervals                              int
		instructions                           uint64
		busy, sync, read, write, branch, other int64
	}
	flush := func() {
		cycles := agg.end - agg.start
		p := TimelinePhase{
			Index:        len(phases) + 1,
			StartCycle:   agg.start,
			EndCycle:     agg.end,
			Intervals:    agg.intervals,
			Instructions: agg.instructions,
		}
		if cycles > 0 {
			p.IPC = float64(agg.instructions) / float64(cycles)
		}
		if agg.instructions > 0 {
			p.MCPI = float64(agg.read+agg.write) / float64(agg.instructions)
		}
		doms := []struct {
			name string
			n    int64
		}{{"sync", agg.sync}, {"read", agg.read}, {"write", agg.write}, {"branch", agg.branch}, {"other", agg.other}}
		p.DominantStall = "busy"
		var best int64
		for _, d := range doms {
			if d.n > best {
				best, p.DominantStall = d.n, d.name
			}
		}
		phases = append(phases, p)
	}
	for i, s := range samples {
		mix := stallMix(s)
		if i > 0 {
			var dist float64
			for k := range mix {
				d := mix[k] - mean[k]
				if d < 0 {
					d = -d
				}
				dist += d
			}
			if dist > phaseThreshold {
				flush()
				agg.start, agg.end = s.Start, s.Start
				agg.intervals, agg.instructions = 0, 0
				agg.busy, agg.sync, agg.read, agg.write, agg.branch, agg.other = 0, 0, 0, 0, 0, 0
				mean = [6]float64{}
			}
		}
		k := float64(agg.intervals)
		for j := range mean {
			mean[j] = (mean[j]*k + mix[j]) / (k + 1)
		}
		agg.end = s.End
		agg.intervals++
		agg.instructions += s.Instructions
		agg.busy += s.Busy
		agg.sync += s.Sync
		agg.read += s.Read
		agg.write += s.Write
		agg.branch += s.Branch
		agg.other += s.Other
	}
	flush()
	return phases
}

// phaseStarts returns the sample indices at which each phase after the
// first begins, for rendering boundary markers.
func phaseStarts(samples []obs.TimelineSample, phases []TimelinePhase) map[int]bool {
	starts := make(map[int]bool)
	for _, p := range phases[1:] {
		for i, s := range samples {
			if s.Start == p.StartCycle {
				starts[i] = true
				break
			}
		}
	}
	return starts
}

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// sparkline renders vals scaled against max as unicode block characters,
// inserting a '|' phase-boundary marker before each index in starts.
func sparkline(vals []float64, max float64, starts map[int]bool) string {
	var b strings.Builder
	for i, v := range vals {
		if starts[i] {
			b.WriteByte('|')
		}
		lvl := 0
		if max > 0 && v > 0 {
			lvl = int(v * 8 / max)
			if lvl > 7 {
				lvl = 7
			}
		}
		b.WriteRune(sparkLevels[lvl])
	}
	return b.String()
}

// Format renders the report as the text `hidelat timeline` prints: per
// app × cell, IPC and memory-stall-fraction sparklines with detected phase
// boundaries, then the per-phase summary table. Deterministic byte for
// byte (fixed-precision formatting of exact integer-derived values).
func (r *TimelineReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Interval timelines: per-interval IPC and memory-stall sparklines, phase boundaries marked '|'.\n")
	for _, app := range r.Apps {
		fmt.Fprintf(&b, "\n== %s ==\n", app.App)
		for _, cell := range app.Cells {
			if cell.Failed {
				fmt.Fprintf(&b, "\n%s FAILED: %s\n", cell.Label, cell.Error)
				continue
			}
			fmt.Fprintf(&b, "\n%s  [interval %d cycles, %d samples, %d phases, %d total cycles]\n",
				cell.Label, cell.Interval, len(cell.Samples), len(cell.Phases), cell.TotalCycles)
			ipc := make([]float64, len(cell.Samples))
			mem := make([]float64, len(cell.Samples))
			var maxIPC float64
			for i, s := range cell.Samples {
				ipc[i] = s.IPC
				if s.IPC > maxIPC {
					maxIPC = s.IPC
				}
				if n := s.End - s.Start; n > 0 {
					if rw := s.Read + s.Write; rw > 0 {
						mem[i] = float64(rw) / float64(n)
					}
				}
			}
			starts := phaseStarts(cell.Samples, cell.Phases)
			fmt.Fprintf(&b, "  ipc %s\n", sparkline(ipc, maxIPC, starts))
			fmt.Fprintf(&b, "  mem %s\n", sparkline(mem, 1, starts))
			tw := tabwriter.NewWriter(&b, 2, 0, 1, ' ', tabwriter.AlignRight)
			fmt.Fprint(tw, "  Phase\t|\tcycles\t|\tintervals\t|\tinstrs\t|\tIPC\t|\tMCPI\t|\tdominant\t\n")
			for _, p := range cell.Phases {
				fmt.Fprintf(tw, "  %d\t|\t%d-%d\t|\t%d\t|\t%d\t|\t%.3f\t|\t%.3f\t|\t%s\t\n",
					p.Index, p.StartCycle, p.EndCycle, p.Intervals, p.Instructions, p.IPC, p.MCPI, p.DominantStall)
			}
			tw.Flush()
		}
	}
	return b.String()
}

// CSV renders every sample as one row (app, cell, interval bounds, deltas,
// rates, occupancies, owning phase), the spreadsheet-side export.
func (r *TimelineReport) CSV() string {
	var b strings.Builder
	b.WriteString("app,label,start_cycle,end_cycle,instructions,busy,sync,read,write,branch,other,ipc,mcpi,avg_window,avg_storebuf,avg_mshr,phase\n")
	for _, app := range r.Apps {
		for _, cell := range app.Cells {
			if cell.Failed {
				continue
			}
			phase := 0
			for _, s := range cell.Samples {
				for phase < len(cell.Phases) && s.Start >= cell.Phases[phase].EndCycle {
					phase++
				}
				idx := phase + 1
				if phase >= len(cell.Phases) {
					idx = len(cell.Phases)
				}
				fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.6f,%.6f,%.3f,%.3f,%.3f,%d\n",
					app.App, cell.Label, s.Start, s.End, s.Instructions,
					s.Busy, s.Sync, s.Read, s.Write, s.Branch, s.Other,
					s.IPC, s.MCPI, s.AvgWindow, s.AvgStoreBuf, s.AvgMSHR, idx)
			}
		}
	}
	return b.String()
}

// RecordTimeline publishes the sweep's phase structure into reg under
// "timeline.<app>.<label>." — sample/phase counts and per-phase cycle and
// instruction counters (which land in the snapshot FNV checksum and the
// run ledger) plus per-phase IPC/MCPI gauges. Only the dedicated timeline
// step publishes these, so the fig3 ledger checksum is untouched. No-op
// with a nil registry.
func RecordTimeline(reg *obs.Registry, r *TimelineReport) {
	if reg == nil || r == nil {
		return
	}
	for _, app := range r.Apps {
		for _, c := range app.Cells {
			if c.Failed {
				continue
			}
			pre := fmt.Sprintf("timeline.%s.%s.", app.App, c.Label)
			reg.Counter(pre + "samples").Set(uint64(len(c.Samples)))
			reg.Counter(pre + "phases").Set(uint64(len(c.Phases)))
			reg.Counter(pre + "total_cycles").Set(c.TotalCycles)
			reg.Counter(pre + "interval_cycles").Set(c.Interval)
			for _, p := range c.Phases {
				ppre := fmt.Sprintf("%sphase%d.", pre, p.Index)
				reg.Counter(ppre + "cycles").Set(p.EndCycle - p.StartCycle)
				reg.Counter(ppre + "intervals").Set(uint64(p.Intervals))
				reg.Counter(ppre + "instructions").Set(p.Instructions)
				reg.Gauge(ppre + "ipc").Set(p.IPC)
				reg.Gauge(ppre + "mcpi").Set(p.MCPI)
			}
		}
	}
}
