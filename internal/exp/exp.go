// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§3.3 Tables 1-3, §4.1 Figures 3 and 4,
// the §7 read-latency-hidden summary, the §4.1.3 read-miss delay analysis,
// and the §4.2 extensions), plus the ablations listed in DESIGN.md.
package exp

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"time"

	"dynsched/internal/apps"
	"dynsched/internal/bpred"
	"dynsched/internal/cache"
	"dynsched/internal/consistency"
	"dynsched/internal/cpu"
	"dynsched/internal/faultinject"
	"dynsched/internal/mem"
	"dynsched/internal/obs"
	"dynsched/internal/tango"
	"dynsched/internal/trace"
	"dynsched/internal/vm"
)

// Options selects the machine and workload parameters shared by all
// experiments.
type Options struct {
	NumCPUs     int        // processors in the multiprocessor simulation (paper: 16)
	Scale       apps.Scale // problem sizes
	MissPenalty uint32     // cache miss latency in cycles (paper: 50, §4.2: 100)
	TraceCPU    int        // which processor's trace is replayed
	Apps        []string   // applications; nil = all five

	// MemIssueInterval enables the finite-memory-bandwidth extension: the
	// minimum number of cycles between miss services machine-wide. 0 keeps
	// the paper's unbounded-bandwidth assumption.
	MemIssueInterval uint32

	// NoTimeSkip forces every replay cell back to pure cycle-by-cycle
	// stepping, disabling the event-driven time-skip optimization (see
	// cpu.Config.NoTimeSkip). Results are byte-identical either way; the
	// flag exists for diagnosis and for the equivalence tests.
	NoTimeSkip bool

	// Workers bounds the number of concurrent simulations the harness runs:
	// application trace generations and the independent replay cells of each
	// figure, table, and sweep. 0 selects runtime.GOMAXPROCS(0); 1 forces
	// fully serial execution. Results are always collected in deterministic
	// input order, so every artifact is byte-identical at any worker count.
	Workers int

	// Metrics, when non-nil, collects the observability counters of every
	// trace generation driven through this harness (the "tango." machine
	// metrics plus per-app "exp.<app>." wall-time and throughput gauges).
	Metrics *obs.Registry
	// Progress, when non-nil, receives executed-instruction and simulated-
	// cycle progress from the trace-generation simulations, one labelled
	// lane per application so concurrent generations report side by side.
	Progress *obs.Progress
	// Board, when non-nil, receives one job per unit of harness work —
	// trace generations and the replay cells of figures, sweeps, and
	// ablations — feeding the live server's /jobs endpoint.
	Board *obs.JobBoard
	// Timelines, when non-nil, receives a live interval-sampled timeline
	// per simulation this harness runs — trace generations ("gen <app>")
	// and the cells of the timeline sweep ("<app> <label>") — feeding the
	// live server's /timeline endpoint and SSE /events stream.
	Timelines *obs.TimelineHub

	// Ctx cancels the whole sweep cooperatively: trace generations and
	// replay cells poll it and unwind with a context error, so Ctrl-C or a
	// deadline stops a multi-hour run within one watchdog stride. nil never
	// cancels.
	Ctx context.Context
	// Retries is the number of extra attempts a failed replay cell gets
	// before it is marked failed. Only transient failures are retried:
	// watchdog kills, simulator machine errors, cached trace-generation
	// failures, and cancellation are terminal on the first attempt.
	Retries int
	// RetryBackoff is the delay before the first retry, doubling on each
	// subsequent one; 0 selects DefaultRetryBackoff.
	RetryBackoff time.Duration
	// RetryMaxBackoff caps the doubling retry delay; 0 selects
	// DefaultRetryMaxBackoff. The actual waits are jittered deterministically
	// per cell (see RetryDelay) and never exceed the cap.
	RetryMaxBackoff time.Duration
	// Sleep replaces time.Sleep for the retry backoff waits, letting tests
	// record and fast-forward the deterministic retry schedule. nil sleeps
	// for real.
	Sleep func(time.Duration)
	// Faults, when non-nil, injects deterministic failures at named sites
	// ("gen.<app>", "cell.<label>") — the fault-injection harness used by
	// the robustness tests and the -race CI job. nil disables injection.
	Faults *faultinject.Injector

	// Cache, when non-nil, memoizes generated traces and replay-cell
	// results on disk (see internal/cache and cache.go in this package). A
	// hit short-circuits the computation but flows through the same
	// by-index merge, so every artifact stays byte-identical to a cold run
	// at any worker count. nil disables memoization.
	Cache *cache.Store
	// CacheVerify is the fraction [0,1] of cell cache hits to recompute
	// and compare against the cached result; a divergence is a terminal
	// cell failure. The selection is a deterministic function of the cell
	// key, so the audited subset is stable across runs.
	CacheVerify float64
}

// DefaultOptions returns the paper's main configuration at medium scale.
func DefaultOptions() Options {
	return Options{NumCPUs: 16, Scale: apps.ScaleMedium, MissPenalty: 50, TraceCPU: 1}
}

func (o *Options) fillDefaults() {
	if o.NumCPUs == 0 {
		o.NumCPUs = 16
	}
	if o.MissPenalty == 0 {
		o.MissPenalty = 50
	}
	if o.Apps == nil {
		o.Apps = apps.Names()
	}
}

// AppRun couples a generated trace with the multiprocessor-side statistics.
// The trace is the application's single decoded arena: generated once,
// frozen to exact size, and shared read-only by every figure, sweep, and
// ablation cell that replays this application.
type AppRun struct {
	App    string
	Trace  *trace.Trace
	Caches []mem.Stats
	CPUs   []tango.CPUStats

	// addr is the trace's content address (trace.ContentAddr), memoized
	// when the run went through the result cache; "" when caching is off.
	addr string
}

// ContentAddr returns the trace's memoized content address, or "" when the
// run was produced without the result cache.
func (r *AppRun) ContentAddr() string { return r.addr }

// TraceView returns a read-only view of the cached decoded trace: a
// shallow *Trace whose Events slice is capacity-capped at its length, so
// concurrent replay cells share the one decoded arena without any cell
// being able to grow it or alias past its end.
func (r *AppRun) TraceView() *trace.Trace { return r.Trace.View() }

// Experiment lazily generates and caches application traces.
type Experiment struct {
	opts Options

	// cacheBytes overrides the per-processor cache size (0 = the paper's
	// 64 KB); used by the cache-geometry ablation.
	cacheBytes uint64

	mu   sync.Mutex
	runs map[string]*appEntry
}

// appEntry is the single-flight cache slot for one application's trace:
// concurrent Run calls for the same app share one generation, while
// different apps generate concurrently.
type appEntry struct {
	once sync.Once
	run  *AppRun
	err  error
}

// New creates an experiment harness.
func New(opts Options) *Experiment {
	opts.fillDefaults()
	return &Experiment{opts: opts, runs: make(map[string]*appEntry)}
}

// Options returns the harness options (defaults filled).
func (e *Experiment) Options() Options { return e.opts }

// Run returns the cached trace for app, generating it on first use. It is
// safe for concurrent use: the first caller generates, everyone else waits
// for that single flight. A panic during generation is contained here — it
// would otherwise poison the once and hand every later caller a silent
// (nil, nil). Failures are cached as permanent: the single flight would
// return the identical error without re-running anything, so retrying a
// cell against a failed generation is pointless and attempt() skips it.
func (e *Experiment) Run(app string) (*AppRun, error) {
	e.mu.Lock()
	en := e.runs[app]
	if en == nil {
		en = new(appEntry)
		e.runs[app] = en
	}
	e.mu.Unlock()
	en.once.Do(func() {
		err, stack := protect(func() error {
			var err error
			en.run, err = e.generate(app)
			return err
		})
		if err != nil {
			if stack != nil {
				err = fmt.Errorf("exp: %s: trace generation panicked: %w\n%s", app, err, stack)
			}
			en.run, en.err = nil, &permanentError{err}
		}
	})
	return en.run, en.err
}

// RunAll generates the traces of the given applications (all configured apps
// when none are named) concurrently, bounded by Options.Workers, and returns
// them in argument order.
func (e *Experiment) RunAll(names ...string) ([]*AppRun, error) {
	if len(names) == 0 {
		names = e.Apps()
	}
	runs := make([]*AppRun, len(names))
	err := runJobs(len(names), e.opts.Workers, func(i int) error {
		r, err := e.Run(names[i])
		if err != nil {
			return err
		}
		runs[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return runs, nil
}

// generate performs one application's trace generation (the multiprocessor
// simulation), result check, and validation.
func (e *Experiment) generate(app string) (run *AppRun, err error) {
	job := e.opts.Board.Enqueue("gen " + app)
	e.opts.Board.Start(job)
	defer func() { e.opts.Board.Finish(job, err) }()
	if err := e.opts.Faults.Fire("gen." + app); err != nil {
		return nil, fmt.Errorf("exp: %s: %w", app, err)
	}
	if run := e.cachedTrace(app, job); run != nil {
		return run, nil
	}
	a, err := apps.Build(app, e.opts.NumCPUs, e.opts.Scale)
	if err != nil {
		return nil, err
	}
	// Each generation reports through its own progress lane, so concurrent
	// applications get side-by-side ticker rows instead of clobbering a
	// shared label.
	lane := e.opts.Progress.Lane(app)
	defer lane.Done()
	cfg := tango.Config{
		NumCPUs:  e.opts.NumCPUs,
		TraceCPU: e.opts.TraceCPU % e.opts.NumCPUs,
		Mem:      mem.DefaultConfig(),
		Metrics:  e.opts.Metrics,
		Progress: lane,
		Ctx:      e.opts.Ctx,
	}
	cfg.MetricsPrefix = "tango." + app + "."
	if hub := e.opts.Timelines; hub != nil {
		// A live machine-activity timeline for the generation run. Only the
		// first generation of a cached trace records one; it feeds the live
		// view, never a run artifact, so the cache does not cost determinism.
		tl := obs.NewTimeline(genTimelineShift, timelineMaxPoints)
		hub.Register("gen "+app, tl)
		cfg.Timeline = tl
	}
	cfg.Mem.MissPenalty = e.opts.MissPenalty
	cfg.MemIssueInterval = e.opts.MemIssueInterval
	if e.cacheBytes != 0 {
		cfg.Mem.CacheBytes = e.cacheBytes
	}
	var m *vm.PagedMem
	start := time.Now()
	res, err := tango.Run(a.Progs, func(pm *vm.PagedMem) {
		m = pm
		a.Init(pm)
	}, cfg)
	if err != nil {
		return nil, fmt.Errorf("exp: %s: %w", app, err)
	}
	if reg := e.opts.Metrics; reg != nil {
		wall := time.Since(start).Seconds()
		pre := "exp." + app + "."
		reg.Gauge(pre + "wall_seconds").Set(wall)
		if wall > 0 {
			reg.Gauge(pre + "cycles_per_sec").Set(float64(res.Cycles) / wall)
		}
		reg.Counter(pre + "cycles").Set(res.Cycles)
	}
	if a.Check != nil {
		if err := a.Check(m); err != nil {
			return nil, fmt.Errorf("exp: %s failed its result check: %w", app, err)
		}
	}
	if err := res.Trace.Validate(); err != nil {
		return nil, fmt.Errorf("exp: %s: %w", app, err)
	}
	// Freeze trims the generation-time append slack off the event arena, so
	// the copy cached for the whole sweep is exactly one event's worth of
	// memory per event — the arena every cell's view aliases.
	run = &AppRun{App: app, Trace: res.Trace.Freeze(), Caches: res.CacheStats, CPUs: res.CPUStats}
	e.putTrace(app, run)
	return run, nil
}

// cachedTrace restores an application run from the result cache: the
// decoded trace, the multiprocessor statistics, and the metrics fragment
// the original generation published — so a warm run's registry hashes
// identically to a cold one's. Any decode failure falls back to
// regenerating. job is the generation's board entry, finished as "cached"
// on a hit.
func (e *Experiment) cachedTrace(app string, job int) *AppRun {
	payload, ok := e.opts.Cache.Get(traceKind, e.traceKey(app))
	if !ok {
		return nil
	}
	sc, traceBytes, err := decodeTraceEntry(payload)
	if err != nil {
		return nil
	}
	start := time.Now()
	// ReadTrace re-verifies the v3 per-chunk CRCs and whole-file footer on
	// top of the cache entry's own checksum; a failure here means the entry
	// predates a format change, so regenerate and overwrite.
	tr, err := trace.ReadTrace(bytes.NewReader(traceBytes))
	if err != nil {
		return nil
	}
	if reg := e.opts.Metrics; reg != nil {
		reg.LoadSnapshot(sc.Metrics)
		// The fragment's wall/throughput gauges describe the original
		// computation; overwrite with this run's real numbers (both are
		// excluded from the determinism checksum).
		wall := time.Since(start).Seconds()
		pre := "exp." + app + "."
		reg.Gauge(pre + "wall_seconds").Set(wall)
		if wall > 0 {
			reg.Gauge(pre + "cycles_per_sec").Set(float64(reg.Counter(pre+"cycles").Value()) / wall)
		}
	}
	e.opts.Board.FinishCached(job)
	return &AppRun{App: app, Trace: tr.Freeze(), Caches: sc.Caches, CPUs: sc.CPUs, addr: traceAddrBytes(traceBytes)}
}

// putTrace stores a freshly generated run in the result cache and memoizes
// its content address. Failures degrade to a future regeneration.
func (e *Experiment) putTrace(app string, run *AppRun) {
	s := e.opts.Cache
	if s == nil {
		return
	}
	var buf bytes.Buffer
	if _, err := run.Trace.WriteTo(&buf); err != nil {
		return
	}
	run.addr = traceAddrBytes(buf.Bytes())
	sc := traceSidecar{Caches: run.Caches, CPUs: run.CPUs}
	if reg := e.opts.Metrics; reg != nil {
		sc.Metrics = obs.FilterSnapshot(reg.Snapshot(), "tango."+app+".", "exp."+app+".")
	}
	payload, err := encodeTraceEntry(sc, buf.Bytes())
	if err != nil {
		return
	}
	s.Put(traceKind, e.traceKey(app), payload) //nolint:errcheck
}

// Apps returns the application list for this experiment.
func (e *Experiment) Apps() []string { return e.opts.Apps }

// Windows is the lookahead-window sweep of the paper.
var Windows = []int{16, 32, 64, 128, 256}

// Column is one bar of Figure 3 or Figure 4: a processor configuration and
// its execution-time breakdown, normalized against BASE.
type Column struct {
	Label        string
	Model        consistency.Model
	Arch         string // "BASE", "SSBR", "SS", "DS"
	Window       int    // DS only
	Breakdown    cpu.Breakdown
	Instructions uint64  // instructions replayed (MCPI denominator)
	Normalized   float64 // total execution time as % of BASE
	ReadHidden   float64 // fraction of BASE read-miss stall removed

	// Failed marks a cell whose replay (or whose application's trace
	// generation) failed terminally after retries. The breakdown is zero;
	// Err carries the *CellError. Tables render the row as FAILED, CSV and
	// metrics skip it, and the run ledger lists it under failed_cells.
	Failed bool
	Err    error
}

// RecordColumns publishes a figure's per-column execution-time breakdowns
// into reg under "fig.<figure>.<app>.<label>.". The counters are exactly the
// numbers the text reports print, so a -metrics-out snapshot can be checked
// against the printed figures. No-op with a nil registry.
func RecordColumns(reg *obs.Registry, figure, app string, cols []Column) {
	if reg == nil {
		return
	}
	for _, c := range cols {
		if c.Failed {
			continue
		}
		pre := fmt.Sprintf("fig.%s.%s.%s.", figure, app, c.Label)
		set := func(name string, v uint64) { reg.Counter(pre + name).Set(v) }
		set("cycles.total", c.Breakdown.Total())
		set("cycles.busy", c.Breakdown.Busy)
		set("stall.sync", c.Breakdown.Sync)
		set("stall.read", c.Breakdown.Read)
		set("stall.write", c.Breakdown.Write)
		set("stall.branch", c.Breakdown.Branch)
		set("stall.other", c.Breakdown.Other)
		set("instructions", c.Instructions)
		reg.Gauge(pre + "normalized_pct").Set(c.Normalized)
		if c.Instructions > 0 {
			// MCPI: memory stall cycles per instruction — the run ledger's
			// per-cell latency-hiding figure of merit.
			mcpi := float64(c.Breakdown.Read+c.Breakdown.Write) / float64(c.Instructions)
			reg.Gauge(pre + "mcpi").Set(mcpi)
		}
	}
}

func normalize(cols []Column) {
	// cols[0] is the BASE reference; if it failed there is nothing to
	// normalize against and the surviving columns keep their raw numbers.
	if len(cols) == 0 || cols[0].Failed {
		return
	}
	base := cols[0].Breakdown
	for i := range cols {
		c := &cols[i]
		if c.Failed {
			continue
		}
		if base.Total() > 0 {
			c.Normalized = 100 * float64(c.Breakdown.Total()) / float64(base.Total())
		}
		if base.Read > 0 {
			c.ReadHidden = 1 - float64(c.Breakdown.Read)/float64(base.Read)
		}
	}
}

// runArch executes one processor configuration over tr.
func runArch(tr *trace.Trace, arch string, cfg cpu.Config) (cpu.Result, error) {
	switch arch {
	case "BASE":
		// BASE takes no Config; the observability hooks are threaded
		// through its dedicated entry point.
		return cpu.RunBaseObs(tr, cfg.CritPath, cfg.Timeline), nil
	case "SSBR":
		return cpu.RunSSBR(tr, cfg)
	case "SS":
		return cpu.RunSS(tr, cfg)
	case "DS":
		return cpu.RunDS(tr, cfg)
	}
	return cpu.Result{}, fmt.Errorf("exp: unknown architecture %q", arch)
}

// figure3Cells is the §4.1 processor/model matrix, derived from the
// serializable Figure3Specs so the local and distributed sweeps replay the
// identical cell list.
func figure3Cells() []cell {
	return specCells(Figure3Specs())
}

// Figure3 runs the §4.1 processor/model matrix over one application trace,
// fanning the independent replays across GOMAXPROCS workers.
func Figure3(tr *trace.Trace) ([]Column, error) {
	return runCells(tr, figure3Cells(), 0, nil, "", new(Options))
}

// figure4Cells is the §4.1.3 isolation experiment under RC, derived from the
// serializable Figure4Specs.
func figure4Cells() []cell {
	return specCells(Figure4Specs())
}

// Figure4 runs the §4.1.3 isolation experiment over one application trace,
// fanning the independent replays across GOMAXPROCS workers.
func Figure4(tr *trace.Trace) ([]Column, error) {
	return runCells(tr, figure4Cells(), 0, nil, "", new(Options))
}

// windowSweepCells is the DS window sweep under a model with BASE as the
// reference column (used by the latency-100 and multiple-issue experiments
// and the ablations).
func windowSweepCells(model consistency.Model, mutate func(*cpu.Config)) []cell {
	cells := []cell{{label: "BASE", arch: "BASE"}}
	for _, w := range Windows {
		cells = append(cells, cell{
			label: fmt.Sprintf("%s-DS%d", model, w), arch: "DS", model: model,
			window: w, mutate: mutate,
		})
	}
	return cells
}

// WindowSweep runs the DS processor across the window sizes under a model,
// fanning the independent replays across GOMAXPROCS workers.
func WindowSweep(tr *trace.Trace, model consistency.Model, mutate func(*cpu.Config)) ([]Column, error) {
	return runCells(tr, windowSweepCells(model, mutate), 0, nil, "", new(Options))
}

// ReadHiddenSummary reproduces the concluding statistic of §7: the average
// fraction of read latency hidden across the applications for each window
// size under RC ("33% for window size of 16, 63% for window size of 32, and
// 81% for window size of 64" in the paper). The per-application sweeps run
// concurrently; the average is accumulated in application order afterwards,
// so the floating-point result is worker-count independent.
func (e *Experiment) ReadHiddenSummary() (map[int]float64, map[string]map[int]float64, error) {
	apps := e.Apps()
	rows := make([]map[int]float64, len(apps))
	err := e.perAppJobs(func(i int, run *AppRun) error {
		base := cpu.RunBase(run.Trace)
		row := make(map[int]float64, len(Windows))
		for _, w := range Windows {
			res, err := cpu.RunDS(run.Trace, cpu.Config{Model: consistency.RC, Window: w})
			if err != nil {
				return err
			}
			h := 0.0
			if base.Breakdown.Read > 0 {
				h = 1 - float64(res.Breakdown.Read)/float64(base.Breakdown.Read)
			}
			row[w] = h
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	perApp := make(map[string]map[int]float64, len(apps))
	avg := make(map[int]float64, len(Windows))
	for i, app := range apps {
		perApp[app] = rows[i]
		for _, w := range Windows {
			avg[w] += rows[i][w] / float64(len(apps))
		}
	}
	return avg, perApp, nil
}

// ReadMissDelays reproduces the §4.1.3 diagnostic: the distribution of
// decode-to-issue delays for read misses at window 64 with perfect branch
// prediction under RC.
func ReadMissDelays(tr *trace.Trace) (*cpu.DelayHistogram, error) {
	res, err := cpu.RunDS(tr, cpu.Config{
		Model:     consistency.RC,
		Window:    64,
		Predictor: bpred.Perfect{},
	})
	if err != nil {
		return nil, err
	}
	return res.ReadMissDelay, nil
}
