package exp

// Serializable cell specifications. A sweep cell is normally a closure over
// cpu.Config, which cannot cross a process boundary; CellSpec is the
// closed, wire-encodable subset that covers every distributable sweep (the
// figure matrices and window sweeps). The local figure constructors derive
// their cell lists from the same specs, so the in-process and distributed
// matrices cannot drift apart — a coordinator shipping Figure3Specs() to
// remote workers replays exactly the cells Figure3All runs locally, and the
// merged results are byte-identical. Ablations that need arbitrary closures
// (predictor construction, buffer depths) stay local-only.

import (
	"fmt"

	"dynsched/internal/bpred"
	"dynsched/internal/consistency"
	"dynsched/internal/cpu"
	"dynsched/internal/trace"
)

// CellSpec names one replay cell of a figure or sweep in closed form: the
// architecture, consistency model, window, and the handful of named knobs
// the paper's experiments use. The zero value of each knob means "leave the
// default", so a spec round-trips through JSON without loss.
type CellSpec struct {
	Label          string `json:"label"`
	Arch           string `json:"arch"`  // "BASE", "SSBR", "SS", "DS"
	Model          string `json:"model"` // "SC", "PC", "WO", "RC"
	Window         int    `json:"window,omitempty"`
	IssueWidth     int    `json:"issue_width,omitempty"`
	Prefetch       bool   `json:"prefetch,omitempty"`
	PerfectBP      bool   `json:"perfect_bp,omitempty"`
	IgnoreDataDeps bool   `json:"ignore_data_deps,omitempty"`
}

// Validate rejects specs that could not have come from a spec constructor —
// the coordinator and worker both call it before trusting a wire value.
func (s CellSpec) Validate() error {
	switch s.Arch {
	case "BASE", "SSBR", "SS", "DS":
	default:
		return fmt.Errorf("exp: spec %q: unknown architecture %q", s.Label, s.Arch)
	}
	if _, err := consistency.ParseModel(s.Model); err != nil {
		return fmt.Errorf("exp: spec %q: %w", s.Label, err)
	}
	if s.Window < 0 || s.Window > 1<<20 {
		return fmt.Errorf("exp: spec %q: window %d out of range", s.Label, s.Window)
	}
	if s.IssueWidth < 0 || s.IssueWidth > 64 {
		return fmt.Errorf("exp: spec %q: issue width %d out of range", s.Label, s.IssueWidth)
	}
	return nil
}

// cell converts the spec to the scheduler's internal cell form.
func (s CellSpec) cell() (cell, error) {
	if err := s.Validate(); err != nil {
		return cell{}, err
	}
	m, _ := consistency.ParseModel(s.Model)
	spec := s
	c := cell{label: s.Label, arch: s.Arch, model: m, window: s.Window, spec: &spec}
	if s.IssueWidth != 0 || s.Prefetch || s.PerfectBP || s.IgnoreDataDeps {
		s := s
		c.mutate = func(cfg *cpu.Config) {
			if s.IssueWidth != 0 {
				cfg.IssueWidth = s.IssueWidth
			}
			if s.Prefetch {
				cfg.Prefetch = true
			}
			if s.PerfectBP {
				cfg.Predictor = bpred.Perfect{}
			}
			cfg.IgnoreDataDeps = s.IgnoreDataDeps
		}
	}
	return c, nil
}

// specCells converts a constructor-produced spec list; the constructors only
// emit valid specs, so a failure here is a programming error.
func specCells(specs []CellSpec) []cell {
	cells := make([]cell, len(specs))
	for i, s := range specs {
		c, err := s.cell()
		if err != nil {
			panic(err)
		}
		cells[i] = c
	}
	return cells
}

// Figure3Specs is the §4.1 processor/model matrix in serializable form:
// BASE; SSBR, SS, and DS-256 under SC and PC; SSBR, SS, and the full window
// sweep under RC.
func Figure3Specs() []CellSpec {
	specs := []CellSpec{{Label: "BASE", Arch: "BASE", Model: "SC"}}
	for _, m := range []consistency.Model{consistency.SC, consistency.PC} {
		for _, arch := range []string{"SSBR", "SS"} {
			specs = append(specs, CellSpec{Label: fmt.Sprintf("%s-%s", m, arch), Arch: arch, Model: m.String()})
		}
		specs = append(specs, CellSpec{Label: fmt.Sprintf("%s-DS256", m), Arch: "DS", Model: m.String(), Window: 256})
	}
	for _, arch := range []string{"SSBR", "SS"} {
		specs = append(specs, CellSpec{Label: fmt.Sprintf("RC-%s", arch), Arch: arch, Model: "RC"})
	}
	for _, w := range Windows {
		specs = append(specs, CellSpec{Label: fmt.Sprintf("RC-DS%d", w), Arch: "DS", Model: "RC", Window: w})
	}
	return specs
}

// Figure4Specs is the §4.1.3 isolation experiment under RC: the window sweep
// with perfect branch prediction, then with perfect prediction and ignored
// data dependences. BASE is included as the reference column.
func Figure4Specs() []CellSpec {
	specs := []CellSpec{{Label: "BASE", Arch: "BASE", Model: "SC"}}
	for _, noDeps := range []bool{false, true} {
		for _, w := range Windows {
			label := fmt.Sprintf("PBP-%d", w)
			if noDeps {
				label = fmt.Sprintf("PBP+ND-%d", w)
			}
			specs = append(specs, CellSpec{
				Label: label, Arch: "DS", Model: "RC", Window: w,
				PerfectBP: true, IgnoreDataDeps: noDeps,
			})
		}
	}
	return specs
}

// WindowSweepSpecs is the plain DS window sweep under a model with BASE as
// the reference column (the latency-100 and weak-ordering experiments).
func WindowSweepSpecs(model consistency.Model) []CellSpec {
	specs := []CellSpec{{Label: "BASE", Arch: "BASE", Model: "SC"}}
	for _, w := range Windows {
		specs = append(specs, CellSpec{
			Label: fmt.Sprintf("%s-DS%d", model, w), Arch: "DS", Model: model.String(), Window: w,
		})
	}
	return specs
}

// Issue4Specs is the §4.2 multiple-issue experiment: the RC window sweep at
// a decode/issue width of four.
func Issue4Specs() []CellSpec {
	specs := WindowSweepSpecs(consistency.RC)
	for i := range specs {
		if specs[i].Arch == "DS" {
			specs[i].IssueWidth = 4
		}
	}
	return specs
}

// SCPrefetchSpecs is the non-binding-prefetch extension: the SC window sweep
// with the prefetcher enabled.
func SCPrefetchSpecs() []CellSpec {
	specs := WindowSweepSpecs(consistency.SC)
	for i := range specs {
		if specs[i].Arch == "DS" {
			specs[i].Prefetch = true
		}
	}
	return specs
}

// SweepSpecs maps a distributable experiment step name to its cell specs.
// The step names match the hidelat experiments; ok is false for steps whose
// cells need closures (ablations) or that are not cell sweeps at all.
func SweepSpecs(step string) (specs []CellSpec, ok bool) {
	switch step {
	case "fig3":
		return Figure3Specs(), true
	case "fig4":
		return Figure4Specs(), true
	case "latency100":
		return WindowSweepSpecs(consistency.RC), true
	case "issue4":
		return Issue4Specs(), true
	case "wo":
		return WindowSweepSpecs(consistency.WO), true
	case "scpf":
		return SCPrefetchSpecs(), true
	}
	return nil, false
}

// RunSpec replays one cell spec over tr — the distributed worker's replay
// entry point. Replay is a pure function of the trace and the spec (the
// harness options contribute only cancellation and the time-skip toggle,
// neither of which changes results), so the returned column is
// byte-identical to running the same cell in-process on the coordinator.
func RunSpec(tr *trace.Trace, spec CellSpec, o *Options) (Column, error) {
	c, err := spec.cell()
	if err != nil {
		return Column{}, err
	}
	if o == nil {
		o = new(Options)
	}
	return c.run(tr, o)
}

// SpecColumn reconstructs a successful cell's column from the spec identity
// plus the replayed numbers — what the coordinator does with a worker's
// result, keeping the identity fields under its own control rather than
// trusting the wire.
func SpecColumn(spec CellSpec, b cpu.Breakdown, instructions uint64) (Column, error) {
	if err := spec.Validate(); err != nil {
		return Column{}, err
	}
	m, _ := consistency.ParseModel(spec.Model)
	return Column{
		Label: spec.Label, Model: m, Arch: spec.Arch, Window: spec.Window,
		Breakdown: b, Instructions: instructions,
	}, nil
}

// FailedSpecColumn is the placeholder a terminally failed distributed cell
// leaves in its slot, mirroring the local scheduler's failed-cell marking.
func FailedSpecColumn(spec CellSpec, ce *CellError) Column {
	m, _ := consistency.ParseModel(spec.Model)
	return failedColumn(cell{label: spec.Label, arch: spec.Arch, model: m, window: spec.Window}, ce)
}

// NormalizeColumns fills the Normalized and ReadHidden fields of a finished
// column set against cols[0] (the BASE reference) — exported for the
// distributed coordinator, which merges worker results by index and then
// normalizes exactly as the local scheduler does.
func NormalizeColumns(cols []Column) { normalize(cols) }
