package exp

import (
	"encoding/json"
	"strings"
	"testing"

	"dynsched/internal/apps"
	"dynsched/internal/critpath"
	"dynsched/internal/obs"
)

// analyzeLabels is the fixed cell order every report must present.
var analyzeLabels = []string{
	"BASE", "RC-SSBR", "RC-SS",
	"RC-DS16", "RC-DS32", "RC-DS64", "RC-DS128", "RC-DS256",
}

// TestAnalyzeConservation runs the real pipeline on two applications and
// checks the tentpole invariant cell by cell: the attribution buckets sum
// exactly to Breakdown.Total(), busy matches Breakdown.Busy, and the
// last-arriving edges sum to the retired instruction count — for all four
// models.
func TestAnalyzeConservation(t *testing.T) {
	rep, err := smallExp(t, "mp3d", "lu").AnalyzeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Apps) != 2 {
		t.Fatalf("got %d apps, want 2", len(rep.Apps))
	}
	for _, app := range rep.Apps {
		if len(app.Cells) != len(analyzeLabels) {
			t.Fatalf("%s: got %d cells, want %d", app.App, len(app.Cells), len(analyzeLabels))
		}
		for i, c := range app.Cells {
			if c.Label != analyzeLabels[i] {
				t.Errorf("%s cell %d: label %q, want %q", app.App, i, c.Label, analyzeLabels[i])
			}
			if c.Failed {
				t.Fatalf("%s %s: unexpected failure: %s", app.App, c.Label, c.Error)
			}
			if got, want := c.Attr.Sum(), c.Breakdown.Total(); got != want {
				t.Errorf("%s %s: attribution sum %d != Breakdown.Total() %d", app.App, c.Label, got, want)
			}
			if c.Attr.Total != c.Breakdown.Total() {
				t.Errorf("%s %s: attr.Total %d != %d", app.App, c.Label, c.Attr.Total, c.Breakdown.Total())
			}
			if c.Attr.Cycles[critpath.Busy] != c.Breakdown.Busy {
				t.Errorf("%s %s: busy %d != Breakdown.Busy %d",
					app.App, c.Label, c.Attr.Cycles[critpath.Busy], c.Breakdown.Busy)
			}
			if got, want := c.Attr.EdgeSum(), c.Instructions; got != want {
				t.Errorf("%s %s: edge sum %d != instructions %d", app.App, c.Label, got, want)
			}
			if c.Attr.Total == 0 {
				t.Errorf("%s %s: empty attribution", app.App, c.Label)
			}
		}
	}
}

// TestAnalyzeDeterministic pins the report — text, JSON, and flame export —
// to be byte-identical between serial and parallel execution.
func TestAnalyzeDeterministic(t *testing.T) {
	render := func(workers int) (string, string, string) {
		t.Helper()
		opts := DefaultOptions()
		opts.Scale = apps.ScaleSmall
		opts.Apps = []string{"mp3d", "lu", "pthor"}
		opts.Workers = workers
		rep, err := New(opts).AnalyzeAll()
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		var flame strings.Builder
		if err := critpath.WriteFlame(&flame, rep.FlameCells()); err != nil {
			t.Fatal(err)
		}
		return rep.Format(), string(js), flame.String()
	}
	txt1, js1, fl1 := render(1)
	txt4, js4, fl4 := render(4)
	if txt1 != txt4 {
		t.Errorf("text report differs between -j 1 and -j 4:\n%s\n---\n%s", txt1, txt4)
	}
	if js1 != js4 {
		t.Error("JSON report differs between -j 1 and -j 4")
	}
	if fl1 != fl4 {
		t.Error("flame export differs between -j 1 and -j 4")
	}
	for _, want := range []string{"== mp3d ==", "RC-DS256", "dominant", "Last-arriving edges"} {
		if !strings.Contains(txt1, want) {
			t.Errorf("report missing %q:\n%s", want, txt1)
		}
	}
}

// TestAnalyzeDominantShift reproduces the paper's top-down conclusion on a
// uniprocessor lu trace: at small windows the dominant stall bucket is
// memory (read) latency; by the large windows dynamic scheduling has hidden
// it and branch-misprediction refill is what remains.
func TestAnalyzeDominantShift(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = apps.ScaleSmall
	opts.NumCPUs = 1
	opts.Apps = []string{"lu"}
	rep, err := New(opts).AnalyzeAll()
	if err != nil {
		t.Fatal(err)
	}
	doms := rep.DominantStallByWindow()
	if len(doms) != len(Windows) {
		t.Fatalf("got %d sweep points, want %d", len(doms), len(Windows))
	}
	if doms[0].Cause != critpath.ReadLat {
		t.Errorf("W%d dominant stall = %s, want %s", doms[0].Window, doms[0].Cause, critpath.ReadLat)
	}
	last := doms[len(doms)-1]
	if last.Cause != critpath.BranchRefill {
		t.Errorf("W%d dominant stall = %s, want %s", last.Window, last.Cause, critpath.BranchRefill)
	}
}

// TestRecordAnalyze checks the attribution lands in the registry as exact
// counters (so it participates in the FNV checksum and ledger gates) and
// that re-recording is idempotent.
func TestRecordAnalyze(t *testing.T) {
	rep, err := smallExp(t, "mp3d").AnalyzeAll()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	RecordAnalyze(reg, rep)
	fnv1 := obs.SnapshotFNV(reg.Snapshot())

	cell := rep.Apps[0].Cells[len(rep.Apps[0].Cells)-1] // RC-DS256
	if got := reg.Counter("critpath.mp3d.RC-DS256.cycles.total").Value(); got != cell.Attr.Total {
		t.Errorf("cycles.total counter = %d, want %d", got, cell.Attr.Total)
	}
	if got := reg.Counter("critpath.mp3d.RC-DS256.cycles.busy").Value(); got != cell.Attr.Cycles[critpath.Busy] {
		t.Errorf("cycles.busy counter = %d, want %d", got, cell.Attr.Cycles[critpath.Busy])
	}
	if got := reg.Counter("critpath.mp3d.BASE.edges.busy").Value(); got != rep.Apps[0].Cells[0].Attr.Edges[critpath.Busy] {
		t.Errorf("edges.busy counter = %d, want %d", got, rep.Apps[0].Cells[0].Attr.Edges[critpath.Busy])
	}

	// Counters use Set, so publishing the same report twice must not drift
	// the checksum — and a different attribution must change it.
	RecordAnalyze(reg, rep)
	if fnv2 := obs.SnapshotFNV(reg.Snapshot()); fnv2 != fnv1 {
		t.Errorf("re-recording drifted the snapshot FNV: %x -> %x", fnv1, fnv2)
	}
	reg2 := obs.NewRegistry()
	mut := *rep
	mut.Apps = append([]AnalyzeApp(nil), rep.Apps...)
	mut.Apps[0].Cells = append([]AnalyzeCell(nil), rep.Apps[0].Cells...)
	mut.Apps[0].Cells[0].Attr.Cycles[critpath.ReadLat]++
	mut.Apps[0].Cells[0].Attr.Total++
	RecordAnalyze(reg2, &mut)
	if obs.SnapshotFNV(reg2.Snapshot()) == fnv1 {
		t.Error("attribution drift did not change the snapshot FNV")
	}

	RecordAnalyze(nil, rep) // nil registry must be a no-op
}
