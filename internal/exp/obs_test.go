package exp

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dynsched/internal/apps"
	"dynsched/internal/consistency"
	"dynsched/internal/cpu"
	"dynsched/internal/obs"
)

// TestMetricsMatchBreakdown runs one application through BASE and DS with a
// metrics registry attached and asserts that the published counters are
// exactly the Breakdown totals the experiment reports print — the property
// that makes a -metrics-out snapshot checkable against the figures.
func TestMetricsMatchBreakdown(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Options{
		NumCPUs: 4, Scale: apps.ScaleSmall, TraceCPU: 1,
		Apps: []string{"mp3d"}, Metrics: reg,
	})
	run, err := e.Run("mp3d")
	if err != nil {
		t.Fatal(err)
	}

	base := cpu.RunBase(run.Trace)
	cpu.PublishResult(reg, "cpu.BASE.", base)
	ds, err := cpu.RunDS(run.Trace, cpu.Config{
		Model: consistency.RC, Window: 64,
		Metrics: reg, MetricsPrefix: "cpu.RC-DS64.",
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, c := range []struct {
		prefix string
		b      cpu.Breakdown
	}{
		{"cpu.BASE.", base.Breakdown},
		{"cpu.RC-DS64.", ds.Breakdown},
	} {
		checks := map[string]uint64{
			"cycles.total": c.b.Total(), "cycles.busy": c.b.Busy,
			"stall.sync": c.b.Sync, "stall.read": c.b.Read,
			"stall.write": c.b.Write, "stall.branch": c.b.Branch,
			"stall.other": c.b.Other,
		}
		for name, want := range checks {
			if got := reg.Counter(c.prefix + name).Value(); got != want {
				t.Errorf("%s%s = %d, want %d", c.prefix, name, got, want)
			}
		}
	}
	if ds.Breakdown.Read >= base.Breakdown.Read {
		t.Errorf("DS read stall %d not below BASE %d — replay looks wrong",
			ds.Breakdown.Read, base.Breakdown.Read)
	}

	// The trace-generation side must have published machine totals that are
	// consistent with the returned statistics.
	var instrs uint64
	for i, st := range run.CPUs {
		name := fmt.Sprintf("tango.mp3d.cpu%02d.instructions", i)
		if got := reg.Counter(name).Value(); got != st.Instructions {
			t.Errorf("%s = %d, want %d", name, got, st.Instructions)
		}
		instrs += st.Instructions
	}
	if got := reg.Counter("tango.mp3d.machine.instructions").Value(); got != instrs {
		t.Errorf("machine.instructions = %d, want %d", got, instrs)
	}
	if reg.Counter("tango.mp3d.machine.cycles").Value() == 0 {
		t.Error("machine.cycles not published")
	}
	if reg.Gauge("tango.mp3d.machine.cache.miss_rate").Value() <= 0 {
		t.Error("cache miss rate not published")
	}
	// Lock handoffs and barriers make every processor transfer sync lines.
	for i := range run.CPUs {
		name := fmt.Sprintf("tango.mp3d.cpu%02d.sync.transfer_cycles", i)
		if reg.Counter(name).Value() == 0 {
			t.Errorf("%s = 0, want > 0", name)
		}
	}
}

// TestRecordColumns checks the figure-column publication used by
// hidelat -metrics-out.
func TestRecordColumns(t *testing.T) {
	e := New(Options{NumCPUs: 4, Scale: apps.ScaleSmall, TraceCPU: 1, Apps: []string{"lu"}})
	run, err := e.Run("lu")
	if err != nil {
		t.Fatal(err)
	}
	cols, err := Figure3(run.Trace)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	RecordColumns(reg, "fig3", "lu", cols)
	for _, c := range cols {
		pre := "fig.fig3.lu." + c.Label + "."
		if got := reg.Counter(pre + "cycles.total").Value(); got != c.Breakdown.Total() {
			t.Errorf("%scycles.total = %d, want %d", pre, got, c.Breakdown.Total())
		}
		if got := reg.Gauge(pre + "normalized_pct").Value(); got != c.Normalized {
			t.Errorf("%snormalized_pct = %v, want %v", pre, got, c.Normalized)
		}
		if c.Instructions == 0 {
			t.Errorf("%s: column has no instruction count", c.Label)
			continue
		}
		if got := reg.Counter(pre + "instructions").Value(); got != c.Instructions {
			t.Errorf("%sinstructions = %d, want %d", pre, got, c.Instructions)
		}
		wantMCPI := float64(c.Breakdown.Read+c.Breakdown.Write) / float64(c.Instructions)
		if got := reg.Gauge(pre + "mcpi").Value(); got != wantMCPI {
			t.Errorf("%smcpi = %v, want %v", pre, got, wantMCPI)
		}
	}
	// A nil registry must be a no-op, not a panic.
	RecordColumns(nil, "fig3", "lu", cols)
}

// TestJobBoardTracksHarnessWork runs a small figure through the harness with
// a job board attached and checks that every unit of work — the trace
// generations and the per-app replay cells — appears on the board and ends
// in the done state (what the live /jobs endpoint serves).
func TestJobBoardTracksHarnessWork(t *testing.T) {
	board := obs.NewJobBoard()
	appNames := []string{"lu", "mp3d"}
	e := New(Options{
		NumCPUs: 4, Scale: apps.ScaleSmall, TraceCPU: 1,
		Apps: appNames, Workers: 4, Board: board,
	})
	acs, err := e.Figure3All()
	if err != nil {
		t.Fatal(err)
	}

	st := board.Status()
	if st.Queued != 0 || st.Running != 0 || st.Failed != 0 {
		t.Errorf("board not drained: %+v", st)
	}
	nCells := len(acs[0].Cols)
	// One generation job per app plus the full apps × cells matrix.
	if want := len(appNames) * (1 + nCells); st.Done != want {
		t.Errorf("done jobs = %d, want %d", st.Done, want)
	}
	labels := make(map[string]bool, len(st.Jobs))
	for _, j := range st.Jobs {
		if j.State != obs.JobDone {
			t.Errorf("job %q state = %s, want done", j.Label, j.State)
		}
		labels[j.Label] = true
	}
	for _, want := range []string{"gen lu", "gen mp3d", "lu BASE", "mp3d RC-DS64"} {
		if !labels[want] {
			t.Errorf("board has no job labelled %q; labels: %v", want, labels)
		}
	}
}

// TestProgressLanesPerApp checks that concurrent trace generations publish
// through per-app lanes, not a single clobbered label.
func TestProgressLanesPerApp(t *testing.T) {
	var buf syncBuffer
	pr := obs.NewProgress(&buf, time.Hour)
	pr.Start()
	e := New(Options{
		NumCPUs: 4, Scale: apps.ScaleSmall, TraceCPU: 1,
		Apps: []string{"lu", "mp3d"}, Workers: 2, Progress: pr,
	})
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	pr.Stop()
	out := buf.String()
	for _, want := range []string{"[lu] done", "[mp3d] done"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
	st := pr.Status()
	if st.Instrs == 0 || st.Cycles == 0 {
		t.Errorf("lanes did not fold into the aggregate: %+v", st)
	}
}

// syncBuffer is a strings.Builder safe for the ticker goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestPipeTracerCoversReplay checks that a DS replay records one pipeline
// event per retired instruction and that retire order matches program order.
func TestPipeTracerCoversReplay(t *testing.T) {
	e := New(Options{NumCPUs: 4, Scale: apps.ScaleSmall, TraceCPU: 1, Apps: []string{"mp3d"}})
	run, err := e.Run("mp3d")
	if err != nil {
		t.Fatal(err)
	}
	p := obs.NewPipeTracer(0)
	res, err := cpu.RunDS(run.Trace, cpu.Config{Model: consistency.RC, Window: 64, Pipe: p})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(p.Len()) != res.Instructions {
		t.Fatalf("recorded %d pipeline events for %d instructions", p.Len(), res.Instructions)
	}
	recs := p.Records()
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("records[%d].Seq = %d; retire order broken", i, r.Seq)
		}
		if r.RetiredAt < r.DecodedAt || r.DoneAt > r.RetiredAt {
			t.Fatalf("seq %d has inconsistent stage cycles: %+v", r.Seq, r)
		}
	}
}
