package exp

import (
	"fmt"
	"sort"
	"strings"

	"dynsched/internal/apps"
	"dynsched/internal/consistency"
	"dynsched/internal/cpu"
	"dynsched/internal/isa"
	"dynsched/internal/mem"
	"dynsched/internal/resched"
	"dynsched/internal/tango"
	"dynsched/internal/trace"
	"dynsched/internal/vm"
)

// AppColumns pairs an application with its figure columns.
type AppColumns struct {
	App  string
	Cols []Column
}

// Figure3All runs Figure 3 for every application: traces generate
// concurrently, then the full apps × configurations matrix fans out across
// Options.Workers.
func (e *Experiment) Figure3All() ([]AppColumns, error) {
	return e.perAppCells(figure3Cells())
}

// Figure4All runs Figure 4 for every application.
func (e *Experiment) Figure4All() ([]AppColumns, error) {
	return e.perAppCells(figure4Cells())
}

// Issue4All runs the §4.2 multiple-issue experiment: the RC window sweep
// with a decode/issue width of four.
func (e *Experiment) Issue4All() ([]AppColumns, error) {
	return e.perAppCells(specCells(Issue4Specs()))
}

// SCPrefetchAll evaluates the non-binding-prefetch technique of reference
// [8] (paper §6) under sequential consistency: the window sweep with an
// otherwise idle cache port prefetching the oldest consistency-blocked
// miss. The SC+PF columns can be compared against plain SC and RC from
// Figure 3.
func (e *Experiment) SCPrefetchAll() ([]AppColumns, error) {
	return e.perAppCells(specCells(SCPrefetchSpecs()))
}

// MissDistanceReport renders the §4.1.3 distance-between-read-misses
// distributions ("90% of the read misses are a distance of 20-30
// instructions apart" for LU).
func (e *Experiment) MissDistanceReport() (string, error) {
	apps := e.Apps()
	lines := make([]string, len(apps))
	err := e.perAppJobs(func(i int, run *AppRun) error {
		lines[i] = fmt.Sprintf("%-6s %s\n", strings.ToUpper(apps[i]), run.Trace.ReadMissDistances())
		return nil
	})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Distance between consecutive read misses, in instructions (§4.1.3)\n")
	for _, l := range lines {
		sb.WriteString(l)
	}
	return sb.String(), nil
}

// WindowSweepAll runs the plain RC window sweep for every application; with
// Options.MissPenalty set to 100 this is the §4.2 higher-latency experiment.
func (e *Experiment) WindowSweepAll() ([]AppColumns, error) {
	return e.perAppCells(specCells(WindowSweepSpecs(consistency.RC)))
}

// WOAll evaluates the weak ordering model (described in §2.1 but not
// plotted in the paper) across the window sweep — an extension experiment.
func (e *Experiment) WOAll() ([]AppColumns, error) {
	return e.perAppCells(specCells(WindowSweepSpecs(consistency.WO)))
}

// FormatAppColumns renders one figure for all applications.
func FormatAppColumns(title string, acs []AppColumns) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	for _, ac := range acs {
		sb.WriteString("\n")
		sb.WriteString(FormatColumns(strings.ToUpper(ac.App), ac.Cols))
	}
	return sb.String()
}

// FormatSummary renders the §7 read-latency-hidden summary.
func FormatSummary(avg map[int]float64, perApp map[string]map[int]float64) string {
	var sb strings.Builder
	sb.WriteString("Fraction of read latency hidden by dynamic scheduling under RC (§7)\n")
	sb.WriteString("(paper, 50-cycle latency: 33% at window 16, 63% at 32, 81% at 64)\n\n")
	apps := make([]string, 0, len(perApp))
	for a := range perApp {
		apps = append(apps, a)
	}
	sort.Strings(apps)
	sb.WriteString("window")
	for _, a := range apps {
		fmt.Fprintf(&sb, "\t%s", a)
	}
	sb.WriteString("\tAVG\n")
	for _, w := range Windows {
		fmt.Fprintf(&sb, "%d", w)
		for _, a := range apps {
			fmt.Fprintf(&sb, "\t%.0f%%", 100*perApp[a][w])
		}
		fmt.Fprintf(&sb, "\t%.0f%%\n", 100*avg[w])
	}
	return sb.String()
}

// DelayReport runs the read-miss delay diagnostic for every application.
func (e *Experiment) DelayReport() (string, error) {
	apps := e.Apps()
	lines := make([]string, len(apps))
	err := e.perAppJobs(func(i int, run *AppRun) error {
		h, err := ReadMissDelays(run.Trace)
		if err != nil {
			return err
		}
		lines[i] = fmt.Sprintf("%-6s misses=%-7d >40cy=%4.0f%%  >50cy=%4.0f%%  >10cy=%4.0f%%\n",
			strings.ToUpper(apps[i]), h.Total,
			100*h.FractionAbove(40), 100*h.FractionAbove(50), 100*h.FractionAbove(10))
		return nil
	})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Read-miss decode-to-issue delay, RC, window 64, perfect branch prediction (§4.1.3)\n")
	for _, l := range lines {
		sb.WriteString(l)
	}
	return sb.String(), nil
}

// AblationStoreBuffer sweeps the DS store-buffer depth under RC at window 64.
func (e *Experiment) AblationStoreBuffer(app string) ([]Column, error) {
	run, err := e.Run(app)
	if err != nil {
		return nil, err
	}
	cells := []cell{{label: "BASE", arch: "BASE"}}
	for _, depth := range []int{1, 2, 4, 8, 16, 32} {
		depth := depth
		cells = append(cells, cell{
			label: fmt.Sprintf("SB%d", depth), arch: "DS", model: consistency.RC, window: 64,
			mutate: func(c *cpu.Config) { c.StoreBufDepth = depth },
		})
	}
	return runCells(run.Trace, cells, e.opts.Workers, e.opts.Board, app+" ", &e.opts)
}

// AblationMSHR sweeps the number of outstanding misses allowed.
func (e *Experiment) AblationMSHR(app string) ([]Column, error) {
	run, err := e.Run(app)
	if err != nil {
		return nil, err
	}
	cells := []cell{{label: "BASE", arch: "BASE"}}
	for _, n := range []int{1, 2, 4, 8, 16, 0} {
		n := n
		label := fmt.Sprintf("MSHR%d", n)
		if n == 0 {
			label = "MSHRinf"
		}
		cells = append(cells, cell{
			label: label, arch: "DS", model: consistency.RC, window: 64,
			mutate: func(c *cpu.Config) { c.MSHRs = n },
		})
	}
	return runCells(run.Trace, cells, e.opts.Workers, e.opts.Board, app+" ", &e.opts)
}

// MachineRow is one machine size of the processor-count sweep.
type MachineRow struct {
	App          string
	NumCPUs      int
	ReadMissRate float64 // per 1000 instructions, traced processor
	SyncFraction float64 // acquire stall share of BASE execution time
	BusyCycles   uint64  // traced processor's instruction count
}

// MachineSweep regenerates traces on 2-32 processor machines and reports
// how communication misses and synchronization overhead scale — context for
// the paper's fixed choice of 16 processors. The machine sizes simulate
// concurrently, bounded by base.Workers.
func MachineSweep(app string, base Options) ([]MachineRow, error) {
	sizes := []int{2, 4, 8, 16, 32}
	out := make([]*MachineRow, len(sizes))
	err := runJobs(len(sizes), base.Workers, func(i int) error {
		n := sizes[i]
		opts := base
		opts.Apps = []string{app}
		opts.NumCPUs = n
		e := New(opts)
		run, err := e.Run(app)
		if err != nil {
			// Small problem scales cannot always feed 32 processors; skip
			// machine sizes the application cannot be built for.
			if _, buildErr := apps.Build(app, n, opts.Scale); buildErr != nil {
				return nil
			}
			return err
		}
		d := run.Trace.Data()
		b := cpu.RunBase(run.Trace)
		out[i] = &MachineRow{
			App:          app,
			NumCPUs:      n,
			ReadMissRate: d.Per1000(d.ReadMisses),
			SyncFraction: float64(b.Breakdown.Sync) / float64(b.Breakdown.Total()),
			BusyCycles:   d.BusyCycles,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []MachineRow
	for _, r := range out {
		if r != nil {
			rows = append(rows, *r)
		}
	}
	return rows, nil
}

// FormatMachines renders the processor-count sweep.
func FormatMachines(app string, rows []MachineRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Machine-size sweep, %s (communication and synchronization scaling)\n", strings.ToUpper(app))
	fmt.Fprintf(&sb, "%-8s %12s %14s %12s\n", "cpus", "busy cycles", "rd miss/1000", "sync frac")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8d %12d %14.1f %11.0f%%\n",
			r.NumCPUs, r.BusyCycles, r.ReadMissRate, 100*r.SyncFraction)
	}
	return sb.String()
}

// ContentionRow is one bandwidth setting of the memory-contention
// extension.
type ContentionRow struct {
	App           string
	IssueInterval uint32  // cycles between miss services (0 = unbounded)
	AvgMissLat    float64 // observed average read-miss latency
	BaseTotal     uint64
	DSTotal       uint64 // RC, window 64
}

// Contention re-generates traces under finite memory bandwidth and measures
// how much of the paper's headline result survives. The paper assumes
// unbounded bandwidth and calls its results "somewhat optimistic" (§5);
// this experiment quantifies that optimism. The bandwidth settings simulate
// concurrently, bounded by base.Workers.
func Contention(app string, base Options) ([]ContentionRow, error) {
	intervals := []uint32{0, 4, 10, 25}
	rows := make([]ContentionRow, len(intervals))
	err := runJobs(len(intervals), base.Workers, func(i int) error {
		interval := intervals[i]
		opts := base
		opts.Apps = []string{app}
		opts.MemIssueInterval = interval
		e := New(opts)
		run, err := e.Run(app)
		if err != nil {
			return err
		}
		var lat, misses uint64
		for j := range run.Trace.Events {
			ev := &run.Trace.Events[j]
			if ev.Instr.Op == isa.OpLd && ev.Miss {
				misses++
				lat += uint64(ev.Latency)
			}
		}
		avg := 0.0
		if misses > 0 {
			avg = float64(lat) / float64(misses)
		}
		baseRes := cpu.RunBase(run.Trace)
		dsRes, err := cpu.RunDS(run.Trace, cpu.Config{Model: consistency.RC, Window: 64})
		if err != nil {
			return err
		}
		rows[i] = ContentionRow{
			App: app, IssueInterval: interval, AvgMissLat: avg,
			BaseTotal: baseRes.Breakdown.Total(), DSTotal: dsRes.Breakdown.Total(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatContention renders the bandwidth ablation.
func FormatContention(app string, rows []ContentionRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Finite memory bandwidth, %s (miss service interval in cycles; paper-limitation extension)\n", strings.ToUpper(app))
	fmt.Fprintf(&sb, "%-10s %14s %12s %12s %10s\n", "interval", "avg miss lat", "BASE", "RC-DS64", "DS/BASE")
	for _, r := range rows {
		label := fmt.Sprintf("%d", r.IssueInterval)
		if r.IssueInterval == 0 {
			label = "inf bw"
		}
		fmt.Fprintf(&sb, "%-10s %14.1f %12d %12d %9.1f%%\n",
			label, r.AvgMissLat, r.BaseTotal, r.DSTotal,
			100*float64(r.DSTotal)/float64(r.BaseTotal))
	}
	return sb.String()
}

// MCRow is one configuration of the multiple-hardware-contexts comparison.
type MCRow struct {
	App           string
	Contexts      int
	SwitchPenalty int
	Result        cpu.MCResult
	// DSUtil is the utilization of the RC DS-64 processor on context 0's
	// trace, for comparison (busy / total).
	DSUtil float64
}

// MultipleContexts evaluates the §5 competitive technique: a switch-on-miss
// multithreaded processor running 1, 2, 4, and 8 contexts (the traces of
// processors 0..K-1 from the same multiprocessor run), at the given switch
// penalty. Utilization rises with contexts until synchronization and switch
// overhead dominate — the classic multiple-contexts trade-off — and the row
// set allows a direct comparison against dynamic scheduling's utilization
// on a single context.
func (e *Experiment) MultipleContexts(app string, switchPenalty int) ([]MCRow, error) {
	a, err := apps.Build(app, e.opts.NumCPUs, e.opts.Scale)
	if err != nil {
		return nil, err
	}
	cfg := tango.Config{
		NumCPUs:   e.opts.NumCPUs,
		TraceCPU:  e.opts.TraceCPU % e.opts.NumCPUs,
		Mem:       mem.DefaultConfig(),
		RecordAll: true,
		Ctx:       e.opts.Ctx,
	}
	cfg.Mem.MissPenalty = e.opts.MissPenalty
	res, err := tango.Run(a.Progs, func(pm *vm.PagedMem) { a.Init(pm) }, cfg)
	if err != nil {
		return nil, err
	}

	ds, err := cpu.RunDS(res.Traces[0], cpu.Config{Model: consistency.RC, Window: 64})
	if err != nil {
		return nil, err
	}
	dsUtil := float64(ds.Breakdown.Busy) / float64(ds.Breakdown.Total())

	var rows []MCRow
	for _, k := range []int{1, 2, 4, 8} {
		if k > len(res.Traces) {
			break
		}
		mc, err := cpu.RunMC(res.Traces[:k], switchPenalty)
		if err != nil {
			return nil, err
		}
		rows = append(rows, MCRow{
			App: app, Contexts: k, SwitchPenalty: switchPenalty, Result: mc, DSUtil: dsUtil,
		})
	}
	return rows, nil
}

// FormatMC renders the multiple-contexts comparison.
func FormatMC(rows []MCRow) string {
	var sb strings.Builder
	if len(rows) == 0 {
		return ""
	}
	fmt.Fprintf(&sb, "Multiple hardware contexts vs dynamic scheduling, %s (switch penalty %d; paper §5)\n",
		strings.ToUpper(rows[0].App), rows[0].SwitchPenalty)
	fmt.Fprintf(&sb, "%-10s %12s %12s %12s %14s\n", "contexts", "cycles", "switches", "utilization", "RC-DS64 util")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10d %12d %12d %11.0f%% %13.0f%%\n",
			r.Contexts, r.Result.Breakdown.Total(), r.Result.Switches,
			100*r.Result.Utilization, 100*r.DSUtil)
	}
	return sb.String()
}

// ReschedRow compares the SS processor on the original and compiler-
// rescheduled traces against the small-window DS processor — the paper's
// §7 future-work question: "such compiler rescheduling may allow dynamic
// processors with small windows or statically scheduled processors with
// non-blocking reads to effectively hide read latency with simpler
// hardware".
type ReschedRow struct {
	App           string
	Stats         resched.Stats // conservative scheduler statistics
	AggStats      resched.Stats // aggressive (global, oracle-alias) statistics
	BaseTotal     uint64
	SSOriginal    uint64
	SSRescheduled uint64 // conservative basic-block scheduling
	SSAggressive  uint64 // global scheduling with oracle alias analysis
	DS16          uint64
}

// ReschedAll evaluates compiler rescheduling for every application under RC.
// The per-application pipelines (reschedule, then four replays) run
// concurrently, bounded by Options.Workers.
func (e *Experiment) ReschedAll() ([]ReschedRow, error) {
	apps := e.Apps()
	rows := make([]ReschedRow, len(apps))
	err := e.perAppJobs(func(i int, run *AppRun) error {
		moved, st := resched.Reschedule(run.Trace, 0)
		aggMoved, aggSt := resched.RescheduleLevel(run.Trace, 64, resched.Aggressive)
		base := cpu.RunBase(run.Trace)
		ssO, err := cpu.RunSS(run.Trace, cpu.Config{Model: consistency.RC})
		if err != nil {
			return err
		}
		ssR, err := cpu.RunSS(moved, cpu.Config{Model: consistency.RC})
		if err != nil {
			return err
		}
		ssA, err := cpu.RunSS(aggMoved, cpu.Config{Model: consistency.RC})
		if err != nil {
			return err
		}
		ds16, err := cpu.RunDS(run.Trace, cpu.Config{Model: consistency.RC, Window: 16})
		if err != nil {
			return err
		}
		rows[i] = ReschedRow{
			App: apps[i], Stats: st, AggStats: aggSt,
			BaseTotal:     base.Breakdown.Total(),
			SSOriginal:    ssO.Breakdown.Total(),
			SSRescheduled: ssR.Breakdown.Total(),
			SSAggressive:  ssA.Breakdown.Total(),
			DS16:          ds16.Breakdown.Total(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatResched renders the compiler-rescheduling comparison.
func FormatResched(rows []ReschedRow) string {
	var sb strings.Builder
	sb.WriteString("Compiler rescheduling of loads for the SS processor (RC; paper §5/§7 future work)\n")
	sb.WriteString("Totals normalized to BASE = 100.\n")
	fmt.Fprintf(&sb, "%-8s %10s %10s %10s %10s %12s %14s\n",
		"app", "SS", "SS+bb", "SS+global", "DS-16", "bb hoists", "global hoists")
	for _, r := range rows {
		pct := func(v uint64) float64 { return 100 * float64(v) / float64(r.BaseTotal) }
		fmt.Fprintf(&sb, "%-8s %9.1f%% %9.1f%% %9.1f%% %9.1f%% %12d %8d (%.0f)\n",
			r.App, pct(r.SSOriginal), pct(r.SSRescheduled), pct(r.SSAggressive), pct(r.DS16),
			r.Stats.Hoisted, r.AggStats.Hoisted, r.AggStats.AvgHoist)
	}
	return sb.String()
}

// CacheGeomRow is one row of the cache-geometry ablation.
type CacheGeomRow struct {
	CacheKB       int
	ReadMissRate  float64 // read misses per 1000 instructions
	WriteMissRate float64
	BaseTotal     uint64
	DSTotal       uint64 // RC, window 64
}

// AblationCacheSize regenerates the application's trace at several cache
// sizes and reports how the miss rates — and therefore the latency to hide —
// change. The paper fixes 64 KB ("large relative to the problem sizes ...
// the cache misses reported mainly reflect inherent communication misses");
// shrinking the cache adds capacity misses on top.
func AblationCacheSize(app string, base Options) ([]CacheGeomRow, error) {
	sizes := []int{8, 16, 32, 64, 128}
	rows := make([]CacheGeomRow, len(sizes))
	err := runJobs(len(sizes), base.Workers, func(i int) error {
		kb := sizes[i]
		opts := base
		opts.Apps = []string{app}
		e := New(opts)
		e.cacheBytes = uint64(kb) << 10
		run, err := e.Run(app)
		if err != nil {
			return err
		}
		d := run.Trace.Data()
		baseRes := cpu.RunBase(run.Trace)
		dsRes, err := cpu.RunDS(run.Trace, cpu.Config{Model: consistency.RC, Window: 64})
		if err != nil {
			return err
		}
		rows[i] = CacheGeomRow{
			CacheKB:       kb,
			ReadMissRate:  d.Per1000(d.ReadMisses),
			WriteMissRate: d.Per1000(d.WriteMisses),
			BaseTotal:     baseRes.Breakdown.Total(),
			DSTotal:       dsRes.Breakdown.Total(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatCacheGeom renders the cache-size ablation.
func FormatCacheGeom(app string, rows []CacheGeomRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cache-size ablation, %s (direct-mapped, 16 B lines, 50-cycle miss)\n", strings.ToUpper(app))
	fmt.Fprintf(&sb, "%-8s %14s %14s %12s %12s %8s\n", "cache", "rd miss/1000", "wr miss/1000", "BASE", "RC-DS64", "DS/BASE")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %14.1f %14.1f %12d %12d %7.1f%%\n",
			fmt.Sprintf("%dKB", r.CacheKB), r.ReadMissRate, r.WriteMissRate,
			r.BaseTotal, r.DSTotal, 100*float64(r.DSTotal)/float64(r.BaseTotal))
	}
	return sb.String()
}

// AblationBTB sweeps the BTB size at window 128 under RC, isolating how much
// prediction capacity the large windows need.
func (e *Experiment) AblationBTB(app string, mkBTB func(entries int) trace.Predictor) ([]Column, error) {
	run, err := e.Run(app)
	if err != nil {
		return nil, err
	}
	cells := []cell{{label: "BASE", arch: "BASE"}}
	for _, entries := range []int{64, 256, 1024, 2048, 8192} {
		entries := entries
		cells = append(cells, cell{
			label: fmt.Sprintf("BTB%d", entries), arch: "DS", model: consistency.RC, window: 128,
			// mkBTB runs inside the job so each concurrent replay gets its
			// own predictor state.
			mutate: func(c *cpu.Config) { c.Predictor = mkBTB(entries) },
		})
	}
	return runCells(run.Trace, cells, e.opts.Workers, e.opts.Board, app+" ", &e.opts)
}
