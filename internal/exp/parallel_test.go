package exp

// Tests for the parallel experiment scheduler: worker-count independence
// (the rendered artifacts must be byte-identical at any worker count),
// single-flight trace generation, runJobs semantics, and pooled-scratch
// safety under concurrent replays (meaningful under -race).

import (
	"errors"
	"sync"
	"testing"

	"dynsched/internal/apps"
	"dynsched/internal/consistency"
	"dynsched/internal/cpu"
)

// newSmallExperiment returns a harness at unit-test scale with the given
// worker bound, restricted to two applications to keep the test fast.
func newSmallExperiment(workers int) *Experiment {
	opts := DefaultOptions()
	opts.Scale = apps.ScaleSmall
	opts.Apps = []string{"mp3d", "ocean"}
	opts.Workers = workers
	return New(opts)
}

// TestWorkerCountDeterminism pins the scheduler's core guarantee: the
// rendered figures are byte-identical whether the replays run serially or
// fanned out across eight workers.
func TestWorkerCountDeterminism(t *testing.T) {
	render := func(workers int) (string, string) {
		e := newSmallExperiment(workers)
		f3, err := e.Figure3All()
		if err != nil {
			t.Fatal(err)
		}
		ws, err := e.WindowSweepAll()
		if err != nil {
			t.Fatal(err)
		}
		return FormatAppColumns("fig3", f3), FormatAppColumns("sweep", ws)
	}
	serial3, serialWS := render(1)
	par3, parWS := render(8)
	if serial3 != par3 {
		t.Errorf("Figure3All differs between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial3, par3)
	}
	if serialWS != parWS {
		t.Errorf("WindowSweepAll differs between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s", serialWS, parWS)
	}
}

// TestRunAllSingleFlight verifies concurrent Run calls for the same app
// generate the trace exactly once and hand every caller the same run.
func TestRunAllSingleFlight(t *testing.T) {
	e := newSmallExperiment(0)
	const callers = 8
	runs := make([]*AppRun, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			r, err := e.Run("mp3d")
			if err != nil {
				t.Error(err)
				return
			}
			runs[i] = r
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if runs[i] != runs[0] {
			t.Fatalf("caller %d got a different *AppRun than caller 0", i)
		}
	}
}

func TestRunJobs(t *testing.T) {
	t.Run("covers-all-indices", func(t *testing.T) {
		for _, workers := range []int{0, 1, 3, 16} {
			const n = 37
			hits := make([]int32, n)
			var mu sync.Mutex
			err := runJobs(n, workers, func(i int) error {
				mu.Lock()
				hits[i]++
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
				}
			}
		}
	})
	t.Run("error-propagates", func(t *testing.T) {
		boom := errors.New("boom")
		for _, workers := range []int{1, 4} {
			err := runJobs(20, workers, func(i int) error {
				if i == 7 {
					return boom
				}
				return nil
			})
			if !errors.Is(err, boom) {
				t.Fatalf("workers=%d: err = %v, want boom", workers, err)
			}
		}
	})
	t.Run("zero-jobs", func(t *testing.T) {
		if err := runJobs(0, 4, func(int) error { t.Fatal("ran"); return nil }); err != nil {
			t.Fatal(err)
		}
	})
}

// TestConcurrentReplaysShareNothing replays the same trace through the
// pooled-scratch processor models from many goroutines at once and checks
// every replay returns identical numbers — the -race guard for the
// sync.Pool scratch reuse in internal/cpu.
func TestConcurrentReplaysShareNothing(t *testing.T) {
	e := newSmallExperiment(0)
	run, err := e.Run("ocean")
	if err != nil {
		t.Fatal(err)
	}
	wantDS, err := cpu.RunDS(run.Trace, cpu.Config{Model: consistency.RC, Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	wantSS, err := cpu.RunSS(run.Trace, cpu.Config{Model: consistency.RC})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const rounds = 4
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				ds, err := cpu.RunDS(run.Trace, cpu.Config{Model: consistency.RC, Window: 64})
				if err != nil {
					t.Error(err)
					return
				}
				if ds.Breakdown != wantDS.Breakdown {
					t.Errorf("concurrent RunDS breakdown = %+v, want %+v", ds.Breakdown, wantDS.Breakdown)
					return
				}
				ss, err := cpu.RunSS(run.Trace, cpu.Config{Model: consistency.RC})
				if err != nil {
					t.Error(err)
					return
				}
				if ss.Breakdown != wantSS.Breakdown {
					t.Errorf("concurrent RunSS breakdown = %+v, want %+v", ss.Breakdown, wantSS.Breakdown)
					return
				}
			}
		}()
	}
	wg.Wait()
}
