package exp

// Warm-vs-cold equivalence for the persistent result cache: a sweep served
// from the store must be indistinguishable — in columns, metrics, and
// ordering — from the cold sweep that populated it, at any worker count,
// and any store damage must degrade to recomputation, never to different
// numbers.

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dynsched/internal/apps"
	"dynsched/internal/cache"
	"dynsched/internal/cpu"
	"dynsched/internal/obs"
)

// cachedSweep runs Figure3All on a fresh Experiment backed by the store,
// returning the columns and the registry snapshot FNV.
func cachedSweep(t *testing.T, store *cache.Store, workers int, verify float64) ([]AppColumns, string) {
	t.Helper()
	reg := obs.NewRegistry()
	opts := DefaultOptions()
	opts.Scale = apps.ScaleSmall
	opts.Apps = []string{"lu", "mp3d"}
	opts.Workers = workers
	opts.Cache = store
	opts.CacheVerify = verify
	opts.Metrics = reg
	e := New(opts)
	cols, err := e.Figure3All()
	if err != nil {
		t.Fatal(err)
	}
	return cols, obs.SnapshotFNV(reg.Snapshot())
}

func TestCacheWarmMatchesColdAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	store, err := cache.Open(dir, cache.Options{Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	cold, coldFNV := cachedSweep(t, store, 1, 0)
	if store.Misses() == 0 {
		t.Fatal("cold sweep recorded no misses")
	}
	for _, workers := range []int{1, 4} {
		warmStore, err := cache.Open(dir, cache.Options{Version: "test"})
		if err != nil {
			t.Fatal(err)
		}
		warm, warmFNV := cachedSweep(t, warmStore, workers, 0)
		if !reflect.DeepEqual(cold, warm) {
			t.Fatalf("warm columns at %d workers differ from cold", workers)
		}
		if warmFNV != coldFNV {
			t.Fatalf("warm metrics FNV %s != cold %s at %d workers", warmFNV, coldFNV, workers)
		}
		if warmStore.Hits() == 0 {
			t.Fatalf("warm sweep at %d workers recorded no hits", workers)
		}
		if warmStore.Misses() != 0 {
			t.Fatalf("warm sweep at %d workers recorded %d misses", workers, warmStore.Misses())
		}
	}
}

func TestCacheCorruptionRecomputes(t *testing.T) {
	dir := t.TempDir()
	store, err := cache.Open(dir, cache.Options{Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	cold, coldFNV := cachedSweep(t, store, 1, 0)

	// Bit-flip every object in the store: every lookup must degrade to a
	// CRC-rejected miss and a recompute with identical results.
	var flipped int
	err = filepath.Walk(filepath.Join(dir, "objects"), func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		data[len(data)/2] ^= 0x40
		flipped++
		return os.WriteFile(path, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if flipped == 0 {
		t.Fatal("no objects to corrupt")
	}

	hurt, hurtErr := cache.Open(dir, cache.Options{Version: "test"})
	if hurtErr != nil {
		t.Fatal(hurtErr)
	}
	warm, warmFNV := cachedSweep(t, hurt, 2, 0)
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("corrupted store changed sweep results")
	}
	if warmFNV != coldFNV {
		t.Fatalf("corrupted store changed metrics FNV: %s != %s", warmFNV, coldFNV)
	}
	if hurt.Hits() != 0 {
		t.Fatalf("corrupted entries produced %d hits", hurt.Hits())
	}
	// The recompute repopulated the store: a third sweep is all hits again.
	again, err := cache.Open(dir, cache.Options{Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if _, fnv := cachedSweep(t, again, 1, 0); fnv != coldFNV {
		t.Fatal("repopulated store diverged")
	}
	if again.Misses() != 0 {
		t.Fatalf("repopulated store still missing %d lookups", again.Misses())
	}
}

func TestCacheVerifyPassesOnHonestStore(t *testing.T) {
	dir := t.TempDir()
	store, err := cache.Open(dir, cache.Options{Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	cold, coldFNV := cachedSweep(t, store, 1, 0)
	warmStore, err := cache.Open(dir, cache.Options{Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	warm, warmFNV := cachedSweep(t, warmStore, 2, 1.0)
	if !reflect.DeepEqual(cold, warm) || warmFNV != coldFNV {
		t.Fatal("verified warm sweep diverged from cold")
	}
	if st := warmStore.Stats(); st.Verified == 0 || st.Divergent != 0 {
		t.Fatalf("verify counters = %+v, want verified > 0 and no divergence", st)
	}
}

func TestCacheVerifyDetectsPoisonedCell(t *testing.T) {
	dir := t.TempDir()
	store, err := cache.Open(dir, cache.Options{Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	// Populate, then overwrite one cell entry with wrong numbers under a
	// perfectly valid envelope — the CRC cannot catch this; only the
	// recompute can.
	cachedSweep(t, store, 1, 0)
	reg := obs.NewRegistry()
	opts := DefaultOptions()
	opts.Scale = apps.ScaleSmall
	opts.Apps = []string{"lu", "mp3d"}
	opts.Cache = store
	opts.Metrics = reg
	e := New(opts)
	run, err := e.Run("lu")
	if err != nil {
		t.Fatal(err)
	}
	spec := Figure3Specs()[1]
	CellCachePut(store, run.ContentAddr(), spec, cpu.Breakdown{Busy: 12345}, 999)

	poisoned, err := cache.Open(dir, cache.Options{Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	reg2 := obs.NewRegistry()
	opts2 := DefaultOptions()
	opts2.Scale = apps.ScaleSmall
	opts2.Apps = []string{"lu", "mp3d"}
	opts2.Cache = poisoned
	opts2.CacheVerify = 1.0
	opts2.Metrics = reg2
	if _, err := New(opts2).Figure3All(); err == nil {
		t.Fatal("poisoned cell survived -cache-verify 1")
	} else if !strings.Contains(err.Error(), "diverge") {
		t.Fatalf("error %v does not name the divergence", err)
	}
	if st := poisoned.Stats(); st.Divergent == 0 {
		t.Fatalf("divergence not counted: %+v", st)
	}
}
