package exp

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"dynsched/internal/bpred"
	"dynsched/internal/trace"
)

// Table1Row is one application's row of Table 1 (data reference statistics).
type Table1Row struct {
	App  string
	Data trace.DataStats
}

// Table1 computes the data-reference statistics for every application,
// scanning the traces concurrently (bounded by Options.Workers).
func (e *Experiment) Table1() ([]Table1Row, error) {
	apps := e.Apps()
	rows := make([]Table1Row, len(apps))
	err := e.perAppJobs(func(i int, run *AppRun) error {
		rows[i] = Table1Row{App: apps[i], Data: run.Trace.Data()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatTable1 renders Table 1 in the paper's layout (counts in thousands,
// rates per thousand instructions in parentheses).
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table 1: statistics on data references (single traced processor)\n")
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Program\tBusy Cycles\treads (x1000)\twrites (x1000)\tread misses (x1000)\twrite misses (x1000)")
	for _, r := range rows {
		d := r.Data
		fmt.Fprintf(w, "%s\t%d\t%.1f (%.1f)\t%.1f (%.1f)\t%.2f (%.1f)\t%.2f (%.1f)\n",
			strings.ToUpper(r.App), d.BusyCycles,
			float64(d.Reads)/1000, d.Per1000(d.Reads),
			float64(d.Writes)/1000, d.Per1000(d.Writes),
			float64(d.ReadMisses)/1000, d.Per1000(d.ReadMisses),
			float64(d.WriteMisses)/1000, d.Per1000(d.WriteMisses))
	}
	w.Flush()
	return sb.String()
}

// Table2Row is one application's row of Table 2 (synchronization statistics).
type Table2Row struct {
	App  string
	Sync trace.SyncStats
	Busy uint64
}

// Table2 computes the synchronization statistics for every application,
// scanning the traces concurrently (bounded by Options.Workers).
func (e *Experiment) Table2() ([]Table2Row, error) {
	apps := e.Apps()
	rows := make([]Table2Row, len(apps))
	err := e.perAppJobs(func(i int, run *AppRun) error {
		rows[i] = Table2Row{App: apps[i], Sync: run.Trace.Sync(), Busy: run.Trace.Data().BusyCycles}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatTable2 renders Table 2 (counts with per-1000-instruction rates).
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: statistics on synchronization (single traced processor)\n")
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Program\tlocks\tunlocks\twait event\tset event\tbarriers")
	rate := func(n, busy uint64) string {
		if busy == 0 {
			return fmt.Sprintf("%d", n)
		}
		return fmt.Sprintf("%d (%.2f)", n, float64(n)*1000/float64(busy))
	}
	for _, r := range rows {
		s := r.Sync
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n", strings.ToUpper(r.App),
			rate(s.Locks, r.Busy), rate(s.Unlocks, r.Busy), rate(s.WaitEvents, r.Busy),
			rate(s.SetEvents, r.Busy), rate(s.Barriers, r.Busy))
	}
	w.Flush()
	return sb.String()
}

// Table3Row is one application's row of Table 3 (branch behaviour).
type Table3Row struct {
	App      string
	Branches trace.BranchStats
}

// Table3 computes branch statistics using the paper's BTB (2048-entry,
// 4-way, 2-bit counters). Each application replays through its own BTB
// instance, so the per-app jobs run concurrently.
func (e *Experiment) Table3() ([]Table3Row, error) {
	apps := e.Apps()
	rows := make([]Table3Row, len(apps))
	err := e.perAppJobs(func(i int, run *AppRun) error {
		rows[i] = Table3Row{App: apps[i], Branches: run.Trace.Branches(bpred.NewPaperBTB())}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatTable3 renders Table 3 in the paper's layout.
func FormatTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("Table 3: statistics on branch behavior\n")
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Program\tPct of Instructions\tAvg Distance bet. Branches\tPct Correctly Predicted\tAvg Distance bet. Mispredictions")
	for _, r := range rows {
		b := r.Branches
		fmt.Fprintf(w, "%s\t%.1f%%\t%.1f\t%.1f%%\t%.1f\n",
			strings.ToUpper(r.App), b.PctInstructions, b.AvgDistance, b.PctCorrect, b.AvgMispredictDistance)
	}
	w.Flush()
	return sb.String()
}

// FormatColumns renders a figure's columns as a normalized breakdown table,
// the textual equivalent of the paper's stacked bar charts: each column
// shows its sections as a percentage of BASE execution time. A cell that
// failed terminally (see Column.Failed) renders as a FAILED row carrying
// the first line of its error, so partial results remain readable.
func FormatColumns(title string, cols []Column) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Config\t|Total\tBusy\tSync\tRead\tWrite\tBranch\tOther\t|Norm(%)\tReadHidden(%)")
	base := float64(cols[0].Breakdown.Total())
	pct := func(v uint64) string {
		if base == 0 {
			return "0"
		}
		return fmt.Sprintf("%.1f", 100*float64(v)/base)
	}
	for _, c := range cols {
		if c.Failed {
			fmt.Fprintf(w, "%s\t|FAILED\t%s\n", c.Label, shortErr(c.Err))
			continue
		}
		b := c.Breakdown
		fmt.Fprintf(w, "%s\t|%d\t%s\t%s\t%s\t%s\t%s\t%s\t|%.1f\t%.0f\n",
			c.Label, b.Total(), pct(b.Busy), pct(b.Sync), pct(b.Read), pct(b.Write),
			pct(b.Branch), pct(b.Other), c.Normalized, 100*c.ReadHidden)
	}
	w.Flush()
	return sb.String()
}

// shortErr compresses an error to a single table-cell-sized line.
func shortErr(err error) string {
	if err == nil {
		return "?"
	}
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 90 {
		s = s[:87] + "..."
	}
	return s
}

// ColumnsCSV renders figure columns as CSV (one row per configuration) for
// external plotting: app, label, model, arch, window, the six breakdown
// sections, total, and the normalized percentage. Failed cells are omitted
// — a partial sweep's CSV holds only real measurements; the failures are
// reported by the accompanying *PartialError and the run ledger.
func ColumnsCSV(acs []AppColumns) string {
	var sb strings.Builder
	sb.WriteString("app,config,model,arch,window,busy,sync,read,write,branch,other,total,normalized_pct\n")
	for _, ac := range acs {
		for _, c := range ac.Cols {
			if c.Failed {
				continue
			}
			b := c.Breakdown
			fmt.Fprintf(&sb, "%s,%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%.2f\n",
				ac.App, c.Label, c.Model, c.Arch, c.Window,
				b.Busy, b.Sync, b.Read, b.Write, b.Branch, b.Other,
				b.Total(), c.Normalized)
		}
	}
	return sb.String()
}
