package exp

// Result-cache integration: the mapping from harness artifacts to
// content-addressed cache entries. Two artifact classes are memoized:
//
//   - Generated traces, keyed by the full generation configuration (app,
//     machine geometry, scale, miss penalty, traced CPU, bandwidth model,
//     cache-geometry override) plus the trace format version. The payload
//     couples the serialized v3 trace with a JSON sidecar holding the
//     multiprocessor statistics and the metrics fragment the generation
//     published, so a warm run restores everything a cold run produces —
//     including the registry contents the determinism checksum hashes.
//   - Replay-cell results, keyed by (trace content address, cell spec).
//     A replay is a pure function of those two (see RunSpec), and for
//     spec-derived cells the published Column is fully reconstructed by
//     SpecColumn from the breakdown and instruction count, so that pair is
//     the entire payload. Ablation cells configured through closures have
//     no serializable identity and always compute.
//
// The dynsched version namespace lives inside cache.Store (set at Open), so
// the keys here never embed it; the same helpers serve the in-process
// scheduler and the distributed coordinator, which is what keeps a
// coordinator-served cached result byte-identical to a locally computed one.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"

	"dynsched/internal/cache"
	"dynsched/internal/cpu"
	"dynsched/internal/mem"
	"dynsched/internal/obs"
	"dynsched/internal/tango"
	"dynsched/internal/trace"
)

// Cache entry kinds (part of the key namespace).
const (
	traceKind = "trace"
	cellKind  = "cell"
)

// traceKey digests every generation input that can change the produced
// trace or its sidecar. The metrics flag is part of the key because the
// sidecar's metrics fragment exists only when a registry was attached: a
// warm run with metrics must not hit an entry whose fragment is empty.
func (e *Experiment) traceKey(app string) string {
	o := &e.opts
	return fmt.Sprintf("app=%s|cpus=%d|scale=%s|penalty=%d|tracecpu=%d|memissue=%d|cachebytes=%d|tracefmt=%d|metrics=%t",
		app, o.NumCPUs, o.Scale, o.MissPenalty, o.TraceCPU%o.NumCPUs,
		o.MemIssueInterval, e.cacheBytes, trace.FormatVersion, o.Metrics != nil)
}

// traceSidecar is the JSON half of a cached trace entry: everything an
// AppRun carries besides the trace itself, plus the metrics fragment.
type traceSidecar struct {
	Caches  []mem.Stats      `json:"caches,omitempty"`
	CPUs    []tango.CPUStats `json:"cpus,omitempty"`
	Metrics obs.Snapshot     `json:"metrics"`
}

// encodeTraceEntry packs a cached trace payload: uint32 sidecar length, the
// JSON sidecar, then the serialized v3 trace (self-verifying on decode).
func encodeTraceEntry(sc traceSidecar, traceBytes []byte) ([]byte, error) {
	meta, err := json.Marshal(sc)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 4+len(meta)+len(traceBytes))
	buf = append(buf, byte(len(meta)), byte(len(meta)>>8), byte(len(meta)>>16), byte(len(meta)>>24))
	buf = append(buf, meta...)
	buf = append(buf, traceBytes...)
	return buf, nil
}

// decodeTraceEntry splits a cached trace payload back into sidecar and
// trace bytes. The trace bytes alias the input.
func decodeTraceEntry(payload []byte) (traceSidecar, []byte, error) {
	var sc traceSidecar
	if len(payload) < 4 {
		return sc, nil, fmt.Errorf("exp: cached trace entry truncated (%d bytes)", len(payload))
	}
	n := int(payload[0]) | int(payload[1])<<8 | int(payload[2])<<16 | int(payload[3])<<24
	if n < 0 || len(payload) < 4+n {
		return sc, nil, fmt.Errorf("exp: cached trace entry sidecar length %d exceeds payload", n)
	}
	if err := json.Unmarshal(payload[4:4+n], &sc); err != nil {
		return sc, nil, fmt.Errorf("exp: cached trace sidecar: %w", err)
	}
	return sc, payload[4+n:], nil
}

// traceAddrBytes is the content address of serialized trace bytes — the
// same FNV-64a the distributed coordinator's /traces endpoint uses, so a
// trace has one identity across the cache, the wire, and tracetool.
func traceAddrBytes(data []byte) string {
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// CellKey is the cache key of one replay-cell result: the trace content
// address plus the serialized spec. Exported so the distributed coordinator
// and the in-process scheduler address the identical entries.
func CellKey(traceAddr string, spec CellSpec) string {
	js, _ := json.Marshal(spec) // CellSpec is a closed struct; cannot fail
	return "trace=" + traceAddr + "|spec=" + string(js)
}

// cellResult is a cached cell payload. Breakdown and Instructions fully
// determine the published Column (SpecColumn) and the figure metrics
// (RecordColumns), so nothing else needs to persist.
type cellResult struct {
	Breakdown    cpu.Breakdown `json:"breakdown"`
	Instructions uint64        `json:"instructions"`
}

// CellCacheGet looks up a cached cell result. Safe on a nil store.
func CellCacheGet(s *cache.Store, traceAddr string, spec CellSpec) (cpu.Breakdown, uint64, bool) {
	if s == nil || traceAddr == "" {
		return cpu.Breakdown{}, 0, false
	}
	payload, ok := s.Get(cellKind, CellKey(traceAddr, spec))
	if !ok {
		return cpu.Breakdown{}, 0, false
	}
	var res cellResult
	if err := json.Unmarshal(payload, &res); err != nil {
		// The CRC matched, so this is a schema change, not corruption;
		// recompute and overwrite.
		return cpu.Breakdown{}, 0, false
	}
	return res.Breakdown, res.Instructions, true
}

// CellCachePut stores one computed cell result. Safe on a nil store; errors
// are deliberately dropped — a failed Put degrades to a future recompute,
// never fails a sweep.
func CellCachePut(s *cache.Store, traceAddr string, spec CellSpec, b cpu.Breakdown, instructions uint64) {
	if s == nil || traceAddr == "" {
		return
	}
	payload, err := json.Marshal(cellResult{Breakdown: b, Instructions: instructions})
	if err != nil {
		return
	}
	s.Put(cellKind, CellKey(traceAddr, spec), payload) //nolint:errcheck
}

// verifySelected deterministically picks the fraction of cache hits that
// -cache-verify recomputes: an FNV-64a hash of the cell key modulo 10000
// against the per-mille threshold, so the same cells are audited on every
// run regardless of worker count or schedule.
func verifySelected(fraction float64, key string) bool {
	if fraction <= 0 {
		return false
	}
	if fraction >= 1 {
		return true
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()%10000 < uint64(fraction*10000)
}

// cacheHit fills a cell slot from a cached result. When the cell is
// selected for verification it is recomputed in full and compared; a
// divergence is a terminal cell failure (the cache or the simulator is
// lying, and silently preferring either answer would poison the run).
// Returns (handled, err): handled=false means compute normally.
func (o *Options) cacheHit(tr *trace.Trace, c cell, addr, site string, index int, slot *Column) (bool, *CellError) {
	if c.spec == nil {
		return false, nil
	}
	b, instructions, ok := CellCacheGet(o.Cache, addr, *c.spec)
	if !ok {
		return false, nil
	}
	col, err := SpecColumn(*c.spec, b, instructions)
	if err != nil {
		return false, nil // unreconstructable spec: recompute
	}
	if verifySelected(o.CacheVerify, CellKey(addr, *c.spec)) {
		var fresh Column
		if cerr := runCell(tr, c, o, site, index, &fresh); cerr != nil {
			return true, cerr
		}
		match := fresh.Breakdown == col.Breakdown && fresh.Instructions == col.Instructions
		o.Cache.CountVerified(match)
		if !match {
			return true, &CellError{
				Label: site, Index: index, Attempts: 1,
				Err: &permanentError{fmt.Errorf(
					"exp: cache verification divergence: cached breakdown %+v (instructions %d) vs recomputed %+v (instructions %d)",
					col.Breakdown, col.Instructions, fresh.Breakdown, fresh.Instructions)},
			}
		}
	}
	*slot = col
	return true, nil
}
