package exp

// The parallel experiment scheduler. The paper's evaluation is a large
// embarrassingly-parallel sweep — five applications × processor models ×
// consistency models × window sizes — and every cell of it is an independent
// replay of a shared immutable trace, the same fan-out the paper's own
// methodology uses (one Tango trace, many uniprocessor replays). runJobs is
// the bounded worker pool all of the harness's fan-outs go through; results
// are always stored by input index, so every table, figure, and golden
// artifact is byte-identical regardless of the worker count — including
// failure output: errors are selected by index, never by completion time.

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dynsched/internal/consistency"
	"dynsched/internal/cpu"
	"dynsched/internal/obs"
	"dynsched/internal/trace"
)

// runJobs executes fn(0..n-1) on at most workers goroutines (0 or negative
// selects runtime.GOMAXPROCS(0)). Each job writes its result into a caller-
// owned slot keyed by its index, which is what makes the output order
// deterministic: scheduling decides only when a job runs, never where its
// result lands. On failure the error at the lowest failing index is
// returned — not the first by completion time — so the failure is the one
// serial execution would have hit and the output is byte-identical at any
// worker count. Workers stop claiming jobs above the lowest known failure;
// every job below it still runs to completion.
func runJobs(n, workers int, fn func(int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		minFail atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		errs    = make(map[int]error)
	)
	minFail.Store(int64(n))
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				// The claim counter is monotonic, so once a claim lands at or
				// above the lowest failure every smaller index has already
				// been claimed (and, if below the failure, will run).
				if i >= n || int64(i) >= minFail.Load() {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					errs[i] = err
					mu.Unlock()
					for {
						cur := minFail.Load()
						if int64(i) >= cur || minFail.CompareAndSwap(cur, int64(i)) {
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if m := minFail.Load(); m < int64(n) {
		return errs[int(m)]
	}
	return nil
}

// runJobsAll executes fn(0..n-1) like runJobs but never stops on failure:
// every job runs and the per-index errors are returned, errs[i] holding
// fn(i)'s error. This is the graceful-degradation counterpart of runJobs,
// used by the sweeps that finish the healthy cells and report partial
// results. Cancellation is the one early exit: once ctx is done, unclaimed
// jobs are marked with the context error instead of running.
func runJobsAll(ctx context.Context, n, workers int, fn func(int) error) []error {
	errs := make([]error, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctxDone(ctx); err != nil {
				errs[i] = err
				continue
			}
			errs[i] = fn(i)
		}
		return errs
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctxDone(ctx); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return errs
}

// cell is one independent bar of a figure or sweep: a processor
// configuration to replay over a trace.
type cell struct {
	label  string
	arch   string // "BASE", "SSBR", "SS", "DS"
	model  consistency.Model
	window int
	mutate func(*cpu.Config) // optional extra configuration

	// spec is the serializable identity of a spec-derived cell, the result
	// cache's key material. Ablation cells built from raw closures leave it
	// nil and are never cached: a closure has no stable identity to key by.
	spec *CellSpec
}

func (c cell) run(tr *trace.Trace, o *Options) (Column, error) {
	cfg := cpu.Config{Model: c.model, Window: c.window, Ctx: o.Ctx, NoTimeSkip: o.NoTimeSkip}
	if c.mutate != nil {
		c.mutate(&cfg)
	}
	res, err := runArch(tr, c.arch, cfg)
	if err != nil {
		return Column{}, err
	}
	return Column{
		Label: c.label, Model: c.model, Arch: c.arch, Window: c.window,
		Breakdown: res.Breakdown, Instructions: res.Instructions,
	}, nil
}

// failedColumn is the placeholder a terminally failed cell leaves in its
// slot: the configuration identity survives so tables can mark the row, the
// numbers stay zero.
func failedColumn(c cell, err *CellError) Column {
	return Column{Label: c.label, Model: c.model, Arch: c.arch, Window: c.window, Failed: true, Err: err}
}

// runCell executes one cell under the full containment stack — fault-
// injection site, panic isolation, retry — and stores the column on success.
// site is the cell's sweep-unique label ("mp3d RC-DS64").
func runCell(tr *trace.Trace, c cell, o *Options, site string, index int, slot *Column) *CellError {
	return o.attempt(site, index, func() error {
		if err := o.Faults.Fire("cell." + site); err != nil {
			return err
		}
		col, err := c.run(tr, o)
		if err != nil {
			return err
		}
		*slot = col
		return nil
	})
}

// runCells replays every cell over tr, fanning the independent replays
// across workers, and returns the columns in cell order, normalized. Every
// cell is enqueued on board (nil-safe) under labelPrefix before the fan-out
// starts, so the live /jobs endpoint shows the whole queue up front. Failed
// cells do not abort the sweep: the healthy columns are returned alongside
// a *PartialError describing the failures, and the failed slots are marked.
// Cancellation aborts with the context error and no results.
func runCells(tr *trace.Trace, cells []cell, workers int, board *obs.JobBoard, labelPrefix string, o *Options) ([]Column, error) {
	jobs := make([]int, len(cells))
	for i := range cells {
		jobs[i] = board.Enqueue(labelPrefix + cells[i].label)
	}
	cols := make([]Column, len(cells))
	errs := runJobsAll(o.Ctx, len(cells), workers, func(i int) error {
		board.Start(jobs[i])
		cerr := runCell(tr, cells[i], o, labelPrefix+cells[i].label, i, &cols[i])
		if cerr != nil {
			board.Finish(jobs[i], cerr)
			return cerr
		}
		board.Finish(jobs[i], nil)
		return nil
	})
	if err := ctxDone(o.Ctx); err != nil {
		return nil, fmt.Errorf("exp: sweep canceled: %w", err)
	}
	var failed []*CellError
	for i, err := range errs {
		if err == nil {
			continue
		}
		ce := err.(*CellError)
		cols[i] = failedColumn(cells[i], ce)
		failed = append(failed, ce)
	}
	normalize(cols)
	if failed != nil {
		return cols, &PartialError{Total: len(cells), Cells: failed}
	}
	return cols, nil
}

// perAppCells runs the full apps × cells matrix — the scheduler's main
// entry point for figures and sweeps. Trace generation and replay are
// pipelined through one worker pool: every application's generation is
// enqueued up front, and the moment a generation completes its replay
// cells become claimable, so workers replay finished traces while other
// applications are still generating — there is no barrier between the two
// phases. Results land in by-index slots and failures are keyed by cell
// index, so the output is byte-identical to the former generate-then-fan
// two-phase schedule at any worker count. Failure is contained at both
// stages: an application whose trace generation fails has all its cells
// marked failed while the other applications' sweeps complete, and a
// failed cell is marked without disturbing its neighbours. The partial
// results come back alongside a *PartialError; only cancellation aborts
// outright.
func (e *Experiment) perAppCells(cells []cell) ([]AppColumns, error) {
	apps := e.Apps()
	o := &e.opts
	nc := len(cells)

	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := len(apps) * (nc + 1); workers > max {
		workers = max
	}

	runs := make([]*AppRun, len(apps))
	genErrs := make([]error, len(apps))
	cellErrs := make([][]error, len(apps))
	cols := make([][]Column, len(apps))
	for i := range apps {
		cols[i] = make([]Column, nc)
		cellErrs[i] = make([]error, nc)
	}

	// The job stream: c == -1 generates app a's trace; c >= 0 replays one
	// cell over it. The channel is buffered for every job that can ever
	// exist, so workers (which enqueue an app's cells after generating its
	// trace) never block on the send. pending counts enqueued-but-unfinished
	// jobs; a generation adds its cells before retiring itself, so the count
	// can only reach zero when the whole matrix is done.
	type job struct{ a, c int }
	jobs := make(chan job, len(apps)*(nc+1))
	var (
		pending atomic.Int64
		wg      sync.WaitGroup
	)
	pending.Store(int64(len(apps)))
	done := func() {
		if pending.Add(-1) == 0 {
			close(jobs)
		}
	}
	for a := range apps {
		jobs <- job{a, -1}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for j := range jobs {
				a, c := j.a, j.c
				if err := ctxDone(o.Ctx); err != nil {
					if c < 0 {
						genErrs[a] = err
					}
					done()
					continue
				}
				if c < 0 {
					r, err := e.Run(apps[a])
					if err != nil {
						genErrs[a] = err
						done()
						continue
					}
					runs[a] = r
					pending.Add(int64(nc))
					for cc := 0; cc < nc; cc++ {
						jobs <- job{a, cc}
					}
					done()
					continue
				}
				site := apps[a] + " " + cells[c].label
				bj := o.Board.Enqueue(site)
				tr := runs[a].TraceView()
				// A cell already in the result cache skips its replay but
				// lands in the same by-index slot, so the merged output is
				// byte-identical to a cold run. The board reports it as
				// cached rather than done, keeping ETA estimates honest.
				if handled, cerr := o.cacheHit(tr, cells[c], runs[a].addr, site, a*nc+c, &cols[a][c]); handled {
					if cerr != nil {
						cellErrs[a][c] = cerr
						o.Board.Finish(bj, cerr)
					} else {
						o.Board.FinishCached(bj)
					}
					done()
					continue
				}
				o.Board.Start(bj)
				cerr := runCell(tr, cells[c], o, site, a*nc+c, &cols[a][c])
				if cerr != nil {
					cellErrs[a][c] = cerr
					o.Board.Finish(bj, cerr)
				} else {
					if sp := cells[c].spec; sp != nil {
						CellCachePut(o.Cache, runs[a].addr, *sp, cols[a][c].Breakdown, cols[a][c].Instructions)
					}
					o.Board.Finish(bj, nil)
				}
				done()
			}
		}()
	}
	wg.Wait()
	if err := ctxDone(o.Ctx); err != nil {
		return nil, fmt.Errorf("exp: sweep canceled: %w", err)
	}

	out := make([]AppColumns, len(apps))
	var failed []*CellError
	for a, app := range apps {
		out[a].App = app
		if genErrs[a] != nil {
			ce := &CellError{Label: app + " (trace generation)", Index: a * nc, Attempts: 1, Err: genErrs[a]}
			failed = append(failed, ce)
			for c := range cells {
				cols[a][c] = failedColumn(cells[c], ce)
			}
		} else {
			for c := range cells {
				if err := cellErrs[a][c]; err != nil {
					ce := err.(*CellError)
					cols[a][c] = failedColumn(cells[c], ce)
					failed = append(failed, ce)
				}
			}
		}
		normalize(cols[a])
		out[a].Cols = cols[a]
	}
	if failed != nil {
		// The loop above emits failures in index order already; keep the
		// sort as a guard so the report is stable at any worker count.
		sort.Slice(failed, func(i, j int) bool { return failed[i].Index < failed[j].Index })
		return out, &PartialError{Total: len(apps) * nc, Cells: failed}
	}
	return out, nil
}

// perAppJobs runs fn once per configured application with its generated
// trace, bounded by Options.Workers. Generation is folded into each app's
// job rather than batched up front, so fn starts on the first finished
// trace while later applications are still generating. fn must write its
// result into a slot keyed by the app index.
func (e *Experiment) perAppJobs(fn func(i int, run *AppRun) error) error {
	apps := e.Apps()
	jobs := make([]int, len(apps))
	for i, app := range apps {
		jobs[i] = e.opts.Board.Enqueue(app)
	}
	return runJobs(len(apps), e.opts.Workers, func(i int) error {
		run, err := e.Run(apps[i])
		if err != nil {
			return err
		}
		e.opts.Board.Start(jobs[i])
		err = fn(i, run)
		e.opts.Board.Finish(jobs[i], err)
		return err
	})
}
