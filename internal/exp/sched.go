package exp

// The parallel experiment scheduler. The paper's evaluation is a large
// embarrassingly-parallel sweep — five applications × processor models ×
// consistency models × window sizes — and every cell of it is an independent
// replay of a shared immutable trace, the same fan-out the paper's own
// methodology uses (one Tango trace, many uniprocessor replays). runJobs is
// the bounded worker pool all of the harness's fan-outs go through; results
// are always stored by input index, so every table, figure, and golden
// artifact is byte-identical regardless of the worker count.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"dynsched/internal/consistency"
	"dynsched/internal/cpu"
	"dynsched/internal/obs"
	"dynsched/internal/trace"
)

// runJobs executes fn(0..n-1) on at most workers goroutines (0 or negative
// selects runtime.GOMAXPROCS(0)). Each job writes its result into a caller-
// owned slot keyed by its index, which is what makes the output order
// deterministic: scheduling decides only when a job runs, never where its
// result lands. The first error (by completion time) cancels the remaining
// jobs and is returned.
func runJobs(n, workers int, fn func(int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		mu     sync.Mutex
		first  error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					failed.Store(true)
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// cell is one independent bar of a figure or sweep: a processor
// configuration to replay over a trace.
type cell struct {
	label  string
	arch   string // "BASE", "SSBR", "SS", "DS"
	model  consistency.Model
	window int
	mutate func(*cpu.Config) // optional extra configuration
}

func (c cell) run(tr *trace.Trace) (Column, error) {
	cfg := cpu.Config{Model: c.model, Window: c.window}
	if c.mutate != nil {
		c.mutate(&cfg)
	}
	res, err := runArch(tr, c.arch, cfg)
	if err != nil {
		return Column{}, err
	}
	return Column{
		Label: c.label, Model: c.model, Arch: c.arch, Window: c.window,
		Breakdown: res.Breakdown, Instructions: res.Instructions,
	}, nil
}

// runCells replays every cell over tr, fanning the independent replays
// across workers, and returns the columns in cell order, normalized. Every
// cell is enqueued on board (nil-safe) under labelPrefix before the fan-out
// starts, so the live /jobs endpoint shows the whole queue up front.
func runCells(tr *trace.Trace, cells []cell, workers int, board *obs.JobBoard, labelPrefix string) ([]Column, error) {
	jobs := make([]int, len(cells))
	for i := range cells {
		jobs[i] = board.Enqueue(labelPrefix + cells[i].label)
	}
	cols := make([]Column, len(cells))
	err := runJobs(len(cells), workers, func(i int) error {
		board.Start(jobs[i])
		c, err := cells[i].run(tr)
		board.Finish(jobs[i], err)
		if err != nil {
			return err
		}
		cols[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	normalize(cols)
	return cols, nil
}

// perAppCells generates every application's trace concurrently, then fans
// the full apps × cells matrix out as one flat job list — the scheduler's
// main entry point for figures and sweeps.
func (e *Experiment) perAppCells(cells []cell) ([]AppColumns, error) {
	apps := e.Apps()
	runs, err := e.RunAll(apps...)
	if err != nil {
		return nil, err
	}
	out := make([]AppColumns, len(apps))
	cols := make([][]Column, len(apps))
	for i, app := range apps {
		out[i].App = app
		cols[i] = make([]Column, len(cells))
	}
	nc := len(cells)
	jobs := make([]int, len(apps)*nc)
	for k := range jobs {
		jobs[k] = e.opts.Board.Enqueue(apps[k/nc] + " " + cells[k%nc].label)
	}
	err = runJobs(len(apps)*nc, e.opts.Workers, func(k int) error {
		a, c := k/nc, k%nc
		e.opts.Board.Start(jobs[k])
		col, err := cells[c].run(runs[a].Trace)
		e.opts.Board.Finish(jobs[k], err)
		if err != nil {
			return err
		}
		cols[a][c] = col
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range out {
		normalize(cols[i])
		out[i].Cols = cols[i]
	}
	return out, nil
}

// perAppJobs runs fn once per configured application with its generated
// trace, bounded by Options.Workers; traces are generated concurrently
// first. fn must write its result into a slot keyed by the app index.
func (e *Experiment) perAppJobs(fn func(i int, run *AppRun) error) error {
	apps := e.Apps()
	runs, err := e.RunAll(apps...)
	if err != nil {
		return err
	}
	jobs := make([]int, len(apps))
	for i, app := range apps {
		jobs[i] = e.opts.Board.Enqueue(app)
	}
	return runJobs(len(apps), e.opts.Workers, func(i int) error {
		e.opts.Board.Start(jobs[i])
		err := fn(i, runs[i])
		e.opts.Board.Finish(jobs[i], err)
		return err
	})
}
