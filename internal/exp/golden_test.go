package exp

// Golden regression net: the whole stack — application builders, the
// multiprocessor simulation, the cache model, and the DS processor — is
// deterministic, so these exact small-scale values pin its behaviour. All
// floating point inside the simulation runs through isa.EvalALU one
// operation at a time (no fused multiply-add), so the numbers are
// platform-independent.
//
// If a deliberate model change shifts them, regenerate with:
//
//	opts := exp.DefaultOptions(); opts.Scale = apps.ScaleSmall
//	e := exp.New(opts)
//	for each app: print trace.Len, Data().ReadMisses/WriteMisses,
//	    RunBase total, RunDS(RC, 64) total
//
// and update the table alongside the change that justified it.

import (
	"testing"

	"dynsched/internal/apps"
	"dynsched/internal/consistency"
	"dynsched/internal/cpu"
)

var golden = []struct {
	app         string
	instrs      int
	readMisses  uint64
	writeMisses uint64
	baseTotal   uint64
	ds64Total   uint64
}{
	{"mp3d", 1338, 62, 57, 12230, 6178},
	{"lu", 3755, 145, 24, 19938, 9678},
	{"pthor", 3368, 139, 81, 19255, 9899},
	{"locus", 1712, 67, 55, 12754, 6561},
	{"ocean", 5068, 182, 84, 29757, 15024},
}

func TestGoldenSmallScale(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = apps.ScaleSmall
	e := New(opts)
	for _, g := range golden {
		g := g
		t.Run(g.app, func(t *testing.T) {
			run, err := e.Run(g.app)
			if err != nil {
				t.Fatal(err)
			}
			if run.Trace.Len() != g.instrs {
				t.Errorf("trace length = %d, want %d", run.Trace.Len(), g.instrs)
			}
			d := run.Trace.Data()
			if d.ReadMisses != g.readMisses || d.WriteMisses != g.writeMisses {
				t.Errorf("misses = %d/%d, want %d/%d", d.ReadMisses, d.WriteMisses, g.readMisses, g.writeMisses)
			}
			base := cpu.RunBase(run.Trace)
			if base.Breakdown.Total() != g.baseTotal {
				t.Errorf("BASE total = %d, want %d", base.Breakdown.Total(), g.baseTotal)
			}
			ds, err := cpu.RunDS(run.Trace, cpu.Config{Model: consistency.RC, Window: 64})
			if err != nil {
				t.Fatal(err)
			}
			if ds.Breakdown.Total() != g.ds64Total {
				t.Errorf("RC-DS64 total = %d, want %d", ds.Breakdown.Total(), g.ds64Total)
			}
		})
	}
}
