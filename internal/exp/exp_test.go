package exp

import (
	"fmt"
	"strings"
	"testing"

	"dynsched/internal/apps"
	"dynsched/internal/bpred"
	"dynsched/internal/consistency"
	"dynsched/internal/cpu"
	"dynsched/internal/trace"
)

func smallExp(t *testing.T, appNames ...string) *Experiment {
	t.Helper()
	opts := DefaultOptions()
	opts.Scale = apps.ScaleSmall
	if len(appNames) > 0 {
		opts.Apps = appNames
	}
	return New(opts)
}

func colByLabel(t *testing.T, cols []Column, label string) Column {
	t.Helper()
	for _, c := range cols {
		if c.Label == label {
			return c
		}
	}
	t.Fatalf("column %q not found in %v", label, labels(cols))
	return Column{}
}

func labels(cols []Column) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Label
	}
	return out
}

func TestTracesAreCached(t *testing.T) {
	e := smallExp(t, "lu")
	r1, err := e.Run("lu")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run("lu")
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("second Run did not return the cached trace")
	}
}

func TestTables(t *testing.T) {
	e := smallExp(t)
	t1, err := e.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != 5 {
		t.Fatalf("table 1 rows = %d, want 5", len(t1))
	}
	out := FormatTable1(t1)
	for _, app := range apps.Names() {
		if !strings.Contains(out, strings.ToUpper(app)) {
			t.Errorf("table 1 output missing %s:\n%s", app, out)
		}
	}
	t2, err := e.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if s := FormatTable2(t2); !strings.Contains(s, "barriers") {
		t.Errorf("table 2 malformed:\n%s", s)
	}
	t3, err := e.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if s := FormatTable3(t3); !strings.Contains(s, "Predicted") {
		t.Errorf("table 3 malformed:\n%s", s)
	}
}

// The central qualitative claims of Figure 3, per application.
func TestFigure3Trends(t *testing.T) {
	e := smallExp(t)
	all, err := e.Figure3All()
	if err != nil {
		t.Fatal(err)
	}
	for _, ac := range all {
		ac := ac
		t.Run(ac.App, func(t *testing.T) {
			base := colByLabel(t, ac.Cols, "BASE")

			// (i) "SC does not allow the read and write latency to be hidden
			// regardless of the processor architecture": dynamic scheduling
			// buys far less under SC than under RC (computation can overlap
			// the single outstanding miss, but misses serialize), and the
			// SC gain stays modest in absolute terms.
			scSSBR := colByLabel(t, ac.Cols, "SC-SSBR")
			scDS := colByLabel(t, ac.Cols, "SC-DS256")
			rcSSBRc := colByLabel(t, ac.Cols, "RC-SSBR")
			rcDS := colByLabel(t, ac.Cols, "RC-DS256")
			scGain := int64(scSSBR.Breakdown.Total()) - int64(scDS.Breakdown.Total())
			rcGain := int64(rcSSBRc.Breakdown.Total()) - int64(rcDS.Breakdown.Total())
			if scGain > rcGain {
				t.Errorf("DS gain under SC (%d cycles) exceeds gain under RC (%d cycles)", scGain, rcGain)
			}
			if float64(scDS.Breakdown.Total()) < 0.70*float64(scSSBR.Breakdown.Total()) {
				t.Errorf("SC-DS256 total %d far below SC-SSBR %d: SC should not benefit this much from DS",
					scDS.Breakdown.Total(), scSSBR.Breakdown.Total())
			}

			// (ii) RC fully hides write latency under static scheduling.
			rcSSBR := colByLabel(t, ac.Cols, "RC-SSBR")
			if w := float64(rcSSBR.Breakdown.Write) / float64(base.Breakdown.Total()); w > 0.05 {
				t.Errorf("RC-SSBR write stall is %.1f%% of BASE, want ~0", 100*w)
			}

			// (iii) RC+DS read stall shrinks as the window grows.
			prev := colByLabel(t, ac.Cols, "RC-DS16").Breakdown.Read
			for _, w := range []string{"RC-DS32", "RC-DS64", "RC-DS128", "RC-DS256"} {
				cur := colByLabel(t, ac.Cols, w).Breakdown.Read
				if float64(cur) > 1.1*float64(prev)+5 {
					t.Errorf("%s read stall %d exceeds smaller window's %d", w, cur, prev)
				}
				prev = cur
			}

			// (iv) RC-DS at the largest window beats every static RC config.
			ds256 := colByLabel(t, ac.Cols, "RC-DS256")
			if ds256.Breakdown.Total() > rcSSBR.Breakdown.Total() {
				t.Errorf("RC-DS256 total %d worse than RC-SSBR %d", ds256.Breakdown.Total(), rcSSBR.Breakdown.Total())
			}

			// (v) Everything is bounded by BASE.
			for _, c := range ac.Cols {
				if c.Breakdown.Total() > base.Breakdown.Total()*105/100 {
					t.Errorf("%s total %d exceeds BASE %d", c.Label, c.Breakdown.Total(), base.Breakdown.Total())
				}
			}

			// (vi) Busy time is invariant across 1-issue configurations.
			for _, c := range ac.Cols {
				if c.Breakdown.Busy != base.Breakdown.Busy {
					t.Errorf("%s busy %d != BASE busy %d", c.Label, c.Breakdown.Busy, base.Breakdown.Busy)
				}
			}
		})
	}
}

// "PC is in general successful in hiding the latency of writes" (§4.1.1)
// for the applications with balanced write traffic.
func TestPCHidesWritesForLU(t *testing.T) {
	e := smallExp(t, "lu")
	run, err := e.Run("lu")
	if err != nil {
		t.Fatal(err)
	}
	cols, err := Figure3(run.Trace)
	if err != nil {
		t.Fatal(err)
	}
	base := colByLabel(t, cols, "BASE")
	pc := colByLabel(t, cols, "PC-SSBR")
	if base.Breakdown.Write == 0 {
		t.Skip("no write stall at this scale")
	}
	if frac := float64(pc.Breakdown.Write) / float64(base.Breakdown.Write); frac > 0.25 {
		t.Errorf("PC-SSBR retains %.0f%% of BASE write stall, want <25%%", 100*frac)
	}
}

// Figure 4 trends: perfect branch prediction never hurts; ignoring data
// dependences never hurts; at the largest window with both, read stall is
// near zero.
func TestFigure4Trends(t *testing.T) {
	e := smallExp(t)
	all, err := e.Figure4All()
	if err != nil {
		t.Fatal(err)
	}
	f3, err := e.Figure3All()
	if err != nil {
		t.Fatal(err)
	}
	for i, ac := range all {
		ac, f3c := ac, f3[i]
		t.Run(ac.App, func(t *testing.T) {
			for _, w := range Windows {
				pbp := colByLabel(t, ac.Cols, labelf("PBP-%d", w))
				btb := colByLabel(t, f3c.Cols, labelf("RC-DS%d", w))
				if float64(pbp.Breakdown.Total()) > 1.02*float64(btb.Breakdown.Total())+10 {
					t.Errorf("window %d: perfect BP total %d worse than BTB total %d",
						w, pbp.Breakdown.Total(), btb.Breakdown.Total())
				}
				nd := colByLabel(t, ac.Cols, labelf("PBP+ND-%d", w))
				if float64(nd.Breakdown.Total()) > 1.02*float64(pbp.Breakdown.Total())+10 {
					t.Errorf("window %d: ignoring deps total %d worse than with deps %d",
						w, nd.Breakdown.Total(), pbp.Breakdown.Total())
				}
			}
			nd256 := colByLabel(t, ac.Cols, "PBP+ND-256")
			base := colByLabel(t, ac.Cols, "BASE")
			if frac := float64(nd256.Breakdown.Read) / float64(base.Breakdown.Total()); frac > 0.06 {
				t.Errorf("PBP+ND-256 read stall is %.1f%% of BASE, want ~0 (asymptote is busy+sync)", 100*frac)
			}
		})
	}
}

func labelf(f string, args ...any) string { return fmt.Sprintf(f, args...) }

// The read-latency-hidden summary grows with window size and LU/OCEAN reach
// near-full hiding at window 64, as in §7.
func TestReadHiddenSummary(t *testing.T) {
	e := smallExp(t)
	avg, perApp, err := e.ReadHiddenSummary()
	if err != nil {
		t.Fatal(err)
	}
	if avg[16] >= avg[64] {
		t.Errorf("hidden fraction should grow with window: w16=%.2f w64=%.2f", avg[16], avg[64])
	}
	if avg[64] < 0.5 {
		t.Errorf("avg hidden at window 64 = %.2f, want a substantial fraction (paper: 0.81)", avg[64])
	}
	for _, app := range []string{"lu", "ocean"} {
		if perApp[app][64] < 0.75 {
			t.Errorf("%s hidden at window 64 = %.2f, want near-full (paper: ~1.0)", app, perApp[app][64])
		}
	}
	out := FormatSummary(avg, perApp)
	if !strings.Contains(out, "window") {
		t.Errorf("summary malformed:\n%s", out)
	}
}

// PTHOR's dependent miss chains delay read-miss issue far more than LU's
// independent misses (§4.1.3).
func TestDelayContrast(t *testing.T) {
	e := smallExp(t, "lu", "pthor")
	luRun, err := e.Run("lu")
	if err != nil {
		t.Fatal(err)
	}
	ptRun, err := e.Run("pthor")
	if err != nil {
		t.Fatal(err)
	}
	luH, err := ReadMissDelays(luRun.Trace)
	if err != nil {
		t.Fatal(err)
	}
	ptH, err := ReadMissDelays(ptRun.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if ptH.FractionAbove(40) <= luH.FractionAbove(40) {
		t.Errorf("pthor delayed fraction %.2f should exceed lu's %.2f",
			ptH.FractionAbove(40), luH.FractionAbove(40))
	}
}

// The 100-cycle experiment: trends match §4.2 — the same shape, with the
// knee moved to larger windows.
func TestLatency100(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = apps.ScaleSmall
	opts.MissPenalty = 100
	opts.Apps = []string{"lu"}
	e := New(opts)
	run, err := e.Run("lu")
	if err != nil {
		t.Fatal(err)
	}
	if run.Trace.MissPenalty != 100 {
		t.Fatalf("trace generated with penalty %d", run.Trace.MissPenalty)
	}
	cols, err := WindowSweep(run.Trace, consistency.RC, nil)
	if err != nil {
		t.Fatal(err)
	}
	w64 := colByLabel(t, cols, "RC-DS64")
	w128 := colByLabel(t, cols, "RC-DS128")
	// With 100-cycle latency, window 64 cannot fully hide reads; 128 helps.
	if w128.Breakdown.Read > w64.Breakdown.Read {
		t.Errorf("window 128 read stall %d exceeds window 64's %d at latency 100",
			w128.Breakdown.Read, w64.Breakdown.Read)
	}
}

// Multiple issue: 4-wide execution is faster in absolute cycles.
func TestIssue4(t *testing.T) {
	e := smallExp(t, "lu")
	i4, err := e.Issue4All()
	if err != nil {
		t.Fatal(err)
	}
	f3, err := e.Figure3All()
	if err != nil {
		t.Fatal(err)
	}
	w4 := colByLabel(t, i4[0].Cols, "RC-DS64")
	w1 := colByLabel(t, f3[0].Cols, "RC-DS64")
	if w4.Breakdown.Total() >= w1.Breakdown.Total() {
		t.Errorf("4-issue total %d not below 1-issue total %d", w4.Breakdown.Total(), w1.Breakdown.Total())
	}
}

func TestAblations(t *testing.T) {
	e := smallExp(t, "mp3d")
	sb, err := e.AblationStoreBuffer("mp3d")
	if err != nil {
		t.Fatal(err)
	}
	if colByLabel(t, sb, "SB1").Breakdown.Total() < colByLabel(t, sb, "SB32").Breakdown.Total() {
		t.Error("deeper store buffer should not be slower")
	}
	ms, err := e.AblationMSHR("mp3d")
	if err != nil {
		t.Fatal(err)
	}
	if colByLabel(t, ms, "MSHR1").Breakdown.Total() < colByLabel(t, ms, "MSHRinf").Breakdown.Total() {
		t.Error("more MSHRs should not be slower")
	}
	bt, err := e.AblationBTB("mp3d", func(entries int) trace.Predictor {
		b, err := bpred.NewBTB(entries, 4)
		if err != nil {
			t.Fatal(err)
		}
		return b
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bt) != 6 {
		t.Errorf("BTB ablation columns = %d, want 6", len(bt))
	}
}

func TestWOBetweenPCAndRC(t *testing.T) {
	e := smallExp(t, "ocean")
	wo, err := e.WOAll()
	if err != nil {
		t.Fatal(err)
	}
	f3, err := e.Figure3All()
	if err != nil {
		t.Fatal(err)
	}
	woDS := colByLabel(t, wo[0].Cols, "WO-DS256")
	rcDS := colByLabel(t, f3[0].Cols, "RC-DS256")
	// WO is stricter than RC, so it cannot be faster (small slack for
	// secondary scheduling effects).
	if float64(woDS.Breakdown.Total()) < 0.98*float64(rcDS.Breakdown.Total()) {
		t.Errorf("WO total %d clearly below RC total %d: hierarchy violated",
			woDS.Breakdown.Total(), rcDS.Breakdown.Total())
	}
}

// The SC-prefetch extension closes a large part of the SC→RC gap (the
// claim of reference [8], §6 of the paper).
func TestSCPrefetchClosesGap(t *testing.T) {
	e := smallExp(t, "mp3d")
	pf, err := e.SCPrefetchAll()
	if err != nil {
		t.Fatal(err)
	}
	f3, err := e.Figure3All()
	if err != nil {
		t.Fatal(err)
	}
	scPF := colByLabel(t, pf[0].Cols, "SC-DS256")
	sc := colByLabel(t, f3[0].Cols, "SC-DS256")
	rc := colByLabel(t, f3[0].Cols, "RC-DS256")
	if scPF.Breakdown.Total() >= sc.Breakdown.Total() {
		t.Errorf("SC+prefetch total %d not below plain SC %d", scPF.Breakdown.Total(), sc.Breakdown.Total())
	}
	if scPF.Breakdown.Total() < rc.Breakdown.Total() {
		t.Errorf("SC+prefetch total %d below RC %d — prefetch must not beat full relaxation", scPF.Breakdown.Total(), rc.Breakdown.Total())
	}
}

func TestMissDistanceReport(t *testing.T) {
	e := smallExp(t, "lu", "ocean")
	s, err := e.MissDistanceReport()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "LU") || !strings.Contains(s, "OCEAN") {
		t.Errorf("report missing apps:\n%s", s)
	}
	// LU's inner loops give it strongly clustered miss distances; just
	// validate the histograms carry data.
	run, err := e.Run("lu")
	if err != nil {
		t.Fatal(err)
	}
	if run.Trace.ReadMissDistances().Total == 0 {
		t.Error("LU miss distance histogram empty")
	}
}

func TestMultipleContexts(t *testing.T) {
	e := smallExp(t, "lu")
	rows, err := e.MultipleContexts("lu", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (contexts 1,2,4,8)", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Result.Utilization < rows[i-1].Result.Utilization {
			t.Errorf("utilization fell from %d to %d contexts", rows[i-1].Contexts, rows[i].Contexts)
		}
	}
	out := FormatMC(rows)
	if !strings.Contains(out, "utilization") {
		t.Errorf("FormatMC output malformed:\n%s", out)
	}
}

func TestReschedAllReport(t *testing.T) {
	e := smallExp(t, "ocean")
	rows, err := e.ReschedAll()
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.SSRescheduled > r.SSOriginal {
		t.Errorf("conservative rescheduling made SS slower: %d vs %d", r.SSRescheduled, r.SSOriginal)
	}
	if r.SSAggressive > r.SSRescheduled {
		t.Errorf("aggressive scheduling slower than conservative: %d vs %d", r.SSAggressive, r.SSRescheduled)
	}
	if !strings.Contains(FormatResched(rows), "ocean") {
		t.Error("FormatResched missing app name")
	}
}

func TestCacheSizeAblation(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = apps.ScaleSmall
	rows, err := AblationCacheSize("lu", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	// Miss rates must not increase with cache size.
	for i := 1; i < len(rows); i++ {
		if rows[i].ReadMissRate > rows[i-1].ReadMissRate+0.01 {
			t.Errorf("read miss rate grew with cache size: %v then %v", rows[i-1], rows[i])
		}
	}
	if !strings.Contains(FormatCacheGeom("lu", rows), "64KB") {
		t.Error("FormatCacheGeom missing sizes")
	}
}

func TestMachineSweep(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = apps.ScaleSmall
	rows, err := MachineSweep("ocean", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("rows = %d, want >= 4 (32 CPUs may be skipped at small scale)", len(rows))
	}
	// Per-processor work shrinks as the machine grows.
	for i := 1; i < len(rows); i++ {
		if rows[i].BusyCycles >= rows[i-1].BusyCycles {
			t.Errorf("busy cycles did not shrink: %d CPUs %d, %d CPUs %d",
				rows[i-1].NumCPUs, rows[i-1].BusyCycles, rows[i].NumCPUs, rows[i].BusyCycles)
		}
	}
	if !strings.Contains(FormatMachines("ocean", rows), "OCEAN") {
		t.Error("FormatMachines missing app")
	}
}

func TestContentionLengthensMisses(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = apps.ScaleSmall
	rows, err := Contention("mp3d", opts)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].AvgMissLat != 50 {
		t.Errorf("unbounded avg miss latency = %v, want 50", rows[0].AvgMissLat)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].AvgMissLat <= rows[i-1].AvgMissLat {
			t.Errorf("avg miss latency did not grow with contention: %+v", rows)
		}
		if rows[i].BaseTotal <= rows[i-1].BaseTotal {
			t.Errorf("BASE total did not grow with contention: %+v", rows)
		}
	}
	if !strings.Contains(FormatContention("mp3d", rows), "inf bw") {
		t.Error("FormatContention missing unbounded row")
	}
}

// Cross-check: the BASE model's stall sections must equal the latency the
// trace carries (trace.LatencyBound), for every application — two
// independent code paths computing the same quantity.
func TestBaseMatchesLatencyBound(t *testing.T) {
	e := smallExp(t)
	for _, app := range e.Apps() {
		run, err := e.Run(app)
		if err != nil {
			t.Fatal(err)
		}
		base := cpu.RunBase(run.Trace)
		rd, wr, sy := run.Trace.LatencyBound()
		if base.Breakdown.Read != rd || base.Breakdown.Write != wr || base.Breakdown.Sync != sy {
			t.Errorf("%s: BASE (r %d, w %d, s %d) != bound (r %d, w %d, s %d)",
				app, base.Breakdown.Read, base.Breakdown.Write, base.Breakdown.Sync, rd, wr, sy)
		}
		if base.Breakdown.Busy != uint64(run.Trace.Len()) {
			t.Errorf("%s: BASE busy %d != instructions %d", app, base.Breakdown.Busy, run.Trace.Len())
		}
	}
}
