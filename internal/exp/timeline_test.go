package exp

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"dynsched/internal/apps"
	"dynsched/internal/consistency"
	"dynsched/internal/cpu"
	"dynsched/internal/critpath"
	"dynsched/internal/obs"
	"dynsched/internal/trace"
)

// timelineBothArms replays one configuration under both time-skip arms with
// an interval sampler and critpath collector attached and requires the
// derived sample series — including the per-interval fine-cause deltas — to
// be byte-identical.
func timelineBothArms(t *testing.T, tr *trace.Trace, label, arch string, cfg cpu.Config) {
	t.Helper()
	var series [2][]obs.TimelineSample
	for i, noskip := range []bool{false, true} {
		c := cfg
		c.NoTimeSkip = noskip
		tl := obs.NewTimeline(6, 64) // 64-cycle intervals force many decimations
		tl.CauseNames = timelineCauseNames()
		c.Timeline = tl
		c.CritPath = critpath.NewCollector()
		if _, err := runArch(tr, arch, c); err != nil {
			t.Fatalf("%s noskip=%v: %v", label, noskip, err)
		}
		series[i] = tl.Samples()
	}
	if !reflect.DeepEqual(series[0], series[1]) {
		t.Errorf("%s: timeline differs between skip and noskip (%d vs %d samples)",
			label, len(series[0]), len(series[1]))
		return
	}
	a, err := json.Marshal(series[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(series[1])
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("%s: timeline JSON differs between skip and noskip", label)
	}
}

// TestSkipEquivalenceTimeline extends the time-skip equivalence gate to the
// interval sampler: a time-skipping replay that interpolates boundary
// snapshots inside bulk-charged quiet stretches must emit the exact series
// of the cycle-stepped replay, for every processor model.
func TestSkipEquivalenceTimeline(t *testing.T) {
	models := []consistency.Model{consistency.SC, consistency.RC}
	opts := DefaultOptions()
	opts.Scale = apps.ScaleSmall
	opts.Apps = []string{"mp3d", "lu"}
	e := New(opts)
	for _, app := range opts.Apps {
		run, err := e.Run(app)
		if err != nil {
			t.Fatal(err)
		}
		for _, model := range models {
			for _, c := range skipEquivCells() {
				label := fmt.Sprintf("%s/%s/%s", app, model, c.label)
				cfg := cpu.Config{Model: model, Window: c.window}
				if c.extra != nil {
					c.extra(&cfg)
				}
				timelineBothArms(t, run.Trace, label, c.arch, cfg)
			}
		}
	}
}

// TestWorkerCountDeterminismTimeline pins the full timeline step — text,
// JSON, and CSV — to be byte-identical between serial and parallel sweeps.
func TestWorkerCountDeterminismTimeline(t *testing.T) {
	render := func(workers int) (string, string, string) {
		t.Helper()
		opts := DefaultOptions()
		opts.Scale = apps.ScaleSmall
		opts.Apps = []string{"mp3d", "lu"}
		opts.Workers = workers
		rep, err := New(opts).TimelineAll()
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Format(), string(js), rep.CSV()
	}
	txt1, js1, csv1 := render(1)
	txt4, js4, csv4 := render(4)
	if txt1 != txt4 {
		t.Errorf("text report differs between -j 1 and -j 4:\n%s\n---\n%s", txt1, txt4)
	}
	if js1 != js4 {
		t.Error("JSON report differs between -j 1 and -j 4")
	}
	if csv1 != csv4 {
		t.Error("CSV differs between -j 1 and -j 4")
	}
	for _, want := range []string{"== mp3d ==", "RC-DS256", "dominant", "ipc "} {
		if !strings.Contains(txt1, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestTimelineConservationAcrossModels checks the sweep-level invariant on
// real traces: for every replay cell the per-interval breakdown deltas sum
// to the interval length, the intervals tile [0, TotalCycles) exactly, and
// the phases partition the sampled span.
func TestTimelineConservationAcrossModels(t *testing.T) {
	rep, err := smallExp(t, "lu").TimelineAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range rep.Apps {
		for _, c := range app.Cells {
			if c.Failed {
				t.Fatalf("%s %s: unexpected failure: %s", app.App, c.Label, c.Error)
			}
			if len(c.Samples) == 0 {
				t.Fatalf("%s %s: no samples", app.App, c.Label)
			}
			var instr uint64
			prevEnd := uint64(0)
			for i, s := range c.Samples {
				if s.Start != prevEnd {
					t.Errorf("%s %s sample %d: starts at %d, want %d", app.App, c.Label, i, s.Start, prevEnd)
				}
				prevEnd = s.End
				sum := s.Busy + s.Sync + s.Read + s.Write + s.Branch + s.Other
				if uint64(sum) != s.End-s.Start {
					t.Errorf("%s %s sample %d: breakdown sums to %d over [%d,%d)",
						app.App, c.Label, i, sum, s.Start, s.End)
				}
				instr += s.Instructions
			}
			if prevEnd != c.TotalCycles {
				t.Errorf("%s %s: samples end at %d, run at %d", app.App, c.Label, prevEnd, c.TotalCycles)
			}
			if instr != c.Instructions {
				t.Errorf("%s %s: sampled instructions %d, run retired %d", app.App, c.Label, instr, c.Instructions)
			}
			if len(c.Phases) == 0 {
				t.Fatalf("%s %s: no phases", app.App, c.Label)
			}
			if first, last := c.Phases[0], c.Phases[len(c.Phases)-1]; first.StartCycle != 0 || last.EndCycle != c.TotalCycles {
				t.Errorf("%s %s: phases span [%d,%d), want [0,%d)",
					app.App, c.Label, first.StartCycle, last.EndCycle, c.TotalCycles)
			}
			for i := 1; i < len(c.Phases); i++ {
				if c.Phases[i].StartCycle != c.Phases[i-1].EndCycle {
					t.Errorf("%s %s: phase %d starts at %d, previous ends at %d",
						app.App, c.Label, i+1, c.Phases[i].StartCycle, c.Phases[i-1].EndCycle)
				}
			}
		}
	}
}

// TestDetectPhases pins the change-point detector on synthetic series.
func TestDetectPhases(t *testing.T) {
	mk := func(i int, busy, read int64, instr uint64) obs.TimelineSample {
		return obs.TimelineSample{
			Start: uint64(i) * 100, End: uint64(i+1) * 100,
			Instructions: instr, Busy: busy, Read: read,
		}
	}
	if got := DetectPhases(nil); got != nil {
		t.Errorf("empty series: %v", got)
	}
	// A stable mix is one phase.
	var flat []obs.TimelineSample
	for i := 0; i < 10; i++ {
		flat = append(flat, mk(i, 90, 10, 90))
	}
	p := DetectPhases(flat)
	if len(p) != 1 || p[0].StartCycle != 0 || p[0].EndCycle != 1000 || p[0].DominantStall != "read" {
		t.Fatalf("flat series: %+v", p)
	}
	// An abrupt move of half the cycles from busy to read splits the run.
	var shifted []obs.TimelineSample
	for i := 0; i < 4; i++ {
		shifted = append(shifted, mk(i, 100, 0, 100))
	}
	for i := 4; i < 8; i++ {
		shifted = append(shifted, mk(i, 20, 80, 20))
	}
	p = DetectPhases(shifted)
	if len(p) != 2 {
		t.Fatalf("shifted series: %d phases, want 2: %+v", len(p), p)
	}
	if p[0].EndCycle != 400 || p[1].StartCycle != 400 {
		t.Errorf("boundary at %d/%d, want 400", p[0].EndCycle, p[1].StartCycle)
	}
	if p[0].DominantStall != "busy" || p[1].DominantStall != "read" {
		t.Errorf("dominants %q/%q, want busy/read", p[0].DominantStall, p[1].DominantStall)
	}
	if p[0].IPC != 1.0 || p[1].MCPI != float64(4*80)/float64(4*20) {
		t.Errorf("phase rates: IPC %g, MCPI %g", p[0].IPC, p[1].MCPI)
	}
}

// TestServeTimelineMidRunReplay scrapes /timeline and /bottlenecks while a
// real DS replay streams samples into a hub-registered timeline — the race
// detector proves live scraping is safe against the simulation writer.
func TestServeTimelineMidRunReplay(t *testing.T) {
	run, err := smallExp(t, "lu").Run("lu")
	if err != nil {
		t.Fatal(err)
	}
	hub := obs.NewTimelineHub()
	reg := obs.NewRegistry()
	srv, err := obs.StartServer("127.0.0.1:0", obs.ServerState{
		Registry: reg, Timelines: hub, Version: "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	done := make(chan error, 1)
	go func() {
		tl := obs.NewTimeline(4, 32) // tiny interval: constant recording
		tl.CauseNames = timelineCauseNames()
		hub.Register("lu RC-DS64", tl)
		cfg := cpu.Config{Model: consistency.RC, Window: 64,
			CritPath: critpath.NewCollector(), Timeline: tl}
		_, err := runArch(run.Trace, "DS", cfg)
		done <- err
	}()

	scrape := func(path string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if path == "/timeline" {
			var series []obs.TimelineSeries
			if err := json.NewDecoder(resp.Body).Decode(&series); err != nil {
				t.Fatalf("decode %s: %v", path, err)
			}
		}
	}
	running := true
	for running {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			running = false
		default:
			scrape("/timeline")
			scrape("/bottlenecks")
		}
	}
	// After the run the snapshot holds the complete series.
	snap := hub.Snapshot()
	if len(snap) != 1 || snap[0].Cell != "lu RC-DS64" || len(snap[0].Samples) == 0 {
		t.Fatalf("final snapshot: %+v", snap)
	}
}
