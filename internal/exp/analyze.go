package exp

// The critical-path bottleneck analysis (`hidelat analyze`): the Figure 3
// window sweep replayed with a critpath.Collector attached to every cell,
// producing a top-down attribution — at window W under model M, X% of
// execution time is on the critical path because of cause C — plus the
// per-instruction last-arriving-edge distribution. The collection follows
// the ledger's determinism discipline: one collector per cell, results
// merged by input index, so the report is byte-identical at any worker
// count and the published counters land in the FNV checksum.

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"dynsched/internal/consistency"
	"dynsched/internal/cpu"
	"dynsched/internal/critpath"
	"dynsched/internal/obs"
)

// AnalyzeCell is one replay cell's attribution: a processor configuration,
// its Figure 3 breakdown, and the fine-grained critical-path buckets that
// sum exactly to Breakdown.Total().
type AnalyzeCell struct {
	Label        string               `json:"label"`
	Arch         string               `json:"arch"`
	Window       int                  `json:"window,omitempty"`
	Breakdown    cpu.Breakdown        `json:"breakdown"`
	Instructions uint64               `json:"instructions"`
	Attr         critpath.Attribution `json:"attribution"`

	Failed bool   `json:"failed,omitempty"`
	Error  string `json:"error,omitempty"`
	Err    error  `json:"-"`
}

// AnalyzeApp is one application's cells, in fixed configuration order.
type AnalyzeApp struct {
	App   string        `json:"app"`
	Cells []AnalyzeCell `json:"cells"`
}

// AnalyzeReport is the full analysis: every configured application against
// the attribution cell matrix (BASE, RC-SSBR, RC-SS, RC-DS window sweep).
type AnalyzeReport struct {
	Apps []AnalyzeApp `json:"apps"`
}

// analyzeCells is the attribution matrix: BASE as the reference, the two
// static models under RC, and the full DS window sweep under RC — the
// sweep along which the paper's conclusion (memory-latency-bound at small
// windows, branch-prediction-bound at large ones) must show up.
func analyzeCells() []cell {
	cells := []cell{{label: "BASE", arch: "BASE", model: consistency.SC}}
	for _, arch := range []string{"SSBR", "SS"} {
		cells = append(cells, cell{label: "RC-" + arch, arch: arch, model: consistency.RC})
	}
	for _, w := range Windows {
		cells = append(cells, cell{label: fmt.Sprintf("RC-DS%d", w), arch: "DS", model: consistency.RC, window: w})
	}
	return cells
}

// AnalyzeAll generates every application's trace concurrently, then fans the
// apps × cells attribution matrix out as one flat job list, each cell with
// its own collector. Failure containment mirrors perAppCells: a failed
// generation marks the application's cells, a failed cell is marked without
// disturbing its neighbours, and partial results return a *PartialError.
func (e *Experiment) AnalyzeAll() (*AnalyzeReport, error) {
	appNames := e.Apps()
	o := &e.opts
	cells := analyzeCells()
	nc := len(cells)

	runs := make([]*AppRun, len(appNames))
	genErrs := runJobsAll(o.Ctx, len(appNames), o.Workers, func(i int) error {
		r, err := e.Run(appNames[i])
		if err != nil {
			return err
		}
		runs[i] = r
		return nil
	})
	if err := ctxDone(o.Ctx); err != nil {
		return nil, fmt.Errorf("exp: analyze canceled: %w", err)
	}

	rep := &AnalyzeReport{Apps: make([]AnalyzeApp, len(appNames))}
	for a, app := range appNames {
		rep.Apps[a].App = app
		rep.Apps[a].Cells = make([]AnalyzeCell, nc)
		for c := range cells {
			rep.Apps[a].Cells[c] = AnalyzeCell{Label: cells[c].label, Arch: cells[c].arch, Window: cells[c].window}
		}
	}

	var failed []*CellError
	markFailed := func(a, c int, ce *CellError) {
		slot := &rep.Apps[a].Cells[c]
		slot.Failed = true
		slot.Err = ce
		slot.Error = ce.Error()
	}
	for a, gerr := range genErrs {
		if gerr == nil {
			continue
		}
		ce := &CellError{Label: appNames[a] + " (trace generation)", Index: a * nc, Attempts: 1, Err: gerr}
		failed = append(failed, ce)
		for c := range cells {
			markFailed(a, c, ce)
		}
	}

	type cellJob struct{ a, c, job int }
	var cjs []cellJob
	for a := range appNames {
		if genErrs[a] != nil {
			continue
		}
		for c := range cells {
			cjs = append(cjs, cellJob{a, c, o.Board.Enqueue(appNames[a] + " analyze " + cells[c].label)})
		}
	}
	cellErrs := runJobsAll(o.Ctx, len(cjs), o.Workers, func(j int) error {
		cj := cjs[j]
		site := appNames[cj.a] + " analyze " + cells[cj.c].label
		o.Board.Start(cj.job)
		cerr := o.attempt(site, cj.a*nc+cj.c, func() error {
			if err := o.Faults.Fire("cell." + site); err != nil {
				return err
			}
			// A fresh collector per attempt: a retried cell must not
			// accumulate the failed attempt's partial charges.
			cl := cells[cj.c]
			cp := critpath.NewCollector()
			cfg := cpu.Config{Model: cl.model, Window: cl.window, Ctx: o.Ctx, NoTimeSkip: o.NoTimeSkip, CritPath: cp}
			if cl.mutate != nil {
				cl.mutate(&cfg)
			}
			res, err := runArch(runs[cj.a].Trace, cl.arch, cfg)
			if err != nil {
				return err
			}
			slot := &rep.Apps[cj.a].Cells[cj.c]
			slot.Breakdown = res.Breakdown
			slot.Instructions = res.Instructions
			slot.Attr = cp.Attribution()
			return nil
		})
		if cerr != nil {
			o.Board.Finish(cj.job, cerr)
			return cerr
		}
		o.Board.Finish(cj.job, nil)
		return nil
	})
	if err := ctxDone(o.Ctx); err != nil {
		return nil, fmt.Errorf("exp: analyze canceled: %w", err)
	}
	for j, err := range cellErrs {
		if err == nil {
			continue
		}
		ce := err.(*CellError)
		markFailed(cjs[j].a, cjs[j].c, ce)
		failed = append(failed, ce)
	}

	if failed != nil {
		sort.Slice(failed, func(i, j int) bool { return failed[i].Index < failed[j].Index })
		return rep, &PartialError{Total: len(appNames) * nc, Cells: failed}
	}
	return rep, nil
}

// WindowDominant is one point of the sweep-level summary: the dominant
// stall cause at a window size, with cycles aggregated over applications.
type WindowDominant struct {
	Window int            `json:"window"`
	Cause  critpath.Cause `json:"-"`
	Name   string         `json:"dominant_stall"`
	Share  float64        `json:"share"` // of total execution cycles at this window
}

// DominantStallByWindow aggregates the RC-DS cells across applications and
// returns, per window, the stall cause holding the most cycles — the
// paper's conclusion rendered as data: read latency dominates small
// windows, branch refill takes over as the window grows.
func (r *AnalyzeReport) DominantStallByWindow() []WindowDominant {
	out := make([]WindowDominant, 0, len(Windows))
	for _, w := range Windows {
		label := fmt.Sprintf("RC-DS%d", w)
		var agg critpath.Attribution
		for _, app := range r.Apps {
			for _, c := range app.Cells {
				if c.Failed || c.Label != label {
					continue
				}
				agg.Total += c.Attr.Total
				for i := range agg.Cycles {
					agg.Cycles[i] += c.Attr.Cycles[i]
				}
			}
		}
		if agg.Total == 0 {
			continue
		}
		d := agg.DominantStall()
		out = append(out, WindowDominant{Window: w, Cause: d, Name: d.String(), Share: agg.Share(d)})
	}
	return out
}

// pct renders an exact-integer ratio as a fixed-precision percentage, so
// the report is deterministic across platforms and worker counts.
func pct(part, total uint64) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*float64(part)/float64(total))
}

// Format renders the report as the text tables `hidelat analyze` prints:
// per application, the cycle attribution (percent of execution time per
// cause) and the last-arriving-edge distribution (percent of retired
// instructions), then the cross-application dominant-stall summary.
func (r *AnalyzeReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Critical-path cycle attribution (top-down): %% of execution time by cause.\n")
	causes := critpath.Causes()
	for _, app := range r.Apps {
		fmt.Fprintf(&b, "\n== %s ==\n", app.App)
		tw := tabwriter.NewWriter(&b, 2, 0, 1, ' ', tabwriter.AlignRight)
		fmt.Fprint(tw, "Config\t|\tTotal\t|")
		for _, c := range causes {
			if c == critpath.InOrder {
				continue // edge-only cause: never charged cycles
			}
			fmt.Fprintf(tw, "\t%s", c)
		}
		fmt.Fprint(tw, "\t|\tdominant\t\n")
		for _, cell := range app.Cells {
			if cell.Failed {
				fmt.Fprintf(tw, "%s\t|\tFAILED\t|", cell.Label)
				for _, c := range causes {
					if c == critpath.InOrder {
						continue
					}
					fmt.Fprint(tw, "\t-")
				}
				fmt.Fprint(tw, "\t|\t-\t\n")
				continue
			}
			fmt.Fprintf(tw, "%s\t|\t%d\t|", cell.Label, cell.Attr.Total)
			for _, c := range causes {
				if c == critpath.InOrder {
					continue
				}
				fmt.Fprintf(tw, "\t%s", pct(cell.Attr.Cycles[c], cell.Attr.Total))
			}
			fmt.Fprintf(tw, "\t|\t%s\t\n", cell.Attr.DominantStall())
		}
		tw.Flush()

		fmt.Fprintf(&b, "\nLast-arriving edges (%% of retired instructions):\n")
		tw = tabwriter.NewWriter(&b, 2, 0, 1, ' ', tabwriter.AlignRight)
		fmt.Fprint(tw, "Config\t|")
		for _, c := range causes {
			fmt.Fprintf(tw, "\t%s", c)
		}
		fmt.Fprint(tw, "\t\n")
		for _, cell := range app.Cells {
			if cell.Failed {
				continue
			}
			fmt.Fprintf(tw, "%s\t|", cell.Label)
			total := cell.Attr.EdgeSum()
			for _, c := range causes {
				fmt.Fprintf(tw, "\t%s", pct(cell.Attr.Edges[c], total))
			}
			fmt.Fprint(tw, "\t\n")
		}
		tw.Flush()
	}

	if doms := r.DominantStallByWindow(); len(doms) > 0 {
		fmt.Fprintf(&b, "\nRC-DS dominant stall by window (cycles aggregated over applications):\n")
		for _, d := range doms {
			fmt.Fprintf(&b, "  W%-4d %-14s %s%%\n", d.Window, d.Name, pct(uint64(d.Share*1e6), 1e6))
		}
	}
	return b.String()
}

// FlameCells flattens the report for the Chrome-trace flamegraph export:
// one row per healthy app × config cell, in report order.
func (r *AnalyzeReport) FlameCells() []critpath.FlameCell {
	var out []critpath.FlameCell
	for _, app := range r.Apps {
		for _, c := range app.Cells {
			if c.Failed {
				continue
			}
			out = append(out, critpath.FlameCell{Name: app.App + " " + c.Label, Attr: c.Attr})
		}
	}
	return out
}

// RecordAnalyze publishes the attribution into reg under
// "critpath.<app>.<label>.": exact cycle and edge counters (which therefore
// land in the snapshot FNV checksum, the run ledger, and `hidelat diff` —
// attribution drift fails the same gates as cycle drift) plus share gauges
// for dashboards. No-op with a nil registry.
func RecordAnalyze(reg *obs.Registry, r *AnalyzeReport) {
	if reg == nil || r == nil {
		return
	}
	for _, app := range r.Apps {
		for _, c := range app.Cells {
			if c.Failed {
				continue
			}
			pre := fmt.Sprintf("critpath.%s.%s.", app.App, c.Label)
			reg.Counter(pre + "cycles.total").Set(c.Attr.Total)
			for _, cause := range critpath.Causes() {
				if n := c.Attr.Cycles[cause]; n > 0 || cause == critpath.Busy {
					reg.Counter(pre + "cycles." + cause.String()).Set(n)
				}
				if n := c.Attr.Edges[cause]; n > 0 {
					reg.Counter(pre + "edges." + cause.String()).Set(n)
				}
			}
			for _, cause := range critpath.Causes() {
				if c.Attr.Cycles[cause] > 0 {
					reg.Gauge(pre + "share." + cause.String()).Set(100 * c.Attr.Share(cause))
				}
			}
		}
	}
}
