package dist

// The coordinator: generates traces locally (the same single-flight
// Experiment cache a local sweep uses), publishes them to the
// content-addressed trace cache, feeds cells through the lease queue, and
// merges worker results by cell index into the same []AppColumns a local
// run produces. Everything HTTP-facing sits behind the admission gate
// except results — rejecting completed work only to recompute it would be
// self-inflicted load.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"dynsched/internal/cache"
	"dynsched/internal/cpu"
	"dynsched/internal/exp"
	"dynsched/internal/faultinject"
	"dynsched/internal/obs"
)

// Defaults for Config's zero values.
const (
	DefaultLease     = 10 * time.Second
	DefaultQueueMax  = 1024
	DefaultMaxActive = 64
)

// Config parameterizes a Coordinator.
type Config struct {
	// Lease is how long a claimed cell stays assigned without a heartbeat
	// before it is reclaimed. Zero means DefaultLease.
	Lease time.Duration
	// Retries is the per-cell retry budget (attempts = Retries+1), matching
	// exp.Options.Retries semantics.
	Retries int
	// RetryBackoff / RetryMaxBackoff shape the requeue delay after a failed
	// attempt; zero values take exp's defaults.
	RetryBackoff    time.Duration
	RetryMaxBackoff time.Duration
	// QueueMax bounds the admission queue; past it requests get 429. Zero
	// means DefaultQueueMax.
	QueueMax int
	// MaxActive bounds concurrently served requests. Zero means
	// DefaultMaxActive.
	MaxActive int
	// Board, when set, mirrors every cell onto the observability job board.
	Board *obs.JobBoard
	// Cache, when set, is the persistent result cache: cells whose result
	// is already cached are served without ever entering a worker's claim,
	// and worker-computed results are admitted into the cache — but only
	// after the resultCheck checksum (the 409-recompute path) accepted
	// them, so a corrupted report can no more poison the cache than the
	// merge.
	Cache *cache.Store
	// Faults is the test-only injector; the coordinator carries the
	// "dist.trace.serve" site (corrupt a trace transfer).
	Faults *faultinject.Injector
	// Now overrides the clock for tests.
	Now func() time.Time
}

// Coordinator owns one distributed sweep: the trace cache, the lease
// queue, and the HTTP surface workers talk to.
type Coordinator struct {
	cfg  Config
	q    *queue
	gate *gate

	mu     sync.Mutex
	traces map[string][]byte // content address → serialized v3 trace
}

// New creates a coordinator with cfg's zero values defaulted.
func New(cfg Config) *Coordinator {
	if cfg.Lease <= 0 {
		cfg.Lease = DefaultLease
	}
	if cfg.QueueMax <= 0 {
		cfg.QueueMax = DefaultQueueMax
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = DefaultMaxActive
	}
	if cfg.Board == nil {
		cfg.Board = obs.NewJobBoard()
	}
	co := &Coordinator{
		cfg:    cfg,
		q:      newQueue(cfg.Lease, cfg.Retries, cfg.RetryBackoff, cfg.RetryMaxBackoff, cfg.Board, cfg.Now),
		gate:   newGate(cfg.MaxActive, cfg.QueueMax),
		traces: make(map[string][]byte),
	}
	if cfg.Cache != nil {
		// Checksum-verified worker results feed the persistent cache, so the
		// next sweep over the same traces starts warm.
		co.q.onDone = func(traceFNV string, spec exp.CellSpec, b cpu.Breakdown, instructions uint64) {
			exp.CellCachePut(cfg.Cache, traceFNV, spec, b, instructions)
		}
	}
	return co
}

// AddTrace publishes a serialized trace to the content-addressed cache and
// returns its address.
func (co *Coordinator) AddTrace(data []byte) string {
	addr := traceAddr(data)
	co.mu.Lock()
	co.traces[addr] = data
	co.mu.Unlock()
	return addr
}

// Handler returns the coordinator's HTTP surface.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(pathClaim, co.admitted(co.handleClaim))
	mux.HandleFunc(pathHeartbeat, co.admitted(co.handleHeartbeat))
	mux.HandleFunc(pathTraces, co.admitted(co.handleTrace))
	// Results bypass admission: never turn away finished work.
	mux.HandleFunc(pathResult, co.handleResult)
	mux.HandleFunc(pathState, co.handleState)
	return mux
}

// admitted wraps h with the fair admission gate, keyed by worker id (falling
// back to the peer host), answering 429 + Retry-After past the high-water
// mark.
func (co *Coordinator) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		client := r.Header.Get(workerHeader)
		if client == "" {
			if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
				client = host
			} else {
				client = r.RemoteAddr
			}
		}
		if err := co.gate.acquire(r.Context(), client); err != nil {
			if errors.Is(err, errSaturated) {
				w.Header().Set("Retry-After", "1")
				http.Error(w, "coordinator saturated", http.StatusTooManyRequests)
				return
			}
			// Canceled while queued; the client is gone.
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		defer co.gate.release()
		h(w, r)
	}
}

func (co *Coordinator) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req claimRequest
	if !decodePost(w, r, &req) {
		return
	}
	job, resp := co.q.claim(req.Worker)
	if job != nil {
		resp = &claimResponse{Job: job}
	}
	writeJSON(w, resp)
}

func (co *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req resultRequest
	if !decodePost(w, r, &req) {
		return
	}
	found, ok := co.q.result(req)
	if !found {
		http.Error(w, "unknown job id", http.StatusNotFound)
		return
	}
	if !ok {
		http.Error(w, "result checksum mismatch", http.StatusConflict)
		return
	}
	writeJSON(w, okResponse{OK: true})
}

func (co *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !decodePost(w, r, &req) {
		return
	}
	co.q.heartbeat(req.Worker, req.IDs)
	writeJSON(w, okResponse{OK: true})
}

func (co *Coordinator) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	addr := strings.TrimPrefix(r.URL.Path, pathTraces)
	co.mu.Lock()
	data := co.traces[addr]
	co.mu.Unlock()
	if data == nil {
		http.Error(w, "unknown trace", http.StatusNotFound)
		return
	}
	if err := co.cfg.Faults.Fire("dist.trace.serve"); err != nil {
		// Simulated transfer corruption: serve a copy with one bit flipped.
		// The worker's checksum verification must catch it and re-fetch.
		bad := append([]byte(nil), data...)
		faultinject.CorruptByte("dist.trace.serve", bad)
		data = bad
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

func (co *Coordinator) handleState(w http.ResponseWriter, r *http.Request) {
	queued, leased, done, failed, expected := co.q.counts()
	active, waiting := co.gate.status()
	writeJSON(w, map[string]int{
		"queued": queued, "leased": leased, "done": done, "failed": failed,
		"expected": expected, "admitted": active, "admission_queued": waiting,
	})
}

func decodePost(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// Server is a running coordinator endpoint.
type Server struct {
	Addr string
	srv  *http.Server
}

// StartServer serves co on addr (host:port, port 0 for ephemeral) in the
// background.
func StartServer(addr string, co *Coordinator) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: co.Handler()}
	go srv.Serve(ln)
	return &Server{Addr: ln.Addr().String(), srv: srv}, nil
}

// Shutdown stops the server gracefully.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// Close stops the server immediately.
func (s *Server) Close() error { return s.srv.Close() }

// RunSweep drives one distributed sweep to completion: generate every
// application's trace locally (bounded by the experiment's worker count),
// publish each to the trace cache, enqueue its cells, wait for remote
// workers to resolve them, and merge by cell index. The merged columns are
// byte-identical to the in-process scheduler's at any worker count and
// under any failure schedule; an application whose generation fails, and
// any cell that exhausts its retry budget, degrade to FAILED columns plus
// a *exp.PartialError, exactly like a local run.
func RunSweep(ctx context.Context, e *exp.Experiment, specs []exp.CellSpec, co *Coordinator) ([]exp.AppColumns, error) {
	apps := e.Apps()
	nc := len(specs)
	if nc == 0 {
		return nil, errors.New("dist: no cells to sweep")
	}
	if err := co.q.start(len(apps) * nc); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	// Generate and enqueue, bounded like the local sweep's generation stage.
	genWorkers := e.Options().Workers
	if genWorkers < 1 {
		genWorkers = 1
	}
	genCE := make([]*exp.CellError, len(apps))
	sem := make(chan struct{}, genWorkers)
	var wg sync.WaitGroup
	for a, app := range apps {
		wg.Add(1)
		go func(a int, app string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			run, err := e.Run(app)
			if err != nil {
				// One failure entry for the whole app, mirroring perAppCells:
				// its cells never enter the queue.
				genCE[a] = &exp.CellError{
					Label: app + " (trace generation)", Index: a * nc, Attempts: 1, Err: err,
				}
				co.q.discount(nc)
				return
			}
			var buf bytes.Buffer
			if _, err := run.TraceView().WriteTo(&buf); err != nil {
				genCE[a] = &exp.CellError{
					Label: app + " (trace generation)", Index: a * nc, Attempts: 1,
					Err: fmt.Errorf("serialize trace: %w", err),
				}
				co.q.discount(nc)
				return
			}
			addr := co.AddTrace(buf.Bytes())
			co.q.addApp(a, app, specs, addr)
			// Serve cached cell results immediately: the cells resolve
			// before any worker claims them, and the board reports them as
			// cached. Misses stay queued for the workers.
			for c, spec := range specs {
				if b, instructions, ok := exp.CellCacheGet(co.cfg.Cache, addr, spec); ok {
					co.q.satisfy(a*nc+c, b, instructions)
				}
			}
		}(a, app)
	}
	wg.Wait()

	if err := co.q.wait(ctx); err != nil {
		return nil, fmt.Errorf("dist: sweep canceled: %w", err)
	}

	// Merge by cell index — the same layout perAppCells fills.
	out := make([]exp.AppColumns, len(apps))
	var failures []*exp.CellError
	for a, app := range apps {
		cols := make([]exp.Column, nc)
		if ce := genCE[a]; ce != nil {
			failures = append(failures, ce)
			for c := range specs {
				cols[c] = exp.FailedSpecColumn(specs[c], ce)
			}
			exp.NormalizeColumns(cols)
			out[a] = exp.AppColumns{App: app, Cols: cols}
			continue
		}
		for c := range specs {
			b, instructions, cerr := co.q.outcome(a*nc + c)
			if cerr != nil {
				failures = append(failures, cerr)
				cols[c] = exp.FailedSpecColumn(specs[c], cerr)
				continue
			}
			col, err := exp.SpecColumn(specs[c], b, instructions)
			if err != nil {
				return nil, fmt.Errorf("dist: rebuild column %q: %w", specs[c].Label, err)
			}
			cols[c] = col
		}
		exp.NormalizeColumns(cols)
		out[a] = exp.AppColumns{App: app, Cols: cols}
	}
	if len(failures) > 0 {
		sort.Slice(failures, func(i, j int) bool { return failures[i].Index < failures[j].Index })
		return out, &exp.PartialError{Total: len(apps) * nc, Cells: failures}
	}
	return out, nil
}
