package dist

// Admission control for the coordinator: a bounded two-stage gate. At most
// maxActive requests run at once; up to maxQueued more wait; past that
// high-water mark acquire fails immediately and the handler answers 429
// with Retry-After, so a thundering herd of claims queues (or sheds)
// instead of piling goroutines onto the coordinator. Waiters drain fairly:
// FIFO within a client, round-robin across clients, so one aggressive
// worker cannot starve the rest.

import (
	"context"
	"errors"
	"sync"
)

// errSaturated is acquire's answer past the high-water mark.
var errSaturated = errors.New("dist: admission queue full")

type waiter struct {
	ch chan struct{}
	// dead marks a waiter whose request was canceled while queued; release
	// discards it instead of granting.
	dead bool
}

type gate struct {
	mu        sync.Mutex
	active    int
	maxActive int
	queued    int
	maxQueued int

	// clients holds each client's FIFO of waiters; ring lists the client ids
	// that have waiters, in round-robin grant order, with next as the cursor.
	clients map[string][]*waiter
	ring    []string
	next    int
}

func newGate(maxActive, maxQueued int) *gate {
	if maxActive < 1 {
		maxActive = 1
	}
	if maxQueued < 0 {
		maxQueued = 0
	}
	return &gate{maxActive: maxActive, maxQueued: maxQueued, clients: make(map[string][]*waiter)}
}

// acquire takes a slot for client, waiting in the fair queue when all slots
// are busy. It returns errSaturated past the high-water mark and ctx's
// error if canceled while waiting. Every successful acquire must be paired
// with release.
func (g *gate) acquire(ctx context.Context, client string) error {
	g.mu.Lock()
	if g.active < g.maxActive {
		g.active++
		g.mu.Unlock()
		return nil
	}
	if g.queued >= g.maxQueued {
		g.mu.Unlock()
		return errSaturated
	}
	w := &waiter{ch: make(chan struct{}, 1)}
	if _, ok := g.clients[client]; !ok {
		g.ring = append(g.ring, client)
	}
	g.clients[client] = append(g.clients[client], w)
	g.queued++
	g.mu.Unlock()

	select {
	case <-w.ch:
		// Granted: release transferred the slot to us (active unchanged).
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		select {
		case <-w.ch:
			// The grant raced the cancellation; hand the slot to the next
			// waiter rather than leaking it.
			g.mu.Unlock()
			g.release()
		default:
			w.dead = true
			g.queued--
			g.mu.Unlock()
		}
		return ctx.Err()
	}
}

// release frees a slot: the next live waiter (round-robin across clients,
// FIFO within one) inherits it, otherwise the active count drops.
func (g *gate) release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for len(g.ring) > 0 {
		if g.next >= len(g.ring) {
			g.next = 0
		}
		client := g.ring[g.next]
		q := g.clients[client]
		for len(q) > 0 && q[0].dead {
			q = q[1:]
		}
		if len(q) == 0 {
			delete(g.clients, client)
			g.ring = append(g.ring[:g.next], g.ring[g.next+1:]...)
			continue
		}
		w := q[0]
		q = q[1:]
		if len(q) == 0 {
			delete(g.clients, client)
			g.ring = append(g.ring[:g.next], g.ring[g.next+1:]...)
		} else {
			g.clients[client] = q
			g.next++
		}
		g.queued--
		w.ch <- struct{}{}
		return
	}
	g.active--
}

// status reports the gate's counters for /state.
func (g *gate) status() (active, queued int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.active, g.queued
}
