// Package dist is the fault-tolerant distributed sweep service: a
// coordinator that shards the replay cells of a figure or window sweep to
// remote workers over HTTP, designed failure-first. The paper's evaluation
// is an embarrassingly parallel matrix of independent trace replays, so the
// only hard problem is keeping the merged output byte-identical while
// workers crash, stall, and reconnect — which this package treats as the
// contract, not a best effort:
//
//   - Work moves through a lease-based queue. A worker claims a cell
//     (POST /jobs/claim), holds it under a lease renewed by heartbeats
//     (POST /jobs/heartbeat), and reports the replayed numbers back with the
//     cell index (POST /jobs/result). A missed lease means the cell is
//     reclaimed and reassigned; per-cell attempt counts reuse the exp
//     retry/backoff semantics (capped doubling with deterministic jitter),
//     and a cell that keeps failing degrades to the existing
//     *exp.PartialError / FAILED-cell path instead of sinking the run.
//   - Traces travel through a content-addressed cache (GET /traces/{fnv}):
//     the address is the FNV-64a of the serialized v3 trace, the v3 format
//     carries per-chunk CRCs plus a whole-file checksum, and the worker
//     re-verifies both, so a corrupted transfer is a retried fetch, never a
//     wrong answer.
//   - Admission control bounds the coordinator: past the high-water mark of
//     queued requests, claims answer 429 with Retry-After, and the waiters
//     drain fairly (FIFO per client, round-robin across clients).
//
// Results merge by cell index exactly as exp's in-process scheduler does,
// and a replay is a pure function of (trace, spec), so the merged columns —
// and the run ledger's determinism checksum — are byte-identical to a
// single-process run at any topology, any worker count, and under any
// failure schedule. The chaos test drives exactly that claim.
package dist

import (
	"fmt"
	"hash/fnv"

	"dynsched/internal/cpu"
	"dynsched/internal/exp"
)

// HTTP endpoints served by the coordinator.
const (
	pathClaim     = "/jobs/claim"
	pathResult    = "/jobs/result"
	pathHeartbeat = "/jobs/heartbeat"
	pathTraces    = "/traces/"
	pathState     = "/state"
)

// workerHeader carries the worker id on every request, for per-client
// admission fairness.
const workerHeader = "X-Dist-Worker"

// claimRequest asks for one cell to replay.
type claimRequest struct {
	Worker string `json:"worker"`
}

// claimResponse is the coordinator's answer: a job, "come back later", or
// "the sweep is complete".
type claimResponse struct {
	Done             bool           `json:"done,omitempty"`
	Wait             bool           `json:"wait,omitempty"`
	RetryAfterMillis int64          `json:"retry_after_ms,omitempty"`
	Job              *jobAssignment `json:"job,omitempty"`
}

// jobAssignment is one leased cell: the serializable spec, the address of
// the trace to replay it over, and the lease the worker must renew.
type jobAssignment struct {
	ID          int          `json:"id"` // cell index: app*cells+cell, the merge key
	App         string       `json:"app"`
	Label       string       `json:"label"` // sweep-unique, "mp3d RC-DS64"
	Spec        exp.CellSpec `json:"spec"`
	TraceFNV    string       `json:"trace_fnv"`
	Attempt     int          `json:"attempt"`
	LeaseMillis int64        `json:"lease_ms"`
}

// resultRequest reports a finished cell: the replayed numbers plus a
// checksum, or the failure and whether exp's retry policy calls it
// permanent.
type resultRequest struct {
	Worker       string        `json:"worker"`
	ID           int           `json:"id"`
	Breakdown    cpu.Breakdown `json:"breakdown"`
	Instructions uint64        `json:"instructions"`
	Check        string        `json:"check,omitempty"`
	Error        string        `json:"error,omitempty"`
	Permanent    bool          `json:"permanent,omitempty"`
}

// heartbeatRequest renews the leases of the worker's in-flight jobs.
type heartbeatRequest struct {
	Worker string `json:"worker"`
	IDs    []int  `json:"ids"`
}

type okResponse struct {
	OK bool `json:"ok"`
}

// traceAddr is the content address of a serialized trace: FNV-64a over the
// exact bytes served. The worker recomputes it over what it received, so a
// transfer corrupted in a way the v3 CRCs somehow missed still fails the
// address check and is retried.
func traceAddr(data []byte) string {
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// resultCheck is the end-to-end checksum of one cell result. Both sides
// compute it over the numbers plus the cell index, so a result corrupted in
// flight — or attached to the wrong job — is rejected (409) and re-sent
// rather than merged.
func resultCheck(id int, b cpu.Breakdown, instructions uint64) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%d|%d|%d|%d|%d",
		id, b.Busy, b.Sync, b.Read, b.Write, b.Branch, b.Other, instructions)
	return fmt.Sprintf("%016x", h.Sum64())
}
