package dist

// The worker: a claim → fetch → replay → report loop built to be SIGKILL-
// safe at every point. Nothing a worker does is load-bearing until its
// result lands on the coordinator: a worker killed holding a lease just
// lets the lease expire, one killed mid-fetch or mid-replay changed no
// shared state, and a duplicate report after a reclaim is acknowledged and
// discarded because deterministic replay makes every copy identical. The
// worker needs no configuration from the coordinator beyond the job itself:
// a replay is a pure function of (trace, spec) — exp.Options only carries
// scheduling knobs that cannot change the numbers.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"sync"
	"time"

	"dynsched/internal/exp"
	"dynsched/internal/faultinject"
	"dynsched/internal/trace"
)

// WorkerConfig parameterizes a Worker.
type WorkerConfig struct {
	// ID names this worker to the coordinator; empty derives host-pid.
	ID string
	// Coordinator is the base URL, e.g. "http://127.0.0.1:8377".
	Coordinator string
	// Client overrides the HTTP client (tests shorten timeouts).
	Client *http.Client
	// Faults is the test-only injector; the worker carries the sites
	// "worker.claim", "worker.fetch", "worker.replay" and "worker.post".
	Faults *faultinject.Injector
}

// Worker runs the claim/replay/report loop against one coordinator.
type Worker struct {
	cfg  WorkerConfig
	base *url.URL

	mu     sync.Mutex
	traces map[string]*trace.Trace // content address → decoded trace

	hbIDs chan []int // current lease set for the heartbeat loop
}

// NewWorker validates cfg and returns a worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, errors.New("dist: worker needs a coordinator URL")
	}
	u, err := url.Parse(cfg.Coordinator)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("dist: bad coordinator URL %q (want http://host:port)", cfg.Coordinator)
	}
	if cfg.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		cfg.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Worker{
		cfg: cfg, base: u,
		traces: make(map[string]*trace.Trace),
		hbIDs:  make(chan []int, 1),
	}, nil
}

// ID returns the worker's identity as sent to the coordinator.
func (w *Worker) ID() string { return w.cfg.ID }

// Run claims and replays cells until the coordinator reports the sweep done
// or ctx cancels. It returns the number of cells it resolved. An injected
// fault at "worker.claim" or "worker.post" makes Run return early — the
// simulated crash the chaos test uses; a real crash (SIGKILL) is equivalent
// and equally safe.
func (w *Worker) Run(ctx context.Context) (int, error) {
	hbCtx, stopHB := context.WithCancel(ctx)
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() { defer hbWG.Done(); w.heartbeatLoop(hbCtx) }()
	// LIFO: cancel the heartbeat context first, then wait the loop out.
	defer hbWG.Wait()
	defer stopHB()

	resolved := 0
	claimFailures := 0
	for {
		if err := ctx.Err(); err != nil {
			return resolved, err
		}
		if err := w.cfg.Faults.Fire("worker.claim"); err != nil {
			return resolved, err // simulated crash before claiming
		}
		resp, err := w.claim(ctx)
		if err != nil {
			claimFailures++
			if claimFailures > 10 {
				return resolved, fmt.Errorf("dist: coordinator unreachable: %w", err)
			}
			if !sleepCtx(ctx, 200*time.Millisecond) {
				return resolved, ctx.Err()
			}
			continue
		}
		claimFailures = 0
		switch {
		case resp.Done:
			return resolved, nil
		case resp.Job == nil:
			wait := time.Duration(resp.RetryAfterMillis) * time.Millisecond
			if wait <= 0 {
				wait = 100 * time.Millisecond
			}
			if !sleepCtx(ctx, wait) {
				return resolved, ctx.Err()
			}
			continue
		}
		job := resp.Job
		w.setLeases([]int{job.ID})
		ok, err := w.runJob(ctx, job)
		w.setLeases(nil)
		if err != nil {
			return resolved, err // simulated crash mid-job
		}
		if ok {
			resolved++
		}
	}
}

// runJob fetches the job's trace, replays the cell, and reports the
// outcome. A non-nil error means the worker itself should stop (simulated
// crash); a replay failure is reported to the coordinator instead.
func (w *Worker) runJob(ctx context.Context, job *jobAssignment) (bool, error) {
	tr, err := w.getTrace(ctx, job.TraceFNV)
	if err != nil {
		// Could not obtain a verified trace; report a transient failure so
		// the coordinator requeues under the cell's retry budget.
		return false, w.report(ctx, resultRequest{
			Worker: w.cfg.ID, ID: job.ID, Error: err.Error(),
		})
	}
	if err := w.cfg.Faults.Fire("worker.replay"); err != nil {
		return false, w.report(ctx, resultRequest{
			Worker: w.cfg.ID, ID: job.ID, Error: err.Error(),
		})
	}
	col, err := replaySpec(ctx, tr, job.Spec)
	if err != nil {
		return false, w.report(ctx, resultRequest{
			Worker: w.cfg.ID, ID: job.ID, Error: err.Error(),
			Permanent: exp.IsPermanent(err),
		})
	}
	req := resultRequest{
		Worker: w.cfg.ID, ID: job.ID,
		Breakdown: col.Breakdown, Instructions: col.Instructions,
		Check: resultCheck(job.ID, col.Breakdown, col.Instructions),
	}
	if err := w.cfg.Faults.Fire("worker.post"); err != nil {
		return false, err // simulated crash after replaying, before reporting
	}
	if err := w.report(ctx, req); err != nil {
		return false, err
	}
	return true, nil
}

// replaySpec runs one cell with the same panic containment the local
// scheduler gives cells: a panicking replay becomes a reported failure, not
// a dead worker.
func replaySpec(ctx context.Context, tr *trace.Trace, spec exp.CellSpec) (col exp.Column, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("dist: replay panicked: %v", r)
		}
	}()
	return exp.RunSpec(tr, spec, &exp.Options{Ctx: ctx})
}

// getTrace returns the decoded trace at addr, fetching and verifying it on
// first use. Verification is two layers: the FNV content address over the
// exact bytes received, then the v3 per-chunk CRCs and file checksum during
// decode. A fetch that fails either check is retried — corruption degrades
// to latency, never to a wrong answer.
func (w *Worker) getTrace(ctx context.Context, addr string) (*trace.Trace, error) {
	w.mu.Lock()
	tr := w.traces[addr]
	w.mu.Unlock()
	if tr != nil {
		return tr, nil
	}
	var lastErr error
	for attempt := 1; attempt <= 3; attempt++ {
		if err := w.cfg.Faults.Fire("worker.fetch"); err != nil {
			lastErr = err
			continue
		}
		data, err := w.fetch(ctx, addr)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				break
			}
			continue
		}
		if got := traceAddr(data); got != addr {
			lastErr = fmt.Errorf("trace %s arrived with content address %s", addr, got)
			continue
		}
		decoded, err := trace.ReadTrace(bytes.NewReader(data))
		if err != nil {
			lastErr = fmt.Errorf("trace %s failed checksum verification: %w", addr, err)
			continue
		}
		tr = decoded.Freeze()
		w.mu.Lock()
		w.traces[addr] = tr
		w.mu.Unlock()
		return tr, nil
	}
	return nil, fmt.Errorf("dist: fetch trace %s: %w", addr, lastErr)
}

func (w *Worker) fetch(ctx context.Context, addr string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.endpoint(pathTraces+addr), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(workerHeader, w.cfg.ID)
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		sleepCtx(ctx, retryAfter(resp))
		return nil, errors.New("coordinator saturated")
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", addr, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// claim asks for one job, honoring 429 Retry-After.
func (w *Worker) claim(ctx context.Context) (*claimResponse, error) {
	var resp claimResponse
	status, err := w.postJSON(ctx, pathClaim, claimRequest{Worker: w.cfg.ID}, &resp)
	if err != nil {
		return nil, err
	}
	if status == http.StatusTooManyRequests {
		return &claimResponse{Wait: true, RetryAfterMillis: 1000}, nil
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("claim: status %d", status)
	}
	return &resp, nil
}

// report delivers one result, retrying transient transport errors and
// checksum rejections (409). A 404 means the job vanished (sweep torn
// down); the result is simply dropped. The returned error only reflects
// giving up on delivery, which the lease mechanism then covers.
func (w *Worker) report(ctx context.Context, r resultRequest) error {
	var lastErr error
	for attempt := 1; attempt <= 5; attempt++ {
		var ok okResponse
		status, err := w.postJSON(ctx, pathResult, r, &ok)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if !sleepCtx(ctx, time.Duration(attempt)*100*time.Millisecond) {
				return ctx.Err()
			}
			continue
		}
		switch status {
		case http.StatusOK, http.StatusNotFound:
			return nil
		case http.StatusConflict:
			// The transfer mangled the payload; recompute and re-send.
			r.Check = resultCheck(r.ID, r.Breakdown, r.Instructions)
			lastErr = errors.New("result rejected: checksum mismatch")
			continue
		default:
			lastErr = fmt.Errorf("result: status %d", status)
		}
	}
	return fmt.Errorf("dist: deliver result for cell %d: %w", r.ID, lastErr)
}

// heartbeatLoop renews the worker's current leases. It learns the lease set
// through setLeases and posts every interval; delivery failures are ignored
// (a missed heartbeat is exactly the failure leases exist to absorb).
func (w *Worker) heartbeatLoop(ctx context.Context) {
	interval := 500 * time.Millisecond
	var ids []int
	for {
		select {
		case <-ctx.Done():
			return
		case ids = <-w.hbIDs:
		case <-time.After(interval):
		}
		if len(ids) == 0 {
			continue
		}
		var ok okResponse
		w.postJSON(ctx, pathHeartbeat, heartbeatRequest{Worker: w.cfg.ID, IDs: ids}, &ok)
	}
}

func (w *Worker) setLeases(ids []int) {
	// Replace any stale pending update so the loop always sees the latest.
	select {
	case <-w.hbIDs:
	default:
	}
	w.hbIDs <- ids
}

func (w *Worker) postJSON(ctx context.Context, path string, body, out any) (int, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.endpoint(path), &buf)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(workerHeader, w.cfg.ID)
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return 0, err
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, nil
}

func (w *Worker) endpoint(path string) string {
	u := *w.base
	u.Path = path
	return u.String()
}

func retryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return time.Duration(n) * time.Second
		}
	}
	return time.Second
}

// sleepCtx sleeps for d or until ctx cancels; it reports whether the full
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
