package dist

// The determinism-under-failure gate. A distributed Figure 3 sweep runs
// with faultinject-armed workers — one crashes after replaying a cell but
// before reporting it (its lease expires and the cell is reclaimed), one
// stumbles through a corrupted trace transfer and a failed fetch, one is
// artificially slowed — and the merged columns plus the metrics-registry
// FNV must come out byte-identical to the single-process scheduler's. The
// paper's numbers cannot depend on which machine computed them, or on what
// broke along the way.

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"dynsched/internal/apps"
	"dynsched/internal/cache"
	"dynsched/internal/exp"
	"dynsched/internal/faultinject"
	"dynsched/internal/obs"
)

func smallOpts(appNames ...string) exp.Options {
	opts := exp.DefaultOptions()
	opts.Scale = apps.ScaleSmall
	opts.Apps = appNames
	opts.Workers = 2
	return opts
}

// columnsFNV records cols under the step name the CLI uses and returns the
// registry checksum — the same value the run ledger stores as metrics_fnv.
func columnsFNV(figure string, acs []exp.AppColumns) string {
	reg := obs.NewRegistry()
	for _, ac := range acs {
		exp.RecordColumns(reg, figure, ac.App, ac.Cols)
	}
	return obs.SnapshotFNV(reg.Snapshot())
}

func TestChaosDistributedFigure3Determinism(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is seconds long")
	}
	appNames := []string{"mp3d", "ocean"}
	specs, ok := exp.SweepSpecs("fig3")
	if !ok {
		t.Fatal("fig3 specs missing")
	}

	// Reference: the in-process scheduler, two workers.
	want, err := exp.New(smallOpts(appNames...)).Figure3All()
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	wantFNV := columnsFNV("fig3", want)

	// Distributed run under an adversarial failure schedule.
	coFaults := faultinject.New()
	// The first trace transfer is corrupted in flight; checksum verification
	// must turn it into a retried fetch.
	coFaults.Arm("dist.trace.serve", faultinject.Fault{Kind: faultinject.KindError, Times: 1})
	co := New(Config{
		Lease:        400 * time.Millisecond,
		Retries:      3,
		RetryBackoff: time.Millisecond,
		Faults:       coFaults,
	})
	srv, err := StartServer("127.0.0.1:0", co)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	baseURL := "http://" + srv.Addr

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	// Worker 1 "crashes": after replaying its first cell it dies without
	// reporting, so the coordinator must expire the lease and reassign.
	crashFaults := faultinject.New()
	crashFaults.Arm("worker.post", faultinject.Fault{Kind: faultinject.KindError, Times: 1})
	w1, err := NewWorker(WorkerConfig{ID: "crasher", Coordinator: baseURL, Faults: crashFaults})
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := w1.Run(ctx); err == nil {
			t.Error("crashing worker returned nil, want the injected crash")
		}
	}()

	// Worker 2 survives a failed trace fetch and an artificial slowdown.
	slowFaults := faultinject.New()
	slowFaults.Arm("worker.fetch", faultinject.Fault{Kind: faultinject.KindError, Times: 1})
	slowFaults.Arm("worker.replay", faultinject.Fault{Kind: faultinject.KindSlow, Times: 2, Delay: 50 * time.Millisecond})
	w2, err := NewWorker(WorkerConfig{ID: "survivor", Coordinator: baseURL, Faults: slowFaults})
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Done from the coordinator or our own post-sweep cancel are both
		// clean exits.
		if _, err := w2.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("surviving worker: %v", err)
		}
	}()

	// A replacement worker joins late, as a restarted process would.
	w3, err := NewWorker(WorkerConfig{ID: "replacement", Coordinator: baseURL})
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(300 * time.Millisecond)
		if _, err := w3.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("replacement worker: %v", err)
		}
	}()

	got, err := RunSweep(ctx, exp.New(smallOpts(appNames...)), specs, co)
	cancel() // release any worker still polling
	wg.Wait()
	if err != nil {
		t.Fatalf("distributed sweep: %v", err)
	}

	// The contract: merged columns and the ledger checksum are byte-identical
	// to the single-process run, despite the kills, stalls, and corruption.
	if !reflect.DeepEqual(got, want) {
		t.Errorf("distributed columns differ from single-process reference")
		for a := range want {
			if !reflect.DeepEqual(got[a], want[a]) {
				t.Errorf("app %s:\n got  %+v\n want %+v", want[a].App, got[a], want[a])
			}
		}
	}
	if gotFNV := columnsFNV("fig3", got); gotFNV != wantFNV {
		t.Errorf("metrics FNV %s, want %s", gotFNV, wantFNV)
	}
	// The failures actually happened.
	if coFaults.Fired("dist.trace.serve") != 1 {
		t.Error("trace corruption never fired")
	}
	if crashFaults.Fired("worker.post") != 1 {
		t.Error("worker crash never fired")
	}
	if slowFaults.Fired("worker.fetch") != 1 {
		t.Error("fetch failure never fired")
	}
}

// A cell that fails on every attempt degrades to the FAILED-column /
// PartialError path — the sweep completes, the healthy cells survive, and
// the failure is attributed to the right cell index.
func TestChaosPermanentCellFailureDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is seconds long")
	}
	specs, _ := exp.SweepSpecs("fig3")
	co := New(Config{Lease: time.Second, Retries: 0, RetryBackoff: time.Millisecond})
	srv, err := StartServer("127.0.0.1:0", co)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// The worker's first replay fails; with a zero retry budget that cell is
	// terminally failed while every other cell proceeds.
	wFaults := faultinject.New()
	wFaults.Arm("worker.replay", faultinject.Fault{Kind: faultinject.KindError, Times: 1})
	w, err := NewWorker(WorkerConfig{ID: "w", Coordinator: "http://" + srv.Addr, Faults: wFaults})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.Run(ctx)
	}()

	acs, err := RunSweep(ctx, exp.New(smallOpts("mp3d")), specs, co)
	cancel()
	wg.Wait()
	var pe *exp.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if len(pe.Cells) != 1 || pe.Total != len(specs) {
		t.Fatalf("PartialError = %+v, want exactly one failed cell of %d", pe, len(specs))
	}
	failed := 0
	for _, c := range acs[0].Cols {
		if c.Failed {
			failed++
			var ce *exp.CellError
			if !errors.As(c.Err, &ce) || ce.Index != pe.Cells[0].Index {
				t.Errorf("failed column carries %v, want *CellError at index %d", c.Err, pe.Cells[0].Index)
			}
		} else if c.Instructions == 0 {
			t.Errorf("healthy column %q has no instructions", c.Label)
		}
	}
	if failed != 1 {
		t.Fatalf("%d FAILED columns, want 1", failed)
	}
}

func TestNewWorkerValidatesURL(t *testing.T) {
	for _, bad := range []string{"", "not a url", "127.0.0.1:8377", "http://"} {
		if _, err := NewWorker(WorkerConfig{Coordinator: bad}); err == nil {
			t.Errorf("NewWorker(%q) accepted a bad coordinator URL", bad)
		}
	}
	w, err := NewWorker(WorkerConfig{Coordinator: "http://127.0.0.1:8377"})
	if err != nil {
		t.Fatal(err)
	}
	if w.ID() == "" {
		t.Error("default worker id is empty")
	}
}

// The incremental-sweep path: run 1 computes through a worker and the
// coordinator admits every checksum-verified result into the store; run 2,
// against the warm store, must merge byte-identical columns without a
// single worker process.
func TestDistributedSweepFillsAndServesCache(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed sweep is seconds long")
	}
	appNames := []string{"mp3d"}
	specs, _ := exp.SweepSpecs("fig3")
	want, err := exp.New(smallOpts(appNames...)).Figure3All()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	store1, err := cache.Open(dir, cache.Options{Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	co := New(Config{Lease: 400 * time.Millisecond, Retries: 1, RetryBackoff: time.Millisecond, Cache: store1})
	srv, err := StartServer("127.0.0.1:0", co)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	w, err := NewWorker(WorkerConfig{ID: "filler", Coordinator: "http://" + srv.Addr})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("worker: %v", err)
		}
	}()
	got1, err := RunSweep(ctx, exp.New(smallOpts(appNames...)), specs, co)
	cancel()
	wg.Wait()
	if err != nil {
		t.Fatalf("cold distributed sweep: %v", err)
	}
	if !reflect.DeepEqual(got1, want) {
		t.Fatal("cold distributed columns differ from reference")
	}
	if st := store1.Stats(); st.Entries != len(specs) {
		t.Fatalf("store holds %d entries after the cold sweep, want %d admitted cells", st.Entries, len(specs))
	}

	// Warm: the coordinator satisfies every cell from the store before any
	// worker could claim it — no worker runs at all.
	store2, err := cache.Open(dir, cache.Options{Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	co2 := New(Config{Lease: 400 * time.Millisecond, Retries: 1, RetryBackoff: time.Millisecond, Cache: store2})
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	got2, err := RunSweep(ctx2, exp.New(smallOpts(appNames...)), specs, co2)
	if err != nil {
		t.Fatalf("warm distributed sweep: %v", err)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Fatal("warm distributed columns differ from reference")
	}
	if got := store2.Hits(); got != uint64(len(specs)) {
		t.Fatalf("warm sweep hit %d cells, want all %d", got, len(specs))
	}
}
