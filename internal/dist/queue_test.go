package dist

// Unit tests for the lease queue and the admission gate, on a fake clock:
// lease expiry and reclamation, the retry budget degrading to CellError,
// duplicate and corrupted results, and fair bounded admission.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"dynsched/internal/cpu"
	"dynsched/internal/exp"
	"dynsched/internal/obs"
)

// testQueue builds a queue on a fake clock holding the first n Figure 3
// cells of one app.
func testQueue(t *testing.T, n, retries int) (*queue, *time.Time) {
	t.Helper()
	now := time.Unix(1000, 0)
	q := newQueue(time.Second, retries, time.Millisecond, 4*time.Millisecond,
		obs.NewJobBoard(), func() time.Time { return now })
	specs := exp.Figure3Specs()[:n]
	if err := q.start(n); err != nil {
		t.Fatal(err)
	}
	q.addApp(0, "mp3d", specs, "deadbeef")
	return q, &now
}

func TestQueueLeaseExpiryReassigns(t *testing.T) {
	q, now := testQueue(t, 1, 2)
	job, _ := q.claim("w1")
	if job == nil || job.Attempt != 1 {
		t.Fatalf("first claim: %+v", job)
	}
	// Another worker sees nothing while the lease is live.
	if j, resp := q.claim("w2"); j != nil || !resp.Wait {
		t.Fatalf("claim during live lease: job=%v resp=%+v", j, resp)
	}
	// Heartbeats extend the lease past its original expiry.
	*now = now.Add(800 * time.Millisecond)
	q.heartbeat("w1", []int{job.ID})
	*now = now.Add(800 * time.Millisecond) // 1.6s after claim, 0.8s after renewal
	if j, _ := q.claim("w2"); j != nil {
		t.Fatal("heartbeat-renewed lease was stolen")
	}
	// Silence expires it; the backoff window must pass before reassignment.
	*now = now.Add(2 * time.Second)
	if j, resp := q.claim("w2"); j != nil || !resp.Wait {
		t.Fatalf("reclaimed cell handed out inside its backoff window: %+v", j)
	}
	*now = now.Add(10 * time.Millisecond)
	job2, _ := q.claim("w2")
	if job2 == nil || job2.Attempt != 2 {
		t.Fatalf("post-expiry claim: %+v", job2)
	}
	// The original worker's late heartbeat is ignored: the lease moved on.
	q.heartbeat("w1", []int{job2.ID})
	*now = now.Add(900 * time.Millisecond)
	if j, _ := q.claim("w3"); j != nil {
		t.Fatal("stale heartbeat from the old worker must not shorten the new lease")
	}
}

func TestQueueRetryBudgetDegradesToCellError(t *testing.T) {
	q, now := testQueue(t, 1, 1) // attempts budget: 2
	for attempt := 1; attempt <= 2; attempt++ {
		job, _ := q.claim("w1")
		if job == nil {
			t.Fatalf("attempt %d: no job (backoff not elapsed?)", attempt)
		}
		if found, ok := q.result(resultRequest{Worker: "w1", ID: job.ID, Error: "boom"}); !found || !ok {
			t.Fatalf("attempt %d: result found=%v ok=%v", attempt, found, ok)
		}
		*now = now.Add(10 * time.Millisecond) // clear the requeue backoff
	}
	_, resp := q.claim("w1")
	if !resp.Done {
		t.Fatalf("queue not done after budget exhausted: %+v", resp)
	}
	_, _, cerr := q.outcome(0)
	if cerr == nil || cerr.Attempts != 2 || cerr.Index != 0 {
		t.Fatalf("outcome cerr = %+v, want 2 attempts at index 0", cerr)
	}
}

func TestQueuePermanentFailureSkipsRetries(t *testing.T) {
	q, _ := testQueue(t, 1, 5)
	job, _ := q.claim("w1")
	q.result(resultRequest{Worker: "w1", ID: job.ID, Error: "bad spec", Permanent: true})
	_, resp := q.claim("w1")
	if !resp.Done {
		t.Fatalf("permanent failure must not be retried: %+v", resp)
	}
	if _, _, cerr := q.outcome(0); cerr == nil || cerr.Attempts != 1 {
		t.Fatalf("outcome = %+v, want CellError after 1 attempt", cerr)
	}
}

func TestQueueResultChecksumAndDuplicates(t *testing.T) {
	q, _ := testQueue(t, 1, 0)
	job, _ := q.claim("w1")
	b := cpu.Breakdown{Busy: 100, Read: 50}
	// A mangled payload is rejected, leaving the cell leased.
	if _, ok := q.result(resultRequest{Worker: "w1", ID: job.ID, Breakdown: b, Instructions: 7, Check: "0000000000000000"}); ok {
		t.Fatal("corrupted result accepted")
	}
	good := resultRequest{Worker: "w1", ID: job.ID, Breakdown: b, Instructions: 7,
		Check: resultCheck(job.ID, b, 7)}
	if _, ok := q.result(good); !ok {
		t.Fatal("valid result rejected")
	}
	// A duplicate (reclaimed-then-reported-twice) is acknowledged, and the
	// first answer stands even if the duplicate differs.
	dup := good
	dup.Instructions = 999
	dup.Check = resultCheck(job.ID, b, 999)
	if found, ok := q.result(dup); !found || !ok {
		t.Fatal("duplicate result must be acknowledged")
	}
	gotB, instructions, cerr := q.outcome(0)
	if cerr != nil || gotB != b || instructions != 7 {
		t.Fatalf("outcome = %+v/%d/%v, want first result to stand", gotB, instructions, cerr)
	}
	if found, _ := q.result(resultRequest{Worker: "w1", ID: 42}); found {
		t.Fatal("unknown job id must report not-found")
	}
}

func TestQueueFIFOAndBackoffOrdering(t *testing.T) {
	q, now := testQueue(t, 3, 3)
	// Claims hand out cells in enqueue order.
	j0, _ := q.claim("w1")
	j1, _ := q.claim("w1")
	if j0.ID != 0 || j1.ID != 1 {
		t.Fatalf("claims out of order: %d, %d", j0.ID, j1.ID)
	}
	// A failed cell requeues behind its backoff; the untouched cell 2 is
	// claimable immediately.
	q.result(resultRequest{Worker: "w1", ID: j0.ID, Error: "transient"})
	j2, _ := q.claim("w1")
	if j2 == nil || j2.ID != 2 {
		t.Fatalf("claim = %+v, want cell 2 while cell 0 backs off", j2)
	}
	*now = now.Add(10 * time.Millisecond)
	jr, _ := q.claim("w1")
	if jr == nil || jr.ID != 0 || jr.Attempt != 2 {
		t.Fatalf("requeued claim = %+v, want cell 0 attempt 2", jr)
	}
}

func TestGateBoundsAndSheds(t *testing.T) {
	g := newGate(1, 1)
	if err := g.acquire(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	// One waiter queues; the next is shed.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	waited := make(chan error, 1)
	go func() { waited <- g.acquire(ctx, "b") }()
	for {
		if _, queued := g.status(); queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := g.acquire(context.Background(), "c"); !errors.Is(err, errSaturated) {
		t.Fatalf("past high water: %v, want errSaturated", err)
	}
	// Release hands the slot to the waiter (active stays 1).
	g.release()
	if err := <-waited; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	if active, queued := g.status(); active != 1 || queued != 0 {
		t.Fatalf("after transfer: active=%d queued=%d, want 1/0", active, queued)
	}
	g.release()
	if active, _ := g.status(); active != 0 {
		t.Fatalf("active = %d after final release", active)
	}
}

func TestGateCanceledWaiterIsDiscarded(t *testing.T) {
	g := newGate(1, 4)
	if err := g.acquire(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- g.acquire(ctx, "b") }()
	for {
		if _, queued := g.status(); queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: %v", err)
	}
	// Releasing must not grant to the dead waiter: the slot frees.
	g.release()
	if active, queued := g.status(); active != 0 || queued != 0 {
		t.Fatalf("after release past dead waiter: active=%d queued=%d", active, queued)
	}
}

func TestGateFairAcrossClients(t *testing.T) {
	g := newGate(1, 8)
	if err := g.acquire(context.Background(), "hold"); err != nil {
		t.Fatal(err)
	}
	// Client a queues three waiters, client b one; round-robin must grant b
	// second, not last.
	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	enqueue := func(client string, depth int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.acquire(context.Background(), client); err != nil {
				t.Errorf("acquire %s: %v", client, err)
				return
			}
			mu.Lock()
			order = append(order, client)
			mu.Unlock()
			g.release()
		}()
		// Wait until this waiter is queued so arrival order is fixed.
		for {
			if _, queued := g.status(); queued == depth {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
	enqueue("a", 1)
	enqueue("a", 2)
	enqueue("a", 3)
	enqueue("b", 4)
	g.release() // chain: each grantee releases, draining the queue
	wg.Wait()
	if len(order) != 4 {
		t.Fatalf("granted %d, want 4", len(order))
	}
	// Round-robin: a then b alternate while both have waiters.
	if order[0] != "a" || order[1] != "b" {
		t.Fatalf("grant order %v, want client b granted second (round-robin)", order)
	}
}

func TestQueueSatisfyServesCachedCells(t *testing.T) {
	q, _ := testQueue(t, 3, 2)
	b := cpu.Breakdown{Busy: 10, Read: 20}
	// Cell 1 is satisfied from the cache before any worker claims it.
	q.satisfy(1, b, 42)
	// Workers only ever see the remaining two cells.
	seen := map[int]bool{}
	for i := 0; i < 2; i++ {
		job, _ := q.claim("w1")
		if job == nil {
			t.Fatalf("claim %d: no job", i)
		}
		if job.ID == 1 {
			t.Fatal("cache-satisfied cell leased to a worker")
		}
		seen[job.ID] = true
		res := resultRequest{Worker: "w1", ID: job.ID, Breakdown: b, Instructions: 7,
			Check: resultCheck(job.ID, b, 7)}
		if _, ok := q.result(res); !ok {
			t.Fatalf("result for %d rejected", job.ID)
		}
	}
	if _, resp := q.claim("w1"); !resp.Done {
		t.Fatal("sweep not done after two replays + one cached cell")
	}
	gotB, instructions, cerr := q.outcome(1)
	if cerr != nil || gotB != b || instructions != 42 {
		t.Fatalf("cached outcome = %+v/%d/%v", gotB, instructions, cerr)
	}
	// satisfy on an already-resolved or leased cell is a no-op.
	q.satisfy(1, cpu.Breakdown{Busy: 999}, 999)
	if gotB, instructions, _ := q.outcome(1); gotB != b || instructions != 42 {
		t.Fatal("satisfy overwrote a resolved cell")
	}
}

func TestQueueSatisfyReportsCachedOnBoard(t *testing.T) {
	now := time.Unix(1000, 0)
	board := obs.NewJobBoard()
	q := newQueue(time.Second, 1, time.Millisecond, 4*time.Millisecond,
		board, func() time.Time { return now })
	specs := exp.Figure3Specs()[:2]
	if err := q.start(2); err != nil {
		t.Fatal(err)
	}
	q.addApp(0, "mp3d", specs, "deadbeef")
	q.satisfy(0, cpu.Breakdown{Busy: 1}, 1)
	st := board.Status()
	if st.Cached != 1 || st.Queued != 1 {
		t.Fatalf("board cached/queued = %d/%d, want 1/1", st.Cached, st.Queued)
	}
}
