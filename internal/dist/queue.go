package dist

// The coordinator's lease-based cell queue. Cells enter as their
// application's trace finishes generating, workers claim them FIFO, and a
// claim is a lease, not a handoff: if the worker stops heartbeating the
// lease expires and the cell goes back in the queue. Every lease counts as
// one attempt against the same retry budget exp's in-process scheduler
// uses, requeues back off with exp.RetryDelay's capped deterministic
// jitter, and a cell that exhausts its budget (or fails permanently)
// resolves to a *exp.CellError — the sweep keeps going and degrades to a
// *exp.PartialError, exactly like a local run. Scheduling order, worker
// deaths, and duplicate results never reach the output: results key by
// cell index, and a replay is a pure function of (trace, spec), so any
// worker's answer for a cell is the answer.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dynsched/internal/cpu"
	"dynsched/internal/exp"
	"dynsched/internal/obs"
)

type jobState uint8

const (
	stateQueued jobState = iota
	stateLeased
	stateDone
	stateFailed
)

type qjob struct {
	id       int // cell index (app*cells + cell): the merge key
	app      string
	label    string // "app spec.Label", matching the local scheduler's site labels
	spec     exp.CellSpec
	traceFNV string

	state     jobState
	attempts  int // leases granted so far
	worker    string
	expiry    time.Time // lease deadline while leased
	notBefore time.Time // backoff gate while queued
	boardID   int

	breakdown    cpu.Breakdown
	instructions uint64
	cerr         *exp.CellError
}

type queue struct {
	mu   sync.Mutex
	jobs map[int]*qjob
	// fifo holds queued job ids in arrival order; entries whose job is no
	// longer queued are skipped and dropped during claims.
	fifo []int

	expected int // cells the sweep must resolve (apps × cells)
	resolved int // done + failed
	skipped  int // cells discounted because their app's generation failed

	lease      time.Duration
	retries    int
	backoff    time.Duration
	maxBackoff time.Duration
	board      *obs.JobBoard
	now        func() time.Time

	// onDone, when set, observes every checksum-verified worker result
	// (the coordinator admits them into the persistent result cache). It is
	// called outside the queue lock.
	onDone func(traceFNV string, spec exp.CellSpec, b cpu.Breakdown, instructions uint64)
}

func newQueue(lease time.Duration, retries int, backoff, maxBackoff time.Duration, board *obs.JobBoard, now func() time.Time) *queue {
	if lease <= 0 {
		lease = DefaultLease
	}
	if now == nil {
		now = time.Now
	}
	return &queue{
		jobs: make(map[int]*qjob), lease: lease, retries: retries,
		backoff: backoff, maxBackoff: maxBackoff, board: board, now: now,
	}
}

// start arms the queue for one sweep of total cells. The queue is
// single-sweep: a second start is a programming error.
func (q *queue) start(total int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.expected != 0 {
		return errors.New("dist: coordinator already ran a sweep")
	}
	q.expected = total
	return nil
}

// addApp enqueues one application's cells, keyed a*len(specs)+c — the same
// index layout perAppCells merges by.
func (q *queue) addApp(a int, app string, specs []exp.CellSpec, traceFNV string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for c, spec := range specs {
		id := a*len(specs) + c
		label := app + " " + spec.Label
		q.jobs[id] = &qjob{
			id: id, app: app, label: label, spec: spec, traceFNV: traceFNV,
			state: stateQueued, boardID: q.board.Enqueue(label),
		}
		q.fifo = append(q.fifo, id)
	}
}

// discount removes n never-created cells from the expectation — the cells
// of an application whose trace generation failed; the sweep driver marks
// them failed itself, outside the queue.
func (q *queue) discount(n int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.skipped += n
}

// claim leases the oldest ready cell to worker. With nothing ready it
// reports done (sweep complete) or wait with a retry hint.
func (q *queue) claim(worker string) (*jobAssignment, *claimResponse) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	q.reclaimLocked(now)

	var earliest time.Time
	keep := q.fifo[:0]
	var picked *qjob
	for i, id := range q.fifo {
		j := q.jobs[id]
		if j == nil || j.state != stateQueued {
			continue // stale entry: the job was leased or resolved already
		}
		if picked == nil && !j.notBefore.After(now) {
			picked = j
			continue // claimed: drop from the fifo
		}
		if earliest.IsZero() || j.notBefore.Before(earliest) {
			earliest = j.notBefore
		}
		keep = append(keep, id)
		_ = i
	}
	q.fifo = keep

	if picked != nil {
		picked.state = stateLeased
		picked.attempts++
		picked.worker = worker
		picked.expiry = now.Add(q.lease)
		q.board.Start(picked.boardID)
		return &jobAssignment{
			ID: picked.id, App: picked.app, Label: picked.label, Spec: picked.spec,
			TraceFNV: picked.traceFNV, Attempt: picked.attempts,
			LeaseMillis: q.lease.Milliseconds(),
		}, nil
	}
	if q.completeLocked() {
		return nil, &claimResponse{Done: true}
	}
	// Nothing claimable yet: cells are leased out, backing off, or their
	// traces are still generating. Hint when to come back.
	retry := q.lease / 4
	if !earliest.IsZero() {
		if d := earliest.Sub(now); d < retry {
			retry = d
		}
	}
	if retry < 20*time.Millisecond {
		retry = 20 * time.Millisecond
	}
	return nil, &claimResponse{Wait: true, RetryAfterMillis: retry.Milliseconds()}
}

// result lands one cell outcome. Duplicate or stale reports for an already
// resolved cell are acknowledged and discarded — deterministic replay makes
// them identical, so there is nothing to reconcile. ok=false rejects a
// checksum mismatch (the worker re-sends); found=false is an unknown id.
func (q *queue) result(r resultRequest) (found, ok bool) {
	q.mu.Lock()
	var landed *qjob
	j := q.jobs[r.ID]
	if j == nil {
		q.mu.Unlock()
		return false, false
	}
	switch {
	case j.state == stateDone || j.state == stateFailed:
		// resolved already: acknowledge and discard
	case r.Error == "":
		if resultCheck(r.ID, r.Breakdown, r.Instructions) != r.Check {
			q.mu.Unlock()
			return true, false
		}
		j.state = stateDone
		j.breakdown = r.Breakdown
		j.instructions = r.Instructions
		j.worker = r.Worker
		q.resolved++
		q.board.Finish(j.boardID, nil)
		landed = j
	default:
		q.failAttemptLocked(j, q.now(), errors.New(r.Error), r.Permanent)
	}
	q.mu.Unlock()
	if landed != nil && q.onDone != nil {
		// Only checksum-verified results reach here — the cache admits
		// nothing the merge would not.
		q.onDone(landed.traceFNV, landed.spec, r.Breakdown, r.Instructions)
	}
	return true, true
}

// satisfy resolves a still-queued cell from the result cache: it never
// reaches a worker and the board reports it as cached. Cells already leased
// or resolved are left alone (the in-flight replay will land the identical
// numbers). The stale fifo entry is dropped lazily by claim.
func (q *queue) satisfy(id int, b cpu.Breakdown, instructions uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j := q.jobs[id]
	if j == nil || j.state != stateQueued {
		return
	}
	j.state = stateDone
	j.breakdown = b
	j.instructions = instructions
	j.worker = "cache"
	q.resolved++
	q.board.FinishCached(j.boardID)
}

// heartbeat renews worker's leases; ids the worker no longer owns (expired
// and reassigned) are ignored, which is how a resurrected worker learns
// nothing it does matters anymore.
func (q *queue) heartbeat(worker string, ids []int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	for _, id := range ids {
		if j := q.jobs[id]; j != nil && j.state == stateLeased && j.worker == worker {
			j.expiry = now.Add(q.lease)
		}
	}
}

// reclaimLocked expires dead leases: each one is a failed attempt (the
// worker was SIGKILLed, wedged, or partitioned mid-replay), retried with
// backoff under the usual budget. Caller holds q.mu.
func (q *queue) reclaimLocked(now time.Time) {
	for _, j := range q.jobs {
		if j.state == stateLeased && !j.expiry.After(now) {
			q.failAttemptLocked(j, now,
				fmt.Errorf("dist: worker %q lost its lease", j.worker), false)
		}
	}
}

// failAttemptLocked charges one failed attempt against j: requeue with
// jittered backoff while budget remains, otherwise resolve to a *CellError.
// Caller holds q.mu.
func (q *queue) failAttemptLocked(j *qjob, now time.Time, err error, permanent bool) {
	if permanent || j.attempts > q.retries {
		j.state = stateFailed
		j.cerr = &exp.CellError{Label: j.label, Index: j.id, Attempts: j.attempts, Err: err}
		q.resolved++
		q.board.Finish(j.boardID, j.cerr)
		return
	}
	j.state = stateQueued
	j.worker = ""
	j.notBefore = now.Add(exp.RetryDelay(j.label, j.attempts, q.backoff, q.maxBackoff))
	q.fifo = append(q.fifo, j.id)
}

func (q *queue) completeLocked() bool {
	return q.expected > 0 && q.resolved+q.skipped == q.expected
}

// wait blocks until every cell resolves or ctx cancels, reclaiming expired
// leases as it polls (a sweep whose workers all died must still fail its
// cells and finish).
func (q *queue) wait(ctx interface{ Done() <-chan struct{} }) error {
	poll := q.lease / 4
	if poll > 100*time.Millisecond {
		poll = 100 * time.Millisecond
	}
	if poll < 5*time.Millisecond {
		poll = 5 * time.Millisecond
	}
	for {
		q.mu.Lock()
		q.reclaimLocked(q.now())
		done := q.completeLocked()
		q.mu.Unlock()
		if done {
			return nil
		}
		if ctx != nil {
			select {
			case <-ctx.Done():
				return ctx.(interface{ Err() error }).Err()
			case <-time.After(poll):
			}
		} else {
			time.Sleep(poll)
		}
	}
}

// outcome returns cell id's resolution for the merge.
func (q *queue) outcome(id int) (b cpu.Breakdown, instructions uint64, cerr *exp.CellError) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j := q.jobs[id]
	if j == nil {
		return cpu.Breakdown{}, 0, &exp.CellError{
			Label: fmt.Sprintf("cell %d", id), Index: id, Attempts: 0,
			Err: errors.New("dist: cell never entered the queue"),
		}
	}
	return j.breakdown, j.instructions, j.cerr
}

// counts summarizes the queue for /state.
func (q *queue) counts() (queued, leased, done, failed, expected int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, j := range q.jobs {
		switch j.state {
		case stateQueued:
			queued++
		case stateLeased:
			leased++
		case stateDone:
			done++
		case stateFailed:
			failed++
		}
	}
	return queued, leased, done, failed, q.expected
}
