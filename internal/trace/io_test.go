package trace

import (
	"bytes"
	"reflect"
	"testing"

	"dynsched/internal/isa"
)

// syntheticTrace builds a Validate-clean trace of n events with the mix the
// v3 encoder is tuned for: straight-line ALU runs, strided loads and stores
// with occasional misses, immediates, and backward taken branches.
func syntheticTrace(n int) *Trace {
	t := &Trace{App: "synth", NumCPUs: 16, MissPenalty: 50}
	t.Events = make([]Event, 0, n)
	pc := int32(0)
	addr := uint64(1 << 20)
	for i := 0; i < n; i++ {
		var e Event
		e.PC = pc
		e.NextPC = pc + 1
		switch i % 7 {
		case 0, 1, 2:
			e.Instr = isa.Instr{Op: isa.OpAdd, Dst: uint8(1 + i%29), Src1: 2, Src2: 3}
		case 3:
			e.Instr = isa.Instr{Op: isa.OpLd, Dst: 4, Src1: 5}
			e.Addr = addr
			addr += 8
			if i%21 == 3 {
				e.Miss = true
				e.Latency = 50
			} else {
				e.Latency = 1
			}
		case 4:
			e.Instr = isa.Instr{Op: isa.OpSt, Src1: 4, Src2: 5}
			e.Addr = addr - 8
			e.Latency = 1
		case 5:
			e.Instr = isa.Instr{Op: isa.OpLi, Dst: 6, Imm: int64(i)}
		case 6:
			taken := i%28 == 6 && pc >= 6
			target := pc - 6
			e.Instr = isa.Instr{Op: isa.OpBnez, Src1: 6, Imm: int64(target)}
			e.Taken = taken
			if taken {
				e.NextPC = target
			}
		}
		pc = e.NextPC
		t.Events = append(t.Events, e)
	}
	return t
}

func TestTraceRoundTrip(t *testing.T) {
	orig := miniTrace()
	orig.App = "roundtrip"
	orig.CPU = 3
	orig.NumCPUs = 16
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != orig.App || got.CPU != orig.CPU || got.NumCPUs != orig.NumCPUs ||
		got.MissPenalty != orig.MissPenalty {
		t.Errorf("header mismatch: %+v vs %+v", got, orig)
	}
	if !reflect.DeepEqual(got.Events, orig.Events) {
		t.Error("events did not survive the round trip")
	}
}

// TestTraceRoundTripMultiChunk pushes a trace across several chunk
// boundaries so the per-chunk delta-state reset is exercised, including a
// boundary that lands mid-way through an address run.
func TestTraceRoundTripMultiChunk(t *testing.T) {
	orig := syntheticTrace(2*chunkEvents + 137)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, orig.Events) {
		t.Error("multi-chunk events did not survive the round trip")
	}
}

// TestV3SmallerThanV2 checks the point of the format: on a representative
// instruction mix the delta/varint encoding must save at least 30% over the
// flat 40-byte records.
func TestV3SmallerThanV2(t *testing.T) {
	tr := syntheticTrace(20000)
	var v3, v2 bytes.Buffer
	if _, err := tr.WriteTo(&v3); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.WriteToV2(&v2); err != nil {
		t.Fatal(err)
	}
	if float64(v3.Len()) > 0.7*float64(v2.Len()) {
		t.Errorf("v3 is %d bytes vs v2's %d (%.1f%%): want at least 30%% smaller",
			v3.Len(), v2.Len(), 100*float64(v3.Len())/float64(v2.Len()))
	}
}

func TestReadTraceBadMagic(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("NOPE0000000000000000000000000000"))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReadTraceTruncated(t *testing.T) {
	var buf bytes.Buffer
	if _, err := miniTrace().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cuts land mid-header, mid-count, mid-chunk-header, mid-payload, and
	// just before the final footer byte.
	hdrEnd := 24 + len("mini") + 8
	for _, cut := range []int{0, 3, 10, 30, hdrEnd + 4, hdrEnd + chunkHdrSize + 3, len(full) - 1} {
		if _, err := ReadTrace(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestReadTraceBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if _, err := miniTrace().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // version field
	if _, err := ReadTrace(bytes.NewReader(b)); err == nil {
		t.Error("future version accepted")
	}
}

// TestReadTraceBadOpcode serializes a trace whose opcode byte is garbage —
// the writer does not validate, so the stream is structurally well-formed
// with intact checksums — and demands the reader's opcode check reject it.
func TestReadTraceBadOpcode(t *testing.T) {
	tr := miniTrace()
	tr.Events[0].Instr.Op = isa.Op(0xFF)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(&buf); err == nil {
		t.Error("invalid opcode accepted")
	}
}

// TestReadTraceInvalidLatencyRejected serializes a structurally well-formed
// trace violating a semantic invariant (a memory event with zero latency):
// checksums all match, so only the post-decode Validate can reject it.
func TestReadTraceInvalidLatencyRejected(t *testing.T) {
	tr := miniTrace()
	tr.Events[1].Latency = 0
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(&buf); err == nil {
		t.Error("zero-latency memory event accepted (Validate should reject)")
	}
}
