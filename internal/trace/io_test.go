package trace

import (
	"bytes"
	"reflect"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	orig := miniTrace()
	orig.App = "roundtrip"
	orig.CPU = 3
	orig.NumCPUs = 16
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != orig.App || got.CPU != orig.CPU || got.NumCPUs != orig.NumCPUs ||
		got.MissPenalty != orig.MissPenalty {
		t.Errorf("header mismatch: %+v vs %+v", got, orig)
	}
	if !reflect.DeepEqual(got.Events, orig.Events) {
		t.Error("events did not survive the round trip")
	}
}

func TestReadTraceBadMagic(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("NOPE0000000000000000000000000000"))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReadTraceTruncated(t *testing.T) {
	var buf bytes.Buffer
	if _, err := miniTrace().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 3, 10, 30, len(full) - 1} {
		if _, err := ReadTrace(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestReadTraceBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if _, err := miniTrace().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // version field
	if _, err := ReadTrace(bytes.NewReader(b)); err == nil {
		t.Error("future version accepted")
	}
}

func TestReadTraceBadOpcode(t *testing.T) {
	var buf bytes.Buffer
	if _, err := miniTrace().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// First event record begins after 24-byte header + app name + 8-byte count.
	off := 24 + len("mini") + 8
	b[off+8] = 0xFF // opcode byte
	if _, err := ReadTrace(bytes.NewReader(b)); err == nil {
		t.Error("invalid opcode accepted")
	}
}

func TestReadTraceCorruptedLatencyRejected(t *testing.T) {
	var buf bytes.Buffer
	if _, err := miniTrace().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Zero the latency of the first load (event index 1): Validate fails.
	off := 24 + len("mini") + 8 + eventSize + 32
	b[off], b[off+1], b[off+2], b[off+3] = 0, 0, 0, 0
	if _, err := ReadTrace(bytes.NewReader(b)); err == nil {
		t.Error("corrupted latency accepted (Validate should reject)")
	}
}
