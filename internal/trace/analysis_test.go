package trace

import (
	"strings"
	"testing"

	"dynsched/internal/isa"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 20, 50)
	for _, v := range []uint64{1, 10, 11, 20, 21, 50, 51, 1000} {
		h.Observe(v)
	}
	if h.Total != 8 {
		t.Fatalf("total = %d, want 8", h.Total)
	}
	want := []uint64{2, 2, 2, 2} // (0,10], (10,20], (20,50], >50
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if f := h.Fraction(0); f != 0.25 {
		t.Errorf("Fraction(0) = %v, want 0.25", f)
	}
	if f := h.FractionBetween(10, 50); f != 0.5 {
		t.Errorf("FractionBetween(10,50) = %v, want 0.5", f)
	}
	if s := h.String(); !strings.Contains(s, "(0,10]") || !strings.Contains(s, ">50") {
		t.Errorf("String() = %q", s)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(10)
	if h.Fraction(0) != 0 || h.FractionBetween(0, 10) != 0 {
		t.Error("empty histogram fractions should be zero")
	}
}

// distanceTrace builds a trace with read misses exactly gap instructions
// apart.
func distanceTrace(misses, gap int) *Trace {
	tr := &Trace{App: "dist", MissPenalty: 50}
	pc := int32(0)
	emit := func(e Event) {
		e.PC = pc
		e.NextPC = pc + 1
		pc++
		tr.Events = append(tr.Events, e)
	}
	for m := 0; m < misses; m++ {
		emit(Event{Instr: isa.Instr{Op: isa.OpLd, Dst: 2, Src1: 1}, Addr: uint64(m) * 64, Miss: true, Latency: 50})
		for i := 0; i < gap-1; i++ {
			emit(Event{Instr: isa.Instr{Op: isa.OpAdd, Dst: 3, Src1: 4, Src2: 5}})
		}
	}
	emit(Event{Instr: isa.Instr{Op: isa.OpHalt}})
	tr.Events[len(tr.Events)-1].NextPC = pc - 1
	return tr
}

func TestReadMissDistances(t *testing.T) {
	h := distanceTrace(10, 25).ReadMissDistances()
	if h.Total != 9 {
		t.Fatalf("9 gaps expected, got %d", h.Total)
	}
	// All distances are 25: bucket (20,30].
	if f := h.FractionBetween(20, 30); f != 1 {
		t.Errorf("all distances should be in (20,30]: got %v (%s)", f, h)
	}
}

func TestReadMissDistancesIgnoresHits(t *testing.T) {
	tr := distanceTrace(3, 10)
	// Insert a hit load between misses; distances must not change.
	tr.Events[5].Instr = isa.Instr{Op: isa.OpLd, Dst: 2, Src1: 1}
	tr.Events[5].Addr = 8
	tr.Events[5].Latency = 1
	h := tr.ReadMissDistances()
	if h.Total != 2 {
		t.Errorf("gaps = %d, want 2", h.Total)
	}
}

func TestLatencyBoundMatchesBase(t *testing.T) {
	tr := miniTrace()
	rd, wr, sy := tr.LatencyBound()
	// From miniTrace: one read miss (49), one write miss (49) + unlock hit
	// (0), lock (10+49), barrier (100+49).
	if rd != 49 {
		t.Errorf("read bound = %d, want 49", rd)
	}
	if wr != 49 {
		t.Errorf("write bound = %d, want 49", wr)
	}
	if sy != 10+49+100+49 {
		t.Errorf("sync bound = %d, want 208", sy)
	}
}

func TestMissesAfterAcquire(t *testing.T) {
	tr := &Trace{App: "crit", MissPenalty: 50}
	pc := int32(0)
	emit := func(e Event) {
		e.PC = pc
		e.NextPC = pc + 1
		pc++
		tr.Events = append(tr.Events, e)
	}
	emit(Event{Instr: isa.Instr{Op: isa.OpLock}, Addr: 4096, Latency: 50, Miss: true})
	emit(Event{Instr: isa.Instr{Op: isa.OpLd, Dst: 2, Src1: 1}, Addr: 0, Miss: true, Latency: 50}) // near
	emit(Event{Instr: isa.Instr{Op: isa.OpUnlock}, Addr: 4096, Latency: 1})
	for i := 0; i < 50; i++ {
		emit(Event{Instr: isa.Instr{Op: isa.OpAdd, Dst: 3, Src1: 4, Src2: 5}})
	}
	emit(Event{Instr: isa.Instr{Op: isa.OpLd, Dst: 2, Src1: 1}, Addr: 64, Miss: true, Latency: 50}) // far
	emit(Event{Instr: isa.Instr{Op: isa.OpHalt}})
	tr.Events[len(tr.Events)-1].NextPC = pc - 1

	if f := tr.MissesAfterAcquire(10); f != 0.5 {
		t.Errorf("MissesAfterAcquire(10) = %v, want 0.5", f)
	}
	if f := tr.MissesAfterAcquire(1000); f != 1 {
		t.Errorf("MissesAfterAcquire(1000) = %v, want 1", f)
	}
}
