package trace

import (
	"fmt"
	"strings"

	"dynsched/internal/isa"
)

// Histogram is a simple bucketed distribution used by the trace analyses.
type Histogram struct {
	Bounds []uint64 // inclusive upper bounds; an implicit open bucket follows
	Counts []uint64
	Total  uint64
}

// NewHistogram creates a histogram with the given bucket bounds.
func NewHistogram(bounds ...uint64) *Histogram {
	return &Histogram{Bounds: bounds, Counts: make([]uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.Total++
	for i, b := range h.Bounds {
		if v <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Bounds)]++
}

// Fraction returns the fraction of samples in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// FractionBetween returns the fraction of samples v with lo < v <= hi,
// where lo and hi must be existing bucket bounds (or 0 / infinity).
func (h *Histogram) FractionBetween(lo, hi uint64) float64 {
	if h.Total == 0 {
		return 0
	}
	var n uint64
	prev := uint64(0)
	for i, b := range h.Bounds {
		if b > lo && b <= hi {
			n += h.Counts[i]
		}
		prev = b
	}
	if hi > prev { // include the open bucket
		n += h.Counts[len(h.Bounds)]
	}
	return float64(n) / float64(h.Total)
}

// String renders the histogram as percentage per bucket.
func (h *Histogram) String() string {
	var sb strings.Builder
	prev := uint64(0)
	for i, b := range h.Bounds {
		fmt.Fprintf(&sb, "(%d,%d]:%4.0f%% ", prev, b, 100*h.Fraction(i))
		prev = b
	}
	fmt.Fprintf(&sb, ">%d:%4.0f%%", prev, 100*h.Fraction(len(h.Bounds)))
	return sb.String()
}

// ReadMissDistances returns the distribution of distances, in dynamic
// instructions, between consecutive read misses — the §4.1.3 diagnostic
// ("our detailed simulation data for LU show that 90% of the read misses
// are a distance of 20-30 instructions apart"). The distance between two
// independent misses bounds the window size needed to overlap them.
func (t *Trace) ReadMissDistances() *Histogram {
	h := NewHistogram(10, 16, 20, 30, 50, 100)
	last := -1
	for i := range t.Events {
		e := &t.Events[i]
		if e.Instr.Op != isa.OpLd || !e.Miss {
			continue
		}
		if last >= 0 {
			h.Observe(uint64(i - last))
		}
		last = i
	}
	return h
}

// SharingStats summarizes which fraction of the trace's read misses hit
// synchronization-adjacent data: misses within `window` instructions after
// an acquire. It quantifies how much of the communication is produced by
// critical sections (useful when comparing against the applications'
// qualitative descriptions in §3.3).
func (t *Trace) MissesAfterAcquire(window int) float64 {
	var total, near uint64
	lastAcquire := -1 << 30
	for i := range t.Events {
		e := &t.Events[i]
		if e.IsAcquire() {
			lastAcquire = i
		}
		if e.Instr.Op == isa.OpLd && e.Miss {
			total++
			if i-lastAcquire <= window {
				near++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(near) / float64(total)
}

// LatencyBound returns the total memory and synchronization latency carried
// by the trace: the amount of time BASE spends beyond one cycle per
// instruction. It decomposes into read, write, and synchronization shares
// and is used by tests as an independent cross-check of the BASE model.
func (t *Trace) LatencyBound() (read, write, sync uint64) {
	for i := range t.Events {
		e := &t.Events[i]
		switch e.Class() {
		case isa.ClassLoad:
			read += uint64(e.Latency) - 1
		case isa.ClassStore:
			write += uint64(e.Latency) - 1
		case isa.ClassSync:
			if e.IsAcquire() {
				sync += uint64(e.Wait) + uint64(e.Latency) - 1
			} else {
				write += uint64(e.Wait) + uint64(e.Latency) - 1
			}
		}
	}
	return read, write, sync
}
