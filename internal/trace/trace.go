// Package trace defines the annotated dynamic instruction trace that couples
// the multiprocessor simulation (package tango) to the uniprocessor timing
// models (package cpu), mirroring §3.2 of the paper: "The generated trace is
// augmented with other dynamic information including the effective address
// for load and store instructions and the effective latency for each memory
// and synchronization operation."
package trace

import (
	"fmt"

	"dynsched/internal/isa"
)

// Event is one dynamically executed instruction with its annotations.
type Event struct {
	PC    int32     // static instruction index (serves as the branch PC)
	Instr isa.Instr // the executed instruction

	Addr uint64 // effective address (loads, stores, lock/unlock)

	// Latency is the memory transfer latency in cycles: 1 for a cache hit,
	// the miss penalty for a miss. For synchronization operations it is the
	// transfer component T (latency to access the sync variable); for
	// non-memory instructions it is 0.
	Latency uint32

	// Wait is the contention/load-imbalance component W of a synchronization
	// operation: the time spent waiting for the lock to be released, the
	// event to be set, or the last processor to reach the barrier. It is the
	// portion of synchronization overhead that no latency-hiding technique
	// can remove (§4.1.2).
	Wait uint32

	Miss  bool // memory reference missed in the cache
	Taken bool // branch outcome

	// NextPC is the PC of the following event (branch target for taken
	// branches, PC+1 otherwise).
	NextPC int32
}

// Class returns the timing class of the event's instruction.
func (e Event) Class() isa.Class { return isa.Classify(e.Instr.Op) }

// IsAcquire reports whether the event is an acquire synchronization.
func (e Event) IsAcquire() bool { return isa.IsAcquire(e.Instr.Op) }

// IsRelease reports whether the event is a release synchronization.
func (e Event) IsRelease() bool { return isa.IsRelease(e.Instr.Op) }

// Trace is the annotated instruction stream of one processor plus the
// simulation parameters it was generated under.
type Trace struct {
	App         string // application name
	CPU         int    // which processor's stream this is
	NumCPUs     int    // processors in the generating simulation
	MissPenalty uint32 // miss latency used during generation

	Events []Event
}

// Len returns the number of dynamic instructions.
func (t *Trace) Len() int { return len(t.Events) }

// Meta is the generation metadata a trace carries alongside its events:
// the serialized header fields, minus the event count. It is what the
// streaming reader and writer exchange without ever materializing Events.
type Meta struct {
	App         string
	CPU         int
	NumCPUs     int
	MissPenalty uint32
}

// Meta returns the trace's generation metadata.
func (t *Trace) Meta() Meta {
	return Meta{App: t.App, CPU: t.CPU, NumCPUs: t.NumCPUs, MissPenalty: t.MissPenalty}
}

// Freeze re-homes Events into an exactly-sized backing array, dropping the
// append slack left over from generation, and returns t. The harness calls
// it once per generated trace so the slice becomes a shared immutable
// arena: every experiment cell replays a View of the same backing array
// instead of each holding (or copying) an over-allocated one.
func (t *Trace) Freeze() *Trace {
	if cap(t.Events) > len(t.Events) {
		ev := make([]Event, len(t.Events))
		copy(ev, t.Events)
		t.Events = ev
	}
	return t
}

// View returns a read-only view of the trace: a copy of the metadata whose
// Events slice shares t's backing arena but is capped at its length (a
// full slice expression), so an append through the view reallocates
// instead of clobbering the shared arena.
func (t *Trace) View() *Trace {
	v := *t
	v.Events = t.Events[:len(t.Events):len(t.Events)]
	return &v
}

// DataStats is one row of the paper's Table 1.
type DataStats struct {
	BusyCycles  uint64 // useful cycles = dynamic instruction count
	Reads       uint64
	Writes      uint64
	ReadMisses  uint64
	WriteMisses uint64
}

// Per1000 returns references per thousand instructions for n.
func (d DataStats) Per1000(n uint64) float64 {
	if d.BusyCycles == 0 {
		return 0
	}
	return float64(n) * 1000 / float64(d.BusyCycles)
}

// SyncStats is one row of the paper's Table 2.
type SyncStats struct {
	Locks, Unlocks, WaitEvents, SetEvents, Barriers uint64
}

// Data computes the Table 1 row for the trace. Lock/unlock references are
// synchronization, not data, and are excluded, matching the paper's split
// between Tables 1 and 2.
func (t *Trace) Data() DataStats {
	var d DataStats
	for i := range t.Events {
		e := &t.Events[i]
		d.BusyCycles++
		switch e.Instr.Op {
		case isa.OpLd:
			d.Reads++
			if e.Miss {
				d.ReadMisses++
			}
		case isa.OpSt:
			d.Writes++
			if e.Miss {
				d.WriteMisses++
			}
		}
	}
	return d
}

// Sync computes the Table 2 row for the trace.
func (t *Trace) Sync() SyncStats {
	var s SyncStats
	for i := range t.Events {
		switch t.Events[i].Instr.Op {
		case isa.OpLock:
			s.Locks++
		case isa.OpUnlock:
			s.Unlocks++
		case isa.OpWaitEv:
			s.WaitEvents++
		case isa.OpSetEv:
			s.SetEvents++
		case isa.OpBarrier:
			s.Barriers++
		}
	}
	return s
}

// Predictor is the branch-prediction interface used for Table 3 and by the
// dynamically scheduled processor model. Predict returns the predicted
// direction for the conditional branch at pc; Update trains the predictor
// with the actual outcome.
//
// Because the simulation is trace-driven, Predict also receives the actual
// outcome: real predictors ignore it, while the perfect predictor of Figure 4
// simply returns it. Unconditional branches are always predicted correctly
// (the BTB supplies their target).
type Predictor interface {
	Predict(pc int32, actual bool) bool
	Update(pc int32, taken bool)
}

// BranchStats is one row of the paper's Table 3.
type BranchStats struct {
	Branches              uint64  // dynamic branch instructions (cond + uncond)
	CondBranches          uint64  // dynamic conditional branches
	Instructions          uint64  // total dynamic instructions
	Mispredicted          uint64  // conditional branches predicted wrongly
	PctInstructions       float64 // branches as % of instructions
	AvgDistance           float64 // avg instructions between branches
	PctCorrect            float64 // correctly predicted conditional branches (%)
	AvgMispredictDistance float64 // avg instructions between mispredictions
}

// Branches computes the Table 3 row by running p over the trace.
func (t *Trace) Branches(p Predictor) BranchStats {
	var b BranchStats
	b.Instructions = uint64(len(t.Events))
	for i := range t.Events {
		e := &t.Events[i]
		if !isa.IsBranch(e.Instr.Op) {
			continue
		}
		b.Branches++
		if isa.IsCondBranch(e.Instr.Op) {
			b.CondBranches++
			if p.Predict(e.PC, e.Taken) != e.Taken {
				b.Mispredicted++
			}
			p.Update(e.PC, e.Taken)
		}
	}
	if b.Instructions > 0 {
		b.PctInstructions = 100 * float64(b.Branches) / float64(b.Instructions)
	}
	if b.Branches > 0 {
		b.AvgDistance = float64(b.Instructions) / float64(b.Branches)
	}
	if b.CondBranches > 0 {
		b.PctCorrect = 100 * float64(b.CondBranches-b.Mispredicted) / float64(b.CondBranches)
	}
	if b.Mispredicted > 0 {
		b.AvgMispredictDistance = float64(b.Instructions) / float64(b.Mispredicted)
	}
	return b
}

// Validate checks structural trace invariants: every event's NextPC links to
// the next event's PC, memory events carry latencies, and sync events carry
// classification-consistent fields. It is used by tests and by the harness
// after trace generation.
func (t *Trace) Validate() error {
	for i := range t.Events {
		e := &t.Events[i]
		if i+1 < len(t.Events) {
			next := &t.Events[i+1]
			if e.NextPC != next.PC {
				return errBrokenLink(t.App, uint64(i), e.NextPC, next.PC)
			}
		}
		if err := validateEvent(t.App, i, e, t.MissPenalty); err != nil {
			return err
		}
	}
	return nil
}

// validateEvent checks the per-event invariants of Validate for event i of
// app's trace. The streaming Cursor applies the same function incrementally
// (plus the NextPC linkage check against its predecessor), so the two
// readers cannot drift on what a structurally valid trace is.
func validateEvent(app string, i int, e *Event, missPenalty uint32) error {
	switch e.Class() {
	case isa.ClassLoad, isa.ClassStore:
		if e.Latency == 0 {
			return fmt.Errorf("trace %s[%d]: memory event with zero latency", app, i)
		}
		if e.Miss && e.Latency < missPenalty {
			// Queueing at a bandwidth-limited memory system may lengthen
			// a miss, but never shorten it below the base penalty.
			return fmt.Errorf("trace %s[%d]: miss latency %d below penalty %d", app, i, e.Latency, missPenalty)
		}
		if !e.Miss && e.Latency != 1 {
			return fmt.Errorf("trace %s[%d]: hit latency %d != 1", app, i, e.Latency)
		}
	case isa.ClassSync:
		if e.Latency == 0 {
			return fmt.Errorf("trace %s[%d]: sync event with zero transfer latency", app, i)
		}
	case isa.ClassBranch:
		if e.Taken && e.NextPC != int32(e.Instr.Imm) {
			return fmt.Errorf("trace %s[%d]: taken branch NextPC %d != target %d", app, i, e.NextPC, e.Instr.Imm)
		}
		if !e.Taken && e.NextPC != e.PC+1 {
			return fmt.Errorf("trace %s[%d]: untaken branch NextPC %d != PC+1", app, i, e.NextPC)
		}
	}
	return nil
}
