package trace

// Cursor is the streaming reader over serialized traces: it decodes one
// CRC-verified chunk at a time into a fixed ring of events and hands the
// replay loops pointers into that ring, so a multi-gigabyte trace replays
// in a constant few hundred kilobytes of memory — no whole-trace []Event
// materialization and no per-event allocation. It accepts every container
// version ReadTrace does (chunked v3, flat v2, footerless legacy v1) and
// applies the same structural checks: chunk plausibility bounds, per-chunk
// CRCs, the whole-file footer, and the per-event Validate invariants
// (checked incrementally through the shared validateEvent helper, plus the
// NextPC→PC linkage against each event's predecessor).
//
// Pointer lifetime: the ring holds 2× the maximum decode batch, and slots
// are only overwritten when the consumer has drained everything decoded so
// far, so a pointer returned by Next for event k stays valid at least
// until event k+CursorLookback has been returned. That window (4096
// events) comfortably covers the deepest lookahead structure any replay
// model keeps live (the paper's largest window is 256 entries); streaming
// entry points in package cpu reject configurations that would need more.

import (
	"bufio"
	"io"
)

// CursorLookback is the guaranteed pointer-retention window of a Cursor:
// an *Event returned by Next remains valid until CursorLookback further
// events have been returned.
const CursorLookback = chunkEvents

// cursorRing is the ring capacity in events: lookback plus the largest
// batch a single fill can decode (a full v3 chunk). Power of two so slot
// indexing is a mask.
const cursorRing = 2 * chunkEvents

// Cursor streams events from a serialized trace. Create one with
// NewCursor, then call Next until it returns io.EOF; a clean EOF means the
// whole container, footer checksum included, was verified.
type Cursor struct {
	br      *bufio.Reader
	sum     uint32 // running whole-file CRC (crc32.Update)
	version uint32
	meta    Meta
	count   uint64

	ring    [cursorRing]Event
	pos     uint64 // events handed out via Next
	decoded uint64 // events decoded into the ring

	buf   []byte  // chunk payload (v3) / flat record batch (v1, v2)
	spill []Event // decode scratch when a batch wraps the ring edge

	lastNextPC int32 // NextPC of event decoded-1, for linkage validation
	done       bool  // footer verified, stream cleanly finished
	err        error // sticky failure
}

// NewCursor parses the trace header from r and returns a streaming cursor
// over its events. The reader is consumed incrementally; it must remain
// valid for the cursor's lifetime.
func NewCursor(r io.Reader) (*Cursor, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	c := &Cursor{br: br}
	version, meta, count, err := readHeader(br, &c.sum)
	if err != nil {
		return nil, err
	}
	c.version, c.meta, c.count = version, meta, count
	return c, nil
}

// Meta returns the generation metadata from the trace header.
func (c *Cursor) Meta() Meta { return c.meta }

// Len returns the header-declared event count.
func (c *Cursor) Len() int { return int(c.count) }

// Version returns the container format version (1, 2, or 3).
func (c *Cursor) Version() uint32 { return c.version }

// Next returns the next event, or io.EOF after the last event once the
// container's integrity checks have all passed. The returned pointer stays
// valid for the next CursorLookback calls; the event must not be modified.
func (c *Cursor) Next() (*Event, error) {
	if c.pos == c.decoded {
		if err := c.fill(); err != nil {
			return nil, err
		}
	}
	e := &c.ring[c.pos&(cursorRing-1)]
	c.pos++
	return e, nil
}

// fill decodes the next batch of events into the ring: one CRC-verified
// chunk for version 3, one flat record batch for versions 1 and 2. At the
// end of the stream it verifies the footer and returns io.EOF.
func (c *Cursor) fill() error {
	if c.err != nil {
		return c.err
	}
	if c.done {
		return io.EOF
	}
	if c.decoded == c.count {
		if c.version >= v2Version {
			if err := readFooter(c.br, c.sum); err != nil {
				c.err = err
				return err
			}
		}
		c.done = true
		return io.EOF
	}
	var n int
	var err error
	if c.version == formatVersion {
		n, err = c.fillV3()
	} else {
		n, err = c.fillFlat()
	}
	if err != nil {
		c.err = err
		return err
	}
	if err := c.validateBatch(n); err != nil {
		c.err = err
		return err
	}
	c.decoded += uint64(n)
	return nil
}

// dst returns a contiguous destination for the next n ring slots, using
// the spill scratch when the batch straddles the ring edge. commit copies
// a spill-decoded batch into its ring slots; for the contiguous common
// case it is a no-op.
func (c *Cursor) dst(n int) (batch []Event, spilled bool) {
	off := int(c.decoded & (cursorRing - 1))
	if off+n <= cursorRing {
		return c.ring[off : off+n], false
	}
	if cap(c.spill) < n {
		c.spill = make([]Event, chunkEvents)
	}
	return c.spill[:n], true
}

// commit copies a spill-decoded batch into its (wrapped) ring slots.
func (c *Cursor) commit(batch []Event) {
	off := int(c.decoded & (cursorRing - 1))
	head := cursorRing - off
	copy(c.ring[off:], batch[:head])
	copy(c.ring[:], batch[head:])
}

// fillV3 reads and decodes one version-3 chunk.
func (c *Cursor) fillV3() (int, error) {
	payload, nEvents, err := readChunkV3(c.br, &c.sum, &c.buf, c.decoded, c.count)
	if err != nil {
		return 0, err
	}
	batch, spilled := c.dst(nEvents)
	if err := decodeChunkV3(payload, batch); err != nil {
		return 0, err
	}
	if spilled {
		c.commit(batch)
	}
	return nEvents, nil
}

// fillFlat reads and decodes one batch of flat version-1/2 records.
func (c *Cursor) fillFlat() (int, error) {
	nrec := c.count - c.decoded
	if nrec > recBatch {
		nrec = recBatch
	}
	need := int(nrec) * eventSize
	if cap(c.buf) < need {
		c.buf = make([]byte, need)
	}
	raw := c.buf[:need]
	if _, err := io.ReadFull(c.br, raw); err != nil {
		return 0, errShortEvent(c.decoded, err)
	}
	c.sum = crc32Append(c.sum, raw)
	batch, spilled := c.dst(int(nrec))
	if err := decodeFlatBatch(raw, batch, c.decoded); err != nil {
		return 0, err
	}
	if spilled {
		c.commit(batch)
	}
	return int(nrec), nil
}

// validateBatch applies the per-event Validate invariants and the NextPC
// linkage check to the n just-decoded events.
func (c *Cursor) validateBatch(n int) error {
	for i := 0; i < n; i++ {
		abs := c.decoded + uint64(i)
		e := &c.ring[abs&(cursorRing-1)]
		if abs > 0 && e.PC != c.lastNextPC {
			return errBrokenLink(c.meta.App, abs-1, c.lastNextPC, e.PC)
		}
		if err := validateEvent(c.meta.App, int(abs), e, c.meta.MissPenalty); err != nil {
			return err
		}
		c.lastNextPC = e.NextPC
	}
	return nil
}
