package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestStatV3(t *testing.T) {
	tr := syntheticTrace(3*chunkEvents + 100) // 4 chunks, last one partial
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Stat(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Version != formatVersion || s.App != tr.App || s.Events != uint64(tr.Len()) {
		t.Errorf("stat identity = %+v", s)
	}
	if s.Chunks != 4 || s.ChunksOK != 4 {
		t.Errorf("chunks = %d ok %d, want 4/4", s.Chunks, s.ChunksOK)
	}
	if !s.HasFooter || !s.FooterOK {
		t.Errorf("footer = present %v ok %v, want true/true", s.HasFooter, s.FooterOK)
	}
	if s.FileBytes != uint64(n) {
		t.Errorf("FileBytes = %d, want the %d WriteTo reported", s.FileBytes, n)
	}
	if bpe := s.BytesPerEvent(); bpe <= 0 || bpe >= eventSize {
		t.Errorf("bytes/event = %.2f, want (0, %d): v3 must beat the flat encoding", bpe, eventSize)
	}
	for _, want := range []string{"format v3", "4 chunks (4/4 CRC ok)", "footer CRC ok", "bytes/event"} {
		if !strings.Contains(s.Format(), want) {
			t.Errorf("Format() missing %q: %s", want, s.Format())
		}
	}
}

func TestStatV2Flat(t *testing.T) {
	tr := syntheticTrace(500)
	var buf bytes.Buffer
	if _, err := tr.WriteToV2(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := Stat(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Version != v2Version || s.Chunks != 0 {
		t.Errorf("v2 stat = %+v", s)
	}
	if s.PayloadBytes != 500*eventSize || s.BytesPerEvent() != eventSize {
		t.Errorf("flat payload = %d (%.1f/event), want %d", s.PayloadBytes, s.BytesPerEvent(), 500*eventSize)
	}
	if !s.HasFooter || !s.FooterOK {
		t.Errorf("v2 footer = %+v", s)
	}
}

// TestStatCorruption: a flipped payload bit is reported (bad chunk, bad
// footer) rather than failing the walk, while structural truncation fails.
func TestStatCorruption(t *testing.T) {
	tr := syntheticTrace(2 * chunkEvents)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	data[len(data)/2] ^= 0x40 // inside the second chunk's payload

	s, err := Stat(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("corrupted payload must stat cleanly, got %v", err)
	}
	if s.Chunks != 2 || s.ChunksOK != 1 {
		t.Errorf("chunks = %d ok %d, want 2/1 after corruption", s.Chunks, s.ChunksOK)
	}
	if s.FooterOK {
		t.Error("footer CRC still ok after payload corruption")
	}
	if !strings.Contains(s.Format(), "1/2 CRC ok") || !strings.Contains(s.Format(), "FOOTER CRC MISMATCH") {
		t.Errorf("Format() does not surface corruption: %s", s.Format())
	}

	if _, err := Stat(bytes.NewReader(data[:len(data)/3])); err == nil {
		t.Error("truncated file must fail Stat")
	}
	if _, err := Stat(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("garbage must fail Stat")
	}
}
