package trace

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
)

// v2Bytes serializes tr in the flat-record version-2 format.
func v2Bytes(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tr.WriteToV2(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// legacyV1Bytes converts a serialized version-2 trace into its version-1
// equivalent: same layout, version field patched back, CRC footer stripped.
func legacyV1Bytes(t *testing.T, tr *Trace) []byte {
	t.Helper()
	b := v2Bytes(t, tr)
	if len(b) < footerSize {
		t.Fatalf("serialized trace too short: %d bytes", len(b))
	}
	b = b[:len(b)-footerSize]
	binary.LittleEndian.PutUint32(b[4:8], legacyVersion)
	return b
}

func TestReadTraceV2(t *testing.T) {
	orig := miniTrace()
	got, err := ReadTrace(bytes.NewReader(v2Bytes(t, orig)))
	if err != nil {
		t.Fatalf("v2 trace rejected: %v", err)
	}
	if !reflect.DeepEqual(got.Events, orig.Events) {
		t.Error("v2 events did not survive the round trip")
	}
}

func TestReadTraceLegacyV1(t *testing.T) {
	orig := miniTrace()
	b := legacyV1Bytes(t, orig)
	got, err := ReadTrace(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("legacy v1 trace rejected: %v", err)
	}
	if !reflect.DeepEqual(got.Events, orig.Events) {
		t.Error("legacy v1 events did not survive the round trip")
	}
}

func TestReadTraceV2CRCMismatch(t *testing.T) {
	b := v2Bytes(t, miniTrace())
	// Flip one bit in an event's address field: record layout stays valid,
	// so only the checksum can catch it.
	off := 24 + len("mini") + 8 + 24
	b[off] ^= 0x01
	_, err := ReadTrace(bytes.NewReader(b))
	if err == nil {
		t.Fatal("bit-flipped trace accepted")
	}
	if !strings.Contains(err.Error(), "CRC") {
		t.Errorf("bit flip rejected with %v, want a CRC error", err)
	}
}

func TestReadTraceV3ChunkCRCMismatch(t *testing.T) {
	var buf bytes.Buffer
	if _, err := miniTrace().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Flip one bit in the middle of the first chunk's payload: the chunk
	// CRC must reject it before the varint decoder ever sees the bytes.
	off := 24 + len("mini") + 8 + chunkHdrSize + 5
	b[off] ^= 0x10
	_, err := ReadTrace(bytes.NewReader(b))
	if err == nil {
		t.Fatal("bit-flipped v3 chunk accepted")
	}
	if !strings.Contains(err.Error(), "CRC") {
		t.Errorf("chunk bit flip rejected with %v, want a CRC error", err)
	}
}

// TestReadTraceV3BadChunkHeader corrupts a chunk header's declared sizes:
// the reader must reject implausible counts without huge allocations.
func TestReadTraceV3BadChunkHeader(t *testing.T) {
	var buf bytes.Buffer
	if _, err := miniTrace().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	off := 24 + len("mini") + 8
	for _, bad := range []struct {
		name  string
		patch func(b []byte)
	}{
		{"zero events", func(b []byte) { binary.LittleEndian.PutUint32(b[off:], 0) }},
		{"too many events", func(b []byte) { binary.LittleEndian.PutUint32(b[off:], 1<<31) }},
		{"oversized payload", func(b []byte) { binary.LittleEndian.PutUint32(b[off+4:], 1<<30) }},
		{"undersized payload", func(b []byte) { binary.LittleEndian.PutUint32(b[off+4:], 1) }},
	} {
		b := append([]byte(nil), orig...)
		bad.patch(b)
		if _, err := ReadTrace(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: corrupted chunk header accepted", bad.name)
		}
	}
}

func TestReadTraceFooterTruncated(t *testing.T) {
	var buf bytes.Buffer
	if _, err := miniTrace().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for cut := len(b) - footerSize; cut < len(b); cut++ {
		if _, err := ReadTrace(bytes.NewReader(b[:cut])); err == nil {
			t.Errorf("trace with footer truncated to %d of %d bytes accepted", cut, len(b))
		}
	}
}

func TestReadTraceBadFooterMagic(t *testing.T) {
	var buf bytes.Buffer
	if _, err := miniTrace().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)-footerSize] = 'X'
	if _, err := ReadTrace(bytes.NewReader(b)); err == nil {
		t.Error("corrupted footer magic accepted")
	}
}

// TestReadTraceHugeCountNoOOM feeds a header that claims 2^34 events but
// carries none. The reader must fail on the missing data without first
// allocating the declared (multi-hundred-gigabyte) event slice.
func TestReadTraceHugeCountNoOOM(t *testing.T) {
	for _, version := range []uint32{legacyVersion, v2Version, formatVersion} {
		var b bytes.Buffer
		var hdr [24]byte
		copy(hdr[0:4], traceMagic[:])
		binary.LittleEndian.PutUint32(hdr[4:8], version)
		binary.LittleEndian.PutUint32(hdr[16:20], 50)
		b.Write(hdr[:])
		var cnt [8]byte
		binary.LittleEndian.PutUint64(cnt[:], 1<<34)
		b.Write(cnt[:])
		if _, err := ReadTrace(bytes.NewReader(b.Bytes())); err == nil {
			t.Errorf("version %d: event count with no event data accepted", version)
		}
	}
}
