package trace

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
)

// legacyV1Bytes converts a serialized version-2 trace into its version-1
// equivalent: same layout, version field patched back, CRC footer stripped.
func legacyV1Bytes(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) < footerSize {
		t.Fatalf("serialized trace too short: %d bytes", len(b))
	}
	b = b[:len(b)-footerSize]
	binary.LittleEndian.PutUint32(b[4:8], legacyVersion)
	return b
}

func TestReadTraceLegacyV1(t *testing.T) {
	orig := miniTrace()
	b := legacyV1Bytes(t, orig)
	got, err := ReadTrace(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("legacy v1 trace rejected: %v", err)
	}
	if !reflect.DeepEqual(got.Events, orig.Events) {
		t.Error("legacy v1 events did not survive the round trip")
	}
}

func TestReadTraceCRCMismatch(t *testing.T) {
	var buf bytes.Buffer
	if _, err := miniTrace().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Flip one bit in an event's address field: record layout stays valid,
	// so only the checksum can catch it.
	off := 24 + len("mini") + 8 + 24
	b[off] ^= 0x01
	_, err := ReadTrace(bytes.NewReader(b))
	if err == nil {
		t.Fatal("bit-flipped trace accepted")
	}
	if !strings.Contains(err.Error(), "CRC") {
		t.Errorf("bit flip rejected with %v, want a CRC error", err)
	}
}

func TestReadTraceFooterTruncated(t *testing.T) {
	var buf bytes.Buffer
	if _, err := miniTrace().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for cut := len(b) - footerSize; cut < len(b); cut++ {
		if _, err := ReadTrace(bytes.NewReader(b[:cut])); err == nil {
			t.Errorf("trace with footer truncated to %d of %d bytes accepted", cut, len(b))
		}
	}
}

func TestReadTraceBadFooterMagic(t *testing.T) {
	var buf bytes.Buffer
	if _, err := miniTrace().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)-footerSize] = 'X'
	if _, err := ReadTrace(bytes.NewReader(b)); err == nil {
		t.Error("corrupted footer magic accepted")
	}
}

// TestReadTraceHugeCountNoOOM feeds a header that claims 2^34 events but
// carries none. The reader must fail on the missing data without first
// allocating the declared (multi-hundred-gigabyte) event slice.
func TestReadTraceHugeCountNoOOM(t *testing.T) {
	var b bytes.Buffer
	var hdr [24]byte
	copy(hdr[0:4], traceMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], formatVersion)
	binary.LittleEndian.PutUint32(hdr[16:20], 50)
	b.Write(hdr[:])
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], 1<<34)
	b.Write(cnt[:])
	if _, err := ReadTrace(bytes.NewReader(b.Bytes())); err == nil {
		t.Error("event count with no event data accepted")
	}
}
