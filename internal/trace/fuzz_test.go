package trace

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadTrace throws arbitrary bytes at the deserializer. ReadTrace must
// never panic or allocate unboundedly, and anything it accepts must be a
// valid trace that survives a re-serialization round trip.
func FuzzReadTrace(f *testing.F) {
	// Seed corpus: a valid v2 trace, its legacy v1 form, truncations at
	// every structural boundary, a bit flip in the payload, a corrupted
	// footer, a bogus magic, and a header claiming 2^34 events.
	var buf bytes.Buffer
	if _, err := miniTrace().WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)

	legacy := append([]byte(nil), valid[:len(valid)-footerSize]...)
	binary.LittleEndian.PutUint32(legacy[4:8], legacyVersion)
	f.Add(legacy)

	for _, cut := range []int{0, 3, 10, 24, 30, 36, len(valid) - footerSize, len(valid) - 1} {
		f.Add(append([]byte(nil), valid[:cut]...))
	}

	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	badFoot := append([]byte(nil), valid...)
	badFoot[len(badFoot)-1] ^= 0xFF
	f.Add(badFoot)

	f.Add([]byte("NOPE0000000000000000000000000000"))

	huge := append([]byte(nil), valid[:24+len("mini")]...)
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], 1<<34)
	huge = append(huge, cnt[:]...)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted traces must be internally consistent and round-trip.
		if err := tr.Validate(); err != nil {
			t.Fatalf("ReadTrace accepted an invalid trace: %v", err)
		}
		var out bytes.Buffer
		if _, err := tr.WriteTo(&out); err != nil {
			t.Fatalf("re-serialization failed: %v", err)
		}
		if _, err := ReadTrace(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-serialized trace rejected: %v", err)
		}
	})
}
