package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// FuzzReadTrace throws arbitrary bytes at the deserializer. ReadTrace must
// never panic or allocate unboundedly, and anything it accepts must be a
// valid trace that survives a re-serialization round trip.
func FuzzReadTrace(f *testing.F) {
	// Seed corpus: valid traces in all three accepted formats (v3 chunked,
	// v2 flat, legacy v1), a multi-chunk v3 trace, truncations at every
	// structural boundary including the chunk header and mid-payload, bit
	// flips in the chunk payload, a corrupted footer, a bogus magic, and a
	// header claiming 2^34 events.
	var buf bytes.Buffer
	if _, err := miniTrace().WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)

	var v2buf bytes.Buffer
	if _, err := miniTrace().WriteToV2(&v2buf); err != nil {
		f.Fatal(err)
	}
	v2 := v2buf.Bytes()
	f.Add(v2)

	legacy := append([]byte(nil), v2[:len(v2)-footerSize]...)
	binary.LittleEndian.PutUint32(legacy[4:8], legacyVersion)
	f.Add(legacy)

	var multi bytes.Buffer
	if _, err := syntheticTrace(chunkEvents + 64).WriteTo(&multi); err != nil {
		f.Fatal(err)
	}
	f.Add(multi.Bytes())

	hdrEnd := 24 + len("mini") + 8
	for _, cut := range []int{0, 3, 10, 24, 30, hdrEnd, hdrEnd + chunkHdrSize,
		hdrEnd + chunkHdrSize + 7, len(valid) - footerSize, len(valid) - 1} {
		f.Add(append([]byte(nil), valid[:cut]...))
	}

	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	flippedV2 := append([]byte(nil), v2...)
	flippedV2[len(flippedV2)/2] ^= 0x40
	f.Add(flippedV2)

	badFoot := append([]byte(nil), valid...)
	badFoot[len(badFoot)-1] ^= 0xFF
	f.Add(badFoot)

	f.Add([]byte("NOPE0000000000000000000000000000"))

	huge := append([]byte(nil), valid[:24+len("mini")]...)
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], 1<<34)
	huge = append(huge, cnt[:]...)
	f.Add(huge)

	// Cursor-targeted seeds: a chunk whose declared event count straddles
	// the ring-lookback boundary, and a stream whose last chunk is torn
	// exactly at the footer so only the streaming footer check can notice.
	var big bytes.Buffer
	if _, err := syntheticTrace(2*chunkEvents + 137).WriteTo(&big); err != nil {
		f.Fatal(err)
	}
	f.Add(big.Bytes())
	f.Add(append([]byte(nil), big.Bytes()[:big.Len()-footerSize-1]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		ctr, cerr := cursorScan(data)
		// The streaming and materializing readers must agree on
		// acceptance: both reject, or both accept with identical events.
		if (err == nil) != (cerr == nil) {
			t.Fatalf("readers disagree: ReadTrace err=%v, Cursor err=%v", err, cerr)
		}
		if err != nil {
			return
		}
		if ctr.App != tr.App || ctr.CPU != tr.CPU || ctr.NumCPUs != tr.NumCPUs ||
			ctr.MissPenalty != tr.MissPenalty || len(ctr.Events) != len(tr.Events) {
			t.Fatal("cursor metadata or event count differs from ReadTrace")
		}
		for i := range tr.Events {
			if tr.Events[i] != ctr.Events[i] {
				t.Fatalf("cursor event %d differs from ReadTrace", i)
			}
		}
		// Accepted traces must be internally consistent and round-trip.
		if err := tr.Validate(); err != nil {
			t.Fatalf("ReadTrace accepted an invalid trace: %v", err)
		}
		var out bytes.Buffer
		if _, err := tr.WriteTo(&out); err != nil {
			t.Fatalf("re-serialization failed: %v", err)
		}
		if _, err := ReadTrace(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-serialized trace rejected: %v", err)
		}
	})
}

// cursorScan streams data through a Cursor, materializing what it accepts,
// so the fuzzer can compare the two readers byte-for-byte.
func cursorScan(data []byte) (*Trace, error) {
	c, err := NewCursor(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	m := c.Meta()
	tr := &Trace{App: m.App, CPU: m.CPU, NumCPUs: m.NumCPUs, MissPenalty: m.MissPenalty}
	for {
		e, err := c.Next()
		if err != nil {
			if err == io.EOF && len(tr.Events) == c.Len() {
				return tr, nil
			}
			return nil, err
		}
		tr.Events = append(tr.Events, *e)
	}
}
