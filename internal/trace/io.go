package trace

// Binary trace serialization. Traces are expensive to generate at paper
// scale (they require the full 16-processor simulation), so the tools can
// save them to disk and replay them repeatedly — the same workflow the
// paper's trace-driven methodology implies.
//
// Format (little endian):
//
//	magic   "DSTR"                      4 bytes
//	version uint32                      currently 2
//	cpu, numCPUs, missPenalty uint32    12 bytes
//	appLen  uint32, app bytes           variable
//	count   uint64                      number of events
//	events  count × 40-byte records
//	footer  "DSCR" + crc32 uint32       8 bytes (version ≥ 2 only)
//
// Each event record: PC int32, NextPC int32, Op uint8, Dst uint8,
// Src1 uint8, Src2 uint8, flags uint8 (bit0 miss, bit1 taken), 3 pad
// bytes, Imm int64, Addr uint64, Latency uint32, Wait uint32.
//
// Version 2 appends a footer carrying a CRC32-IEEE checksum of every
// preceding byte, so a truncated or bit-flipped file is rejected instead of
// replayed as garbage. Version 1 is the identical layout without the
// footer; ReadTrace still accepts it (no integrity check possible).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"dynsched/internal/isa"
)

var traceMagic = [4]byte{'D', 'S', 'T', 'R'}

// formatVersion is bumped whenever the on-disk layout changes. Version 2
// added the CRC32 footer.
const formatVersion = 2

// legacyVersion is the oldest version ReadTrace still accepts: the same
// record layout as version 2, but without the integrity footer.
const legacyVersion = 1

const eventSize = 40

// footerMagic guards the CRC32 footer of version-2 traces; it doubles as a
// cheap truncation detector before the checksum is even compared.
var footerMagic = [4]byte{'D', 'S', 'C', 'R'}

const footerSize = 8

// recBatch is how many event records are encoded or decoded per buffer
// operation; paper-scale traces have millions of events, so batching keeps
// the per-event serialization cost to plain stores into a reused buffer.
const recBatch = 512

const (
	flagMiss  = 1 << 0
	flagTaken = 1 << 1
)

// WriteTo serializes the trace. It returns the number of bytes written.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	sum := crc32.NewIEEE()
	var n int64
	put := func(b []byte) error {
		m, err := bw.Write(b)
		n += int64(m)
		sum.Write(b[:m])
		return err
	}
	var hdr [24]byte
	copy(hdr[0:4], traceMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], formatVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(t.CPU))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(t.NumCPUs))
	binary.LittleEndian.PutUint32(hdr[16:20], t.MissPenalty)
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(len(t.App)))
	if err := put(hdr[:]); err != nil {
		return n, err
	}
	if err := put([]byte(t.App)); err != nil {
		return n, err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(len(t.Events)))
	if err := put(cnt[:]); err != nil {
		return n, err
	}
	buf := make([]byte, recBatch*eventSize)
	for base := 0; base < len(t.Events); base += recBatch {
		end := base + recBatch
		if end > len(t.Events) {
			end = len(t.Events)
		}
		for i := base; i < end; i++ {
			e := &t.Events[i]
			rec := buf[(i-base)*eventSize:][:eventSize]
			binary.LittleEndian.PutUint32(rec[0:4], uint32(e.PC))
			binary.LittleEndian.PutUint32(rec[4:8], uint32(e.NextPC))
			rec[8] = uint8(e.Instr.Op)
			rec[9] = e.Instr.Dst
			rec[10] = e.Instr.Src1
			rec[11] = e.Instr.Src2
			var flags uint8
			if e.Miss {
				flags |= flagMiss
			}
			if e.Taken {
				flags |= flagTaken
			}
			rec[12] = flags
			rec[13], rec[14], rec[15] = 0, 0, 0
			binary.LittleEndian.PutUint64(rec[16:24], uint64(e.Instr.Imm))
			binary.LittleEndian.PutUint64(rec[24:32], e.Addr)
			binary.LittleEndian.PutUint32(rec[32:36], e.Latency)
			binary.LittleEndian.PutUint32(rec[36:40], e.Wait)
		}
		if err := put(buf[:(end-base)*eventSize]); err != nil {
			return n, err
		}
	}
	var foot [footerSize]byte
	copy(foot[0:4], footerMagic[:])
	binary.LittleEndian.PutUint32(foot[4:8], sum.Sum32())
	m, err := bw.Write(foot[:])
	n += int64(m)
	if err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTo and validates it. It
// accepts the current CRC32-footered format (version 2) and the legacy
// footerless version 1; version-2 traces whose checksum does not match the
// payload — truncation, bit flips, torn writes — are rejected.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	sum := crc32.NewIEEE()
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	sum.Write(hdr[:])
	if [4]byte(hdr[0:4]) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[0:4])
	}
	version := binary.LittleEndian.Uint32(hdr[4:8])
	if version != formatVersion && version != legacyVersion {
		return nil, fmt.Errorf("trace: unsupported format version %d (want %d or %d)",
			version, legacyVersion, formatVersion)
	}
	t := &Trace{
		CPU:         int(binary.LittleEndian.Uint32(hdr[8:12])),
		NumCPUs:     int(binary.LittleEndian.Uint32(hdr[12:16])),
		MissPenalty: binary.LittleEndian.Uint32(hdr[16:20]),
	}
	appLen := binary.LittleEndian.Uint32(hdr[20:24])
	if appLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible app name length %d", appLen)
	}
	app := make([]byte, appLen)
	if _, err := io.ReadFull(br, app); err != nil {
		return nil, fmt.Errorf("trace: short app name: %w", err)
	}
	sum.Write(app)
	t.App = string(app)
	var cnt [8]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, fmt.Errorf("trace: short count: %w", err)
	}
	sum.Write(cnt[:])
	count := binary.LittleEndian.Uint64(cnt[:])
	if count > 1<<34 {
		return nil, fmt.Errorf("trace: implausible event count %d", count)
	}
	// Grow Events as batches are actually read rather than trusting the
	// declared count up front: a corrupted header claiming 2^34 events must
	// not allocate hundreds of gigabytes before the short read is noticed.
	cap0 := count
	if cap0 > recBatch {
		cap0 = recBatch
	}
	t.Events = make([]Event, 0, cap0)
	buf := make([]byte, recBatch*eventSize)
	var batch [recBatch]Event
	for base := uint64(0); base < count; base += recBatch {
		nrec := count - base
		if nrec > recBatch {
			nrec = recBatch
		}
		if _, err := io.ReadFull(br, buf[:nrec*eventSize]); err != nil {
			return nil, fmt.Errorf("trace: short event %d: %w", base, err)
		}
		sum.Write(buf[:nrec*eventSize])
		for i := uint64(0); i < nrec; i++ {
			rec := buf[i*eventSize:][:eventSize]
			e := &batch[i]
			e.PC = int32(binary.LittleEndian.Uint32(rec[0:4]))
			e.NextPC = int32(binary.LittleEndian.Uint32(rec[4:8]))
			e.Instr.Op = isa.Op(rec[8])
			if !e.Instr.Op.Valid() {
				return nil, fmt.Errorf("trace: event %d has invalid opcode %d", base+i, rec[8])
			}
			e.Instr.Dst = rec[9]
			e.Instr.Src1 = rec[10]
			e.Instr.Src2 = rec[11]
			e.Miss = rec[12]&flagMiss != 0
			e.Taken = rec[12]&flagTaken != 0
			e.Instr.Imm = int64(binary.LittleEndian.Uint64(rec[16:24]))
			e.Addr = binary.LittleEndian.Uint64(rec[24:32])
			e.Latency = binary.LittleEndian.Uint32(rec[32:36])
			e.Wait = binary.LittleEndian.Uint32(rec[36:40])
		}
		t.Events = append(t.Events, batch[:nrec]...)
	}
	if version >= formatVersion {
		var foot [footerSize]byte
		if _, err := io.ReadFull(br, foot[:]); err != nil {
			return nil, fmt.Errorf("trace: short CRC footer: %w", err)
		}
		if [4]byte(foot[0:4]) != footerMagic {
			return nil, fmt.Errorf("trace: bad CRC footer magic %q", foot[0:4])
		}
		want := binary.LittleEndian.Uint32(foot[4:8])
		if got := sum.Sum32(); got != want {
			return nil, fmt.Errorf("trace: CRC mismatch: computed %08x, footer says %08x (corrupted or torn file)", got, want)
		}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: deserialized trace invalid: %w", err)
	}
	return t, nil
}
