package trace

// Binary trace serialization. Traces are expensive to generate at paper
// scale (they require the full 16-processor simulation), so the tools can
// save them to disk and replay them repeatedly — the same workflow the
// paper's trace-driven methodology implies.
//
// Current format, version 3 (little endian):
//
//	magic   "DSTR"                      4 bytes
//	version uint32                      currently 3
//	cpu, numCPUs, missPenalty uint32    12 bytes
//	appLen  uint32, app bytes           variable
//	count   uint64                      number of events
//	chunks  until count events are consumed:
//	    nEvents uint32                  events in this chunk (≤ 4096)
//	    nBytes  uint32                  encoded payload size
//	    payload nBytes bytes            varint/delta-encoded events
//	    crc32   uint32                  CRC32-IEEE of the payload
//	footer  "DSCR" + crc32 uint32       8 bytes, checksums the whole file
//
// Within a chunk each event is a flags byte, an opcode byte, and then only
// the fields the flags declare present, delta-encoded against a per-chunk
// predictor: the PC is encoded only when it differs from the previous
// event's NextPC (flag bit 7), NextPC is stored as a zigzag varint of
// NextPC−(PC+1) (zero for straight-line code, so one byte), the effective
// address as a zigzag varint delta against the previous address-bearing
// event, and Imm/Latency/Wait as varints elided entirely when zero. An ALU
// instruction in straight-line code therefore costs 3 bytes instead of the
// 40-byte flat record of versions 1 and 2. Delta state resets at every
// chunk boundary, so a corrupted chunk cannot poison its successors, and
// each chunk carries its own CRC so corruption is localized on read.
//
// Versions 1 and 2 use flat 40-byte records (PC int32, NextPC int32, Op,
// Dst, Src1, Src2, flags, 3 pad, Imm int64, Addr uint64, Latency uint32,
// Wait uint32); version 2 added the whole-file CRC footer. ReadTrace still
// accepts both, and WriteToV2 still emits version 2 for tools that need it
// and for benchmarking the formats against each other.
//
// There are two readers over this container: ReadTrace materializes the
// whole event slice, and Cursor (cursor.go) streams chunk-resident events
// through a fixed ring without ever holding the full trace. Both are built
// from the same header/chunk/record helpers below, so the accepted byte
// streams are identical by construction of the checks, and the equivalence
// is additionally pinned by tests.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"io/fs"

	"dynsched/internal/isa"
)

var traceMagic = [4]byte{'D', 'S', 'T', 'R'}

// formatVersion is bumped whenever the on-disk layout changes. Version 2
// added the CRC32 footer; version 3 replaced the flat records with chunked
// varint/delta encoding.
const formatVersion = 3

// FormatVersion is the current on-disk format version, exported so cache
// keys can incorporate it: a format bump must invalidate every cached trace
// artifact, since the content address is computed over the serialized bytes.
const FormatVersion = formatVersion

// v2Version is the flat-record format with a CRC footer, still written by
// WriteToV2 and accepted by ReadTrace.
const v2Version = 2

// legacyVersion is the oldest version ReadTrace still accepts: the same
// flat record layout as version 2, but without the integrity footer.
const legacyVersion = 1

// eventSize is the flat record size of versions 1 and 2.
const eventSize = 40

// footerMagic guards the trailing CRC32 footer (versions ≥ 2); it doubles
// as a cheap truncation detector before the checksum is even compared.
var footerMagic = [4]byte{'D', 'S', 'C', 'R'}

const footerSize = 8

// recBatch is how many flat event records are encoded or decoded per buffer
// operation in the version-1/2 paths; paper-scale traces have millions of
// events, so batching keeps the per-event cost to plain stores.
const recBatch = 512

// chunkEvents is the maximum events per version-3 chunk. 4096 keeps the
// chunk buffer (≤ chunkEvents·maxEventEnc bytes) comfortably cache-sized
// while amortizing the 12-byte chunk overhead to noise.
const chunkEvents = 4096

// maxEventEnc bounds the encoded size of one version-3 event: flags 1 +
// op 1 + dPC ≤10 + dNextPC ≤10 + regs 3 + imm ≤10 + addr ≤10 + latency ≤5
// + wait ≤5. Used to reject implausible chunk headers before allocating.
const maxEventEnc = 55

const chunkHdrSize = 8 // nEvents uint32 + nBytes uint32

// maxEventCount is the implausibility bound on the declared event count.
const maxEventCount = 1 << 34

// Flat-record flag bits (versions 1 and 2).
const (
	flagMiss  = 1 << 0
	flagTaken = 1 << 1
)

// Version-3 per-event flag bits. Bits 2–6 declare which optional fields
// follow; a clear bit means the field is zero and absent from the stream.
const (
	f3Miss    = 1 << 0 // Miss
	f3Taken   = 1 << 1 // Taken
	f3Regs    = 1 << 2 // Dst, Src1, Src2 bytes present (any nonzero)
	f3Imm     = 1 << 3 // Imm varint present
	f3Addr    = 1 << 4 // Addr delta varint present
	f3Latency = 1 << 5 // Latency uvarint present
	f3Wait    = 1 << 6 // Wait uvarint present
	f3PCJump  = 1 << 7 // PC ≠ previous event's NextPC; dPC varint present
)

// WriteTo serializes the trace in the current (version 3) format. It
// returns the number of bytes written. It is a thin loop over the streaming
// Writer, so file-producing tools that never materialize a Trace emit
// byte-identical containers.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	sw, err := NewWriter(w, t.Meta(), uint64(len(t.Events)))
	if err != nil {
		return sw.BytesWritten(), err
	}
	for i := range t.Events {
		if err := sw.Write(&t.Events[i]); err != nil {
			return sw.BytesWritten(), err
		}
	}
	if err := sw.Close(); err != nil {
		return sw.BytesWritten(), err
	}
	return sw.BytesWritten(), nil
}

// ContentAddr returns the trace's content address: the FNV-64a of its
// canonical (version 3) serialization, formatted as 16 hex digits. Version-3
// re-encoding is byte-deterministic, so this is the same address the
// distributed coordinator computes over the bytes it serves from
// /traces/{addr} and the address the result cache keys cell entries by —
// one identity for a trace's content everywhere it travels.
func (t *Trace) ContentAddr() (string, error) {
	h := fnv.New64a()
	if _, err := t.WriteTo(h); err != nil {
		return "", err
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// WriteToV2 serializes the trace in the previous flat-record format
// (version 2). Retained so existing consumers of the flat layout keep a
// writer and so the benchmark suite can measure version 3 against it.
func (t *Trace) WriteToV2(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	sum := crc32.NewIEEE()
	var n int64
	put := func(b []byte) error {
		m, err := bw.Write(b)
		n += int64(m)
		sum.Write(b[:m])
		return err
	}
	if err := put(encodeHeader(t.Meta(), v2Version, uint64(len(t.Events)))); err != nil {
		return n, err
	}
	buf := make([]byte, recBatch*eventSize)
	for base := 0; base < len(t.Events); base += recBatch {
		end := base + recBatch
		if end > len(t.Events) {
			end = len(t.Events)
		}
		for i := base; i < end; i++ {
			e := &t.Events[i]
			rec := buf[(i-base)*eventSize:][:eventSize]
			binary.LittleEndian.PutUint32(rec[0:4], uint32(e.PC))
			binary.LittleEndian.PutUint32(rec[4:8], uint32(e.NextPC))
			rec[8] = uint8(e.Instr.Op)
			rec[9] = e.Instr.Dst
			rec[10] = e.Instr.Src1
			rec[11] = e.Instr.Src2
			var flags uint8
			if e.Miss {
				flags |= flagMiss
			}
			if e.Taken {
				flags |= flagTaken
			}
			rec[12] = flags
			rec[13], rec[14], rec[15] = 0, 0, 0
			binary.LittleEndian.PutUint64(rec[16:24], uint64(e.Instr.Imm))
			binary.LittleEndian.PutUint64(rec[24:32], e.Addr)
			binary.LittleEndian.PutUint32(rec[32:36], e.Latency)
			binary.LittleEndian.PutUint32(rec[36:40], e.Wait)
		}
		if err := put(buf[:(end-base)*eventSize]); err != nil {
			return n, err
		}
	}
	var foot [footerSize]byte
	copy(foot[0:4], footerMagic[:])
	binary.LittleEndian.PutUint32(foot[4:8], sum.Sum32())
	m, err := bw.Write(foot[:])
	n += int64(m)
	if err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// encodeHeader builds the fixed header, app name, and event count shared by
// every format version.
func encodeHeader(m Meta, version uint32, count uint64) []byte {
	b := make([]byte, 24, 24+len(m.App)+8)
	copy(b[0:4], traceMagic[:])
	binary.LittleEndian.PutUint32(b[4:8], version)
	binary.LittleEndian.PutUint32(b[8:12], uint32(m.CPU))
	binary.LittleEndian.PutUint32(b[12:16], uint32(m.NumCPUs))
	binary.LittleEndian.PutUint32(b[16:20], m.MissPenalty)
	binary.LittleEndian.PutUint32(b[20:24], uint32(len(m.App)))
	b = append(b, m.App...)
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], count)
	return append(b, cnt[:]...)
}

// appendEventV3 encodes one event against the chunk's delta state: predPC
// is the previous event's NextPC (what straight-line code predicts for this
// PC), prevAddr the address of the previous address-bearing event.
func appendEventV3(buf []byte, e *Event, predPC *int32, prevAddr *uint64) []byte {
	var flags uint8
	if e.Miss {
		flags |= f3Miss
	}
	if e.Taken {
		flags |= f3Taken
	}
	if e.Instr.Dst != 0 || e.Instr.Src1 != 0 || e.Instr.Src2 != 0 {
		flags |= f3Regs
	}
	if e.Instr.Imm != 0 {
		flags |= f3Imm
	}
	if e.Addr != 0 {
		flags |= f3Addr
	}
	if e.Latency != 0 {
		flags |= f3Latency
	}
	if e.Wait != 0 {
		flags |= f3Wait
	}
	if e.PC != *predPC {
		flags |= f3PCJump
	}
	buf = append(buf, flags, uint8(e.Instr.Op))
	if flags&f3PCJump != 0 {
		buf = binary.AppendVarint(buf, int64(e.PC)-int64(*predPC))
	}
	buf = binary.AppendVarint(buf, int64(e.NextPC)-int64(e.PC)-1)
	if flags&f3Regs != 0 {
		buf = append(buf, e.Instr.Dst, e.Instr.Src1, e.Instr.Src2)
	}
	if flags&f3Imm != 0 {
		buf = binary.AppendVarint(buf, e.Instr.Imm)
	}
	if flags&f3Addr != 0 {
		// Wrapping uint64 subtraction: the zigzag varint round-trips any
		// delta, and the decoder adds it back with the same wrap.
		buf = binary.AppendVarint(buf, int64(e.Addr-*prevAddr))
		*prevAddr = e.Addr
	}
	if flags&f3Latency != 0 {
		buf = binary.AppendUvarint(buf, uint64(e.Latency))
	}
	if flags&f3Wait != 0 {
		buf = binary.AppendUvarint(buf, uint64(e.Wait))
	}
	*predPC = e.NextPC
	return buf
}

// readHeader parses the magic, version, machine parameters, app name, and
// declared event count shared by every format version, folding the consumed
// bytes into the running whole-file CRC at *sum. The checksum is a plain
// uint32 advanced with crc32.Update rather than a hash.Hash32 so the fixed
// read buffers never escape through an interface call (the streaming read
// path is allocation-free per chunk).
func readHeader(br *bufio.Reader, sum *uint32) (version uint32, m Meta, count uint64, err error) {
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, m, 0, fmt.Errorf("trace: short header: %w", err)
	}
	*sum = crc32.Update(*sum, crc32.IEEETable, hdr[:])
	if [4]byte(hdr[0:4]) != traceMagic {
		return 0, m, 0, fmt.Errorf("trace: bad magic %q", hdr[0:4])
	}
	version = binary.LittleEndian.Uint32(hdr[4:8])
	switch version {
	case legacyVersion, v2Version, formatVersion:
	default:
		return 0, m, 0, fmt.Errorf("trace: unsupported format version %d (want %d, %d, or %d)",
			version, legacyVersion, v2Version, formatVersion)
	}
	m.CPU = int(binary.LittleEndian.Uint32(hdr[8:12]))
	m.NumCPUs = int(binary.LittleEndian.Uint32(hdr[12:16]))
	m.MissPenalty = binary.LittleEndian.Uint32(hdr[16:20])
	appLen := binary.LittleEndian.Uint32(hdr[20:24])
	if appLen > 1<<16 {
		return 0, m, 0, fmt.Errorf("trace: implausible app name length %d", appLen)
	}
	// Fast path: the name almost always fits the reader's buffer, so Peek +
	// Discard reads it in place — one string allocation instead of a scratch
	// slice plus the string. The ReadFull fallback covers callers that hand
	// in an undersized bufio.Reader.
	if b, perr := br.Peek(int(appLen)); perr == nil {
		*sum = crc32.Update(*sum, crc32.IEEETable, b)
		m.App = string(b)
		br.Discard(int(appLen))
	} else {
		app := make([]byte, appLen)
		if _, err := io.ReadFull(br, app); err != nil {
			return 0, m, 0, fmt.Errorf("trace: short app name: %w", err)
		}
		*sum = crc32.Update(*sum, crc32.IEEETable, app)
		m.App = string(app)
	}
	var cnt [8]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return 0, m, 0, fmt.Errorf("trace: short count: %w", err)
	}
	*sum = crc32.Update(*sum, crc32.IEEETable, cnt[:])
	count = binary.LittleEndian.Uint64(cnt[:])
	if count > maxEventCount {
		return 0, m, 0, fmt.Errorf("trace: implausible event count %d", count)
	}
	return version, m, count, nil
}

// readChunkV3 reads and CRC-verifies one version-3 chunk frame at event
// offset read (of count total), reusing *buf for the payload. It returns the
// verified payload (aliasing *buf) and the declared event count, so the
// caller decodes only bytes whose checksum already matched.
func readChunkV3(br *bufio.Reader, sum *uint32, buf *[]byte, read, count uint64) ([]byte, int, error) {
	// The chunk header and trailing CRC are read through slices of the
	// reusable payload buffer rather than stack arrays: a stack array
	// passed to io.ReadFull escapes through the io.Reader interface and
	// would cost two heap allocations per chunk on the streaming path.
	if cap(*buf) < chunkHdrSize {
		// Pre-size for a typical full chunk (4096 events at the ~7-16
		// bytes/event the v3 encoding averages), so most traces never regrow
		// the buffer: one payload allocation per scan instead of a geometric
		// ladder starting from a small seed.
		*buf = make([]byte, 0, 1<<16)
	}
	hdr := (*buf)[:chunkHdrSize]
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, 0, fmt.Errorf("trace: short chunk header at event %d: %w", read, err)
	}
	*sum = crc32Append(*sum, hdr)
	nEvents := binary.LittleEndian.Uint32(hdr[0:4])
	nBytes := binary.LittleEndian.Uint32(hdr[4:8])
	if nEvents == 0 || nEvents > chunkEvents || uint64(nEvents) > count-read {
		return nil, 0, fmt.Errorf("trace: chunk claims %d events with %d remaining", nEvents, count-read)
	}
	if nBytes < 2*nEvents || nBytes > nEvents*maxEventEnc {
		return nil, 0, fmt.Errorf("trace: chunk of %d events claims implausible size %d", nEvents, nBytes)
	}
	if uint32(cap(*buf)) < nBytes+4 {
		// Grow geometrically so a stream of slightly-growing chunks costs
		// O(log) allocations, not one per chunk. +4 leaves room to read
		// the chunk CRC behind the payload.
		newCap := 2 * cap(*buf)
		if uint32(newCap) < nBytes+4 {
			newCap = int(nBytes) + 4
		}
		*buf = make([]byte, 0, newCap)
	}
	payload := (*buf)[:nBytes]
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, 0, fmt.Errorf("trace: short chunk payload at event %d: %w", read, err)
	}
	*sum = crc32Append(*sum, payload)
	cb := (*buf)[nBytes : nBytes+4]
	if _, err := io.ReadFull(br, cb); err != nil {
		return nil, 0, fmt.Errorf("trace: short chunk CRC at event %d: %w", read, err)
	}
	*sum = crc32Append(*sum, cb)
	want := binary.LittleEndian.Uint32(cb)
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, 0, fmt.Errorf("trace: chunk CRC mismatch at event %d: computed %08x, header says %08x", read, got, want)
	}
	return payload, int(nEvents), nil
}

// readFooter reads and checks the "DSCR"+crc32 trailer of versions ≥ 2
// against the running whole-file checksum.
func readFooter(br *bufio.Reader, sum uint32) error {
	var foot [footerSize]byte
	if _, err := io.ReadFull(br, foot[:]); err != nil {
		return fmt.Errorf("trace: short CRC footer: %w", err)
	}
	if [4]byte(foot[0:4]) != footerMagic {
		return fmt.Errorf("trace: bad CRC footer magic %q", foot[0:4])
	}
	want := binary.LittleEndian.Uint32(foot[4:8])
	if got := sum; got != want {
		return fmt.Errorf("trace: CRC mismatch: computed %08x, footer says %08x (corrupted or torn file)", got, want)
	}
	return nil
}

// inputSize reports the byte size of the reader's underlying input when it
// is knowable without consuming it: a regular file (anything with a Stat
// method, e.g. *os.File) or an in-memory reader with a Len method
// (bytes.Reader, strings.Reader). ReadTrace uses it to bound the Events
// preallocation against what the input could physically contain.
func inputSize(r io.Reader) (int64, bool) {
	switch v := r.(type) {
	case interface{ Stat() (fs.FileInfo, error) }:
		if fi, err := v.Stat(); err == nil && fi.Mode().IsRegular() {
			return fi.Size(), true
		}
	case interface{ Len() int }:
		return int64(v.Len()), true
	}
	return 0, false
}

// eventCap converts the header's declared event count into a safe Events
// preallocation. When the input size is known, the count is trusted only up
// to the number of events the remaining bytes could minimally encode (2
// bytes each for version 3, a 40-byte record for the flat formats), so a
// corrupted header claiming 2^34 events cannot allocate hundreds of
// gigabytes before the short read is noticed. When the size is unknown
// (a pipe, a network stream), the preallocation falls back to one decode
// batch and the slice grows as data actually arrives.
func eventCap(count uint64, version uint32, size int64, sized bool) int {
	minPer, fallback := uint64(eventSize), uint64(recBatch)
	if version == formatVersion {
		minPer, fallback = 2, chunkEvents
	}
	if sized {
		if maxEv := uint64(size) / minPer; count > maxEv {
			count = maxEv
		}
		return int(count)
	}
	if count > fallback {
		count = fallback
	}
	return int(count)
}

// growEvents extends ev by n zeroed slots, doubling the backing array when
// it must grow (the unsized-input fallback path; sized inputs preallocate
// exactly once).
func growEvents(ev []Event, n int) []Event {
	need := len(ev) + n
	if cap(ev) >= need {
		return ev[:need]
	}
	newCap := 2 * cap(ev)
	if newCap < need {
		newCap = need
	}
	out := make([]Event, need, newCap)
	copy(out, ev)
	return out
}

// ReadTrace deserializes a trace written by WriteTo or WriteToV2 and
// validates it. It accepts the current chunked format (version 3, with a
// per-chunk CRC and the whole-file footer), the flat-record version 2
// (footer only), and the legacy footerless version 1. Any checksum that
// does not match the payload — truncation, bit flips, torn writes — is
// rejected instead of replayed as garbage.
func ReadTrace(r io.Reader) (*Trace, error) {
	size, sized := inputSize(r)
	br := bufio.NewReaderSize(r, 1<<16)
	var sum uint32
	version, meta, count, err := readHeader(br, &sum)
	if err != nil {
		return nil, err
	}
	t := &Trace{App: meta.App, CPU: meta.CPU, NumCPUs: meta.NumCPUs, MissPenalty: meta.MissPenalty}
	cap0 := eventCap(count, version, size, sized)
	if version == formatVersion {
		err = readEventsV3(br, &sum, t, count, cap0)
	} else {
		err = readEventsFlat(br, &sum, t, count, cap0)
	}
	if err != nil {
		return nil, err
	}
	if version >= v2Version {
		if err := readFooter(br, sum); err != nil {
			return nil, err
		}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: deserialized trace invalid: %w", err)
	}
	return t, nil
}

// crc32Append folds b into the running whole-file CRC.
func crc32Append(sum uint32, b []byte) uint32 {
	return crc32.Update(sum, crc32.IEEETable, b)
}

// errShortEvent and errBrokenLink are shared by ReadTrace/Validate and the
// streaming Cursor so both readers report identical failures.
func errShortEvent(base uint64, err error) error {
	return fmt.Errorf("trace: short event %d: %w", base, err)
}

func errBrokenLink(app string, i uint64, nextPC, pc int32) error {
	return fmt.Errorf("trace %s[%d]: NextPC %d does not link to following PC %d", app, i, nextPC, pc)
}

// readEventsFlat decodes the 40-byte records of versions 1 and 2.
func readEventsFlat(br *bufio.Reader, sum *uint32, t *Trace, count uint64, cap0 int) error {
	t.Events = make([]Event, 0, cap0)
	buf := make([]byte, recBatch*eventSize)
	for base := uint64(0); base < count; base += recBatch {
		nrec := count - base
		if nrec > recBatch {
			nrec = recBatch
		}
		if _, err := io.ReadFull(br, buf[:nrec*eventSize]); err != nil {
			return errShortEvent(base, err)
		}
		*sum = crc32.Update(*sum, crc32.IEEETable, buf[:nrec*eventSize])
		n := len(t.Events)
		t.Events = growEvents(t.Events, int(nrec))
		if err := decodeFlatBatch(buf[:nrec*eventSize], t.Events[n:], base); err != nil {
			return err
		}
	}
	return nil
}

// decodeFlatBatch decodes len(dst) consecutive flat records from buf into
// dst; base is the absolute index of dst[0], used only in error messages.
func decodeFlatBatch(buf []byte, dst []Event, base uint64) error {
	for i := range dst {
		rec := buf[i*eventSize:][:eventSize]
		e := &dst[i]
		e.PC = int32(binary.LittleEndian.Uint32(rec[0:4]))
		e.NextPC = int32(binary.LittleEndian.Uint32(rec[4:8]))
		e.Instr.Op = isa.Op(rec[8])
		if !e.Instr.Op.Valid() {
			return fmt.Errorf("trace: event %d has invalid opcode %d", base+uint64(i), rec[8])
		}
		e.Instr.Dst = rec[9]
		e.Instr.Src1 = rec[10]
		e.Instr.Src2 = rec[11]
		e.Miss = rec[12]&flagMiss != 0
		e.Taken = rec[12]&flagTaken != 0
		e.Instr.Imm = int64(binary.LittleEndian.Uint64(rec[16:24]))
		e.Addr = binary.LittleEndian.Uint64(rec[24:32])
		e.Latency = binary.LittleEndian.Uint32(rec[32:36])
		e.Wait = binary.LittleEndian.Uint32(rec[36:40])
	}
	return nil
}

// readEventsV3 decodes the chunked varint/delta stream of version 3. Each
// chunk's CRC is verified before its payload is decoded, so a corrupted
// chunk is reported as a checksum failure, not as whatever garbage the
// varint decoder would have made of it.
func readEventsV3(br *bufio.Reader, sum *uint32, t *Trace, count uint64, cap0 int) error {
	t.Events = make([]Event, 0, cap0)
	var buf []byte
	for read := uint64(0); read < count; {
		payload, nEvents, err := readChunkV3(br, sum, &buf, read, count)
		if err != nil {
			return err
		}
		n := len(t.Events)
		t.Events = growEvents(t.Events, nEvents)
		if err := decodeChunkV3(payload, t.Events[n:]); err != nil {
			t.Events = t.Events[:n]
			return fmt.Errorf("trace: chunk at event %d: %w", read, err)
		}
		read += uint64(nEvents)
	}
	return nil
}

// decodeChunkV3 decodes one chunk payload into dst, which must have exactly
// the chunk's declared event count. The payload must be consumed exactly.
// Delta state (predicted PC, previous address) starts fresh: it resets at
// every chunk boundary by design.
func decodeChunkV3(buf []byte, dst []Event) error {
	pos := 0
	nEvents := len(dst)
	var predPC int32
	var prevAddr uint64
	for i := 0; i < nEvents; i++ {
		if pos+2 > len(buf) {
			return fmt.Errorf("payload exhausted at event %d of %d", i, nEvents)
		}
		flags, op := buf[pos], buf[pos+1]
		pos += 2
		e := &dst[i]
		*e = Event{}
		e.Instr.Op = isa.Op(op)
		if !e.Instr.Op.Valid() {
			return fmt.Errorf("event %d has invalid opcode %d", i, op)
		}
		e.Miss = flags&f3Miss != 0
		e.Taken = flags&f3Taken != 0
		pc := int64(predPC)
		if flags&f3PCJump != 0 {
			d, ok := takeVarint(buf, &pos)
			if !ok {
				return errBadVarint(pos)
			}
			pc += d
		}
		dNext, ok := takeVarint(buf, &pos)
		if !ok {
			return errBadVarint(pos)
		}
		next := pc + 1 + dNext
		if pc < -1<<31 || pc > 1<<31-1 || next < -1<<31 || next > 1<<31-1 {
			return fmt.Errorf("event %d PC delta out of range", i)
		}
		e.PC = int32(pc)
		e.NextPC = int32(next)
		if flags&f3Regs != 0 {
			if pos+3 > len(buf) {
				return fmt.Errorf("payload exhausted in event %d registers", i)
			}
			e.Instr.Dst, e.Instr.Src1, e.Instr.Src2 = buf[pos], buf[pos+1], buf[pos+2]
			pos += 3
		}
		if flags&f3Imm != 0 {
			if e.Instr.Imm, ok = takeVarint(buf, &pos); !ok {
				return errBadVarint(pos)
			}
		}
		if flags&f3Addr != 0 {
			d, ok := takeVarint(buf, &pos)
			if !ok {
				return errBadVarint(pos)
			}
			prevAddr += uint64(d)
			e.Addr = prevAddr
		}
		if flags&f3Latency != 0 {
			v, ok := takeUvarint(buf, &pos)
			if !ok {
				return errBadVarint(pos)
			}
			if v > 1<<32-1 {
				return fmt.Errorf("event %d latency %d overflows uint32", i, v)
			}
			e.Latency = uint32(v)
		}
		if flags&f3Wait != 0 {
			v, ok := takeUvarint(buf, &pos)
			if !ok {
				return errBadVarint(pos)
			}
			if v > 1<<32-1 {
				return fmt.Errorf("event %d wait %d overflows uint32", i, v)
			}
			e.Wait = uint32(v)
		}
		predPC = e.NextPC
	}
	if pos != len(buf) {
		return fmt.Errorf("chunk has %d undecoded trailing bytes", len(buf)-pos)
	}
	return nil
}

// takeVarint and takeUvarint decode at *pos and advance it. They are plain
// functions (not closures) so a chunk decode allocates nothing.
func takeVarint(buf []byte, pos *int) (int64, bool) {
	v, n := binary.Varint(buf[*pos:])
	if n <= 0 {
		return 0, false
	}
	*pos += n
	return v, true
}

func takeUvarint(buf []byte, pos *int) (uint64, bool) {
	v, n := binary.Uvarint(buf[*pos:])
	if n <= 0 {
		return 0, false
	}
	*pos += n
	return v, true
}

func errBadVarint(pos int) error {
	return fmt.Errorf("truncated or oversized varint at offset %d", pos)
}
