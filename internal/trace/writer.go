package trace

// Writer streams a version-3 trace container to an io.Writer one event at
// a time, never holding more than one chunk's encoded payload in memory.
// It is the producer-side dual of Cursor: `tracetool convert` pipes a
// Cursor straight into a Writer to rewrite a flat v1/v2 file as chunked
// v3 without ever materializing the event slice, and Trace.WriteTo is a
// loop over it, so the two paths emit byte-identical containers (same
// chunk boundaries, same per-chunk delta resets, same CRCs).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
)

// Writer emits the version-3 chunked format. Events are appended with
// Write; Close flushes the final partial chunk and the CRC footer. The
// event count is part of the header, so it must be declared up front and
// Close fails if the writes do not match it.
type Writer struct {
	bw  *bufio.Writer
	sum hash.Hash32
	n   int64

	count   uint64 // header-declared event count
	written uint64

	buf      []byte // current chunk's encoded payload
	chunkN   int
	predPC   int32
	prevAddr uint64

	err    error
	closed bool
}

// NewWriter writes the version-3 header for a trace of exactly count
// events and returns a Writer for its event stream.
func NewWriter(w io.Writer, m Meta, count uint64) (*Writer, error) {
	sw := &Writer{
		bw:    bufio.NewWriterSize(w, 1<<16),
		sum:   crc32.NewIEEE(),
		count: count,
		buf:   make([]byte, 0, chunkEvents*maxEventEnc),
	}
	if err := sw.put(encodeHeader(m, formatVersion, count)); err != nil {
		return sw, err
	}
	return sw, nil
}

// put writes b, folding it into the whole-file checksum.
func (w *Writer) put(b []byte) error {
	m, err := w.bw.Write(b)
	w.n += int64(m)
	w.sum.Write(b[:m])
	if err != nil {
		w.err = err
	}
	return err
}

// Write appends one event. The event is encoded immediately against the
// current chunk's delta state; a full chunk (4096 events) is framed and
// flushed in place.
func (w *Writer) Write(e *Event) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("trace: write after Close")
	}
	if w.written == w.count {
		w.err = fmt.Errorf("trace: write of event %d exceeds declared count %d", w.written, w.count)
		return w.err
	}
	w.buf = appendEventV3(w.buf, e, &w.predPC, &w.prevAddr)
	w.chunkN++
	w.written++
	if w.chunkN == chunkEvents {
		return w.flushChunk()
	}
	return nil
}

// flushChunk frames and writes the pending payload: event count, byte
// count, payload, payload CRC. Delta state resets so the next chunk is
// self-contained.
func (w *Writer) flushChunk() error {
	var hdr [chunkHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(w.chunkN))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(w.buf)))
	if err := w.put(hdr[:]); err != nil {
		return err
	}
	if err := w.put(w.buf); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(w.buf))
	if err := w.put(crc[:]); err != nil {
		return err
	}
	w.buf = w.buf[:0]
	w.chunkN = 0
	w.predPC = 0
	w.prevAddr = 0
	return nil
}

// Close flushes the final partial chunk, writes the whole-file CRC footer,
// and flushes the underlying buffer. It fails if fewer events were written
// than the header declared.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	if w.written != w.count {
		w.err = fmt.Errorf("trace: wrote %d events, header declared %d", w.written, w.count)
		return w.err
	}
	if w.chunkN > 0 {
		if err := w.flushChunk(); err != nil {
			return err
		}
	}
	var foot [footerSize]byte
	copy(foot[0:4], footerMagic[:])
	binary.LittleEndian.PutUint32(foot[4:8], w.sum.Sum32())
	m, err := w.bw.Write(foot[:])
	w.n += int64(m)
	if err != nil {
		w.err = err
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// BytesWritten reports the container bytes emitted so far (footer included
// once Close succeeds).
func (w *Writer) BytesWritten() int64 { return w.n }
