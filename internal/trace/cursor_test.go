package trace

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// encodings returns the serialized forms of tr in every accepted container
// version, keyed by name.
func encodings(t *testing.T, tr *Trace) map[string][]byte {
	t.Helper()
	var v3 bytes.Buffer
	if _, err := tr.WriteTo(&v3); err != nil {
		t.Fatal(err)
	}
	return map[string][]byte{
		"v3": v3.Bytes(),
		"v2": v2Bytes(t, tr),
		"v1": legacyV1Bytes(t, tr),
	}
}

// cursorCollect streams every event out of b through a Cursor, returning
// the materialized copy and requiring a clean io.EOF (footer verified).
func cursorCollect(t *testing.T, b []byte) (*Cursor, []Event) {
	t.Helper()
	c, err := NewCursor(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("NewCursor: %v", err)
	}
	events := make([]Event, 0, c.Len())
	for {
		e, err := c.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Cursor.Next at event %d: %v", len(events), err)
		}
		events = append(events, *e)
	}
	if len(events) != c.Len() {
		t.Fatalf("cursor returned %d events, header declared %d", len(events), c.Len())
	}
	// EOF must be sticky.
	if _, err := c.Next(); err != io.EOF {
		t.Fatalf("Next after EOF = %v, want io.EOF", err)
	}
	return c, events
}

// TestCursorMatchesReadTrace is the event-for-event equivalence gate
// between the streaming and materializing readers, across every container
// version and across chunk boundaries (the synthetic trace spans three v3
// chunks, the last partial).
func TestCursorMatchesReadTrace(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   *Trace
	}{
		{"mini", miniTrace()},
		{"multichunk", syntheticTrace(2*chunkEvents + 137)},
	} {
		for name, b := range encodings(t, tc.tr) {
			t.Run(tc.name+"/"+name, func(t *testing.T) {
				want, err := ReadTrace(bytes.NewReader(b))
				if err != nil {
					t.Fatalf("ReadTrace: %v", err)
				}
				c, got := cursorCollect(t, b)
				if c.Meta() != want.Meta() {
					t.Errorf("cursor meta %+v, ReadTrace meta %+v", c.Meta(), want.Meta())
				}
				if !reflect.DeepEqual(got, want.Events) {
					t.Error("cursor events differ from ReadTrace events")
				}
			})
		}
	}
}

// TestCursorTornTail truncates a multi-chunk v3 container at every
// interesting boundary: the cursor must fail (or never reach a clean EOF),
// never silently return a short stream.
func TestCursorTornTail(t *testing.T) {
	var buf bytes.Buffer
	if _, err := syntheticTrace(chunkEvents + 64).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	hdrEnd := 24 + len("synth") + 8
	cuts := []int{
		hdrEnd + chunkHdrSize - 1, // torn chunk header
		hdrEnd + chunkHdrSize + 7, // torn chunk payload
		len(b) - footerSize - 2,   // torn final chunk CRC
		len(b) - footerSize,       // footer missing entirely
		len(b) - 1,                // torn footer
	}
	for _, cut := range cuts {
		c, err := NewCursor(bytes.NewReader(b[:cut]))
		if err != nil {
			continue // header itself torn: rejected even earlier
		}
		clean := true
		for {
			_, err := c.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				clean = false
				break
			}
		}
		if clean {
			t.Errorf("cursor reached clean EOF on container truncated to %d of %d bytes", cut, len(b))
		}
	}
}

// TestCursorRejectsCorruption flips a payload bit: the chunk CRC must stop
// the stream before the event is handed out.
func TestCursorRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if _, err := miniTrace().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[24+len("mini")+8+chunkHdrSize+5] ^= 0x10
	c, err := NewCursor(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("header rejected: %v", err)
	}
	if _, err := c.Next(); err == nil {
		t.Fatal("cursor handed out an event from a corrupt chunk")
	}
}

// TestCursorLookback verifies the documented pointer-retention contract:
// a pointer returned by Next stays valid (and unchanged) until
// CursorLookback further events have been returned.
func TestCursorLookback(t *testing.T) {
	tr := syntheticTrace(3*chunkEvents + 11)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	c, err := NewCursor(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	held := make([]*Event, 0, tr.Len())
	for i := 0; i < tr.Len(); i++ {
		e, err := c.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		held = append(held, e)
		// The event CursorLookback behind must still read back correctly.
		if k := i - CursorLookback; k >= 0 {
			if *held[k] != tr.Events[k] {
				t.Fatalf("pointer to event %d stale after %d further events", k, CursorLookback)
			}
		}
	}
}

// TestCursorAllocsPerChunk is the ≤1-alloc-per-chunk regression gate on
// the streaming decode path. Setup (ring, bufio, chunk buffer) allocates a
// fixed handful; the steady-state per-chunk cost must be zero, so total
// allocations stay below one per chunk for a many-chunk trace.
func TestCursorAllocsPerChunk(t *testing.T) {
	const nChunks = 16
	tr := syntheticTrace(nChunks*chunkEvents + 9)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	r := bytes.NewReader(b)
	allocs := testing.AllocsPerRun(5, func() {
		r.Reset(b)
		c, err := NewCursor(r)
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := c.Next(); err != nil {
				if err != io.EOF {
					t.Fatal(err)
				}
				break
			}
		}
	})
	if perChunk := allocs / (nChunks + 1); perChunk > 1 {
		t.Errorf("cursor scan cost %.0f allocs over %d chunks (%.2f/chunk), want <= 1/chunk",
			allocs, nChunks+1, perChunk)
	}
}
