package trace

import (
	"testing"

	"dynsched/internal/bpred"
	"dynsched/internal/isa"
)

// Compile-time check: the bpred implementations satisfy trace.Predictor.
var (
	_ Predictor = (*bpred.BTB)(nil)
	_ Predictor = bpred.Perfect{}
	_ Predictor = bpred.StaticNotTaken{}
	_ Predictor = bpred.StaticTaken{}
)

func ev(op isa.Op, pc int32, opts func(*Event)) Event {
	e := Event{PC: pc, Instr: isa.Instr{Op: op}, NextPC: pc + 1}
	if opts != nil {
		opts(&e)
	}
	return e
}

func miniTrace() *Trace {
	t := &Trace{App: "mini", NumCPUs: 16, MissPenalty: 50}
	t.Events = []Event{
		ev(isa.OpLi, 0, nil),
		ev(isa.OpLd, 1, func(e *Event) { e.Addr = 64; e.Miss = true; e.Latency = 50 }),
		ev(isa.OpLd, 2, func(e *Event) { e.Addr = 72; e.Latency = 1 }),
		ev(isa.OpSt, 3, func(e *Event) { e.Addr = 64; e.Miss = true; e.Latency = 50 }),
		ev(isa.OpBnez, 4, func(e *Event) { e.Instr.Imm = 5; e.Taken = false }),
		ev(isa.OpLock, 5, func(e *Event) { e.Addr = 128; e.Latency = 50; e.Wait = 10; e.Miss = true }),
		ev(isa.OpUnlock, 6, func(e *Event) { e.Addr = 128; e.Latency = 1 }),
		ev(isa.OpBarrier, 7, func(e *Event) { e.Instr.Imm = 1; e.Latency = 50; e.Wait = 100; e.Miss = true }),
		ev(isa.OpHalt, 8, func(e *Event) { e.NextPC = 8 }),
	}
	return t
}

func TestDataStats(t *testing.T) {
	d := miniTrace().Data()
	if d.BusyCycles != 9 {
		t.Errorf("busy = %d, want 9", d.BusyCycles)
	}
	if d.Reads != 2 || d.ReadMisses != 1 {
		t.Errorf("reads/misses = %d/%d, want 2/1", d.Reads, d.ReadMisses)
	}
	if d.Writes != 1 || d.WriteMisses != 1 {
		t.Errorf("writes/misses = %d/%d, want 1/1", d.Writes, d.WriteMisses)
	}
	if got := d.Per1000(d.Reads); got < 222.21 || got > 222.23 {
		t.Errorf("reads per 1000 = %v, want ~222.22", got)
	}
}

func TestSyncStatsExcludedFromData(t *testing.T) {
	tr := miniTrace()
	s := tr.Sync()
	if s.Locks != 1 || s.Unlocks != 1 || s.Barriers != 1 || s.WaitEvents != 0 || s.SetEvents != 0 {
		t.Errorf("sync = %+v", s)
	}
	// Lock/unlock are memory references but must not appear in Table 1 data.
	d := tr.Data()
	if d.Reads+d.Writes != 3 {
		t.Errorf("lock/unlock leaked into data stats: %+v", d)
	}
}

func TestBranchStatsPerfect(t *testing.T) {
	b := miniTrace().Branches(bpred.Perfect{})
	if b.Branches != 1 || b.CondBranches != 1 {
		t.Errorf("branches = %+v", b)
	}
	if b.Mispredicted != 0 || b.PctCorrect != 100 {
		t.Errorf("perfect prediction stats = %+v", b)
	}
	if b.PctInstructions < 11.1 || b.PctInstructions > 11.2 {
		t.Errorf("pct instructions = %v, want ~11.11", b.PctInstructions)
	}
}

func TestBranchStatsStatic(t *testing.T) {
	// The single conditional branch is not taken; StaticTaken mispredicts it.
	b := miniTrace().Branches(bpred.StaticTaken{})
	if b.Mispredicted != 1 {
		t.Errorf("mispredicted = %d, want 1", b.Mispredicted)
	}
	if b.AvgMispredictDistance != 9 {
		t.Errorf("avg mispredict distance = %v, want 9", b.AvgMispredictDistance)
	}
}

func TestValidateGood(t *testing.T) {
	if err := miniTrace().Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateBrokenLink(t *testing.T) {
	tr := miniTrace()
	tr.Events[0].NextPC = 42
	if err := tr.Validate(); err == nil {
		t.Error("broken PC link not detected")
	}
}

func TestValidateZeroLatencyLoad(t *testing.T) {
	tr := miniTrace()
	tr.Events[2].Latency = 0
	if err := tr.Validate(); err == nil {
		t.Error("zero-latency load not detected")
	}
}

func TestValidateMissLatencyMismatch(t *testing.T) {
	tr := miniTrace()
	tr.Events[1].Latency = 49
	if err := tr.Validate(); err == nil {
		t.Error("miss latency != penalty not detected")
	}
}

func TestValidateBranchTarget(t *testing.T) {
	tr := miniTrace()
	tr.Events[4].Taken = true // NextPC stays 5 == Imm, so links still hold
	if err := tr.Validate(); err != nil {
		t.Errorf("taken branch to PC+1 should validate: %v", err)
	}
	tr.Events[4].Instr.Imm = 7
	if err := tr.Validate(); err == nil {
		t.Error("taken branch with NextPC != target not detected")
	}
}

func TestEventClassification(t *testing.T) {
	e := ev(isa.OpLock, 0, nil)
	if !e.IsAcquire() || e.IsRelease() {
		t.Error("lock should be acquire-only")
	}
	e = ev(isa.OpBarrier, 0, nil)
	if !e.IsAcquire() || !e.IsRelease() {
		t.Error("barrier should be acquire and release")
	}
	if ev(isa.OpLd, 0, nil).Class() != isa.ClassLoad {
		t.Error("load class wrong")
	}
}
