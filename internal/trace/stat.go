package trace

// Container-level statistics for serialized traces. Stat walks the on-disk
// structure — header, version-3 chunk frames, CRC footer — without decoding
// events into memory, so `tracetool info` can report the physical layout
// (chunk count, per-chunk CRC status, encoded bytes per event) of traces far
// larger than RAM would allow ReadTrace to hold twice.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// FileStat describes the physical layout of one serialized trace.
type FileStat struct {
	Version      uint32 // format version (1, 2, or 3)
	App          string
	Events       uint64 // declared event count
	Chunks       int    // version-3 chunk frames (0 for flat formats)
	ChunksOK     int    // chunks whose payload matched their CRC32
	PayloadBytes uint64 // encoded event bytes (excluding container framing)
	FileBytes    uint64 // total bytes consumed, framing included
	HasFooter    bool   // whole-file CRC footer present (versions >= 2)
	FooterOK     bool   // footer CRC matched the bytes read
}

// BytesPerEvent is the encoded payload density. Zero-event traces report 0.
func (s FileStat) BytesPerEvent() float64 {
	if s.Events == 0 {
		return 0
	}
	return float64(s.PayloadBytes) / float64(s.Events)
}

// Stat reads a serialized trace's container structure from r. Checksum
// mismatches — a corrupt chunk, a stale footer — are reported in the
// returned stat rather than as errors; only structural damage (bad magic,
// truncation, implausible frame sizes) fails.
func Stat(r io.Reader) (FileStat, error) {
	var s FileStat
	br := bufio.NewReaderSize(r, 1<<16)
	sum := crc32.NewIEEE()
	read := func(b []byte) error {
		n, err := io.ReadFull(br, b)
		s.FileBytes += uint64(n)
		sum.Write(b[:n])
		return err
	}

	var hdr [24]byte
	if err := read(hdr[:]); err != nil {
		return s, fmt.Errorf("trace: stat: short header: %w", err)
	}
	if [4]byte(hdr[0:4]) != traceMagic {
		return s, fmt.Errorf("trace: stat: bad magic %q", hdr[0:4])
	}
	s.Version = binary.LittleEndian.Uint32(hdr[4:8])
	switch s.Version {
	case legacyVersion, v2Version, formatVersion:
	default:
		return s, fmt.Errorf("trace: stat: unsupported format version %d", s.Version)
	}
	appLen := binary.LittleEndian.Uint32(hdr[20:24])
	if appLen > 1<<16 {
		return s, fmt.Errorf("trace: stat: implausible app name length %d", appLen)
	}
	app := make([]byte, appLen)
	if err := read(app); err != nil {
		return s, fmt.Errorf("trace: stat: short app name: %w", err)
	}
	s.App = string(app)
	var cnt [8]byte
	if err := read(cnt[:]); err != nil {
		return s, fmt.Errorf("trace: stat: short count: %w", err)
	}
	s.Events = binary.LittleEndian.Uint64(cnt[:])
	if s.Events > 1<<34 {
		return s, fmt.Errorf("trace: stat: implausible event count %d", s.Events)
	}

	if s.Version == formatVersion {
		var buf []byte
		for done := uint64(0); done < s.Events; {
			var ch [chunkHdrSize]byte
			if err := read(ch[:]); err != nil {
				return s, fmt.Errorf("trace: stat: short chunk header after %d events: %w", done, err)
			}
			nEvents := binary.LittleEndian.Uint32(ch[0:4])
			nBytes := binary.LittleEndian.Uint32(ch[4:8])
			if nEvents == 0 || uint64(nEvents) > s.Events-done || nEvents > chunkEvents {
				return s, fmt.Errorf("trace: stat: implausible chunk of %d events (%d remain)", nEvents, s.Events-done)
			}
			if nBytes > uint32(nEvents)*maxEventEnc {
				return s, fmt.Errorf("trace: stat: implausible chunk size %d for %d events", nBytes, nEvents)
			}
			if uint32(cap(buf)) < nBytes {
				buf = make([]byte, nBytes)
			}
			payload := buf[:nBytes]
			if err := read(payload); err != nil {
				return s, fmt.Errorf("trace: stat: short chunk payload after %d events: %w", done, err)
			}
			var crc [4]byte
			if err := read(crc[:]); err != nil {
				return s, fmt.Errorf("trace: stat: short chunk CRC after %d events: %w", done, err)
			}
			s.Chunks++
			if crc32.ChecksumIEEE(payload) == binary.LittleEndian.Uint32(crc[:]) {
				s.ChunksOK++
			}
			s.PayloadBytes += uint64(nBytes)
			done += uint64(nEvents)
		}
	} else {
		// Flat formats: a fixed-size record per event, no chunk framing.
		s.PayloadBytes = s.Events * eventSize
		if err := discard(br, s.PayloadBytes, read); err != nil {
			return s, fmt.Errorf("trace: stat: short flat records: %w", err)
		}
	}

	if s.Version >= v2Version {
		want := sum.Sum32()
		var foot [footerSize]byte
		if err := read(foot[:]); err != nil {
			return s, fmt.Errorf("trace: stat: short CRC footer: %w", err)
		}
		if [4]byte(foot[0:4]) != footerMagic {
			return s, fmt.Errorf("trace: stat: bad CRC footer magic %q", foot[0:4])
		}
		s.HasFooter = true
		s.FooterOK = binary.LittleEndian.Uint32(foot[4:8]) == want
	}
	return s, nil
}

// discard streams n payload bytes through read in bounded pieces.
func discard(br *bufio.Reader, n uint64, read func([]byte) error) error {
	buf := make([]byte, 64*1024)
	for n > 0 {
		chunk := uint64(len(buf))
		if chunk > n {
			chunk = n
		}
		if err := read(buf[:chunk]); err != nil {
			return err
		}
		n -= chunk
	}
	return nil
}

// Format renders the stat as the one-line physical summary tracetool prints.
func (s FileStat) Format() string {
	out := fmt.Sprintf("format v%d, %d bytes, %.2f bytes/event", s.Version, s.FileBytes, s.BytesPerEvent())
	if s.Version == formatVersion {
		out += fmt.Sprintf(", %d chunks (%d/%d CRC ok)", s.Chunks, s.ChunksOK, s.Chunks)
	}
	switch {
	case !s.HasFooter:
		out += ", no footer (legacy v1)"
	case s.FooterOK:
		out += ", footer CRC ok"
	default:
		out += ", FOOTER CRC MISMATCH"
	}
	return out
}
