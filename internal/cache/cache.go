// Package cache is the persistent content-addressed artifact store behind
// incremental sweeps: it memoizes the two expensive artifact classes of the
// experiment pipeline — generated traces and per-cell replay results — on
// disk, keyed by a digest of everything that could change the answer (the
// full generation or replay configuration, the trace content address, the
// trace format version, and the dynsched version).
//
// The store is designed never to return a wrong answer:
//
//   - Entries are written crash-safely through a temp file + fsync + rename
//     (obs.WriteFileAtomic), so a SIGKILL mid-write leaves either the old
//     entry or none — never a torn one under the entry's name.
//   - Every read re-verifies the entry: magic, plausible lengths, a CRC-32
//     over the whole entry, and the full key string stored inside the entry
//     (so even an FNV-64 address collision degrades to a miss, not a wrong
//     payload). Any mismatch deletes the entry and reports a miss; the
//     caller recomputes and overwrites.
//   - Two processes racing on one directory are safe by construction: both
//     compute the same deterministic payload for a key, and rename is
//     atomic, so concurrent Puts of an entry are idempotent and a Get
//     observes either a complete entry or none.
//
// An index file (index.json) carries LRU metadata and lifetime hit/miss
// counters for `hidelat cache stats`; it is advisory only — Open rescans the
// objects directory, so a stale or missing index never loses entries, and
// GC falls back to file mtimes for recency. GC evicts least-recently-used
// entries until the store fits a byte budget.
package cache

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"dynsched/internal/obs"
)

// Entry container constants.
var entryMagic = [4]byte{'D', 'S', 'C', '1'}

const (
	maxKeyLen     = 1 << 16 // sanity bound on the stored key string
	maxPayloadLen = 1 << 31 // sanity bound on the stored payload
)

// Options parameterizes Open.
type Options struct {
	// Version namespaces every key: entries written by a different dynsched
	// version (or trace format) can never satisfy this store's lookups.
	Version string
	// MaxBytes, when positive, bounds the store: a Put that pushes the total
	// past the bound triggers an LRU GC back under it. Zero leaves the store
	// unbounded until an explicit GC.
	MaxBytes int64
	// Metrics, when non-nil, receives the per-run "cache.hits",
	// "cache.misses", "cache.bytes_read", and "cache.bytes_written" counters
	// (excluded from the ledger's determinism FNV, so cold and warm runs
	// stay checksum-identical).
	Metrics *obs.Registry
}

// entryMeta is one entry's index record.
type entryMeta struct {
	Kind     string `json:"kind,omitempty"`
	Size     int64  `json:"size"`
	Created  int64  `json:"created,omitempty"`   // unix seconds
	LastUsed int64  `json:"last_used,omitempty"` // unix seconds, the LRU key
}

// indexFile is the on-disk shape of index.json.
type indexFile struct {
	Schema  int                  `json:"schema"`
	Version string               `json:"version"`
	Hits    uint64               `json:"hits"`   // lifetime, across processes
	Misses  uint64               `json:"misses"` // lifetime, across processes
	Entries map[string]entryMeta `json:"entries"`
}

// Store is an on-disk content-addressed artifact cache. The zero value is
// not usable; call Open. All methods are safe on a nil *Store (they report
// misses and do nothing), so call sites need no cache-enabled branches.
type Store struct {
	dir     string
	version string
	max     int64
	reg     *obs.Registry

	mu      sync.Mutex
	entries map[string]entryMeta
	total   int64 // sum of entry sizes

	// Session counters (lifetime counters live in the index).
	hits, misses, verified, divergent uint64
	baseHits, baseMisses              uint64 // lifetime totals loaded from the index
}

// Open opens (creating if needed) the store rooted at dir. The objects
// directory is scanned so entries survive a missing or stale index file.
func Open(dir string, o Options) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("cache: open %s: %w", dir, err)
	}
	s := &Store{
		dir: dir, version: o.Version, max: o.MaxBytes, reg: o.Metrics,
		entries: make(map[string]entryMeta),
	}
	var idx indexFile
	if data, err := os.ReadFile(s.indexPath()); err == nil {
		// A corrupt index is rebuilt from the scan below, never an error.
		if json.Unmarshal(data, &idx) == nil {
			s.baseHits, s.baseMisses = idx.Hits, idx.Misses
		}
	}
	if err := s.scan(idx.Entries); err != nil {
		return nil, err
	}
	return s, nil
}

// scan walks the objects directory, merging any index metadata for entries
// that still exist. The directory is the source of truth; the index only
// contributes kind labels and LRU times (capped to be at least the mtime).
func (s *Store) scan(fromIndex map[string]entryMeta) error {
	root := filepath.Join(s.dir, "objects")
	shards, err := os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("cache: scan %s: %w", root, err)
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(root, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			if f.IsDir() || strings.HasPrefix(name, ".") {
				continue // temp files from in-flight or crashed writers
			}
			fi, err := f.Info()
			if err != nil {
				continue
			}
			m := entryMeta{Size: fi.Size(), LastUsed: fi.ModTime().Unix(), Created: fi.ModTime().Unix()}
			if im, ok := fromIndex[name]; ok {
				m.Kind = im.Kind
				if im.Created != 0 {
					m.Created = im.Created
				}
				if im.LastUsed > m.LastUsed {
					m.LastUsed = im.LastUsed
				}
			}
			s.entries[name] = m
			s.total += m.Size
		}
	}
	return nil
}

func (s *Store) indexPath() string { return filepath.Join(s.dir, "index.json") }

// Addr returns the content address of (kind, key) under this store's
// version namespace: the FNV-64a of the full namespaced key, in the same
// %016x form the distributed coordinator uses for trace addresses.
func (s *Store) Addr(kind, key string) string {
	return addrOf(s.fullKey(kind, key))
}

func (s *Store) fullKey(kind, key string) string {
	return "v=" + s.version + "|" + kind + "|" + key
}

func addrOf(fullKey string) string {
	h := fnv.New64a()
	io.WriteString(h, fullKey)
	return fmt.Sprintf("%016x", h.Sum64())
}

func (s *Store) path(addr string) string {
	return filepath.Join(s.dir, "objects", addr[:2], addr)
}

// Get returns the payload stored under (kind, key). A missing, torn,
// bit-flipped, or key-colliding entry is a miss — the corrupt file is
// removed so the next Put rewrites it cleanly.
func (s *Store) Get(kind, key string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	full := s.fullKey(kind, key)
	addr := addrOf(full)
	payload, err := readEntry(s.path(addr), full)
	if err != nil {
		if !os.IsNotExist(err) {
			// Corrupt or mismatched: delete so the recompute can replace it.
			os.Remove(s.path(addr))
		}
		s.count(&s.misses, "cache.misses", 1)
		s.mu.Lock()
		if _, ok := s.entries[addr]; ok && !os.IsNotExist(err) {
			s.total -= s.entries[addr].Size
			delete(s.entries, addr)
		}
		s.mu.Unlock()
		return nil, false
	}
	now := time.Now()
	s.mu.Lock()
	if m, ok := s.entries[addr]; ok {
		m.LastUsed = now.Unix()
		s.entries[addr] = m
	}
	s.mu.Unlock()
	// Touch the file so LRU survives processes that never write the index.
	os.Chtimes(s.path(addr), now, now)
	s.count(&s.hits, "cache.hits", 1)
	s.reg.Counter("cache.bytes_read").Add(uint64(len(payload)))
	return payload, true
}

// Put stores payload under (kind, key), atomically and crash-safely. An
// existing entry is replaced (deterministic recomputation makes old and new
// identical, so the replace is idempotent).
func (s *Store) Put(kind, key string, payload []byte) error {
	if s == nil {
		return nil
	}
	full := s.fullKey(kind, key)
	if len(full) > maxKeyLen {
		return fmt.Errorf("cache: key too long (%d bytes)", len(full))
	}
	addr := addrOf(full)
	path := s.path(addr)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("cache: put: %w", err)
	}
	var size int64
	err := obs.WriteFileAtomic(path, func(w io.Writer) error {
		n, err := writeEntry(w, full, payload)
		size = n
		return err
	})
	if err != nil {
		return err
	}
	now := time.Now().Unix()
	s.mu.Lock()
	if old, ok := s.entries[addr]; ok {
		s.total -= old.Size
	}
	s.entries[addr] = entryMeta{Kind: kind, Size: size, Created: now, LastUsed: now}
	s.total += size
	needGC := s.max > 0 && s.total > s.max
	s.mu.Unlock()
	s.reg.Counter("cache.bytes_written").Add(uint64(size))
	if needGC {
		s.GC(s.max)
	}
	return nil
}

// writeEntry serializes one entry: magic, key length + key, payload length +
// payload, and a CRC-32 (IEEE) over everything before it.
func writeEntry(w io.Writer, fullKey string, payload []byte) (int64, error) {
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	var n int64
	write := func(b []byte) error {
		m, err := mw.Write(b)
		n += int64(m)
		return err
	}
	var u32 [4]byte
	if err := write(entryMagic[:]); err != nil {
		return n, err
	}
	binary.LittleEndian.PutUint32(u32[:], uint32(len(fullKey)))
	if err := write(u32[:]); err != nil {
		return n, err
	}
	if err := write([]byte(fullKey)); err != nil {
		return n, err
	}
	binary.LittleEndian.PutUint32(u32[:], uint32(len(payload)))
	if err := write(u32[:]); err != nil {
		return n, err
	}
	if err := write(payload); err != nil {
		return n, err
	}
	binary.LittleEndian.PutUint32(u32[:], crc.Sum32())
	m, err := w.Write(u32[:])
	n += int64(m)
	return n, err
}

// readEntry reads and fully verifies one entry file, returning its payload.
// Every failure mode — short file, bad magic, implausible lengths, CRC
// mismatch, key mismatch — is an error the caller treats as a miss.
func readEntry(path, wantKey string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 4+4+4+4 {
		return nil, fmt.Errorf("cache: entry %s: truncated (%d bytes)", path, len(data))
	}
	if [4]byte(data[0:4]) != entryMagic {
		return nil, fmt.Errorf("cache: entry %s: bad magic %q", path, data[0:4])
	}
	keyLen := binary.LittleEndian.Uint32(data[4:8])
	if keyLen > maxKeyLen || int64(len(data)) < 8+int64(keyLen)+8 {
		return nil, fmt.Errorf("cache: entry %s: implausible key length %d", path, keyLen)
	}
	key := string(data[8 : 8+keyLen])
	off := 8 + int(keyLen)
	payLen := binary.LittleEndian.Uint32(data[off : off+4])
	off += 4
	if uint64(payLen) > maxPayloadLen || int64(len(data)) != int64(off)+int64(payLen)+4 {
		return nil, fmt.Errorf("cache: entry %s: length mismatch (payload %d, file %d)", path, payLen, len(data))
	}
	payload := data[off : off+int(payLen)]
	want := binary.LittleEndian.Uint32(data[off+int(payLen):])
	if got := crc32.ChecksumIEEE(data[:off+int(payLen)]); got != want {
		return nil, fmt.Errorf("cache: entry %s: CRC mismatch (computed %08x, stored %08x)", path, got, want)
	}
	if wantKey != "" && key != wantKey {
		return nil, fmt.Errorf("cache: entry %s: key mismatch (address collision)", path)
	}
	return payload, nil
}

// count bumps a session counter and its registry mirror.
func (s *Store) count(local *uint64, name string, n uint64) {
	s.mu.Lock()
	*local += n
	s.mu.Unlock()
	s.reg.Counter(name).Add(n)
}

// CountVerified records a -cache-verify recomputation: ok says whether the
// recomputed result matched the cached one.
func (s *Store) CountVerified(ok bool) {
	if s == nil {
		return
	}
	if ok {
		s.count(&s.verified, "cache.verified", 1)
	} else {
		s.count(&s.divergent, "cache.verify_failures", 1)
	}
}

// Stats summarizes the store for `hidelat cache stats` and the run report.
type Stats struct {
	Dir     string `json:"dir"`
	Entries int    `json:"entries"`
	Bytes   int64  `json:"bytes"`
	// Session counters: this process only.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Verified  uint64 `json:"verified,omitempty"`
	Divergent uint64 `json:"divergent,omitempty"`
	// Lifetime counters: accumulated across processes via the index file.
	LifetimeHits   uint64 `json:"lifetime_hits"`
	LifetimeMisses uint64 `json:"lifetime_misses"`
}

// Stats returns a point-in-time summary. Safe on a nil store.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Dir: s.dir, Entries: len(s.entries), Bytes: s.total,
		Hits: s.hits, Misses: s.misses, Verified: s.verified, Divergent: s.divergent,
		LifetimeHits: s.baseHits + s.hits, LifetimeMisses: s.baseMisses + s.misses,
	}
}

// Hits returns the session hit count (0 on a nil store).
func (s *Store) Hits() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// Misses returns the session miss count (0 on a nil store).
func (s *Store) Misses() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.misses
}

// Close persists the index (LRU metadata plus lifetime counters). The store
// remains usable; Close may be called repeatedly. Safe on a nil store.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	idx := indexFile{
		Schema: 1, Version: s.version,
		Hits: s.baseHits + s.hits, Misses: s.baseMisses + s.misses,
		Entries: make(map[string]entryMeta, len(s.entries)),
	}
	for a, m := range s.entries {
		idx.Entries[a] = m
	}
	s.mu.Unlock()
	return obs.WriteFileAtomic(s.indexPath(), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(idx)
	})
}

// GC evicts least-recently-used entries until the store holds at most
// maxBytes, returning how many entries were removed and how many bytes were
// freed. maxBytes <= 0 empties the store.
func (s *Store) GC(maxBytes int64) (removed int, freed int64, err error) {
	if s == nil {
		return 0, 0, nil
	}
	s.mu.Lock()
	type cand struct {
		addr string
		meta entryMeta
	}
	cands := make([]cand, 0, len(s.entries))
	for a, m := range s.entries {
		cands = append(cands, cand{a, m})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].meta.LastUsed != cands[j].meta.LastUsed {
			return cands[i].meta.LastUsed < cands[j].meta.LastUsed
		}
		return cands[i].addr < cands[j].addr
	})
	var victims []cand
	total := s.total
	for _, c := range cands {
		if total <= maxBytes {
			break
		}
		victims = append(victims, c)
		total -= c.meta.Size
	}
	s.mu.Unlock()
	for _, v := range victims {
		if rmErr := os.Remove(s.path(v.addr)); rmErr != nil && !os.IsNotExist(rmErr) {
			err = rmErr
			continue
		}
		s.mu.Lock()
		if m, ok := s.entries[v.addr]; ok {
			s.total -= m.Size
			delete(s.entries, v.addr)
		}
		s.mu.Unlock()
		removed++
		freed += v.meta.Size
	}
	if cerr := s.Close(); err == nil {
		err = cerr
	}
	return removed, freed, err
}

// Verify re-reads every entry end to end (magic, lengths, CRC, key) and
// removes the ones that fail, returning how many were checked and how many
// were corrupt. It also sweeps temp files left by crashed writers.
func (s *Store) Verify() (checked, corrupt int, err error) {
	if s == nil {
		return 0, 0, nil
	}
	s.mu.Lock()
	addrs := make([]string, 0, len(s.entries))
	for a := range s.entries {
		addrs = append(addrs, a)
	}
	s.mu.Unlock()
	sort.Strings(addrs)
	for _, a := range addrs {
		checked++
		if _, rerr := readEntry(s.path(a), ""); rerr != nil {
			corrupt++
			os.Remove(s.path(a))
			s.mu.Lock()
			if m, ok := s.entries[a]; ok {
				s.total -= m.Size
				delete(s.entries, a)
			}
			s.mu.Unlock()
		}
	}
	// Stale temp files are debris from crashed atomic writes; sweep them.
	root := filepath.Join(s.dir, "objects")
	if shards, derr := os.ReadDir(root); derr == nil {
		for _, sh := range shards {
			if !sh.IsDir() {
				continue
			}
			files, derr := os.ReadDir(filepath.Join(root, sh.Name()))
			if derr != nil {
				continue
			}
			for _, f := range files {
				if strings.HasPrefix(f.Name(), ".") {
					os.Remove(filepath.Join(root, sh.Name(), f.Name()))
				}
			}
		}
	}
	if cerr := s.Close(); cerr != nil {
		err = cerr
	}
	return checked, corrupt, err
}

// Clear removes every entry and the index. Safe on a nil store.
func (s *Store) Clear() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.entries = make(map[string]entryMeta)
	s.total = 0
	s.mu.Unlock()
	if err := os.RemoveAll(filepath.Join(s.dir, "objects")); err != nil {
		return err
	}
	os.Remove(s.indexPath())
	return os.MkdirAll(filepath.Join(s.dir, "objects"), 0o755)
}
