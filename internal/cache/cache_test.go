package cache

// Corruption, crash-debris, concurrency, and eviction tests for the
// content-addressed store. The invariant under test throughout: the store
// may lose entries (any damage degrades to a miss and a recompute) but must
// never return a payload that does not match its key.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dynsched/internal/obs"
)

func open(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundtrip(t *testing.T) {
	s := open(t, t.TempDir())
	payload := []byte("the replayed numbers")
	if _, ok := s.Get("cell", "k"); ok {
		t.Fatal("hit on an empty store")
	}
	if err := s.Put("cell", "k", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("cell", "k")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want the stored payload", got, ok)
	}
	// Kind is part of the identity: the same key under another kind misses.
	if _, ok := s.Get("trace", "k"); ok {
		t.Fatal("kind must namespace keys")
	}
	st := s.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 entry, 1 hit, 2 misses", st)
	}
}

// entryFile returns the on-disk path of (kind, key)'s entry.
func entryFile(s *Store, kind, key string) string {
	return s.path(addrOf(s.fullKey(kind, key)))
}

func TestTruncatedEntryIsAMissAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	payload := []byte("0123456789abcdef0123456789abcdef")
	if err := s.Put("trace", "k", payload); err != nil {
		t.Fatal(err)
	}
	path := entryFile(s, "trace", "k")
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A torn write at any prefix length must read as a miss, never as data.
	for _, n := range []int{0, 3, 4, 7, 11, len(whole) / 2, len(whole) - 1} {
		if err := os.WriteFile(path, whole[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get("trace", "k"); ok {
			t.Fatalf("truncation to %d bytes returned a hit", n)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("corrupt entry (truncated to %d) not removed", n)
		}
		// The recompute path: Put overwrites cleanly and Get works again.
		if err := s.Put("trace", "k", payload); err != nil {
			t.Fatal(err)
		}
		if got, ok := s.Get("trace", "k"); !ok || !bytes.Equal(got, payload) {
			t.Fatalf("store did not recover after truncation to %d", n)
		}
	}
}

func TestBitFlipIsRejectedByCRC(t *testing.T) {
	s := open(t, t.TempDir())
	payload := bytes.Repeat([]byte{0xa5}, 128)
	if err := s.Put("trace", "k", payload); err != nil {
		t.Fatal(err)
	}
	path := entryFile(s, "trace", "k")
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit at a spread of offsets: header, key, payload, CRC.
	for _, off := range []int{0, 5, 9, 20, len(whole) / 2, len(whole) - 2} {
		mut := append([]byte(nil), whole...)
		mut[off] ^= 0x10
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if got, ok := s.Get("trace", "k"); ok {
			t.Fatalf("bit flip at offset %d returned a hit (%d bytes)", off, len(got))
		}
		if err := s.Put("trace", "k", payload); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAddressCollisionDegradesToMiss(t *testing.T) {
	s := open(t, t.TempDir())
	if err := s.Put("trace", "k1", []byte("k1 payload")); err != nil {
		t.Fatal(err)
	}
	// Simulate an FNV-64 address collision: k1's (internally consistent,
	// CRC-valid) entry sits at the address Get computes for k2.
	src := entryFile(s, "trace", "k1")
	dst := entryFile(s, "trace", "k2")
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("trace", "k2"); ok {
		t.Fatalf("address collision returned k1's payload %q for k2", got)
	}
}

func TestTwoStoresOneDirectory(t *testing.T) {
	// Two Stores (two "processes") race puts and gets of the same keys on
	// one directory. Deterministic payloads + atomic renames make the race
	// benign: every hit must carry the right payload.
	dir := t.TempDir()
	a, b := open(t, dir), open(t, dir)
	const keys = 16
	payload := func(i int) []byte { return []byte(fmt.Sprintf("payload-%d", i)) }
	var wg sync.WaitGroup
	for _, s := range []*Store{a, b} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 8; round++ {
				for i := 0; i < keys; i++ {
					key := fmt.Sprintf("k%d", i)
					if got, ok := s.Get("cell", key); ok {
						if !bytes.Equal(got, payload(i)) {
							t.Errorf("wrong payload for %s: %q", key, got)
						}
					} else if err := s.Put("cell", key, payload(i)); err != nil {
						t.Errorf("put %s: %v", key, err)
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// A third open sees all entries and serves them all.
	c := open(t, dir)
	for i := 0; i < keys; i++ {
		got, ok := c.Get("cell", fmt.Sprintf("k%d", i))
		if !ok || !bytes.Equal(got, payload(i)) {
			t.Fatalf("k%d after reopen: %q, %v", i, got, ok)
		}
	}
}

func TestGCEvictsLeastRecentlyUsed(t *testing.T) {
	s := open(t, t.TempDir())
	payload := bytes.Repeat([]byte{1}, 100)
	for i := 0; i < 4; i++ {
		if err := s.Put("trace", fmt.Sprintf("k%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	// Age the entries deterministically: k2 is oldest, then k0, k3, k1.
	order := []int{2, 0, 3, 1}
	s.mu.Lock()
	for rank, i := range order {
		a := addrOf(s.fullKey("trace", fmt.Sprintf("k%d", i)))
		m := s.entries[a]
		m.LastUsed = int64(1000 + rank)
		s.entries[a] = m
	}
	perEntry := s.total / 4
	s.mu.Unlock()

	removed, freed, err := s.GC(2 * perEntry)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 || freed != 2*perEntry {
		t.Fatalf("GC removed %d/%d bytes, want 2 entries / %d bytes", removed, freed, 2*perEntry)
	}
	for _, i := range order[:2] {
		if _, ok := s.Get("trace", fmt.Sprintf("k%d", i)); ok {
			t.Fatalf("k%d survived GC but was least recently used", i)
		}
	}
	for _, i := range order[2:] {
		if _, ok := s.Get("trace", fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d evicted out of LRU order", i)
		}
	}
}

func TestMaxBytesTriggersAutoGC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Version: "test", MaxBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put("trace", fmt.Sprintf("k%d", i), bytes.Repeat([]byte{2}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Bytes > 300 {
		t.Fatalf("store holds %d bytes, MaxBytes=300 not enforced", st.Bytes)
	}
}

func TestVerifyRemovesCorruptionAndDebris(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	for i := 0; i < 3; i++ {
		if err := s.Put("cell", fmt.Sprintf("k%d", i), []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt one entry and plant a crashed writer's temp file.
	victim := entryFile(s, "cell", "k1")
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	debris := filepath.Join(filepath.Dir(victim), ".tmp-12345")
	if err := os.WriteFile(debris, []byte("half an entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	checked, corrupt, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if checked != 3 || corrupt != 1 {
		t.Fatalf("Verify = %d checked / %d corrupt, want 3/1", checked, corrupt)
	}
	if _, err := os.Stat(victim); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not removed")
	}
	if _, err := os.Stat(debris); !os.IsNotExist(err) {
		t.Fatal("temp-file debris not swept")
	}
	if checked, corrupt, _ := s.Verify(); checked != 2 || corrupt != 0 {
		t.Fatalf("second Verify = %d/%d, want a clean 2/0", checked, corrupt)
	}
}

func TestIndexPersistsLifetimeCountersAndSurvivesLoss(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.Put("trace", "k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	s.Get("trace", "k")
	s.Get("trace", "missing")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir)
	if st := s2.Stats(); st.LifetimeHits != 1 || st.LifetimeMisses != 1 || st.Entries != 1 {
		t.Fatalf("reopened stats = %+v, want lifetime 1/1 and 1 entry", st)
	}
	// The index is advisory: deleting it must not lose entries.
	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatal(err)
	}
	s3 := open(t, dir)
	if got, ok := s3.Get("trace", "k"); !ok || !bytes.Equal(got, []byte("payload")) {
		t.Fatal("entry lost with the index file")
	}
	// A corrupt index is likewise rebuilt, not fatal.
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	s4 := open(t, dir)
	if _, ok := s4.Get("trace", "k"); !ok {
		t.Fatal("entry lost with a corrupt index file")
	}
}

func TestClearEmptiesTheStore(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.Put("trace", "k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats after Clear = %+v", st)
	}
	if _, ok := s.Get("trace", "k"); ok {
		t.Fatal("hit after Clear")
	}
	// The store stays usable.
	if err := s.Put("trace", "k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("trace", "k"); !ok {
		t.Fatal("store unusable after Clear")
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	if _, ok := s.Get("trace", "k"); ok {
		t.Fatal("nil store hit")
	}
	if err := s.Put("trace", "k", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.GC(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	s.CountVerified(true)
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
	if s.Hits() != 0 || s.Misses() != 0 {
		t.Fatal("nil counters nonzero")
	}
}

func TestMetricsCountersMirror(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := Open(t.TempDir(), Options{Version: "test", Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	s.Get("trace", "k") // miss
	if err := s.Put("trace", "k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	s.Get("trace", "k") // hit
	snap := reg.Snapshot()
	if snap.Counters["cache.hits"] != 1 || snap.Counters["cache.misses"] != 1 {
		t.Fatalf("registry counters = %+v", snap.Counters)
	}
	if snap.Counters["cache.bytes_written"] == 0 || snap.Counters["cache.bytes_read"] == 0 {
		t.Fatalf("byte counters not mirrored: %+v", snap.Counters)
	}
}
