package resched

import (
	"testing"

	"dynsched/internal/consistency"
	"dynsched/internal/cpu"
	"dynsched/internal/isa"
	"dynsched/internal/trace"
)

// tb is a minimal trace builder for scheduling tests.
type tb struct {
	tr *trace.Trace
	pc int32
}

func newTB() *tb {
	return &tb{tr: &trace.Trace{App: "sched", NumCPUs: 16, MissPenalty: 50}}
}

func (b *tb) emit(e trace.Event) *tb {
	e.PC = b.pc
	e.NextPC = b.pc + 1
	b.pc++
	b.tr.Events = append(b.tr.Events, e)
	return b
}

func (b *tb) alu(dst, s1, s2 uint8) *tb {
	return b.emit(trace.Event{Instr: isa.Instr{Op: isa.OpAdd, Dst: dst, Src1: s1, Src2: s2}})
}

func (b *tb) load(dst, addrReg uint8, miss bool) *tb {
	lat := uint32(1)
	if miss {
		lat = 50
	}
	return b.emit(trace.Event{Instr: isa.Instr{Op: isa.OpLd, Dst: dst, Src1: addrReg}, Addr: 64, Miss: miss, Latency: lat})
}

func (b *tb) store(addrReg, data uint8) *tb {
	return b.emit(trace.Event{Instr: isa.Instr{Op: isa.OpSt, Src1: addrReg, Src2: data}, Addr: 128, Latency: 1})
}

func (b *tb) branch(reg uint8) *tb {
	return b.emit(trace.Event{Instr: isa.Instr{Op: isa.OpBnez, Src1: reg, Imm: 9999}})
}

func (b *tb) halt() *trace.Trace {
	b.emit(trace.Event{Instr: isa.Instr{Op: isa.OpHalt}})
	b.tr.Events[len(b.tr.Events)-1].NextPC = b.pc - 1
	return b.tr
}

func ops(tr *trace.Trace) []isa.Op {
	out := make([]isa.Op, len(tr.Events))
	for i := range tr.Events {
		out[i] = tr.Events[i].Instr.Op
	}
	return out
}

func TestHoistsIndependentLoad(t *testing.T) {
	// alu alu alu load(miss) use → load should hoist to the front.
	b := newTB()
	b.alu(3, 4, 4).alu(3, 3, 4).alu(3, 3, 3)
	b.load(2, 1, true)
	b.alu(5, 2, 2)
	tr := b.halt()
	out, st := Reschedule(tr, 0)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.Events[0].Instr.Op != isa.OpLd {
		t.Errorf("load not hoisted to front: %v", ops(out))
	}
	if st.Hoisted != 1 || st.TotalHoist != 3 || st.MissesHoisted != 1 {
		t.Errorf("stats = %+v, want 1 hoist of distance 3", st)
	}
}

func TestDoesNotCrossAddressProducer(t *testing.T) {
	// alu defines r1; load uses r1 as its address: no hoist above it.
	b := newTB()
	b.alu(3, 4, 4)
	b.alu(1, 4, 4) // produces the address
	b.load(2, 1, true)
	tr := b.halt()
	out, _ := Reschedule(tr, 0)
	// The load may hoist past the first alu only if it could cross the
	// producer — it cannot, so it must stay right after instruction 1.
	if out.Events[1].Instr.Op == isa.OpLd || out.Events[0].Instr.Op == isa.OpLd {
		t.Errorf("load crossed its address producer: %v", ops(out))
	}
}

func TestDoesNotCrossStoreOrBranch(t *testing.T) {
	b := newTB()
	b.store(6, 7)
	b.alu(3, 4, 4)
	b.load(2, 1, true)
	b.branch(3)
	b.alu(3, 4, 4)
	b.load(8, 1, true)
	tr := b.halt()
	out, _ := Reschedule(tr, 0)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// First load may hoist above the alu but not above the store.
	if out.Events[0].Instr.Op != isa.OpSt {
		t.Errorf("store displaced: %v", ops(out))
	}
	if out.Events[1].Instr.Op != isa.OpLd {
		t.Errorf("first load should sit just after the store: %v", ops(out))
	}
	// Second load must stay after the branch.
	for i, e := range out.Events {
		if e.Instr.Op == isa.OpBnez {
			if i+2 >= len(out.Events) || out.Events[i+2].Instr.Op != isa.OpLd {
				// load hoists above the alu to just after the branch
				if out.Events[i+1].Instr.Op != isa.OpLd {
					t.Errorf("second load misplaced: %v", ops(out))
				}
			}
		}
	}
}

func TestDoesNotCrossDestReader(t *testing.T) {
	// alu reads r2; the load writes r2: WAR — no hoist above it.
	b := newTB()
	b.alu(9, 2, 2) // reads r2 (old value)
	b.load(2, 1, true)
	tr := b.halt()
	out, st := Reschedule(tr, 0)
	if out.Events[0].Instr.Op != isa.OpAdd {
		t.Errorf("load crossed a reader of its destination: %v", ops(out))
	}
	if st.Hoisted != 0 {
		t.Errorf("stats = %+v, want no hoists", st)
	}
}

func TestMaxHoistBound(t *testing.T) {
	b := newTB()
	for i := 0; i < 10; i++ {
		b.alu(3, 4, 4)
	}
	b.load(2, 1, true)
	tr := b.halt()
	out, st := Reschedule(tr, 4)
	if st.MaxHoist != 4 {
		t.Errorf("max hoist = %d, want 4 (bounded)", st.MaxHoist)
	}
	if out.Events[6].Instr.Op != isa.OpLd {
		t.Errorf("load at wrong slot: %v", ops(out))
	}
}

func TestPreservesMultiset(t *testing.T) {
	b := newTB()
	b.alu(3, 4, 4).load(2, 1, true).store(6, 7).alu(5, 2, 2).branch(5).alu(3, 4, 4).load(8, 1, false)
	tr := b.halt()
	out, _ := Reschedule(tr, 0)
	if len(out.Events) != len(tr.Events) {
		t.Fatalf("event count changed: %d vs %d", len(out.Events), len(tr.Events))
	}
	count := map[isa.Op]int{}
	for i := range tr.Events {
		count[tr.Events[i].Instr.Op]++
		count[out.Events[i].Instr.Op]--
	}
	for op, c := range count {
		if c != 0 {
			t.Errorf("opcode %v count changed by %d", op, c)
		}
	}
}

// The point of the exercise: rescheduling improves the SS processor's
// ability to hide read latency (the paper's future-work hypothesis).
func TestReschedulingHelpsSS(t *testing.T) {
	// Pattern: address computed early, then filler, then load immediately
	// before its use — the worst case for SS, the best case for scheduling.
	b := newTB()
	for r := 0; r < 30; r++ {
		b.alu(1, 4, 4) // address
		for i := 0; i < 60; i++ {
			b.alu(3, 4, 4) // independent filler, longer than the miss latency
		}
		b.load(2, 1, true)
		b.alu(5, 2, 2) // immediate use
	}
	tr := b.halt()
	out, st := Reschedule(tr, 0)
	if st.Hoisted == 0 {
		t.Fatal("nothing hoisted")
	}
	before, err := cpu.RunSS(tr, cpu.Config{Model: consistency.RC})
	if err != nil {
		t.Fatal(err)
	}
	after, err := cpu.RunSS(out, cpu.Config{Model: consistency.RC})
	if err != nil {
		t.Fatal(err)
	}
	if after.Breakdown.Read >= before.Breakdown.Read {
		t.Errorf("rescheduling did not reduce SS read stall: %d vs %d",
			after.Breakdown.Read, before.Breakdown.Read)
	}
	if float64(after.Breakdown.Read) > 0.1*float64(before.Breakdown.Read) {
		t.Errorf("hoisting past the full latency should hide nearly all read stall: %d vs %d",
			after.Breakdown.Read, before.Breakdown.Read)
	}
}
