// Package resched implements the compiler technique the paper proposes as
// future work (§5, §7): rescheduling code so that loads issue earlier than
// their uses, letting a statically scheduled processor with non-blocking
// reads (the SS model) hide read latency without dynamic-scheduling
// hardware — "such compiler rescheduling may allow dynamic processors with
// small windows or statically scheduled processors with non-blocking reads
// to effectively hide read latency with simpler hardware".
//
// The transformation operates on the dynamic trace, hoisting each load as
// early as legality allows within its basic block (the span since the last
// branch, synchronization, or halt), mimicking what a list scheduler with
// conservative alias analysis could have done to the object code:
//
//   - a load never moves above the producer of its address register;
//   - a load never moves above any store (no alias information);
//   - a load never moves above an instruction that reads or writes the
//     load's destination register (WAR/WAW in the schedule);
//   - loads do not cross other loads (memory-order conservatism keeps the
//     transformed trace legal under every consistency model);
//   - branches, synchronization, and halts are scheduling barriers.
package resched

import (
	"dynsched/internal/isa"
	"dynsched/internal/trace"
)

// Level selects how aggressive the scheduler is.
type Level uint8

const (
	// Conservative models a basic-block list scheduler with no alias
	// information: loads stop at branches, synchronization, stores, and
	// other loads.
	Conservative Level = iota
	// Aggressive models a global scheduler with oracle alias analysis
	// (software pipelining): loads may cross branches and other loads, and
	// may cross stores to different word addresses. Synchronization remains
	// a hard barrier, so the transformation is legal under release
	// consistency.
	Aggressive
)

// Stats reports what the scheduler accomplished.
type Stats struct {
	Loads         uint64  // total loads considered
	Hoisted       uint64  // loads moved at least one slot
	TotalHoist    uint64  // sum of hoist distances (instructions)
	MaxHoist      uint64  // largest single hoist
	AvgHoist      float64 // mean hoist distance over hoisted loads
	MissesHoisted uint64  // hoisted loads that were cache misses
}

// Reschedule returns a copy of tr with loads hoisted, plus statistics.
// maxHoist bounds the distance a load may move (0 means unbounded within
// the basic block). The result has its PC links renumbered so it remains a
// structurally valid trace for the replay models.
func Reschedule(tr *trace.Trace, maxHoist int) (*trace.Trace, Stats) {
	return RescheduleLevel(tr, maxHoist, Conservative)
}

// RescheduleLevel is Reschedule with an explicit aggressiveness level.
// Aggressive scheduling should be bounded (maxHoist > 0); unbounded global
// motion across a whole dynamic trace is not something a compiler could
// emit. A maxHoist of 0 with Aggressive defaults to 64.
func RescheduleLevel(tr *trace.Trace, maxHoist int, level Level) (*trace.Trace, Stats) {
	if level == Aggressive && maxHoist == 0 {
		maxHoist = 64
	}
	out := &trace.Trace{
		App:         tr.App + "+resched",
		CPU:         tr.CPU,
		NumCPUs:     tr.NumCPUs,
		MissPenalty: tr.MissPenalty,
		Events:      make([]trace.Event, len(tr.Events)),
	}
	copy(out.Events, tr.Events)
	var st Stats

	events := out.Events
	blockStart := 0
	for i := 0; i < len(events); i++ {
		e := &events[i]
		switch e.Class() {
		case isa.ClassBranch, isa.ClassSync, isa.ClassHalt:
			blockStart = i + 1
			continue
		case isa.ClassLoad:
			st.Loads++
		default:
			continue
		}

		// Find the earliest legal slot for the load at index i. The load
		// stays at i during the scan; it is moved once, at the end.
		target := i
		lo := blockStart
		if level == Aggressive {
			lo = 0 // sync ops still block via blocksLoadAggressive
			if i-maxHoist > lo {
				lo = i - maxHoist
			}
		}
		for target > lo {
			var blocked bool
			if level == Aggressive {
				blocked = blocksLoadAggressive(&events[target-1], &events[i])
			} else {
				blocked = blocksLoad(&events[target-1], &events[i])
			}
			if blocked {
				break
			}
			target--
		}
		if maxHoist > 0 && i-target > maxHoist {
			target = i - maxHoist
		}
		if target < i {
			ld := events[i]
			copy(events[target+1:i+1], events[target:i])
			events[target] = ld
			dist := uint64(i - target)
			st.Hoisted++
			st.TotalHoist += dist
			if dist > st.MaxHoist {
				st.MaxHoist = dist
			}
			if ld.Miss {
				st.MissesHoisted++
			}
		}
	}
	if st.Hoisted > 0 {
		st.AvgHoist = float64(st.TotalHoist) / float64(st.Hoisted)
	}

	relink(out)
	return out, st
}

// blocksLoad reports whether the load may not be hoisted above prev.
func blocksLoad(prev, load *trace.Event) bool {
	switch prev.Class() {
	case isa.ClassBranch, isa.ClassSync, isa.ClassHalt, isa.ClassStore, isa.ClassLoad:
		return true // barriers, stores (no alias info), and memory order
	}
	// True dependence: prev produces the load's address register.
	if prev.Instr.HasDest() && prev.Instr.Dst == load.Instr.Src1 {
		return true
	}
	// Anti/output dependence on the load's destination.
	var buf [2]uint8
	for _, r := range prev.Instr.SrcRegs(buf[:0]) {
		if r == load.Instr.Dst {
			return true // prev reads the register the load overwrites
		}
	}
	if prev.Instr.HasDest() && prev.Instr.Dst == load.Instr.Dst {
		return true
	}
	return false
}

// blocksLoadAggressive is the Aggressive-level legality check: only
// synchronization, true register dependences, WAR/WAW on the destination,
// and same-address memory operations block the hoist.
func blocksLoadAggressive(prev, load *trace.Event) bool {
	switch prev.Class() {
	case isa.ClassSync, isa.ClassHalt:
		return true
	case isa.ClassStore, isa.ClassLoad:
		if prev.Addr == load.Addr {
			return true // same word: order must be preserved
		}
	case isa.ClassBranch:
		// Global scheduling may cross branches, but not if the branch reads
		// the load's destination (the load would clobber the condition).
		var buf [2]uint8
		for _, r := range prev.Instr.SrcRegs(buf[:0]) {
			if r == load.Instr.Dst {
				return true
			}
		}
		return false
	}
	if prev.Instr.HasDest() && prev.Instr.Dst == load.Instr.Src1 {
		return true
	}
	var buf [2]uint8
	for _, r := range prev.Instr.SrcRegs(buf[:0]) {
		if r == load.Instr.Dst {
			return true
		}
	}
	if prev.Instr.HasDest() && prev.Instr.Dst == load.Instr.Dst {
		return true
	}
	return false
}

// relink renumbers PCs sequentially and fixes branch targets so the
// transformed trace passes validation; the replay models only need the
// structural links, not the original static addresses.
func relink(tr *trace.Trace) {
	for i := range tr.Events {
		e := &tr.Events[i]
		e.PC = int32(i)
		e.NextPC = int32(i + 1)
		if e.Class() == isa.ClassBranch && e.Taken {
			e.Instr.Imm = int64(i + 1)
		}
	}
	if n := len(tr.Events); n > 0 {
		last := &tr.Events[n-1]
		last.NextPC = last.PC
		if last.Class() != isa.ClassHalt {
			last.NextPC = last.PC + 1
		}
	}
}
