// Package asm provides a small structured assembler for the virtual ISA.
//
// The five benchmark applications are written in Go against this builder:
// each Go helper emits straight-line virtual instructions, and the
// structured-control helpers (For, While, If) emit the branch shapes a
// 1990s compiler would have produced (bottom-tested loops with a single
// conditional branch per iteration). Virtual registers are managed by a
// simple allocator so application code does not hand-pick register numbers.
package asm

import (
	"fmt"

	"dynsched/internal/isa"
)

// Program is an assembled instruction sequence for one thread.
type Program struct {
	Name   string
	Instrs []isa.Instr
}

// Reg is a virtual register handle returned by the builder's allocator.
type Reg = uint8

// Reserved registers, set up by the simulator before a thread starts and
// never handed out by the allocator. SPMD applications read them to find
// their processor id and the machine size.
const (
	RegCPU  Reg = 63 // this thread's processor id (0-based)
	RegNCPU Reg = 62 // number of processors in the simulation
)

// Builder assembles a Program. Create one with NewBuilder, emit code with
// the instruction helpers, and call Build to resolve labels.
type Builder struct {
	name    string
	instrs  []isa.Instr
	labels  map[string]int
	fixups  []fixup
	nextLbl int

	inUse [isa.NumRegs]bool
	err   error
}

type fixup struct {
	instr int    // index of instruction whose Imm is the target
	label string // label name
}

// NewBuilder returns an empty builder for a program with the given name.
func NewBuilder(name string) *Builder {
	b := &Builder{name: name, labels: make(map[string]int)}
	b.inUse[isa.Zero] = true // zero register is never allocatable
	b.inUse[RegCPU] = true   // reserved: processor id
	b.inUse[RegNCPU] = true  // reserved: processor count
	return b
}

// Err returns the first error recorded while building, if any.
func (b *Builder) Err() error { return b.err }

func (b *Builder) setErr(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("asm: %s: %s", b.name, fmt.Sprintf(format, args...))
	}
}

// Alloc reserves a free virtual register. It records an error if the
// register file is exhausted.
func (b *Builder) Alloc() Reg {
	for r := 1; r < isa.NumRegs; r++ {
		if !b.inUse[r] {
			b.inUse[r] = true
			return Reg(r)
		}
	}
	b.setErr("out of registers (%d in use)", isa.NumRegs)
	return 1
}

// AllocN reserves n registers at once.
func (b *Builder) AllocN(n int) []Reg {
	regs := make([]Reg, n)
	for i := range regs {
		regs[i] = b.Alloc()
	}
	return regs
}

// Free returns a register to the allocator.
func (b *Builder) Free(regs ...Reg) {
	for _, r := range regs {
		if r == isa.Zero {
			continue
		}
		if !b.inUse[r] {
			b.setErr("double free of r%d", r)
		}
		b.inUse[r] = false
	}
}

// Scratch allocates a register, passes it to fn, and frees it afterwards.
func (b *Builder) Scratch(fn func(t Reg)) {
	t := b.Alloc()
	fn(t)
	b.Free(t)
}

// PC returns the index the next emitted instruction will have.
func (b *Builder) PC() int { return len(b.instrs) }

// Emit appends a raw instruction.
func (b *Builder) Emit(i isa.Instr) { b.instrs = append(b.instrs, i) }

// Label defines a named position at the current PC.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.setErr("duplicate label %q", name)
		return
	}
	b.labels[name] = b.PC()
}

// NewLabel returns a fresh unique label name (not yet placed).
func (b *Builder) NewLabel(hint string) string {
	b.nextLbl++
	return fmt.Sprintf(".%s%d", hint, b.nextLbl)
}

func (b *Builder) emitBranch(op isa.Op, src Reg, label string) {
	b.fixups = append(b.fixups, fixup{instr: b.PC(), label: label})
	b.Emit(isa.Instr{Op: op, Src1: src})
}

// Build resolves all label references and returns the program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, f := range b.fixups {
		pc, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: %s: undefined label %q", b.name, f.label)
		}
		b.instrs[f.instr].Imm = int64(pc)
	}
	return &Program{Name: b.name, Instrs: b.instrs}, nil
}

// MustBuild is Build but panics on error; intended for tests and for
// application constructors whose inputs are statically known to be valid.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// ---- instruction helpers -------------------------------------------------

// Li loads an immediate constant.
func (b *Builder) Li(d Reg, imm int64) { b.Emit(isa.Instr{Op: isa.OpLi, Dst: d, Imm: imm}) }

// LiF loads a floating-point constant.
func (b *Builder) LiF(d Reg, f float64) { b.Li(d, int64(isa.Bits(f))) }

// Mov copies a register.
func (b *Builder) Mov(d, a Reg) { b.Emit(isa.Instr{Op: isa.OpMov, Dst: d, Src1: a}) }

// Three-operand integer ALU helpers.
func (b *Builder) Add(d, a, c Reg) { b.op3(isa.OpAdd, d, a, c) }
func (b *Builder) Sub(d, a, c Reg) { b.op3(isa.OpSub, d, a, c) }
func (b *Builder) Mul(d, a, c Reg) { b.op3(isa.OpMul, d, a, c) }
func (b *Builder) Div(d, a, c Reg) { b.op3(isa.OpDiv, d, a, c) }
func (b *Builder) Rem(d, a, c Reg) { b.op3(isa.OpRem, d, a, c) }
func (b *Builder) And(d, a, c Reg) { b.op3(isa.OpAnd, d, a, c) }
func (b *Builder) Or(d, a, c Reg)  { b.op3(isa.OpOr, d, a, c) }
func (b *Builder) Xor(d, a, c Reg) { b.op3(isa.OpXor, d, a, c) }
func (b *Builder) Shl(d, a, c Reg) { b.op3(isa.OpShl, d, a, c) }
func (b *Builder) Shr(d, a, c Reg) { b.op3(isa.OpShr, d, a, c) }
func (b *Builder) Slt(d, a, c Reg) { b.op3(isa.OpSlt, d, a, c) }
func (b *Builder) Sle(d, a, c Reg) { b.op3(isa.OpSle, d, a, c) }
func (b *Builder) Seq(d, a, c Reg) { b.op3(isa.OpSeq, d, a, c) }
func (b *Builder) Sne(d, a, c Reg) { b.op3(isa.OpSne, d, a, c) }

// Immediate-form integer ALU helpers.
func (b *Builder) Addi(d, a Reg, imm int64) { b.opImm(isa.OpAddi, d, a, imm) }
func (b *Builder) Muli(d, a Reg, imm int64) { b.opImm(isa.OpMuli, d, a, imm) }
func (b *Builder) Andi(d, a Reg, imm int64) { b.opImm(isa.OpAndi, d, a, imm) }
func (b *Builder) Shli(d, a Reg, imm int64) { b.opImm(isa.OpShli, d, a, imm) }
func (b *Builder) Shri(d, a Reg, imm int64) { b.opImm(isa.OpShri, d, a, imm) }
func (b *Builder) Slti(d, a Reg, imm int64) { b.opImm(isa.OpSlti, d, a, imm) }

// Floating-point helpers.
func (b *Builder) FAdd(d, a, c Reg) { b.op3(isa.OpFAdd, d, a, c) }
func (b *Builder) FSub(d, a, c Reg) { b.op3(isa.OpFSub, d, a, c) }
func (b *Builder) FMul(d, a, c Reg) { b.op3(isa.OpFMul, d, a, c) }
func (b *Builder) FDiv(d, a, c Reg) { b.op3(isa.OpFDiv, d, a, c) }
func (b *Builder) FNeg(d, a Reg)    { b.Emit(isa.Instr{Op: isa.OpFNeg, Dst: d, Src1: a}) }
func (b *Builder) FAbs(d, a Reg)    { b.Emit(isa.Instr{Op: isa.OpFAbs, Dst: d, Src1: a}) }
func (b *Builder) FSlt(d, a, c Reg) { b.op3(isa.OpFSlt, d, a, c) }
func (b *Builder) FSqrt(d, a Reg)   { b.Emit(isa.Instr{Op: isa.OpFSqr, Dst: d, Src1: a}) }
func (b *Builder) CvtIF(d, a Reg)   { b.Emit(isa.Instr{Op: isa.OpCvtIF, Dst: d, Src1: a}) }
func (b *Builder) CvtFI(d, a Reg)   { b.Emit(isa.Instr{Op: isa.OpCvtFI, Dst: d, Src1: a}) }

func (b *Builder) op3(op isa.Op, d, a, c Reg) {
	b.Emit(isa.Instr{Op: op, Dst: d, Src1: a, Src2: c})
}

func (b *Builder) opImm(op isa.Op, d, a Reg, imm int64) {
	b.Emit(isa.Instr{Op: op, Dst: d, Src1: a, Imm: imm})
}

// Ld emits d = mem[base+off].
func (b *Builder) Ld(d, base Reg, off int64) {
	b.Emit(isa.Instr{Op: isa.OpLd, Dst: d, Src1: base, Imm: off})
}

// St emits mem[base+off] = val.
func (b *Builder) St(base Reg, off int64, val Reg) {
	b.Emit(isa.Instr{Op: isa.OpSt, Src1: base, Src2: val, Imm: off})
}

// Beqz branches to label when src is zero.
func (b *Builder) Beqz(src Reg, label string) { b.emitBranch(isa.OpBeqz, src, label) }

// Bnez branches to label when src is non-zero.
func (b *Builder) Bnez(src Reg, label string) { b.emitBranch(isa.OpBnez, src, label) }

// J jumps unconditionally to label.
func (b *Builder) J(label string) { b.emitBranch(isa.OpJ, isa.Zero, label) }

// Halt terminates the thread.
func (b *Builder) Halt() { b.Emit(isa.Instr{Op: isa.OpHalt}) }

// Nop emits a no-op.
func (b *Builder) Nop() { b.Emit(isa.Instr{Op: isa.OpNop}) }

// Lock acquires the lock variable at base+off.
func (b *Builder) Lock(base Reg, off int64) {
	b.Emit(isa.Instr{Op: isa.OpLock, Src1: base, Imm: off})
}

// Unlock releases the lock variable at base+off.
func (b *Builder) Unlock(base Reg, off int64) {
	b.Emit(isa.Instr{Op: isa.OpUnlock, Src1: base, Imm: off})
}

// Barrier enters global barrier id.
func (b *Builder) Barrier(id int64) { b.Emit(isa.Instr{Op: isa.OpBarrier, Imm: id}) }

// WaitEv blocks until event id is set.
func (b *Builder) WaitEv(id int64) { b.Emit(isa.Instr{Op: isa.OpWaitEv, Imm: id}) }

// SetEv sets event id.
func (b *Builder) SetEv(id int64) { b.Emit(isa.Instr{Op: isa.OpSetEv, Imm: id}) }

// WaitEvR blocks until event (idReg + off) is set; the id is computed at
// run time (LU waits on one event per pivot column).
func (b *Builder) WaitEvR(idReg Reg, off int64) {
	b.Emit(isa.Instr{Op: isa.OpWaitEv, Src1: idReg, Imm: off})
}

// SetEvR sets event (idReg + off).
func (b *Builder) SetEvR(idReg Reg, off int64) {
	b.Emit(isa.Instr{Op: isa.OpSetEv, Src1: idReg, Imm: off})
}

// ---- structured control --------------------------------------------------

// For emits a bottom-tested counted loop:
//
//	for i = lo; i < hi; i += step { body(i) }
//
// i is a freshly allocated register passed to body and freed afterwards.
// lo and hi are registers; step is an immediate. If the trip count can be
// zero the loop is still correct (it tests before the first iteration).
func (b *Builder) For(lo, hi Reg, step int64, body func(i Reg)) {
	i := b.Alloc()
	t := b.Alloc()
	loop := b.NewLabel("for")
	test := b.NewLabel("fortest")
	b.Mov(i, lo)
	b.J(test)
	b.Label(loop)
	body(i)
	b.Addi(i, i, step)
	b.Label(test)
	b.Slt(t, i, hi)
	b.Bnez(t, loop)
	b.Free(i, t)
}

// ForI is For with immediate bounds.
func (b *Builder) ForI(lo, hi int64, step int64, body func(i Reg)) {
	rlo := b.Alloc()
	rhi := b.Alloc()
	b.Li(rlo, lo)
	b.Li(rhi, hi)
	b.For(rlo, rhi, step, body)
	b.Free(rlo, rhi)
}

// While emits a top-tested loop. cond must emit code computing a register
// that is non-zero to continue; body is the loop body.
func (b *Builder) While(cond func(t Reg), body func()) {
	t := b.Alloc()
	loop := b.NewLabel("while")
	done := b.NewLabel("wdone")
	b.Label(loop)
	cond(t)
	b.Beqz(t, done)
	body()
	b.J(loop)
	b.Label(done)
	b.Free(t)
}

// If emits a conditional: when cond is non-zero run then, otherwise run els
// (els may be nil).
func (b *Builder) If(cond Reg, then func(), els func()) {
	if els == nil {
		skip := b.NewLabel("endif")
		b.Beqz(cond, skip)
		then()
		b.Label(skip)
		return
	}
	elseL := b.NewLabel("else")
	endL := b.NewLabel("endif")
	b.Beqz(cond, elseL)
	then()
	b.J(endL)
	b.Label(elseL)
	els()
	b.Label(endL)
}

// ---- memory layout -------------------------------------------------------

// Layout allocates addresses in the shared virtual address space. It is a
// bump allocator; Alloc results are aligned to the word size and Region
// results to the cache-line size (16 bytes) so that distinct regions never
// false-share a line.
type Layout struct {
	next uint64
}

// LineSize is the cache line size used for region alignment.
const LineSize = 16

// NewLayout returns a layout starting at the given base address.
func NewLayout(base uint64) *Layout {
	l := &Layout{next: base}
	l.next = align(l.next, LineSize)
	return l
}

// Region reserves n bytes aligned to a cache-line boundary and returns the
// base address.
func (l *Layout) Region(n uint64) uint64 {
	l.next = align(l.next, LineSize)
	addr := l.next
	l.next += align(n, isa.WordSize)
	return addr
}

// Words reserves n 8-byte words aligned to a cache line.
func (l *Layout) Words(n uint64) uint64 { return l.Region(n * isa.WordSize) }

// Word reserves a single word on its own cache line (used for locks and
// flags, avoiding false sharing).
func (l *Layout) Word() uint64 {
	addr := l.Region(isa.WordSize)
	l.next = align(l.next, LineSize)
	return addr
}

// Next reports the first unallocated address.
func (l *Layout) Next() uint64 { return l.next }

func align(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }
