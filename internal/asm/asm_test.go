package asm

import (
	"strings"
	"testing"

	"dynsched/internal/isa"
)

func TestLabelsResolve(t *testing.T) {
	b := NewBuilder("t")
	r := b.Alloc()
	b.Li(r, 1)
	b.Label("top")
	b.Addi(r, r, -1)
	b.Bnez(r, "top")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[2].Imm != 1 {
		t.Errorf("branch target = %d, want 1 (label 'top')", p.Instrs[2].Imm)
	}
}

func TestUndefinedLabel(t *testing.T) {
	b := NewBuilder("t")
	b.J("nowhere")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Fatalf("Build() err = %v, want undefined label error", err)
	}
}

func TestDuplicateLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Label("x")
	b.Label("x")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Fatalf("Build() err = %v, want duplicate label error", err)
	}
}

func TestRegisterAllocator(t *testing.T) {
	b := NewBuilder("t")
	r1 := b.Alloc()
	r2 := b.Alloc()
	if r1 == r2 {
		t.Fatal("Alloc returned the same register twice")
	}
	if r1 == isa.Zero || r2 == isa.Zero {
		t.Fatal("Alloc returned the zero register")
	}
	b.Free(r1)
	r3 := b.Alloc()
	if r3 != r1 {
		t.Errorf("freed register not reused: got r%d, want r%d", r3, r1)
	}
}

func TestRegisterExhaustion(t *testing.T) {
	b := NewBuilder("t")
	avail := isa.NumRegs - 3 // zero + two reserved registers
	for i := 0; i < avail; i++ {
		r := b.Alloc()
		if r == RegCPU || r == RegNCPU {
			t.Fatalf("allocator handed out reserved register r%d", r)
		}
	}
	if b.Err() != nil {
		t.Fatalf("allocating %d regs should succeed: %v", avail, b.Err())
	}
	b.Alloc()
	if b.Err() == nil {
		t.Fatal("allocator exhaustion not reported")
	}
}

func TestDoubleFree(t *testing.T) {
	b := NewBuilder("t")
	r := b.Alloc()
	b.Free(r)
	b.Free(r)
	if b.Err() == nil {
		t.Fatal("double free not reported")
	}
}

func TestForLoopShape(t *testing.T) {
	b := NewBuilder("t")
	lo, hi := b.Alloc(), b.Alloc()
	b.Li(lo, 0)
	b.Li(hi, 4)
	bodyPCs := 0
	b.For(lo, hi, 1, func(i Reg) {
		bodyPCs = b.PC()
		b.Addi(isa.Zero, i, 0) // placeholder body
	})
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Bottom-tested loop: exactly one conditional branch, one unconditional
	// jump (the entry jump to the test).
	var cond, uncond int
	for _, in := range p.Instrs {
		switch {
		case isa.IsCondBranch(in.Op):
			cond++
		case in.Op == isa.OpJ:
			uncond++
		}
	}
	if cond != 1 || uncond != 1 {
		t.Errorf("For emitted %d conditional + %d unconditional branches, want 1+1", cond, uncond)
	}
	if bodyPCs == 0 {
		t.Error("loop body was not emitted")
	}
}

func TestLayoutAlignment(t *testing.T) {
	l := NewLayout(0x1000)
	a := l.Region(24)
	bb := l.Region(1)
	c := l.Word()
	d := l.Word()
	for _, addr := range []uint64{a, bb, c, d} {
		if addr%LineSize != 0 {
			t.Errorf("region at %#x not line-aligned", addr)
		}
	}
	if bb < a+24 {
		t.Errorf("regions overlap: a=%#x..%#x b=%#x", a, a+24, bb)
	}
	if d-c < LineSize {
		t.Errorf("Word allocations share a line: c=%#x d=%#x", c, d)
	}
}

func TestLayoutWords(t *testing.T) {
	l := NewLayout(0)
	a := l.Words(10)
	b2 := l.Words(1)
	if b2 < a+10*isa.WordSize {
		t.Errorf("Words regions overlap: a=%#x b=%#x", a, b2)
	}
}

func TestScratchFrees(t *testing.T) {
	b := NewBuilder("t")
	var inner Reg
	b.Scratch(func(r Reg) { inner = r })
	again := b.Alloc()
	if again != inner {
		t.Errorf("Scratch register not freed: got r%d, want r%d", again, inner)
	}
}

func TestFloatHelpers(t *testing.T) {
	b := NewBuilder("f")
	r := b.Alloc()
	s := b.Alloc()
	b.LiF(r, 2.5)
	b.FAdd(s, r, r)
	b.FSub(s, s, r)
	b.FMul(s, s, r)
	b.FDiv(s, s, r)
	b.FNeg(s, s)
	b.FAbs(s, s)
	b.FSlt(s, r, s)
	b.FSqrt(s, r)
	b.CvtIF(s, r)
	b.CvtFI(s, r)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := []isa.Op{isa.OpLi, isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv,
		isa.OpFNeg, isa.OpFAbs, isa.OpFSlt, isa.OpFSqr, isa.OpCvtIF, isa.OpCvtFI, isa.OpHalt}
	if len(p.Instrs) != len(want) {
		t.Fatalf("instr count = %d, want %d", len(p.Instrs), len(want))
	}
	for i, w := range want {
		if p.Instrs[i].Op != w {
			t.Errorf("instr %d = %v, want %v", i, p.Instrs[i].Op, w)
		}
	}
	if isa.F64(uint64(p.Instrs[0].Imm)) != 2.5 {
		t.Errorf("LiF encoded %v", isa.F64(uint64(p.Instrs[0].Imm)))
	}
}

func TestSyncHelpers(t *testing.T) {
	b := NewBuilder("s")
	r := b.Alloc()
	b.Li(r, 7)
	b.Lock(r, 8)
	b.Unlock(r, 8)
	b.Barrier(3)
	b.WaitEv(4)
	b.SetEv(4)
	b.WaitEvR(r, 1)
	b.SetEvR(r, 1)
	b.Halt()
	p := b.MustBuild()
	if p.Instrs[1].Op != isa.OpLock || p.Instrs[1].Imm != 8 {
		t.Errorf("lock = %v", p.Instrs[1])
	}
	if p.Instrs[6].Op != isa.OpWaitEv || p.Instrs[6].Src1 != r || p.Instrs[6].Imm != 1 {
		t.Errorf("waitevr = %v", p.Instrs[6])
	}
	if p.Instrs[7].Op != isa.OpSetEv || p.Instrs[7].Src1 != r {
		t.Errorf("setevr = %v", p.Instrs[7])
	}
}

func TestIfWithoutElseShape(t *testing.T) {
	b := NewBuilder("if")
	c := b.Alloc()
	b.Li(c, 1)
	b.If(c, func() { b.Nop() }, nil)
	b.Halt()
	p := b.MustBuild()
	// li, beqz(skip), nop, halt: no unconditional jump without an else.
	for _, in := range p.Instrs {
		if in.Op == isa.OpJ {
			t.Errorf("If without else emitted a jump: %v", p.Instrs)
		}
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic on undefined label")
		}
	}()
	b := NewBuilder("bad")
	b.J("missing")
	b.MustBuild()
}

func TestErrPropagation(t *testing.T) {
	b := NewBuilder("e")
	r := b.Alloc()
	b.Free(r)
	b.Free(r) // double free recorded
	if _, err := b.Build(); err == nil {
		t.Fatal("Build ignored the recorded error")
	}
}

func TestPCAdvances(t *testing.T) {
	b := NewBuilder("pc")
	if b.PC() != 0 {
		t.Fatalf("initial PC = %d", b.PC())
	}
	b.Nop()
	b.Nop()
	if b.PC() != 2 {
		t.Errorf("PC after two instrs = %d", b.PC())
	}
}

func TestAllocN(t *testing.T) {
	b := NewBuilder("n")
	regs := b.AllocN(5)
	seen := map[Reg]bool{}
	for _, r := range regs {
		if seen[r] {
			t.Fatalf("AllocN returned duplicate r%d", r)
		}
		seen[r] = true
	}
	b.Free(regs...)
	if b.Err() != nil {
		t.Fatal(b.Err())
	}
}
