package apps

import (
	"fmt"
	"math"

	"dynsched/internal/asm"
	"dynsched/internal/vm"
)

// BuildLU constructs the LU-decomposition benchmark (§3.3): dense, without
// pivoting, with columns statically assigned to processors in an
// interleaved fashion. "Each processor waits for the current pivot column,
// and then uses that column to modify all the columns that it owns. The
// processor that produces the current pivot column releases any processors
// waiting for that column" — the release is a set-event per pivot column,
// the wait a wait-event, matching the counts of Table 2 (≈ n wait events
// spread across producers).
//
// The paper factors a 200×200 matrix; ScalePaper matches that.
func BuildLU(ncpus int, scale Scale) (*App, error) {
	var n int
	switch scale {
	case ScaleSmall:
		n = 24
	case ScaleMedium:
		n = 96
	case ScalePaper:
		n = 200
	default:
		return nil, fmt.Errorf("lu: bad scale %v", scale)
	}

	lay := asm.NewLayout(1 << 20)
	// Column-major storage, as in the SPLASH LU: each column is contiguous,
	// so a processor's owned columns never share cache lines with another
	// processor's (no false sharing), and the pivot-column broadcast misses
	// once per line rather than once per element. A[i][j] lives at
	// matA + (j*n + i)*8.
	matA := lay.Words(uint64(n * n))

	b := asm.NewBuilder("lu")
	base := b.Alloc()
	nReg := b.Alloc()
	b.Li(base, int64(matA))
	b.Li(nReg, int64(n))
	b.Barrier(0)

	b.ForI(0, int64(n-1), 1, func(k asm.Reg) {
		// owner = k mod ncpus produces pivot column k.
		owner := b.Alloc()
		isOwner := b.Alloc()
		b.Rem(owner, k, asm.RegNCPU)
		b.Seq(isOwner, owner, asm.RegCPU)
		b.If(isOwner, func() {
			// A[i][k] /= A[k][k] for i in k+1..n-1, then publish column k.
			t := b.Alloc()
			addr := b.Alloc()
			pivot := b.Alloc()
			b.Mul(t, k, nReg)
			b.Add(t, t, k)
			b.Shli(t, t, 3)
			b.Add(addr, base, t) // &A[k][k] = base + (k*n+k)*8
			b.Ld(pivot, addr, 0)
			p := b.Alloc()
			b.Addi(p, addr, 8) // &A[k+1][k]: the column is contiguous
			i0 := b.Alloc()
			b.Addi(i0, k, 1)
			b.For(i0, nReg, 1, func(i asm.Reg) {
				v := b.Alloc()
				b.Ld(v, p, 0)
				b.FDiv(v, v, pivot)
				b.St(p, 0, v)
				b.Addi(p, p, 8)
				b.Free(v)
			})
			b.SetEvR(k, 0) // release waiters on pivot column k
			b.Free(t, addr, pivot, p, i0)
		}, func() {
			b.WaitEvR(k, 0) // acquire: wait for pivot column k
		})
		b.Free(owner, isOwner)

		// Update owned columns j > k: j starts at the smallest owned index
		// >= k+1, i.e. k+1 + ((cpu - (k+1)) mod ncpus).
		j := b.Alloc()
		t := b.Alloc()
		b.Addi(t, k, 1)
		b.Sub(j, asm.RegCPU, t)
		b.Rem(j, j, asm.RegNCPU)
		neg := b.Alloc()
		b.Slti(neg, j, 0)
		b.If(neg, func() { b.Add(j, j, asm.RegNCPU) }, nil)
		b.Free(neg)
		b.Add(j, j, t)
		b.Free(t)

		b.While(func(c asm.Reg) { b.Slt(c, j, nReg) }, func() {
			// akj = A[k][j] (constant over the inner loop); column j starts
			// at base + j*n*8.
			akj := b.Alloc()
			colj := b.Alloc()
			b.Mul(colj, j, nReg)
			b.Shli(colj, colj, 3)
			b.Add(colj, base, colj)
			t2 := b.Alloc()
			b.Shli(t2, k, 3)
			b.Add(t2, colj, t2)
			b.Ld(akj, t2, 0)
			// pik = &A[k+1][k], pij = &A[k+1][j]: both columns contiguous.
			pik := b.Alloc()
			pij := b.Alloc()
			b.Mul(pik, k, nReg)
			b.Add(pik, pik, k)
			b.Shli(pik, pik, 3)
			b.Add(pik, base, pik)
			b.Addi(pik, pik, 8)
			b.Addi(pij, t2, 8)
			b.Free(t2, colj)
			i0 := b.Alloc()
			b.Addi(i0, k, 1)
			b.For(i0, nReg, 1, func(i asm.Reg) {
				aik := b.Alloc()
				aij := b.Alloc()
				b.Ld(aik, pik, 0)
				b.Ld(aij, pij, 0)
				b.FMul(aik, aik, akj)
				b.FSub(aij, aij, aik)
				b.St(pij, 0, aij)
				b.Addi(pik, pik, 8)
				b.Addi(pij, pij, 8)
				b.Free(aik, aij)
			})
			b.Free(i0, akj, pik, pij)
			b.Add(j, j, asm.RegNCPU)
		})
		b.Free(j)
	})
	b.Barrier(1)
	b.Halt()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	// Host initialization: a random diagonally dominant matrix (LU without
	// pivoting is then numerically stable). A reference copy is captured
	// for the check.
	orig := make([]float64, n*n)
	r := newRNG(0xA11CE)
	for i := 0; i < n; i++ {
		for j2 := 0; j2 < n; j2++ {
			v := 1 + r.float()
			if i == j2 {
				v += float64(n)
			}
			orig[i*n+j2] = v
		}
	}

	app := &App{
		Name:  "lu",
		Progs: spmd(prog, ncpus),
		Init: func(m *vm.PagedMem) {
			for i := 0; i < n; i++ {
				for j2 := 0; j2 < n; j2++ {
					m.StoreF(matA+uint64(j2*n+i)*8, orig[i*n+j2])
				}
			}
		},
		Check: func(m *vm.PagedMem) error {
			// Reconstruct A from the in-place L\U factors and compare.
			lu := make([]float64, n*n)
			for i := 0; i < n; i++ {
				for j2 := 0; j2 < n; j2++ {
					lu[i*n+j2] = m.LoadF(matA + uint64(j2*n+i)*8)
				}
			}
			var maxErr float64
			for i := 0; i < n; i++ {
				for j2 := 0; j2 < n; j2++ {
					var sum float64
					for k := 0; k <= min(i, j2); k++ {
						l := lu[i*n+k]
						if k == i {
							l = 1
						}
						sum += l * lu[k*n+j2]
					}
					if e := math.Abs(sum-orig[i*n+j2]) / math.Abs(orig[i*n+j2]); e > maxErr {
						maxErr = e
					}
				}
			}
			if maxErr > 1e-9 {
				return fmt.Errorf("lu: reconstruction error %g exceeds 1e-9", maxErr)
			}
			return nil
		},
	}
	return app, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
