package apps

import (
	"fmt"

	"dynsched/internal/asm"
	"dynsched/internal/isa"
	"dynsched/internal/vm"
)

// BuildMP3D constructs the MP3D benchmark (§3.3): the 3-dimensional
// particle simulator. "During each time step, the molecules are picked up
// one at a time and moved according to their velocity vectors. Collisions
// of molecules among themselves and with the object and the boundaries are
// all modeled... The main synchronization consists of barriers between each
// time step."
//
// Particles are statically partitioned; each move updates the particle's
// private record (mostly cache-resident) and increments the occupancy word
// of the space-array cell it lands in — the space array is written by all
// processors, producing the communication misses that dominate MP3D's high
// miss rate (Table 1: 24.3 read misses and 22.5 write misses per 1000
// instructions). Boundary reflections and a pseudo-random collision test
// provide MP3D's data-dependent branches. The paper runs 10,000 particles
// in a 64x8x8 space array for 5 steps; ScalePaper matches that.
func BuildMP3D(ncpus int, scale Scale) (*App, error) {
	var particles, steps, sx, sy, sz int
	switch scale {
	case ScaleSmall:
		particles, steps, sx, sy, sz = 192, 2, 16, 4, 4
	case ScaleMedium:
		particles, steps, sx, sy, sz = 2048, 4, 32, 8, 8
	case ScalePaper:
		particles, steps, sx, sy, sz = 10000, 5, 64, 8, 8
	default:
		return nil, fmt.Errorf("mp3d: bad scale %v", scale)
	}
	if particles < ncpus {
		return nil, fmt.Errorf("mp3d: %d particles fewer than %d processors", particles, ncpus)
	}

	const prec = 8 // words per particle record: x y z vx vy vz (2 pad)
	lay := asm.NewLayout(1 << 20)
	parts := lay.Words(uint64(particles * prec))
	cells := lay.Words(uint64(sx * sy * sz)) // occupancy counters
	resAddr := lay.Word()                    // global reservoir counter
	resLock := lay.Word()

	b := asm.NewBuilder("mp3d")
	pbase := b.Alloc()
	cbase := b.Alloc()
	b.Li(pbase, int64(parts))
	b.Li(cbase, int64(cells))

	// Particle range [plo, phi) for this processor.
	plo := b.Alloc()
	phi := b.Alloc()
	t := b.Alloc()
	b.Li(t, int64(particles))
	b.Mul(plo, asm.RegCPU, t)
	b.Div(plo, plo, asm.RegNCPU)
	b.Addi(phi, asm.RegCPU, 1)
	b.Mul(phi, phi, t)
	b.Div(phi, phi, asm.RegNCPU)
	b.Free(t)

	fzero := b.Alloc()
	fxmax := b.Alloc()
	fymax := b.Alloc()
	fzmax := b.Alloc()
	b.LiF(fzero, 0)
	b.LiF(fxmax, float64(sx))
	b.LiF(fymax, float64(sy))
	b.LiF(fzmax, float64(sz))

	reflects := b.Alloc() // per-processor boundary-hit count
	b.Li(reflects, 0)
	b.Barrier(0)

	// moveAxis emits: coord += vel; reflect off [0, max).
	moveAxis := func(p asm.Reg, coordOff, velOff int64, fmax asm.Reg) {
		x := b.Alloc()
		v := b.Alloc()
		c := b.Alloc()
		b.Ld(x, p, coordOff)
		b.Ld(v, p, velOff)
		b.FAdd(x, x, v)
		b.FSlt(c, x, fzero)
		b.If(c, func() { // bounced off the low wall
			b.FNeg(x, x)
			b.FNeg(v, v)
			b.St(p, velOff, v)
			b.Addi(reflects, reflects, 1)
		}, nil)
		b.FSlt(c, x, fmax)
		b.Seq(c, c, isa.Zero) // c = (x >= max)
		b.If(c, func() {
			// x = 2*max - x; v = -v (bounce off the high wall)
			b.FAdd(c, fmax, fmax)
			b.FSub(x, c, x)
			b.FNeg(v, v)
			b.St(p, velOff, v)
			b.Addi(reflects, reflects, 1)
		}, nil)
		b.St(p, coordOff, x)
		b.Free(x, v, c)
	}

	for s := 0; s < steps; s++ {
		b.For(plo, phi, 1, func(i asm.Reg) {
			p := b.Alloc()
			b.Shli(p, i, 6) // prec*8 = 64 bytes per record
			b.Add(p, p, pbase)

			moveAxis(p, 0, 24, fxmax)  // x, vx
			moveAxis(p, 8, 32, fymax)  // y, vy
			moveAxis(p, 16, 40, fzmax) // z, vz

			// Cell index: ((int(x)*sy + int(y))*sz + int(z)).
			ci := b.Alloc()
			c := b.Alloc()
			b.Ld(c, p, 0)
			b.CvtFI(ci, c)
			b.Muli(ci, ci, int64(sy))
			b.Ld(c, p, 8)
			b.CvtFI(c, c)
			b.Add(ci, ci, c)
			b.Muli(ci, ci, int64(sz))
			b.Ld(c, p, 16)
			b.CvtFI(c, c)
			b.Add(ci, ci, c)
			b.Shli(ci, ci, 3)
			b.Add(ci, ci, cbase)
			// Occupancy update: the shared-write hot spot.
			b.Ld(c, ci, 0)
			b.Addi(c, c, 1)
			b.St(ci, 0, c)
			b.Free(ci)

			// Pseudo-random collision: hash of the particle index selects
			// ~1/8 of moves; colliding particles swap two velocity
			// components and negate one — a deterministic stand-in for the
			// collision operator that preserves replay determinism.
			h := b.Alloc()
			b.Muli(h, i, 2654435761)
			b.Shri(h, h, 13)
			b.Andi(h, h, 7)
			b.Seq(h, h, isa.Zero)
			b.If(h, func() {
				va := b.Alloc()
				vb := b.Alloc()
				b.Ld(va, p, 24)
				b.Ld(vb, p, 32)
				b.FNeg(va, va)
				b.St(p, 24, vb)
				b.St(p, 32, va)
				b.Free(va, vb)
			}, nil)
			b.Free(h, c, p)
		})

		// Fold the local reflection count into the global reservoir under a
		// lock, then synchronize the time step.
		lk := b.Alloc()
		g := b.Alloc()
		v := b.Alloc()
		b.Li(lk, int64(resLock))
		b.Lock(lk, 0)
		b.Li(g, int64(resAddr))
		b.Ld(v, g, 0)
		b.Add(v, v, reflects)
		b.St(g, 0, v)
		b.Unlock(lk, 0)
		b.Free(lk, g, v)
		b.Li(reflects, 0)
		b.Barrier(int64(10 + s*2))
		b.Barrier(int64(11 + s*2)) // end-of-step settle (collision exchange)
	}
	b.Barrier(1)
	b.Halt()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	// Host init: particles at deterministic pseudo-random positions with
	// small velocities.
	r := newRNG(0x3D3D)
	pos := make([][6]float64, particles)
	for i := range pos {
		pos[i] = [6]float64{
			r.float() * float64(sx),
			r.float() * float64(sy),
			r.float() * float64(sz),
			(r.float() - 0.5) * 2.5,
			(r.float() - 0.5) * 1.5,
			(r.float() - 0.5) * 1.5,
		}
	}

	app := &App{
		Name:  "mp3d",
		Progs: spmd(prog, ncpus),
		Init: func(m *vm.PagedMem) {
			for i, rec := range pos {
				base := parts + uint64(i*prec)*8
				for w, f := range rec {
					m.StoreF(base+uint64(w)*8, f)
				}
			}
		},
		Check: func(m *vm.PagedMem) error {
			// Every particle must remain inside the space array, and the
			// cell occupancy counters must sum to particles×steps.
			for i := 0; i < particles; i++ {
				base := parts + uint64(i*prec)*8
				x, y, z := m.LoadF(base), m.LoadF(base+8), m.LoadF(base+16)
				if x < 0 || x >= float64(sx) || y < 0 || y >= float64(sy) || z < 0 || z >= float64(sz) {
					return fmt.Errorf("mp3d: particle %d escaped to (%g,%g,%g)", i, x, y, z)
				}
			}
			var sum uint64
			for c := 0; c < sx*sy*sz; c++ {
				sum += m.Load(cells + uint64(c)*8)
			}
			// The occupancy updates are unsynchronized read-modify-writes,
			// exactly as in the original MP3D (whose results are famously
			// timing-dependent): concurrent increments of the same cell can
			// lose updates, so the sum is bounded above by particles×steps
			// and should be close to it.
			want := uint64(particles * steps)
			if sum > want || sum < want*95/100 {
				return fmt.Errorf("mp3d: cell occupancy sum %d outside [%d, %d]", sum, want*95/100, want)
			}
			return nil
		},
	}
	return app, nil
}
