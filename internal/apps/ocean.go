package apps

import (
	"fmt"
	"math"

	"dynsched/internal/asm"
	"dynsched/internal/vm"
)

// BuildOcean constructs the OCEAN benchmark (§3.3): the eddy/boundary
// current simulation, realized as its computational core — coupled
// red-black Gauss-Seidel relaxations over two-dimensional discretized
// fields with barrier-separated phases per time step and a lock-protected
// global convergence reduction. The paper's run uses a 98×98 interior grid;
// ScalePaper matches that. Rows are statically block-partitioned across
// processors, so communication misses occur at partition boundaries, and
// barriers dominate synchronization exactly as in Table 2 (150 barriers,
// ~21 locks at paper scale).
func BuildOcean(ncpus int, scale Scale) (*App, error) {
	var n, steps int
	switch scale {
	case ScaleSmall:
		n, steps = 16, 3
	case ScaleMedium:
		n, steps = 48, 8
	case ScalePaper:
		n, steps = 98, 25
	default:
		return nil, fmt.Errorf("ocean: bad scale %v", scale)
	}
	if n < ncpus {
		return nil, fmt.Errorf("ocean: grid %d smaller than %d processors", n, ncpus)
	}

	dim := n + 2 // with ghost border
	rowBytes := int64(dim) * 8
	lay := asm.NewLayout(1 << 20)
	gridU := lay.Words(uint64(dim * dim)) // stream function
	gridV := lay.Words(uint64(dim * dim)) // vorticity
	gridR := lay.Words(uint64(dim * dim)) // relaxation right-hand side
	gridW := lay.Words(uint64(dim * dim)) // curl work array
	gridG := lay.Words(uint64(dim * dim)) // tracer field (gamma)
	errAddr := lay.Word()                 // global convergence accumulator
	lockAddr := lay.Word()                // its lock

	const (
		wRelax  = 0.7  // SOR weight
		wCouple = 0.2  // u→v coupling
		wTracer = 0.15 // w→gamma coupling
	)

	b := asm.NewBuilder("ocean")
	baseU := b.Alloc()
	baseV := b.Alloc()
	baseR := b.Alloc()
	baseW := b.Alloc()
	baseG := b.Alloc()
	b.Li(baseU, int64(gridU))
	b.Li(baseV, int64(gridV))
	b.Li(baseR, int64(gridR))
	b.Li(baseW, int64(gridW))
	b.Li(baseG, int64(gridG))

	// Row range owned by this processor: [lo, hi) within 1..n+1.
	lo := b.Alloc()
	hi := b.Alloc()
	t := b.Alloc()
	b.Li(t, int64(n))
	b.Mul(lo, asm.RegCPU, t)
	b.Div(lo, lo, asm.RegNCPU)
	b.Addi(lo, lo, 1)
	b.Addi(hi, asm.RegCPU, 1)
	b.Mul(hi, hi, t)
	b.Div(hi, hi, asm.RegNCPU)
	b.Addi(hi, hi, 1)
	b.Free(t)

	quarter := b.Alloc()
	relax := b.Alloc()
	couple := b.Alloc()
	coupleC := b.Alloc()
	tracer := b.Alloc()
	tracerC := b.Alloc()
	b.LiF(quarter, 0.25)
	b.LiF(relax, wRelax)
	b.LiF(couple, wCouple)
	b.LiF(coupleC, 1-wCouple)
	b.LiF(tracer, wTracer)
	b.LiF(tracerC, 1-wTracer)

	// rowFor iterates i over [lo,hi) and j over the interior of row i,
	// giving body a pointer register positioned at cell (i, j0) with a
	// column step of `step` cells.
	interior := func(phase int, body func(pU, pV, pR, pW, pG asm.Reg)) {
		b.For(lo, hi, 1, func(i asm.Reg) {
			pU := b.Alloc()
			pV := b.Alloc()
			pR := b.Alloc()
			pW := b.Alloc()
			pG := b.Alloc()
			j0 := b.Alloc()
			var step int64 = 1
			if phase >= 0 {
				// Red/black: j0 = 1 + ((i + phase) & 1), step 2.
				b.Addi(j0, i, int64(phase))
				b.Andi(j0, j0, 1)
				b.Addi(j0, j0, 1)
				step = 2
			} else {
				b.Li(j0, 1)
			}
			// p = base + (i*dim + j0)*8
			off := b.Alloc()
			b.Muli(off, i, int64(dim))
			b.Add(off, off, j0)
			b.Shli(off, off, 3)
			b.Add(pU, baseU, off)
			b.Add(pV, baseV, off)
			b.Add(pR, baseR, off)
			b.Add(pW, baseW, off)
			b.Add(pG, baseG, off)
			b.Free(off)
			// Column loop: iterate count = number of points in the row.
			cnt := b.Alloc()
			lim := b.Alloc()
			b.Li(cnt, 0)
			if step == 2 {
				// ceil((n+1-j0)/2) points.
				b.Li(lim, int64(n+2))
				b.Sub(lim, lim, j0)
				b.Addi(lim, lim, -1)
				b.Addi(lim, lim, 1)
				b.Shri(lim, lim, 1)
			} else {
				b.Li(lim, int64(n))
			}
			b.Free(j0)
			b.While(func(c asm.Reg) { b.Slt(c, cnt, lim) }, func() {
				body(pU, pV, pR, pW, pG)
				b.Addi(pU, pU, step*8)
				b.Addi(pV, pV, step*8)
				b.Addi(pR, pR, step*8)
				b.Addi(pW, pW, step*8)
				b.Addi(pG, pG, step*8)
				b.Addi(cnt, cnt, 1)
			})
			b.Free(pU, pV, pR, pW, pG, cnt, lim)
		})
	}

	localErr := b.Alloc()
	b.Barrier(0)

	for s := 0; s < steps; s++ {
		bar := int64(10 + s*8)
		b.LiF(localErr, 0)

		// Phase A: rhs = 0.25*(v[N]+v[S]+v[W]+v[E]) - v (vorticity operator).
		interior(-1, func(pU, pV, pR, pW, pG asm.Reg) {
			a := b.Alloc()
			c := b.Alloc()
			b.Ld(a, pV, -rowBytes)
			b.Ld(c, pV, rowBytes)
			b.FAdd(a, a, c)
			b.Ld(c, pV, -8)
			b.FAdd(a, a, c)
			b.Ld(c, pV, 8)
			b.FAdd(a, a, c)
			b.FMul(a, a, quarter)
			b.Ld(c, pV, 0)
			b.FSub(a, a, c)
			b.St(pR, 0, a)
			b.Free(a, c)
		})
		b.Barrier(bar)

		// Phase A2: curl work array from the stream function, w = L(u).
		interior(-1, func(pU, pV, pR, pW, pG asm.Reg) {
			a := b.Alloc()
			c := b.Alloc()
			b.Ld(a, pU, -rowBytes)
			b.Ld(c, pU, rowBytes)
			b.FAdd(a, a, c)
			b.Ld(c, pU, -8)
			b.FAdd(a, a, c)
			b.Ld(c, pU, 8)
			b.FAdd(a, a, c)
			b.FMul(a, a, quarter)
			b.Ld(c, pU, 0)
			b.FSub(a, a, c)
			b.St(pW, 0, a)
			b.Free(a, c)
		})
		b.Barrier(bar + 4)

		// Phases B, C: red then black SOR update of u.
		for phase := 0; phase < 2; phase++ {
			interior(phase, func(pU, pV, pR, pW, pG asm.Reg) {
				a := b.Alloc()
				c := b.Alloc()
				u := b.Alloc()
				b.Ld(a, pU, -rowBytes)
				b.Ld(c, pU, rowBytes)
				b.FAdd(a, a, c)
				b.Ld(c, pU, -8)
				b.FAdd(a, a, c)
				b.Ld(c, pU, 8)
				b.FAdd(a, a, c)
				b.FMul(a, a, quarter)
				b.Ld(c, pR, 0)
				b.FAdd(a, a, c) // neighbour average + rhs
				b.Ld(u, pU, 0)
				b.FSub(a, a, u)     // delta
				b.FMul(a, a, relax) // w * delta
				b.FAdd(u, u, a)
				b.St(pU, 0, u)
				b.FAbs(a, a)
				b.FAdd(localErr, localErr, a)
				b.Free(a, c, u)
			})
			b.Barrier(bar + 1 + int64(phase))
		}

		// Phase D: couple u back into v.
		interior(-1, func(pU, pV, pR, pW, pG asm.Reg) {
			a := b.Alloc()
			c := b.Alloc()
			b.Ld(a, pV, 0)
			b.FMul(a, a, coupleC)
			b.Ld(c, pU, 0)
			b.FMul(c, c, couple)
			b.FAdd(a, a, c)
			b.St(pV, 0, a)
			b.Free(a, c)
		})
		b.Barrier(bar + 5)

		// Phase D2: advance the tracer field from the curl work array.
		interior(-1, func(pU, pV, pR, pW, pG asm.Reg) {
			a := b.Alloc()
			c := b.Alloc()
			b.Ld(a, pG, 0)
			b.FMul(a, a, tracerC)
			b.Ld(c, pW, 0)
			b.FMul(c, c, tracer)
			b.FAdd(a, a, c)
			b.St(pG, 0, a)
			b.Free(a, c)
		})

		// Global convergence reduction under a lock (OCEAN's few locks).
		lk := b.Alloc()
		g := b.Alloc()
		b.Li(lk, int64(lockAddr))
		b.Lock(lk, 0)
		b.Li(g, int64(errAddr))
		v := b.Alloc()
		b.Ld(v, g, 0)
		b.FAdd(v, v, localErr)
		b.St(g, 0, v)
		b.Free(v)
		b.Unlock(lk, 0)
		b.Free(lk, g)
		b.Barrier(bar + 3)
	}
	b.Free(localErr, quarter, relax, couple, coupleC, tracer, tracerC, lo, hi)
	b.Barrier(1)
	b.Halt()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	// Host initialization: smooth deterministic fields.
	u0 := make([]float64, dim*dim)
	v0 := make([]float64, dim*dim)
	g0 := make([]float64, dim*dim)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			x := float64(i) / float64(dim)
			y := float64(j) / float64(dim)
			u0[i*dim+j] = math.Sin(math.Pi*x) * math.Cos(2*math.Pi*y)
			v0[i*dim+j] = math.Cos(math.Pi*x) * math.Sin(math.Pi*y)
			g0[i*dim+j] = math.Sin(2*math.Pi*x) * math.Sin(math.Pi*y)
		}
	}

	// Reference: the phase structure is barrier-deterministic, so the exact
	// result can be replicated sequentially.
	reference := func() ([]float64, []float64, []float64) {
		u := append([]float64(nil), u0...)
		v := append([]float64(nil), v0...)
		g := append([]float64(nil), g0...)
		rhs := make([]float64, dim*dim)
		wk := make([]float64, dim*dim)
		at := func(g []float64, i, j int) float64 { return g[i*dim+j] }
		for s := 0; s < steps; s++ {
			for i := 1; i <= n; i++ {
				for j := 1; j <= n; j++ {
					rhs[i*dim+j] = 0.25*(at(v, i-1, j)+at(v, i+1, j)+at(v, i, j-1)+at(v, i, j+1)) - at(v, i, j)
				}
			}
			for i := 1; i <= n; i++ {
				for j := 1; j <= n; j++ {
					wk[i*dim+j] = 0.25*(at(u, i-1, j)+at(u, i+1, j)+at(u, i, j-1)+at(u, i, j+1)) - at(u, i, j)
				}
			}
			for phase := 0; phase < 2; phase++ {
				for i := 1; i <= n; i++ {
					j0 := 1 + (i+phase)&1
					for j := j0; j <= n; j += 2 {
						avg := 0.25*(at(u, i-1, j)+at(u, i+1, j)+at(u, i, j-1)+at(u, i, j+1)) + rhs[i*dim+j]
						delta := (avg - at(u, i, j)) * wRelax
						u[i*dim+j] += delta
					}
				}
			}
			for i := 1; i <= n; i++ {
				for j := 1; j <= n; j++ {
					v[i*dim+j] = (1-wCouple)*at(v, i, j) + wCouple*at(u, i, j)
					g[i*dim+j] = (1-wTracer)*at(g, i, j) + wTracer*wk[i*dim+j]
				}
			}
		}
		return u, v, g
	}

	app := &App{
		Name:  "ocean",
		Progs: spmd(prog, ncpus),
		Init: func(m *vm.PagedMem) {
			for i := range u0 {
				m.StoreF(gridU+uint64(i)*8, u0[i])
				m.StoreF(gridV+uint64(i)*8, v0[i])
				m.StoreF(gridG+uint64(i)*8, g0[i])
			}
		},
		Check: func(m *vm.PagedMem) error {
			refU, refV, refG := reference()
			for i := 0; i < dim*dim; i++ {
				gu := m.LoadF(gridU + uint64(i)*8)
				gv := m.LoadF(gridV + uint64(i)*8)
				gg := m.LoadF(gridG + uint64(i)*8)
				if math.Abs(gu-refU[i]) > 1e-12 || math.Abs(gv-refV[i]) > 1e-12 || math.Abs(gg-refG[i]) > 1e-12 {
					return fmt.Errorf("ocean: cell %d diverges from reference (u %g vs %g, v %g vs %g, g %g vs %g)",
						i, gu, refU[i], gv, refV[i], gg, refG[i])
				}
			}
			return nil
		},
	}
	return app, nil
}
