package apps

import (
	"testing"

	"dynsched/internal/bpred"
	"dynsched/internal/tango"
	"dynsched/internal/vm"
)

// runApp builds and simulates an application at small scale and returns the
// simulation result plus the final memory image.
func runApp(t *testing.T, name string, ncpus int) (*tango.Result, *vm.PagedMem, *App) {
	t.Helper()
	app, err := Build(name, ncpus, ScaleSmall)
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	cfg := tango.DefaultConfig()
	cfg.NumCPUs = ncpus
	cfg.TraceCPU = 1 % ncpus
	var mem *vm.PagedMem
	res, err := tango.Run(app.Progs, func(m *vm.PagedMem) {
		mem = m
		app.Init(m)
	}, cfg)
	if err != nil {
		t.Fatalf("tango.Run(%s): %v", name, err)
	}
	return res, mem, app
}

func checkApp(t *testing.T, name string, ncpus int) *tango.Result {
	t.Helper()
	res, mem, app := runApp(t, name, ncpus)
	if app.Check != nil {
		if err := app.Check(mem); err != nil {
			t.Errorf("%s result check: %v", name, err)
		}
	}
	if err := res.Trace.Validate(); err != nil {
		t.Errorf("%s trace: %v", name, err)
	}
	if res.Trace.Len() == 0 {
		t.Errorf("%s produced an empty trace", name)
	}
	return res
}

func TestLUCorrectness(t *testing.T) {
	res := checkApp(t, "lu", 4)
	s := res.Trace.Sync()
	if s.SetEvents == 0 || s.WaitEvents == 0 {
		t.Errorf("lu sync structure: %+v, want producer/consumer events", s)
	}
	if s.Locks != 0 {
		t.Errorf("lu uses %d locks, want 0 (Table 2)", s.Locks)
	}
	if s.Barriers != 2 {
		t.Errorf("lu barriers = %d, want 2 (Table 2)", s.Barriers)
	}
}

func TestLUSixteenCPUs(t *testing.T) {
	checkApp(t, "lu", 16)
}

func TestMP3DCorrectness(t *testing.T) {
	res := checkApp(t, "mp3d", 4)
	s := res.Trace.Sync()
	if s.Barriers == 0 || s.Locks == 0 {
		t.Errorf("mp3d sync structure: %+v, want barriers and locks", s)
	}
	if s.WaitEvents != 0 || s.SetEvents != 0 {
		t.Errorf("mp3d should not use events: %+v", s)
	}
}

func TestOceanCorrectness(t *testing.T) {
	res := checkApp(t, "ocean", 4)
	s := res.Trace.Sync()
	if s.Barriers < 10 {
		t.Errorf("ocean barriers = %d, want many (barrier-per-phase)", s.Barriers)
	}
	if s.Locks == 0 {
		t.Errorf("ocean should take the reduction lock")
	}
}

func TestPTHORCorrectness(t *testing.T) {
	res := checkApp(t, "pthor", 4)
	s := res.Trace.Sync()
	if s.Locks == 0 {
		t.Errorf("pthor must lock task queues: %+v", s)
	}
	if s.Locks != s.Unlocks {
		t.Errorf("pthor lock/unlock imbalance: %d vs %d", s.Locks, s.Unlocks)
	}
	d := res.Trace.Data()
	if d.Reads == 0 || d.ReadMisses == 0 {
		t.Errorf("pthor data stats: %+v, want communication misses", d)
	}
}

func TestLocusCorrectness(t *testing.T) {
	res := checkApp(t, "locus", 4)
	s := res.Trace.Sync()
	if s.Locks == 0 {
		t.Errorf("locus must lock the wire counter")
	}
}

func TestAllAppsSixteenCPUs(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			checkApp(t, name, 16)
		})
	}
}

// Reference-rate sanity: all applications should have plausible memory
// reference and branch rates (loose bounds around the paper's Table 1/3
// ranges; exact values depend on scale).
func TestReferenceRates(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res, _, _ := runApp(t, name, 16)
			d := res.Trace.Data()
			reads := d.Per1000(d.Reads)
			writes := d.Per1000(d.Writes)
			if reads < 100 || reads > 500 {
				t.Errorf("%s reads/1000 = %.0f, want 100-500 (paper: 210-399)", name, reads)
			}
			if writes < 20 || writes > 300 {
				t.Errorf("%s writes/1000 = %.0f, want 20-300 (paper: 54-151)", name, writes)
			}
			br := res.Trace.Branches(bpred.NewPaperBTB())
			if br.PctInstructions < 3 || br.PctInstructions > 30 {
				t.Errorf("%s branch pct = %.1f, want 3-30 (paper: 6-15.6)", name, br.PctInstructions)
			}
			if br.PctCorrect < 60 {
				t.Errorf("%s BTB accuracy = %.1f%%, implausibly low", name, br.PctCorrect)
			}
		})
	}
}

func TestDeterministicTraces(t *testing.T) {
	r1, _, _ := runApp(t, "pthor", 4)
	r2, _, _ := runApp(t, "pthor", 4)
	if r1.Trace.Len() != r2.Trace.Len() {
		t.Fatalf("trace lengths differ: %d vs %d", r1.Trace.Len(), r2.Trace.Len())
	}
	for i := range r1.Trace.Events {
		if r1.Trace.Events[i] != r2.Trace.Events[i] {
			t.Fatalf("event %d differs between identical runs", i)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build("nosuch", 4, ScaleSmall); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := Build("lu", 0, ScaleSmall); err == nil {
		t.Error("zero cpus accepted")
	}
	if _, err := Build("ocean", 64, ScaleSmall); err == nil {
		t.Error("ocean with more cpus than rows accepted")
	}
}

func TestWaterCorrectness(t *testing.T) {
	res := checkApp(t, "water", 4)
	s := res.Trace.Sync()
	if s.Locks == 0 {
		t.Error("water must use per-molecule locks")
	}
	if s.Barriers < 6 {
		t.Errorf("water barriers = %d, want >= 6 (three per step)", s.Barriers)
	}
}

func TestWaterSixteenCPUs(t *testing.T) {
	checkApp(t, "water", 16)
}

func TestExtendedNames(t *testing.T) {
	ext := ExtendedNames()
	if len(ext) != len(Names())+1 || ext[len(ext)-1] != "water" {
		t.Errorf("ExtendedNames = %v", ext)
	}
	// The reproduction set must stay exactly the paper's five.
	if len(Names()) != 5 {
		t.Errorf("Names = %v, want the paper's five", Names())
	}
}
