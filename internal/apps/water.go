package apps

import (
	"fmt"
	"math"

	"dynsched/internal/asm"
	"dynsched/internal/vm"
)

// BuildWater constructs WATER, a sixth workload beyond the paper's five: the
// SPLASH molecular-dynamics code (the paper's applications are drawn from
// the same suite, §3.3). It is included because it exercises a
// synchronization pattern none of the five have — fine-grained per-object
// locking with floating-point accumulation into shared records — which
// stresses the lock path of the consistency models.
//
// Each time step: forces are zeroed; a barrier; every processor computes
// pairwise interactions for its owned molecules (owner of i computes pairs
// (i, j>i)), accumulating the partner's share into the shared force record
// under that molecule's lock; a barrier; then owned molecules integrate.
//
// The computation is a simplified O(n²) soft-sphere model rather than
// WATER's real potential; the sharing pattern, lock rate, and FP mix are
// what matter here.
func BuildWater(ncpus int, scale Scale) (*App, error) {
	var n, steps int
	switch scale {
	case ScaleSmall:
		n, steps = 32, 2
	case ScaleMedium:
		n, steps = 96, 3
	case ScalePaper:
		n, steps = 192, 4
	default:
		return nil, fmt.Errorf("water: bad scale %v", scale)
	}
	if n < 2*ncpus {
		return nil, fmt.Errorf("water: %d molecules too few for %d processors", n, ncpus)
	}

	const (
		mrec   = 16  // words per molecule: x y z vx vy vz fx fy fz + pad
		cutoff = 9.0 // squared interaction cutoff
		gconst = 0.001
		dt     = 0.01
	)
	lay := asm.NewLayout(1 << 20)
	mols := lay.Words(uint64(n * mrec))
	locks := lay.Words(uint64(n * 8)) // one lock per molecule, one per line

	b := asm.NewBuilder("water")
	mbase := b.Alloc()
	lbase := b.Alloc()
	b.Li(mbase, int64(mols))
	b.Li(lbase, int64(locks))

	lo := b.Alloc()
	hi := b.Alloc()
	{
		t := b.Alloc()
		b.Li(t, int64(n))
		b.Mul(lo, asm.RegCPU, t)
		b.Div(lo, lo, asm.RegNCPU)
		b.Addi(hi, asm.RegCPU, 1)
		b.Mul(hi, hi, t)
		b.Div(hi, hi, asm.RegNCPU)
		b.Free(t)
	}

	fcut := b.Alloc()
	fg := b.Alloc()
	fdt := b.Alloc()
	b.LiF(fcut, cutoff)
	b.LiF(fg, gconst)
	b.LiF(fdt, dt)

	// molAddr computes &mol[i] into dst (mrec*8 = 128 bytes per record).
	molAddr := func(dst, i asm.Reg) {
		b.Shli(dst, i, 7)
		b.Add(dst, dst, mbase)
	}

	b.Barrier(0)
	for s := 0; s < steps; s++ {
		bar := int64(10 + s*4)

		// Phase 1: zero owned force accumulators.
		b.For(lo, hi, 1, func(i asm.Reg) {
			p := b.Alloc()
			z := b.Alloc()
			molAddr(p, i)
			b.LiF(z, 0)
			b.St(p, 48, z)
			b.St(p, 56, z)
			b.St(p, 64, z)
			b.Free(p, z)
		})
		b.Barrier(bar)

		// Phase 2: pairwise forces for owned i against all j > i.
		b.For(lo, hi, 1, func(i asm.Reg) {
			pi := b.Alloc()
			xi := b.Alloc()
			yi := b.Alloc()
			zi := b.Alloc()
			fxi := b.Alloc()
			fyi := b.Alloc()
			fzi := b.Alloc()
			molAddr(pi, i)
			b.Ld(xi, pi, 0)
			b.Ld(yi, pi, 8)
			b.Ld(zi, pi, 16)
			b.LiF(fxi, 0)
			b.LiF(fyi, 0)
			b.LiF(fzi, 0)

			j0 := b.Alloc()
			nn := b.Alloc()
			b.Addi(j0, i, 1)
			b.Li(nn, int64(n))
			b.For(j0, nn, 1, func(j asm.Reg) {
				pj := b.Alloc()
				dx := b.Alloc()
				dy := b.Alloc()
				dz := b.Alloc()
				r2 := b.Alloc()
				t := b.Alloc()
				molAddr(pj, j)
				b.Ld(dx, pj, 0)
				b.FSub(dx, dx, xi)
				b.Ld(dy, pj, 8)
				b.FSub(dy, dy, yi)
				b.Ld(dz, pj, 16)
				b.FSub(dz, dz, zi)
				b.FMul(r2, dx, dx)
				b.FMul(t, dy, dy)
				b.FAdd(r2, r2, t)
				b.FMul(t, dz, dz)
				b.FAdd(r2, r2, t)
				c := b.Alloc()
				b.FSlt(c, r2, fcut)
				b.If(c, func() {
					// f = g / (r2 + 1): soft-sphere repulsion along d.
					one := b.Alloc()
					f := b.Alloc()
					b.LiF(one, 1)
					b.FAdd(f, r2, one)
					b.FDiv(f, fg, f)
					b.Free(one)
					b.FMul(dx, dx, f)
					b.FMul(dy, dy, f)
					b.FMul(dz, dz, f)
					// i gains +d (toward j), accumulated locally.
					b.FAdd(fxi, fxi, dx)
					b.FAdd(fyi, fyi, dy)
					b.FAdd(fzi, fzi, dz)
					// j gains -d, accumulated into the shared record under
					// molecule j's lock (WATER's fine-grained locking).
					lk := b.Alloc()
					b.Shli(lk, j, 6)
					b.Add(lk, lk, lbase)
					b.Lock(lk, 0)
					v := b.Alloc()
					b.Ld(v, pj, 48)
					b.FSub(v, v, dx)
					b.St(pj, 48, v)
					b.Ld(v, pj, 56)
					b.FSub(v, v, dy)
					b.St(pj, 56, v)
					b.Ld(v, pj, 64)
					b.FSub(v, v, dz)
					b.St(pj, 64, v)
					b.Unlock(lk, 0)
					b.Free(lk, v, f)
				}, nil)
				b.Free(pj, dx, dy, dz, r2, t, c)
			})
			b.Free(j0, nn)

			// Fold the local share of molecule i's force in, under its lock.
			lk := b.Alloc()
			b.Shli(lk, i, 6)
			b.Add(lk, lk, lbase)
			b.Lock(lk, 0)
			v := b.Alloc()
			b.Ld(v, pi, 48)
			b.FAdd(v, v, fxi)
			b.St(pi, 48, v)
			b.Ld(v, pi, 56)
			b.FAdd(v, v, fyi)
			b.St(pi, 56, v)
			b.Ld(v, pi, 64)
			b.FAdd(v, v, fzi)
			b.St(pi, 64, v)
			b.Unlock(lk, 0)
			b.Free(lk, v, pi, xi, yi, zi, fxi, fyi, fzi)
		})
		b.Barrier(bar + 1)

		// Phase 3: integrate owned molecules.
		b.For(lo, hi, 1, func(i asm.Reg) {
			p := b.Alloc()
			v := b.Alloc()
			x := b.Alloc()
			f := b.Alloc()
			molAddr(p, i)
			for ax := int64(0); ax < 3; ax++ {
				b.Ld(f, p, 48+ax*8)
				b.FMul(f, f, fdt)
				b.Ld(v, p, 24+ax*8)
				b.FAdd(v, v, f)
				b.St(p, 24+ax*8, v)
				b.FMul(v, v, fdt)
				b.Ld(x, p, ax*8)
				b.FAdd(x, x, v)
				b.St(p, ax*8, x)
			}
			b.Free(p, v, x, f)
		})
		b.Barrier(bar + 2)
	}
	b.Barrier(1)
	b.Halt()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	// Host init: molecules on a jittered grid with small random velocities.
	r := newRNG(0x3A7E4)
	type mol struct{ x, y, z, vx, vy, vz float64 }
	init0 := make([]mol, n)
	side := int(math.Ceil(math.Cbrt(float64(n))))
	for i := range init0 {
		init0[i] = mol{
			x:  float64(i%side)*2 + r.float()*0.5,
			y:  float64((i/side)%side)*2 + r.float()*0.5,
			z:  float64(i/(side*side))*2 + r.float()*0.5,
			vx: (r.float() - 0.5) * 0.1,
			vy: (r.float() - 0.5) * 0.1,
			vz: (r.float() - 0.5) * 0.1,
		}
	}

	// Reference: same algorithm sequentially. Force contributions add in a
	// different order than the parallel run, so comparison uses a tolerance
	// (floating-point addition is not associative).
	reference := func() []mol {
		ms := append([]mol(nil), init0...)
		for s := 0; s < steps; s++ {
			fx := make([]float64, n)
			fy := make([]float64, n)
			fz := make([]float64, n)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					dx := ms[j].x - ms[i].x
					dy := ms[j].y - ms[i].y
					dz := ms[j].z - ms[i].z
					r2 := dx*dx + dy*dy + dz*dz
					if r2 < cutoff {
						f := gconst / (r2 + 1)
						fx[i] += dx * f
						fy[i] += dy * f
						fz[i] += dz * f
						fx[j] -= dx * f
						fy[j] -= dy * f
						fz[j] -= dz * f
					}
				}
			}
			for i := 0; i < n; i++ {
				ms[i].vx += fx[i] * dt
				ms[i].vy += fy[i] * dt
				ms[i].vz += fz[i] * dt
				ms[i].x += ms[i].vx * dt
				ms[i].y += ms[i].vy * dt
				ms[i].z += ms[i].vz * dt
			}
		}
		return ms
	}

	app := &App{
		Name:  "water",
		Progs: spmd(prog, ncpus),
		Init: func(m *vm.PagedMem) {
			for i, mo := range init0 {
				base := mols + uint64(i*mrec)*8
				m.StoreF(base, mo.x)
				m.StoreF(base+8, mo.y)
				m.StoreF(base+16, mo.z)
				m.StoreF(base+24, mo.vx)
				m.StoreF(base+32, mo.vy)
				m.StoreF(base+40, mo.vz)
			}
		},
		Check: func(m *vm.PagedMem) error {
			ref := reference()
			for i := 0; i < n; i++ {
				base := mols + uint64(i*mrec)*8
				gx, gy, gz := m.LoadF(base), m.LoadF(base+8), m.LoadF(base+16)
				if math.Abs(gx-ref[i].x) > 1e-9 || math.Abs(gy-ref[i].y) > 1e-9 || math.Abs(gz-ref[i].z) > 1e-9 {
					return fmt.Errorf("water: molecule %d at (%g,%g,%g), reference (%g,%g,%g)",
						i, gx, gy, gz, ref[i].x, ref[i].y, ref[i].z)
				}
			}
			return nil
		},
	}
	return app, nil
}
