package apps

import (
	"fmt"

	"dynsched/internal/asm"
	"dynsched/internal/vm"
)

// BuildLocus constructs the LOCUS benchmark (§3.3): the LocusRoute standard
// cell router. "The main data structure is a cost array that keeps track of
// the number of wires running through each routing cell of the circuit."
//
// Wires are taken from a lock-protected shared work counter (LocusRoute's
// dynamic distribution); for each wire several two-bend candidate routes
// are evaluated by summing the cost-array cells along them, the cheapest
// is chosen, and its cells are incremented. The cost array is read and
// written by all processors, giving LOCUS its invalidation misses, and the
// route evaluation loops give branch behaviour close to Table 3 (92%
// predicted, branches every ~6 instructions). The paper routes 1266 wires
// over a 481-by-18 cost array; ScalePaper matches that.
func BuildLocus(ncpus int, scale Scale) (*App, error) {
	var gw, gh, wires int
	switch scale {
	case ScaleSmall:
		gw, gh, wires = 64, 10, 48
	case ScaleMedium:
		gw, gh, wires = 200, 16, 320
	case ScalePaper:
		gw, gh, wires = 481, 18, 1266
	default:
		return nil, fmt.Errorf("locus: bad scale %v", scale)
	}

	pathCap := gw/6 + gh + 8 // max cells on one candidate route

	lay := asm.NewLayout(1 << 20)
	grid := lay.Words(uint64(gw * gh))
	wireTab := lay.Words(uint64(wires * 4)) // x1 y1 x2 y2 per wire
	counter := lay.Word()                   // next wire to route
	counterLock := lay.Word()
	totalCells := lay.Word() // global routed-cell count
	totalLock := lay.Word()
	// Private per-processor path buffers: the router records each candidate
	// route's cells while costing it, and commits the winner from the
	// record, as the real LocusRoute does. These are unshared, so their
	// traffic cache-hits — keeping the shared cost-array references a
	// realistic fraction of the instruction stream.
	scratch := lay.Words(uint64(ncpus * 3 * pathCap))

	b := asm.NewBuilder("locus")
	gbase := b.Alloc()
	wbase := b.Alloc()
	b.Li(gbase, int64(grid))
	b.Li(wbase, int64(wireTab))
	local := b.Alloc() // cells routed by this processor
	b.Li(local, 0)
	sbase := b.Alloc() // this processor's path-buffer region
	b.Muli(sbase, asm.RegCPU, int64(3*pathCap*8))
	{
		t := b.Alloc()
		b.Li(t, int64(scratch))
		b.Add(sbase, sbase, t)
		b.Free(t)
	}
	b.Barrier(0)

	// cellAddr computes &grid[y][x] into dst.
	cellAddr := func(dst, x, y asm.Reg) {
		b.Muli(dst, y, int64(gw))
		b.Add(dst, dst, x)
		b.Shli(dst, dst, 3)
		b.Add(dst, dst, gbase)
	}

	// segment costs the cells of a straight run, recording each cell's
	// address into the private path buffer at cur. For horizontal runs the
	// span a..b is in x at row `fixed`; for vertical runs the span is in y
	// at column `fixed`. Walks low→high with a strength-reduced pointer so
	// the direction branch resolves once per segment.
	segment := func(a, bb, fixed asm.Reg, acc, cur asm.Reg, horizontal bool) {
		lo2 := b.Alloc()
		hi2 := b.Alloc()
		c := b.Alloc()
		b.Slt(c, bb, a)
		b.If(c, func() { b.Mov(lo2, bb); b.Mov(hi2, a) },
			func() { b.Mov(lo2, a); b.Mov(hi2, bb) })
		b.Addi(hi2, hi2, 1)
		p := b.Alloc()
		var step int64
		if horizontal {
			cellAddr(p, lo2, fixed)
			step = 8
		} else {
			cellAddr(p, fixed, lo2)
			step = int64(gw) * 8
		}
		b.For(lo2, hi2, 1, func(i asm.Reg) {
			v := b.Alloc()
			b.Ld(v, p, 0)
			b.Add(acc, acc, v)
			b.St(cur, 0, p) // record the cell on the candidate's path
			b.Addi(cur, cur, 8)
			b.Addi(p, p, step)
			b.Free(v)
		})
		b.Free(lo2, hi2, c, p)
	}

	// Main loop: grab wire indices from the shared counter until exhausted.
	done := b.NewLabel("done")
	loop := b.NewLabel("loop")
	b.Label(loop)
	idx := b.Alloc()
	{
		lk := b.Alloc()
		ctr := b.Alloc()
		b.Li(lk, int64(counterLock))
		b.Lock(lk, 0)
		b.Li(ctr, int64(counter))
		b.Ld(idx, ctr, 0)
		t := b.Alloc()
		b.Addi(t, idx, 1)
		b.St(ctr, 0, t)
		b.Free(t)
		b.Unlock(lk, 0)
		b.Free(lk, ctr)
	}
	lim := b.Alloc()
	b.Li(lim, int64(wires))
	b.Slt(lim, idx, lim)
	b.Beqz(lim, done)
	b.Free(lim)

	// Load the wire's pins.
	x1 := b.Alloc()
	y1 := b.Alloc()
	x2 := b.Alloc()
	y2 := b.Alloc()
	{
		w := b.Alloc()
		b.Shli(w, idx, 5) // 4 words per wire
		b.Add(w, w, wbase)
		b.Ld(x1, w, 0)
		b.Ld(y1, w, 8)
		b.Ld(x2, w, 16)
		b.Ld(y2, w, 24)
		b.Free(w)
	}

	// Evaluate three candidate routes, recording each candidate's cells in
	// its own private path buffer:
	//   0: horizontal at y1, then vertical at x2 (L, horizontal first)
	//   1: vertical at x1, then horizontal at y2 (L, vertical first)
	//   2: Z-route bending at the midpoint ym = (y1+y2)/2
	ym := b.Alloc()
	b.Add(ym, y1, y2)
	b.Shri(ym, ym, 1)

	best := b.Alloc()      // best cost so far
	bestStart := b.Alloc() // path buffer range of the winning route
	bestEnd := b.Alloc()
	cost := b.Alloc()
	cur := b.Alloc()
	b.Li(best, 1<<40)
	b.Mov(bestStart, sbase)
	b.Mov(bestEnd, sbase)

	for route := 0; route < 3; route++ {
		b.Li(cost, 0)
		b.Addi(cur, sbase, int64(route*pathCap*8))
		switch route {
		case 0:
			segment(x1, x2, y1, cost, cur, true)
			segment(y1, y2, x2, cost, cur, false)
		case 1:
			segment(y1, y2, x1, cost, cur, false)
			segment(x1, x2, y2, cost, cur, true)
		case 2:
			segment(y1, ym, x1, cost, cur, false)
			segment(x1, x2, ym, cost, cur, true)
			segment(ym, y2, x2, cost, cur, false)
		}
		c := b.Alloc()
		b.Slt(c, cost, best)
		b.If(c, func() {
			b.Mov(best, cost)
			b.Addi(bestStart, sbase, int64(route*pathCap*8))
			b.Mov(bestEnd, cur)
		}, nil)
		b.Free(c)
	}

	// Commit the winner from the recorded path: load each cell address from
	// the private buffer, then increment the shared cost cell.
	b.While(func(c asm.Reg) { b.Slt(c, bestStart, bestEnd) }, func() {
		a := b.Alloc()
		v := b.Alloc()
		b.Ld(a, bestStart, 0) // private: the recorded cell address
		b.Ld(v, a, 0)         // shared: the cost cell
		b.Addi(v, v, 1)
		b.St(a, 0, v)
		b.Addi(local, local, 1)
		b.Addi(bestStart, bestStart, 8)
		b.Free(a, v)
	})
	b.Free(x1, y1, x2, y2, ym, best, bestStart, bestEnd, cost, cur, idx)
	b.J(loop)
	b.Label(done)

	// Fold the local routed-cell count into the global total.
	{
		lk := b.Alloc()
		g := b.Alloc()
		v := b.Alloc()
		b.Li(lk, int64(totalLock))
		b.Lock(lk, 0)
		b.Li(g, int64(totalCells))
		b.Ld(v, g, 0)
		b.Add(v, v, local)
		b.St(g, 0, v)
		b.Unlock(lk, 0)
		b.Free(lk, g, v)
	}
	b.Barrier(1)
	b.Halt()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	// Host init: wires with bounded spans, mimicking standard-cell channel
	// wiring (long in x, short in y).
	r := newRNG(0x10C05)
	wireData := make([][4]int, wires)
	for i := range wireData {
		x1v := r.intn(gw)
		dx := r.intn(gw/6) + 1
		x2v := x1v + dx
		if x2v >= gw {
			x2v = x1v - dx
			if x2v < 0 {
				x2v = 0
			}
		}
		y1v := r.intn(gh)
		y2v := r.intn(gh)
		wireData[i] = [4]int{x1v, y1v, x2v, y2v}
	}

	app := &App{
		Name:  "locus",
		Progs: spmd(prog, ncpus),
		Init: func(m *vm.PagedMem) {
			for i, w := range wireData {
				base := wireTab + uint64(i*4)*8
				for k, v := range w {
					m.Store(base+uint64(k)*8, uint64(v))
				}
			}
		},
		Check: func(m *vm.PagedMem) error {
			// Conservation: the grid total must equal the routed-cell count
			// accumulated under the lock, and every wire must have been
			// taken exactly once (counter ≥ wires).
			var sum uint64
			for i := 0; i < gw*gh; i++ {
				sum += m.Load(grid + uint64(i)*8)
			}
			total := m.Load(totalCells)
			// Cost-array increments are unsynchronized (as in the real
			// LocusRoute, which tolerates stale cost data by design), so a
			// few updates may be lost to races between processors.
			if sum > total || sum < total*98/100 {
				return fmt.Errorf("locus: grid sum %d outside [%d, %d]", sum, total*98/100, total)
			}
			if got := m.Load(counter); got < uint64(wires) {
				return fmt.Errorf("locus: only %d of %d wires taken", got, wires)
			}
			if total == 0 {
				return fmt.Errorf("locus: nothing routed")
			}
			return nil
		},
	}
	return app, nil
}
