// Package apps implements the paper's five benchmark applications — MP3D,
// LU, PTHOR, LOCUS, and OCEAN (§3.3) — as SPMD programs in the virtual ISA.
//
// Each application reproduces the algorithm, parallel decomposition,
// synchronization structure, and sharing pattern the paper describes; the
// source-level C/Fortran programs are unavailable, so the algorithms are
// written directly against the asm builder (see DESIGN.md, substitutions).
// Problem sizes are selectable: ScaleSmall for unit tests, ScaleMedium for
// quick experiments, and ScalePaper for sizes comparable to the paper's.
package apps

import (
	"fmt"
	"sort"

	"dynsched/internal/asm"
	"dynsched/internal/vm"
)

// Scale selects the problem size.
type Scale uint8

const (
	// ScaleSmall runs in milliseconds; used by unit tests.
	ScaleSmall Scale = iota
	// ScaleMedium is the default for the benchmark harness.
	ScaleMedium
	// ScalePaper approximates the paper's problem sizes.
	ScalePaper
)

// String returns the scale name.
func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	case ScalePaper:
		return "paper"
	}
	return fmt.Sprintf("Scale(%d)", uint8(s))
}

// ParseScale converts a name to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "paper":
		return ScalePaper, nil
	}
	return 0, fmt.Errorf("apps: unknown scale %q", s)
}

// App is an instantiated benchmark: one program per processor, host-side
// memory initialization, and an optional result check run after functional
// simulation.
type App struct {
	Name  string
	Progs []*asm.Program
	Init  func(m *vm.PagedMem)
	// Check validates computation results in the final memory image; it is
	// nil for applications whose output is behavioural rather than numeric.
	Check func(m *vm.PagedMem) error
}

// Builder constructs an App for a processor count and scale.
type Builder func(ncpus int, scale Scale) (*App, error)

var registry = map[string]Builder{
	"lu":    BuildLU,
	"mp3d":  BuildMP3D,
	"ocean": BuildOcean,
	"pthor": BuildPTHOR,
	"locus": BuildLocus,
	"water": BuildWater, // extension workload beyond the paper's five
}

// Names lists the paper's five applications in its presentation order.
// WATER (an extension workload from the same SPLASH suite) is buildable by
// name but excluded here so the reproduction experiments match the paper.
func Names() []string { return []string{"mp3d", "lu", "pthor", "locus", "ocean"} }

// ExtendedNames lists every available application, including extension
// workloads beyond the paper's evaluation.
func ExtendedNames() []string { return append(Names(), "water") }

// Build instantiates the named application.
func Build(name string, ncpus int, scale Scale) (*App, error) {
	b, ok := registry[name]
	if !ok {
		known := make([]string, 0, len(registry))
		for k := range registry {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("apps: unknown application %q (have %v)", name, known)
	}
	if ncpus < 1 {
		return nil, fmt.Errorf("apps: ncpus = %d", ncpus)
	}
	return b(ncpus, scale)
}

// spmd replicates one program across n processors.
func spmd(p *asm.Program, n int) []*asm.Program {
	ps := make([]*asm.Program, n)
	for i := range ps {
		ps[i] = p
	}
	return ps
}

// rng is a small deterministic xorshift64* generator for host-side input
// generation; simulations must be reproducible, so math/rand's global state
// is avoided.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// float returns a value in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(uint64(1)<<53)
}
