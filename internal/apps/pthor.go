package apps

import (
	"fmt"

	"dynsched/internal/asm"
	"dynsched/internal/isa"
	"dynsched/internal/vm"
)

// BuildPTHOR constructs the PTHOR benchmark (§3.3): a parallel
// distributed-time logic simulator in the style of Chandy-Misra. "Each
// processor executes the following loop. It removes an activated element
// from one of its task queues and determines the changes on that element's
// outputs. It then schedules the newly activated elements onto the task
// queues."
//
// The circuit is a deterministic synthetic gate network (the paper's RISC
// netlist is proprietary; see DESIGN.md). Phases alternate between two
// queue generations separated by barriers; pushing an activation onto
// another processor's queue takes that queue's lock, giving PTHOR its
// distinctively high lock rate (Table 2: 3.4 locks per 1000 instructions).
// Gate evaluation chases pointers — gate record → input gate ids → input
// values — producing the dependent read-miss chains the paper identifies
// as PTHOR's limiting factor (§4.1.3: ~50% of read misses delayed over 50
// cycles), and the per-gate type dispatch yields its poor branch
// predictability (Table 3: 81.2%).
func BuildPTHOR(ncpus int, scale Scale) (*App, error) {
	var gates, phases int
	switch scale {
	case ScaleSmall:
		gates, phases = 160, 3
	case ScaleMedium:
		gates, phases = 1200, 5
	case ScalePaper:
		gates, phases = 6000, 8
	default:
		return nil, fmt.Errorf("pthor: bad scale %v", scale)
	}
	if gates < 4*ncpus {
		return nil, fmt.Errorf("pthor: %d gates too few for %d processors", gates, ncpus)
	}

	// Synthetic circuit: gate i has a type and two random input gates.
	r := newRNG(0x9704)
	type gate struct{ typ, in0, in1 int }
	gs := make([]gate, gates)
	fanout := make([][]int, gates)
	for i := range gs {
		g := gate{typ: r.intn(4), in0: r.intn(gates), in1: r.intn(gates)}
		gs[i] = g
		fanout[g.in0] = append(fanout[g.in0], i)
		if g.in1 != g.in0 {
			fanout[g.in1] = append(fanout[g.in1], i)
		}
	}
	edges := 0
	for _, f := range fanout {
		edges += len(f)
	}

	const grec = 4 // words per gate record: type, in0, in1, val
	capPer := 4*edges/ncpus + 64

	lay := asm.NewLayout(1 << 20)
	gbase := lay.Words(uint64(gates * grec))
	fstart := lay.Words(uint64(gates + 1))
	flist := lay.Words(uint64(edges))
	// Two queue generations, one queue per processor; per-queue tail
	// counters and locks each on their own line.
	qbase := [2]uint64{lay.Words(uint64(ncpus * capPer)), lay.Words(uint64(ncpus * capPer))}
	tails := [2]uint64{lay.Words(uint64(ncpus * 2)), lay.Words(uint64(ncpus * 2))}
	qlocks := lay.Words(uint64(ncpus * 8)) // spread across lines (8 words apart)
	overflow := lay.Word()
	// Private per-processor timing-wheel scratch (64 words each): element
	// evaluation in the real PTHOR is dominated by private event-list and
	// delay-table traffic, which cache-hits.
	const wheelWords = 64
	wheel := lay.Words(uint64(ncpus * wheelWords))

	b := asm.NewBuilder("pthor")
	gb := b.Alloc()
	fsb := b.Alloc()
	flb := b.Alloc()
	wb := b.Alloc()
	b.Li(gb, int64(gbase))
	b.Li(fsb, int64(fstart))
	b.Li(flb, int64(flist))
	b.Muli(wb, asm.RegCPU, wheelWords*8)
	{
		t := b.Alloc()
		b.Li(t, int64(wheel))
		b.Add(wb, wb, t)
		b.Free(t)
	}
	b.Barrier(0)

	for ph := 0; ph < phases; ph++ {
		gen := ph & 1
		nxt := 1 - gen

		// Drain this processor's current-generation queue.
		myq := b.Alloc()
		myTail := b.Alloc()
		cnt := b.Alloc()
		b.Muli(myq, asm.RegCPU, int64(capPer*8))
		t := b.Alloc()
		b.Li(t, int64(qbase[gen]))
		b.Add(myq, myq, t)
		b.Shli(myTail, asm.RegCPU, 4) // 2 words per tail slot
		b.Li(t, int64(tails[gen]))
		b.Add(myTail, myTail, t)
		b.Free(t)
		b.Ld(cnt, myTail, 0)

		qi := b.Alloc()
		b.Li(qi, 0)
		b.While(func(c asm.Reg) { b.Slt(c, qi, cnt) }, func() {
			gid := b.Alloc()
			gaddr := b.Alloc()
			b.Shli(gaddr, qi, 3)
			b.Add(gaddr, gaddr, myq)
			b.Ld(gid, gaddr, 0)   // activation record
			b.Shli(gaddr, gid, 5) // grec*8 = 32 bytes
			b.Add(gaddr, gaddr, gb)

			typ := b.Alloc()
			v0 := b.Alloc()
			v1 := b.Alloc()
			b.Ld(typ, gaddr, 0)
			// Chase the input pointers: load input ids, then their values.
			b.Ld(v0, gaddr, 8)
			b.Shli(v0, v0, 5)
			b.Add(v0, v0, gb)
			b.Ld(v0, v0, 24) // value of input 0 (address depends on load)
			b.Ld(v1, gaddr, 16)
			b.Shli(v1, v1, 5)
			b.Add(v1, v1, gb)
			b.Ld(v1, v1, 24)

			// Evaluate by gate type: 0 AND, 1 OR, 2 XOR, 3 NAND.
			nv := b.Alloc()
			c := b.Alloc()
			b.Slti(c, typ, 2)
			b.If(c, func() {
				b.Slti(c, typ, 1)
				b.If(c, func() { b.And(nv, v0, v1) }, func() { b.Or(nv, v0, v1) })
			}, func() {
				b.Slti(c, typ, 3)
				b.If(c, func() { b.Xor(nv, v0, v1) }, func() {
					b.And(nv, v0, v1)
					b.Slti(nv, nv, 1) // NAND: !(a&b) for 0/1 values
				})
			})

			// Timing-wheel bookkeeping: the real PTHOR spends most of an
			// element evaluation on private event-list and delay-table
			// traffic (timestamps, deadlock counters). Model it as a short
			// walk over the processor's private wheel — memory-rich and
			// cache-resident — so both the reference rate and the miss
			// rate land near Table 1's PTHOR row (399 reads/1000, 23.5
			// read misses/1000).
			acc := b.Alloc()
			slot := b.Alloc()
			b.Mov(acc, gid)
			b.ForI(0, 6, 1, func(d asm.Reg) {
				b.Muli(slot, acc, 2654435761)
				b.Shri(slot, slot, 8)
				b.Andi(slot, slot, wheelWords-1)
				b.Shli(slot, slot, 3)
				b.Add(slot, slot, wb)
				v2 := b.Alloc()
				b.Ld(v2, slot, 0)
				b.Add(acc, acc, v2)
				b.Addi(v2, v2, 1)
				b.St(slot, 0, v2)
				b.Free(v2)
			})
			b.Free(acc, slot)

			// If the output changed, store it and activate the fanout.
			old := b.Alloc()
			b.Ld(old, gaddr, 24)
			b.Sne(c, nv, old)
			b.If(c, func() {
				b.St(gaddr, 24, nv)
				fs := b.Alloc()
				fe := b.Alloc()
				b.Shli(fs, gid, 3)
				b.Add(fs, fs, fsb)
				b.Ld(fe, fs, 8) // fanoutStart[gid+1]
				b.Ld(fs, fs, 0) // fanoutStart[gid]
				b.For(fs, fe, 1, func(fi asm.Reg) {
					tgt := b.Alloc()
					b.Shli(tgt, fi, 3)
					b.Add(tgt, tgt, flb)
					b.Ld(tgt, tgt, 0) // target gate id
					// Push onto the target's next-generation queue.
					tq := b.Alloc()
					b.Rem(tq, tgt, asm.RegNCPU) // owning processor
					lk := b.Alloc()
					b.Shli(lk, tq, 6) // 8 words between locks
					tmp := b.Alloc()
					b.Li(tmp, int64(qlocks))
					b.Add(lk, lk, tmp)
					b.Lock(lk, 0)
					ta := b.Alloc()
					tl := b.Alloc()
					b.Shli(ta, tq, 4)
					b.Li(tmp, int64(tails[nxt]))
					b.Add(ta, ta, tmp)
					b.Ld(tl, ta, 0)
					full := b.Alloc()
					b.Slti(full, tl, int64(capPer))
					b.If(full, func() {
						dst := b.Alloc()
						b.Muli(dst, tq, int64(capPer*8))
						b.Li(tmp, int64(qbase[nxt]))
						b.Add(dst, dst, tmp)
						b.Shli(tmp, tl, 3)
						b.Add(dst, dst, tmp)
						b.St(dst, 0, tgt)
						b.Addi(tl, tl, 1)
						b.St(ta, 0, tl)
						b.Free(dst)
					}, func() {
						one := b.Alloc()
						ov := b.Alloc()
						b.Li(one, 1)
						b.Li(ov, int64(overflow))
						b.St(ov, 0, one)
						b.Free(one, ov)
					})
					b.Unlock(lk, 0)
					b.Free(tgt, tq, lk, tmp, ta, tl, full)
				})
				b.Free(fs, fe)
			}, nil)
			b.Free(gid, gaddr, typ, v0, v1, nv, c, old)
			b.Addi(qi, qi, 1)
		})
		// Reset this generation's tail for reuse two phases later, then
		// synchronize before anyone consumes the next generation.
		b.St(myTail, 0, isa.Zero)
		b.Free(myq, myTail, cnt, qi)
		b.Barrier(int64(10 + ph))
	}
	b.Barrier(1)
	b.Halt()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	// Flatten fanout lists for the host image.
	starts := make([]int, gates+1)
	var flat []int
	for i, f := range fanout {
		starts[i] = len(flat)
		flat = append(flat, f...)
	}
	starts[gates] = len(flat)
	vals := make([]int, gates)
	r2 := newRNG(0x517)
	for i := range vals {
		vals[i] = r2.intn(2)
	}

	app := &App{
		Name:  "pthor",
		Progs: spmd(prog, ncpus),
		Init: func(m *vm.PagedMem) {
			for i, g := range gs {
				base := gbase + uint64(i*grec)*8
				m.Store(base, uint64(g.typ))
				m.Store(base+8, uint64(g.in0))
				m.Store(base+16, uint64(g.in1))
				m.Store(base+24, uint64(vals[i]))
			}
			for i, s := range starts {
				m.Store(fstart+uint64(i)*8, uint64(s))
			}
			for i, v := range flat {
				m.Store(flist+uint64(i)*8, uint64(v))
			}
			// Initial activation: every gate, round-robin over queues.
			cnt := make([]uint64, ncpus)
			for g := 0; g < gates; g++ {
				q := g % ncpus
				m.Store(qbase[0]+uint64(q)*uint64(capPer)*8+cnt[q]*8, uint64(g))
				cnt[q]++
			}
			for q, c := range cnt {
				m.Store(tails[0]+uint64(q)*16, c)
				m.Store(tails[1]+uint64(q)*16, 0)
			}
		},
		Check: func(m *vm.PagedMem) error {
			if m.Load(overflow) != 0 {
				return fmt.Errorf("pthor: task queue overflowed (capacity %d)", capPer)
			}
			for g := 0; g < gates; g++ {
				v := m.Load(gbase + uint64(g*grec)*8 + 24)
				if v != 0 && v != 1 {
					return fmt.Errorf("pthor: gate %d value %d not boolean", g, v)
				}
			}
			return nil
		},
	}
	return app, nil
}
