package vm

// Full-opcode execution coverage: every opcode in the ISA is executed
// through the interpreter at least once, with its architectural effect
// checked. This guards the coupling between isa.EvalALU, the classifier,
// and the stepper as the ISA evolves.

import (
	"math"
	"testing"

	"dynsched/internal/asm"
	"dynsched/internal/isa"
)

// runProg executes a builder-produced program and returns the memory.
func runProg(t *testing.T, build func(b *asm.Builder)) (*PagedMem, *Thread) {
	t.Helper()
	b := asm.NewBuilder("op")
	build(b)
	b.Halt()
	m := NewPagedMem()
	th := NewThread(b.MustBuild(), m)
	if _, err := th.Run(100000); err != nil {
		t.Fatal(err)
	}
	return m, th
}

func TestIntegerOpcodes(t *testing.T) {
	m, _ := runProg(t, func(b *asm.Builder) {
		out := b.Alloc()
		x := b.Alloc()
		y := b.Alloc()
		r := b.Alloc()
		b.Li(out, 0)
		b.Li(x, 37)
		b.Li(y, 5)
		store := func(off int64) { b.St(out, off, r) }
		b.Add(r, x, y)
		store(0) // 42
		b.Sub(r, x, y)
		store(8) // 32
		b.Mul(r, x, y)
		store(16) // 185
		b.Div(r, x, y)
		store(24) // 7
		b.Rem(r, x, y)
		store(32) // 2
		b.And(r, x, y)
		store(40) // 5
		b.Or(r, x, y)
		store(48) // 37
		b.Xor(r, x, y)
		store(56) // 32
		b.Shl(r, y, y)
		store(64) // 160
		b.Shr(r, x, y)
		store(72) // 1
		b.Slt(r, y, x)
		store(80) // 1
		b.Sle(r, x, x)
		store(88) // 1
		b.Seq(r, x, y)
		store(96) // 0
		b.Sne(r, x, y)
		store(104) // 1
		b.Addi(r, x, -7)
		store(112) // 30
		b.Muli(r, y, 9)
		store(120) // 45
		b.Andi(r, x, 0xF)
		store(128) // 5
		b.Shli(r, y, 2)
		store(136) // 20
		b.Shri(r, x, 2)
		store(144) // 9
		b.Slti(r, y, 6)
		store(152) // 1
		b.Mov(r, x)
		store(160) // 37
	})
	want := []uint64{42, 32, 185, 7, 2, 5, 37, 32, 160, 1, 1, 1, 0, 1, 30, 45, 5, 20, 9, 1, 37}
	for i, w := range want {
		if got := m.Load(uint64(i) * 8); got != w {
			t.Errorf("slot %d = %d, want %d", i, got, w)
		}
	}
}

func TestFloatOpcodes(t *testing.T) {
	m, _ := runProg(t, func(b *asm.Builder) {
		out := b.Alloc()
		x := b.Alloc()
		y := b.Alloc()
		r := b.Alloc()
		b.Li(out, 0)
		b.LiF(x, 6.25)
		b.LiF(y, 2.5)
		store := func(off int64) { b.St(out, off, r) }
		b.FAdd(r, x, y)
		store(0) // 8.75
		b.FSub(r, x, y)
		store(8) // 3.75
		b.FMul(r, x, y)
		store(16) // 15.625
		b.FDiv(r, x, y)
		store(24) // 2.5
		b.FNeg(r, y)
		store(32) // -2.5
		b.FAbs(r, r)
		store(40) // 2.5
		b.FSlt(r, y, x)
		store(48) // 1 (integer)
		b.FSqrt(r, x)
		store(56) // 2.5
		b.CvtFI(r, x)
		store(64) // 6 (integer)
		b.Li(r, -3)
		b.CvtIF(r, r)
		store(72) // -3.0
	})
	wantF := map[uint64]float64{0: 8.75, 8: 3.75, 16: 15.625, 24: 2.5, 32: -2.5, 40: 2.5, 56: 2.5, 72: -3}
	for off, w := range wantF {
		if got := m.LoadF(off); math.Abs(got-w) > 1e-15 {
			t.Errorf("float slot %d = %v, want %v", off, got, w)
		}
	}
	if got := m.Load(48); got != 1 {
		t.Errorf("fslt = %d, want 1", got)
	}
	if got := int64(m.Load(64)); got != 6 {
		t.Errorf("cvtfi = %d, want 6", got)
	}
}

func TestControlOpcodes(t *testing.T) {
	// Exercise Beqz (taken + not taken), Bnez, J, and nested loops.
	m, _ := runProg(t, func(b *asm.Builder) {
		out := b.Alloc()
		r := b.Alloc()
		b.Li(out, 0)
		b.Li(r, 0)
		b.Beqz(r, "taken")
		b.Li(r, 111) // skipped
		b.Label("taken")
		b.Addi(r, r, 1)
		b.Bnez(r, "taken2")
		b.Li(r, 222) // skipped
		b.Label("taken2")
		b.St(out, 0, r) // 1
		b.J("end")
		b.Li(r, 333) // skipped
		b.Label("end")
		b.Nop()
		b.St(out, 8, r) // still 1
	})
	if m.Load(0) != 1 || m.Load(8) != 1 {
		t.Errorf("control flow result = %d, %d, want 1, 1", m.Load(0), m.Load(8))
	}
}

func TestEveryOpcodeHasClassAndName(t *testing.T) {
	for op := isa.Op(0); op.Valid(); op++ {
		if op.String() == "" {
			t.Errorf("opcode %d has no mnemonic", op)
		}
		// Classify must not panic and must return a defined class.
		c := isa.Classify(op)
		if c > isa.ClassHalt {
			t.Errorf("opcode %v has invalid class %d", op, c)
		}
	}
}

func TestExecutedCounter(t *testing.T) {
	_, th := runProg(t, func(b *asm.Builder) {
		r := b.Alloc()
		b.Li(r, 3)
		b.Addi(r, r, 1)
	})
	if th.Executed != 3 { // li, addi, halt
		t.Errorf("Executed = %d, want 3", th.Executed)
	}
}
