// Package vm implements the functional interpreter for virtual-ISA threads.
//
// A Thread executes one program instruction at a time against a shared
// Memory. The interpreter is purely functional: it computes values, effective
// addresses, and branch outcomes, but knows nothing about time. Timing,
// blocking, caches, and synchronization semantics are layered on top by the
// multiprocessor simulator (package tango), which calls Step and inspects the
// returned StepInfo.
package vm

import (
	"fmt"

	"dynsched/internal/asm"
	"dynsched/internal/isa"
)

// Memory is the functional view of the shared address space.
type Memory interface {
	// Load returns the word at addr. addr must be word-aligned.
	Load(addr uint64) uint64
	// Store writes the word at addr.
	Store(addr uint64, val uint64)
}

// PagedMem is a sparse word-addressable memory backed by fixed-size pages.
// The zero value is ready to use. It is not safe for concurrent use; the
// simulator is single-goroutine by design (deterministic interleaving).
type PagedMem struct {
	pages map[uint64]*page
}

const (
	pageWords = 1 << 12 // 4096 words = 32 KiB per page
	pageShift = 12 + 3  // word index → page id (3 = log2 word size)
	pageMask  = uint64(pageWords - 1)
)

type page [pageWords]uint64

// NewPagedMem returns an empty memory.
func NewPagedMem() *PagedMem {
	return &PagedMem{pages: make(map[uint64]*page)}
}

// Load implements Memory.
func (m *PagedMem) Load(addr uint64) uint64 {
	w := addr / isa.WordSize
	p := m.pages[w>>12]
	if p == nil {
		return 0
	}
	return p[w&pageMask]
}

// Store implements Memory.
func (m *PagedMem) Store(addr uint64, val uint64) {
	w := addr / isa.WordSize
	id := w >> 12
	p := m.pages[id]
	if p == nil {
		p = new(page)
		m.pages[id] = p
	}
	p[w&pageMask] = val
}

// LoadF and StoreF are float64 conveniences for tests and result checking.
func (m *PagedMem) LoadF(addr uint64) float64     { return isa.F64(m.Load(addr)) }
func (m *PagedMem) StoreF(addr uint64, f float64) { m.Store(addr, isa.Bits(f)) }

// StepInfo describes the dynamic effects of one executed instruction.
type StepInfo struct {
	PC     int       // static instruction index executed
	Instr  isa.Instr // the instruction
	Addr   uint64    // effective address (loads, stores, lock/unlock)
	Value  uint64    // value loaded or stored (for debugging/validation)
	Taken  bool      // for branches: whether the branch was taken
	NextPC int       // PC after this instruction
	Halted bool      // instruction was Halt
}

// Thread is the architectural state of one virtual processor.
type Thread struct {
	Prog *asm.Program
	Mem  Memory

	PC     int
	Regs   [isa.NumRegs]uint64
	Halted bool

	// Executed counts dynamically executed instructions.
	Executed uint64
}

// NewThread returns a thread at the start of prog using mem.
func NewThread(prog *asm.Program, mem Memory) *Thread {
	return &Thread{Prog: prog, Mem: mem}
}

// SetReg initializes a register (used to pass the processor id and argument
// pointers before the thread starts).
func (t *Thread) SetReg(r asm.Reg, v uint64) { t.Regs[r] = v }

// Step executes the instruction at the current PC and advances. It returns
// an error only for malformed programs (PC out of range, invalid opcode);
// applications assembled through package asm never trigger these.
//
// Synchronization instructions (lock/unlock/barrier/event) are treated as
// no-ops functionally — the caller owns their semantics — but their effective
// address (for lock/unlock) is reported in StepInfo.
func (t *Thread) Step() (StepInfo, error) {
	if t.Halted {
		return StepInfo{}, fmt.Errorf("vm: step on halted thread %s", t.Prog.Name)
	}
	if t.PC < 0 || t.PC >= len(t.Prog.Instrs) {
		return StepInfo{}, fmt.Errorf("vm: %s: PC %d out of range [0,%d)", t.Prog.Name, t.PC, len(t.Prog.Instrs))
	}
	in := t.Prog.Instrs[t.PC]
	info := StepInfo{PC: t.PC, Instr: in, NextPC: t.PC + 1}

	switch isa.Classify(in.Op) {
	case isa.ClassALU:
		if in.Op != isa.OpNop {
			v := isa.EvalALU(in.Op, t.Regs[in.Src1], t.Regs[in.Src2], in.Imm)
			t.write(in.Dst, v)
			info.Value = v
		}
	case isa.ClassLoad:
		info.Addr = t.Regs[in.Src1] + uint64(in.Imm)
		if info.Addr%isa.WordSize != 0 {
			return StepInfo{}, fmt.Errorf("vm: %s: unaligned load of %#x at pc %d", t.Prog.Name, info.Addr, t.PC)
		}
		v := t.Mem.Load(info.Addr)
		t.write(in.Dst, v)
		info.Value = v
	case isa.ClassStore:
		info.Addr = t.Regs[in.Src1] + uint64(in.Imm)
		if info.Addr%isa.WordSize != 0 {
			return StepInfo{}, fmt.Errorf("vm: %s: unaligned store to %#x at pc %d", t.Prog.Name, info.Addr, t.PC)
		}
		info.Value = t.Regs[in.Src2]
		t.Mem.Store(info.Addr, info.Value)
	case isa.ClassBranch:
		switch in.Op {
		case isa.OpBeqz:
			info.Taken = t.Regs[in.Src1] == 0
		case isa.OpBnez:
			info.Taken = t.Regs[in.Src1] != 0
		case isa.OpJ:
			info.Taken = true
		}
		if info.Taken {
			info.NextPC = int(in.Imm)
		}
	case isa.ClassSync:
		// For lock/unlock, Addr is the lock variable's address; for
		// barriers and events it carries the runtime object id (a+imm).
		info.Addr = t.Regs[in.Src1] + uint64(in.Imm)
		// Semantics (blocking, event state) belong to the caller.
	case isa.ClassHalt:
		t.Halted = true
		info.Halted = true
		info.NextPC = t.PC
	default:
		return StepInfo{}, fmt.Errorf("vm: %s: invalid opcode %v at pc %d", t.Prog.Name, in.Op, t.PC)
	}

	t.PC = info.NextPC
	t.Executed++
	return info, nil
}

func (t *Thread) write(dst uint8, v uint64) {
	if dst != isa.Zero {
		t.Regs[dst] = v
	}
}

// Run executes the thread to completion (for single-threaded functional
// tests of application kernels; the multiprocessor simulator drives Step
// directly). It returns the number of instructions executed. maxSteps guards
// against runaway programs; 0 means no limit.
func (t *Thread) Run(maxSteps uint64) (uint64, error) {
	var n uint64
	for !t.Halted {
		if maxSteps > 0 && n >= maxSteps {
			return n, fmt.Errorf("vm: %s: exceeded %d steps", t.Prog.Name, maxSteps)
		}
		if _, err := t.Step(); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
