package vm

import (
	"testing"
	"testing/quick"

	"dynsched/internal/asm"
	"dynsched/internal/isa"
)

func TestPagedMemZeroDefault(t *testing.T) {
	m := NewPagedMem()
	if got := m.Load(0x123456780); got != 0 {
		t.Errorf("uninitialized load = %d, want 0", got)
	}
}

func TestPagedMemRoundTrip(t *testing.T) {
	m := NewPagedMem()
	f := func(addrSeed uint32, val uint64) bool {
		addr := (uint64(addrSeed) * isa.WordSize) % (1 << 40)
		m.Store(addr, val)
		return m.Load(addr) == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPagedMemDistinctWords(t *testing.T) {
	m := NewPagedMem()
	m.Store(0, 1)
	m.Store(8, 2)
	m.Store(1<<20, 3)
	if m.Load(0) != 1 || m.Load(8) != 2 || m.Load(1<<20) != 3 {
		t.Errorf("adjacent/far words interfere: %d %d %d", m.Load(0), m.Load(8), m.Load(1<<20))
	}
}

func TestPagedMemFloat(t *testing.T) {
	m := NewPagedMem()
	m.StoreF(64, 3.25)
	if got := m.LoadF(64); got != 3.25 {
		t.Errorf("LoadF = %v, want 3.25", got)
	}
}

// buildSum assembles: sum of 1..n stored at addr 0, then halt.
func buildSum(n int64) *asm.Program {
	b := asm.NewBuilder("sum")
	sum := b.Alloc()
	base := b.Alloc()
	b.Li(sum, 0)
	b.Li(base, 0)
	b.ForI(1, n+1, 1, func(i asm.Reg) {
		b.Add(sum, sum, i)
	})
	b.St(base, 0, sum)
	b.Halt()
	return b.MustBuild()
}

func TestRunSumLoop(t *testing.T) {
	m := NewPagedMem()
	th := NewThread(buildSum(100), m)
	if _, err := th.Run(100000); err != nil {
		t.Fatal(err)
	}
	if got := m.Load(0); got != 5050 {
		t.Errorf("sum 1..100 = %d, want 5050", got)
	}
	if !th.Halted {
		t.Error("thread not halted after Run")
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	b := asm.NewBuilder("z")
	r := b.Alloc()
	b.Li(r, 7)
	b.Emit(isa.Instr{Op: isa.OpMov, Dst: isa.Zero, Src1: r}) // attempt to write r0
	b.Halt()
	m := NewPagedMem()
	th := NewThread(b.MustBuild(), m)
	if _, err := th.Run(10); err != nil {
		t.Fatal(err)
	}
	if th.Regs[isa.Zero] != 0 {
		t.Errorf("zero register = %d, want 0", th.Regs[isa.Zero])
	}
}

func TestBranchTakenInfo(t *testing.T) {
	b := asm.NewBuilder("br")
	r := b.Alloc()
	b.Li(r, 0)
	b.Beqz(r, "target") // taken
	b.Li(r, 99)         // skipped
	b.Label("target")
	b.Halt()
	th := NewThread(b.MustBuild(), NewPagedMem())
	if _, err := th.Step(); err != nil { // li
		t.Fatal(err)
	}
	info, err := th.Step() // beqz
	if err != nil {
		t.Fatal(err)
	}
	if !info.Taken {
		t.Error("beqz on zero should be taken")
	}
	if info.NextPC != 3 {
		t.Errorf("NextPC = %d, want 3 (the halt after the skipped li)", info.NextPC)
	}
	if th.Regs[r] != 0 {
		t.Errorf("skipped instruction executed: r = %d", th.Regs[r])
	}
}

func TestStepInfoLoadStore(t *testing.T) {
	b := asm.NewBuilder("ls")
	base := b.Alloc()
	v := b.Alloc()
	b.Li(base, 128)
	b.Li(v, 42)
	b.St(base, 8, v)
	b.Ld(v, base, 8)
	b.Halt()
	th := NewThread(b.MustBuild(), NewPagedMem())
	th.Step()
	th.Step()
	st, _ := th.Step()
	if st.Addr != 136 || st.Value != 42 {
		t.Errorf("store info = addr %d val %d, want 136, 42", st.Addr, st.Value)
	}
	ld, _ := th.Step()
	if ld.Addr != 136 || ld.Value != 42 {
		t.Errorf("load info = addr %d val %d, want 136, 42", ld.Addr, ld.Value)
	}
}

func TestUnalignedLoadFails(t *testing.T) {
	b := asm.NewBuilder("u")
	base := b.Alloc()
	b.Li(base, 3)
	b.Ld(base, base, 0)
	b.Halt()
	th := NewThread(b.MustBuild(), NewPagedMem())
	th.Step()
	if _, err := th.Step(); err == nil {
		t.Fatal("unaligned load did not error")
	}
}

func TestSyncOpsAreFunctionalNops(t *testing.T) {
	b := asm.NewBuilder("s")
	base := b.Alloc()
	b.Li(base, 256)
	b.Lock(base, 0)
	b.Unlock(base, 0)
	b.Barrier(1)
	b.WaitEv(2)
	b.SetEv(2)
	b.Halt()
	th := NewThread(b.MustBuild(), NewPagedMem())
	th.Step()
	lk, err := th.Step()
	if err != nil {
		t.Fatal(err)
	}
	if lk.Addr != 256 {
		t.Errorf("lock addr = %d, want 256", lk.Addr)
	}
	if n, err := th.Run(0); err != nil || n != 5 {
		t.Fatalf("Run = %d, %v; want 5 remaining instructions", n, err)
	}
}

func TestStepOnHaltedThreadErrors(t *testing.T) {
	b := asm.NewBuilder("h")
	b.Halt()
	th := NewThread(b.MustBuild(), NewPagedMem())
	if _, err := th.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := th.Step(); err == nil {
		t.Fatal("step after halt did not error")
	}
}

func TestRunMaxSteps(t *testing.T) {
	b := asm.NewBuilder("inf")
	b.Label("top")
	b.J("top")
	th := NewThread(b.MustBuild(), NewPagedMem())
	if _, err := th.Run(100); err == nil {
		t.Fatal("infinite loop not caught by maxSteps")
	}
}

func TestWhileAndIf(t *testing.T) {
	// Compute gcd(48, 18) with While/If to exercise structured control.
	b := asm.NewBuilder("gcd")
	a := b.Alloc()
	c := b.Alloc()
	base := b.Alloc()
	b.Li(a, 48)
	b.Li(c, 18)
	b.Li(base, 0)
	b.While(func(t asm.Reg) { b.Sne(t, c, isa.Zero) }, func() {
		tmp := b.Alloc()
		b.Rem(tmp, a, c)
		b.Mov(a, c)
		b.Mov(c, tmp)
		b.Free(tmp)
	})
	cond := b.Alloc()
	b.Slti(cond, a, 100)
	b.If(cond, func() { b.St(base, 0, a) }, func() { b.St(base, 8, a) })
	b.Halt()
	m := NewPagedMem()
	th := NewThread(b.MustBuild(), m)
	if _, err := th.Run(10000); err != nil {
		t.Fatal(err)
	}
	if got := m.Load(0); got != 6 {
		t.Errorf("gcd(48,18) = %d, want 6", got)
	}
	if got := m.Load(8); got != 0 {
		t.Errorf("else branch executed: mem[8] = %d", got)
	}
}
