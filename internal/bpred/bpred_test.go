package bpred

import (
	"math/rand"
	"testing"
)

func TestBTBGeometryValidation(t *testing.T) {
	if _, err := NewBTB(2048, 3); err == nil {
		t.Error("2048/3 accepted")
	}
	if _, err := NewBTB(0, 4); err == nil {
		t.Error("zero entries accepted")
	}
	if _, err := NewBTB(12, 4); err == nil {
		t.Error("3 sets (non power of two) accepted")
	}
	if _, err := NewBTB(2048, 4); err != nil {
		t.Errorf("paper geometry rejected: %v", err)
	}
}

func TestColdMissPredictsNotTaken(t *testing.T) {
	b := NewPaperBTB()
	if b.Predict(1234, true) {
		t.Error("cold BTB predicted taken")
	}
}

func TestLearnsLoopBranch(t *testing.T) {
	b := NewPaperBTB()
	pc := int32(77)
	// A loop branch: taken 99 times, then not taken once, repeatedly.
	misses := 0
	for rep := 0; rep < 5; rep++ {
		for i := 0; i < 99; i++ {
			if !b.Predict(pc, true) {
				misses++
			}
			b.Update(pc, true)
		}
		if b.Predict(pc, false) {
			misses++
		}
		b.Update(pc, false)
	}
	// First allocation miss + one exit mispredict per repetition is the
	// 2-bit counter's expected behaviour; re-entry should hit (counter
	// saturates high, one decrement on exit keeps it >= 2).
	if misses > 6 {
		t.Errorf("loop branch mispredicted %d times in 500, want <= 6", misses)
	}
}

func TestCounterHysteresis(t *testing.T) {
	b := NewPaperBTB()
	pc := int32(5)
	for i := 0; i < 4; i++ {
		b.Update(pc, true) // saturate to 3
	}
	b.Update(pc, false) // 2: still predicts taken
	if !b.Predict(pc, false) {
		t.Error("single not-taken flipped a saturated counter")
	}
	b.Update(pc, false) // 1
	if b.Predict(pc, true) {
		t.Error("two not-takens should flip the prediction")
	}
}

func TestNotTakenBranchesDontAllocate(t *testing.T) {
	b := NewPaperBTB()
	pc := int32(9)
	for i := 0; i < 10; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc, false) {
		t.Error("never-taken branch predicted taken")
	}
}

func TestSetConflictEviction(t *testing.T) {
	b, err := NewBTB(8, 2) // 4 sets, 2 ways: 3 branches in one set must evict
	if err != nil {
		t.Fatal(err)
	}
	// PCs 0, 4, 8 all map to set 0 (setMask = 3).
	for _, pc := range []int32{0, 4, 8} {
		b.Update(pc, true)
		b.Update(pc, true)
	}
	// The LRU entry (pc 0) should have been evicted; cold prediction.
	if b.Predict(0, true) {
		t.Error("evicted branch still predicted taken")
	}
	if !b.Predict(8, true) {
		t.Error("most recent branch lost")
	}
}

func TestPerfectPredictor(t *testing.T) {
	var p Perfect
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		actual := rng.Intn(2) == 0
		if p.Predict(int32(i), actual) != actual {
			t.Fatal("perfect predictor mispredicted")
		}
		p.Update(int32(i), actual)
	}
}

func TestStaticPredictors(t *testing.T) {
	if (StaticNotTaken{}).Predict(0, true) {
		t.Error("StaticNotTaken predicted taken")
	}
	if !(StaticTaken{}).Predict(0, false) {
		t.Error("StaticTaken predicted not taken")
	}
}

func TestBTBAccuracyOnBiasedStream(t *testing.T) {
	// A branch taken with probability 0.9 should be predicted correctly far
	// more often than chance once warmed up.
	b := NewPaperBTB()
	rng := rand.New(rand.NewSource(7))
	pc := int32(321)
	correct, total := 0, 0
	for i := 0; i < 10000; i++ {
		actual := rng.Float64() < 0.9
		if i > 100 { // skip warmup
			if b.Predict(pc, actual) == actual {
				correct++
			}
			total++
		}
		b.Update(pc, actual)
	}
	if acc := float64(correct) / float64(total); acc < 0.80 {
		t.Errorf("accuracy on 90%%-biased branch = %.2f, want >= 0.80", acc)
	}
}
