// Package bpred implements the branch predictors of the paper: a branch
// target buffer (BTB) with 2-bit saturating counters — the paper uses a
// 2048-entry, 4-way set-associative BTB (§3.1) — and the perfect predictor
// used to isolate branch effects in Figure 4.
package bpred

import "fmt"

// Predictor matches trace.Predictor (declared locally to avoid an import
// cycle; package trace asserts the compatibility in its tests).
type Predictor interface {
	Predict(pc int32, actual bool) bool
	Update(pc int32, taken bool)
}

// BTB is a set-associative branch target buffer with per-entry 2-bit
// saturating counters and true-LRU replacement. A branch that misses in the
// BTB is predicted not taken; entries are allocated when a branch is first
// taken, as in classic BTB designs (Lee & Smith). The table is stored as
// two flat arrays (set s occupies entries[s*ways : (s+1)*ways]) so
// constructing a BTB costs a fixed three allocations regardless of
// geometry — processor replays build one per run.
type BTB struct {
	entries []btbEntry // numSets × ways
	clocks  []uint32   // per-set LRU clock
	ways    int
	setMask int32
}

type btbEntry struct {
	valid   bool
	tag     int32
	counter uint8 // 0..3; >=2 predicts taken
	lru     uint32
}

// NewBTB creates a BTB with the given total entry count and associativity.
// entries/ways must be a power of two.
func NewBTB(entries, ways int) (*BTB, error) {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		return nil, fmt.Errorf("bpred: bad geometry %d entries / %d ways", entries, ways)
	}
	numSets := entries / ways
	if numSets&(numSets-1) != 0 {
		return nil, fmt.Errorf("bpred: number of sets %d not a power of two", numSets)
	}
	return &BTB{
		entries: make([]btbEntry, entries),
		clocks:  make([]uint32, numSets),
		ways:    ways,
		setMask: int32(numSets - 1),
	}, nil
}

// NewPaperBTB returns the paper's configuration: 2048 entries, 4-way.
func NewPaperBTB() *BTB {
	b, err := NewBTB(2048, 4)
	if err != nil {
		panic(err)
	}
	return b
}

func (b *BTB) lookup(pc int32) (int, *btbEntry) {
	s := int(pc & b.setMask)
	set := b.entries[s*b.ways : (s+1)*b.ways]
	tag := pc >> 0 // full PC kept as tag (virtual PCs are small)
	for i := range set {
		e := &set[i]
		if e.valid && e.tag == tag {
			return s, e
		}
	}
	return s, nil
}

// Predict implements Predictor. The actual outcome is ignored.
func (b *BTB) Predict(pc int32, _ bool) bool {
	_, e := b.lookup(pc)
	return e != nil && e.counter >= 2
}

// Update implements Predictor: trains the counter, allocating an entry on a
// taken branch that missed.
func (b *BTB) Update(pc int32, taken bool) {
	s, e := b.lookup(pc)
	if e == nil {
		if !taken {
			return // not-taken misses are the default prediction; no entry
		}
		e = b.victim(s)
		e.valid = true
		e.tag = pc
		e.counter = 2 // weakly taken on allocation
	} else if taken {
		if e.counter < 3 {
			e.counter++
		}
	} else if e.counter > 0 {
		e.counter--
	}
	b.clocks[s]++
	e.lru = b.clocks[s]
}

func (b *BTB) victim(s int) *btbEntry {
	set := b.entries[s*b.ways : (s+1)*b.ways]
	var v *btbEntry
	for i := range set {
		e := &set[i]
		if !e.valid {
			return e
		}
		if v == nil || e.lru < v.lru {
			v = e
		}
	}
	return v
}

// Perfect is the oracle predictor of Figure 4: it always returns the actual
// outcome and never mispredicts.
type Perfect struct{}

// Predict implements Predictor by returning the actual outcome.
func (Perfect) Predict(_ int32, actual bool) bool { return actual }

// Update implements Predictor; the oracle needs no training.
func (Perfect) Update(int32, bool) {}

// StaticNotTaken predicts every conditional branch not taken — a baseline
// used by ablation benchmarks.
type StaticNotTaken struct{}

// Predict implements Predictor.
func (StaticNotTaken) Predict(int32, bool) bool { return false }

// Update implements Predictor.
func (StaticNotTaken) Update(int32, bool) {}

// StaticTaken predicts every conditional branch taken.
type StaticTaken struct{}

// Predict implements Predictor.
func (StaticTaken) Predict(int32, bool) bool { return true }

// Update implements Predictor.
func (StaticTaken) Update(int32, bool) {}
