package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newSys(t *testing.T, n int) *System {
	t.Helper()
	s, err := NewSystem(n, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestReadMissThenHit(t *testing.T) {
	s := newSys(t, 2)
	lat, miss := s.Read(0, 0x1000)
	if !miss || lat != 50 {
		t.Fatalf("cold read = (%d, %v), want (50, true)", lat, miss)
	}
	lat, miss = s.Read(0, 0x1000)
	if miss || lat != 1 {
		t.Fatalf("warm read = (%d, %v), want (1, false)", lat, miss)
	}
	// Same line, different word: still a hit (16-byte lines).
	if _, miss = s.Read(0, 0x1008); miss {
		t.Error("second word of cached line missed")
	}
	// Next line: miss.
	if _, miss = s.Read(0, 0x1010); !miss {
		t.Error("next line should miss")
	}
}

func TestWriteUpgradeCountsAsMiss(t *testing.T) {
	s := newSys(t, 2)
	s.Read(0, 0x40) // line now Shared
	_, miss := s.Write(0, 0x40)
	if !miss {
		t.Error("write to Shared line (upgrade) must count as a miss")
	}
	if got := s.Stats(0).WriteMisses; got != 1 {
		t.Errorf("write misses = %d, want 1", got)
	}
	if _, miss = s.Write(0, 0x40); miss {
		t.Error("write to Modified line should hit")
	}
}

func TestInvalidationOnRemoteWrite(t *testing.T) {
	s := newSys(t, 4)
	for cpu := 0; cpu < 4; cpu++ {
		s.Read(cpu, 0x80)
	}
	s.Write(2, 0x80)
	for cpu := 0; cpu < 4; cpu++ {
		st := s.Probe(cpu, 0x80)
		if cpu == 2 && st != Modified {
			t.Errorf("writer state = %v, want M", st)
		}
		if cpu != 2 && st != Invalid {
			t.Errorf("cpu %d state = %v, want I after remote write", cpu, st)
		}
	}
	// Reader that was invalidated now misses: a coherence (communication) miss.
	if _, miss := s.Read(0, 0x80); !miss {
		t.Error("invalidated copy should miss on re-read")
	}
	// And the read downgrades the owner.
	if st := s.Probe(2, 0x80); st != Shared {
		t.Errorf("owner after remote read = %v, want S", st)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	s := newSys(t, 1)
	cfg := s.Config()
	stride := cfg.CacheBytes // maps to the same set
	s.Read(0, 0)
	s.Read(0, stride)
	if st := s.Probe(0, 0); st != Invalid {
		t.Errorf("conflicting line not evicted: state %v", st)
	}
	if got := s.Stats(0).Evictions; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if _, miss := s.Read(0, 0); !miss {
		t.Error("re-read of evicted line should miss")
	}
}

func TestCoherenceInvariantRandomTraffic(t *testing.T) {
	s := newSys(t, 8)
	rng := rand.New(rand.NewSource(42))
	lines := []uint64{0, 16, 32, 0x100, 0x10000, 0x10010}
	for i := 0; i < 20000; i++ {
		cpu := rng.Intn(8)
		addr := lines[rng.Intn(len(lines))] + uint64(rng.Intn(2))*8
		if rng.Intn(3) == 0 {
			s.Write(cpu, addr)
		} else {
			s.Read(cpu, addr)
		}
		for _, l := range lines {
			if err := s.CheckCoherence(l); err != nil {
				t.Fatalf("after %d ops: %v", i+1, err)
			}
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := newSys(t, 2)
	s.Read(0, 0)
	s.Read(0, 0)
	s.Write(0, 0)
	s.Write(0, 0)
	st := s.Stats(0)
	if st.Reads() != 2 || st.Writes() != 2 {
		t.Errorf("reads/writes = %d/%d, want 2/2", st.Reads(), st.Writes())
	}
	if st.ReadMisses != 1 || st.ReadHits != 1 {
		t.Errorf("read misses/hits = %d/%d, want 1/1", st.ReadMisses, st.ReadHits)
	}
	if st.WriteMisses != 1 || st.WriteHits != 1 {
		t.Errorf("write misses/hits = %d/%d, want 1/1", st.WriteMisses, st.WriteHits)
	}
}

func TestBadConfigs(t *testing.T) {
	if _, err := NewSystem(1, Config{CacheBytes: 1024, LineBytes: 24, MissPenalty: 50, HitLatency: 1}); err == nil {
		t.Error("non-power-of-two line size accepted")
	}
	if _, err := NewSystem(1, Config{CacheBytes: 1000, LineBytes: 16, MissPenalty: 50, HitLatency: 1}); err == nil {
		t.Error("cache size not multiple of line accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	s := MustNewSystem(1, Config{})
	cfg := s.Config()
	if cfg.CacheBytes != 64<<10 || cfg.LineBytes != 16 || cfg.MissPenalty != 50 || cfg.HitLatency != 1 {
		t.Errorf("defaults = %+v, want paper parameters", cfg)
	}
}

// Property: after any single write by cpu w, a read by another cpu always
// succeeds and leaves both caches in Shared state.
func TestWriteThenRemoteReadProperty(t *testing.T) {
	f := func(addrSeed uint16, w, r uint8) bool {
		s := MustNewSystem(4, DefaultConfig())
		addr := uint64(addrSeed) * 8
		wc, rc := int(w%4), int(r%4)
		if wc == rc {
			return true
		}
		s.Write(wc, addr)
		s.Read(rc, addr)
		return s.Probe(wc, addr) == Shared && s.Probe(rc, addr) == Shared &&
			s.CheckCoherence(addr) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAssociativityRemovesConflicts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ways = 2
	s := MustNewSystem(1, cfg)
	stride := cfg.CacheBytes / uint64(cfg.Ways) // same set in a 2-way cache
	s.Read(0, 0)
	s.Read(0, stride)
	// Both lines fit in the two ways.
	if s.Probe(0, 0) == Invalid || s.Probe(0, stride) == Invalid {
		t.Fatal("2-way cache evicted one of two set-conflicting lines")
	}
	if _, miss := s.Read(0, 0); miss {
		t.Error("first line should still hit")
	}
	// A third conflicting line evicts the LRU (stride, after the re-read
	// of line 0).
	s.Read(0, 2*stride)
	if s.Probe(0, stride) != Invalid {
		t.Error("LRU line not evicted")
	}
	if s.Probe(0, 0) == Invalid {
		t.Error("MRU line evicted instead of LRU")
	}
}

func TestAssociativityLRUOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ways = 4
	s := MustNewSystem(1, cfg)
	stride := cfg.CacheBytes / uint64(cfg.Ways)
	for i := uint64(0); i < 4; i++ {
		s.Read(0, i*stride)
	}
	s.Read(0, 0) // touch line 0: line at stride becomes LRU
	s.Read(0, 4*stride)
	if s.Probe(0, stride) != Invalid {
		t.Error("expected the LRU way (stride) to be evicted")
	}
	for _, a := range []uint64{0, 2 * stride, 3 * stride, 4 * stride} {
		if s.Probe(0, a) == Invalid {
			t.Errorf("line %#x unexpectedly evicted", a)
		}
	}
}

func TestAssociativityCoherence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ways = 4
	s := MustNewSystem(4, cfg)
	rng := rand.New(rand.NewSource(9))
	lines := []uint64{0, 16, 1 << 14, 1 << 15, 1 << 16}
	for i := 0; i < 5000; i++ {
		cpu := rng.Intn(4)
		addr := lines[rng.Intn(len(lines))]
		if rng.Intn(2) == 0 {
			s.Write(cpu, addr)
		} else {
			s.Read(cpu, addr)
		}
		for _, l := range lines {
			if err := s.CheckCoherence(l); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestBadWays(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ways = 3 // 4096 lines not divisible by 3
	if _, err := NewSystem(1, cfg); err == nil {
		t.Error("non-dividing way count accepted")
	}
}
