// Package mem models the multiprocessor memory hierarchy of the paper's
// Tango-Lite simulation: per-processor 64 KB direct-mapped write-back data
// caches with 16-byte lines, kept coherent with an invalidation-based
// protocol. Cache hits cost 1 cycle and misses a fixed penalty (50 cycles in
// the paper's main experiments); queueing and network contention are not
// modelled, exactly as in §3.2 of the paper.
//
// The caches are timing-only: they track tags and MSI state but hold no
// data. Values always live in the functional memory (vm.PagedMem), which is
// safe because the driving simulator performs writes in a deterministic
// global order.
package mem

import "fmt"

// MSI line states.
type State uint8

const (
	Invalid State = iota
	Shared
	Modified
)

// String returns a one-letter state name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	}
	return "?"
}

// Config describes the cache geometry and miss timing.
type Config struct {
	CacheBytes  uint64 // per-processor cache capacity (default 64 KiB)
	LineBytes   uint64 // cache line size (default 16)
	Ways        int    // set associativity (default 1: direct-mapped, as in the paper)
	MissPenalty uint32 // cycles for any miss (default 50)
	HitLatency  uint32 // cycles for a hit (default 1)
}

// DefaultConfig returns the paper's parameters: 64 KB direct-mapped caches,
// 16-byte lines, 1-cycle hits, 50-cycle misses.
func DefaultConfig() Config {
	return Config{CacheBytes: 64 << 10, LineBytes: 16, MissPenalty: 50, HitLatency: 1}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.CacheBytes == 0 {
		c.CacheBytes = d.CacheBytes
	}
	if c.LineBytes == 0 {
		c.LineBytes = d.LineBytes
	}
	if c.MissPenalty == 0 {
		c.MissPenalty = d.MissPenalty
	}
	if c.HitLatency == 0 {
		c.HitLatency = d.HitLatency
	}
	if c.Ways == 0 {
		c.Ways = 1
	}
}

// Stats counts cache events for one processor.
type Stats struct {
	ReadHits    uint64
	ReadMisses  uint64
	WriteHits   uint64
	WriteMisses uint64 // includes ownership upgrades of Shared lines
	Upgrades    uint64 // the subset of WriteMisses that were Shared→Modified upgrades
	Evictions   uint64
	Invalidates uint64 // lines invalidated by remote writes
}

// Reads returns total read accesses.
func (s Stats) Reads() uint64 { return s.ReadHits + s.ReadMisses }

// Writes returns total write accesses.
func (s Stats) Writes() uint64 { return s.WriteHits + s.WriteMisses }

type line struct {
	tag   uint64
	state State
	lru   uint64 // last-touch stamp within the set
}

type cache struct {
	lines []line // numSets × ways, set-major
	stats Stats
	clock uint64
}

// System is the set of coherent caches over a single shared memory.
type System struct {
	cfg      Config
	caches   []cache
	numSets  uint64
	ways     int
	lineLog2 uint
}

// NewSystem creates caches for n processors with the given configuration.
func NewSystem(n int, cfg Config) (*System, error) {
	cfg.fillDefaults()
	if cfg.LineBytes == 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("mem: line size %d is not a power of two", cfg.LineBytes)
	}
	if cfg.CacheBytes%cfg.LineBytes != 0 {
		return nil, fmt.Errorf("mem: cache size %d not a multiple of line size %d", cfg.CacheBytes, cfg.LineBytes)
	}
	numLines := cfg.CacheBytes / cfg.LineBytes
	if cfg.Ways < 1 || numLines%uint64(cfg.Ways) != 0 {
		return nil, fmt.Errorf("mem: %d lines not divisible into %d ways", numLines, cfg.Ways)
	}
	s := &System{cfg: cfg, caches: make([]cache, n), numSets: numLines / uint64(cfg.Ways), ways: cfg.Ways}
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		s.lineLog2++
	}
	for i := range s.caches {
		s.caches[i].lines = make([]line, numLines)
	}
	return s, nil
}

// MustNewSystem is NewSystem but panics on configuration errors.
func MustNewSystem(n int, cfg Config) *System {
	s, err := NewSystem(n, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the active configuration (with defaults filled in).
func (s *System) Config() Config { return s.cfg }

// NumCPUs returns the number of caches.
func (s *System) NumCPUs() int { return len(s.caches) }

// Stats returns the counters for processor cpu.
func (s *System) Stats(cpu int) Stats { return s.caches[cpu].stats }

func (s *System) index(addr uint64) (set uint64, tag uint64) {
	lineAddr := addr >> s.lineLog2
	return lineAddr % s.numSets, lineAddr
}

// set returns the ways of a set in cache c.
func (s *System) set(c *cache, set uint64) []line {
	base := set * uint64(s.ways)
	return c.lines[base : base+uint64(s.ways)]
}

// find returns the way holding tag in the set, or nil.
func find(ways []line, tag uint64) *line {
	for i := range ways {
		if ways[i].state != Invalid && ways[i].tag == tag {
			return &ways[i]
		}
	}
	return nil
}

// victim returns the way to fill: an invalid way if present, else the LRU.
func victim(ways []line) *line {
	v := &ways[0]
	for i := range ways {
		if ways[i].state == Invalid {
			return &ways[i]
		}
		if ways[i].lru < v.lru {
			v = &ways[i]
		}
	}
	return v
}

// Read performs a read by processor cpu at addr and returns the latency and
// whether it missed.
//
// Protocol: a read hit requires the line in Shared or Modified state. On a
// miss the line is filled in Shared state; if a remote cache holds the line
// Modified it is downgraded to Shared (the implied write-back costs nothing
// extra under the paper's fixed-latency model).
func (s *System) Read(cpu int, addr uint64) (latency uint32, miss bool) {
	c := &s.caches[cpu]
	set, tag := s.index(addr)
	c.clock++
	if ln := find(s.set(c, set), tag); ln != nil {
		ln.lru = c.clock
		c.stats.ReadHits++
		return s.cfg.HitLatency, false
	}
	// Miss: evict the victim way, fetch the line Shared.
	ln := victim(s.set(c, set))
	if ln.state != Invalid {
		c.stats.Evictions++
	}
	for i := range s.caches {
		if i == cpu {
			continue
		}
		if rl := find(s.set(&s.caches[i], set), tag); rl != nil && rl.state == Modified {
			rl.state = Shared // downgrade owner
		}
	}
	ln.tag, ln.state, ln.lru = tag, Shared, c.clock
	c.stats.ReadMisses++
	return s.cfg.MissPenalty, true
}

// Write performs a write by processor cpu at addr and returns the latency
// and whether it missed. A write hit requires Modified state; writing a
// Shared line is an ownership upgrade and is charged (and counted) as a
// write miss, since the invalidation round-trip costs the same fixed latency
// in this model. All remote copies are invalidated.
func (s *System) Write(cpu int, addr uint64) (latency uint32, miss bool) {
	c := &s.caches[cpu]
	set, tag := s.index(addr)
	c.clock++
	ln := find(s.set(c, set), tag)
	if ln != nil && ln.state == Modified {
		ln.lru = c.clock
		c.stats.WriteHits++
		return s.cfg.HitLatency, false
	}
	if ln == nil { // fill: evict the victim way
		ln = victim(s.set(c, set))
		if ln.state != Invalid {
			c.stats.Evictions++
		}
	} else {
		c.stats.Upgrades++ // Shared line: ownership upgrade, no data fetch
	}
	for i := range s.caches {
		if i == cpu {
			continue
		}
		if rl := find(s.set(&s.caches[i], set), tag); rl != nil {
			rl.state = Invalid
			s.caches[i].stats.Invalidates++
		}
	}
	ln.tag, ln.state, ln.lru = tag, Modified, c.clock
	c.stats.WriteMisses++
	return s.cfg.MissPenalty, true
}

// Probe returns the state of addr's line in processor cpu's cache without
// affecting it (for tests and invariant checks).
func (s *System) Probe(cpu int, addr uint64) State {
	set, tag := s.index(addr)
	if ln := find(s.set(&s.caches[cpu], set), tag); ln != nil {
		return ln.state
	}
	return Invalid
}

// CheckCoherence verifies the single-writer/multiple-reader invariant for
// addr's line across all caches: if any cache holds the line Modified, no
// other cache may hold it in any valid state.
func (s *System) CheckCoherence(addr uint64) error {
	set, tag := s.index(addr)
	owner := -1
	sharers := 0
	for i := range s.caches {
		lnp := find(s.set(&s.caches[i], set), tag)
		if lnp == nil {
			continue
		}
		ln := *lnp
		if ln.state == Modified {
			if owner >= 0 {
				return fmt.Errorf("mem: two Modified owners (%d and %d) for %#x", owner, i, addr)
			}
			owner = i
		} else {
			sharers++
		}
	}
	if owner >= 0 && sharers > 0 {
		return fmt.Errorf("mem: Modified owner %d coexists with %d sharers for %#x", owner, sharers, addr)
	}
	return nil
}
