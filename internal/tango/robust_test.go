package tango

// Tests for the simulator's failure-containment controls: the cycle budget,
// cooperative cancellation, and the machine-state dump on MachineError.

import (
	"context"
	"errors"
	"strings"
	"testing"

	"dynsched/internal/asm"
)

// spinner builds an infinite loop — a livelocked program that makes
// instruction progress but never halts.
func spinner() *asm.Program {
	b := asm.NewBuilder("spin")
	b.Label("top")
	b.J("top")
	return b.MustBuild()
}

func TestMaxCyclesKillsLivelock(t *testing.T) {
	cfg := cfgN(1, -1)
	cfg.MaxCycles = 5000
	_, err := Run(same(1, spinner()), nil, cfg)
	if err == nil {
		t.Fatal("livelocked program not killed by the cycle budget")
	}
	var me *MachineError
	if !errors.As(err, &me) {
		t.Fatalf("err = %v, want *MachineError", err)
	}
	if me.Reason != "cycle budget" {
		t.Errorf("reason = %q, want cycle budget", me.Reason)
	}
	if me.State == "" || !strings.Contains(me.State, "cpu0") {
		t.Errorf("machine-state dump missing: %q", me.State)
	}
	if !me.Permanent() {
		t.Error("MachineError must be permanent (not retried)")
	}
}

func TestMaxCyclesQuietOnHealthyRun(t *testing.T) {
	cfg := cfgN(2, 0)
	cfg.MaxCycles = 1 << 30
	if _, err := Run(same(2, lockCounter(0x1000, 0x2000, 10)), nil, cfg); err != nil {
		t.Fatalf("healthy run killed by generous cycle budget: %v", err)
	}
}

func TestDeadlockCarriesMachineState(t *testing.T) {
	hb := asm.NewBuilder("hog")
	lk := hb.Alloc()
	hb.Li(lk, 0x1000)
	hb.Lock(lk, 0)
	hb.Halt()
	wb := asm.NewBuilder("waiter")
	lk2 := wb.Alloc()
	wb.Li(lk2, 0x1000)
	wb.Lock(lk2, 0)
	wb.Halt()
	_, err := Run([]*asm.Program{hb.MustBuild(), wb.MustBuild()}, nil, cfgN(2, -1))
	var me *MachineError
	if !errors.As(err, &me) {
		t.Fatalf("err = %v, want *MachineError", err)
	}
	if me.Reason != "deadlock" {
		t.Errorf("reason = %q, want deadlock", me.Reason)
	}
	if !strings.Contains(me.State, "blocked") || !strings.Contains(me.State, "lock-waiters=1") {
		t.Errorf("deadlock dump not diagnosable: %q", me.State)
	}
}

func TestRunawayCarriesMachineState(t *testing.T) {
	cfg := cfgN(1, -1)
	cfg.MaxInstrs = 1000
	_, err := Run(same(1, spinner()), nil, cfg)
	var me *MachineError
	if !errors.As(err, &me) {
		t.Fatalf("err = %v, want *MachineError", err)
	}
	if me.Reason != "runaway" || me.State == "" {
		t.Errorf("runaway error incomplete: %+v", me)
	}
}

func TestSimulationCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := cfgN(1, -1)
	cfg.Ctx = ctx
	_, err := Run(same(1, spinner()), nil, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled simulation returned %v, want context.Canceled", err)
	}

	// A live context leaves a normal run untouched.
	cfg = cfgN(2, 0)
	cfg.Ctx = context.Background()
	if _, err := Run(same(2, lockCounter(0x1000, 0x2000, 10)), nil, cfg); err != nil {
		t.Fatalf("background ctx broke the simulation: %v", err)
	}
}
